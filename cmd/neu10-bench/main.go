// Command neu10-bench regenerates the paper's evaluation tables and
// figures (see DESIGN.md for the experiment index):
//
//	neu10-bench -exp all
//	neu10-bench -exp fig19 -requests 16
//	neu10-bench -list
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"neu10/internal/experiments"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (fig2|fig4|...|fig27|table3) or 'all'")
		requests = flag.Int("requests", 8, "requests per tenant for steady-state runs")
		list     = flag.Bool("list", false, "list experiment ids and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}

	opts := experiments.DefaultOptions()
	opts.Requests = *requests
	runner, err := experiments.NewRunner(opts)
	if err != nil {
		fatal(err)
	}

	ids := experiments.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}
	for _, id := range ids {
		start := time.Now()
		res, err := runner.Run(strings.TrimSpace(id))
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		fmt.Printf("%s\n(elapsed %s)\n\n", res.Table(), time.Since(start).Round(time.Millisecond))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "neu10-bench:", err)
	os.Exit(1)
}
