// Command neu10-bench regenerates the paper's evaluation tables and
// figures (see DESIGN.md for the experiment index):
//
//	neu10-bench -exp all
//	neu10-bench -exp fig19 -requests 16
//	neu10-bench -list
//	neu10-bench -exp all -json        # also write a BENCH_<n>.json perf snapshot
//	neu10-bench -exp all -compare BENCH_3.json   # CI regression gate
//
// Experiments fan their scenario simulations across a worker pool
// (-workers, default GOMAXPROCS); tables are byte-identical to a
// sequential run for the same seed.
//
// With -compare, the fresh per-figure timings are checked against a
// committed baseline snapshot: the run fails (exit 1) when any figure
// both snapshots name slowed down by more than -tolerance× (default
// 2.5×, deliberately generous — CI runners are noisy; the gate exists
// to catch order-of-magnitude regressions, not jitter). Figures absent
// from the baseline pass unchecked, and sub-5 ms baselines are floored
// before comparing, so microsecond figures cannot trip the gate on
// scheduler noise.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"neu10/internal/experiments"
)

// figureBench is one figure's perf measurement in the JSON snapshot:
// whole-regeneration totals (one "op" = regenerating the figure once),
// not Go-benchmark per-iteration numbers.
type figureBench struct {
	ID          string `json:"id"`
	TotalNs     int64  `json:"total_ns"`
	TotalAllocs uint64 `json:"total_allocs"`
	TotalBytes  uint64 `json:"total_bytes"`
}

// benchSnapshot is the schema of BENCH_<n>.json.
type benchSnapshot struct {
	Timestamp  string        `json:"timestamp"`
	GoOS       string        `json:"goos"`
	GoArch     string        `json:"goarch"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Workers    int           `json:"workers"`
	Requests   int           `json:"requests"`
	TotalNs    int64         `json:"total_ns"`
	Figures    []figureBench `json:"figures"`
}

func main() {
	var (
		exp      = flag.String("exp", "all", "experiment id (fig2|fig4|...|fig27|table3) or 'all'")
		requests = flag.Int("requests", 8, "requests per tenant for steady-state runs")
		workers  = flag.Int("workers", 0, "worker pool size for parallel sweeps (0 = GOMAXPROCS, 1 = sequential)")
		list     = flag.Bool("list", false, "list experiment ids and exit")
		jsonOut  = flag.Bool("json", false, "write a BENCH_<n>.json perf snapshot (total ns/allocs/bytes per figure regeneration)")
		jsonDir  = flag.String("json-dir", ".", "directory for the BENCH_<n>.json snapshot")
		compare  = flag.String("compare", "", "baseline BENCH_*.json to compare against; exit 1 on any >tolerance slowdown")
		tol      = flag.Float64("tolerance", 2.5, "slowdown factor tolerated by -compare before failing")

		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *list {
		fmt.Println(strings.Join(experiments.IDs(), "\n"))
		return
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fatal(err)
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fatal(err)
			}
		}()
	}

	opts := experiments.DefaultOptions()
	opts.Requests = *requests
	opts.Workers = *workers
	runner, err := experiments.NewRunner(opts)
	if err != nil {
		fatal(err)
	}

	ids := experiments.IDs()
	if *exp != "all" {
		ids = strings.Split(*exp, ",")
	}

	effectiveWorkers := *workers
	if effectiveWorkers <= 0 {
		effectiveWorkers = runtime.GOMAXPROCS(0)
	}
	snap := benchSnapshot{
		Timestamp:  time.Now().UTC().Format(time.RFC3339),
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Workers:    effectiveWorkers,
		Requests:   *requests,
	}
	totalStart := time.Now()
	for _, id := range ids {
		id = strings.TrimSpace(id)
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)
		start := time.Now()
		res, err := runner.Run(id)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", id, err))
		}
		elapsed := time.Since(start)
		runtime.ReadMemStats(&m1)
		fmt.Printf("%s\n(elapsed %s)\n\n", res.Table(), elapsed.Round(time.Millisecond))
		snap.Figures = append(snap.Figures, figureBench{
			ID:          id,
			TotalNs:     elapsed.Nanoseconds(),
			TotalAllocs: m1.Mallocs - m0.Mallocs,
			TotalBytes:  m1.TotalAlloc - m0.TotalAlloc,
		})
	}
	snap.TotalNs = time.Since(totalStart).Nanoseconds()

	if *jsonOut {
		path, err := writeSnapshot(*jsonDir, snap)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("perf snapshot written to %s\n", path)
	}

	if *compare != "" {
		if err := compareSnapshots(*compare, snap, *tol); err != nil {
			fatal(err)
		}
	}
}

// compareSnapshots is the bench-regression gate: every figure present
// in both the baseline file and the fresh run must not have slowed by
// more than tol×. Baselines under 5 ms are floored to 5 ms first —
// microsecond figures measure scheduler noise, not the simulator.
func compareSnapshots(baselinePath string, fresh benchSnapshot, tol float64) error {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return err
	}
	var base benchSnapshot
	if err := json.Unmarshal(data, &base); err != nil {
		return fmt.Errorf("parsing baseline %s: %w", baselinePath, err)
	}
	baseNs := make(map[string]int64, len(base.Figures))
	for _, f := range base.Figures {
		baseNs[f.ID] = f.TotalNs
	}
	const floorNs = int64(5e6)
	var regressions []string
	fmt.Printf("bench-regression gate vs %s (tolerance %.1fx):\n", baselinePath, tol)
	// A figure that exists in the baseline but not in this run is a
	// gate bypass (deleting the slow benchmark must not pass), so it
	// fails too. Compare subsets without -compare.
	freshIDs := make(map[string]bool, len(fresh.Figures))
	for _, f := range fresh.Figures {
		freshIDs[f.ID] = true
	}
	for _, f := range base.Figures {
		if !freshIDs[f.ID] {
			regressions = append(regressions, fmt.Sprintf("%s: in baseline but missing from this run", f.ID))
			fmt.Printf("  %-18s MISSING (present in baseline)\n", f.ID)
		}
	}
	for _, f := range fresh.Figures {
		bn, ok := baseNs[f.ID]
		if !ok {
			fmt.Printf("  %-18s %8.1f ms  (new figure, unchecked)\n", f.ID, float64(f.TotalNs)/1e6)
			continue
		}
		if bn < floorNs {
			bn = floorNs
		}
		ratio := float64(f.TotalNs) / float64(bn)
		verdict := "ok"
		if ratio > tol {
			verdict = "REGRESSED"
			regressions = append(regressions,
				fmt.Sprintf("%s: %.1f ms vs baseline %.1f ms (%.2fx)", f.ID, float64(f.TotalNs)/1e6, float64(bn)/1e6, ratio))
		}
		fmt.Printf("  %-18s %8.1f ms  vs %8.1f ms  %.2fx  %s\n",
			f.ID, float64(f.TotalNs)/1e6, float64(bn)/1e6, ratio, verdict)
	}
	if len(regressions) > 0 {
		return fmt.Errorf("bench-regression gate failed (%d finding(s), tolerance %.1fx):\n  %s",
			len(regressions), tol, strings.Join(regressions, "\n  "))
	}
	fmt.Println("bench-regression gate: all figures within tolerance")
	return nil
}

// writeSnapshot writes the snapshot to the first free BENCH_<n>.json in
// dir, so successive runs accumulate a bench trajectory.
func writeSnapshot(dir string, snap benchSnapshot) (string, error) {
	data, err := json.MarshalIndent(snap, "", "  ")
	if err != nil {
		return "", err
	}
	for n := 1; ; n++ {
		path := filepath.Join(dir, fmt.Sprintf("BENCH_%d.json", n))
		if _, err := os.Stat(path); err == nil {
			continue
		}
		return path, os.WriteFile(path, append(data, '\n'), 0o644)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "neu10-bench:", err)
	os.Exit(1)
}
