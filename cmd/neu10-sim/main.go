// Command neu10-sim runs one multi-tenant collocation scenario on the
// simulated NPU core under a chosen scheduling policy:
//
//	neu10-sim -w1 DLRM -w2 SMask -policy Neu10
//	neu10-sim -w1 MNIST -w2 RtNt -policy V10 -requests 20
package main

import (
	"flag"
	"fmt"
	"os"

	"neu10/internal/arch"
	"neu10/internal/model"
	"neu10/internal/sched"
	"neu10/internal/workload"
)

func main() {
	var (
		w1       = flag.String("w1", "DLRM", "first workload (one of "+fmt.Sprint(model.Names())+")")
		w2       = flag.String("w2", "SMask", "second workload")
		policy   = flag.String("policy", "Neu10", "scheduler: PMT | V10 | Neu10-NH | Neu10")
		requests = flag.Int("requests", 8, "requests per tenant")
		mes      = flag.Int("mes", 2, "MEs per vNPU")
		ves      = flag.Int("ves", 2, "VEs per vNPU")
	)
	flag.Parse()

	var mode sched.Mode
	switch *policy {
	case "PMT":
		mode = sched.PMT
	case "V10":
		mode = sched.V10
	case "Neu10-NH", "NH":
		mode = sched.NeuNH
	case "Neu10":
		mode = sched.Neu10
	default:
		fatal(fmt.Errorf("unknown policy %q", *policy))
	}

	core := arch.TPUv4Like()
	comp, err := workload.NewCompiled(core)
	if err != nil {
		fatal(err)
	}
	pair := workload.Pair{W1: *w1, W2: *w2}
	specs, err := comp.Tenants(pair, mode, *mes, *ves)
	if err != nil {
		fatal(err)
	}
	res, err := sched.Run(sched.Config{Core: core, Policy: mode, Requests: *requests}, specs)
	if err != nil {
		fatal(err)
	}

	ms := func(cycles float64) float64 { return cycles / core.FrequencyHz * 1e3 }
	fmt.Printf("%s under %s on %d MEs + %d VEs (%.2f ms simulated)\n\n",
		pair.Name(), mode, core.MEs, core.VEs, ms(res.DurationCycles))
	for _, tr := range res.Tenants {
		fmt.Printf("  %-6s  requests=%-5d  mean=%8.3f ms  p95=%8.3f ms  throughput=%8.1f req/s\n",
			tr.Name, tr.Requests, ms(tr.MeanLatency), ms(tr.P95Latency), tr.Throughput)
	}
	fmt.Printf("\n  core ME utilization %.1f%%, VE utilization %.1f%%, avg HBM %.0f GB/s\n",
		res.MEUtil*100, res.VEUtil*100, res.AvgBandwidth*core.FrequencyHz/1e9)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "neu10-sim:", err)
	os.Exit(1)
}
