// Command neu10-serve runs the online serving subsystem: open-loop
// request traffic pushed through an autoscaled fleet of tenant vNPUs
// under latency SLOs (internal/serve), reported as p50/p95/p99 latency,
// SLO attainment, goodput and fleet utilization.
//
//	neu10-serve -scenario steady -seed 1
//	neu10-serve -scenario flash-crowd          # autoscale vs fixed fleet
//	neu10-serve -scenario priority             # preemptive sharing vs FIFO
//	neu10-serve -scenario llm                  # continuous vs static batching
//	neu10-serve -scenario disagg               # disaggregated prefill/decode vs colocated
//	neu10-serve -scenario chaos                # chip crashes, pod outage, link degradation
//	neu10-serve -scenario paged                # paged KV + prefix cache vs full reservation
//	neu10-serve -scenario attrib               # exact latency attribution, three backends
//	neu10-serve -scenario mix-shift -json
//	neu10-serve -scenario chaos -trace trace.json -timelines tl.csv
//	neu10-serve -scenario chaos -gantt 8       # per-request lifecycle summary
//	neu10-serve -scenario llm -attrib -attrib-csv ledger.csv
//	neu10-serve -list
//
// Scenarios are the canned serve.Config setups in internal/experiments;
// output is deterministic for a given -seed at any -workers count.
//
// Observability (docs/OBSERVABILITY.md): -trace writes every scenario
// leg's request-lifecycle trace as one Chrome trace-event JSON file —
// open it at https://ui.perfetto.dev. -timelines writes the sampled
// time series (queue depth, KV occupancy, pool sizes, link utilization,
// attainment) as CSV, or as JSON when the path ends in .json. -gantt N
// prints a per-request phase summary for the first N requests per
// tenant. -attrib records the exact latency-attribution ledger — every
// request's lifetime split into exclusive segments summing cycle-exactly
// to its end-to-end latency, every replica-cycle attributed to a fleet
// bucket — adding blame tables to the output; -attrib-csv exports the
// raw ledger. Any of these switches observability on; the simulation
// itself — every pre-existing table and JSON field — is byte-identical
// with it on or off.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"neu10/internal/experiments"
	"neu10/internal/obs"
	"neu10/internal/serve"
)

// scenarios maps CLI names to experiment ids.
var scenarios = map[string]string{
	"steady":       "serve-steady",
	"flash-crowd":  "serve-flash",
	"mix-shift":    "serve-mix",
	"priority":     "serve-priority",
	"llm":          "serve-llm",
	"disagg":       "serve-disagg",
	"chaos":        "serve-chaos",
	"chaos-traced": "serve-chaos-traced",
	"consolidate":  "serve-consolidate",
	"paged":        "serve-paged",
	"attrib":       "serve-attrib",
}

func main() {
	var (
		scenario   = flag.String("scenario", "steady", "scenario: steady, flash-crowd, mix-shift, priority, llm, disagg, or chaos")
		seed       = flag.Uint64("seed", 1, "seed for arrivals, routing and therefore the whole report")
		workers    = flag.Int("workers", 0, "worker pool for scenario-internal comparisons (0 = GOMAXPROCS)")
		jsonOut    = flag.Bool("json", false, "emit the structured report(s) as JSON instead of a table")
		list       = flag.Bool("list", false, "list scenarios and exit")
		traceOut   = flag.String("trace", "", "write request-lifecycle traces as Chrome trace-event JSON (Perfetto) to this file")
		ganttN     = flag.Int("gantt", 0, "print a per-request lifecycle summary for the first N requests per tenant")
		tlOut      = flag.String("timelines", "", "write sampled time series to this file (CSV, or JSON when the path ends in .json)")
		sampleMs   = flag.Float64("sample-ms", 0, "timeline sampling period in sim milliseconds (0 = default 10)")
		attrib     = flag.Bool("attrib", false, "record exact latency attribution and the fleet cycle ledger (per-tenant blame tables in the output)")
		attribCSV  = flag.String("attrib-csv", "", "write per-request segment and per-replica bucket attribution as CSV to this file (implies -attrib)")
		cpuprofile = flag.String("cpuprofile", "", "write a CPU profile to this file")
		memprofile = flag.String("memprofile", "", "write a heap profile to this file at exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("steady        three mixed tenants at moderate Poisson load, autoscaler on")
		fmt.Println("flash-crowd   one tenant hit by a 5x burst; autoscaled vs fixed fleet, same trace")
		fmt.Println("mix-shift     two diurnal tenants in antiphase; capacity migrates between them")
		fmt.Println("priority      interactive+batch tenants on shared slots; preemptive vs FIFO, same trace")
		fmt.Println("llm           KV-cache-aware LLM serving; continuous vs static batching, same trace")
		fmt.Println("disagg        disaggregated prefill/decode over a modeled interconnect vs colocated,")
		fmt.Println("              same trace, swept over link bandwidth")
		fmt.Println("chaos         mid-trace chip crashes, a pod outage and link degradation on a")
		fmt.Println("              disaggregated fleet; no-fault vs fault vs fault+recovery, same trace")
		fmt.Println("chaos-traced  the chaos scenario with tracing and timelines always on")
		fmt.Println("consolidate   LLM + vision + recsys tenants on one shared cluster vs per-tenant")
		fmt.Println("              silos; min-chips search at equal SLO attainment")
		fmt.Println("paged         multi-turn session traffic on a tight KV partition; full-reservation")
		fmt.Println("              vs paged KV with prefix caching, evict-recompute vs evict-swap, same trace")
		fmt.Println("attrib        exact latency attribution on one session trace served three ways")
		fmt.Println("              (reserve vs paged vs disagg); blame tables and the fleet cycle ledger")
		return
	}

	id, ok := scenarios[strings.TrimSpace(*scenario)]
	if !ok {
		id = strings.TrimSpace(*scenario) // allow raw experiment ids too
		if !strings.HasPrefix(id, "serve-") {
			fatal(fmt.Errorf("unknown scenario %q (want steady, flash-crowd, mix-shift, priority, llm, disagg or chaos)", *scenario))
		}
	}

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer pprof.StopCPUProfile()
	}

	opts := experiments.DefaultOptions()
	opts.Workers = *workers
	opts.ServeSeed = *seed
	if *traceOut != "" || *ganttN > 0 || *tlOut != "" || *attrib || *attribCSV != "" {
		opts.ServeObs = &serve.ObsConfig{
			Trace:         *traceOut != "" || *ganttN > 0,
			Timelines:     *tlOut != "",
			SampleEveryMs: *sampleMs,
			Attrib:        *attrib || *attribCSV != "",
		}
	}
	runner, err := experiments.NewRunner(opts)
	if err != nil {
		fatal(err)
	}
	res, err := runner.Run(id)
	if err != nil {
		fatal(err)
	}

	sr, isServe := res.(*experiments.ServeResult)
	if (*jsonOut || *traceOut != "" || *ganttN > 0 || *tlOut != "" || *attribCSV != "") && !isServe {
		fatal(fmt.Errorf("%s is not a serving scenario", id))
	}

	if *jsonOut {
		data, err := json.MarshalIndent(sr.Reports, "", "  ")
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(append(data, '\n'))
	} else {
		fmt.Print(res.Table())
	}

	if *traceOut != "" {
		if err := writeTraces(*traceOut, sr.Reports); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "neu10-serve: trace written to %s (open at https://ui.perfetto.dev)\n", *traceOut)
	}
	if *ganttN > 0 {
		for _, rep := range sr.Reports {
			if rep.Trace != nil {
				fmt.Print(rep.Trace.Gantt(*ganttN))
			}
		}
	}
	if *tlOut != "" {
		if err := writeTimelines(*tlOut, sr.Reports); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "neu10-serve: timelines written to %s\n", *tlOut)
	}
	if *attribCSV != "" {
		if err := writeAttrib(*attribCSV, sr.Reports); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "neu10-serve: attribution ledger written to %s\n", *attribCSV)
	}
	if *memprofile != "" {
		f, err := os.Create(*memprofile)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			fatal(err)
		}
	}
}

// writeTraces merges every scenario leg's tracer into one Chrome
// trace-event file; legs become distinct Perfetto process groups via
// their scenario labels.
func writeTraces(path string, reports []*serve.Report) error {
	var tracers []*obs.Tracer
	for _, rep := range reports {
		if rep.Trace != nil {
			tracers = append(tracers, rep.Trace)
		}
	}
	if len(tracers) == 0 {
		return fmt.Errorf("no traces collected (scenario ran with tracing off)")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteChromeAll(f, tracers); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeTimelines dumps every leg's sampled series: long-format CSV by
// default, JSON when the path ends in .json.
func writeTimelines(path string, reports []*serve.Report) error {
	var sets []*obs.TimelineSet
	for _, rep := range reports {
		if rep.Timelines != nil {
			sets = append(sets, rep.Timelines)
		}
	}
	if len(sets) == 0 {
		return fmt.Errorf("no timelines collected (scenario ran with sampling off)")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := error(nil)
	if strings.HasSuffix(path, ".json") {
		data, err := json.MarshalIndent(sets, "", "  ")
		if err == nil {
			data = append(data, '\n')
			_, werr = f.Write(data)
		} else {
			werr = err
		}
	} else {
		werr = obs.WriteCSVAll(f, sets)
	}
	if werr != nil {
		f.Close()
		return werr
	}
	return f.Close()
}

// writeAttrib dumps every leg's attribution ledger — one row per
// nonzero request segment and per nonzero replica cycle bucket — as one
// long-format CSV under a single header.
func writeAttrib(path string, reports []*serve.Report) error {
	var ledgers []*obs.Ledger
	for _, rep := range reports {
		if rep.Ledger != nil {
			ledgers = append(ledgers, rep.Ledger)
		}
	}
	if len(ledgers) == 0 {
		return fmt.Errorf("no attribution collected (scenario ran with the ledger off)")
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteLedgerCSVAll(f, ledgers); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "neu10-serve:", err)
	os.Exit(1)
}
