// Command neu10-serve runs the online serving subsystem: open-loop
// request traffic pushed through an autoscaled fleet of tenant vNPUs
// under latency SLOs (internal/serve), reported as p50/p95/p99 latency,
// SLO attainment, goodput and fleet utilization.
//
//	neu10-serve -scenario steady -seed 1
//	neu10-serve -scenario flash-crowd          # autoscale vs fixed fleet
//	neu10-serve -scenario priority             # preemptive sharing vs FIFO
//	neu10-serve -scenario llm                  # continuous vs static batching
//	neu10-serve -scenario disagg               # disaggregated prefill/decode vs colocated
//	neu10-serve -scenario chaos                # chip crashes, pod outage, link degradation
//	neu10-serve -scenario mix-shift -json
//	neu10-serve -list
//
// Scenarios are the canned serve.Config setups in internal/experiments;
// output is deterministic for a given -seed at any -workers count.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"neu10/internal/experiments"
)

// scenarios maps CLI names to experiment ids.
var scenarios = map[string]string{
	"steady":      "serve-steady",
	"flash-crowd": "serve-flash",
	"mix-shift":   "serve-mix",
	"priority":    "serve-priority",
	"llm":         "serve-llm",
	"disagg":      "serve-disagg",
	"chaos":       "serve-chaos",
}

func main() {
	var (
		scenario = flag.String("scenario", "steady", "scenario: steady, flash-crowd, mix-shift, priority, llm, disagg, or chaos")
		seed     = flag.Uint64("seed", 1, "seed for arrivals, routing and therefore the whole report")
		workers  = flag.Int("workers", 0, "worker pool for scenario-internal comparisons (0 = GOMAXPROCS)")
		jsonOut  = flag.Bool("json", false, "emit the structured report(s) as JSON instead of a table")
		list     = flag.Bool("list", false, "list scenarios and exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("steady       three mixed tenants at moderate Poisson load, autoscaler on")
		fmt.Println("flash-crowd  one tenant hit by a 5x burst; autoscaled vs fixed fleet, same trace")
		fmt.Println("mix-shift    two diurnal tenants in antiphase; capacity migrates between them")
		fmt.Println("priority     interactive+batch tenants on shared slots; preemptive vs FIFO, same trace")
		fmt.Println("llm          KV-cache-aware LLM serving; continuous vs static batching, same trace")
		fmt.Println("disagg       disaggregated prefill/decode over a modeled interconnect vs colocated,")
		fmt.Println("             same trace, swept over link bandwidth")
		fmt.Println("chaos        mid-trace chip crashes, a pod outage and link degradation on a")
		fmt.Println("             disaggregated fleet; no-fault vs fault vs fault+recovery, same trace")
		return
	}

	id, ok := scenarios[strings.TrimSpace(*scenario)]
	if !ok {
		id = strings.TrimSpace(*scenario) // allow raw experiment ids too
		if !strings.HasPrefix(id, "serve-") {
			fatal(fmt.Errorf("unknown scenario %q (want steady, flash-crowd, mix-shift, priority, llm, disagg or chaos)", *scenario))
		}
	}

	opts := experiments.DefaultOptions()
	opts.Workers = *workers
	opts.ServeSeed = *seed
	runner, err := experiments.NewRunner(opts)
	if err != nil {
		fatal(err)
	}
	res, err := runner.Run(id)
	if err != nil {
		fatal(err)
	}

	if *jsonOut {
		sr, ok := res.(*experiments.ServeResult)
		if !ok {
			fatal(fmt.Errorf("%s is not a serving scenario", id))
		}
		data, err := json.MarshalIndent(sr.Reports, "", "  ")
		if err != nil {
			fatal(err)
		}
		os.Stdout.Write(append(data, '\n'))
		return
	}
	fmt.Print(res.Table())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "neu10-serve:", err)
	os.Exit(1)
}
