// Command neu10-asm assembles NeuISA text into binaries and disassembles
// binaries back to text:
//
//	neu10-asm -in kernel.s -out kernel.bin
//	neu10-asm -d kernel.bin
//
// The assembler syntax is documented on isa.Assemble.
package main

import (
	"flag"
	"fmt"
	"os"

	"neu10/internal/isa"
)

func main() {
	var (
		in   = flag.String("in", "", "assembly source file (assemble mode)")
		out  = flag.String("out", "", "output binary path (default: stdout size report)")
		dump = flag.String("d", "", "binary file to disassemble")
	)
	flag.Parse()

	switch {
	case *dump != "":
		bin, err := os.ReadFile(*dump)
		if err != nil {
			fatal(err)
		}
		prog, err := isa.DecodeNeuProgram(bin)
		if err != nil {
			fatal(err)
		}
		fmt.Print(isa.DumpNeuProgram(prog))
	case *in != "":
		src, err := os.ReadFile(*in)
		if err != nil {
			fatal(err)
		}
		prog, err := isa.Assemble(string(src))
		if err != nil {
			fatal(err)
		}
		bin := prog.Encode()
		if *out != "" {
			if err := os.WriteFile(*out, bin, 0o644); err != nil {
				fatal(err)
			}
		}
		st := prog.Stats()
		fmt.Printf("assembled: %d µTOps (%d ME, %d VE), %d groups, %d instructions, %d bytes\n",
			st.MEUTops+st.VEUTops, st.MEUTops, st.VEUTops, st.Groups, st.Instructions, len(bin))
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "neu10-asm:", err)
	os.Exit(1)
}
