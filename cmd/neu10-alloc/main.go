// Command neu10-alloc is the paper's compile-time vNPU allocator
// (§III-B): it profiles a workload with the ML-compiler cost model and
// recommends the ME/VE split that maximizes EU utilization for a
// pay-as-you-go budget.
//
//	neu10-alloc -model BERT -batch 32 -eus 4
//	neu10-alloc -model DLRM -sweep
//	neu10-alloc -cluster -cores 16     # placement policies under churn
package main

import (
	"flag"
	"fmt"
	"os"

	"neu10/internal/arch"
	"neu10/internal/cluster"
	"neu10/internal/compiler"
	"neu10/internal/core"
	"neu10/internal/model"
)

func main() {
	var (
		name  = flag.String("model", "BERT", "workload (one of "+fmt.Sprint(model.Names())+")")
		batch = flag.Int("batch", 32, "batch size")
		eus   = flag.Int("eus", 4, "total execution-unit budget (MEs + VEs)")
		sweep = flag.Bool("sweep", false, "print the full Fig. 12-style sweep up to 16 EUs")
		clst  = flag.Bool("cluster", false, "run the fleet churn study and print acceptance/fragmentation stats for every placement policy")
		cores = flag.Int("cores", 16, "fleet size for -cluster")
		rate  = flag.Float64("rate", 8, "tenant arrival rate for -cluster")
		seed  = flag.Uint64("seed", 1, "seed for -cluster (same seed ⇒ same arrival trace for all policies)")
	)
	flag.Parse()

	tpu := arch.TPUv4Like()

	if *clst {
		runCluster(tpu, *cores, *rate, *seed)
		return
	}
	g, err := model.Build(*name, *batch)
	if err != nil {
		fatal(err)
	}
	cm := compiler.NewCostModel(tpu)
	prof := cm.ProfileGraph(g)
	alloc, err := core.NewAllocator(tpu)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s (batch %d): ME active m=%.3f, VE active v=%.3f, footprint %.2f GB\n",
		*name, *batch, prof.M, prof.V, float64(g.HBMFootprint)/(1<<30))
	fmt.Printf("optimal ME:VE ratio (Eq. 4): k = %.3f\n\n", core.OptimalRatio(prof.M, prof.V))

	if *sweep {
		fmt.Println("EUs  selected  utilization  speedup-vs-1ME1VE")
		for total := 2; total <= 16; total++ {
			a, err := alloc.Allocate(prof, g.HBMFootprint, total)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%3d  (%d,%d)     %.3f        %.2fx\n",
				total, a.MEs, a.VEs, a.Utilization, a.Speedup)
		}
		return
	}

	a, err := alloc.Allocate(prof, g.HBMFootprint, *eus)
	if err != nil {
		fatal(err)
	}
	cfg := alloc.ConfigFor(a)
	fmt.Printf("recommended vNPU for %d EUs:\n", *eus)
	fmt.Printf("  MEs/core:  %d\n  VEs/core:  %d\n  SRAM/core: %d MB\n  HBM/core:  %.2f GB\n",
		cfg.NumMEsPerCore, cfg.NumVEsPerCore, cfg.SRAMSizePerCore>>20,
		float64(cfg.MemSizePerCore)/(1<<30))
	fmt.Printf("  EU utilization %.3f, speedup %.2fx over 1 ME + 1 VE\n", a.Utilization, a.Speedup)
}

// runCluster prints the cluster-scale placement comparison end-to-end:
// acceptance rate, mean EU utilization and fragmentation (stranded EUs)
// for every placement policy under the identical churn trace. These
// stats were previously computed by internal/cluster but only partially
// surfaced; here the whole table reaches the terminal.
func runCluster(tpu arch.CoreConfig, cores int, rate float64, seed uint64) {
	cfg := cluster.DefaultConfig()
	cfg.Core = tpu
	cfg.Cores = cores
	cfg.ArrivalRate = rate
	cfg.Seed = seed
	stats, err := cluster.Compare(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("fleet churn study: %d cores, arrival rate %.1f, mean lifetime %.1f, duration %.0f, seed %d\n\n",
		cfg.Cores, cfg.ArrivalRate, cfg.MeanLifetime, cfg.Duration, cfg.Seed)
	fmt.Println("policy          arrived  accepted  rejected  acceptance  mean EU util  stranded EUs")
	for _, pol := range []core.PlacementPolicy{core.GreedyBalance, core.FirstFit, core.WorstFit} {
		st := stats[pol]
		fmt.Printf("%-14s  %7d  %8d  %8d  %9.1f%%  %11.1f%%  %12.2f\n",
			pol, st.Arrived, st.Accepted, st.Rejected,
			st.AcceptanceRate()*100, st.MeanEUUtil*100, st.MeanStrandedEUs)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "neu10-alloc:", err)
	os.Exit(1)
}
