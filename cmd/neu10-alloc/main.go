// Command neu10-alloc is the paper's compile-time vNPU allocator
// (§III-B): it profiles a workload with the ML-compiler cost model and
// recommends the ME/VE split that maximizes EU utilization for a
// pay-as-you-go budget.
//
//	neu10-alloc -model BERT -batch 32 -eus 4
//	neu10-alloc -model DLRM -sweep
package main

import (
	"flag"
	"fmt"
	"os"

	"neu10/internal/arch"
	"neu10/internal/compiler"
	"neu10/internal/core"
	"neu10/internal/model"
)

func main() {
	var (
		name  = flag.String("model", "BERT", "workload (one of "+fmt.Sprint(model.Names())+")")
		batch = flag.Int("batch", 32, "batch size")
		eus   = flag.Int("eus", 4, "total execution-unit budget (MEs + VEs)")
		sweep = flag.Bool("sweep", false, "print the full Fig. 12-style sweep up to 16 EUs")
	)
	flag.Parse()

	tpu := arch.TPUv4Like()
	g, err := model.Build(*name, *batch)
	if err != nil {
		fatal(err)
	}
	cm := compiler.NewCostModel(tpu)
	prof := cm.ProfileGraph(g)
	alloc, err := core.NewAllocator(tpu)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("%s (batch %d): ME active m=%.3f, VE active v=%.3f, footprint %.2f GB\n",
		*name, *batch, prof.M, prof.V, float64(g.HBMFootprint)/(1<<30))
	fmt.Printf("optimal ME:VE ratio (Eq. 4): k = %.3f\n\n", core.OptimalRatio(prof.M, prof.V))

	if *sweep {
		fmt.Println("EUs  selected  utilization  speedup-vs-1ME1VE")
		for total := 2; total <= 16; total++ {
			a, err := alloc.Allocate(prof, g.HBMFootprint, total)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("%3d  (%d,%d)     %.3f        %.2fx\n",
				total, a.MEs, a.VEs, a.Utilization, a.Speedup)
		}
		return
	}

	a, err := alloc.Allocate(prof, g.HBMFootprint, *eus)
	if err != nil {
		fatal(err)
	}
	cfg := alloc.ConfigFor(a)
	fmt.Printf("recommended vNPU for %d EUs:\n", *eus)
	fmt.Printf("  MEs/core:  %d\n  VEs/core:  %d\n  SRAM/core: %d MB\n  HBM/core:  %.2f GB\n",
		cfg.NumMEsPerCore, cfg.NumVEsPerCore, cfg.SRAMSizePerCore>>20,
		float64(cfg.MemSizePerCore)/(1<<30))
	fmt.Printf("  EU utilization %.3f, speedup %.2fx over 1 ME + 1 VE\n", a.Utilization, a.Speedup)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "neu10-alloc:", err)
	os.Exit(1)
}
