// Command neu10-trace reproduces the paper's workload characterization
// (§II-B): ME/VE demand timelines (Fig. 2), intensity ratios (Fig. 4),
// solo utilization (Fig. 5) and HBM bandwidth (Fig. 7).
//
//	neu10-trace -fig 4
//	neu10-trace -fig 2,5,7
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"neu10/internal/experiments"
)

func main() {
	fig := flag.String("fig", "2,4,5,7", "comma-separated characterization figures: 2, 4, 5, 7")
	flag.Parse()

	runner, err := experiments.NewRunner(experiments.DefaultOptions())
	if err != nil {
		fatal(err)
	}
	for _, f := range strings.Split(*fig, ",") {
		id := "fig" + strings.TrimSpace(f)
		res, err := runner.Run(id)
		if err != nil {
			fatal(err)
		}
		fmt.Println(res.Table())
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "neu10-trace:", err)
	os.Exit(1)
}
