package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLatenciesPercentiles(t *testing.T) {
	var l Latencies
	for i := 1; i <= 100; i++ {
		l.Add(float64(i))
	}
	if got := l.Percentile(50); got != 50 {
		t.Errorf("p50 = %v, want 50", got)
	}
	if got := l.P95(); got != 95 {
		t.Errorf("p95 = %v, want 95", got)
	}
	if got := l.Max(); got != 100 {
		t.Errorf("max = %v, want 100", got)
	}
	if got := l.Mean(); got != 50.5 {
		t.Errorf("mean = %v, want 50.5", got)
	}
	if l.Count() != 100 {
		t.Errorf("count = %d", l.Count())
	}
}

func TestLatenciesEmpty(t *testing.T) {
	var l Latencies
	if l.Mean() != 0 || l.P95() != 0 || l.Count() != 0 {
		t.Fatal("empty recorder not zero-valued")
	}
	// The documented clamp domain must hold on an empty recorder too:
	// every p, in and out of range, returns 0 rather than indexing.
	for _, p := range []float64{-10, 0, 50, 100, 250} {
		if got := l.Percentile(p); got != 0 {
			t.Errorf("empty Percentile(%v) = %v, want 0", p, got)
		}
	}
}

// TestPercentileDomainClamp pins the documented clamp behavior at the
// domain edges: p <= 0 is the smallest sample, p >= 100 the largest.
func TestPercentileDomainClamp(t *testing.T) {
	var l Latencies
	for _, v := range []float64{30, 10, 20} {
		l.Add(v)
	}
	for _, p := range []float64{-5, 0, 1e-9} {
		if got := l.Percentile(p); got != 10 {
			t.Errorf("Percentile(%v) = %v, want 10 (clamped to rank 1)", p, got)
		}
	}
	if got := l.Percentile(100); got != 30 {
		t.Errorf("Percentile(100) = %v, want 30", got)
	}
	for _, p := range []float64{100.5, 1000} {
		if got := l.Percentile(p); got != 30 {
			t.Errorf("Percentile(%v) = %v, want 30 (clamped to rank n)", p, got)
		}
	}
}

func TestLatenciesUnsortedInput(t *testing.T) {
	var l Latencies
	for _, v := range []float64{9, 1, 5, 3, 7} {
		l.Add(v)
	}
	if got := l.Percentile(100); got != 9 {
		t.Errorf("max of unsorted = %v", got)
	}
	l.Add(11) // after a sorted read, adding must re-sort
	if got := l.Percentile(100); got != 11 {
		t.Errorf("max after re-add = %v", got)
	}
}

func TestPercentileProperties(t *testing.T) {
	f := func(vals []float64) bool {
		var l Latencies
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			l.Add(v)
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if l.Count() == 0 {
			return true
		}
		p50, p95 := l.Percentile(50), l.Percentile(95)
		return p50 >= lo && p95 <= hi && p50 <= p95
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUtilizationAccumulator(t *testing.T) {
	u := NewUtilization(4, 0)
	u.Accumulate(10, 4) // fully busy 10 cycles
	u.Accumulate(20, 0) // idle 10 cycles
	if got := u.Value(); math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("utilization %v, want 0.5", got)
	}
}

func TestUtilizationClampsBusy(t *testing.T) {
	u := NewUtilization(2, 0)
	u.Accumulate(10, 5) // over capacity clamps to 2
	if got := u.Value(); got != 1 {
		t.Fatalf("clamped utilization %v, want 1", got)
	}
	u2 := NewUtilization(2, 0)
	u2.Accumulate(10, -3)
	if got := u2.Value(); got != 0 {
		t.Fatalf("negative busy gave %v", got)
	}
}

func TestUtilizationTimeBackwardsPanics(t *testing.T) {
	u := NewUtilization(1, 5)
	defer func() {
		if recover() == nil {
			t.Fatal("time reversal did not panic")
		}
	}()
	u.Accumulate(3, 1)
}

func TestTimeSeriesDownsampling(t *testing.T) {
	ts := NewTimeSeries("x", 64)
	for i := 0; i < 1000; i++ {
		ts.Add(float64(i), float64(i%7))
	}
	if ts.Len() > 64 {
		t.Fatalf("series holds %d points, limit 64", ts.Len())
	}
	if ts.Times[0] != 0 {
		t.Fatal("downsampling dropped the first point")
	}
	// Time coverage preserved (last retained point near the end).
	if ts.Times[ts.Len()-1] < 900 {
		t.Fatalf("downsampling truncated time range: last = %v", ts.Times[ts.Len()-1])
	}
}

func TestTimeSeriesMeanStepWeighted(t *testing.T) {
	ts := NewTimeSeries("x", 0)
	ts.Add(0, 10) // 10 for t in [0, 2)
	ts.Add(2, 0)  // 0 for t in [2, 4)
	ts.Add(4, 0)
	if got := ts.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("time-weighted mean %v, want 5", got)
	}
	if got := ts.MaxValue(); got != 10 {
		t.Fatalf("max %v", got)
	}
}

func TestTimeSeriesEdgeCases(t *testing.T) {
	ts := NewTimeSeries("x", 0)
	if ts.Mean() != 0 || ts.MaxValue() != 0 {
		t.Fatal("empty series not zero-valued")
	}
	ts.Add(1, 42)
	if ts.Mean() != 42 {
		t.Fatal("single-point mean")
	}
}

// TestLatenciesServingStats covers the percentile and SLO helpers the
// online serving subsystem reports through.
func TestLatenciesServingStats(t *testing.T) {
	l := &Latencies{}
	for i := 100; i >= 1; i-- { // descending: forces the sort paths
		l.Add(float64(i))
	}
	if got := l.P50(); got != 50 {
		t.Errorf("P50 = %v, want 50", got)
	}
	if got := l.P99(); got != 99 {
		t.Errorf("P99 = %v, want 99", got)
	}
	if got := l.CountBelow(25); got != 25 {
		t.Errorf("CountBelow(25) = %v, want 25 (bound is inclusive)", got)
	}
	if got := l.CountBelow(25.5); got != 25 {
		t.Errorf("CountBelow(25.5) = %v, want 25", got)
	}
	if got := l.CountBelow(0); got != 0 {
		t.Errorf("CountBelow(0) = %v, want 0", got)
	}
	l.Reset()
	if l.Count() != 0 || l.P99() != 0 {
		t.Error("Reset did not clear samples")
	}
	l.Add(7)
	if got := l.CountBelow(10); got != 1 {
		t.Errorf("post-Reset CountBelow = %v, want 1", got)
	}
}
