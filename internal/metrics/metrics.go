// Package metrics provides the measurement utilities the evaluation
// harness uses: latency recorders with exact percentiles, time-weighted
// utilization accumulators, and time-series samplers for the paper's
// timeline figures.
package metrics

import (
	"fmt"
	"math"
	"sort"
)

// Latencies records per-request latencies (any unit; the harness uses
// cycles) and reports exact order statistics.
type Latencies struct {
	samples []float64
	sorted  bool
}

// Add records one sample.
func (l *Latencies) Add(v float64) {
	l.samples = append(l.samples, v)
	l.sorted = false
}

// Count returns the number of samples.
func (l *Latencies) Count() int { return len(l.samples) }

// Mean returns the arithmetic mean (0 when empty).
func (l *Latencies) Mean() float64 {
	if len(l.samples) == 0 {
		return 0
	}
	var s float64
	for _, v := range l.samples {
		s += v
	}
	return s / float64(len(l.samples))
}

// Percentile returns the exact p-th percentile (nearest-rank) of the
// recorded samples. p is clamped into (0, 100]: p <= 0 returns the
// smallest sample (nearest-rank would ask for rank 0, which does not
// exist) and p >= 100 returns the largest. An empty recorder returns 0
// for every p.
func (l *Latencies) Percentile(p float64) float64 {
	if len(l.samples) == 0 {
		return 0
	}
	if !l.sorted {
		sort.Float64s(l.samples)
		l.sorted = true
	}
	if p <= 0 {
		return l.samples[0]
	}
	rank := int(math.Ceil(p / 100 * float64(len(l.samples))))
	if rank < 1 {
		rank = 1
	}
	if rank > len(l.samples) {
		rank = len(l.samples)
	}
	return l.samples[rank-1]
}

// P50 is the median request latency.
func (l *Latencies) P50() float64 { return l.Percentile(50) }

// P95 is the tail-latency statistic the paper reports (Fig. 19).
func (l *Latencies) P95() float64 { return l.Percentile(95) }

// P99 is the tail statistic online-serving SLOs are written against
// (internal/serve): one slow request in a hundred already breaks a
// user-facing latency agreement.
func (l *Latencies) P99() float64 { return l.Percentile(99) }

// CountBelow returns how many samples are ≤ v — the numerator of an
// SLO-attainment ratio.
func (l *Latencies) CountBelow(v float64) int {
	if !l.sorted {
		sort.Float64s(l.samples)
		l.sorted = true
	}
	return sort.SearchFloat64s(l.samples, math.Nextafter(v, math.Inf(1)))
}

// Reset discards all samples but keeps the backing array, so windowed
// recorders (the serving autoscaler's observation windows) do not
// reallocate every interval.
func (l *Latencies) Reset() {
	l.samples = l.samples[:0]
	l.sorted = false
}

// Max returns the largest sample.
func (l *Latencies) Max() float64 { return l.Percentile(100) }

// Utilization accumulates busy capacity-time for a pool of engines and
// reports the busy fraction of total capacity.
type Utilization struct {
	capacity float64 // engines in the pool
	busyArea float64 // ∫ busy(t) dt
	start    float64
	last     float64
}

// NewUtilization creates an accumulator for `capacity` engines starting
// at time start.
func NewUtilization(capacity float64, start float64) *Utilization {
	return &Utilization{capacity: capacity, start: start, last: start}
}

// Accumulate adds busy·(now−last) engine-cycles, where busy is the
// number of engines that were busy over the elapsed interval.
func (u *Utilization) Accumulate(now, busy float64) {
	if now < u.last {
		panic(fmt.Sprintf("metrics: time went backwards: %v < %v", now, u.last))
	}
	if busy < 0 {
		busy = 0
	}
	if busy > u.capacity {
		busy = u.capacity
	}
	u.busyArea += busy * (now - u.last)
	u.last = now
}

// Value returns the busy fraction in [0,1] over the observed window.
func (u *Utilization) Value() float64 {
	dur := (u.last - u.start) * u.capacity
	if dur <= 0 {
		return 0
	}
	return u.busyArea / dur
}

// TimeSeries collects (t, value) samples for the paper's timeline plots
// (Figs. 2, 5, 7, 24) and the observability timelines (internal/obs),
// downsampling to a bounded number of points. The JSON shape matches
// the timeline export documented in docs/OBSERVABILITY.md.
type TimeSeries struct {
	Name   string    `json:"name"`
	Times  []float64 `json:"times_ms"`
	Values []float64 `json:"values"`
	limit  int
}

// NewTimeSeries creates a series bounded to `limit` points (0 = unbounded).
func NewTimeSeries(name string, limit int) *TimeSeries {
	return &TimeSeries{Name: name, limit: limit}
}

// Add appends a sample; when over the limit, every other point is dropped
// (keeping endpoints), halving resolution rather than truncating time.
func (ts *TimeSeries) Add(t, v float64) {
	ts.Times = append(ts.Times, t)
	ts.Values = append(ts.Values, v)
	if ts.limit > 0 && len(ts.Times) > ts.limit {
		nt, nv := ts.Times[:0], ts.Values[:0]
		for i := 0; i < len(ts.Times); i += 2 {
			nt = append(nt, ts.Times[i])
			nv = append(nv, ts.Values[i])
		}
		ts.Times, ts.Values = nt, nv
	}
}

// Len returns the number of retained points.
func (ts *TimeSeries) Len() int { return len(ts.Times) }

// Mean returns the time-weighted mean value of the series (samples are
// treated as left-continuous step values).
func (ts *TimeSeries) Mean() float64 {
	if len(ts.Times) < 2 {
		if len(ts.Values) == 1 {
			return ts.Values[0]
		}
		return 0
	}
	var area, dur float64
	for i := 1; i < len(ts.Times); i++ {
		dt := ts.Times[i] - ts.Times[i-1]
		area += ts.Values[i-1] * dt
		dur += dt
	}
	if dur == 0 {
		return 0
	}
	return area / dur
}

// MaxValue returns the largest sample value.
func (ts *TimeSeries) MaxValue() float64 {
	m := math.Inf(-1)
	for _, v := range ts.Values {
		if v > m {
			m = v
		}
	}
	if math.IsInf(m, -1) {
		return 0
	}
	return m
}

// Last returns the most recent sample (0 when empty) — e.g. the final
// cumulative value of an attainment timeline, which by construction
// equals the run's aggregate.
func (ts *TimeSeries) Last() float64 {
	if len(ts.Values) == 0 {
		return 0
	}
	return ts.Values[len(ts.Values)-1]
}

// RollingHist is an interval histogram: it accumulates samples between
// observability ticks and, on Flush, reports the interval's order
// statistics and starts the next interval — the time-resolved
// counterpart of a run-wide Latencies recorder. The backing array is
// retained across intervals, so a steady-state flush loop does not
// allocate.
type RollingHist struct {
	win Latencies
}

// Add records one sample into the current interval.
func (h *RollingHist) Add(v float64) { h.win.Add(v) }

// Flush reports the current interval's count, p50 and p99, then resets
// for the next interval. An empty interval reports zeros.
func (h *RollingHist) Flush() (n int, p50, p99 float64) {
	n = h.win.Count()
	if n > 0 {
		p50, p99 = h.win.P50(), h.win.P99()
	}
	h.win.Reset()
	return n, p50, p99
}
