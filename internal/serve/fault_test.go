package serve

import (
	"encoding/json"
	"testing"

	"neu10/internal/arch"
	"neu10/internal/workload"
)

// chaosConfig mirrors the serve-chaos scenario: one disaggregated
// LLaMA tenant on 8 pNPUs, autoscaler on, with a mid-trace decode
// crash, a correlated pod outage and a degraded link window.
func chaosConfig(seed uint64, faults *FaultPlan, rec *RecoveryConfig) Config {
	return Config{
		Scenario:    "chaos-test",
		Core:        arch.TPUv4Like(),
		Cores:       8,
		Router:      LeastLoaded,
		DurationSec: 6.0,
		Seed:        seed,
		Autoscale:   true,
		Faults:      faults,
		Recover:     rec,
		Tenants: []TenantConfig{{
			Name: "gen", Model: "LLaMA", RatePerSec: 24, EUs: 4,
			MaxBatch: 4, QueueCap: 64, SLOMs: 2000,
			InitialReplicas: 4, MaxReplicas: 8,
			LLM: &LLMConfig{
				Trace: workload.LLMTrace{
					PromptMin: 16, PromptMean: 32, PromptMax: 64,
					PromptLongFrac: 0.25, PromptLongMin: 128, PromptLongMean: 192, PromptLongMax: 256,
					OutputMin: 6, OutputMean: 12, OutputMax: 24,
				},
				Disagg: &DisaggConfig{
					PrefillReplicas: 2, MaxPrefill: 3,
					DecodeReplicas: 2, MaxDecode: 4,
					ChunkTokens: 64,
				},
			},
		}},
	}
}

func chaosFaults(policy CrashPolicy) *FaultPlan {
	return &FaultPlan{
		Policy: policy,
		Events: []FaultEvent{
			{Kind: FaultCrashReplica, AtFrac: 0.35, Tenant: "gen", Role: RoleDecode},
			{Kind: FaultPodOutage, AtFrac: 0.52, Chips: []int{0, 1}},
			{Kind: FaultLinkDegrade, AtFrac: 0.55, Scale: 1.0 / 16, UntilFrac: 0.72},
		},
	}
}

// runFleet drives a config exactly as Run does but hands back the
// fleet so tests can audit the internal accountants after drain.
func runFleet(t *testing.T, cfg Config, db *CostDB) *fleet {
	t.Helper()
	f, err := newFleet(cfg, db)
	if err != nil {
		t.Fatal(err)
	}
	for _, ten := range f.tenants {
		f.scheduleArrival(ten)
	}
	f.scheduleFaults()
	if f.cfg.Autoscale {
		f.scheduleScale(f.cfg.ScaleEverySec * f.cfg.Core.FrequencyHz)
	}
	f.eng.Run()
	return f
}

// TestCrashConservation extends the KV-conservation property to the
// crash paths: across seeds and both crash policies, with replicas
// dying mid-prefill, mid-transfer and mid-decode, every accountant on
// every surviving replica is back to zero after drain, every request
// is accounted for exactly once (completed, rejected, or crash-lost),
// and every transfer either landed or was aborted — never both, never
// neither. The KV accountants panic on over-free or overcommit, so a
// clean run also certifies no intermediate state went negative.
func TestCrashConservation(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	for _, policy := range []CrashPolicy{CrashReplay, CrashFail} {
		for seed := uint64(1); seed <= 3; seed++ {
			f := runFleet(t, chaosConfig(seed, chaosFaults(policy),
				&RecoveryConfig{WarmSpares: 1, EmergencySpawn: true, Evacuate: true}), db)
			rep := f.report()
			ten := f.tenants[0]
			l, tr := ten.llm, rep.Tenants[0]

			if ten.crashes == 0 {
				t.Fatalf("policy %s seed %d: fault plan crashed nothing", policy, seed)
			}
			if got := tr.Rejected + tr.Completed + tr.CrashLost; tr.Arrivals != got {
				t.Errorf("policy %s seed %d: %d arrivals ≠ %d rejected + %d completed + %d lost",
					policy, seed, tr.Arrivals, tr.Rejected, tr.Completed, tr.CrashLost)
			}
			if l.migrations != l.migLanded+l.migAborted {
				t.Errorf("policy %s seed %d: %d migrations ≠ %d landed + %d aborted",
					policy, seed, l.migrations, l.migLanded, l.migAborted)
			}
			if l.evacStarted != l.evacLanded+l.evacAborted {
				t.Errorf("policy %s seed %d: %d evacuations ≠ %d landed + %d aborted",
					policy, seed, l.evacStarted, l.evacLanded, l.evacAborted)
			}
			if len(l.migQ) != 0 {
				t.Errorf("policy %s seed %d: %d migrations parked after drain", policy, seed, len(l.migQ))
			}
			if len(l.migInflight) != 0 {
				t.Errorf("policy %s seed %d: %d transfers in flight after drain", policy, seed, len(l.migInflight))
			}
			for _, r := range ten.replicas {
				if r.kv.used() != 0 {
					t.Errorf("policy %s seed %d: %s replica %d holds %d KV blocks after drain",
						policy, seed, r.role, r.id, r.kv.used())
				}
				if r.inbound != 0 {
					t.Errorf("policy %s seed %d: replica %d reports %d inbound after drain",
						policy, seed, r.id, r.inbound)
				}
				if n := len(r.queueFor(ten).running); n != 0 {
					t.Errorf("policy %s seed %d: replica %d still runs %d sequences after drain",
						policy, seed, r.id, n)
				}
			}
			switch policy {
			case CrashReplay:
				if tr.Replays == 0 {
					t.Errorf("seed %d: replay policy produced no replays", seed)
				}
				if tr.RecomputeTokens == 0 {
					t.Errorf("seed %d: replays billed no recompute tokens", seed)
				}
			case CrashFail:
				if tr.Replays != 0 {
					t.Errorf("seed %d: fail policy replayed %d mid-generation sequences", seed, tr.Replays)
				}
			}
		}
	}
}

// TestRouterSurvivesTotalCrash is the PR-3 hardening regression under
// the harshest input the fault injector can produce: every replica of
// a PowerOfTwo-routed tenant crashes mid-flight with the autoscaler
// off, so nothing ever comes back. The run must degrade
// deterministically — pre-crash traffic completes, the harvest is
// shed as crash-lost, post-crash arrivals shed at admission — and the
// router must never panic on the empty fleet.
func TestRouterSurvivesTotalCrash(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	cfg := Config{
		Scenario:    "total-crash",
		Core:        arch.TPUv4Like(),
		Cores:       4,
		Router:      PowerOfTwo,
		DurationSec: 2.0,
		Seed:        3,
		Faults: &FaultPlan{Events: []FaultEvent{
			{Kind: FaultPodOutage, AtFrac: 0.5, Chips: []int{0, 1, 2, 3}},
		}},
		Tenants: []TenantConfig{
			{Name: "web", Model: "ENet", Load: 0.5, EUs: 2, MaxBatch: 8,
				InitialReplicas: 2, MaxReplicas: 2},
			{Name: "batch", Model: "TFMR", Load: 0.4, EUs: 4, MaxBatch: 8,
				InitialReplicas: 2, MaxReplicas: 2},
		},
	}
	f := runFleet(t, cfg, db)
	rep := f.report()
	for i, ten := range f.tenants {
		tr := rep.Tenants[i]
		if ten.crashes != 2 {
			t.Errorf("tenant %s: %d crashes, want both replicas dead", tr.Name, ten.crashes)
		}
		if got := ten.activeCount(); got != 0 {
			t.Errorf("tenant %s: %d active replicas after a total outage with no autoscaler", tr.Name, got)
		}
		if tr.Completed == 0 {
			t.Errorf("tenant %s: nothing completed before the outage", tr.Name)
		}
		if tr.Rejected+tr.CrashLost == 0 {
			t.Errorf("tenant %s: post-outage arrivals were neither shed nor lost", tr.Name)
		}
		if got := tr.Rejected + tr.Completed + tr.CrashLost; tr.Arrivals != got {
			t.Errorf("tenant %s: %d arrivals ≠ %d rejected + %d completed + %d lost",
				tr.Name, tr.Arrivals, tr.Rejected, tr.Completed, tr.CrashLost)
		}
	}
}

// TestAutoscalerResurrectsFromZero: a fleet crashed to zero must come
// back to MinReplicas at the next control tick even though the
// observation window is empty — an empty window reads as idle calm,
// and before the resurrection floor the ladder would have parked the
// tenant at zero replicas forever (the idle-decay asymptote is
// MinReplicas, but decay only ever runs on a live fleet).
func TestAutoscalerResurrectsFromZero(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	cfg := Config{
		Scenario:    "resurrect",
		Core:        arch.TPUv4Like(),
		Cores:       4,
		Router:      LeastLoaded,
		DurationSec: 2.0,
		Seed:        3,
		Autoscale:   true,
		Faults: &FaultPlan{Events: []FaultEvent{
			{Kind: FaultPodOutage, AtFrac: 0.5, Chips: []int{0, 1, 2, 3}},
		}},
		Tenants: []TenantConfig{
			{Name: "web", Model: "ENet", Load: 0.5, EUs: 2, MaxBatch: 8,
				MinReplicas: 2, InitialReplicas: 2, MaxReplicas: 3},
		},
	}
	f := runFleet(t, cfg, db)
	ten := f.tenants[0]
	if ten.crashes == 0 {
		t.Fatal("outage crashed nothing")
	}
	if got := ten.activeCount(); got < ten.cfg.MinReplicas {
		t.Errorf("tenant ended with %d active replicas, MinReplicas %d promised", got, ten.cfg.MinReplicas)
	}
	if ten.scaleUps == 0 {
		t.Error("resurrection spawned no replicas")
	}
	if ten.recoveredAt == 0 {
		t.Error("fleet never reported recovery to pre-fault strength")
	}
}

// TestEvacuationRebalances drives the decode-pool evacuation path: a
// decode replica crash leaves its survivor holding long-lived
// mid-generation sequences while the emergency spawn sits empty, so
// the rebalance (retried at the first decode-batch boundary, when the
// in-flight iteration no longer pins the sequences) ships KV across
// the fabric until the load gap closes. Landed evacuations must move
// their sequences' residency with full conservation — the survivor's
// blocks free exactly at landing, and the evacuated sequences finish
// on the target.
func TestEvacuationRebalances(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	cfg := chaosConfig(1, &FaultPlan{Events: []FaultEvent{
		{Kind: FaultCrashReplica, AtFrac: 0.5, Tenant: "gen", Role: RoleDecode},
	}}, &RecoveryConfig{EmergencySpawn: true, Evacuate: true})
	// Long generations keep sequences resident on the survivor far past
	// the crash; a calm arrival rate keeps the migration queue empty, so
	// backfilling the spare through ordinary prefill→decode handoffs
	// loses to evacuation. The fleet is fixed (no autoscaler) so idle
	// decay cannot shrink the decode pool under the fault first.
	cfg.Autoscale = false
	cfg.Tenants[0].RatePerSec = 4
	cfg.Tenants[0].LLM.Trace.OutputMin = 12
	cfg.Tenants[0].LLM.Trace.OutputMean = 24
	cfg.Tenants[0].LLM.Trace.OutputMax = 48
	f := runFleet(t, cfg, db)
	ten := f.tenants[0]
	l := ten.llm
	if l.evacStarted == 0 {
		t.Fatal("decode crash triggered no evacuations")
	}
	if l.evacLanded == 0 {
		t.Error("no evacuation landed")
	}
	if l.evacStarted != l.evacLanded+l.evacAborted {
		t.Errorf("%d evacuations ≠ %d landed + %d aborted", l.evacStarted, l.evacLanded, l.evacAborted)
	}
	if l.evacLanded > 0 && l.evacBytes == 0 {
		t.Error("landed evacuations moved no bytes")
	}
	for _, r := range ten.replicas {
		if r.kv.used() != 0 || r.inbound != 0 {
			t.Errorf("%s replica %d: %d KV blocks, %d inbound after drain",
				r.role, r.id, r.kv.used(), r.inbound)
		}
	}
}

// TestChaosRecoveryBeatsBaseline is the scenario's headline claim as a
// regression: on the identical trace, recovery (warm spares, emergency
// spawns, evacuation) must strictly beat the bare autoscaler through
// the fault window — higher attainment over post-fault arrivals AND
// lower time-to-recover — with the recompute bill itemized.
func TestChaosRecoveryBeatsBaseline(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	base, err := Run(chaosConfig(1, chaosFaults(CrashReplay), nil), db)
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Run(chaosConfig(1, chaosFaults(CrashReplay),
		&RecoveryConfig{WarmSpares: 1, EmergencySpawn: true, Evacuate: true}), db)
	if err != nil {
		t.Fatal(err)
	}
	b, r := base.Tenants[0], rec.Tenants[0]
	if b.Crashes == 0 || r.Crashes == 0 {
		t.Fatalf("fault plan crashed nothing (base %d, recover %d)", b.Crashes, r.Crashes)
	}
	if r.FaultAttainment <= b.FaultAttainment {
		t.Errorf("fault-window attainment %.3f with recovery ≤ %.3f without",
			r.FaultAttainment, b.FaultAttainment)
	}
	if r.TTRMs >= b.TTRMs {
		t.Errorf("time-to-recover %.2fms with recovery ≥ %.2fms without", r.TTRMs, b.TTRMs)
	}
	if !r.Recovered {
		t.Error("recovery never restored pre-fault replica strength")
	}
	if r.EmergencySpawns == 0 {
		t.Error("no emergency spawns despite EmergencySpawn: true")
	}
	if b.RecomputeTokens == 0 {
		t.Error("replayed sequences billed no recompute tokens")
	}
}

// TestChaosDeterminism: the full fault pipeline — crashes, aborted
// transfers, emergency spawns, evacuations — is a pure function of the
// seed: same seed ⇒ byte-identical report, different seed ⇒ different
// trace.
func TestChaosDeterminism(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	rec := &RecoveryConfig{WarmSpares: 1, EmergencySpawn: true, Evacuate: true}
	run := func(seed uint64) []byte {
		rep, err := Run(chaosConfig(seed, chaosFaults(CrashReplay), rec), db)
		if err != nil {
			t.Fatal(err)
		}
		data, err := json.Marshal(rep)
		if err != nil {
			t.Fatal(err)
		}
		return data
	}
	a, b := run(7), run(7)
	if string(a) != string(b) {
		t.Error("same seed produced different chaos reports")
	}
	if c := run(8); string(a) == string(c) {
		t.Error("different seeds produced identical chaos reports")
	}
}
