package serve

import (
	"fmt"
	"sort"
	"strings"

	"neu10/internal/obs"
	"neu10/internal/sim"
)

// Attribution hooks and report assembly for the latency ledger
// (obs.Ledger, enabled by ObsConfig.Attrib). The hooks ride the same
// call sites the tracer uses, under the same contract: f.led == nil is
// the disabled state (every helper bails on one pointer test, and the
// Ledger's own methods are nil-receiver-safe for direct calls), and an
// enabled ledger observes the simulation without ever perturbing it.
//
// The segment-flow protocol the hooks implement:
//
//	arrive ─► SegQueue ─► [SegKVStall] ─► SegService → done   (single-shot)
//	                   └► SegPrefill/SegReplay/SegCrashReplay ─►
//	                      SegDecodeGap ⇄ SegDecode ─► done     (LLM)
//
// with excursions for chunked prefill (SegChunkGap), migration
// (SegMigrate), paged eviction (back to SegQueue, or the swap
// pipeline SegSwapOut → SegSwapQ → SegSwapIn), preemption
// (SegPreempt, via suspend/resume), and crash recovery
// (SegCrashRequeue → SegCrashReplay). Every transition closes the
// open interval into the outgoing segment, so the decomposition sums
// exactly to completion − arrival regardless of which excursions a
// request took — the invariant obs.Ledger.ReqDone checks.

// ledBusyBucket maps a batch kind to the fleet-cycle bucket its
// compute occupies.
func ledBusyBucket(k batchKind) obs.Bucket {
	switch k {
	case kindInvoke:
		return obs.BucketService
	case kindLLMPrefill, kindLLMStaticPrefill:
		return obs.BucketPrefill
	default:
		return obs.BucketDecode
	}
}

// ledSeqs transitions every sequence of a batch into seg.
func (f *fleet) ledSeqs(t *tenantState, seqs []*llmSeq, seg obs.Segment, now sim.Time) {
	if f.led == nil {
		return
	}
	for _, s := range seqs {
		f.led.ReqSeg(t.cfg.Name, s.req.id, seg, float64(now))
	}
}

// ledPrefillSeqs transitions sequences into their prompt-compute
// segment: crash replays and eviction replays re-earn their lost
// tokens under their own labels, so "prefill" stays first-pass work.
func (f *fleet) ledPrefillSeqs(t *tenantState, seqs []*llmSeq, now sim.Time) {
	if f.led == nil {
		return
	}
	for _, s := range seqs {
		seg := obs.SegPrefill
		if s.req.crashed {
			seg = obs.SegCrashReplay
		} else if s.req.replay {
			seg = obs.SegReplay
		}
		f.led.ReqSeg(t.cfg.Name, s.req.id, seg, float64(now))
	}
}

// ledStall marks the queue head KV-stalled: admissible but for blocks.
func (f *fleet) ledStall(t *tenantState, req request, now sim.Time) {
	if f.led == nil {
		return
	}
	f.led.ReqSeg(t.cfg.Name, req.id, obs.SegKVStall, float64(now))
}

// ledRepIdle re-marks an unoccupied replica's standing bucket:
// draining, doing wire work (inbound KV transfers), or plain idle.
// No-op while a batch runs — startSegment owns the busy buckets.
func (f *fleet) ledRepIdle(r *replica, now sim.Time) {
	if f.led == nil || r.cur != nil {
		return
	}
	b := obs.BucketIdle
	if r.draining {
		b = obs.BucketDrain
	} else if r.inbound > 0 {
		b = obs.BucketMigration
	}
	f.led.RepMark(r.uid, b, float64(now))
}

// ledSuspend parks every request of a suspended batch in SegPreempt;
// ledResume restores them. The ledger remembers the parked segment, so
// a preempted decode gap resumes as a decode gap.
func (f *fleet) ledSuspend(b *batch, now sim.Time) {
	if f.led == nil {
		return
	}
	name := b.ten.cfg.Name
	if b.kind == kindInvoke {
		for i := range b.reqs {
			f.led.ReqSuspend(name, b.reqs[i].id, float64(now))
		}
		return
	}
	for _, s := range b.seqs {
		f.led.ReqSuspend(name, s.req.id, float64(now))
	}
}

func (f *fleet) ledResume(b *batch, now sim.Time) {
	if f.led == nil {
		return
	}
	name := b.ten.cfg.Name
	if b.kind == kindInvoke {
		for i := range b.reqs {
			f.led.ReqResume(name, b.reqs[i].id, float64(now))
		}
		return
	}
	for _, s := range b.seqs {
		f.led.ReqResume(name, s.req.id, float64(now))
	}
}

// TenantAttrib is one tenant's latency-attribution section: blame
// breakdowns over request cohorts and the top worst-request
// drilldowns. Present only when the run enabled the ledger
// (ObsConfig.Attrib), so legacy JSON output is byte-identical.
type TenantAttrib struct {
	Completed int            `json:"completed"`
	Cohorts   []AttribCohort `json:"cohorts"`
	Worst     []AttribWorst  `json:"worst,omitempty"`
}

// AttribCohort is the mean segment decomposition over one request
// cohort: "all", or the tail cohorts — the requests making up the
// p99 of end-to-end latency, TTFT, or TPOT. Segments are mean
// per-request milliseconds (nonzero only) and sum to MeanMs exactly,
// because each request's segments sum exactly to its lifetime.
type AttribCohort struct {
	Cohort   string             `json:"cohort"`
	Count    int                `json:"count"`
	MeanMs   float64            `json:"mean_ms"`
	Segments map[string]float64 `json:"segments_ms"`
}

// AttribWorst is one worst-request drilldown: where the slowest
// completions actually spent their time.
type AttribWorst struct {
	Req          int64   `json:"req"`
	E2EMs        float64 `json:"e2e_ms"`
	TTFTMs       float64 `json:"ttft_ms,omitempty"`
	Dominant     string  `json:"dominant"`
	DominantMs   float64 `json:"dominant_ms"`
	DominantFrac float64 `json:"dominant_frac"`
}

// CycleLedgerReport is the fleet cycle ledger: every replica-cycle
// between spawn and retire attributed to one bucket, Σ BucketsMs ==
// CapacityMs (the integrated capacity) by conservation.
type CycleLedgerReport struct {
	Replicas   int                `json:"replicas"`
	CapacityMs float64            `json:"capacity_ms"`
	BucketsMs  map[string]float64 `json:"buckets_ms"`
	Violations int                `json:"violations,omitempty"`
	OpenReqs   int                `json:"open_reqs,omitempty"`
	Drops      int                `json:"drops,omitempty"`
}

// attribFinish seals the ledger at end-of-run and assembles the
// attribution sections of the report. No-op without a ledger.
func (f *fleet) attribFinish(rep *Report, end float64) {
	if f.led == nil {
		return
	}
	f.led.FinishReps(end)
	rep.Ledger = f.led
	freq := f.cfg.Core.FrequencyHz
	ms := func(cycles float64) float64 { return cycles / freq * 1e3 }
	recs := f.led.Completed()
	for i := range rep.Tenants {
		tr := &rep.Tenants[i]
		var own []*obs.ReqRecord
		for _, r := range recs {
			if r.Proc == tr.Name {
				own = append(own, r)
			}
		}
		ta := &TenantAttrib{Completed: len(own)}
		ta.Cohorts = append(ta.Cohorts, attribCohort("all", own, ms))
		if c, ok := tailCohort("p99_e2e", own, (*obs.ReqRecord).E2E, ms); ok {
			ta.Cohorts = append(ta.Cohorts, c)
		}
		if c, ok := tailCohort("p99_ttft", own, (*obs.ReqRecord).TTFT, ms); ok {
			ta.Cohorts = append(ta.Cohorts, c)
		}
		if c, ok := tailCohort("p99_tpot", own, (*obs.ReqRecord).TPOT, ms); ok {
			ta.Cohorts = append(ta.Cohorts, c)
		}
		sorted := append([]*obs.ReqRecord(nil), own...)
		sort.Slice(sorted, func(a, b int) bool {
			if sorted[a].E2E() != sorted[b].E2E() {
				return sorted[a].E2E() > sorted[b].E2E()
			}
			return sorted[a].ID < sorted[b].ID
		})
		for k := 0; k < len(sorted) && k < 5; k++ {
			r := sorted[k]
			dom := r.Dominant()
			w := AttribWorst{
				Req:        r.ID,
				E2EMs:      ms(r.E2E()),
				TTFTMs:     ms(r.TTFT()),
				Dominant:   dom.String(),
				DominantMs: ms(r.Seg[dom]),
			}
			if e := r.E2E(); e > 0 {
				w.DominantFrac = r.Seg[dom] / e
			}
			ta.Worst = append(ta.Worst, w)
		}
		tr.Attrib = ta
	}
	reps := f.led.Replicas()
	cl := &CycleLedgerReport{
		Replicas:   len(reps),
		BucketsMs:  map[string]float64{},
		Violations: f.led.Violations(),
		OpenReqs:   f.led.Open(),
		Drops:      f.led.Drops(),
	}
	var capacity float64
	for _, r := range reps {
		capacity += r.Lifetime()
		for b, v := range r.Buckets {
			if v > 0 {
				cl.BucketsMs[obs.Bucket(b).String()] += ms(v)
			}
		}
	}
	cl.CapacityMs = ms(capacity)
	rep.CycleLedger = cl
}

// attribCohort folds a record set into its mean segment decomposition.
func attribCohort(name string, recs []*obs.ReqRecord, ms func(float64) float64) AttribCohort {
	c := AttribCohort{Cohort: name, Count: len(recs), Segments: map[string]float64{}}
	if len(recs) == 0 {
		return c
	}
	var e2e float64
	var seg [obs.NumSegments]float64
	for _, r := range recs {
		e2e += r.E2E()
		for i, v := range r.Seg {
			seg[i] += v
		}
	}
	n := float64(len(recs))
	c.MeanMs = ms(e2e / n)
	for i, v := range seg {
		if v > 0 {
			c.Segments[obs.Segment(i).String()] = ms(v / n)
		}
	}
	return c
}

// tailCohort selects the records making up the p99 tail of the given
// metric — everything at or above the p99 threshold over records where
// the metric is defined (> 0) — and folds them. ok=false when no
// record defines the metric.
func tailCohort(name string, recs []*obs.ReqRecord, metric func(*obs.ReqRecord) float64, ms func(float64) float64) (AttribCohort, bool) {
	var vals []float64
	var pool []*obs.ReqRecord
	for _, r := range recs {
		if v := metric(r); v > 0 {
			pool = append(pool, r)
			vals = append(vals, v)
		}
	}
	if len(pool) == 0 {
		return AttribCohort{}, false
	}
	sort.Float64s(vals)
	idx := (len(vals)*99+99)/100 - 1 // ceil(0.99·n) − 1
	if idx < 0 {
		idx = 0
	}
	thr := vals[idx]
	var cohort []*obs.ReqRecord
	for _, r := range pool {
		if metric(r) >= thr {
			cohort = append(cohort, r)
		}
	}
	return attribCohort(name, cohort, ms), true
}

// AttribTable renders the attribution sections as plain-text tables:
// per-tenant cohort blame breakdowns (one column per segment observed
// anywhere in the run, taxonomy order), the worst-request drilldowns,
// and the fleet cycle-ledger line. Empty without a ledger, so legacy
// table output is byte-identical.
func (rep *Report) AttribTable() string {
	if rep.Ledger == nil {
		return ""
	}
	var sb strings.Builder
	var present [obs.NumSegments]bool
	type cohortRow struct {
		tenant string
		c      AttribCohort
	}
	var rows []cohortRow
	for _, t := range rep.Tenants {
		if t.Attrib == nil {
			continue
		}
		for _, c := range t.Attrib.Cohorts {
			rows = append(rows, cohortRow{t.Name, c})
			for i := 0; i < obs.NumSegments; i++ {
				if c.Segments[obs.Segment(i).String()] != 0 {
					present[i] = true
				}
			}
		}
	}
	if len(rows) > 0 {
		header := []string{"attrib tenant", "cohort", "n", "e2e(ms)"}
		var segs []obs.Segment
		for i := 0; i < obs.NumSegments; i++ {
			if present[i] {
				segs = append(segs, obs.Segment(i))
				header = append(header, obs.Segment(i).String()+"(ms)")
			}
		}
		var cells [][]string
		for _, r := range rows {
			row := []string{r.tenant, r.c.Cohort, fmt.Sprint(r.c.Count), fmt.Sprintf("%.2f", r.c.MeanMs)}
			for _, s := range segs {
				row = append(row, fmt.Sprintf("%.2f", r.c.Segments[s.String()]))
			}
			cells = append(cells, row)
		}
		renderTable(&sb, header, cells)
	}
	var wrows [][]string
	for _, t := range rep.Tenants {
		if t.Attrib == nil {
			continue
		}
		for _, w := range t.Attrib.Worst {
			wrows = append(wrows, []string{
				t.Name, fmt.Sprint(w.Req),
				fmt.Sprintf("%.2f", w.E2EMs), fmt.Sprintf("%.2f", w.TTFTMs),
				w.Dominant, fmt.Sprintf("%.2f", w.DominantMs),
				fmt.Sprintf("%.0f%%", w.DominantFrac*100),
			})
		}
	}
	if len(wrows) > 0 {
		renderTable(&sb, []string{"worst req tenant", "req", "e2e(ms)", "ttft(ms)", "dominant", "dom(ms)", "share"}, wrows)
	}
	if cl := rep.CycleLedger; cl != nil {
		parts := make([]string, 0, obs.NumBuckets)
		for i := 0; i < obs.NumBuckets; i++ {
			name := obs.Bucket(i).String()
			if v := cl.BucketsMs[name]; v != 0 {
				parts = append(parts, fmt.Sprintf("%s %.2f", name, v))
			}
		}
		fmt.Fprintf(&sb, "cycle ledger: %d replicas, %.2f ms capacity = %s; %d violations, %d open, %d drops\n",
			cl.Replicas, cl.CapacityMs, strings.Join(parts, " + "), cl.Violations, cl.OpenReqs, cl.Drops)
	}
	return sb.String()
}
