// Package serve is the online serving subsystem: a deterministic,
// event-driven simulator that pushes continuous per-request inference
// traffic through a fleet of pNPUs hosting tenant vNPUs under latency
// SLOs. It is the layer the paper defers to KubeVirt/Kubernetes — the
// piece that turns the repository's batch figure-reproducer into a
// continuously running serving system.
//
// The pipeline per tenant is:
//
//	arrivals ──► admission ──► router ──► replica queue ──► dynamic
//	batcher ──► batched invocation (costed through internal/compiler +
//	internal/sched, see CostDB) ──► completion + latency record
//
// with a periodic autoscaler observing windowed p99 latency against the
// tenant's SLO and growing/shrinking the tenant's vNPU fleet through the
// paper's §III-B allocator (EU-budget → ME:VE split) and §III-C mapper
// (segment-isolated placement under a cluster policy).
//
// Tenants can additionally pool their replicas into temporal-shared
// slots (TenantConfig.ShareGroup) scheduled by request priority with
// quantum-boundary preemption (Config.Preempt) — see slot.go and
// docs/SERVING.md.
//
// Everything runs on internal/sim's event kernel with seeded RNG
// streams, so a whole serving run — arrivals, routing coin flips,
// scaling actions, every percentile in the report — is reproducible
// bit-for-bit from Config.Seed.
package serve

import (
	"fmt"
	"math"

	"neu10/internal/arch"
	"neu10/internal/compiler"
	"neu10/internal/core"
	"neu10/internal/metrics"
	"neu10/internal/model"
	"neu10/internal/sim"
	"neu10/internal/virt"
	"neu10/internal/xfer"
)

// Role specializes a replica slot in a disaggregated LLM fleet. The
// zero value keeps the colocated behavior: a mixed slot runs whatever
// its tenant's batcher hands it.
type Role int

const (
	// RoleMixed serves every work kind — the colocated default.
	RoleMixed Role = iota
	// RolePrefill only runs prompt processing; arrivals of a
	// disaggregated tenant route exclusively here, and finished prompts
	// migrate their KV to a decode slot over the interconnect.
	RolePrefill
	// RoleDecode only runs decode iterations over sequences whose KV a
	// migration has landed; it never sees a prefill, so decode TPOT is
	// isolated from prompt bursts by construction.
	RoleDecode
)

func (r Role) String() string {
	switch r {
	case RoleMixed:
		return "mixed"
	case RolePrefill:
		return "prefill"
	case RoleDecode:
		return "decode"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// RouterPolicy selects how the SLO-aware router spreads a tenant's
// admitted requests across its replicas.
type RouterPolicy int

const (
	// LeastLoaded picks the replica with the fewest outstanding requests
	// (queued + in service); ties break toward the older replica.
	LeastLoaded RouterPolicy = iota
	// JSQ (join-shortest-queue) considers only the wait queue, ignoring
	// the batch currently in service.
	JSQ
	// PowerOfTwo samples two distinct replicas uniformly and joins the
	// less loaded — the classic O(1) approximation of least-loaded.
	PowerOfTwo
)

func (p RouterPolicy) String() string {
	switch p {
	case LeastLoaded:
		return "least-loaded"
	case JSQ:
		return "jsq"
	case PowerOfTwo:
		return "power-of-two"
	default:
		return fmt.Sprintf("router(%d)", int(p))
	}
}

// Priority is a request priority class. Every request carries its
// tenant's priority; on temporal-shared replica slots (see
// TenantConfig.ShareGroup) a higher-priority batch preempts an
// in-flight lower-priority one at a µTOp-quantum boundary when
// Config.Preempt is set.
type Priority int

const (
	// Batch is the background class: throughput-oriented work that
	// tolerates preemption (the zero value, so priority-unaware configs
	// keep their old behavior).
	Batch Priority = iota
	// Interactive is the latency-sensitive class: its batches preempt
	// Batch work on shared slots.
	Interactive
)

// numPriorities sizes per-class accounting arrays.
const numPriorities = int(Interactive) + 1

func (p Priority) String() string {
	switch p {
	case Batch:
		return "batch"
	case Interactive:
		return "interactive"
	default:
		return fmt.Sprintf("priority(%d)", int(p))
	}
}

// ArrivalKind selects a tenant's open-loop arrival process. All three
// are Poisson processes thinned from a deterministic rate envelope, so
// the trace depends only on the seed.
type ArrivalKind int

const (
	// Poisson is a homogeneous Poisson stream at the base rate.
	Poisson ArrivalKind = iota
	// Flash is Poisson with the rate multiplied by BurstFactor inside
	// the [BurstStartFrac, BurstEndFrac) window of the run — a flash
	// crowd.
	Flash
	// Diurnal modulates the rate sinusoidally: base·(1 + depth·sin(...)),
	// the shape of a day/night traffic trace.
	Diurnal
)

func (k ArrivalKind) String() string {
	switch k {
	case Poisson:
		return "poisson"
	case Flash:
		return "flash"
	case Diurnal:
		return "diurnal"
	default:
		return fmt.Sprintf("arrival(%d)", int(k))
	}
}

// TenantConfig describes one served tenant: its model, traffic, SLO and
// scaling envelope.
type TenantConfig struct {
	Name  string
	Model string // one of model.Names()

	// Load is the offered load as a fraction of the initial fleet's
	// max-batch service capacity; RatePerSec overrides it when > 0.
	Load       float64
	RatePerSec float64

	Arrival       ArrivalKind
	BurstFactor   float64 // Flash: rate multiplier during the burst window
	BurstStart    float64 // Flash: window start, fraction of the run (default 1/3)
	BurstEnd      float64 // Flash: window end, fraction of the run (default 2/3)
	DiurnalDepth  float64 // Diurnal: modulation depth in [0, 1) (default 0.8)
	DiurnalPeriod float64 // Diurnal: period as a fraction of the run (default 1)
	DiurnalPhase  float64 // Diurnal: phase offset in radians

	// SLOMs is the per-request latency objective in milliseconds; when 0
	// it is derived as SLOFactor × the ideal full-batch service time on
	// one replica (default factor 3).
	SLOMs     float64
	SLOFactor float64

	MaxBatch      int     // dynamic batcher cap (default 8)
	BatchWindowMs float64 // max coalescing wait; default SLOMs/10
	QueueCap      int     // per-replica admission bound (default 64)

	// EUs is the per-replica execution-unit budget handed to the §III-B
	// allocator (default 4). The autoscaler may grow it in steps of 2 up
	// to what fits one physical core, and shrink it back.
	EUs             int
	InitialReplicas int // default 1
	MinReplicas     int // default 1
	MaxReplicas     int // default InitialReplicas

	// Priority is the class every request of this tenant carries
	// (default Batch). It only matters on temporal-shared slots.
	Priority Priority
	// ShareGroup names a temporal-sharing pool: tenants with the same
	// non-empty group pool ALL their replicas — any member's requests
	// may be served by any slot in the pool, each slot keeping one wait
	// queue per member. Empty (the default) keeps replicas private to
	// their tenant, exactly the pre-priority behavior.
	ShareGroup string

	// LLM, when non-nil, makes the tenant autoregressive: requests draw
	// a prompt/output shape, replicas carve a KV-cache partition out of
	// their vNPU HBM, and the slot runs a continuous (or, for the
	// baseline, static) batcher over generation iterations — see llm.go.
	LLM *LLMConfig
}

func (tc *TenantConfig) defaults() {
	if tc.SLOFactor == 0 {
		tc.SLOFactor = 3
	}
	if tc.MaxBatch == 0 {
		tc.MaxBatch = 8
	}
	if tc.QueueCap == 0 {
		tc.QueueCap = 64
	}
	if tc.EUs == 0 {
		tc.EUs = 4
	}
	if tc.InitialReplicas == 0 {
		tc.InitialReplicas = 1
	}
	if tc.MinReplicas == 0 {
		tc.MinReplicas = 1
	}
	if tc.MaxReplicas == 0 {
		tc.MaxReplicas = tc.InitialReplicas
	}
	if tc.BurstFactor == 0 {
		tc.BurstFactor = 1
	}
	if tc.BurstStart == 0 && tc.BurstEnd == 0 {
		tc.BurstStart, tc.BurstEnd = 1.0/3, 2.0/3
	}
	if tc.DiurnalDepth == 0 {
		tc.DiurnalDepth = 0.8
	}
	if tc.DiurnalPeriod == 0 {
		tc.DiurnalPeriod = 1
	}
	if tc.LLM != nil {
		tc.LLM.defaults()
		if d := tc.LLM.Disagg; d != nil && d.DecodeBatch == 0 {
			d.DecodeBatch = 2 * tc.MaxBatch
		}
	}
}

func (tc *TenantConfig) validate() error {
	switch {
	case tc.Name == "":
		return fmt.Errorf("serve: tenant without a name")
	case tc.Load <= 0 && tc.RatePerSec <= 0:
		return fmt.Errorf("serve: tenant %s has no offered load", tc.Name)
	case tc.BurstFactor < 1:
		return fmt.Errorf("serve: tenant %s burst factor %v < 1", tc.Name, tc.BurstFactor)
	case tc.Arrival == Flash && !(tc.BurstStart >= 0 && tc.BurstStart < tc.BurstEnd && tc.BurstEnd <= 1):
		return fmt.Errorf("serve: tenant %s burst window [%v, %v) must satisfy 0 ≤ start < end ≤ 1",
			tc.Name, tc.BurstStart, tc.BurstEnd)
	case tc.DiurnalDepth < 0 || tc.DiurnalDepth >= 1:
		return fmt.Errorf("serve: tenant %s diurnal depth %v out of [0,1)", tc.Name, tc.DiurnalDepth)
	case tc.MinReplicas < 1:
		return fmt.Errorf("serve: tenant %s needs ≥1 replica", tc.Name)
	case tc.InitialReplicas < tc.MinReplicas || tc.MaxReplicas < tc.InitialReplicas:
		return fmt.Errorf("serve: tenant %s replica bounds %d ≤ %d ≤ %d malformed",
			tc.Name, tc.MinReplicas, tc.InitialReplicas, tc.MaxReplicas)
	case tc.QueueCap < 1:
		return fmt.Errorf("serve: tenant %s queue cap %d", tc.Name, tc.QueueCap)
	case tc.MaxBatch < 1:
		return fmt.Errorf("serve: tenant %s max batch %d", tc.Name, tc.MaxBatch)
	case tc.EUs < 2:
		return fmt.Errorf("serve: tenant %s EU budget %d < 2 (1 ME + 1 VE)", tc.Name, tc.EUs)
	case tc.Priority < Batch || tc.Priority > Interactive:
		return fmt.Errorf("serve: tenant %s priority %d unknown", tc.Name, tc.Priority)
	}
	if tc.LLM != nil {
		if err := tc.LLM.validate(tc.Name); err != nil {
			return err
		}
		// Disaggregated pools are private by construction: a prefill or
		// decode slot serves exactly one tenant's one phase, which is the
		// whole point — temporal sharing would reintroduce the
		// interference disaggregation removes.
		if tc.LLM.Disagg != nil && tc.ShareGroup != "" {
			return fmt.Errorf("serve: tenant %s: disaggregation and share groups are mutually exclusive", tc.Name)
		}
	}
	return nil
}

// Config parameterizes one serving run.
type Config struct {
	Scenario string // label carried into the report
	Core     arch.CoreConfig
	Cores    int // pNPU fleet size (single-core pNPUs, like internal/cluster)

	Placement core.PlacementPolicy
	Router    RouterPolicy

	DurationSec float64
	Seed        uint64

	// Autoscale enables the control loop; when false the fleet stays at
	// each tenant's InitialReplicas — the no-autoscale baseline.
	Autoscale bool
	// ScaleEverySec is the control interval (default 0.25s).
	ScaleEverySec float64
	// ScaleUpP99Frac: scale up when windowed p99 > frac × SLO (default 1).
	ScaleUpP99Frac float64
	// ScaleDownP99Frac: scale down when windowed p99 < frac × SLO and the
	// window saw no rejections (default 0.4).
	ScaleDownP99Frac float64

	// Preempt enables priority-aware preemptive scheduling on
	// temporal-shared slots: a waiting higher-priority batch preempts an
	// in-flight lower-priority one at the next µTOp-quantum boundary,
	// and the victim later resumes with exactly its remaining service
	// cycles (sched.CheckpointAt models the checkpoint; each
	// save/restore costs virt.SwitchCycles on the slot). When false,
	// shared slots serve their queues FIFO by arrival — the no-priority
	// baseline the serve-priority scenario compares against.
	Preempt bool
	// PreemptQuantumCycles is the µTOp-quantum granularity preemption
	// checkpoints at (default 4096 cycles). Quanta longer than a batch's
	// service time make that batch effectively non-preemptible.
	PreemptQuantumCycles float64
	// MaxPreemptsPerBatch denominates the aging-credit budget that
	// bounds Batch wait (default 4): every batch tolerates up to
	// MaxPreemptsPerBatch × PreemptQuantumCycles cycles of victimization
	// delay (time spent suspended or bypassed by higher-priority work);
	// once the accrued delay exhausts that credit the batch is immune to
	// further preemption and bypass — the anti-starvation bound for
	// Batch work under sustained Interactive load. (This replaces the
	// original hard event cap: a batch victimized by many cheap
	// interruptions now stays preemptible longer, one victimized by a
	// single long one becomes immune sooner, and either way its total
	// extra wait is bounded in cycles, not events.)
	MaxPreemptsPerBatch int

	// LinkGBps is the modeled chip-to-chip interconnect bandwidth per
	// link in GB/s (default 64); LinkLatencyUs the per-transfer latency
	// in microseconds (default 2). Only disaggregated tenants
	// (LLMConfig.Disagg) ship KV migrations over the fabric; everything
	// else ignores it. Concurrent migrations between the same chip pair
	// share the link max-min fairly (internal/xfer).
	LinkGBps      float64
	LinkLatencyUs float64

	// Faults schedules deterministic fault injection — replica/chip
	// crashes, correlated pod outages, link degradation — on the sim
	// clock; nil (the default) keeps the fleet fault-free. See fault.go.
	Faults *FaultPlan
	// Recover enables the recovery machinery a FaultPlan exercises (warm
	// spares, emergency spawns, decode-pool evacuation); nil is the
	// no-recovery baseline.
	Recover *RecoveryConfig

	// Obs enables deterministic tracing and time-resolved telemetry
	// (see obs.go and docs/OBSERVABILITY.md); nil — the default — runs
	// with zero observability overhead and byte-identical output to a
	// build without the subsystem.
	Obs *ObsConfig

	Tenants []TenantConfig
}

func (c *Config) defaults() {
	if c.ScaleEverySec == 0 {
		c.ScaleEverySec = 0.25
	}
	if c.ScaleUpP99Frac == 0 {
		c.ScaleUpP99Frac = 1
	}
	if c.ScaleDownP99Frac == 0 {
		c.ScaleDownP99Frac = 0.4
	}
	if c.PreemptQuantumCycles == 0 {
		c.PreemptQuantumCycles = 4096
	}
	if c.MaxPreemptsPerBatch == 0 {
		c.MaxPreemptsPerBatch = 4
	}
	if c.LinkGBps == 0 {
		c.LinkGBps = 64
	}
	if c.LinkLatencyUs == 0 {
		c.LinkLatencyUs = 2
	}
	if c.Faults != nil {
		c.Faults.defaults()
	}
	if c.Obs != nil {
		// Clone before defaulting: one ObsConfig is typically shared
		// across parallel scenario legs (experiments), and each run must
		// own its copy.
		o := *c.Obs
		o.defaults()
		c.Obs = &o
	}
}

func (c *Config) validate() error {
	if err := c.Core.Validate(); err != nil {
		return err
	}
	switch {
	case c.Cores < 1:
		return fmt.Errorf("serve: fleet needs ≥1 pNPU, got %d", c.Cores)
	case c.DurationSec <= 0:
		return fmt.Errorf("serve: duration %v", c.DurationSec)
	case len(c.Tenants) == 0:
		return fmt.Errorf("serve: no tenants")
	case c.PreemptQuantumCycles < 0:
		return fmt.Errorf("serve: preemption quantum %v", c.PreemptQuantumCycles)
	case c.MaxPreemptsPerBatch < 1:
		return fmt.Errorf("serve: max preempts per batch %d", c.MaxPreemptsPerBatch)
	case c.LinkGBps < 0:
		return fmt.Errorf("serve: link bandwidth %v GB/s", c.LinkGBps)
	case c.LinkLatencyUs < 0:
		return fmt.Errorf("serve: link latency %v µs", c.LinkLatencyUs)
	}
	if c.Faults != nil {
		if err := c.Faults.validate(c); err != nil {
			return err
		}
	}
	if c.Recover != nil {
		if err := c.Recover.validate(); err != nil {
			return err
		}
	}
	if c.Obs != nil {
		if err := c.Obs.validate(); err != nil {
			return err
		}
	}
	// Per-tenant validation happens in newFleet, against each tenant's
	// defaulted private copy.
	return nil
}

// ---- runtime state ----

// request is one queued inference request: its arrival time plus, for
// LLM tenants, the autoregressive shape drawn at arrival (zero for
// single-shot tenants).
type request struct {
	at     sim.Time
	prompt int
	output int

	// id is the tenant-scoped arrival ordinal (1-based), the key trace
	// lifecycle events pair on. Replays keep their original id, so a
	// crash-requeued request's whole story lands on one trace row.
	id int64

	// Crash-replay provenance (see fault.go): a replayed request keeps
	// its ORIGINAL arrival time — the crash penalty lands on the SLO —
	// with any generated prefix folded into prompt/output. hadTok marks
	// a replay whose first token was already delivered before the crash,
	// so the TTFT recorder is not fed twice.
	replay bool
	hadTok bool
}

// slotQueue is one tenant's wait queue on a replica slot. Private
// replicas have exactly one (the owner's); temporal-shared slots carry
// one per share-group member, in tenant-index order. For LLM tenants it
// also holds the running set: admitted sequences mid-generation, whose
// KV reservations live on this slot until they complete.
type slotQueue struct {
	ten     *tenantState
	reqs    []request
	running []*llmSeq
}

// batchKind distinguishes what one slot invocation does.
type batchKind uint8

const (
	// kindInvoke is a whole-model batched inference (the single-shot path).
	kindInvoke batchKind = iota
	// kindLLMPrefill processes the prompts of newly admitted sequences
	// (continuous batching's join step).
	kindLLMPrefill
	// kindLLMDecode is one decode iteration over the running set.
	kindLLMDecode
	// kindLLMStaticPrefill is a static batch's prefill leg; its decode
	// leg chains at completion.
	kindLLMStaticPrefill
	// kindLLMStaticDecode is a static batch's monolithic decode-to-the-
	// longest-output leg.
	kindLLMStaticDecode
)

// batch is one batched invocation bound to a slot: in service, or
// suspended mid-service by a preemption. total and remaining partition
// its pure service cycles exactly (work conservation); restore is the
// context-switch debt paid at the start of the next segment. Single-
// shot invocations carry their requests in reqs; LLM invocations carry
// the sequences they advance in seqs.
type batch struct {
	ten  *tenantState
	kind batchKind
	reqs []request
	seqs []*llmSeq
	// chunks, parallel to seqs, holds the prompt tokens each sequence
	// advances in a disaggregated (possibly chunked) prefill invocation.
	chunks []int

	total     float64 // pure service cycles (CostDB, fixed at launch)
	remaining float64 // service cycles still owed
	restore   float64 // switch cycles to pay before service (re)starts

	started  sim.Time   // start of the current segment
	doneH    sim.Handle // scheduled completion of the current segment
	preempts int        // preemptions + priority bypasses suffered (stats)

	// Aging credit: victimWait accrues the cycles this batch has spent
	// suspended (waiting covers the open interval since waitFrom). Once
	// it exhausts the fleet's preemptBudget the batch is immune to
	// further preemption and bypass — the wait-denominated
	// anti-starvation bound (see Config.MaxPreemptsPerBatch).
	victimWait float64
	waiting    bool
	waitFrom   sim.Time
}

// replica is one mapped vNPU slot. It is owned (spawned, drained,
// retired) by one tenant's autoscaler, but when that tenant is in a
// share group the slot serves every group member.
type replica struct {
	id  int // owner-tenant spawn ordinal (display)
	uid int // fleet-unique spawn ordinal: global age for tie-breaks

	ten    *tenantState
	vnpu   *core.VNPU
	nm, nv int
	eus    int  // EU budget this replica was allocated at
	role   Role // RoleMixed unless the owner is disaggregated

	qs   []slotQueue // admitted, waiting; one queue per serving tenant
	cur  *batch      // the batch currently in service
	susp []*batch    // preempted batches awaiting resume (LIFO)

	// kv is the KV-cache accountant of this slot's vNPU memory
	// partition; non-nil iff an LLM tenant is served here.
	kv *kvAccountant
	// inbound counts KV migrations in flight TOWARD this decode slot:
	// their reservations are already charged to kv, and a slot with
	// inbound work is not idle (it must not retire under a transfer).
	inbound int

	timerSet   bool
	timer      sim.Handle
	timerAt    sim.Time // armed batch-window deadline
	preemptSet bool
	preemptH   sim.Handle
	draining   bool
	retired    bool

	busyEUCycles float64 // Σ occupied-cycles × (nm+nv), incl. switch overhead
}

// queueFor returns t's wait queue on this slot (nil when t is not
// served here).
func (r *replica) queueFor(t *tenantState) *slotQueue {
	for i := range r.qs {
		if r.qs[i].ten == t {
			return &r.qs[i]
		}
	}
	return nil
}

// queued counts waiting requests across the slot's queues.
func (r *replica) queued() int {
	n := 0
	for i := range r.qs {
		n += len(r.qs[i].reqs)
	}
	return n
}

// inService counts requests bound to the slot: the running batch plus
// every suspended one, plus every LLM sequence mid-generation (LLM
// batches reference sequences already counted in their running sets, so
// only single-shot batches add their requests here).
func (r *replica) inService() int {
	n := 0
	if r.cur != nil && r.cur.kind == kindInvoke {
		n += len(r.cur.reqs)
	}
	for _, b := range r.susp {
		if b.kind == kindInvoke {
			n += len(b.reqs)
		}
	}
	for i := range r.qs {
		n += len(r.qs[i].running)
	}
	return n
}

// backlog is the router's load signal: queued plus in-service requests.
func (r *replica) backlog() int { return r.queued() + r.inService() }

// idleEmpty reports whether the slot holds no work at all — the retire
// condition for a draining slot. An in-flight migration counts as work
// on both ends: the source still owns the sequence (and its prompt KV)
// until the last byte lands, the target has the reservation charged.
func (r *replica) idleEmpty() bool {
	if r.cur != nil || len(r.susp) > 0 || r.queued() > 0 || r.inbound > 0 {
		return false
	}
	for i := range r.qs {
		if len(r.qs[i].running) > 0 {
			return false
		}
	}
	return true
}

// arrivalTarget reports whether slot r accepts tenant t's new
// arrivals: any slot for colocated tenants, only prefill slots for
// disaggregated ones (decode slots receive work exclusively through KV
// migration).
func arrivalTarget(t *tenantState, r *replica) bool {
	if t.disagg() != nil {
		return r.role == RolePrefill
	}
	return true
}

// tenantState is the runtime of one tenant.
type tenantState struct {
	cfg TenantConfig
	idx int

	profile   compiler.Profile
	footprint int64

	curEUs       int     // current per-replica EU budget (autoscaler-adjusted)
	sloCycles    float64 // per-request latency objective
	batchWindow  float64 // coalescing wait, cycles
	basePerCycle float64 // base arrival rate, requests per cycle
	peakMult     float64 // max of the rate envelope (thinning bound)
	capacityRPS  float64 // one initial replica's max-batch throughput

	// Disaggregated pools autoscale against per-phase objectives derived
	// from the same anchors as sloCycles: the prefill pool against its
	// queue delay (prefillSLO = SLOFactor × mean-shape prefill cost) and
	// the decode pool against TPOT (tpotSLO = SLOFactor × mean-context
	// decode-iteration cost). Zero for non-disaggregated tenants.
	prefillSLO float64
	tpotSLO    float64

	arrRNG   *sim.RNG // arrival gaps + thinning coin
	routeRNG *sim.RNG // power-of-two sampling

	// llm is the autoregressive runtime (request-shape RNG, TTFT/TPOT
	// recorders, KV stall counters); nil for single-shot tenants.
	llm *llmTenant

	// peers are the share-group members this tenant pools slots with,
	// in tenant-index order, always including the tenant itself. An
	// ungrouped tenant's peers are just {itself}.
	peers []*tenantState

	replicas      []*replica // active + draining (retired ones removed)
	nextReplicaID int

	// metrics
	lat            metrics.Latencies // all completed requests, cycles
	windowLat      metrics.Latencies // since the last autoscale decision
	arrivals       int
	rejected       int
	completed      int
	windowRejected int
	maxQueue       int
	peakReplicas   int
	prefPeak       int // peak prefill-pool size (disaggregated tenants)
	decPeak        int // peak decode-pool size
	scaleUps       int
	scaleDowns     int
	resizes        int
	scaleFails     int
	replicaTL      *metrics.TimeSeries

	// preemption accounting
	preempted      int     // this tenant's batches suspended mid-service
	preemptsIssued int     // preemptions its batches triggered on others
	resumes        int     // suspended batches resumed
	stolenCycles   float64 // switch overhead charged against its batches
	maxPreempts    int     // worst preempt+bypass count on a single batch
	maxVictimWait  float64 // worst accrued victimization wait, cycles (credit ledger)

	// work-conservation ledger (tests): service cycles priced at launch
	// versus service cycles actually delivered across all segments.
	issuedServiceCycles float64
	servedServiceCycles float64

	// KV occupancy folded from this tenant's replicas (retired ones at
	// retire time, live ones at report time): ∫used dt, ∫total dt, and
	// the worst instantaneous occupancy fraction any replica hit.
	kvUsedArea  float64
	kvBlockArea float64
	kvPeakFrac  float64

	// Fault/recovery accounting (see fault.go; all zero fault-free).
	crashes         int   // replicas lost to fault events
	crashRequeued   int   // harvested requests re-queued to survivors
	crashLost       int   // harvested requests lost (policy or no room)
	replays         int   // partially-generated sequences replayed
	recomputeTokens int64 // Σ resident KV tokens lost to crashes
	emergencySpawns int   // crash-triggered replacement spawns
	crashAt         float64
	preFaultActive  int     // active replicas at the first crash
	recoveredAt     float64 // first instant active count regained preFaultActive
	fwArrivals      int     // arrivals inside the fault window
	fwSloOK         int     // ...of which finished within the SLO
}

// foldKV accrues one replica accountant's occupancy into the tenant's
// report accumulators.
func (t *tenantState) foldKV(a *kvAccountant, now float64) {
	a.accrue(now)
	t.kvUsedArea += a.usedArea
	t.kvBlockArea += float64(a.totalBlocks) * (now - a.born)
	if a.totalBlocks > 0 {
		if fr := float64(a.peakBlocks) / float64(a.totalBlocks); fr > t.kvPeakFrac {
			t.kvPeakFrac = fr
		}
	}
}

// rateMult evaluates the deterministic rate envelope at time t (cycles).
func (t *tenantState) rateMult(at, durCycles float64) float64 {
	switch t.cfg.Arrival {
	case Flash:
		frac := at / durCycles
		if frac >= t.cfg.BurstStart && frac < t.cfg.BurstEnd {
			return t.cfg.BurstFactor
		}
		return 1
	case Diurnal:
		period := t.cfg.DiurnalPeriod * durCycles
		return 1 + t.cfg.DiurnalDepth*math.Sin(2*math.Pi*at/period+t.cfg.DiurnalPhase)
	default:
		return 1
	}
}

func (t *tenantState) activeCount() int {
	n := 0
	for _, r := range t.replicas {
		if !r.draining {
			n++
		}
	}
	return n
}

// disagg returns the tenant's disaggregation config (nil when the
// tenant is colocated or not an LLM).
func (t *tenantState) disagg() *DisaggConfig {
	if t.cfg.LLM == nil {
		return nil
	}
	return t.cfg.LLM.Disagg
}

// activeRole counts non-draining replicas of one role.
func (t *tenantState) activeRole(role Role) int {
	n := 0
	for _, r := range t.replicas {
		if !r.draining && r.role == role {
			n++
		}
	}
	return n
}

// fleet is the whole serving simulation.
type fleet struct {
	cfg    Config
	eng    *sim.Engine
	costs  *CostDB
	mapper *core.Mapper
	alloc  *core.Allocator
	// fabric is the chip-to-chip interconnect KV migrations ship over;
	// non-nil iff some tenant is disaggregated.
	fabric *xfer.Fabric

	tenants   []*tenantState
	nextVNPU  int
	nextUID   int
	durCycles float64

	// faulted gates every chaos-only report field and counter, so
	// fault-free runs render byte-identically to before; fwStart is the
	// fault window's opening edge (first scheduled event), in cycles.
	faulted bool
	fwStart float64

	// prioEnabled: any share group, non-default priority, or Preempt —
	// gates the per-priority report section so priority-unaware configs
	// render exactly as before.
	prioEnabled bool
	// preemptBudget is the aging-credit allowance in cycles:
	// MaxPreemptsPerBatch × PreemptQuantumCycles of victimization delay
	// per batch.
	preemptBudget float64
	prioLat       [numPriorities]metrics.Latencies
	switches      virt.SwitchLedger

	// time-weighted fleet accounting (lazy snapshots, like internal/cluster)
	lastSnap      float64
	allocatedEUs  int
	allocArea     float64
	strandArea    float64
	busySum       float64 // busyEUCycles of retired replicas
	mapAccepts    int
	mapRejects    int
	routeScratch  []*replica
	routeScratch2 []*replica
	batchFree     []*batch // recycled batch instances (zero-alloc steady state)

	// obs is the run's observability runtime; nil (the default) means
	// every hook site is one nil check and nothing else (see obs.go).
	obs *obsState
}

// Run executes one serving scenario. The optional CostDB carries
// measured invocation costs across runs (scenario comparisons, repeated
// seeds); pass nil to build a private one. Costs are pure functions of
// (model, batch, shape), so sharing the database never changes results.
func Run(cfg Config, db *CostDB) (*Report, error) {
	f, err := newFleet(cfg, db)
	if err != nil {
		return nil, err
	}
	for _, t := range f.tenants {
		f.scheduleArrival(t)
	}
	f.scheduleFaults()
	if f.cfg.Autoscale {
		f.scheduleScale(f.cfg.ScaleEverySec * f.cfg.Core.FrequencyHz)
	}
	if f.obs != nil && f.obs.tl != nil {
		f.scheduleObs(f.obs.cfg.SampleEveryMs / 1e3 * f.cfg.Core.FrequencyHz)
	}
	f.eng.Run()
	return f.report(), nil
}

// newFleet validates the config and builds the fully initialized fleet
// — tenants, share groups, initial replicas, SLOs and rates — without
// scheduling any traffic, so tests can drive autoscaler and routing
// paths directly.
func newFleet(cfg Config, db *CostDB) (*fleet, error) {
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if db == nil || db.Core() != cfg.Core {
		db = NewCostDB(cfg.Core)
	}
	mapper, err := core.NewMapper(cfg.Cores, cfg.Core)
	if err != nil {
		return nil, err
	}
	mapper.Policy = cfg.Placement
	alloc, err := core.NewAllocator(cfg.Core)
	if err != nil {
		return nil, err
	}
	f := &fleet{
		cfg:           cfg,
		eng:           sim.NewEngine(),
		costs:         db,
		mapper:        mapper,
		alloc:         alloc,
		durCycles:     cfg.DurationSec * cfg.Core.FrequencyHz,
		preemptBudget: float64(cfg.MaxPreemptsPerBatch) * cfg.PreemptQuantumCycles,
	}
	if cfg.Faults != nil && len(cfg.Faults.Events) > 0 {
		f.faulted = true
		f.fwStart = math.Inf(1)
		for _, e := range cfg.Faults.Events {
			if at := e.AtFrac * f.durCycles; at < f.fwStart {
				f.fwStart = at
			}
		}
	}
	if cfg.Obs.enabled() {
		f.obs = newObsState(*cfg.Obs, cfg.Scenario, cfg.Core.FrequencyHz, len(cfg.Tenants))
	}
	cm := compiler.NewCostModel(cfg.Core)
	// Phase 1: build every tenant, so share groups can be resolved
	// before any slot (whose queues span the whole group) is spawned.
	for i := range cfg.Tenants {
		t := &tenantState{cfg: cfg.Tenants[i], idx: i}
		t.cfg.defaults()
		if err := t.cfg.validate(); err != nil {
			return nil, err
		}
		g, err := model.Build(t.cfg.Model, PadBatch(t.cfg.MaxBatch))
		if err != nil {
			return nil, fmt.Errorf("serve: tenant %s: %w", t.cfg.Name, err)
		}
		t.profile = cm.ProfileGraph(g)
		t.footprint = g.HBMFootprint
		t.curEUs = t.cfg.EUs
		t.arrRNG = sim.NewRNG(cfg.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
		t.routeRNG = sim.NewRNG(cfg.Seed ^ (uint64(i)+1)*0xbf58476d1ce4e5b9)
		t.replicaTL = metrics.NewTimeSeries(t.cfg.Name+"/replicas", 4096)
		if t.cfg.LLM != nil {
			t.llm = &llmTenant{rng: sim.NewRNG(cfg.Seed ^ (uint64(i)+1)*0x94d049bb133111eb)}
		}
		f.tenants = append(f.tenants, t)
		if t.cfg.ShareGroup != "" || t.cfg.Priority != Batch {
			f.prioEnabled = true
		}
	}
	if cfg.Preempt {
		f.prioEnabled = true
	}
	for _, t := range f.tenants {
		for _, p := range f.tenants { // tenant-index order: deterministic
			if p == t || (t.cfg.ShareGroup != "" && p.cfg.ShareGroup == t.cfg.ShareGroup) {
				t.peers = append(t.peers, p)
			}
		}
	}
	// LLM peers in one share group draw from one shared KV partition per
	// slot, so their block granularity and capacity override must agree
	// — silently mixing them would misattribute every occupancy number.
	for _, t := range f.tenants {
		if t.llm == nil {
			continue
		}
		for _, p := range t.peers {
			if p.llm == nil || p == t {
				continue
			}
			if p.cfg.LLM.BlockTokens != t.cfg.LLM.BlockTokens ||
				p.cfg.LLM.KVCapTokens != t.cfg.LLM.KVCapTokens {
				return nil, fmt.Errorf("serve: share group %q: tenants %s and %s disagree on KV settings (blocks %d/%d tokens, cap %d/%d)",
					t.cfg.ShareGroup, t.cfg.Name, p.cfg.Name,
					t.cfg.LLM.BlockTokens, p.cfg.LLM.BlockTokens,
					t.cfg.LLM.KVCapTokens, p.cfg.LLM.KVCapTokens)
			}
		}
	}
	// The interconnect exists as soon as any tenant is disaggregated;
	// per-pair links instantiate lazily on first migration.
	for _, t := range f.tenants {
		if t.disagg() != nil {
			bwPerCycle := cfg.LinkGBps * 1e9 / cfg.Core.FrequencyHz
			latency := cfg.LinkLatencyUs * 1e-6 * cfg.Core.FrequencyHz
			fab, err := xfer.NewFabric(f.eng, bwPerCycle, latency)
			if err != nil {
				return nil, err
			}
			f.fabric = fab
			break
		}
	}
	// Phase 2: spawn initial replicas and derive SLOs and offered rates
	// from the measured full-batch service time of one fresh replica.
	for _, t := range f.tenants {
		if d := t.disagg(); d != nil {
			for k := 0; k < d.PrefillReplicas; k++ {
				if err := f.spawnReplica(t, t.curEUs, RolePrefill); err != nil {
					return nil, fmt.Errorf("serve: tenant %s initial prefill replica %d: %w", t.cfg.Name, k, err)
				}
			}
			for k := 0; k < d.DecodeReplicas; k++ {
				if err := f.spawnReplica(t, t.curEUs, RoleDecode); err != nil {
					return nil, fmt.Errorf("serve: tenant %s initial decode replica %d: %w", t.cfg.Name, k, err)
				}
			}
		} else {
			for k := 0; k < t.cfg.InitialReplicas; k++ {
				if err := f.spawnReplica(t, t.curEUs, RoleMixed); err != nil {
					return nil, fmt.Errorf("serve: tenant %s initial replica %d: %w", t.cfg.Name, k, err)
				}
			}
		}
		// Warm spares: extra capacity standing by before the first fault
		// (per pool for disaggregated tenants). Best-effort — a fleet too
		// small for its spares records the misses and serves anyway.
		for k := 0; k < f.warmSpares(); k++ {
			roles := []Role{RoleMixed}
			if t.disagg() != nil {
				roles = []Role{RolePrefill, RoleDecode}
			}
			for _, role := range roles {
				if err := f.spawnReplica(t, t.curEUs, role); err != nil {
					t.scaleFails++
				}
			}
		}
		r0 := t.replicas[0]
		var full float64
		var err error
		// sloAnchor is the per-request service-time anchor the derived
		// SLO multiplies; it equals `full` (the compute anchor capacity
		// is derived from) except for disaggregated tenants, whose
		// requests additionally wait out a KV migration.
		var sloAnchor float64
		if t.llm != nil {
			// An LLM request's ideal service is a full-batch generation of
			// the MEAN shape: one prefill plus output−1 decode iterations,
			// all at MaxBatch occupancy — the SLO/capacity anchor playing
			// the role the whole-model full-batch time plays below.
			tr := t.cfg.LLM.Trace
			pre, perr := db.LLMCycles(PhasePrefill, t.cfg.MaxBatch, tr.MeanPrompt(), r0.nm, r0.nv)
			if perr != nil {
				return nil, perr
			}
			dec, derr := db.LLMCycles(PhaseDecode, t.cfg.MaxBatch, tr.MeanPrompt()+tr.OutputMean, r0.nm, r0.nv)
			if derr != nil {
				return nil, derr
			}
			full = pre + float64(tr.OutputMean-1)*dec
			sloAnchor = full
			if t.disagg() != nil {
				// The mean KV migration (bandwidth + latency) prices into
				// the LATENCY anchor only: a pipelined handoff delays each
				// request without consuming compute, so throughput — and
				// therefore the Load→rate conversion, which must match the
				// colocated baseline at equal Load — excludes it. The
				// per-pool autoscalers get per-phase objectives from the
				// same measurements.
				sloAnchor += float64(model.LLMKVTransferBytes(tr.MeanPrompt()))/(cfg.LinkGBps*1e9/cfg.Core.FrequencyHz) +
					cfg.LinkLatencyUs*1e-6*cfg.Core.FrequencyHz
				t.prefillSLO = t.cfg.SLOFactor * pre
				t.tpotSLO = t.cfg.SLOFactor * dec
			}
		} else {
			full, err = db.ServiceCycles(t.cfg.Model, t.cfg.MaxBatch, r0.nm, r0.nv)
			if err != nil {
				return nil, err
			}
			sloAnchor = full
		}
		if t.cfg.SLOMs > 0 {
			t.sloCycles = t.cfg.SLOMs / 1e3 * cfg.Core.FrequencyHz
		} else {
			t.sloCycles = t.cfg.SLOFactor * sloAnchor
			t.cfg.SLOMs = t.sloCycles / cfg.Core.FrequencyHz * 1e3
		}
		if t.cfg.BatchWindowMs > 0 {
			t.batchWindow = t.cfg.BatchWindowMs / 1e3 * cfg.Core.FrequencyHz
		} else {
			// Never burn more than a tenth of the latency budget waiting
			// for batchmates.
			t.batchWindow = t.sloCycles / 10
		}
		t.capacityRPS = float64(t.cfg.MaxBatch) / (full / cfg.Core.FrequencyHz)
		rps := t.cfg.RatePerSec
		if rps <= 0 {
			chips := t.cfg.InitialReplicas
			if d := t.disagg(); d != nil {
				// Load is offered against the whole disaggregated footprint,
				// so colocated-vs-disagg comparisons at matched chip counts
				// and equal Load see the same offered rate.
				chips = d.PrefillReplicas + d.DecodeReplicas
			}
			rps = t.cfg.Load * float64(chips) * t.capacityRPS
		}
		t.basePerCycle = rps / cfg.Core.FrequencyHz
		t.peakMult = 1
		if t.cfg.Arrival == Flash {
			t.peakMult = t.cfg.BurstFactor
		} else if t.cfg.Arrival == Diurnal {
			t.peakMult = 1 + t.cfg.DiurnalDepth
		}
	}
	return f, nil
}

// scheduleArrival queues the next candidate arrival of the tenant's
// thinned Poisson stream. Candidates are drawn at the peak rate; each is
// accepted with probability rate(t)/peak, which realizes the exact
// non-homogeneous process deterministically from the tenant's RNG.
func (f *fleet) scheduleArrival(t *tenantState) {
	gap := t.arrRNG.Exp(1 / (t.basePerCycle * t.peakMult))
	at := float64(f.eng.Now()) + gap
	if at > f.durCycles {
		return // traffic ends with the scenario; in-flight work drains
	}
	f.eng.At(sim.Time(at), func(now sim.Time) {
		if t.arrRNG.Float64()*t.peakMult <= t.rateMult(float64(now), f.durCycles) {
			f.arrive(t, now)
		}
		f.scheduleArrival(t)
	})
}

// arrive routes one request and applies admission control: a request
// bound for a slot where the tenant's queue is at QueueCap is rejected
// (shed at the front door) rather than queued into certain SLO
// violation. A tenant with no replica at all — not even a draining one
// — also sheds (admission-reject); route documents when that happens.
func (f *fleet) arrive(t *tenantState, now sim.Time) {
	t.arrivals++
	if f.faulted && float64(now) >= f.fwStart {
		t.fwArrivals++
	}
	req := request{at: now, id: int64(t.arrivals)}
	if t.llm != nil {
		// Shape draws happen before admission, so every configuration
		// compared on a seed (continuous vs static, any router) sees the
		// identical request trace.
		shape := t.cfg.LLM.Trace.Draw(t.llm.rng)
		req.prompt, req.output = shape.Prompt, shape.Output
	}
	r := f.route(t)
	if r == nil {
		t.rejected++
		if f.cfg.Autoscale {
			t.windowRejected++
		}
		if f.obs != nil {
			f.obs.trace.Instant("reject", "req", t.cfg.Name, obsTrackControl, float64(now), req.id, "", 0, "reason", "no-replica")
		}
		return
	}
	q := r.queueFor(t)
	if len(q.reqs) >= t.cfg.QueueCap {
		t.rejected++
		if f.cfg.Autoscale {
			t.windowRejected++
		}
		if f.obs != nil {
			f.obs.trace.Instant("reject", "req", t.cfg.Name, obsTrackControl, float64(now), req.id, "", 0, "reason", "queue-cap")
		}
		return
	}
	if f.obs != nil {
		f.obs.trace.Begin("queue", "req", t.cfg.Name, float64(now), req.id)
	}
	q.reqs = append(q.reqs, req)
	if len(q.reqs) > t.maxQueue {
		t.maxQueue = len(q.reqs)
	}
	f.poke(r, t, now)
}

// route picks the target slot among the serving group's non-draining
// replicas (the tenant's own, plus every share-group peer's). All ties
// break toward the older slot (smaller fleet-wide uid), keeping the
// decision deterministic.
//
// When every slot in the group is draining — make-before-break resize
// churn and preemptive drains reach exactly this state — the request
// falls back deterministically to the least-loaded *draining* slot: a
// draining slot still serves its queue to completion, so queueing
// there beats shedding. (Before this guard the function indexed
// cands[0] on an empty slice, and the PowerOfTwo path called
// routeRNG.Intn(0); a fully draining tenant panicked the router.)
// Only a tenant with no replicas at all returns nil, and arrive then
// sheds the request.
func (f *fleet) route(t *tenantState) *replica {
	cands := f.routeScratch[:0]
	for _, p := range t.peers {
		for _, r := range p.replicas {
			if !r.draining && arrivalTarget(t, r) {
				cands = append(cands, r)
			}
		}
	}
	f.routeScratch = cands
	if len(cands) == 0 {
		// Prefer a draining slot where t's queue still has room (the
		// same open-queue filter the non-draining path applies below) so
		// the fallback never sheds while a sibling could still queue.
		var pick, open *replica
		better := func(r, cur *replica) bool {
			return cur == nil || r.backlog() < cur.backlog() ||
				(r.backlog() == cur.backlog() && r.uid < cur.uid)
		}
		for _, p := range t.peers {
			for _, r := range p.replicas {
				if !arrivalTarget(t, r) {
					continue
				}
				if better(r, pick) {
					pick = r
				}
				if len(r.queueFor(t).reqs) < t.cfg.QueueCap && better(r, open) {
					open = r
				}
			}
		}
		if open != nil {
			return open
		}
		return pick
	}
	// On a shared pool the load signal (whole-slot backlog) can disagree
	// with the tenant's own queue depth — a slot can look light because
	// the PEER's queue is empty while t's queue there is already at
	// QueueCap. Never route into a full per-tenant queue while a sibling
	// slot still has room; when every queue is full, fall through to the
	// plain candidates and let admission shed as before.
	if len(t.peers) > 1 {
		open := f.routeScratch2[:0]
		for _, r := range cands {
			if len(r.queueFor(t).reqs) < t.cfg.QueueCap {
				open = append(open, r)
			}
		}
		f.routeScratch2 = open
		if len(open) > 0 {
			cands = open
		}
	}
	if len(cands) == 1 {
		return cands[0]
	}
	load := func(r *replica) int {
		if f.cfg.Router == JSQ {
			return r.queued()
		}
		return r.backlog()
	}
	if f.cfg.Router == PowerOfTwo {
		i := t.routeRNG.Intn(len(cands))
		j := t.routeRNG.Intn(len(cands) - 1)
		if j >= i {
			j++
		}
		a, b := cands[i], cands[j]
		if load(b) < load(a) || (load(b) == load(a) && b.uid < a.uid) {
			return b
		}
		return a
	}
	best := cands[0]
	for _, r := range cands[1:] {
		if load(r) < load(best) || (load(r) == load(best) && r.uid < best.uid) {
			best = r
		}
	}
	return best
}

// report assembles the final Report once the event queue has drained.
func (f *fleet) report() *Report {
	end := float64(f.eng.Now())
	if end < f.durCycles {
		end = f.durCycles
	}
	f.snapshot(end)
	freq := f.cfg.Core.FrequencyHz
	ms := func(cycles float64) float64 { return cycles / freq * 1e3 }

	rep := &Report{
		Scenario:    f.cfg.Scenario,
		Seed:        f.cfg.Seed,
		DurationSec: f.cfg.DurationSec,
		Cores:       f.cfg.Cores,
		Router:      f.cfg.Router.String(),
		Placement:   f.cfg.Placement.String(),
		Autoscale:   f.cfg.Autoscale,
		Preempt:     f.cfg.Preempt,
	}
	type classAgg struct {
		present            bool
		arrivals, rejected int
		completed, sloOK   int
		preempted, resumes int
		stolen             float64
	}
	var agg [numPriorities]classAgg
	busy := f.busySum
	// Fold every live replica's KV accountant into its owner BEFORE
	// assembling any tenant report: an LLM tenant aggregates occupancy
	// across its whole serving group (peer-owned shared slots hold its
	// sequences too), so all owners must be up to date first.
	for _, t := range f.tenants {
		for _, r := range t.replicas {
			if r.kv != nil {
				t.foldKV(r.kv, end)
			}
		}
	}
	for _, t := range f.tenants {
		for _, r := range t.replicas {
			busy += r.busyEUCycles
		}
		sloOK := t.lat.CountBelow(t.sloCycles)
		tr := TenantReport{
			Name:            t.cfg.Name,
			Model:           t.cfg.Model,
			SLOMs:           t.cfg.SLOMs,
			Arrivals:        t.arrivals,
			Rejected:        t.rejected,
			Completed:       t.completed,
			P50Ms:           ms(t.lat.P50()),
			P95Ms:           ms(t.lat.P95()),
			P99Ms:           ms(t.lat.P99()),
			MeanMs:          ms(t.lat.Mean()),
			GoodputRPS:      float64(sloOK) / f.cfg.DurationSec,
			Replicas:        t.activeCount(),
			PeakReplicas:    t.peakReplicas,
			EUsPerReplica:   t.curEUs,
			ScaleUps:        t.scaleUps,
			ScaleDowns:      t.scaleDowns,
			Resizes:         t.resizes,
			ScaleFails:      t.scaleFails,
			MaxQueue:        t.maxQueue,
			Preemptions:     t.preempted,
			PreemptsIssued:  t.preemptsIssued,
			Resumes:         t.resumes,
			StolenMs:        ms(t.stolenCycles),
			MaxBatchPreempt: t.maxPreempts,
			ReplicaTimeline: t.replicaTL,
		}
		if t.llm != nil {
			l := t.llm
			batcher := "continuous"
			if t.cfg.LLM.Static {
				batcher = "static"
			}
			lr := &LLMTenantReport{
				Batcher:       batcher,
				Admitted:      l.admitted,
				TTFTP50Ms:     ms(l.ttft.P50()),
				TTFTP95Ms:     ms(l.ttft.P95()),
				TTFTP99Ms:     ms(l.ttft.P99()),
				TPOTP50Ms:     ms(l.tpot.P50()),
				TPOTP95Ms:     ms(l.tpot.P95()),
				TPOTP99Ms:     ms(l.tpot.P99()),
				Prefills:      l.prefills,
				DecodeIters:   l.decodeIters,
				StaticBatches: l.staticBatches,
				TokensOut:     l.tokensOut,
				TokensPerSec:  float64(l.tokensOut) / f.cfg.DurationSec,
				KVBlockTokens: t.cfg.LLM.BlockTokens,
				KVStalls:      l.kvStalls,
			}
			if l.admitted > 0 {
				lr.PromptTokensMean = float64(l.promptTokens) / float64(l.admitted)
				lr.OutputTokensMean = float64(l.outputTokens) / float64(l.admitted)
			}
			if d := t.disagg(); d != nil {
				lr.Batcher = "disaggregated"
				lr.PrefillReplicas = t.activeRole(RolePrefill)
				lr.PrefillPeak = t.prefPeak
				lr.DecodeReplicas = t.activeRole(RoleDecode)
				lr.DecodePeak = t.decPeak
				lr.ChunkTokens = d.ChunkTokens
				lr.Migrations = l.migrations
				lr.MigrationMB = float64(l.migBytes) / (1 << 20)
				lr.MigStalls = l.migStalls
				// Mean over LANDED migrations: waits accrue at landing, so
				// dividing by starts would bias the mean low if a report
				// were ever taken with transfers still on the wire.
				if l.migLanded > 0 {
					lr.MigMeanMs = ms(l.migWaitCycles / float64(l.migLanded))
				}
			}
			// KV occupancy spans the tenant's whole serving group: on
			// shared slots its sequences allocate from peer-owned
			// partitions too, and fold-at-retire credits the OWNER. Two
			// LLM tenants in one group therefore both report their shared
			// pool's occupancy.
			var kvUsed, kvTotal float64
			for _, p := range t.peers {
				kvUsed += p.kvUsedArea
				kvTotal += p.kvBlockArea
				if p.kvPeakFrac > lr.KVOccPeak {
					lr.KVOccPeak = p.kvPeakFrac
				}
			}
			if kvTotal > 0 {
				lr.KVOccMean = kvUsed / kvTotal
			}
			tr.LLM = lr
		}
		if f.prioEnabled {
			tr.Priority = t.cfg.Priority.String()
			tr.ShareGroup = t.cfg.ShareGroup
			a := &agg[t.cfg.Priority]
			a.present = true
			a.arrivals += t.arrivals
			a.rejected += t.rejected
			a.completed += t.completed
			a.sloOK += sloOK
			a.preempted += t.preempted
			a.resumes += t.resumes
			a.stolen += t.stolenCycles
		}
		if t.arrivals > 0 {
			// Rejected requests count against attainment: a shed request
			// is a broken promise too.
			tr.SLOAttainment = float64(sloOK) / float64(t.arrivals)
		}
		if f.faulted {
			tr.Crashes = t.crashes
			tr.CrashRequeued = t.crashRequeued
			tr.CrashLost = t.crashLost
			tr.Replays = t.replays
			tr.RecomputeTokens = t.recomputeTokens
			tr.EmergencySpawns = t.emergencySpawns
			if t.llm != nil {
				tr.Evacuations = t.llm.evacLanded
				tr.EvacuationMB = float64(t.llm.evacBytes) / (1 << 20)
			}
			// Fault-window attainment/goodput: requests arriving from the
			// first scheduled fault onward, same ≤-SLO rule as CountBelow.
			if t.fwArrivals > 0 {
				tr.FaultAttainment = float64(t.fwSloOK) / float64(t.fwArrivals)
			}
			if winSec := (end - f.fwStart) / freq; winSec > 0 {
				tr.FaultGoodputRPS = float64(t.fwSloOK) / winSec
			}
			if t.crashAt > 0 {
				// Time-to-recover: first crash → active count back at its
				// pre-fault level. An unrecovered tenant reports the censored
				// bound (end of run) with Recovered false.
				tr.Recovered = t.recoveredAt > 0
				rec := t.recoveredAt
				if rec == 0 {
					rec = end
				}
				tr.TTRMs = ms(rec - t.crashAt)
			}
		}
		rep.Tenants = append(rep.Tenants, tr)
	}
	for p := numPriorities - 1; p >= 0; p-- { // highest class first
		a := agg[p]
		if !a.present {
			continue
		}
		lat := &f.prioLat[p]
		pr := PriorityReport{
			Priority:    Priority(p).String(),
			Arrivals:    a.arrivals,
			Rejected:    a.rejected,
			Completed:   a.completed,
			P50Ms:       ms(lat.P50()),
			P95Ms:       ms(lat.P95()),
			P99Ms:       ms(lat.P99()),
			GoodputRPS:  float64(a.sloOK) / f.cfg.DurationSec,
			Preemptions: a.preempted,
			Resumes:     a.resumes,
			StolenMs:    ms(a.stolen),
		}
		if a.arrivals > 0 {
			pr.SLOAttainment = float64(a.sloOK) / float64(a.arrivals)
		}
		rep.Priorities = append(rep.Priorities, pr)
	}
	var overhead float64
	rep.Preemptions, rep.Resumes, overhead = f.switches.Snapshot()
	rep.SwitchOverheadMs = ms(overhead)
	if f.fabric != nil {
		st := f.fabric.Stats(end)
		rep.LinkGBps = f.cfg.LinkGBps
		rep.Links = f.fabric.Links()
		rep.LinkMovedMB = float64(st.BytesMoved) / (1 << 20)
		rep.LinkPeakFlows = st.PeakActive
		rep.LinkCanceled = st.Canceled
		if n := f.fabric.Links(); n > 0 && end > 0 {
			rep.LinkUtil = st.BusyCycles / (end * float64(n))
		}
	}
	if f.faulted {
		rep.FaultEvents = len(f.cfg.Faults.Events)
		rep.FaultPolicy = f.cfg.Faults.Policy.String()
		rep.FaultFromSec = f.fwStart / freq
		if rc := f.cfg.Recover; rc != nil {
			rep.WarmSpares = rc.WarmSpares
			rep.EmergencySpawn = rc.EmergencySpawn
			rep.Evacuate = rc.Evacuate
		}
	}
	totalEUs := float64(f.cfg.Cores * (f.cfg.Core.MEs + f.cfg.Core.VEs))
	if end > 0 {
		rep.FleetEUUtil = busy / (end * totalEUs)
		rep.AllocatedEUFrac = f.allocArea / (end * totalEUs)
		rep.MeanStrandedEUs = f.strandArea / end
	}
	rep.MapAccepts = f.mapAccepts
	rep.MapRejects = f.mapRejects
	f.obsFinish(rep, end)
	return rep
}
