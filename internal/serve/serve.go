// Package serve is the online serving subsystem: a deterministic,
// event-driven simulator that pushes continuous per-request inference
// traffic through a fleet of pNPUs hosting tenant vNPUs under latency
// SLOs. It is the layer the paper defers to KubeVirt/Kubernetes — the
// piece that turns the repository's batch figure-reproducer into a
// continuously running serving system.
//
// The pipeline per tenant is:
//
//	arrivals ──► admission ──► router ──► replica queue ──► dynamic
//	batcher ──► batched invocation (costed through internal/compiler +
//	internal/sched, see CostDB) ──► completion + latency record
//
// with a periodic autoscaler observing windowed p99 latency against the
// tenant's SLO and growing/shrinking the tenant's vNPU fleet through the
// paper's §III-B allocator (EU-budget → ME:VE split) and §III-C mapper
// (segment-isolated placement under a cluster policy).
//
// Tenants can additionally pool their replicas into temporal-shared
// slots (TenantConfig.ShareGroup) scheduled by request priority with
// quantum-boundary preemption (Config.Preempt) — see slot.go and
// docs/SERVING.md.
//
// Everything runs on internal/sim's event kernel with seeded RNG
// streams, so a whole serving run — arrivals, routing coin flips,
// scaling actions, every percentile in the report — is reproducible
// bit-for-bit from Config.Seed.
package serve

// Run executes one serving scenario. The optional CostDB carries
// measured invocation costs across runs (scenario comparisons, repeated
// seeds); pass nil to build a private one. Costs are pure functions of
// (model, batch, shape), so sharing the database never changes results.
func Run(cfg Config, db *CostDB) (*Report, error) {
	f, err := newFleet(cfg, db)
	if err != nil {
		return nil, err
	}
	for _, t := range f.tenants {
		f.scheduleArrival(t)
	}
	f.scheduleFaults()
	if f.cfg.Autoscale {
		f.scheduleScale(f.cfg.ScaleEverySec * f.cfg.Core.FrequencyHz)
	}
	if f.obs != nil && f.obs.tl != nil {
		f.scheduleObs(f.obs.cfg.SampleEveryMs / 1e3 * f.cfg.Core.FrequencyHz)
	}
	f.eng.Run()
	return f.report(), nil
}
