// Package serve is the online serving subsystem: a deterministic,
// event-driven simulator that pushes continuous per-request inference
// traffic through a fleet of pNPUs hosting tenant vNPUs under latency
// SLOs. It is the layer the paper defers to KubeVirt/Kubernetes — the
// piece that turns the repository's batch figure-reproducer into a
// continuously running serving system.
//
// The pipeline per tenant is:
//
//	arrivals ──► admission ──► router ──► replica queue ──► dynamic
//	batcher ──► batched invocation (costed through internal/compiler +
//	internal/sched, see CostDB) ──► completion + latency record
//
// with a periodic autoscaler observing windowed p99 latency against the
// tenant's SLO and growing/shrinking the tenant's vNPU fleet through the
// paper's §III-B allocator (EU-budget → ME:VE split) and §III-C mapper
// (segment-isolated placement under a cluster policy).
//
// Everything runs on internal/sim's event kernel with seeded RNG
// streams, so a whole serving run — arrivals, routing coin flips,
// scaling actions, every percentile in the report — is reproducible
// bit-for-bit from Config.Seed.
package serve

import (
	"fmt"
	"math"

	"neu10/internal/arch"
	"neu10/internal/compiler"
	"neu10/internal/core"
	"neu10/internal/metrics"
	"neu10/internal/model"
	"neu10/internal/sim"
)

// RouterPolicy selects how the SLO-aware router spreads a tenant's
// admitted requests across its replicas.
type RouterPolicy int

const (
	// LeastLoaded picks the replica with the fewest outstanding requests
	// (queued + in service); ties break toward the older replica.
	LeastLoaded RouterPolicy = iota
	// JSQ (join-shortest-queue) considers only the wait queue, ignoring
	// the batch currently in service.
	JSQ
	// PowerOfTwo samples two distinct replicas uniformly and joins the
	// less loaded — the classic O(1) approximation of least-loaded.
	PowerOfTwo
)

func (p RouterPolicy) String() string {
	switch p {
	case LeastLoaded:
		return "least-loaded"
	case JSQ:
		return "jsq"
	case PowerOfTwo:
		return "power-of-two"
	default:
		return fmt.Sprintf("router(%d)", int(p))
	}
}

// ArrivalKind selects a tenant's open-loop arrival process. All three
// are Poisson processes thinned from a deterministic rate envelope, so
// the trace depends only on the seed.
type ArrivalKind int

const (
	// Poisson is a homogeneous Poisson stream at the base rate.
	Poisson ArrivalKind = iota
	// Flash is Poisson with the rate multiplied by BurstFactor inside
	// the [BurstStartFrac, BurstEndFrac) window of the run — a flash
	// crowd.
	Flash
	// Diurnal modulates the rate sinusoidally: base·(1 + depth·sin(...)),
	// the shape of a day/night traffic trace.
	Diurnal
)

func (k ArrivalKind) String() string {
	switch k {
	case Poisson:
		return "poisson"
	case Flash:
		return "flash"
	case Diurnal:
		return "diurnal"
	default:
		return fmt.Sprintf("arrival(%d)", int(k))
	}
}

// TenantConfig describes one served tenant: its model, traffic, SLO and
// scaling envelope.
type TenantConfig struct {
	Name  string
	Model string // one of model.Names()

	// Load is the offered load as a fraction of the initial fleet's
	// max-batch service capacity; RatePerSec overrides it when > 0.
	Load       float64
	RatePerSec float64

	Arrival       ArrivalKind
	BurstFactor   float64 // Flash: rate multiplier during the burst window
	BurstStart    float64 // Flash: window start, fraction of the run (default 1/3)
	BurstEnd      float64 // Flash: window end, fraction of the run (default 2/3)
	DiurnalDepth  float64 // Diurnal: modulation depth in [0, 1) (default 0.8)
	DiurnalPeriod float64 // Diurnal: period as a fraction of the run (default 1)
	DiurnalPhase  float64 // Diurnal: phase offset in radians

	// SLOMs is the per-request latency objective in milliseconds; when 0
	// it is derived as SLOFactor × the ideal full-batch service time on
	// one replica (default factor 3).
	SLOMs     float64
	SLOFactor float64

	MaxBatch      int     // dynamic batcher cap (default 8)
	BatchWindowMs float64 // max coalescing wait; default SLOMs/10
	QueueCap      int     // per-replica admission bound (default 64)

	// EUs is the per-replica execution-unit budget handed to the §III-B
	// allocator (default 4). The autoscaler may grow it in steps of 2 up
	// to what fits one physical core, and shrink it back.
	EUs             int
	InitialReplicas int // default 1
	MinReplicas     int // default 1
	MaxReplicas     int // default InitialReplicas
}

func (tc *TenantConfig) defaults() {
	if tc.SLOFactor == 0 {
		tc.SLOFactor = 3
	}
	if tc.MaxBatch == 0 {
		tc.MaxBatch = 8
	}
	if tc.QueueCap == 0 {
		tc.QueueCap = 64
	}
	if tc.EUs == 0 {
		tc.EUs = 4
	}
	if tc.InitialReplicas == 0 {
		tc.InitialReplicas = 1
	}
	if tc.MinReplicas == 0 {
		tc.MinReplicas = 1
	}
	if tc.MaxReplicas == 0 {
		tc.MaxReplicas = tc.InitialReplicas
	}
	if tc.BurstFactor == 0 {
		tc.BurstFactor = 1
	}
	if tc.BurstStart == 0 && tc.BurstEnd == 0 {
		tc.BurstStart, tc.BurstEnd = 1.0/3, 2.0/3
	}
	if tc.DiurnalDepth == 0 {
		tc.DiurnalDepth = 0.8
	}
	if tc.DiurnalPeriod == 0 {
		tc.DiurnalPeriod = 1
	}
}

func (tc *TenantConfig) validate() error {
	switch {
	case tc.Name == "":
		return fmt.Errorf("serve: tenant without a name")
	case tc.Load <= 0 && tc.RatePerSec <= 0:
		return fmt.Errorf("serve: tenant %s has no offered load", tc.Name)
	case tc.BurstFactor < 1:
		return fmt.Errorf("serve: tenant %s burst factor %v < 1", tc.Name, tc.BurstFactor)
	case tc.Arrival == Flash && !(tc.BurstStart >= 0 && tc.BurstStart < tc.BurstEnd && tc.BurstEnd <= 1):
		return fmt.Errorf("serve: tenant %s burst window [%v, %v) must satisfy 0 ≤ start < end ≤ 1",
			tc.Name, tc.BurstStart, tc.BurstEnd)
	case tc.DiurnalDepth < 0 || tc.DiurnalDepth >= 1:
		return fmt.Errorf("serve: tenant %s diurnal depth %v out of [0,1)", tc.Name, tc.DiurnalDepth)
	case tc.MinReplicas < 1:
		return fmt.Errorf("serve: tenant %s needs ≥1 replica", tc.Name)
	case tc.InitialReplicas < tc.MinReplicas || tc.MaxReplicas < tc.InitialReplicas:
		return fmt.Errorf("serve: tenant %s replica bounds %d ≤ %d ≤ %d malformed",
			tc.Name, tc.MinReplicas, tc.InitialReplicas, tc.MaxReplicas)
	case tc.QueueCap < 1:
		return fmt.Errorf("serve: tenant %s queue cap %d", tc.Name, tc.QueueCap)
	case tc.MaxBatch < 1:
		return fmt.Errorf("serve: tenant %s max batch %d", tc.Name, tc.MaxBatch)
	case tc.EUs < 2:
		return fmt.Errorf("serve: tenant %s EU budget %d < 2 (1 ME + 1 VE)", tc.Name, tc.EUs)
	}
	return nil
}

// Config parameterizes one serving run.
type Config struct {
	Scenario string // label carried into the report
	Core     arch.CoreConfig
	Cores    int // pNPU fleet size (single-core pNPUs, like internal/cluster)

	Placement core.PlacementPolicy
	Router    RouterPolicy

	DurationSec float64
	Seed        uint64

	// Autoscale enables the control loop; when false the fleet stays at
	// each tenant's InitialReplicas — the no-autoscale baseline.
	Autoscale bool
	// ScaleEverySec is the control interval (default 0.25s).
	ScaleEverySec float64
	// ScaleUpP99Frac: scale up when windowed p99 > frac × SLO (default 1).
	ScaleUpP99Frac float64
	// ScaleDownP99Frac: scale down when windowed p99 < frac × SLO and the
	// window saw no rejections (default 0.4).
	ScaleDownP99Frac float64

	Tenants []TenantConfig
}

func (c *Config) defaults() {
	if c.ScaleEverySec == 0 {
		c.ScaleEverySec = 0.25
	}
	if c.ScaleUpP99Frac == 0 {
		c.ScaleUpP99Frac = 1
	}
	if c.ScaleDownP99Frac == 0 {
		c.ScaleDownP99Frac = 0.4
	}
}

func (c *Config) validate() error {
	if err := c.Core.Validate(); err != nil {
		return err
	}
	switch {
	case c.Cores < 1:
		return fmt.Errorf("serve: fleet needs ≥1 pNPU, got %d", c.Cores)
	case c.DurationSec <= 0:
		return fmt.Errorf("serve: duration %v", c.DurationSec)
	case len(c.Tenants) == 0:
		return fmt.Errorf("serve: no tenants")
	}
	// Per-tenant validation happens in Run, against each tenant's
	// defaulted private copy.
	return nil
}

// ---- runtime state ----

// request is one queued inference request, identified by arrival time.
type request = sim.Time

// replica is one mapped vNPU serving a tenant.
type replica struct {
	id     int
	ten    *tenantState
	vnpu   *core.VNPU
	nm, nv int
	eus    int // EU budget this replica was allocated at

	queue    []request // admitted, waiting
	inflight []request // the batch currently in service
	timerSet bool
	timer    sim.Handle
	draining bool
	retired  bool

	busyEUCycles float64 // Σ service-cycles × (nm+nv)
}

// backlog is the router's load signal: queued plus in-service requests.
func (r *replica) backlog() int { return len(r.queue) + len(r.inflight) }

// tenantState is the runtime of one tenant.
type tenantState struct {
	cfg TenantConfig
	idx int

	profile   compiler.Profile
	footprint int64

	curEUs       int     // current per-replica EU budget (autoscaler-adjusted)
	sloCycles    float64 // per-request latency objective
	batchWindow  float64 // coalescing wait, cycles
	basePerCycle float64 // base arrival rate, requests per cycle
	peakMult     float64 // max of the rate envelope (thinning bound)
	capacityRPS  float64 // one initial replica's max-batch throughput

	arrRNG   *sim.RNG // arrival gaps + thinning coin
	routeRNG *sim.RNG // power-of-two sampling

	replicas      []*replica // active + draining (retired ones removed)
	nextReplicaID int

	// metrics
	lat            metrics.Latencies // all completed requests, cycles
	windowLat      metrics.Latencies // since the last autoscale decision
	arrivals       int
	rejected       int
	completed      int
	windowRejected int
	maxQueue       int
	peakReplicas   int
	scaleUps       int
	scaleDowns     int
	resizes        int
	scaleFails     int
	replicaTL      *metrics.TimeSeries
}

// rateMult evaluates the deterministic rate envelope at time t (cycles).
func (t *tenantState) rateMult(at, durCycles float64) float64 {
	switch t.cfg.Arrival {
	case Flash:
		frac := at / durCycles
		if frac >= t.cfg.BurstStart && frac < t.cfg.BurstEnd {
			return t.cfg.BurstFactor
		}
		return 1
	case Diurnal:
		period := t.cfg.DiurnalPeriod * durCycles
		return 1 + t.cfg.DiurnalDepth*math.Sin(2*math.Pi*at/period+t.cfg.DiurnalPhase)
	default:
		return 1
	}
}

func (t *tenantState) activeCount() int {
	n := 0
	for _, r := range t.replicas {
		if !r.draining {
			n++
		}
	}
	return n
}

// fleet is the whole serving simulation.
type fleet struct {
	cfg    Config
	eng    *sim.Engine
	costs  *CostDB
	mapper *core.Mapper
	alloc  *core.Allocator

	tenants   []*tenantState
	nextVNPU  int
	durCycles float64

	// time-weighted fleet accounting (lazy snapshots, like internal/cluster)
	lastSnap     float64
	allocatedEUs int
	allocArea    float64
	strandArea   float64
	busySum      float64 // busyEUCycles of retired replicas
	mapAccepts   int
	mapRejects   int
	routeScratch []*replica
}

// Run executes one serving scenario. The optional CostDB carries
// measured invocation costs across runs (scenario comparisons, repeated
// seeds); pass nil to build a private one. Costs are pure functions of
// (model, batch, shape), so sharing the database never changes results.
func Run(cfg Config, db *CostDB) (*Report, error) {
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if db == nil || db.Core() != cfg.Core {
		db = NewCostDB(cfg.Core)
	}
	mapper, err := core.NewMapper(cfg.Cores, cfg.Core)
	if err != nil {
		return nil, err
	}
	mapper.Policy = cfg.Placement
	alloc, err := core.NewAllocator(cfg.Core)
	if err != nil {
		return nil, err
	}
	f := &fleet{
		cfg:       cfg,
		eng:       sim.NewEngine(),
		costs:     db,
		mapper:    mapper,
		alloc:     alloc,
		durCycles: cfg.DurationSec * cfg.Core.FrequencyHz,
	}
	cm := compiler.NewCostModel(cfg.Core)
	for i := range cfg.Tenants {
		t := &tenantState{cfg: cfg.Tenants[i], idx: i}
		t.cfg.defaults()
		if err := t.cfg.validate(); err != nil {
			return nil, err
		}
		g, err := model.Build(t.cfg.Model, PadBatch(t.cfg.MaxBatch))
		if err != nil {
			return nil, fmt.Errorf("serve: tenant %s: %w", t.cfg.Name, err)
		}
		t.profile = cm.ProfileGraph(g)
		t.footprint = g.HBMFootprint
		t.curEUs = t.cfg.EUs
		t.arrRNG = sim.NewRNG(cfg.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
		t.routeRNG = sim.NewRNG(cfg.Seed ^ (uint64(i)+1)*0xbf58476d1ce4e5b9)
		t.replicaTL = metrics.NewTimeSeries(t.cfg.Name+"/replicas", 4096)
		f.tenants = append(f.tenants, t)

		for k := 0; k < t.cfg.InitialReplicas; k++ {
			if err := f.spawnReplica(t, t.curEUs); err != nil {
				return nil, fmt.Errorf("serve: tenant %s initial replica %d: %w", t.cfg.Name, k, err)
			}
		}
		// SLO and offered rate derive from the measured full-batch
		// service time of one freshly spawned replica.
		r0 := t.replicas[0]
		full, err := db.ServiceCycles(t.cfg.Model, t.cfg.MaxBatch, r0.nm, r0.nv)
		if err != nil {
			return nil, err
		}
		if t.cfg.SLOMs > 0 {
			t.sloCycles = t.cfg.SLOMs / 1e3 * cfg.Core.FrequencyHz
		} else {
			t.sloCycles = t.cfg.SLOFactor * full
			t.cfg.SLOMs = t.sloCycles / cfg.Core.FrequencyHz * 1e3
		}
		if t.cfg.BatchWindowMs > 0 {
			t.batchWindow = t.cfg.BatchWindowMs / 1e3 * cfg.Core.FrequencyHz
		} else {
			// Never burn more than a tenth of the latency budget waiting
			// for batchmates.
			t.batchWindow = t.sloCycles / 10
		}
		t.capacityRPS = float64(t.cfg.MaxBatch) / (full / cfg.Core.FrequencyHz)
		rps := t.cfg.RatePerSec
		if rps <= 0 {
			rps = t.cfg.Load * float64(t.cfg.InitialReplicas) * t.capacityRPS
		}
		t.basePerCycle = rps / cfg.Core.FrequencyHz
		t.peakMult = 1
		if t.cfg.Arrival == Flash {
			t.peakMult = t.cfg.BurstFactor
		} else if t.cfg.Arrival == Diurnal {
			t.peakMult = 1 + t.cfg.DiurnalDepth
		}
		f.scheduleArrival(t)
	}
	if cfg.Autoscale {
		f.scheduleScale(cfg.ScaleEverySec * cfg.Core.FrequencyHz)
	}
	f.eng.Run()
	return f.report(), nil
}

// scheduleArrival queues the next candidate arrival of the tenant's
// thinned Poisson stream. Candidates are drawn at the peak rate; each is
// accepted with probability rate(t)/peak, which realizes the exact
// non-homogeneous process deterministically from the tenant's RNG.
func (f *fleet) scheduleArrival(t *tenantState) {
	gap := t.arrRNG.Exp(1 / (t.basePerCycle * t.peakMult))
	at := float64(f.eng.Now()) + gap
	if at > f.durCycles {
		return // traffic ends with the scenario; in-flight work drains
	}
	f.eng.At(sim.Time(at), func(now sim.Time) {
		if t.arrRNG.Float64()*t.peakMult <= t.rateMult(float64(now), f.durCycles) {
			f.arrive(t, now)
		}
		f.scheduleArrival(t)
	})
}

// arrive routes one request and applies admission control: a request
// bound for a replica whose queue is at QueueCap is rejected (shed at
// the front door) rather than queued into certain SLO violation.
func (f *fleet) arrive(t *tenantState, now sim.Time) {
	t.arrivals++
	r := f.route(t)
	if len(r.queue) >= t.cfg.QueueCap {
		t.rejected++
		if f.cfg.Autoscale {
			t.windowRejected++
		}
		return
	}
	r.queue = append(r.queue, now)
	if len(r.queue) > t.maxQueue {
		t.maxQueue = len(r.queue)
	}
	f.maybeLaunch(r)
}

// route picks the target replica among the tenant's non-draining
// replicas. All ties break toward the older replica, keeping the
// decision deterministic.
func (f *fleet) route(t *tenantState) *replica {
	cands := f.routeScratch[:0]
	for _, r := range t.replicas {
		if !r.draining {
			cands = append(cands, r)
		}
	}
	f.routeScratch = cands
	if len(cands) == 1 {
		return cands[0]
	}
	load := func(r *replica) int {
		if f.cfg.Router == JSQ {
			return len(r.queue)
		}
		return r.backlog()
	}
	if f.cfg.Router == PowerOfTwo {
		i := t.routeRNG.Intn(len(cands))
		j := t.routeRNG.Intn(len(cands) - 1)
		if j >= i {
			j++
		}
		a, b := cands[i], cands[j]
		if load(b) < load(a) || (load(b) == load(a) && b.id < a.id) {
			return b
		}
		return a
	}
	best := cands[0]
	for _, r := range cands[1:] {
		if load(r) < load(best) {
			best = r
		}
	}
	return best
}

// maybeLaunch starts a batch on an idle replica: immediately when the
// queue already fills the batch, otherwise after the batch window so
// stragglers can coalesce.
func (f *fleet) maybeLaunch(r *replica) {
	if len(r.inflight) > 0 || len(r.queue) == 0 || r.retired {
		return
	}
	if len(r.queue) >= r.ten.cfg.MaxBatch {
		f.launch(r)
		return
	}
	if !r.timerSet {
		r.timerSet = true
		r.timer = f.eng.After(sim.Time(r.ten.batchWindow)+1, func(sim.Time) {
			r.timerSet = false
			if len(r.inflight) == 0 && len(r.queue) > 0 && !r.retired {
				f.launch(r)
			}
		})
	}
}

// launch takes up to MaxBatch requests off the queue and schedules the
// batched invocation's completion at its measured service time.
func (f *fleet) launch(r *replica) {
	t := r.ten
	if r.timerSet {
		f.eng.Cancel(r.timer)
		r.timerSet = false
	}
	n := len(r.queue)
	if n > t.cfg.MaxBatch {
		n = t.cfg.MaxBatch
	}
	r.inflight = append(r.inflight[:0], r.queue[:n]...)
	rest := copy(r.queue, r.queue[n:])
	r.queue = r.queue[:rest]
	cycles, err := f.costs.ServiceCycles(t.cfg.Model, n, r.nm, r.nv)
	if err != nil {
		// Model and shapes were validated at spawn; a miss here is a bug.
		panic(fmt.Sprintf("serve: costing launched batch: %v", err))
	}
	r.busyEUCycles += cycles * float64(r.nm+r.nv)
	f.eng.After(sim.Time(cycles)+1, func(now sim.Time) { f.complete(r, now) })
}

// complete retires a finished batch, records per-request latencies, and
// immediately relaunches when a backlog is waiting (no window: the
// batcher only dawdles when idle).
func (f *fleet) complete(r *replica, now sim.Time) {
	t := r.ten
	for _, at := range r.inflight {
		lat := float64(now - at)
		t.lat.Add(lat)
		if f.cfg.Autoscale {
			// The observation window only exists for the autoscaler; a
			// fixed fleet would just duplicate every sample unread.
			t.windowLat.Add(lat)
		}
		t.completed++
	}
	r.inflight = r.inflight[:0]
	if r.draining && len(r.queue) == 0 {
		f.retire(r, now)
		return
	}
	if len(r.queue) > 0 {
		f.launch(r)
	}
}

// report assembles the final Report once the event queue has drained.
func (f *fleet) report() *Report {
	end := float64(f.eng.Now())
	if end < f.durCycles {
		end = f.durCycles
	}
	f.snapshot(end)
	freq := f.cfg.Core.FrequencyHz
	ms := func(cycles float64) float64 { return cycles / freq * 1e3 }

	rep := &Report{
		Scenario:    f.cfg.Scenario,
		Seed:        f.cfg.Seed,
		DurationSec: f.cfg.DurationSec,
		Cores:       f.cfg.Cores,
		Router:      f.cfg.Router.String(),
		Placement:   f.cfg.Placement.String(),
		Autoscale:   f.cfg.Autoscale,
	}
	busy := f.busySum
	for _, t := range f.tenants {
		for _, r := range t.replicas {
			busy += r.busyEUCycles
		}
		sloOK := t.lat.CountBelow(t.sloCycles)
		tr := TenantReport{
			Name:            t.cfg.Name,
			Model:           t.cfg.Model,
			SLOMs:           t.cfg.SLOMs,
			Arrivals:        t.arrivals,
			Rejected:        t.rejected,
			Completed:       t.completed,
			P50Ms:           ms(t.lat.P50()),
			P95Ms:           ms(t.lat.P95()),
			P99Ms:           ms(t.lat.P99()),
			MeanMs:          ms(t.lat.Mean()),
			GoodputRPS:      float64(sloOK) / f.cfg.DurationSec,
			Replicas:        t.activeCount(),
			PeakReplicas:    t.peakReplicas,
			EUsPerReplica:   t.curEUs,
			ScaleUps:        t.scaleUps,
			ScaleDowns:      t.scaleDowns,
			Resizes:         t.resizes,
			ScaleFails:      t.scaleFails,
			MaxQueue:        t.maxQueue,
			ReplicaTimeline: t.replicaTL,
		}
		if t.arrivals > 0 {
			// Rejected requests count against attainment: a shed request
			// is a broken promise too.
			tr.SLOAttainment = float64(sloOK) / float64(t.arrivals)
		}
		rep.Tenants = append(rep.Tenants, tr)
	}
	totalEUs := float64(f.cfg.Cores * (f.cfg.Core.MEs + f.cfg.Core.VEs))
	if end > 0 {
		rep.FleetEUUtil = busy / (end * totalEUs)
		rep.AllocatedEUFrac = f.allocArea / (end * totalEUs)
		rep.MeanStrandedEUs = f.strandArea / end
	}
	rep.MapAccepts = f.mapAccepts
	rep.MapRejects = f.mapRejects
	return rep
}
