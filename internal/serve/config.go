package serve

import (
	"fmt"

	"neu10/internal/arch"
	"neu10/internal/core"
)

// Role specializes a replica slot in a disaggregated LLM fleet. The
// zero value keeps the colocated behavior: a mixed slot runs whatever
// its tenant's batcher hands it.
type Role int

const (
	// RoleMixed serves every work kind — the colocated default.
	RoleMixed Role = iota
	// RolePrefill only runs prompt processing; arrivals of a
	// disaggregated tenant route exclusively here, and finished prompts
	// migrate their KV to a decode slot over the interconnect.
	RolePrefill
	// RoleDecode only runs decode iterations over sequences whose KV a
	// migration has landed; it never sees a prefill, so decode TPOT is
	// isolated from prompt bursts by construction.
	RoleDecode
)

func (r Role) String() string {
	switch r {
	case RoleMixed:
		return "mixed"
	case RolePrefill:
		return "prefill"
	case RoleDecode:
		return "decode"
	default:
		return fmt.Sprintf("role(%d)", int(r))
	}
}

// RouterPolicy selects how the SLO-aware router spreads a tenant's
// admitted requests across its replicas.
type RouterPolicy int

const (
	// LeastLoaded picks the replica with the fewest outstanding requests
	// (queued + in service); ties break toward the older replica.
	LeastLoaded RouterPolicy = iota
	// JSQ (join-shortest-queue) considers only the wait queue, ignoring
	// the batch currently in service.
	JSQ
	// PowerOfTwo samples two distinct replicas uniformly and joins the
	// less loaded — the classic O(1) approximation of least-loaded.
	PowerOfTwo
)

func (p RouterPolicy) String() string {
	switch p {
	case LeastLoaded:
		return "least-loaded"
	case JSQ:
		return "jsq"
	case PowerOfTwo:
		return "power-of-two"
	default:
		return fmt.Sprintf("router(%d)", int(p))
	}
}

// Priority is a request priority class. Every request carries its
// tenant's priority; on temporal-shared replica slots (see
// TenantConfig.ShareGroup) a higher-priority batch preempts an
// in-flight lower-priority one at a µTOp-quantum boundary when
// Config.Preempt is set.
type Priority int

const (
	// Batch is the background class: throughput-oriented work that
	// tolerates preemption (the zero value, so priority-unaware configs
	// keep their old behavior).
	Batch Priority = iota
	// Interactive is the latency-sensitive class: its batches preempt
	// Batch work on shared slots.
	Interactive
)

// numPriorities sizes per-class accounting arrays.
const numPriorities = int(Interactive) + 1

func (p Priority) String() string {
	switch p {
	case Batch:
		return "batch"
	case Interactive:
		return "interactive"
	default:
		return fmt.Sprintf("priority(%d)", int(p))
	}
}

// ArrivalKind selects a tenant's open-loop arrival process. All three
// are Poisson processes thinned from a deterministic rate envelope, so
// the trace depends only on the seed.
type ArrivalKind int

const (
	// Poisson is a homogeneous Poisson stream at the base rate.
	Poisson ArrivalKind = iota
	// Flash is Poisson with the rate multiplied by BurstFactor inside
	// the [BurstStartFrac, BurstEndFrac) window of the run — a flash
	// crowd.
	Flash
	// Diurnal modulates the rate sinusoidally: base·(1 + depth·sin(...)),
	// the shape of a day/night traffic trace.
	Diurnal
)

func (k ArrivalKind) String() string {
	switch k {
	case Poisson:
		return "poisson"
	case Flash:
		return "flash"
	case Diurnal:
		return "diurnal"
	default:
		return fmt.Sprintf("arrival(%d)", int(k))
	}
}

// TenantConfig describes one served tenant: its model, traffic, SLO and
// scaling envelope.
type TenantConfig struct {
	Name  string
	Model string // one of model.Names()

	// Load is the offered load as a fraction of the initial fleet's
	// max-batch service capacity; RatePerSec overrides it when > 0.
	Load       float64
	RatePerSec float64

	Arrival       ArrivalKind
	BurstFactor   float64 // Flash: rate multiplier during the burst window
	BurstStart    float64 // Flash: window start, fraction of the run (default 1/3)
	BurstEnd      float64 // Flash: window end, fraction of the run (default 2/3)
	DiurnalDepth  float64 // Diurnal: modulation depth in [0, 1) (default 0.8)
	DiurnalPeriod float64 // Diurnal: period as a fraction of the run (default 1)
	DiurnalPhase  float64 // Diurnal: phase offset in radians

	// SLOMs is the per-request latency objective in milliseconds; when 0
	// it is derived as SLOFactor × the ideal full-batch service time on
	// one replica (default factor 3).
	SLOMs     float64
	SLOFactor float64

	MaxBatch      int     // dynamic batcher cap (default 8)
	BatchWindowMs float64 // max coalescing wait; default SLOMs/10
	QueueCap      int     // per-replica admission bound (default 64)

	// EUs is the per-replica execution-unit budget handed to the §III-B
	// allocator (default 4). The autoscaler may grow it in steps of 2 up
	// to what fits one physical core, and shrink it back.
	EUs             int
	InitialReplicas int // default 1
	MinReplicas     int // default 1
	MaxReplicas     int // default InitialReplicas

	// Priority is the class every request of this tenant carries
	// (default Batch). It only matters on temporal-shared slots.
	Priority Priority
	// ShareGroup names a temporal-sharing pool: tenants with the same
	// non-empty group pool ALL their replicas — any member's requests
	// may be served by any slot in the pool, each slot keeping one wait
	// queue per member. Empty (the default) keeps replicas private to
	// their tenant, exactly the pre-priority behavior.
	ShareGroup string

	// LLM, when non-nil, makes the tenant autoregressive: requests draw
	// a prompt/output shape, replicas carve a KV-cache partition out of
	// their vNPU HBM, and the slot runs a continuous (or, for the
	// baseline, static) batcher over generation iterations — see llm.go.
	LLM *LLMConfig
}

func (tc *TenantConfig) defaults() {
	if tc.SLOFactor == 0 {
		tc.SLOFactor = 3
	}
	if tc.MaxBatch == 0 {
		tc.MaxBatch = 8
	}
	if tc.QueueCap == 0 {
		tc.QueueCap = 64
	}
	if tc.EUs == 0 {
		tc.EUs = 4
	}
	if tc.InitialReplicas == 0 {
		tc.InitialReplicas = 1
	}
	if tc.MinReplicas == 0 {
		tc.MinReplicas = 1
	}
	if tc.MaxReplicas == 0 {
		tc.MaxReplicas = tc.InitialReplicas
	}
	if tc.BurstFactor == 0 {
		tc.BurstFactor = 1
	}
	if tc.BurstStart == 0 && tc.BurstEnd == 0 {
		tc.BurstStart, tc.BurstEnd = 1.0/3, 2.0/3
	}
	if tc.DiurnalDepth == 0 {
		tc.DiurnalDepth = 0.8
	}
	if tc.DiurnalPeriod == 0 {
		tc.DiurnalPeriod = 1
	}
	if tc.LLM != nil {
		tc.LLM.defaults()
		if d := tc.LLM.Disagg; d != nil && d.DecodeBatch == 0 {
			d.DecodeBatch = 2 * tc.MaxBatch
		}
	}
}

func (tc *TenantConfig) validate() error {
	switch {
	case tc.Name == "":
		return fmt.Errorf("serve: tenant without a name")
	case tc.Load <= 0 && tc.RatePerSec <= 0:
		return fmt.Errorf("serve: tenant %s has no offered load", tc.Name)
	case tc.BurstFactor < 1:
		return fmt.Errorf("serve: tenant %s burst factor %v < 1", tc.Name, tc.BurstFactor)
	case tc.Arrival == Flash && !(tc.BurstStart >= 0 && tc.BurstStart < tc.BurstEnd && tc.BurstEnd <= 1):
		return fmt.Errorf("serve: tenant %s burst window [%v, %v) must satisfy 0 ≤ start < end ≤ 1",
			tc.Name, tc.BurstStart, tc.BurstEnd)
	case tc.DiurnalDepth < 0 || tc.DiurnalDepth >= 1:
		return fmt.Errorf("serve: tenant %s diurnal depth %v out of [0,1)", tc.Name, tc.DiurnalDepth)
	case tc.MinReplicas < 1:
		return fmt.Errorf("serve: tenant %s needs ≥1 replica", tc.Name)
	case tc.InitialReplicas < tc.MinReplicas || tc.MaxReplicas < tc.InitialReplicas:
		return fmt.Errorf("serve: tenant %s replica bounds %d ≤ %d ≤ %d malformed",
			tc.Name, tc.MinReplicas, tc.InitialReplicas, tc.MaxReplicas)
	case tc.QueueCap < 1:
		return fmt.Errorf("serve: tenant %s queue cap %d", tc.Name, tc.QueueCap)
	case tc.MaxBatch < 1:
		return fmt.Errorf("serve: tenant %s max batch %d", tc.Name, tc.MaxBatch)
	case tc.EUs < 2:
		return fmt.Errorf("serve: tenant %s EU budget %d < 2 (1 ME + 1 VE)", tc.Name, tc.EUs)
	case tc.Priority < Batch || tc.Priority > Interactive:
		return fmt.Errorf("serve: tenant %s priority %d unknown", tc.Name, tc.Priority)
	}
	if tc.LLM != nil {
		if err := tc.LLM.validate(tc.Name); err != nil {
			return err
		}
		// Disaggregated pools are private by construction: a prefill or
		// decode slot serves exactly one tenant's one phase, which is the
		// whole point — temporal sharing would reintroduce the
		// interference disaggregation removes.
		if tc.LLM.Disagg != nil && tc.ShareGroup != "" {
			return fmt.Errorf("serve: tenant %s: disaggregation and share groups are mutually exclusive", tc.Name)
		}
		// The paged backend's evictor must own every resident sequence's
		// lifecycle; a share-group peer's suspended batch could hold live
		// references to sequences the evictor wants to reclaim.
		if tc.LLM.KVPolicy == KVPaged && tc.ShareGroup != "" {
			return fmt.Errorf("serve: tenant %s: paged KV and share groups are mutually exclusive", tc.Name)
		}
	}
	return nil
}

// Config parameterizes one serving run.
type Config struct {
	Scenario string // label carried into the report
	Core     arch.CoreConfig
	Cores    int // pNPU fleet size (single-core pNPUs, like internal/cluster)

	Placement core.PlacementPolicy
	Router    RouterPolicy

	DurationSec float64
	Seed        uint64

	// Autoscale enables the control loop; when false the fleet stays at
	// each tenant's InitialReplicas — the no-autoscale baseline.
	Autoscale bool
	// ScaleEverySec is the control interval (default 0.25s).
	ScaleEverySec float64
	// ScaleUpP99Frac: scale up when windowed p99 > frac × SLO (default 1).
	ScaleUpP99Frac float64
	// ScaleDownP99Frac: scale down when windowed p99 < frac × SLO and the
	// window saw no rejections (default 0.4).
	ScaleDownP99Frac float64

	// Preempt enables priority-aware preemptive scheduling on
	// temporal-shared slots: a waiting higher-priority batch preempts an
	// in-flight lower-priority one at the next µTOp-quantum boundary,
	// and the victim later resumes with exactly its remaining service
	// cycles (sched.CheckpointAt models the checkpoint; each
	// save/restore costs virt.SwitchCycles on the slot). When false,
	// shared slots serve their queues FIFO by arrival — the no-priority
	// baseline the serve-priority scenario compares against.
	Preempt bool
	// PreemptQuantumCycles is the µTOp-quantum granularity preemption
	// checkpoints at (default 4096 cycles). Quanta longer than a batch's
	// service time make that batch effectively non-preemptible.
	PreemptQuantumCycles float64
	// MaxPreemptsPerBatch denominates the aging-credit budget that
	// bounds Batch wait (default 4): every batch tolerates up to
	// MaxPreemptsPerBatch × PreemptQuantumCycles cycles of victimization
	// delay (time spent suspended or bypassed by higher-priority work);
	// once the accrued delay exhausts that credit the batch is immune to
	// further preemption and bypass — the anti-starvation bound for
	// Batch work under sustained Interactive load. (This replaces the
	// original hard event cap: a batch victimized by many cheap
	// interruptions now stays preemptible longer, one victimized by a
	// single long one becomes immune sooner, and either way its total
	// extra wait is bounded in cycles, not events.)
	MaxPreemptsPerBatch int

	// LinkGBps is the modeled chip-to-chip interconnect bandwidth per
	// link in GB/s (default 64); LinkLatencyUs the per-transfer latency
	// in microseconds (default 2). Only disaggregated tenants
	// (LLMConfig.Disagg) ship KV migrations over the fabric; everything
	// else ignores it. Concurrent migrations between the same chip pair
	// share the link max-min fairly (internal/xfer).
	LinkGBps      float64
	LinkLatencyUs float64

	// Faults schedules deterministic fault injection — replica/chip
	// crashes, correlated pod outages, link degradation — on the sim
	// clock; nil (the default) keeps the fleet fault-free. See fault.go.
	Faults *FaultPlan
	// Recover enables the recovery machinery a FaultPlan exercises (warm
	// spares, emergency spawns, decode-pool evacuation); nil is the
	// no-recovery baseline.
	Recover *RecoveryConfig

	// Obs enables deterministic tracing and time-resolved telemetry
	// (see obs.go and docs/OBSERVABILITY.md); nil — the default — runs
	// with zero observability overhead and byte-identical output to a
	// build without the subsystem.
	Obs *ObsConfig

	Tenants []TenantConfig
}

func (c *Config) defaults() {
	if c.ScaleEverySec == 0 {
		c.ScaleEverySec = 0.25
	}
	if c.ScaleUpP99Frac == 0 {
		c.ScaleUpP99Frac = 1
	}
	if c.ScaleDownP99Frac == 0 {
		c.ScaleDownP99Frac = 0.4
	}
	if c.PreemptQuantumCycles == 0 {
		c.PreemptQuantumCycles = 4096
	}
	if c.MaxPreemptsPerBatch == 0 {
		c.MaxPreemptsPerBatch = 4
	}
	if c.LinkGBps == 0 {
		c.LinkGBps = 64
	}
	if c.LinkLatencyUs == 0 {
		c.LinkLatencyUs = 2
	}
	if c.Faults != nil {
		c.Faults.defaults()
	}
	if c.Obs != nil {
		// Clone before defaulting: one ObsConfig is typically shared
		// across parallel scenario legs (experiments), and each run must
		// own its copy.
		o := *c.Obs
		o.defaults()
		c.Obs = &o
	}
}

func (c *Config) validate() error {
	if err := c.Core.Validate(); err != nil {
		return err
	}
	switch {
	case c.Cores < 1:
		return fmt.Errorf("serve: fleet needs ≥1 pNPU, got %d", c.Cores)
	case c.DurationSec <= 0:
		return fmt.Errorf("serve: duration %v", c.DurationSec)
	case len(c.Tenants) == 0:
		return fmt.Errorf("serve: no tenants")
	case c.PreemptQuantumCycles < 0:
		return fmt.Errorf("serve: preemption quantum %v", c.PreemptQuantumCycles)
	case c.MaxPreemptsPerBatch < 1:
		return fmt.Errorf("serve: max preempts per batch %d", c.MaxPreemptsPerBatch)
	case c.LinkGBps < 0:
		return fmt.Errorf("serve: link bandwidth %v GB/s", c.LinkGBps)
	case c.LinkLatencyUs < 0:
		return fmt.Errorf("serve: link latency %v µs", c.LinkLatencyUs)
	}
	if c.Faults != nil {
		if err := c.Faults.validate(c); err != nil {
			return err
		}
	}
	if c.Recover != nil {
		if err := c.Recover.validate(); err != nil {
			return err
		}
	}
	if c.Obs != nil {
		if err := c.Obs.validate(); err != nil {
			return err
		}
	}
	// Quantum-boundary preemption suspends batches that keep live
	// sequence references across the suspension; the paged evictor
	// reclaims sequences it believes idle, so the two must not mix.
	if c.Preempt {
		for i := range c.Tenants {
			if llm := c.Tenants[i].LLM; llm != nil && llm.KVPolicy == KVPaged {
				return fmt.Errorf("serve: tenant %s: paged KV and preemptive sharing are mutually exclusive", c.Tenants[i].Name)
			}
		}
	}
	// Per-tenant validation happens in newFleet, against each tenant's
	// defaulted private copy.
	return nil
}
