package serve

import (
	"strings"
	"testing"

	"neu10/internal/arch"
	"neu10/internal/model"
	"neu10/internal/workload"
)

// disaggConfig is the shared disaggregation test scenario: a bimodal
// long/short-prompt trace on 2 prefill + 2 decode replicas. kvCap
// squeezes the per-replica KV partition (0 keeps the derived capacity)
// so the migration admission path and its backpressure actually act.
func disaggConfig(seed uint64, gbps float64, kvCap int) Config {
	return Config{
		Scenario:    "disagg-test",
		Core:        arch.TPUv4Like(),
		Cores:       4,
		Router:      LeastLoaded,
		DurationSec: 6.0,
		Seed:        seed,
		LinkGBps:    gbps,
		Tenants: []TenantConfig{{
			Name: "gen", Model: "LLaMA", RatePerSec: 18, EUs: 4,
			MaxBatch: 8, QueueCap: 64, SLOMs: 3000,
			LLM: &LLMConfig{
				KVCapTokens: kvCap,
				Trace: workload.LLMTrace{
					PromptMin: 16, PromptMean: 32, PromptMax: 64,
					PromptLongFrac: 0.25, PromptLongMin: 128, PromptLongMean: 192, PromptLongMax: 256,
					OutputMin: 6, OutputMean: 12, OutputMax: 24,
				},
				Disagg: &DisaggConfig{PrefillReplicas: 2, DecodeReplicas: 2, ChunkTokens: 64},
			},
		}},
	}
}

// TestDisaggMigrationAccounting is the KV-migration conservation
// property: across seeds, link speeds and deliberate KV pressure,
// every admitted sequence migrates exactly once, the bytes shipped are
// exactly the admitted prompt tokens' KV, prefill-side blocks are
// released when (and only when) their transfer completes, and at drain
// every accountant on every replica is back to zero — no double-count
// surviving a migration, no leak. (The accountants themselves panic on
// any overcommit or over-free, so a clean run also certifies that no
// intermediate state ever went negative or past capacity.)
func TestDisaggMigrationAccounting(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	for _, gbps := range []float64{64, 0.25} {
		for seed := uint64(1); seed <= 3; seed++ {
			// 640 KV tokens ≈ 2 worst-case sequences per decode replica:
			// the migration queue and its FIFO drain do real work.
			f, err := newFleet(disaggConfig(seed, gbps, 640), db)
			if err != nil {
				t.Fatal(err)
			}
			for _, ten := range f.tenants {
				f.scheduleArrival(ten)
			}
			f.eng.Run()
			rep := f.report()

			ten := f.tenants[0]
			l := ten.llm
			tr := rep.Tenants[0]
			if tr.Arrivals != tr.Rejected+tr.Completed {
				t.Errorf("gbps %v seed %d: %d arrivals ≠ %d rejected + %d completed",
					gbps, seed, tr.Arrivals, tr.Rejected, tr.Completed)
			}
			if l.migrations != l.admitted {
				t.Errorf("gbps %v seed %d: %d admitted sequences but %d migrations — a sequence skipped or repeated the handoff",
					gbps, seed, l.admitted, l.migrations)
			}
			if l.migLanded != l.migrations {
				t.Errorf("gbps %v seed %d: %d migrations started but %d landed after drain",
					gbps, seed, l.migrations, l.migLanded)
			}
			if want := l.promptTokens * model.LLMKVBytesPerToken(); l.migBytes != want {
				t.Errorf("gbps %v seed %d: migrated %d bytes, want exactly the admitted prompt KV %d",
					gbps, seed, l.migBytes, want)
			}
			if len(l.migQ) != 0 {
				t.Errorf("gbps %v seed %d: %d migrations still parked after drain", gbps, seed, len(l.migQ))
			}
			for _, r := range ten.replicas {
				if r.kv.used() != 0 {
					t.Errorf("gbps %v seed %d: %s replica %d holds %d KV blocks after drain — leaked reservation",
						gbps, seed, r.role, r.id, r.kv.used())
				}
				if r.inbound != 0 {
					t.Errorf("gbps %v seed %d: replica %d reports %d inbound transfers after drain",
						gbps, seed, r.id, r.inbound)
				}
				if len(r.queueFor(ten).running) != 0 {
					t.Errorf("gbps %v seed %d: replica %d still runs %d sequences after drain",
						gbps, seed, r.id, len(r.queueFor(ten).running))
				}
			}
			if tr.LLM.KVOccPeak <= 0 || tr.LLM.KVOccPeak > 1 {
				t.Errorf("gbps %v seed %d: peak KV occupancy %.3f out of (0,1]", gbps, seed, tr.LLM.KVOccPeak)
			}
			if tr.LLM.MigStalls == 0 {
				t.Errorf("gbps %v seed %d: tight KV produced no migration stalls — backpressure untested", gbps, seed)
			}
			if tr.Completed == 0 {
				t.Errorf("gbps %v seed %d: nothing completed", gbps, seed)
			}
		}
	}
}

// TestDisaggDeterminism extends the byte-identical guarantee to
// disaggregated runs: same seed ⇒ identical report, shared or private
// cost database; different seed ⇒ different report.
func TestDisaggDeterminism(t *testing.T) {
	shared := NewCostDB(arch.TPUv4Like())
	r1, err := Run(disaggConfig(5, 1, 0), shared)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(disaggConfig(5, 1, 0), shared)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Run(disaggConfig(5, 1, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Table() != r2.Table() || r1.Table() != r3.Table() {
		t.Errorf("disaggregated run is not byte-reproducible:\n%s\nvs\n%s\nvs\n%s",
			r1.Table(), r2.Table(), r3.Table())
	}
	r4, err := Run(disaggConfig(6, 1, 0), shared)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Table() == r4.Table() {
		t.Error("different seeds produced identical disaggregated reports")
	}
	for _, want := range []string{"disagg tenant", "prefill(peak)", "decode(peak)", "migrations", "interconnect:"} {
		if !strings.Contains(r1.Table(), want) {
			t.Errorf("disaggregation table section missing %q:\n%s", want, r1.Table())
		}
	}
}

// TestDisaggIsolatesTPOT is the subsystem's headline property at the
// serve layer: on the identical trace at a matched chip count, decode
// TPOT p99 under disaggregation (decode slots never run a prefill)
// beats the colocated continuous batcher, where long-prompt prefill
// invocations interleave with decode iterations on every slot.
func TestDisaggIsolatesTPOT(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	dis, err := Run(disaggConfig(1, 64, 0), db)
	if err != nil {
		t.Fatal(err)
	}
	colo := disaggConfig(1, 64, 0)
	colo.Tenants[0].LLM.Disagg = nil
	colo.Tenants[0].InitialReplicas = 4
	colo.Tenants[0].MaxReplicas = 4
	col, err := Run(colo, db)
	if err != nil {
		t.Fatal(err)
	}
	dt, ct := dis.Tenants[0], col.Tenants[0]
	if dt.Arrivals != ct.Arrivals {
		t.Fatalf("traces diverge: %d vs %d arrivals", dt.Arrivals, ct.Arrivals)
	}
	if dt.LLM.TokensOut != ct.LLM.TokensOut {
		t.Fatalf("token totals diverge: %d vs %d", dt.LLM.TokensOut, ct.LLM.TokensOut)
	}
	if dt.LLM.TPOTP99Ms >= ct.LLM.TPOTP99Ms {
		t.Errorf("disaggregated TPOT p99 %.2f ms did not beat colocated %.2f ms",
			dt.LLM.TPOTP99Ms, ct.LLM.TPOTP99Ms)
	}
	if dt.LLM.Migrations != dt.LLM.Admitted {
		t.Errorf("%d migrations for %d admitted sequences", dt.LLM.Migrations, dt.LLM.Admitted)
	}
	if ct.LLM.Migrations != 0 {
		t.Errorf("colocated run recorded %d migrations", ct.LLM.Migrations)
	}
}

// TestDisaggPoolAutoscale drives the per-pool control loops: under
// prompt-heavy load with tight pool floors, the prefill pool must grow
// on its queue-delay signal and the decode pool on TPOT/migration
// stalls, each within its own bounds — and the pools must move
// independently (this is what Config.Autoscale delegates to for
// disaggregated tenants).
func TestDisaggPoolAutoscale(t *testing.T) {
	cfg := disaggConfig(2, 64, 0)
	cfg.Autoscale = true
	cfg.ScaleEverySec = 0.25
	cfg.Tenants[0].RatePerSec = 26
	cfg.Tenants[0].LLM.Disagg = &DisaggConfig{
		PrefillReplicas: 1, MaxPrefill: 2,
		DecodeReplicas: 1, MaxDecode: 2,
		ChunkTokens: 64,
	}
	f, err := newFleet(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ten := range f.tenants {
		f.scheduleArrival(ten)
	}
	f.scheduleScale(cfg.ScaleEverySec * cfg.Core.FrequencyHz)
	f.eng.Run()
	rep := f.report()
	ten := f.tenants[0]
	lr := rep.Tenants[0].LLM
	if rep.Tenants[0].ScaleUps == 0 {
		t.Error("overloaded pools never scaled up")
	}
	if lr.PrefillPeak < 2 && lr.DecodePeak < 2 {
		t.Errorf("neither pool grew (prefill peak %d, decode peak %d) under overload",
			lr.PrefillPeak, lr.DecodePeak)
	}
	d := cfg.Tenants[0].LLM.Disagg
	if ten.prefPeak > d.MaxPrefill || ten.decPeak > d.MaxDecode {
		t.Errorf("pool bounds violated: prefill peak %d (max %d), decode peak %d (max %d)",
			ten.prefPeak, d.MaxPrefill, ten.decPeak, d.MaxDecode)
	}
	if rep.Tenants[0].Arrivals != rep.Tenants[0].Rejected+rep.Tenants[0].Completed {
		t.Errorf("accounting broken under autoscale: %d ≠ %d + %d",
			rep.Tenants[0].Arrivals, rep.Tenants[0].Rejected, rep.Tenants[0].Completed)
	}
}

// TestDisaggChunkedPrefillInterleaves pins chunked prefill's defining
// behavior: with chunking on, the prefill pool issues MORE, SHORTER
// invocations than whole-prompt prefill on the identical trace (the
// long prompts are sliced), while total admitted work and migration
// traffic stay identical.
func TestDisaggChunkedPrefillInterleaves(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	chunked, err := Run(disaggConfig(3, 64, 0), db)
	if err != nil {
		t.Fatal(err)
	}
	whole := disaggConfig(3, 64, 0)
	whole.Tenants[0].LLM.Disagg.ChunkTokens = 0
	wrep, err := Run(whole, db)
	if err != nil {
		t.Fatal(err)
	}
	cl, wl := chunked.Tenants[0].LLM, wrep.Tenants[0].LLM
	if cl.Prefills <= wl.Prefills {
		t.Errorf("chunked prefill issued %d invocations, whole-prompt %d — chunking never sliced a prompt",
			cl.Prefills, wl.Prefills)
	}
	if cl.Migrations != wl.Migrations || cl.MigrationMB != wl.MigrationMB {
		t.Errorf("migration traffic diverged across chunking: %d/%.1fMB vs %d/%.1fMB",
			cl.Migrations, cl.MigrationMB, wl.Migrations, wl.MigrationMB)
	}
	if chunked.Tenants[0].Arrivals != wrep.Tenants[0].Arrivals {
		t.Error("traces diverge across chunking — seed plumbing broken")
	}
}

// TestDisaggValidation rejects the configs the subsystem cannot mean.
func TestDisaggValidation(t *testing.T) {
	bad := disaggConfig(1, 64, 0)
	bad.Tenants[0].LLM.Static = true
	if _, err := Run(bad, nil); err == nil {
		t.Error("static batcher + disaggregation accepted")
	}
	bad = disaggConfig(1, 64, 0)
	bad.Tenants[0].ShareGroup = "pool"
	if _, err := Run(bad, nil); err == nil {
		t.Error("share group + disaggregation accepted")
	}
	bad = disaggConfig(1, 64, 0)
	bad.Tenants[0].LLM.Disagg.ChunkTokens = -1
	if _, err := Run(bad, nil); err == nil {
		t.Error("negative chunk accepted")
	}
	bad = disaggConfig(1, 0, 0)
	bad.LinkGBps = -1
	if _, err := Run(bad, nil); err == nil {
		t.Error("negative link bandwidth accepted")
	}
	// A decode replica must hold at least one maximal full request; a
	// prefill replica only a maximal prompt. 260 tokens (16 blocks)
	// clears the prompt floor (256) but not the full floor (256+24).
	bad = disaggConfig(1, 64, 260)
	if _, err := Run(bad, nil); err == nil {
		t.Error("decode pool below the one-maximal-request KV floor accepted")
	}
}
