package serve

import (
	"fmt"
	"strings"

	"neu10/internal/metrics"
	"neu10/internal/obs"
)

// TenantReport summarizes one tenant's serving outcome.
type TenantReport struct {
	Name  string  `json:"name"`
	Model string  `json:"model"`
	SLOMs float64 `json:"slo_ms"`

	// Priority class and temporal-sharing pool (empty = private replicas).
	Priority   string `json:"priority,omitempty"`
	ShareGroup string `json:"share_group,omitempty"`

	Arrivals  int `json:"arrivals"`
	Rejected  int `json:"rejected"`
	Completed int `json:"completed"`

	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`

	// SLOAttainment is sloOK/arrivals: the fraction of ALL offered
	// requests served within the SLO — rejections count as violations.
	SLOAttainment float64 `json:"slo_attainment"`
	// GoodputRPS is SLO-compliant completions per second of scenario time.
	GoodputRPS float64 `json:"goodput_rps"`

	Replicas      int `json:"replicas"`
	PeakReplicas  int `json:"peak_replicas"`
	EUsPerReplica int `json:"eus_per_replica"`
	ScaleUps      int `json:"scale_ups"`
	ScaleDowns    int `json:"scale_downs"`
	Resizes       int `json:"resizes"`
	ScaleFails    int `json:"scale_fails"`
	MaxQueue      int `json:"max_queue"`

	// Preemptive temporal sharing: how often this tenant's batches were
	// suspended (and later resumed), how many preemptions its own
	// batches triggered, the context-switch cycles charged against its
	// service (as milliseconds), and the worst preempt+bypass count any
	// single batch suffered (bounded by Config.MaxPreemptsPerBatch).
	Preemptions     int     `json:"preemptions,omitempty"`
	PreemptsIssued  int     `json:"preempts_issued,omitempty"`
	Resumes         int     `json:"resumes,omitempty"`
	StolenMs        float64 `json:"stolen_ms,omitempty"`
	MaxBatchPreempt int     `json:"max_batch_preempts,omitempty"`

	// Fault injection and recovery (fault.go; all zero on fault-free
	// runs). FaultAttainment/FaultGoodputRPS cover requests ARRIVING in
	// the fault window (first scheduled fault → end of run), directly
	// comparable to the whole-run SLOAttainment. TTRMs is first crash →
	// active count back at its pre-fault level; Recovered false means
	// the run ended first and TTRMs reports the censored bound.
	Crashes         int     `json:"crashes,omitempty"`
	CrashRequeued   int     `json:"crash_requeued,omitempty"`
	CrashLost       int     `json:"crash_lost,omitempty"`
	Replays         int     `json:"replays,omitempty"`
	RecomputeTokens int64   `json:"recompute_tokens,omitempty"`
	EmergencySpawns int     `json:"emergency_spawns,omitempty"`
	Evacuations     int     `json:"evacuations,omitempty"`
	EvacuationMB    float64 `json:"evacuation_mb,omitempty"`
	FaultAttainment float64 `json:"fault_attainment,omitempty"`
	FaultGoodputRPS float64 `json:"fault_goodput_rps,omitempty"`
	TTRMs           float64 `json:"ttr_ms,omitempty"`
	Recovered       bool    `json:"recovered,omitempty"`

	// LLM carries the autoregressive-serving section for LLM tenants
	// (nil otherwise).
	LLM *LLMTenantReport `json:"llm,omitempty"`

	// Attrib is the latency-attribution section (nil unless
	// Config.Obs.Attrib, so legacy JSON output is byte-identical):
	// cohort blame breakdowns and worst-request drilldowns from the
	// run's conservation-checked ledger (attrib.go).
	Attrib *TenantAttrib `json:"attrib,omitempty"`

	ReplicaTimeline *metrics.TimeSeries `json:"-"`
}

// LLMTenantReport is the per-phase outcome of one LLM tenant: time to
// first token and per-output-token latency distributions, generation
// throughput, and KV-cache pressure. TTFT is prefill-finish − arrival
// (queueing included); TPOT is (completion − TTFT)/(output−1), so a
// static batch's padded tail inflates it exactly as it should.
type LLMTenantReport struct {
	Batcher  string `json:"batcher"` // "continuous" or "static"
	Admitted int    `json:"admitted"`

	PromptTokensMean float64 `json:"prompt_tokens_mean"`
	OutputTokensMean float64 `json:"output_tokens_mean"`

	TTFTP50Ms float64 `json:"ttft_p50_ms"`
	TTFTP95Ms float64 `json:"ttft_p95_ms"`
	TTFTP99Ms float64 `json:"ttft_p99_ms"`
	TPOTP50Ms float64 `json:"tpot_p50_ms"`
	TPOTP95Ms float64 `json:"tpot_p95_ms"`
	TPOTP99Ms float64 `json:"tpot_p99_ms"`

	Prefills      int     `json:"prefills"`
	DecodeIters   int     `json:"decode_iters"`
	StaticBatches int     `json:"static_batches,omitempty"`
	TokensOut     int     `json:"tokens_out"`
	TokensPerSec  float64 `json:"tokens_per_sec"`

	// KV-cache accounting (serve.KVStats, kv.go): block granularity,
	// time-averaged and peak occupancy fractions across the tenant's
	// replicas, and admission stalls — plus, for tenants with an
	// explicit KVPolicy, the backend-comparison fields (peak concurrent
	// sequences, eviction and prefix-cache traffic).
	KVStats

	// Disaggregation (zero for colocated tenants): per-role fleet sizes,
	// chunked-prefill granularity, KV-migration traffic and the mean
	// prefill-to-decode handoff time (queue + transfer + link latency —
	// the slice of TTFT the interconnect owns), plus how often a
	// finished prompt found no admitting decode slot.
	PrefillReplicas int     `json:"prefill_replicas,omitempty"`
	PrefillPeak     int     `json:"prefill_peak,omitempty"`
	DecodeReplicas  int     `json:"decode_replicas,omitempty"`
	DecodePeak      int     `json:"decode_peak,omitempty"`
	ChunkTokens     int     `json:"chunk_tokens,omitempty"`
	Migrations      int     `json:"migrations,omitempty"`
	MigrationMB     float64 `json:"migration_mb,omitempty"`
	MigMeanMs       float64 `json:"mig_mean_ms,omitempty"`
	MigStalls       int     `json:"mig_stalls,omitempty"`
}

// PriorityReport aggregates the tenants of one priority class: the
// per-priority latency distribution, SLO attainment and the preemption
// traffic the class suffered. Only populated when the run configures
// priorities, share groups or preemption.
type PriorityReport struct {
	Priority  string `json:"priority"`
	Arrivals  int    `json:"arrivals"`
	Rejected  int    `json:"rejected"`
	Completed int    `json:"completed"`

	P50Ms float64 `json:"p50_ms"`
	P95Ms float64 `json:"p95_ms"`
	P99Ms float64 `json:"p99_ms"`

	SLOAttainment float64 `json:"slo_attainment"`
	GoodputRPS    float64 `json:"goodput_rps"`

	Preemptions int     `json:"preemptions"`
	Resumes     int     `json:"resumes"`
	StolenMs    float64 `json:"stolen_ms"`
}

// Report is the outcome of one serving run.
type Report struct {
	Scenario    string  `json:"scenario"`
	Seed        uint64  `json:"seed"`
	DurationSec float64 `json:"duration_sec"`
	Cores       int     `json:"cores"`
	Router      string  `json:"router"`
	Placement   string  `json:"placement"`
	Autoscale   bool    `json:"autoscale"`
	Preempt     bool    `json:"preempt,omitempty"`

	Tenants []TenantReport `json:"tenants"`

	// Priorities (highest class first) and the fleet-wide preemption
	// totals; empty/zero for priority-unaware runs.
	Priorities       []PriorityReport `json:"priorities,omitempty"`
	Preemptions      int              `json:"preemptions,omitempty"`
	Resumes          int              `json:"resumes,omitempty"`
	SwitchOverheadMs float64          `json:"switch_overhead_ms,omitempty"`

	// Interconnect accounting (zero when no tenant is disaggregated):
	// configured per-link bandwidth, mean busy fraction over the
	// instantiated links, total payload moved and the worst concurrency
	// any single link saw (what its max-min share divided by).
	LinkGBps      float64 `json:"link_gbps,omitempty"`
	LinkUtil      float64 `json:"link_util,omitempty"`
	LinkMovedMB   float64 `json:"link_moved_mb,omitempty"`
	LinkPeakFlows int     `json:"link_peak_flows,omitempty"`
	Links         int     `json:"links,omitempty"`
	LinkCanceled  int     `json:"link_canceled,omitempty"`

	// Fault schedule (zero/empty on fault-free runs): event count, crash
	// policy, when the fault window opens, and the recovery machinery
	// enabled for the run.
	FaultEvents    int     `json:"fault_events,omitempty"`
	FaultPolicy    string  `json:"fault_policy,omitempty"`
	FaultFromSec   float64 `json:"fault_from_sec,omitempty"`
	WarmSpares     int     `json:"warm_spares,omitempty"`
	EmergencySpawn bool    `json:"emergency_spawn,omitempty"`
	Evacuate       bool    `json:"evacuate,omitempty"`

	// FleetEUUtil is the fraction of all fleet EU-cycles spent serving.
	FleetEUUtil float64 `json:"fleet_eu_util"`
	// AllocatedEUFrac is the time-averaged fraction of fleet EUs bound to
	// some vNPU (allocated ≥ busy; the gap is provisioned-but-idle).
	AllocatedEUFrac float64 `json:"allocated_eu_frac"`
	// MeanStrandedEUs is time-averaged fragmentation waste
	// (cluster.StrandedEUs).
	MeanStrandedEUs float64 `json:"mean_stranded_eus"`
	MapAccepts      int     `json:"map_accepts"`
	MapRejects      int     `json:"map_rejects"`

	// Observability payloads (nil unless Config.Obs enabled them, so
	// legacy JSON output is byte-identical): the run's lifecycle trace
	// — exported to Perfetto via obs.WriteChrome, not marshaled inline
	// — and the sampled timelines (queue depth, KV occupancy, pool
	// sizes, link utilization, attainment; see docs/OBSERVABILITY.md).
	Trace     *obs.Tracer      `json:"-"`
	Timelines *obs.TimelineSet `json:"timelines,omitempty"`

	// Attribution payloads (nil unless Config.Obs.Attrib): the fleet
	// cycle ledger summary and the raw ledger itself — exported as CSV
	// via obs.WriteLedgerCSVAll, not marshaled inline.
	CycleLedger *CycleLedgerReport `json:"cycle_ledger,omitempty"`
	Ledger      *obs.Ledger        `json:"-"`
}

// Table renders the report as a plain-text table. The output is a pure
// function of the report contents, which is what the determinism tests
// byte-compare.
func (rep *Report) Table() string {
	var sb strings.Builder
	mode := "off"
	if rep.Autoscale {
		mode = "on"
	}
	fmt.Fprintf(&sb, "Online serving — scenario %q (seed %d): %d pNPUs, router %s, placement %s, autoscale %s, %.2fs\n",
		rep.Scenario, rep.Seed, rep.Cores, rep.Router, rep.Placement, mode, rep.DurationSec)

	header := []string{"tenant", "model", "SLO(ms)", "arrived", "rejected", "p50(ms)", "p99(ms)", "attain", "goodput(rps)", "repl(peak)", "EUs", "up/dn/rsz/fail"}
	rows := [][]string{}
	for _, t := range rep.Tenants {
		rows = append(rows, []string{
			t.Name, t.Model,
			fmt.Sprintf("%.2f", t.SLOMs),
			fmt.Sprint(t.Arrivals), fmt.Sprint(t.Rejected),
			fmt.Sprintf("%.2f", t.P50Ms), fmt.Sprintf("%.2f", t.P99Ms),
			fmt.Sprintf("%.1f%%", t.SLOAttainment*100),
			fmt.Sprintf("%.1f", t.GoodputRPS),
			fmt.Sprintf("%d(%d)", t.Replicas, t.PeakReplicas),
			fmt.Sprint(t.EUsPerReplica),
			fmt.Sprintf("%d/%d/%d/%d", t.ScaleUps, t.ScaleDowns, t.Resizes, t.ScaleFails),
		})
	}
	renderTable(&sb, header, rows)
	if llm := rep.llmTable(); llm != "" {
		sb.WriteString(llm)
	}
	if paged := rep.pagedTable(); paged != "" {
		sb.WriteString(paged)
	}
	if disagg := rep.disaggTable(); disagg != "" {
		sb.WriteString(disagg)
	}
	if chaos := rep.chaosTable(); chaos != "" {
		sb.WriteString(chaos)
	}
	if len(rep.Priorities) > 0 {
		sb.WriteString(rep.priorityTable())
	}
	fmt.Fprintf(&sb, "fleet: EU util %.1f%%, allocated EUs %.1f%%, stranded EUs %.2f, placements %d ok / %d failed\n",
		rep.FleetEUUtil*100, rep.AllocatedEUFrac*100, rep.MeanStrandedEUs, rep.MapAccepts, rep.MapRejects)
	if rep.Links > 0 {
		fmt.Fprintf(&sb, "interconnect: %d links at %.3f GB/s, %.1f MB moved, %.1f%% busy, peak %d flows/link\n",
			rep.Links, rep.LinkGBps, rep.LinkMovedMB, rep.LinkUtil*100, rep.LinkPeakFlows)
	}
	if rep.FaultEvents > 0 {
		recov := "none"
		if rep.WarmSpares > 0 || rep.EmergencySpawn || rep.Evacuate {
			parts := []string{}
			if rep.WarmSpares > 0 {
				parts = append(parts, fmt.Sprintf("%d warm spares", rep.WarmSpares))
			}
			if rep.EmergencySpawn {
				parts = append(parts, "emergency-spawn")
			}
			if rep.Evacuate {
				parts = append(parts, "evacuate")
			}
			recov = strings.Join(parts, "+")
		}
		fmt.Fprintf(&sb, "faults: %d events (policy %s) from %.2fs, recovery %s, %d transfers canceled\n",
			rep.FaultEvents, rep.FaultPolicy, rep.FaultFromSec, recov, rep.LinkCanceled)
	}
	if rep.Preempt || rep.Preemptions > 0 {
		fmt.Fprintf(&sb, "preemption: %d preempts, %d resumes, %.2f ms switch overhead\n",
			rep.Preemptions, rep.Resumes, rep.SwitchOverheadMs)
	}
	return sb.String()
}

// llmTable renders the autoregressive-serving section: one row per LLM
// tenant, empty when the run has none.
func (rep *Report) llmTable() string {
	var rows [][]string
	for _, t := range rep.Tenants {
		l := t.LLM
		if l == nil {
			continue
		}
		rows = append(rows, []string{
			t.Name, l.Batcher,
			fmt.Sprintf("%.2f", l.TTFTP50Ms), fmt.Sprintf("%.2f", l.TTFTP99Ms),
			fmt.Sprintf("%.2f", l.TPOTP50Ms), fmt.Sprintf("%.2f", l.TPOTP99Ms),
			fmt.Sprintf("%.1f", l.TokensPerSec),
			fmt.Sprint(l.Prefills), fmt.Sprint(l.DecodeIters),
			fmt.Sprintf("%.1f%%(%.1f%%)", l.KVOccMean*100, l.KVOccPeak*100),
			fmt.Sprint(l.KVStalls),
		})
	}
	if len(rows) == 0 {
		return ""
	}
	var sb strings.Builder
	header := []string{"llm tenant", "batcher", "ttft-p50(ms)", "ttft-p99(ms)", "tpot-p50(ms)", "tpot-p99(ms)", "tok/s", "prefills", "decode-iters", "kv-occ(peak)", "kv-stalls"}
	renderTable(&sb, header, rows)
	return sb.String()
}

// pagedTable renders the KV-backend comparison section: one row per
// LLM tenant with an EXPLICIT KVPolicy (reserve rows included, so a
// reserve-vs-paged scenario reads as adjacent rows), empty otherwise —
// legacy reports render byte-identically to before.
func (rep *Report) pagedTable() string {
	var rows [][]string
	for _, t := range rep.Tenants {
		l := t.LLM
		if l == nil || l.KVPolicy == "" {
			continue
		}
		rows = append(rows, []string{
			t.Name, l.KVPolicy,
			fmt.Sprint(l.PeakSeqs),
			fmt.Sprintf("%d/%d", l.EvictRecompute, l.EvictSwap),
			fmt.Sprint(l.RecomputeTokens),
			fmt.Sprintf("%.1f/%.1f", l.SwapOutMB, l.SwapInMB),
			fmt.Sprintf("%d/%d", l.PrefixHits, l.PrefixLookups),
			fmt.Sprint(l.PrefixHitTokens),
			fmt.Sprint(l.CacheEvictions),
		})
	}
	if len(rows) == 0 {
		return ""
	}
	var sb strings.Builder
	header := []string{"kv tenant", "policy", "peak-seqs", "evict(rc/sw)", "recompute-tok", "swap-MB(out/in)", "prefix-hits", "hit-tok", "cache-evict"}
	renderTable(&sb, header, rows)
	return sb.String()
}

// disaggTable renders the disaggregation section: one row per
// disaggregated tenant — per-role fleet sizes, migration traffic and
// handoff pricing. Empty when the run has none.
func (rep *Report) disaggTable() string {
	var rows [][]string
	for _, t := range rep.Tenants {
		l := t.LLM
		if l == nil || (l.PrefillReplicas == 0 && l.DecodeReplicas == 0) {
			continue
		}
		chunk := "whole-prompt"
		if l.ChunkTokens > 0 {
			chunk = fmt.Sprintf("%d tok", l.ChunkTokens)
		}
		rows = append(rows, []string{
			t.Name,
			fmt.Sprintf("%d(%d)", l.PrefillReplicas, l.PrefillPeak),
			fmt.Sprintf("%d(%d)", l.DecodeReplicas, l.DecodePeak),
			chunk,
			fmt.Sprint(l.Migrations),
			fmt.Sprintf("%.1f", l.MigrationMB),
			fmt.Sprintf("%.2f", l.MigMeanMs),
			fmt.Sprint(l.MigStalls),
		})
	}
	if len(rows) == 0 {
		return ""
	}
	var sb strings.Builder
	header := []string{"disagg tenant", "prefill(peak)", "decode(peak)", "chunk", "migrations", "mig-MB", "mig-mean(ms)", "mig-stalls"}
	renderTable(&sb, header, rows)
	return sb.String()
}

// chaosTable renders the fault/recovery section: one row per tenant,
// only when the run scheduled faults (FaultEvents > 0), so fault-free
// reports render byte-identically to before.
func (rep *Report) chaosTable() string {
	if rep.FaultEvents == 0 {
		return ""
	}
	var sb strings.Builder
	header := []string{"chaos tenant", "crashes", "requeued", "lost", "replays", "recompute-tok", "evacs", "spawns", "fault-attain", "ttr(ms)"}
	rows := [][]string{}
	for _, t := range rep.Tenants {
		ttr := "-"
		if t.Crashes > 0 {
			if t.Recovered {
				ttr = fmt.Sprintf("%.2f", t.TTRMs)
			} else {
				ttr = fmt.Sprintf(">%.2f", t.TTRMs)
			}
		}
		rows = append(rows, []string{
			t.Name,
			fmt.Sprint(t.Crashes), fmt.Sprint(t.CrashRequeued), fmt.Sprint(t.CrashLost),
			fmt.Sprint(t.Replays), fmt.Sprint(t.RecomputeTokens),
			fmt.Sprint(t.Evacuations), fmt.Sprint(t.EmergencySpawns),
			fmt.Sprintf("%.1f%%", t.FaultAttainment*100),
			ttr,
		})
	}
	renderTable(&sb, header, rows)
	return sb.String()
}

// priorityTable renders the per-priority-class section.
func (rep *Report) priorityTable() string {
	var sb strings.Builder
	header := []string{"priority", "arrived", "rejected", "p50(ms)", "p99(ms)", "attain", "goodput(rps)", "preempts", "resumes", "stolen(ms)"}
	rows := [][]string{}
	for _, p := range rep.Priorities {
		rows = append(rows, []string{
			p.Priority,
			fmt.Sprint(p.Arrivals), fmt.Sprint(p.Rejected),
			fmt.Sprintf("%.2f", p.P50Ms), fmt.Sprintf("%.2f", p.P99Ms),
			fmt.Sprintf("%.1f%%", p.SLOAttainment*100),
			fmt.Sprintf("%.1f", p.GoodputRPS),
			fmt.Sprint(p.Preemptions), fmt.Sprint(p.Resumes),
			fmt.Sprintf("%.2f", p.StolenMs),
		})
	}
	renderTable(&sb, header, rows)
	return sb.String()
}

// renderTable writes an aligned plain-text table: header, dashed
// separator, rows, with column widths fitted to the widest cell.
func renderTable(sb *strings.Builder, header []string, rows [][]string) {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, r := range rows {
		line(r)
	}
}

// report assembles the final Report once the event queue has drained.
func (f *fleet) report() *Report {
	end := float64(f.eng.Now())
	if end < f.durCycles {
		end = f.durCycles
	}
	f.snapshot(end)
	freq := f.cfg.Core.FrequencyHz
	ms := func(cycles float64) float64 { return cycles / freq * 1e3 }

	rep := &Report{
		Scenario:    f.cfg.Scenario,
		Seed:        f.cfg.Seed,
		DurationSec: f.cfg.DurationSec,
		Cores:       f.cfg.Cores,
		Router:      f.cfg.Router.String(),
		Placement:   f.cfg.Placement.String(),
		Autoscale:   f.cfg.Autoscale,
		Preempt:     f.cfg.Preempt,
	}
	type classAgg struct {
		present            bool
		arrivals, rejected int
		completed, sloOK   int
		preempted, resumes int
		stolen             float64
	}
	var agg [numPriorities]classAgg
	busy := f.busySum
	// Fold every live replica's KV accountant into its owner BEFORE
	// assembling any tenant report: an LLM tenant aggregates occupancy
	// across its whole serving group (peer-owned shared slots hold its
	// sequences too), so all owners must be up to date first.
	for _, t := range f.tenants {
		for _, r := range t.replicas {
			if r.kv != nil {
				t.foldKV(r.kv, end)
			}
		}
	}
	for _, t := range f.tenants {
		for _, r := range t.replicas {
			busy += r.busyEUCycles
		}
		sloOK := t.lat.CountBelow(t.sloCycles)
		tr := TenantReport{
			Name:            t.cfg.Name,
			Model:           t.cfg.Model,
			SLOMs:           t.cfg.SLOMs,
			Arrivals:        t.arrivals,
			Rejected:        t.rejected,
			Completed:       t.completed,
			P50Ms:           ms(t.lat.P50()),
			P95Ms:           ms(t.lat.P95()),
			P99Ms:           ms(t.lat.P99()),
			MeanMs:          ms(t.lat.Mean()),
			GoodputRPS:      float64(sloOK) / f.cfg.DurationSec,
			Replicas:        t.activeCount(),
			PeakReplicas:    t.peakReplicas,
			EUsPerReplica:   t.curEUs,
			ScaleUps:        t.scaleUps,
			ScaleDowns:      t.scaleDowns,
			Resizes:         t.resizes,
			ScaleFails:      t.scaleFails,
			MaxQueue:        t.maxQueue,
			Preemptions:     t.preempted,
			PreemptsIssued:  t.preemptsIssued,
			Resumes:         t.resumes,
			StolenMs:        ms(t.stolenCycles),
			MaxBatchPreempt: t.maxPreempts,
			ReplicaTimeline: t.replicaTL,
		}
		if t.llm != nil {
			l := t.llm
			batcher := "continuous"
			if t.cfg.LLM.Static {
				batcher = "static"
			}
			lr := &LLMTenantReport{
				Batcher:       batcher,
				Admitted:      l.admitted,
				TTFTP50Ms:     ms(l.ttft.P50()),
				TTFTP95Ms:     ms(l.ttft.P95()),
				TTFTP99Ms:     ms(l.ttft.P99()),
				TPOTP50Ms:     ms(l.tpot.P50()),
				TPOTP95Ms:     ms(l.tpot.P95()),
				TPOTP99Ms:     ms(l.tpot.P99()),
				Prefills:      l.prefills,
				DecodeIters:   l.decodeIters,
				StaticBatches: l.staticBatches,
				TokensOut:     l.tokensOut,
				TokensPerSec:  float64(l.tokensOut) / f.cfg.DurationSec,
				KVStats: KVStats{
					KVBlockTokens: t.cfg.LLM.BlockTokens,
					KVStalls:      l.kvStalls,
				},
			}
			if l.admitted > 0 {
				lr.PromptTokensMean = float64(l.promptTokens) / float64(l.admitted)
				lr.OutputTokensMean = float64(l.outputTokens) / float64(l.admitted)
			}
			if d := t.disagg(); d != nil {
				lr.Batcher = "disaggregated"
				lr.PrefillReplicas = t.activeRole(RolePrefill)
				lr.PrefillPeak = t.prefPeak
				lr.DecodeReplicas = t.activeRole(RoleDecode)
				lr.DecodePeak = t.decPeak
				lr.ChunkTokens = d.ChunkTokens
				lr.Migrations = l.migrations
				lr.MigrationMB = float64(l.migBytes) / (1 << 20)
				lr.MigStalls = l.migStalls
				// Mean over LANDED migrations: waits accrue at landing, so
				// dividing by starts would bias the mean low if a report
				// were ever taken with transfers still on the wire.
				if l.migLanded > 0 {
					lr.MigMeanMs = ms(l.migWaitCycles / float64(l.migLanded))
				}
			}
			// KV occupancy spans the tenant's whole serving group: on
			// shared slots its sequences allocate from peer-owned
			// partitions too, and fold-at-retire credits the OWNER. Two
			// LLM tenants in one group therefore both report their shared
			// pool's occupancy.
			var kvUsed, kvTotal float64
			for _, p := range t.peers {
				kvUsed += p.kvUsedArea
				kvTotal += p.kvBlockArea
				if p.kvPeakFrac > lr.KVOccPeak {
					lr.KVOccPeak = p.kvPeakFrac
				}
			}
			if kvTotal > 0 {
				lr.KVOccMean = kvUsed / kvTotal
			}
			// Policy-comparison fields, only for tenants that chose a KV
			// backend explicitly (kv.go: legacy reports marshal
			// byte-identically). The counters were folded into kvAgg once
			// per replica lifetime by foldKV.
			if pol := t.cfg.LLM.KVPolicy; pol != "" {
				lr.KVPolicy = pol
				lr.PeakSeqs = t.kvAgg.PeakSeqs
				lr.Evictions = t.kvAgg.Evictions
				lr.EvictRecompute = t.kvAgg.EvictRecompute
				lr.EvictSwap = t.kvAgg.EvictSwap
				lr.RecomputeTokens = t.kvAgg.RecomputeTokens
				lr.SwapOutMB = t.kvAgg.SwapOutMB
				lr.SwapInMB = t.kvAgg.SwapInMB
				lr.PrefixLookups = t.kvAgg.PrefixLookups
				lr.PrefixHits = t.kvAgg.PrefixHits
				lr.PrefixHitTokens = t.kvAgg.PrefixHitTokens
				lr.CacheEvictions = t.kvAgg.CacheEvictions
				if lr.PrefixLookups > 0 {
					lr.PrefixHitRate = float64(lr.PrefixHits) / float64(lr.PrefixLookups)
				}
			}
			tr.LLM = lr
		}
		if f.prioEnabled {
			tr.Priority = t.cfg.Priority.String()
			tr.ShareGroup = t.cfg.ShareGroup
			a := &agg[t.cfg.Priority]
			a.present = true
			a.arrivals += t.arrivals
			a.rejected += t.rejected
			a.completed += t.completed
			a.sloOK += sloOK
			a.preempted += t.preempted
			a.resumes += t.resumes
			a.stolen += t.stolenCycles
		}
		if t.arrivals > 0 {
			// Rejected requests count against attainment: a shed request
			// is a broken promise too.
			tr.SLOAttainment = float64(sloOK) / float64(t.arrivals)
		}
		if f.faulted {
			tr.Crashes = t.crashes
			tr.CrashRequeued = t.crashRequeued
			tr.CrashLost = t.crashLost
			tr.Replays = t.replays
			tr.RecomputeTokens = t.recomputeTokens
			tr.EmergencySpawns = t.emergencySpawns
			if t.llm != nil {
				tr.Evacuations = t.llm.evacLanded
				tr.EvacuationMB = float64(t.llm.evacBytes) / (1 << 20)
			}
			// Fault-window attainment/goodput: requests arriving from the
			// first scheduled fault onward, same ≤-SLO rule as CountBelow.
			if t.fwArrivals > 0 {
				tr.FaultAttainment = float64(t.fwSloOK) / float64(t.fwArrivals)
			}
			if winSec := (end - f.fwStart) / freq; winSec > 0 {
				tr.FaultGoodputRPS = float64(t.fwSloOK) / winSec
			}
			if t.crashAt > 0 {
				// Time-to-recover: first crash → active count back at its
				// pre-fault level. An unrecovered tenant reports the censored
				// bound (end of run) with Recovered false.
				tr.Recovered = t.recoveredAt > 0
				rec := t.recoveredAt
				if rec == 0 {
					rec = end
				}
				tr.TTRMs = ms(rec - t.crashAt)
			}
		}
		rep.Tenants = append(rep.Tenants, tr)
	}
	for p := numPriorities - 1; p >= 0; p-- { // highest class first
		a := agg[p]
		if !a.present {
			continue
		}
		lat := &f.prioLat[p]
		pr := PriorityReport{
			Priority:    Priority(p).String(),
			Arrivals:    a.arrivals,
			Rejected:    a.rejected,
			Completed:   a.completed,
			P50Ms:       ms(lat.P50()),
			P95Ms:       ms(lat.P95()),
			P99Ms:       ms(lat.P99()),
			GoodputRPS:  float64(a.sloOK) / f.cfg.DurationSec,
			Preemptions: a.preempted,
			Resumes:     a.resumes,
			StolenMs:    ms(a.stolen),
		}
		if a.arrivals > 0 {
			pr.SLOAttainment = float64(a.sloOK) / float64(a.arrivals)
		}
		rep.Priorities = append(rep.Priorities, pr)
	}
	var overhead float64
	rep.Preemptions, rep.Resumes, overhead = f.switches.Snapshot()
	rep.SwitchOverheadMs = ms(overhead)
	if f.fabric != nil {
		st := f.fabric.Stats(end)
		rep.LinkGBps = f.cfg.LinkGBps
		rep.Links = f.fabric.Links()
		rep.LinkMovedMB = float64(st.BytesMoved) / (1 << 20)
		rep.LinkPeakFlows = st.PeakActive
		rep.LinkCanceled = st.Canceled
		if n := f.fabric.Links(); n > 0 && end > 0 {
			rep.LinkUtil = st.BusyCycles / (end * float64(n))
		}
	}
	if f.faulted {
		rep.FaultEvents = len(f.cfg.Faults.Events)
		rep.FaultPolicy = f.cfg.Faults.Policy.String()
		rep.FaultFromSec = f.fwStart / freq
		if rc := f.cfg.Recover; rc != nil {
			rep.WarmSpares = rc.WarmSpares
			rep.EmergencySpawn = rc.EmergencySpawn
			rep.Evacuate = rc.Evacuate
		}
	}
	totalEUs := float64(f.cfg.Cores * (f.cfg.Core.MEs + f.cfg.Core.VEs))
	if end > 0 {
		rep.FleetEUUtil = busy / (end * totalEUs)
		rep.AllocatedEUFrac = f.allocArea / (end * totalEUs)
		rep.MeanStrandedEUs = f.strandArea / end
	}
	rep.MapAccepts = f.mapAccepts
	rep.MapRejects = f.mapRejects
	f.attribFinish(rep, end)
	f.obsFinish(rep, end)
	return rep
}
