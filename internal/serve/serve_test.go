package serve

import (
	"strings"
	"testing"

	"neu10/internal/arch"
	"neu10/internal/core"
)

// fastConfig is a cheap-to-simulate overloadable scenario: MNIST and
// DLRM invocations cost microseconds, so tens of thousands of requests
// simulate in well under a second of wall time.
func fastConfig(seed uint64) Config {
	return Config{
		Scenario:      "test",
		Core:          arch.TPUv4Like(),
		Cores:         3,
		Router:        PowerOfTwo,
		DurationSec:   0.02,
		Seed:          seed,
		Autoscale:     true,
		ScaleEverySec: 0.004,
		Tenants: []TenantConfig{
			{Name: "a", Model: "MNIST", Load: 1.4, EUs: 2, MaxBatch: 4, QueueCap: 8,
				Arrival: Flash, BurstFactor: 3, InitialReplicas: 1, MaxReplicas: 3},
			{Name: "b", Model: "DLRM", Load: 0.9, EUs: 2, MaxBatch: 8, QueueCap: 16,
				Arrival: Diurnal, DiurnalDepth: 0.6, InitialReplicas: 1, MaxReplicas: 2},
		},
	}
}

// TestSameSeedByteIdenticalReport is the serving determinism guard: the
// same seed must reproduce the whole report byte-for-byte, whether the
// cost database is shared, private, or pre-warmed by other runs.
func TestSameSeedByteIdenticalReport(t *testing.T) {
	shared := NewCostDB(arch.TPUv4Like())
	r1, err := Run(fastConfig(7), shared)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(fastConfig(7), shared) // warm shared DB
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Run(fastConfig(7), nil) // private DB
	if err != nil {
		t.Fatal(err)
	}
	if r1.Table() != r2.Table() {
		t.Errorf("same seed, shared cost DB: reports differ\n%s\nvs\n%s", r1.Table(), r2.Table())
	}
	if r1.Table() != r3.Table() {
		t.Errorf("same seed, private cost DB: reports differ\n%s\nvs\n%s", r1.Table(), r3.Table())
	}
	r4, err := Run(fastConfig(8), shared)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Table() == r4.Table() {
		t.Error("different seeds produced identical reports — seed is not wired through")
	}
}

// TestAdmissionNeverExceedsQueueBound is the admission-control property
// test: across routers, seeds and heavy overload, no replica queue may
// ever have held more than QueueCap requests, and every offered request
// must be accounted for as either rejected or completed (the simulation
// drains all admitted work before reporting).
func TestAdmissionNeverExceedsQueueBound(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	for _, router := range []RouterPolicy{LeastLoaded, JSQ, PowerOfTwo} {
		for seed := uint64(1); seed <= 4; seed++ {
			cfg := fastConfig(seed)
			cfg.Router = router
			// Overload hard so admission control actually has to act.
			cfg.Tenants[0].Load = 2.5
			cfg.Tenants[1].Load = 1.8
			rep, err := Run(cfg, db)
			if err != nil {
				t.Fatalf("%s seed %d: %v", router, seed, err)
			}
			for _, tr := range rep.Tenants {
				cap := cfg.Tenants[0].QueueCap
				if tr.Name == "b" {
					cap = cfg.Tenants[1].QueueCap
				}
				if tr.MaxQueue > cap {
					t.Errorf("%s seed %d tenant %s: queue reached %d, cap %d",
						router, seed, tr.Name, tr.MaxQueue, cap)
				}
				if tr.Arrivals != tr.Rejected+tr.Completed {
					t.Errorf("%s seed %d tenant %s: %d arrivals ≠ %d rejected + %d completed",
						router, seed, tr.Name, tr.Arrivals, tr.Rejected, tr.Completed)
				}
				if tr.Rejected == 0 {
					t.Errorf("%s seed %d tenant %s: overload produced no rejections — admission control untested",
						router, seed, tr.Name)
				}
				if tr.SLOAttainment < 0 || tr.SLOAttainment > 1 {
					t.Errorf("%s seed %d tenant %s: attainment %v out of [0,1]",
						router, seed, tr.Name, tr.SLOAttainment)
				}
			}
		}
	}
}

// TestAutoscalerRecoversSLO checks the control loop's direction: under
// the same flash-crowd trace, the autoscaled fleet must beat the fixed
// fleet on SLO attainment for the bursty tenant.
func TestAutoscalerRecoversSLO(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	cfg := fastConfig(3)
	on, err := Run(cfg, db)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Autoscale = false
	off, err := Run(cfg, db)
	if err != nil {
		t.Fatal(err)
	}
	if on.Tenants[0].SLOAttainment <= off.Tenants[0].SLOAttainment {
		t.Errorf("autoscale attainment %.3f did not beat fixed fleet %.3f",
			on.Tenants[0].SLOAttainment, off.Tenants[0].SLOAttainment)
	}
	if on.Tenants[0].ScaleUps+on.Tenants[0].Resizes == 0 {
		t.Error("autoscaled run never scaled — scenario does not exercise the control loop")
	}
}

// TestDrainingNeverDropsAdmittedWork: scale-downs mark replicas draining
// instead of killing them; every admitted request must still complete.
func TestDrainingNeverDropsAdmittedWork(t *testing.T) {
	cfg := fastConfig(5)
	cfg.Tenants[0].Load = 0.3 // calm traffic → the autoscaler scales down
	cfg.Tenants[1].Load = 0.3
	rep, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	downs := 0
	for _, tr := range rep.Tenants {
		downs += tr.ScaleDowns
		if tr.Arrivals != tr.Rejected+tr.Completed {
			t.Errorf("tenant %s: admitted work lost (%d arrivals, %d rejected, %d completed)",
				tr.Name, tr.Arrivals, tr.Rejected, tr.Completed)
		}
	}
	_ = downs // scale-downs are load-dependent; the accounting must hold regardless
}

// TestReportShape sanity-checks table rendering and fleet accounting.
func TestReportShape(t *testing.T) {
	rep, err := Run(fastConfig(1), nil)
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.Table()
	for _, want := range []string{"scenario \"test\"", "p99(ms)", "attain", "fleet: EU util"} {
		if !strings.Contains(tbl, want) {
			t.Errorf("table missing %q:\n%s", want, tbl)
		}
	}
	if rep.FleetEUUtil < 0 || rep.FleetEUUtil > 1 {
		t.Errorf("fleet EU util %v out of [0,1]", rep.FleetEUUtil)
	}
	if rep.AllocatedEUFrac < rep.FleetEUUtil-1e-9 {
		t.Errorf("allocated EU fraction %v below busy fraction %v — accounting broken",
			rep.AllocatedEUFrac, rep.FleetEUUtil)
	}
	if rep.MapAccepts == 0 {
		t.Error("no placements recorded")
	}
}

// TestCostDBPureFunction: two databases must measure identical costs,
// and padded batches must share entries.
func TestCostDBPureFunction(t *testing.T) {
	a, b := NewCostDB(arch.TPUv4Like()), NewCostDB(arch.TPUv4Like())
	ca, err := a.ServiceCycles("MNIST", 5, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	cb, err := b.ServiceCycles("MNIST", 8, 2, 2) // same pad bucket as 5
	if err != nil {
		t.Fatal(err)
	}
	if ca != cb {
		t.Errorf("cost not a pure function of the padded key: %v vs %v", ca, cb)
	}
	if _, err := a.ServiceCycles("no-such-model", 1, 1, 1); err == nil {
		t.Error("unknown model not rejected")
	}
}

// TestPlacementPolicyWiring: the serving fleet must hand the configured
// placement policy through to the §III-C mapper (distinct policies are
// allowed to produce identical stats on small fleets, so this only
// checks the plumbing accepts every policy).
func TestPlacementPolicyWiring(t *testing.T) {
	for _, pol := range []core.PlacementPolicy{core.GreedyBalance, core.FirstFit, core.WorstFit} {
		cfg := fastConfig(2)
		cfg.Placement = pol
		rep, err := Run(cfg, nil)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if rep.Placement != pol.String() {
			t.Errorf("report says placement %s, want %s", rep.Placement, pol)
		}
	}
}

// TestArrivalEnvelopes pins the deterministic rate envelopes the thinned
// Poisson streams are drawn against.
func TestArrivalEnvelopes(t *testing.T) {
	ts := &tenantState{cfg: TenantConfig{
		Arrival: Flash, BurstFactor: 4, BurstStart: 0.25, BurstEnd: 0.75,
	}}
	if got := ts.rateMult(0.1e6, 1e6); got != 1 {
		t.Errorf("flash outside window: mult %v, want 1", got)
	}
	if got := ts.rateMult(0.5e6, 1e6); got != 4 {
		t.Errorf("flash inside window: mult %v, want 4", got)
	}
	ts = &tenantState{cfg: TenantConfig{
		Arrival: Diurnal, DiurnalDepth: 0.5, DiurnalPeriod: 1,
	}}
	lo, hi := 2.0, 0.0
	for i := 0; i <= 100; i++ {
		m := ts.rateMult(float64(i)*1e4, 1e6)
		if m < lo {
			lo = m
		}
		if m > hi {
			hi = m
		}
	}
	if lo < 0.49 || hi > 1.51 {
		t.Errorf("diurnal envelope [%v, %v] escapes 1±depth", lo, hi)
	}
}
