package serve

import (
	"fmt"

	"neu10/internal/model"
	"neu10/internal/obs"
	"neu10/internal/sim"
)

// Crash recovery: the machinery that absorbs the faults fault.go
// injects. crashReplicas orchestrates one crash event end to end;
// the phases below it (teardown, sequence resolution, re-queueing,
// decode-pool evacuation) keep every conservation ledger exact.

// crashReplicas executes one crash event over its full victim set. The
// phases are strictly ordered so a pod outage can never re-route work
// onto a sibling dying in the same event:
//
//  1. bookkeeping — time-to-recover anchors per affected tenant, then
//     every victim is tombstoned (retired+draining) so routing, decode
//     picking and stale events all skip it;
//  2. migration triage — every in-flight KV transfer touching a dead
//     chip aborts with conservation intact, parked migrations whose
//     source died resolve per policy;
//  3. teardown — victims are torn out of the fleet, harvesting their
//     queued requests and running sequences;
//  4. recovery spawns — emergency replacements (RecoveryConfig) come up
//     BEFORE the harvest is re-queued, so recovered work can land on
//     them;
//  5. re-queue — harvested requests re-enter through the ordinary
//     router and admission control (full queues shed: a crash under
//     overload loses work, deterministically);
//  6. rebalance — decode-pool evacuation, re-routing of orphaned
//     migrations, and the parked-migration drain.
func (f *fleet) crashReplicas(victims []*replica, now sim.Time) {
	// Phase 1: anchors, then tombstones. preFaultActive must be read
	// before any victim is marked draining.
	var affected []*tenantState
	seen := map[*tenantState]bool{}
	for _, t := range f.tenants { // tenant-index order: deterministic
		for _, r := range victims {
			if r.ten == t && !seen[t] {
				seen[t] = true
				affected = append(affected, t)
			}
		}
	}
	for _, t := range affected {
		if t.crashAt == 0 {
			t.crashAt = float64(now)
			t.preFaultActive = t.activeCount()
		}
	}
	type respawn struct {
		t    *tenantState
		role Role
		eus  int
	}
	var respawns []respawn
	for _, r := range victims {
		if r.retired {
			continue // listed twice (overlapping chip sets); already dead
		}
		r.retired = true
		r.draining = true
		respawns = append(respawns, respawn{r.ten, r.role, r.eus})
	}

	// Phase 2: abort migrations touching a dead chip. The flight
	// registry is per owning tenant; iterate owners in tenant-index
	// order and flights in start order.
	var out []harvested
	type pokeSrc struct{ r *replica }
	var pokes []pokeSrc
	type remig struct {
		src *replica
		seq *llmSeq
	}
	var remigs []remig
	for _, t := range f.tenants {
		if t.llm == nil {
			continue
		}
		kept := t.llm.migInflight[:0]
		for _, fl := range t.llm.migInflight {
			srcDead, dstDead := fl.src.retired, fl.dst.retired
			if !srcDead && !dstDead {
				kept = append(kept, fl)
				continue
			}
			fl.xfr.Cancel()
			if fl.evac {
				t.llm.evacAborted++
			} else {
				t.llm.migAborted++
			}
			if !dstDead {
				// The reservation charged to the target at transfer start
				// rolls back exactly — the landing that would have consumed
				// it can never come.
				fl.dst.kv.free(fl.dblocks, float64(now))
				fl.dst.inbound--
			}
			switch {
			case srcDead:
				// The payload's source pages died mid-copy: the sequence's
				// KV is gone wherever the transfer was headed.
				if f.obs != nil {
					ph := "migrate"
					if fl.evac {
						ph = "evac"
					}
					f.obs.trace.End(ph, "req", t.cfg.Name, float64(now), fl.seq.req.id)
				}
				fl.src.queueFor(t).removeRunning(fl.seq)
				f.crashSeqOutcome(t, fl.seq, &out, now)
			case fl.evac:
				// Target died under an evacuation: the sequence never left
				// the source — unfreeze it and let the source keep decoding.
				if f.obs != nil {
					f.obs.trace.End("evac", "req", t.cfg.Name, float64(now), fl.seq.req.id)
				}
				fl.seq.migrating = false
				f.led.ReqSeg(t.cfg.Name, fl.seq.req.id, obs.SegDecodeGap, float64(now))
				pokes = append(pokes, pokeSrc{fl.src})
			default:
				// Target died under a prefill→decode handoff: the prompt KV
				// is still whole on the source; re-route after teardown.
				remigs = append(remigs, remig{fl.src, fl.seq})
			}
		}
		for i := len(kept); i < len(t.llm.migInflight); i++ {
			t.llm.migInflight[i] = nil
		}
		t.llm.migInflight = kept
		// Parked migrations whose source died lost their prompt KV with
		// the chip; resolve them per policy (FIFO order preserved). The
		// sequence also leaves the victim's running set here — it is
		// resolved NOW, and the teardown below must not harvest it again.
		if len(t.llm.migQ) > 0 {
			keptQ := t.llm.migQ[:0]
			for _, m := range t.llm.migQ {
				if m.from.retired {
					if f.obs != nil {
						f.obs.trace.End("migrate", "req", t.cfg.Name, float64(now), m.seq.req.id)
					}
					m.from.queueFor(t).removeRunning(m.seq)
					f.crashSeqOutcome(t, m.seq, &out, now)
					continue
				}
				keptQ = append(keptQ, m)
			}
			for i := len(keptQ); i < len(t.llm.migQ); i++ {
				t.llm.migQ[i] = migPending{}
			}
			t.llm.migQ = keptQ
		}
	}

	// Phase 3: teardown.
	for _, r := range victims {
		f.destroyReplica(r, now, &out)
	}

	// Phase 4: emergency spawns — replacement capacity comes up before
	// the harvest re-queues, so recovered work can route onto it.
	if rec := f.cfg.Recover; rec != nil && rec.EmergencySpawn {
		for _, rs := range respawns {
			if err := f.spawnReplica(rs.t, rs.eus, rs.role); err != nil {
				rs.t.scaleFails++
			} else {
				rs.t.emergencySpawns++
				if f.obs != nil {
					f.obs.trace.Instant("emergency-spawn", "fault", rs.t.cfg.Name, obsTrackControl, float64(now), -1,
						"eus", int64(rs.eus), "role", rs.role.String())
				}
			}
		}
	}

	// Phase 5: re-queue the harvest in recovery order (victims oldest
	// first, each victim's queues in tenant-index order, requests FIFO).
	for _, h := range out {
		f.requeue(h, now)
	}

	// Phase 6: rebalance and drain.
	if rec := f.cfg.Recover; rec != nil && rec.Evacuate {
		for _, t := range affected {
			if t.disagg() != nil {
				f.rebalanceDecode(t, now)
			}
		}
	}
	for _, rm := range remigs {
		if !rm.src.retired {
			f.startMigration(rm.src, rm.seq, now)
		}
	}
	for _, t := range f.tenants {
		if t.disagg() != nil {
			f.drainMigQ(t, now)
		}
	}
	for _, p := range pokes {
		if p.r.cur == nil && !p.r.retired {
			f.dispatch(p.r, now)
		}
	}
}

// destroyReplica tears one tombstoned victim out of the fleet: every
// pending event it owns is canceled, batches in flight are un-issued
// (the work-conservation ledger only ever counts delivered service),
// queued requests and running sequences are harvested for re-queueing,
// and the slot's accounting folds into its owner exactly as a graceful
// retire would — only the KV contents are lost, never the books.
func (f *fleet) destroyReplica(r *replica, now sim.Time, out *[]harvested) {
	t := r.ten
	t.crashes++
	f.led.RepCrash(r.uid, float64(now))
	if f.obs != nil {
		f.obs.trace.Instant("crash", "fault", t.cfg.Name, obsTrackControl, float64(now), -1,
			"replica", int64(r.id), "role", r.role.String())
	}
	if r.timerSet {
		f.eng.Cancel(r.timer)
		r.timerSet = false
	}
	if r.preemptSet {
		f.eng.Cancel(r.preemptH)
		r.preemptSet = false
	}
	harvestBatch := func(b *batch) {
		// Un-issue the undelivered remainder: issued−served stays exact
		// (served was settled at the last checkpoint; the partial segment
		// since then was never settled and is now never delivered).
		b.ten.issuedServiceCycles -= b.remaining
		if b.kind == kindInvoke {
			for _, req := range b.reqs {
				if f.obs != nil {
					f.obs.trace.End("service", "req", b.ten.cfg.Name, float64(now), req.id)
				}
				*out = append(*out, harvested{b.ten, req})
			}
		}
		// LLM batches advance sequences that live in the running sets
		// harvested below — nothing request-shaped to recover here.
		f.putBatch(b)
	}
	if b := r.cur; b != nil {
		f.eng.Cancel(b.doneH)
		// The chip was genuinely busy until the instant it died.
		r.busyEUCycles += float64(now-b.started) * float64(r.nm+r.nv)
		r.cur = nil
		harvestBatch(b)
	}
	for _, b := range r.susp {
		harvestBatch(b)
	}
	r.susp = r.susp[:0]
	for i := range r.qs {
		q := &r.qs[i]
		qt := q.ten
		for _, req := range q.reqs {
			if f.obs != nil {
				f.obs.trace.End("queue", "req", qt.cfg.Name, float64(now), req.id)
			}
			*out = append(*out, harvested{qt, req})
		}
		q.reqs = q.reqs[:0]
		for _, s := range q.running {
			f.crashSeqOutcome(qt, s, out, now)
		}
		for j := range q.running {
			q.running[j] = nil
		}
		q.running = q.running[:0]
	}
	f.snapshot(float64(now))
	f.allocatedEUs -= r.vnpu.Config.TotalEUs()
	f.busySum += r.busyEUCycles
	if r.kv != nil {
		// Backend machinery dies with the chip first (in-flight swap
		// transfers cancel), then occupancy integrates up to the crash;
		// the blocks themselves die with the chip (surviving replicas'
		// conservation is what the property tests reconcile).
		r.kv.teardown(float64(now))
		t.foldKV(r.kv, float64(now))
	}
	f.mapper.Unmap(r.vnpu)
	for i, x := range t.replicas {
		if x == r {
			t.replicas = append(t.replicas[:i], t.replicas[i+1:]...)
			break
		}
	}
	t.replicaTL.Add(float64(now), float64(t.activeCount()))
}

// crashSeqOutcome resolves one sequence whose resident KV died with its
// replica: re-queue (replaying any generated prefix by folding it into
// the prompt) or fail, per the plan's CrashPolicy. The KV tokens lost —
// everything resident at the crash — are itemized as recompute debt.
func (f *fleet) crashSeqOutcome(t *tenantState, s *llmSeq, out *[]harvested, now sim.Time) {
	if f.obs != nil {
		// Close whichever lifecycle phase the crash interrupted: prefill
		// when the prompt was still being processed (a disaggregated
		// handoff's prefill phase already closed at prefDone, and its
		// migrate phase is closed by the caller), decode when the sequence
		// was mid-generation.
		switch {
		case !s.prefilled && s.prefDone == 0:
			f.obs.trace.End("prefill", "req", t.cfg.Name, float64(now), s.req.id)
		case s.prefilled && s.req.output > 1:
			f.obs.trace.End("decode", "req", t.cfg.Name, float64(now), s.req.id)
		}
	}
	lost := 0
	if s.prefilled {
		lost = s.ctx // prompt + produced so far
	} else if s.promptDone > 0 {
		lost = s.promptDone // chunked-prefill progress
	}
	if s.produced > 0 && f.cfg.Faults.Policy == CrashFail {
		t.crashLost++
		f.led.ReqDrop(t.cfg.Name, s.req.id)
		if f.obs != nil {
			f.obs.trace.Instant("crash-lost", "fault", t.cfg.Name, obsTrackControl, float64(now), s.req.id,
				"produced", int64(s.produced), "reason", "policy-fail")
		}
		return
	}
	req := s.req
	req.replay = true
	req.crashed = true
	if s.produced > 0 {
		req.prompt = s.req.prompt + s.produced
		req.output = s.req.output - s.produced
		req.hadTok = true
		t.replays++
	}
	t.recomputeTokens += int64(lost)
	if f.obs != nil {
		f.obs.trace.Instant("crash-replay", "fault", t.cfg.Name, obsTrackControl, float64(now), req.id,
			"lost_tokens", int64(lost), "", "")
	}
	*out = append(*out, harvested{t, req})
}

// requeue routes one harvested request back into the surviving fleet
// through the ordinary router and admission control. No survivor with
// queue room → the request is lost to the crash (counted, never
// silently dropped); the router's total-crash behavior — nil only when
// the tenant has no replicas at all — is exactly the PR-3 hardening.
func (f *fleet) requeue(h harvested, now sim.Time) {
	t := h.ten
	r := f.route(t)
	if r == nil {
		t.crashLost++
		f.led.ReqDrop(t.cfg.Name, h.req.id)
		if f.obs != nil {
			f.obs.trace.Instant("crash-lost", "fault", t.cfg.Name, obsTrackControl, float64(now), h.req.id,
				"", 0, "reason", "no-replica")
		}
		return
	}
	q := r.queueFor(t)
	if len(q.reqs) >= t.cfg.QueueCap {
		t.crashLost++
		f.led.ReqDrop(t.cfg.Name, h.req.id)
		if f.obs != nil {
			f.obs.trace.Instant("crash-lost", "fault", t.cfg.Name, obsTrackControl, float64(now), h.req.id,
				"", 0, "reason", "queue-cap")
		}
		return
	}
	if f.obs != nil {
		f.obs.trace.Instant("crash-requeue", "fault", t.cfg.Name, obsTrackControl, float64(now), h.req.id, "", 0, "", "")
		f.obs.trace.Begin("queue", "req", t.cfg.Name, float64(now), h.req.id)
	}
	f.led.ReqSeg(t.cfg.Name, h.req.id, obs.SegCrashRequeue, float64(now))
	q.reqs = append(q.reqs, h.req)
	if len(q.reqs) > t.maxQueue {
		t.maxQueue = len(q.reqs)
	}
	t.crashRequeued++
	f.poke(r, t, now)
}

// rebalanceDecode evacuates mid-generation sequences from overloaded
// decode slots toward underloaded ones (typically fresh emergency
// spawns) after a crash: while the widest load gap is ≥ 2 sequences,
// the cheapest movable sequence (smallest resident context — least
// bytes on the wire) migrates over the interconnect. Sequences already
// migrating count toward their TARGET's load, so each move closes the
// gap by two and the loop terminates.
func (f *fleet) rebalanceDecode(t *tenantState, now sim.Time) {
	d := t.disagg()
	if d == nil || f.fabric == nil {
		return
	}
	load := func(r *replica) int {
		n := r.inbound
		for _, s := range r.queueFor(t).running {
			if !s.migrating {
				n++
			}
		}
		return n
	}
	for {
		var hi, lo *replica
		for _, r := range t.replicas {
			if r.role != RoleDecode || r.draining {
				continue
			}
			l := load(r)
			if hi == nil || l > load(hi) || (l == load(hi) && r.uid < hi.uid) {
				hi = r
			}
			if lo == nil || l < load(lo) || (l == load(lo) && r.uid < lo.uid) {
				lo = r
			}
		}
		if hi == nil || lo == nil || hi == lo || load(hi)-load(lo) < 2 {
			return
		}
		if load(lo) >= d.DecodeBatch {
			return // the light slot has no width room either
		}
		// Cheapest movable sequence: not already migrating, not finished,
		// and not inside the decode iteration currently in flight (its
		// state must freeze for the copy). Ties break by arrival.
		inCur := func(s *llmSeq) bool {
			if hi.cur == nil {
				return false
			}
			for _, x := range hi.cur.seqs {
				if x == s {
					return true
				}
			}
			return false
		}
		var pick *llmSeq
		for _, s := range hi.queueFor(t).running {
			if s.migrating || !s.prefilled || s.produced >= s.req.output || inCur(s) {
				continue
			}
			if pick == nil || s.ctx < pick.ctx || (s.ctx == pick.ctx && s.req.at < pick.req.at) {
				pick = s
			}
		}
		if pick == nil {
			// Under continuous batching every resident sequence is usually
			// inside the in-flight iteration, so a crash-instant rebalance
			// finds the gap but nothing frozen to ship. Retry when the
			// iteration drains (finish() checks the flag at every decode
			// batch boundary, before the next batch collects).
			for _, s := range hi.queueFor(t).running {
				if !s.migrating && s.prefilled && s.produced < s.req.output && inCur(s) {
					t.llm.rebalPending = true
					break
				}
			}
			return
		}
		if !lo.kv.fits(lo.kv.blocksFor(pick.req.prompt + pick.req.output)) {
			return
		}
		f.beginEvacuation(hi, lo, pick, now)
	}
}

// beginEvacuation ships one mid-generation sequence's resident KV from
// src to dst. Same conservation discipline as the prefill→decode
// handoff: the full reservation is charged to dst at start, the
// sequence freezes (no decode advances it) while its pages are on the
// wire, and src's blocks free exactly at landing.
func (f *fleet) beginEvacuation(src, dst *replica, s *llmSeq, now sim.Time) {
	t := src.ten
	s.migrating = true
	f.led.ReqSeg(t.cfg.Name, s.req.id, obs.SegMigrate, float64(now))
	dblocks := dst.kv.blocksFor(s.req.prompt + s.req.output)
	dst.kv.alloc(dblocks, float64(now))
	dst.inbound++
	f.ledRepIdle(dst, now)
	bytes := model.LLMKVTransferBytes(s.ctx)
	t.llm.evacStarted++
	fl := &migFlight{seq: s, src: src, dst: dst, dblocks: dblocks, bytes: bytes, evac: true}
	fl.xfr = f.fabric.Link(src.vnpu.Mapping.PNPU, dst.vnpu.Mapping.PNPU).Start(bytes,
		func(now sim.Time) { f.finishEvacuation(fl, now) })
	t.llm.migInflight = append(t.llm.migInflight, fl)
	if f.obs != nil {
		f.obs.trace.Begin("evac", "req", t.cfg.Name, float64(now), s.req.id)
		f.obs.trace.Instant("evac-start", "fault", t.cfg.Name, obsTrackControl, float64(now), s.req.id,
			"bytes", bytes, "link", fmt.Sprintf("chip%d→chip%d", src.vnpu.Mapping.PNPU, dst.vnpu.Mapping.PNPU))
	}
}

// finishEvacuation lands an evacuation: src's blocks free exactly now,
// the dst reservation (charged at start) takes over, and the sequence
// thaws into dst's running set mid-generation.
func (f *fleet) finishEvacuation(fl *migFlight, now sim.Time) {
	src, dst, s := fl.src, fl.dst, fl.seq
	t := src.ten
	t.llm.dropFlight(fl)
	src.kv.free(s.blocks, float64(now))
	src.queueFor(t).removeRunning(s)
	s.blocks = fl.dblocks
	s.migrating = false
	dst.inbound--
	f.led.ReqSeg(t.cfg.Name, s.req.id, obs.SegDecodeGap, float64(now))
	f.ledRepIdle(dst, now)
	dst.queueFor(t).running = append(dst.queueFor(t).running, s)
	t.llm.evacLanded++
	t.llm.evacBytes += fl.bytes
	if f.obs != nil {
		f.obs.trace.End("evac", "req", t.cfg.Name, float64(now), s.req.id)
	}
	// Freed source blocks may admit a parked migration; both ends have
	// fresh scheduling state.
	f.drainMigQ(t, now)
	if src.cur == nil && !src.retired {
		f.dispatch(src, now)
	}
	if dst.cur == nil && !dst.retired {
		f.dispatch(dst, now)
	}
}

// noteFaultDone feeds the fault-window attainment counters: requests
// that ARRIVED inside the window (first fault → end of run) and were
// served within the SLO. The ≤ comparison matches Latencies.CountBelow,
// so window and whole-run attainment are directly comparable.
func (f *fleet) noteFaultDone(t *tenantState, reqAt sim.Time, lat float64) {
	if !f.faulted || float64(reqAt) < f.fwStart {
		return
	}
	if lat <= t.sloCycles {
		t.fwSloOK++
	}
}
