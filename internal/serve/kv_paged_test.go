package serve

import (
	"testing"

	"neu10/internal/arch"
	"neu10/internal/workload"
)

// pagedCfg is the shared paged-KV test scenario: multi-turn session
// traffic (shared system prompt, growing per-session contexts) on a
// fixed two-replica fleet with a KV partition tight enough that the
// paged backend must evict mid-run. policy/evict select the backend
// under test; the same seed draws the byte-identical trace for every
// combination.
func pagedCfg(seed uint64, policy, evict string) Config {
	return Config{
		Scenario:    "paged-test",
		Core:        arch.TPUv4Like(),
		Cores:       2,
		Router:      LeastLoaded,
		DurationSec: 4.0,
		Seed:        seed,
		Tenants: []TenantConfig{{
			Name: "chat", Model: "LLaMA", Load: 0.7, EUs: 4, MaxBatch: 8, QueueCap: 32,
			InitialReplicas: 2, MaxReplicas: 2,
			LLM: &LLMConfig{
				// 32 blocks of 16 tokens; a full session (256 tokens) is
				// half the partition, so MaxBatch-wide decode must evict.
				KVCapTokens: 512,
				KVPolicy:    policy,
				KVEvict:     evict,
				Trace: workload.LLMTrace{
					PromptMin: 16, PromptMean: 32, PromptMax: 64,
					OutputMin: 2, OutputMean: 8, OutputMax: 24,
					Sessions: 6, SharedPrefixTokens: 32, MaxSessionTokens: 256,
				},
			},
		}},
	}
}

// nodeBlocks recomputes a radix node's block ownership from first
// principles: the whole blocks that COMPLETE within its token span.
func nodeBlocks(n *radixNode, blockTokens int) int {
	return (n.startTok+n.tokens)/blockTokens - n.startTok/blockTokens
}

// TestPagedDrainInvariants runs the paged backend to a full drain under
// both eviction policies across several seeds and checks the backend's
// documented invariants directly on its internal state:
//
//   - no sequence left swapped or in flight once the event queue drains;
//   - every cache node unpinned (refs == 0) with refs never having gone
//     negative (unpin panics otherwise, so completion certifies it);
//   - block conservation: each node's owned blocks match the span
//     arithmetic, the cold counter equals their sum, and — with no live
//     sequences — the ledger's used equals cold exactly (all residency
//     is cache, zero private blocks leak);
//   - report-level conservation: arrivals = rejected + completed, peak
//     occupancy in (0, 1], and at least one admission hit the cache.
func TestPagedDrainInvariants(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	for seed := uint64(1); seed <= 3; seed++ {
		for _, evict := range []string{KVEvictRecompute, KVEvictSwap} {
			f, err := newFleet(pagedCfg(seed, KVPaged, evict), db)
			if err != nil {
				t.Fatal(err)
			}
			for _, tn := range f.tenants {
				f.scheduleArrival(tn)
			}
			f.eng.Run()
			for _, tn := range f.tenants {
				for _, r := range tn.replicas {
					p, ok := r.kv.(*pagedKV)
					if !ok {
						t.Fatalf("seed %d/%s: replica runs %T, want *pagedKV", seed, evict, r.kv)
					}
					if len(p.swapQ) != 0 || len(p.flights) != 0 {
						t.Errorf("seed %d/%s: %d swapped seqs and %d transfers survive the drain",
							seed, evict, len(p.swapQ), len(p.flights))
					}
					sum := 0
					for _, n := range p.nodes {
						if n.refs != 0 {
							t.Errorf("seed %d/%s: cache node key=%d still pinned (refs %d) after drain",
								seed, evict, n.key, n.refs)
						}
						if want := nodeBlocks(n, p.a.blockTokens); n.blocks != want {
							t.Errorf("seed %d/%s: node key=%d owns %d blocks, span arithmetic says %d",
								seed, evict, n.key, n.blocks, want)
						}
						sum += n.blocks
					}
					if p.cold != sum {
						t.Errorf("seed %d/%s: cold counter %d ≠ Σ unpinned node blocks %d",
							seed, evict, p.cold, sum)
					}
					if p.a.used() != p.cold {
						t.Errorf("seed %d/%s: %d blocks used but only %d are cache — private blocks leaked",
							seed, evict, p.a.used(), p.cold)
					}
					if p.curSeqs != 0 {
						t.Errorf("seed %d/%s: %d sequences still resident after drain", seed, evict, p.curSeqs)
					}
				}
			}
			rep := f.report()
			tr := rep.Tenants[0]
			if tr.Arrivals != tr.Rejected+tr.Completed {
				t.Errorf("seed %d/%s: %d arrivals ≠ %d rejected + %d completed",
					seed, evict, tr.Arrivals, tr.Rejected, tr.Completed)
			}
			if tr.Completed == 0 {
				t.Errorf("seed %d/%s: nothing completed", seed, evict)
			}
			if tr.LLM.KVOccPeak <= 0 || tr.LLM.KVOccPeak > 1 {
				t.Errorf("seed %d/%s: peak KV occupancy %.3f not in (0, 1]", seed, evict, tr.LLM.KVOccPeak)
			}
			if tr.LLM.PrefixLookups == 0 || tr.LLM.PrefixHits == 0 {
				t.Errorf("seed %d/%s: prefix cache never hit (%d/%d) on session traffic",
					seed, evict, tr.LLM.PrefixHits, tr.LLM.PrefixLookups)
			}
			if evict == KVEvictSwap && tr.LLM.SwapOutMB != tr.LLM.SwapInMB {
				t.Errorf("seed %d/%s: %.2f MB swapped out but %.2f MB back — a sequence never returned",
					seed, evict, tr.LLM.SwapOutMB, tr.LLM.SwapInMB)
			}
		}
	}
}

// TestPagedPolicyTraceInvariance is the property-test sweep across
// seeds × policies: the request trace — arrivals and total output
// tokens — is a pure function of the seed, identical whichever KV
// backend serves it, and every backend conserves requests
// (arrivals = rejected + completed on these fault-free runs). The paged
// backend must also admit at least as many concurrent sequences as full
// reservation on every seed.
func TestPagedPolicyTraceInvariance(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	for seed := uint64(1); seed <= 4; seed++ {
		type leg struct {
			policy, evict string
		}
		legs := []leg{{KVReserve, ""}, {KVPaged, KVEvictRecompute}, {KVPaged, KVEvictSwap}}
		var base TenantReport
		for i, lg := range legs {
			rep, err := Run(pagedCfg(seed, lg.policy, lg.evict), db)
			if err != nil {
				t.Fatal(err)
			}
			tr := rep.Tenants[0]
			if tr.Arrivals != tr.Rejected+tr.Completed {
				t.Errorf("seed %d %s/%s: %d arrivals ≠ %d rejected + %d completed",
					seed, lg.policy, lg.evict, tr.Arrivals, tr.Rejected, tr.Completed)
			}
			if i == 0 {
				base = tr
				continue
			}
			if tr.Arrivals != base.Arrivals || tr.LLM.TokensOut != base.LLM.TokensOut {
				t.Errorf("seed %d %s/%s: trace diverged from reserve (%d/%d arrivals, %d/%d tokens)",
					seed, lg.policy, lg.evict, tr.Arrivals, base.Arrivals, tr.LLM.TokensOut, base.LLM.TokensOut)
			}
			if tr.LLM.PeakSeqs < base.LLM.PeakSeqs {
				t.Errorf("seed %d %s/%s: paged admitted fewer concurrent seqs than reserve (%d < %d)",
					seed, lg.policy, lg.evict, tr.LLM.PeakSeqs, base.LLM.PeakSeqs)
			}
		}
	}
}

// TestPagedDeterminism: same seed ⇒ byte-identical report, for both
// eviction policies (the swap pipeline's link callbacks and the
// eviction loop's victim order must be fully event-ordered).
func TestPagedDeterminism(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	for _, evict := range []string{KVEvictRecompute, KVEvictSwap} {
		a, err := Run(pagedCfg(2, KVPaged, evict), db)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(pagedCfg(2, KVPaged, evict), db)
		if err != nil {
			t.Fatal(err)
		}
		if a.Table() != b.Table() {
			t.Errorf("%s: same seed produced different reports:\n%s\nvs\n%s", evict, a.Table(), b.Table())
		}
	}
}

// TestPagedReserveGoldenPath: an LLM tenant with NO explicit KVPolicy
// must run the reserve backend and leave every extended KVStats field
// zero — the gate that keeps legacy scenario reports byte-identical.
func TestPagedReserveGoldenPath(t *testing.T) {
	cfg := pagedCfg(1, "", "")
	cfg.Tenants[0].LLM.Trace.Sessions = 0
	cfg.Tenants[0].LLM.Trace.SharedPrefixTokens = 0
	cfg.Tenants[0].LLM.Trace.MaxSessionTokens = 0
	rep, err := Run(cfg, NewCostDB(arch.TPUv4Like()))
	if err != nil {
		t.Fatal(err)
	}
	l := rep.Tenants[0].LLM
	if l.KVPolicy != "" || l.PeakSeqs != 0 || l.Evictions != 0 || l.PrefixLookups != 0 {
		t.Errorf("implicit-reserve tenant leaked extended KV stats: %+v", l.KVStats)
	}
}

// TestPagedValidation pins the config surface: the paged backend
// rejects the batcher shapes whose suspended batches or foreign-slot
// sequences the evictor could not safely invalidate, and eviction
// policy names are checked.
func TestPagedValidation(t *testing.T) {
	bad := func(mut func(*Config), want string) {
		cfg := pagedCfg(1, KVPaged, KVEvictRecompute)
		mut(&cfg)
		if _, err := Run(cfg, nil); err == nil {
			t.Errorf("%s: accepted", want)
		}
	}
	bad(func(c *Config) { c.Tenants[0].LLM.Static = true }, "paged + static batcher")
	bad(func(c *Config) { c.Tenants[0].LLM.KVEvict = "teleport" }, "unknown eviction policy")
	bad(func(c *Config) { c.Tenants[0].LLM.KVPolicy = "virtual" }, "unknown KV policy")
	bad(func(c *Config) { c.Tenants[0].LLM.KVPolicy = "" }, "eviction policy without paged backend")
	bad(func(c *Config) { c.Tenants[0].LLM.SwapGBps = -1 }, "negative swap bandwidth")
}
