package serve

import (
	"fmt"

	"neu10/internal/model"
	"neu10/internal/obs"
	"neu10/internal/sim"
)

// Disaggregated prefill/decode serving (LLMConfig.Disagg). The
// colocated continuous batcher time-multiplexes prefill and decode on
// the same slot, so a burst of long prompts — prefill is prioritized,
// exactly so TTFT stays low — stalls every running generation and
// inflates TPOT. Disaggregation specializes the fleet instead:
//
//	arrivals ─► prefill pool (RolePrefill; whole-prompt or chunked
//	invocations, prompt-only KV) ─► KV migration over the modeled
//	chip-to-chip link (internal/xfer; priced into TTFT) ─► decode pool
//	(RoleDecode; admission-checked continuous decode, full
//	prompt+output KV) ─► completion
//
// The migration is the subsystem's conservation-critical step. At
// migration START the full reservation is charged to the decode
// replica (so concurrent in-flight migrations can never oversubscribe
// the target); during the transfer the prompt KV is resident on BOTH
// chips — the source cannot drop pages it is still copying; at
// migration COMPLETION the prefill-side blocks are released, the
// sequence joins the decode replica's running set and its first token
// is delivered (TTFT therefore prices queue + prefill + migration). A
// prefill completion that finds no admitting decode slot parks in a
// FIFO migration queue with its prompt KV still held — that
// backpressure is deliberate: a slow link or a full decode pool
// surfaces as prefill-side KV pressure and admission stalls, not as
// silent overcommit.

// disaggBatcher decorates the continuous policy with role awareness:
// prefill-pool admission and (possibly chunked) prompt processing on
// RolePrefill slots, decode delegated to the wrapped continuousLLM on
// RoleDecode slots, and the KV migration between the two pools riding
// on the fleet's migration machinery below.
type disaggBatcher struct {
	f     *fleet
	t     *tenantState
	inner *continuousLLM
}

// next: role-specialized slots see exactly one work kind — prompt
// processing on the prefill pool, decode iterations over migrated
// sequences on the decode pool.
func (d *disaggBatcher) next(r *replica, q *slotQueue) (batchKind, sim.Time, bool) {
	if r.role == RolePrefill {
		if key, ok := d.prefillWork(r, q); ok {
			return kindLLMPrefill, key, true
		}
		return 0, 0, false
	}
	for _, s := range q.running {
		if s.prefilled && !s.migrating && s.produced < s.req.output {
			return kindLLMDecode, s.req.at, true
		}
	}
	return 0, 0, false
}

func (d *disaggBatcher) launch(r *replica, q *slotQueue, kind batchKind, now sim.Time, restore float64) {
	if kind == kindLLMPrefill {
		d.launchPrefill(r, q, now, restore)
		return
	}
	d.inner.launchDecode(r, q, now, restore)
}

func (d *disaggBatcher) finish(r *replica, b *batch, now sim.Time) *batch {
	if b.kind == kindLLMPrefill {
		d.finishPrefill(r, b, now)
		return nil
	}
	return d.inner.finish(r, b, now)
}

// coalesces: like continuous batching, a disaggregated slot starts
// work the moment it has any — chunked prefill and decode joins both
// happen at invocation boundaries, never behind a batch-window timer.
func (d *disaggBatcher) coalesces() bool                 { return false }
func (d *disaggBatcher) passedOver(*replica, *slotQueue) {}

// admitsArrival: arrivals of a disaggregated tenant route exclusively
// to prefill slots; decode slots receive work only through KV
// migration.
func (d *disaggBatcher) admitsArrival(r *replica) bool { return r.role == RolePrefill }

// prefillWork reports whether slot r (RolePrefill) has launchable
// prefill work on queue q and, if so, the FIFO key of its oldest
// contributor: an in-flight chunked prompt, or the queue head if it is
// admittable (prompt reservation fits and the prefill width has room).
func (d *disaggBatcher) prefillWork(r *replica, q *slotQueue) (sim.Time, bool) {
	t := q.ten
	var key sim.Time
	found := false
	width := 0
	for _, s := range q.running {
		if s.promptDone < s.req.prompt {
			width++
			if !found || s.req.at < key {
				key, found = s.req.at, true
			}
		}
	}
	if len(q.reqs) > 0 && width < t.cfg.MaxBatch &&
		r.kv.fits(r.kv.blocksFor(q.reqs[0].prompt)) {
		if !found || q.reqs[0].at < key {
			key, found = q.reqs[0].at, true
		}
	}
	return key, found
}

// launchPrefill starts one prefill invocation on a RolePrefill slot:
// admit queue-head requests (FIFO, prompt-only KV reservation, no
// head-of-line bypass) while the prefill width has room, then advance
// up to MaxBatch in-flight prompts by one chunk each (the whole
// remaining prompt when chunking is off). next only proposes this
// kind when prefillWork holds, so the invocation always carries work.
// The admission loop is the role-specialized sibling of
// continuousLLM.admit (llm.go) — bookkeeping changes there likely
// apply here too.
func (db *disaggBatcher) launchPrefill(r *replica, q *slotQueue, now sim.Time, restore float64) {
	f, t := db.f, q.ten
	d := t.cfg.LLM.Disagg
	f.disarmTimer(r)

	width := 0
	for _, s := range q.running {
		if s.promptDone < s.req.prompt {
			width++
		}
	}
	for len(q.reqs) > 0 && width < t.cfg.MaxBatch {
		req := q.reqs[0]
		blocks := r.kv.blocksFor(req.prompt)
		if !r.kv.fits(blocks) {
			// KV pressure (in-flight prompts plus prompts parked behind a
			// slow migration path) blocks admission — the stall signal.
			t.llm.kvStalls++
			f.ledStall(t, req, now)
			if f.obs != nil {
				f.obs.trace.Instant("kv-stall", "sched", r.ten.cfg.Name, obsReplicaTrack(r), float64(now), req.id, "", 0, "tenant", t.cfg.Name)
			}
			break
		}
		r.kv.alloc(blocks, float64(now))
		s := &llmSeq{req: req, blocks: blocks}
		q.running = append(q.running, s)
		n := copy(q.reqs, q.reqs[1:])
		q.reqs = q.reqs[:n]
		width++
		t.llm.admitted++
		t.llm.promptTokens += int64(req.prompt)
		t.llm.outputTokens += int64(req.output)
		if f.obs != nil {
			f.obs.trace.End("queue", "req", t.cfg.Name, float64(now), req.id)
			f.obs.trace.Begin("prefill", "req", t.cfg.Name, float64(now), req.id)
		}
		if f.cfg.Autoscale {
			// The prefill pool's autoscale signal: queue delay from
			// arrival to the first prefill invocation.
			t.llm.windowWait.Add(float64(now - req.at))
		}
	}

	b := f.takeBatch()
	b.ten, b.restore, b.kind = t, restore, kindLLMPrefill
	maxChunk, maxCtx := 0, 0
	for _, s := range q.running {
		if s.promptDone >= s.req.prompt {
			continue
		}
		if len(b.seqs) >= t.cfg.MaxBatch {
			break
		}
		n := s.req.prompt - s.promptDone
		if d.ChunkTokens > 0 && n > d.ChunkTokens {
			n = d.ChunkTokens
		}
		b.seqs = append(b.seqs, s)
		b.chunks = append(b.chunks, n)
		if n > maxChunk {
			maxChunk = n
		}
		if s.promptDone > maxCtx {
			maxCtx = s.promptDone
		}
	}
	if len(b.seqs) == 0 {
		panic("serve: disaggregated prefill launch with no work")
	}
	f.ledPrefillSeqs(t, b.seqs, now)
	// A chunk is NOT a fresh short prefill: its attention spans the
	// whole cached context behind it, so a late chunk of a long prompt
	// costs real work beyond the weight re-streaming. The invocation is
	// priced at the batch's widest chunk and deepest context.
	cycles, err := f.costs.LLMChunkCycles(len(b.seqs), maxChunk, maxCtx, r.nm, r.nv)
	if err != nil {
		panic(fmt.Sprintf("serve: costing disaggregated prefill: %v", err))
	}
	b.total, b.remaining = cycles, cycles
	t.issuedServiceCycles += cycles
	f.startSegment(r, b, now)
}

// finishPrefill retires one prefill invocation: every sequence
// advances by its chunk; fully prefilled prompts leave for the decode
// pool through startMigration. No token is emitted here — the first
// token is delivered when the KV lands on the decode replica.
func (d *disaggBatcher) finishPrefill(r *replica, b *batch, now sim.Time) {
	f, t := d.f, b.ten
	t.llm.prefills++
	for i, s := range b.seqs {
		s.promptDone += b.chunks[i]
		if s.promptDone >= s.req.prompt {
			s.ctx = s.req.prompt
			s.prefDone = now
			if f.obs != nil {
				// The migrate phase covers the whole prefill→decode handoff:
				// any parked wait plus the wire time (TTFT's interconnect slice).
				f.obs.trace.End("prefill", "req", t.cfg.Name, float64(now), s.req.id)
				f.obs.trace.Begin("migrate", "req", t.cfg.Name, float64(now), s.req.id)
			}
			if f.led != nil {
				f.led.ReqSeg(t.cfg.Name, s.req.id, obs.SegMigrate, float64(now))
			}
			f.startMigration(r, s, now)
		} else if f.led != nil {
			f.led.ReqSeg(t.cfg.Name, s.req.id, obs.SegChunkGap, float64(now))
		}
	}
}

// pickDecode selects the decode replica to migrate s to: the
// least-committed non-draining RoleDecode slot (running plus inbound
// migrations, ties toward the older slot) whose KV partition fits the
// sequence's full reservation and whose running set has width room.
// Returns nil when no slot can admit it now.
func (f *fleet) pickDecode(t *tenantState, s *llmSeq) *replica {
	var best *replica
	bestLoad := 0
	for _, r := range t.replicas {
		if r.role != RoleDecode || r.draining {
			continue
		}
		q := r.queueFor(t)
		load := len(q.running) + r.inbound
		if load >= t.cfg.LLM.Disagg.DecodeBatch {
			continue
		}
		if !r.kv.fits(r.kv.blocksFor(s.req.prompt + s.req.output)) {
			continue
		}
		if best == nil || load < bestLoad || (load == bestLoad && r.uid < best.uid) {
			best, bestLoad = r, load
		}
	}
	return best
}

// startMigration ships a freshly prefilled sequence's KV toward the
// decode pool, or parks it (FIFO, prompt KV still held on the prefill
// slot) when no decode replica can admit it yet.
func (f *fleet) startMigration(src *replica, s *llmSeq, now sim.Time) {
	t := src.ten
	if dst := f.pickDecode(t, s); dst != nil {
		f.beginTransfer(src, dst, s, now)
		return
	}
	t.llm.migQ = append(t.llm.migQ, migPending{seq: s, from: src})
	t.llm.migStalls++
	if f.cfg.Autoscale {
		t.llm.windowMigStalls++
	}
	if f.obs != nil {
		f.obs.trace.Instant("mig-stall", "sched", t.cfg.Name, obsTrackControl, float64(now), s.req.id, "parked", int64(len(t.llm.migQ)), "", "")
	}
}

// beginTransfer charges the full prompt+output reservation to the
// decode replica and puts the prompt KV on the wire. The prefill-side
// blocks stay held until the last byte lands — the pages cannot be
// dropped while they are still being copied. The flight enters the
// tenant's in-flight registry so a crash can abort it mid-copy with
// conservation intact (fault.go).
func (f *fleet) beginTransfer(src, dst *replica, s *llmSeq, now sim.Time) {
	t := src.ten
	dblocks := dst.kv.blocksFor(s.req.prompt + s.req.output)
	dst.kv.alloc(dblocks, float64(now))
	dst.inbound++
	f.ledRepIdle(dst, now)
	bytes := model.LLMKVTransferBytes(s.req.prompt)
	t.llm.migrations++
	fl := &migFlight{seq: s, src: src, dst: dst, dblocks: dblocks, bytes: bytes}
	fl.xfr = f.fabric.Link(src.vnpu.Mapping.PNPU, dst.vnpu.Mapping.PNPU).Start(bytes,
		func(now sim.Time) { f.finishMigration(fl, now) })
	t.llm.migInflight = append(t.llm.migInflight, fl)
	if f.obs != nil {
		f.obs.trace.Instant("kv-xfer", "req", t.cfg.Name, obsTrackControl, float64(now), s.req.id,
			"bytes", bytes, "link", fmt.Sprintf("chip%d→chip%d", src.vnpu.Mapping.PNPU, dst.vnpu.Mapping.PNPU))
	}
}

// finishMigration lands a KV transfer: the prefill-side prompt blocks
// are released exactly now, the decode-side reservation (charged at
// transfer start) takes over, the sequence joins the decode replica's
// running set and its first token is delivered — TTFT prices queueing,
// prefill and the migration. Payload bytes count at landing, so an
// aborted transfer never inflates the conservation ledger.
func (f *fleet) finishMigration(fl *migFlight, now sim.Time) {
	src, dst, s := fl.src, fl.dst, fl.seq
	t := src.ten
	t.llm.dropFlight(fl)
	src.kv.free(s.blocks, float64(now))
	src.queueFor(t).removeRunning(s)
	s.blocks = fl.dblocks
	dst.inbound--
	f.ledRepIdle(dst, now)
	dst.queueFor(t).running = append(dst.queueFor(t).running, s)
	t.llm.migLanded++
	t.llm.migBytes += fl.bytes
	t.llm.migWaitCycles += float64(now - s.prefDone)
	if f.obs != nil {
		f.obs.trace.End("migrate", "req", t.cfg.Name, float64(now), s.req.id)
	}
	f.emitFirstToken(t, s, now)
	if s.produced >= s.req.output {
		f.completeSeq(dst, t, s, now)
	}
	// Freed prefill KV may unblock queued admissions; a parked migration
	// may now fit; the decode slot has fresh work.
	f.drainMigQ(t, now)
	if src.cur == nil && !src.retired {
		f.dispatch(src, now)
	}
	if dst.cur == nil && !dst.retired {
		f.dispatch(dst, now)
	}
}

// drainMigQ starts transfers for parked sequences while decode slots
// admit them — strictly FIFO: if the head cannot be placed, everything
// behind it waits, so migration order never depends on shape.
func (f *fleet) drainMigQ(t *tenantState, now sim.Time) {
	l := t.llm
	for len(l.migQ) > 0 {
		m := l.migQ[0]
		dst := f.pickDecode(t, m.seq)
		if dst == nil {
			return
		}
		n := copy(l.migQ, l.migQ[1:])
		l.migQ[n] = migPending{}
		l.migQ = l.migQ[:n]
		f.beginTransfer(m.from, dst, m.seq, now)
	}
}
