package serve

import (
	"sync"
	"sync/atomic"
	"testing"

	"neu10/internal/arch"
)

// TestCostDBSingleFlightConcurrent drives the documented single-flight
// property under real concurrency (run with -race in CI): 32 goroutines
// racing on the SAME key must trigger exactly one measurement and all
// observe the identical value, while distinct keys measure
// independently — once each, however many lookups race.
func TestCostDBSingleFlightConcurrent(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	var measures atomic.Int64
	db.onMeasure = func(costKey) { measures.Add(1) }

	const racers = 32
	vals := make([]float64, racers)
	errs := make([]error, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Batch 3 pads to 4: every racer resolves the same key.
			vals[i], errs[i] = db.ServiceCycles("MNIST", 3, 2, 2)
		}(i)
	}
	wg.Wait()
	for i := 0; i < racers; i++ {
		if errs[i] != nil {
			t.Fatalf("racer %d: %v", i, errs[i])
		}
		if vals[i] != vals[0] {
			t.Fatalf("racer %d observed %v, racer 0 observed %v", i, vals[i], vals[0])
		}
	}
	if got := measures.Load(); got != 1 {
		t.Errorf("same key measured %d times under %d concurrent lookups, want exactly 1", got, racers)
	}

	// Distinct keys — different models, phases and shapes — racing
	// together: one measurement per key, no cross-talk.
	measures.Store(0)
	type query func() (float64, error)
	queries := []query{
		func() (float64, error) { return db.ServiceCycles("MNIST", 8, 2, 2) },
		func() (float64, error) { return db.ServiceCycles("DLRM", 8, 2, 2) },
		func() (float64, error) { return db.LLMCycles(PhasePrefill, 2, 32, 2, 2) },
		func() (float64, error) { return db.LLMCycles(PhaseDecode, 2, 32, 2, 2) },
	}
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := queries[i%len(queries)](); err != nil {
				t.Errorf("query %d: %v", i%len(queries), err)
			}
		}(i)
	}
	wg.Wait()
	if got := measures.Load(); got != int64(len(queries)) {
		t.Errorf("%d distinct keys measured %d times, want one each", len(queries), got)
	}
}

// TestLLMCyclesBuckets pins the phase-key bucketing: batch and sequence
// both pad to powers of two, so lookups inside one bucket share an
// entry, and the two phases never alias.
func TestLLMCyclesBuckets(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	a, err := db.LLMCycles(PhaseDecode, 3, 33, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.LLMCycles(PhaseDecode, 4, 64, 2, 2) // same padded bucket (4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("bucketed lookups disagree: %v vs %v", a, b)
	}
	pre, err := db.LLMCycles(PhasePrefill, 4, 64, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pre == b {
		t.Error("prefill and decode of the same shape priced identically — phases alias")
	}
	// Prefill processes 64 tokens/sequence; a decode step emits one. The
	// compute asymmetry must be reflected in the measured costs.
	if pre < b {
		t.Errorf("prefill (%v cycles) cheaper than one decode step (%v cycles)", pre, b)
	}
	if _, err := db.LLMCycles(PhaseFull, 4, 64, 2, 2); err == nil {
		t.Error("PhaseFull accepted by LLMCycles")
	}
	if _, err := db.LLMCycles(PhaseDecode, 0, 64, 2, 2); err == nil {
		t.Error("zero batch accepted")
	}
}

// TestCostDBEntryCapConcurrent drives the entry cap under real
// concurrency (run with -race in CI): 32 goroutines hammering far more
// distinct keys than the cap allows must never grow the cache past the
// bound, and every query's value must be identical across racers and
// repeats — an overflow key measures uncached, which is a pure
// function of the key, so the cap bounds memory without being able to
// change a single result (the repo's worker-count determinism
// guarantee survives the cap engaging).
func TestCostDBEntryCapConcurrent(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	const cap = 4
	db.SetMaxEntries(cap)
	var measures atomic.Int64
	db.onMeasure = func(costKey) { measures.Add(1) }

	// 12 distinct fine keys (batch buckets 1..32 across two splits) — 3×
	// the cap.
	type q struct{ batch, nm, nv int }
	var queries []q
	for _, b := range []int{1, 2, 4, 8, 16, 32} {
		queries = append(queries, q{b, 1, 1}, q{b, 2, 2})
	}
	const racers = 32
	vals := make([][]float64, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for _, query := range queries {
				v, err := db.ServiceCycles("MNIST", query.batch, query.nm, query.nv)
				if err != nil {
					t.Errorf("query %+v: %v", query, err)
					return
				}
				vals[i] = append(vals[i], v)
			}
		}(i)
	}
	wg.Wait()
	if got := db.Entries(); got > cap {
		t.Errorf("cache grew to %d entries under a cap of %d", got, cap)
	}
	for i := 1; i < racers; i++ {
		for j := range vals[0] {
			if vals[i][j] != vals[0][j] {
				t.Fatalf("racer %d query %d observed %v, racer 0 observed %v — capped lookups are not pure",
					i, j, vals[i][j], vals[0][j])
			}
		}
	}
	// Overflow keys measure per query, so the hook must have fired more
	// often than the distinct-key count (the cap traded time, not
	// correctness), while the cache itself stayed bounded.
	if got := measures.Load(); got <= int64(len(queries)) {
		t.Errorf("only %d measurements for %d distinct keys across %d racers — the cap never engaged",
			got, len(queries), racers)
	}

	// The capped database must agree with an unbounded one on every
	// value (the cap cannot change results), and the unbounded one must
	// single-flight each distinct padded key exactly once.
	free := NewCostDB(arch.TPUv4Like())
	var count atomic.Int64
	free.onMeasure = func(costKey) { count.Add(1) }
	for round := 0; round < 2; round++ {
		for j, query := range queries {
			v, err := free.ServiceCycles("MNIST", query.batch, query.nm, query.nv)
			if err != nil {
				t.Fatal(err)
			}
			if v != vals[0][j] {
				t.Errorf("query %+v: capped database returned %v, unbounded %v", query, vals[0][j], v)
			}
		}
	}
	if got := count.Load(); got != int64(len(queries)) {
		t.Errorf("uncapped database measured %d times for %d distinct keys", got, len(queries))
	}
}

// TestCostDBCoarseBuckets pins the coarse-bucket fallback for outsized
// shapes: inside the fine catalog (batch ≤ 64 padded) buckets stay
// powers of two; beyond it they coarsen to powers of four — a pure
// function of the query, so two shapes in one coarse bucket share an
// entry in every run regardless of arrival order.
func TestCostDBCoarseBuckets(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	var measures atomic.Int64
	db.onMeasure = func(costKey) { measures.Add(1) }
	// Fine: 33 and 64 share the power-of-two bucket 64.
	a, err := db.ServiceCycles("MNIST", 33, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.ServiceCycles("MNIST", 64, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if a != b || measures.Load() != 1 {
		t.Errorf("fine bucket not shared: %v vs %v (%d measurements)", a, b, measures.Load())
	}
	// Coarse: 100 (pads past the fine catalog) and 256 share the
	// power-of-four bucket 256; 65 joins them too.
	measures.Store(0)
	c100, err := db.ServiceCycles("MNIST", 100, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	c256, err := db.ServiceCycles("MNIST", 256, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	c65, err := db.ServiceCycles("MNIST", 65, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if c100 != c256 || c65 != c256 || measures.Load() != 1 {
		t.Errorf("coarse bucket not shared: %v / %v / %v (%d measurements)", c100, c256, c65, measures.Load())
	}
	if c256 == b {
		t.Error("coarse bucket aliased a fine bucket")
	}
}
