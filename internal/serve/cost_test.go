package serve

import (
	"sync"
	"sync/atomic"
	"testing"

	"neu10/internal/arch"
)

// TestCostDBSingleFlightConcurrent drives the documented single-flight
// property under real concurrency (run with -race in CI): 32 goroutines
// racing on the SAME key must trigger exactly one measurement and all
// observe the identical value, while distinct keys measure
// independently — once each, however many lookups race.
func TestCostDBSingleFlightConcurrent(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	var measures atomic.Int64
	db.onMeasure = func(costKey) { measures.Add(1) }

	const racers = 32
	vals := make([]float64, racers)
	errs := make([]error, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Batch 3 pads to 4: every racer resolves the same key.
			vals[i], errs[i] = db.ServiceCycles("MNIST", 3, 2, 2)
		}(i)
	}
	wg.Wait()
	for i := 0; i < racers; i++ {
		if errs[i] != nil {
			t.Fatalf("racer %d: %v", i, errs[i])
		}
		if vals[i] != vals[0] {
			t.Fatalf("racer %d observed %v, racer 0 observed %v", i, vals[i], vals[0])
		}
	}
	if got := measures.Load(); got != 1 {
		t.Errorf("same key measured %d times under %d concurrent lookups, want exactly 1", got, racers)
	}

	// Distinct keys — different models, phases and shapes — racing
	// together: one measurement per key, no cross-talk.
	measures.Store(0)
	type query func() (float64, error)
	queries := []query{
		func() (float64, error) { return db.ServiceCycles("MNIST", 8, 2, 2) },
		func() (float64, error) { return db.ServiceCycles("DLRM", 8, 2, 2) },
		func() (float64, error) { return db.LLMCycles(PhasePrefill, 2, 32, 2, 2) },
		func() (float64, error) { return db.LLMCycles(PhaseDecode, 2, 32, 2, 2) },
	}
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := queries[i%len(queries)](); err != nil {
				t.Errorf("query %d: %v", i%len(queries), err)
			}
		}(i)
	}
	wg.Wait()
	if got := measures.Load(); got != int64(len(queries)) {
		t.Errorf("%d distinct keys measured %d times, want one each", len(queries), got)
	}
}

// TestLLMCyclesBuckets pins the phase-key bucketing: batch and sequence
// both pad to powers of two, so lookups inside one bucket share an
// entry, and the two phases never alias.
func TestLLMCyclesBuckets(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	a, err := db.LLMCycles(PhaseDecode, 3, 33, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := db.LLMCycles(PhaseDecode, 4, 64, 2, 2) // same padded bucket (4, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("bucketed lookups disagree: %v vs %v", a, b)
	}
	pre, err := db.LLMCycles(PhasePrefill, 4, 64, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if pre == b {
		t.Error("prefill and decode of the same shape priced identically — phases alias")
	}
	// Prefill processes 64 tokens/sequence; a decode step emits one. The
	// compute asymmetry must be reflected in the measured costs.
	if pre < b {
		t.Errorf("prefill (%v cycles) cheaper than one decode step (%v cycles)", pre, b)
	}
	if _, err := db.LLMCycles(PhaseFull, 4, 64, 2, 2); err == nil {
		t.Error("PhaseFull accepted by LLMCycles")
	}
	if _, err := db.LLMCycles(PhaseDecode, 0, 64, 2, 2); err == nil {
		t.Error("zero batch accepted")
	}
}
