package serve

import (
	"fmt"
	"sync"

	"neu10/internal/arch"
	"neu10/internal/compiler"
	"neu10/internal/model"
	"neu10/internal/sched"
)

// CostDB resolves (model, batch, vNPU shape) → service cycles for one
// batched inference invocation. Costs are not a closed-form guess: each
// entry is measured by compiling the model at the padded batch size and
// replaying it solo through the §III-G fluid simulator on a core carved
// down to the vNPU's engine counts and its fair HBM-bandwidth share
// (§III-B: bandwidth is shared in proportion to EUs by default). The
// fluid model therefore prices in ME/VE pipelining, reduction-split
// overheads and memory-boundedness exactly as the figure experiments do.
//
// Batch sizes are padded up to the next power of two before costing —
// real serving kernels are compiled for bucketed shapes, and bucketing
// bounds the cache to O(log MaxBatch) entries per (model, shape).
//
// Entries are single-flighted per key (the workload.Compiled pattern):
// the map lock is held only to claim a slot, measurement runs under the
// entry's sync.Once, so distinct keys measure concurrently and the
// parallel experiment runner shares one CostDB across its worker pool.
// Every entry is a pure function of its key, so population order cannot
// leak into results.
type CostDB struct {
	core    arch.CoreConfig
	mu      sync.Mutex
	entries map[costKey]*costEntry

	// onMeasure, when non-nil, is invoked inside the entry's sync.Once
	// immediately before measurement — a test hook that observes the
	// single-flight property (each key must measure exactly once no
	// matter how many lookups race).
	onMeasure func(costKey)
}

// Phase distinguishes the invocation kinds a key can price. The zero
// value is a whole-model inference (the pre-LLM behavior); the LLM
// phases price one prefill or one decode iteration of the serving LLM
// (model.LLMPrefill / model.LLMDecode).
type Phase int

const (
	// PhaseFull is a whole-model batched inference invocation.
	PhaseFull Phase = iota
	// PhasePrefill is the prompt-processing phase of an LLM request:
	// seq = prompt tokens per sequence.
	PhasePrefill
	// PhaseDecode is one autoregressive decode iteration: seq = cached
	// context tokens attended over.
	PhaseDecode
)

func (p Phase) String() string {
	switch p {
	case PhaseFull:
		return "full"
	case PhasePrefill:
		return "prefill"
	case PhaseDecode:
		return "decode"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

type costKey struct {
	model  string
	phase  Phase
	batch  int // padded
	seq    int // padded prompt (prefill) / context (decode); 0 for full
	nm, nv int
}

type costEntry struct {
	once   sync.Once
	cycles float64
	err    error
}

// NewCostDB builds a cost database for a physical core family.
func NewCostDB(core arch.CoreConfig) *CostDB {
	return &CostDB{core: core, entries: map[costKey]*costEntry{}}
}

// Core returns the physical core family the database prices against.
func (db *CostDB) Core() arch.CoreConfig { return db.core }

// PadBatch returns the power-of-two bucket a batch size is costed at.
func PadBatch(b int) int {
	p := 1
	for p < b {
		p <<= 1
	}
	return p
}

// ServiceCycles returns the cycles one invocation of `name` at the given
// batch size takes on a vNPU with nm MEs and nv VEs.
func (db *CostDB) ServiceCycles(name string, batch, nm, nv int) (float64, error) {
	if batch < 1 || nm < 1 || nv < 1 {
		return 0, fmt.Errorf("serve: bad cost query %s/%d on %dME+%dVE", name, batch, nm, nv)
	}
	key := costKey{model: name, batch: PadBatch(batch), nm: nm, nv: nv}
	return db.cycles(key)
}

// llmModel names the serving LLM in phase-cost keys. The phase graphs
// share the registry LLaMA's dimensions (see model/llm.go), so one
// name covers the figure sweeps, the serving costs and KV accounting.
const llmModel = "LLaMA"

// LLMCycles returns the cycles of one LLM phase invocation on a vNPU
// with nm MEs and nv VEs: a prefill of `seq` prompt tokens per
// sequence, or one decode iteration over `seq` cached context tokens.
// Batch and sequence both pad to power-of-two buckets (serving kernels
// compile for bucketed shapes), bounding the cache at
// O(log MaxBatch · log MaxTokens) entries per phase and shape.
func (db *CostDB) LLMCycles(phase Phase, batch, seq, nm, nv int) (float64, error) {
	if phase != PhasePrefill && phase != PhaseDecode {
		return 0, fmt.Errorf("serve: LLM cost query with phase %v", phase)
	}
	if batch < 1 || seq < 1 || nm < 1 || nv < 1 {
		return 0, fmt.Errorf("serve: bad LLM cost query %v/%d/%d on %dME+%dVE", phase, batch, seq, nm, nv)
	}
	key := costKey{model: llmModel, phase: phase, batch: PadBatch(batch), seq: PadBatch(seq), nm: nm, nv: nv}
	return db.cycles(key)
}

// cycles resolves one key through the single-flight cache.
func (db *CostDB) cycles(key costKey) (float64, error) {
	db.mu.Lock()
	e, ok := db.entries[key]
	if !ok {
		e = &costEntry{}
		db.entries[key] = e
	}
	db.mu.Unlock()
	e.once.Do(func() {
		if db.onMeasure != nil {
			db.onMeasure(key)
		}
		e.cycles, e.err = db.measure(key)
	})
	return e.cycles, e.err
}

// measure runs the solo fluid simulation behind one cache entry.
func (db *CostDB) measure(key costKey) (float64, error) {
	var g *compiler.Graph
	var err error
	switch key.phase {
	case PhasePrefill:
		g = model.LLMPrefill(key.batch, key.seq)
	case PhaseDecode:
		g = model.LLMDecode(key.batch, key.seq)
	default:
		g, err = model.Build(key.model, key.batch)
	}
	if err != nil {
		return 0, err
	}
	// The vNPU sees its own engines and its proportional bandwidth slice.
	frac := float64(key.nm+key.nv) / float64(db.core.MEs+db.core.VEs)
	if frac > 1 {
		frac = 1
	}
	sub := db.core.WithEUs(key.nm, key.nv).WithHBMBandwidth(db.core.HBMBwBytes * frac)
	comp, err := compiler.New(sub)
	if err != nil {
		return 0, err
	}
	cg, err := comp.Compile(g, compiler.ISANeu)
	if err != nil {
		return 0, err
	}
	res, err := sched.Run(
		sched.Config{Core: sub, Policy: sched.NeuNH, Requests: 1},
		[]sched.TenantSpec{{Name: key.model, Graph: cg, MEs: key.nm, VEs: key.nv}})
	if err != nil {
		return 0, fmt.Errorf("serve: costing %s/%d on %dME+%dVE: %w", key.model, key.batch, key.nm, key.nv, err)
	}
	return res.Tenants[0].MeanLatency, nil
}
