package serve

import (
	"fmt"
	"sync"

	"neu10/internal/arch"
	"neu10/internal/compiler"
	"neu10/internal/model"
	"neu10/internal/sched"
)

// CostDB resolves (model, batch, vNPU shape) → service cycles for one
// batched inference invocation. Costs are not a closed-form guess: each
// entry is measured by compiling the model at the padded batch size and
// replaying it solo through the §III-G fluid simulator on a core carved
// down to the vNPU's engine counts and its fair HBM-bandwidth share
// (§III-B: bandwidth is shared in proportion to EUs by default). The
// fluid model therefore prices in ME/VE pipelining, reduction-split
// overheads and memory-boundedness exactly as the figure experiments do.
//
// Batch sizes are padded up to the next power of two before costing —
// real serving kernels are compiled for bucketed shapes, and bucketing
// bounds the cache to O(log MaxBatch) entries per (model, shape).
//
// Entries are single-flighted per key (the workload.Compiled pattern):
// the map lock is held only to claim a slot, measurement runs under the
// entry's sync.Once, so distinct keys measure concurrently and the
// parallel experiment runner shares one CostDB across its worker pool.
// Every entry is a pure function of its key, so population order cannot
// leak into results.
type CostDB struct {
	core    arch.CoreConfig
	mu      sync.Mutex
	entries map[costKey]*costEntry

	// maxEntries bounds the cache (DefaultMaxCostEntries unless
	// SetMaxEntries overrides it; ≤ 0 = unbounded). Long parameter
	// sweeps — many models × shapes × vNPU splits — would otherwise
	// grow the map without limit. Growth is contained twice over, and
	// neither mechanism can change a result:
	//
	//   - Coarse-bucket fallback: shapes beyond the fine catalog
	//     (batch > 64, seq/ctx > 4096 after padding) bucket to powers
	//     of FOUR instead of two — a pure function of the QUERY, never
	//     of cache state, so which bucket a shape lands in is identical
	//     in every run and at every worker count.
	//   - Entry cap: once the map is full, new keys measure WITHOUT
	//     caching. The measurement is a pure function of the key — the
	//     exact value the cache would have held — so hitting the cap
	//     makes overflow queries slower, never different.
	maxEntries int

	// onMeasure, when non-nil, is invoked immediately before any
	// measurement — inside the entry's sync.Once for cached keys, per
	// call for capped uncached ones — a test hook that observes the
	// single-flight property and the cap's fallback behavior.
	onMeasure func(costKey)
}

// DefaultMaxCostEntries is the default cache bound: comfortably above
// any shipped scenario's working set (hundreds of entries), small
// enough that a runaway sweep cannot hold gigabytes of map.
const DefaultMaxCostEntries = 8192

// Phase distinguishes the invocation kinds a key can price. The zero
// value is a whole-model inference (the pre-LLM behavior); the LLM
// phases price one prefill or one decode iteration of the serving LLM
// (model.LLMPrefill / model.LLMDecode).
type Phase int

const (
	// PhaseFull is a whole-model batched inference invocation.
	PhaseFull Phase = iota
	// PhasePrefill is the prompt-processing phase of an LLM request:
	// seq = prompt tokens per sequence.
	PhasePrefill
	// PhaseDecode is one autoregressive decode iteration: seq = cached
	// context tokens attended over.
	PhaseDecode
)

func (p Phase) String() string {
	switch p {
	case PhaseFull:
		return "full"
	case PhasePrefill:
		return "prefill"
	case PhaseDecode:
		return "decode"
	default:
		return fmt.Sprintf("phase(%d)", int(p))
	}
}

type costKey struct {
	model  string
	phase  Phase
	batch  int // padded
	seq    int // padded prompt (prefill) / context (decode); 0 for full
	ctx    int // padded cached context BEHIND a prefill chunk; 0 otherwise
	nm, nv int
}

type costEntry struct {
	once   sync.Once
	cycles float64
	err    error
}

// NewCostDB builds a cost database for a physical core family.
func NewCostDB(core arch.CoreConfig) *CostDB {
	return &CostDB{core: core, entries: map[costKey]*costEntry{}, maxEntries: DefaultMaxCostEntries}
}

// SetMaxEntries overrides the cache bound (≤ 0 = unbounded). Safe to
// call concurrently with lookups, though typically done at setup.
func (db *CostDB) SetMaxEntries(n int) {
	db.mu.Lock()
	db.maxEntries = n
	db.mu.Unlock()
}

// Entries returns the current cached-entry count.
func (db *CostDB) Entries() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.entries)
}

// Core returns the physical core family the database prices against.
func (db *CostDB) Core() arch.CoreConfig { return db.core }

// PadBatch returns the power-of-two bucket a batch size is costed at.
func PadBatch(b int) int {
	p := 1
	for p < b {
		p <<= 1
	}
	return p
}

// The fine bucket catalogs. Shapes padding inside these bounds keep
// power-of-two buckets (the kernel catalog real serving compiles);
// anything beyond coarsens to powers of FOUR, halving the bucket count
// per dimension for outsized sweeps. Both rules are pure functions of
// the query, so bucketing never depends on cache state or timing.
const (
	fineBatchMax = 64
	fineSeqMax   = 4096
)

// padShape buckets one shape dimension against its fine catalog bound.
func padShape(n, fineMax int) int {
	if p := PadBatch(n); p <= fineMax {
		return p
	}
	return padPow4(n)
}

// ServiceCycles returns the cycles one invocation of `name` at the given
// batch size takes on a vNPU with nm MEs and nv VEs.
func (db *CostDB) ServiceCycles(name string, batch, nm, nv int) (float64, error) {
	if batch < 1 || nm < 1 || nv < 1 {
		return 0, fmt.Errorf("serve: bad cost query %s/%d on %dME+%dVE", name, batch, nm, nv)
	}
	key := costKey{model: name, batch: padShape(batch, fineBatchMax), nm: nm, nv: nv}
	return db.cycles(key)
}

// llmModel names the serving LLM in phase-cost keys. The phase graphs
// share the registry LLaMA's dimensions (see model/llm.go), so one
// name covers the figure sweeps, the serving costs and KV accounting.
const llmModel = "LLaMA"

// LLMCycles returns the cycles of one LLM phase invocation on a vNPU
// with nm MEs and nv VEs: a prefill of `seq` prompt tokens per
// sequence, or one decode iteration over `seq` cached context tokens.
// Batch and sequence both pad to power-of-two buckets (serving kernels
// compile for bucketed shapes), bounding the cache at
// O(log MaxBatch · log MaxTokens) entries per phase and shape.
func (db *CostDB) LLMCycles(phase Phase, batch, seq, nm, nv int) (float64, error) {
	if phase != PhasePrefill && phase != PhaseDecode {
		return 0, fmt.Errorf("serve: LLM cost query with phase %v", phase)
	}
	if batch < 1 || seq < 1 || nm < 1 || nv < 1 {
		return 0, fmt.Errorf("serve: bad LLM cost query %v/%d/%d on %dME+%dVE", phase, batch, seq, nm, nv)
	}
	key := costKey{model: llmModel, phase: phase,
		batch: padShape(batch, fineBatchMax), seq: padShape(seq, fineSeqMax), nm: nm, nv: nv}
	return db.cycles(key)
}

// LLMChunkCycles prices one chunked-prefill invocation: `chunk` new
// tokens per sequence attending over `ctxBefore` already-cached tokens
// (plus the chunk itself). ctxBefore = 0 degenerates to LLMCycles'
// whole-prompt prefill and shares its cache entries. All three shape
// dimensions pad to power-of-two buckets.
func (db *CostDB) LLMChunkCycles(batch, chunk, ctxBefore, nm, nv int) (float64, error) {
	if batch < 1 || chunk < 1 || ctxBefore < 0 || nm < 1 || nv < 1 {
		return 0, fmt.Errorf("serve: bad chunk cost query %d/%d+%d on %dME+%dVE", batch, chunk, ctxBefore, nm, nv)
	}
	if ctxBefore == 0 {
		return db.LLMCycles(PhasePrefill, batch, chunk, nm, nv)
	}
	key := costKey{model: llmModel, phase: PhasePrefill, batch: padShape(batch, fineBatchMax),
		seq: padShape(chunk, fineSeqMax), ctx: padShape(ctxBefore, fineSeqMax), nm: nm, nv: nv}
	return db.cycles(key)
}

// padPow4 returns the power-of-four bucket covering n (0 stays 0) —
// the coarse grid capped lookups fall back to: half the buckets per
// dimension, idempotent, and a pure function of n.
func padPow4(n int) int {
	if n <= 0 {
		return 0
	}
	p := 1
	for p < n {
		p <<= 2
	}
	return p
}

// cycles resolves one key through the single-flight cache, degrading
// gracefully at the entry cap: an overflow key measures without
// caching — the identical value the cache would have held, since
// measurement is a pure function of the key — so the cap bounds
// memory, never results.
func (db *CostDB) cycles(key costKey) (float64, error) {
	db.mu.Lock()
	e, ok := db.entries[key]
	if !ok {
		if db.maxEntries <= 0 || len(db.entries) < db.maxEntries {
			e = &costEntry{}
			db.entries[key] = e
		} else {
			db.mu.Unlock()
			if db.onMeasure != nil {
				db.onMeasure(key)
			}
			return db.measure(key)
		}
	}
	db.mu.Unlock()
	e.once.Do(func() {
		if db.onMeasure != nil {
			db.onMeasure(key)
		}
		e.cycles, e.err = db.measure(key)
	})
	return e.cycles, e.err
}

// measure runs the solo fluid simulation behind one cache entry.
func (db *CostDB) measure(key costKey) (float64, error) {
	var g *compiler.Graph
	var err error
	switch key.phase {
	case PhasePrefill:
		if key.ctx > 0 {
			g = model.LLMPrefillChunk(key.batch, key.seq, key.ctx)
		} else {
			g = model.LLMPrefill(key.batch, key.seq)
		}
	case PhaseDecode:
		g = model.LLMDecode(key.batch, key.seq)
	default:
		g, err = model.Build(key.model, key.batch)
	}
	if err != nil {
		return 0, err
	}
	// The vNPU sees its own engines and its proportional bandwidth slice.
	frac := float64(key.nm+key.nv) / float64(db.core.MEs+db.core.VEs)
	if frac > 1 {
		frac = 1
	}
	sub := db.core.WithEUs(key.nm, key.nv).WithHBMBandwidth(db.core.HBMBwBytes * frac)
	comp, err := compiler.New(sub)
	if err != nil {
		return 0, err
	}
	cg, err := comp.Compile(g, compiler.ISANeu)
	if err != nil {
		return 0, err
	}
	res, err := sched.Run(
		sched.Config{Core: sub, Policy: sched.NeuNH, Requests: 1},
		[]sched.TenantSpec{{Name: key.model, Graph: cg, MEs: key.nm, VEs: key.nv}})
	if err != nil {
		return 0, fmt.Errorf("serve: costing %s/%d on %dME+%dVE: %w", key.model, key.batch, key.nm, key.nv, err)
	}
	return res.Tenants[0].MeanLatency, nil
}
