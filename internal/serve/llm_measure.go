package serve

// preMeasureLLM warms every phase-cost bucket this tenant can be asked
// for on an nm×nv slot, so launches never fail and measurement stays
// off the serving hot path (the LLM analogue of the whole-model
// pre-measurement in spawnReplica).
func (f *fleet) preMeasureLLM(t *tenantState, nm, nv int) error {
	tr := t.cfg.LLM.Trace
	maxCtx := PadBatch(tr.MaxTokens())
	pMin, pMax := PadBatch(tr.PromptMin), PadBatch(tr.MaxPrompt())
	chunk := 0
	if d := t.disagg(); d != nil && d.ChunkTokens > 0 {
		// Chunked prefill invocations process anywhere from one token (a
		// short final chunk) up to the chunk size, each possibly behind
		// cached context up to the longest prompt.
		chunk = d.ChunkTokens
		pMin = 1
		if c := PadBatch(chunk); c < pMax {
			pMax = c
		}
	}
	paged := t.cfg.LLM.KVPolicy == KVPaged
	if paged {
		// Prefix hits shrink prefill chunks down to a single token.
		pMin = 1
	}
	bDec := PadBatch(t.cfg.MaxBatch)
	if d := t.disagg(); d != nil && PadBatch(d.DecodeBatch) > bDec {
		// Decode slots batch wider than the prefill width.
		bDec = PadBatch(d.DecodeBatch)
	}
	for b := 1; b <= PadBatch(t.cfg.MaxBatch); b <<= 1 {
		for p := pMin; p <= pMax; p <<= 1 {
			if _, err := f.costs.LLMCycles(PhasePrefill, b, p, nm, nv); err != nil {
				return err
			}
			if chunk > 0 {
				// Context sits at chunk-boundary multiples; its padded
				// buckets run from the chunk bucket to the prompt bound.
				for c := PadBatch(chunk); c <= PadBatch(tr.MaxPrompt()); c <<= 1 {
					if _, err := f.costs.LLMChunkCycles(b, p, c, nm, nv); err != nil {
						return err
					}
				}
			}
			if paged {
				// Cached context behind a hit suffix sits at block
				// multiples; its padded buckets run from the block bucket
				// to the prompt bound. (A cold miss is ctx 0 — the plain
				// prefill entry above.)
				for c := PadBatch(t.cfg.LLM.BlockTokens); c <= PadBatch(tr.MaxPrompt()); c <<= 1 {
					if _, err := f.costs.LLMChunkCycles(b, p, c, nm, nv); err != nil {
						return err
					}
				}
			}
		}
	}
	for b := 1; b <= bDec; b <<= 1 {
		for c := PadBatch(tr.PromptMin + 1); c <= maxCtx; c <<= 1 {
			if _, err := f.costs.LLMCycles(PhaseDecode, b, c, nm, nv); err != nil {
				return err
			}
		}
	}
	return nil
}
