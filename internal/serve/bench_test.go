package serve

import (
	"testing"

	"neu10/internal/arch"
	"neu10/internal/sim"
	"neu10/internal/workload"
)

// The dispatch hot path is the price every wakeup pays now that policy
// lives behind the batcher interface: bestWork asks each queue's
// batcher for a proposal and ranks them. These benchmarks pin that
// cost — BenchmarkBestWork isolates the decision itself on populated
// slots, BenchmarkDispatchChain measures a whole dispatch-heavy run —
// so an interface-dispatch regression shows up as a number, not a
// hunch.

// benchFleet builds (without running) a fleet exercising both decision
// shapes: four dynamic tenants of mixed priority pooling their slots,
// plus a private continuous-batching LLM tenant.
func benchFleet(b *testing.B) *fleet {
	b.Helper()
	cfg := Config{
		Scenario:    "bench",
		Core:        arch.TPUv4Like(),
		Cores:       6,
		DurationSec: 0.02,
		Seed:        1,
		Preempt:     true,
		Tenants: []TenantConfig{
			{Name: "i0", Model: "MNIST", Load: 1, EUs: 2, Priority: Interactive, ShareGroup: "pool"},
			{Name: "b0", Model: "DLRM", Load: 1, EUs: 2, ShareGroup: "pool"},
			{Name: "b1", Model: "NCF", Load: 1, EUs: 2, ShareGroup: "pool"},
			{Name: "b2", Model: "MNIST", Load: 1, EUs: 2, ShareGroup: "pool"},
			{Name: "llm", Model: "LLaMA", Load: 0.5, EUs: 2, MaxBatch: 4,
				LLM: &LLMConfig{Trace: workload.LLMTrace{PromptMean: 128, OutputMean: 32}}},
		},
	}
	f, err := newFleet(cfg, NewCostDB(cfg.Core))
	if err != nil {
		b.Fatal(err)
	}
	return f
}

// BenchmarkBestWork measures one launch decision on a pooled slot with
// four competing queues (priority ranking active) and on an LLM slot
// with queued admissions plus a live running set — the two next()
// shapes every wakeup pays for.
func BenchmarkBestWork(b *testing.B) {
	f := benchFleet(b)
	pool := f.tenants[0].replicas[0]
	for i := range pool.qs {
		q := &pool.qs[i]
		for k := 0; k < 8; k++ {
			q.reqs = append(q.reqs, request{at: sim.Time(i*8 + k), id: int64(k + 1)})
		}
	}
	llm := f.tenants[4]
	lr := llm.replicas[0]
	lq := lr.queueFor(llm)
	for k := 0; k < 4; k++ {
		lq.reqs = append(lq.reqs, request{at: sim.Time(k), id: int64(k + 1), prompt: 128, output: 32})
		lq.running = append(lq.running, &llmSeq{
			req:       request{at: sim.Time(k), id: int64(k + 5), prompt: 128, output: 32},
			prefilled: true, ctx: 130, produced: 2,
		})
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if q, _ := f.bestWork(pool); q == nil {
			b.Fatal("pooled slot proposed no work")
		}
		if q, _ := f.bestWork(lr); q == nil {
			b.Fatal("LLM slot proposed no work")
		}
	}
}

// BenchmarkDispatchChain runs the full arrival→poke→bestWork→launch→
// finish chain end to end: a preemptive shared-pool scenario whose
// every completion re-enters the dispatcher.
func BenchmarkDispatchChain(b *testing.B) {
	cfg := benchFleet(b).cfg
	db := NewCostDB(cfg.Core)
	if _, err := Run(cfg, db); err != nil { // warm the cost DB once
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(cfg, db); err != nil {
			b.Fatal(err)
		}
	}
}
