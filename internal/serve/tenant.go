package serve

import (
	"math"

	"neu10/internal/compiler"
	"neu10/internal/core"
	"neu10/internal/metrics"
	"neu10/internal/sim"
	"neu10/internal/workload"
)

// ---- runtime state ----

// request is one queued inference request: its arrival time plus, for
// LLM tenants, the autoregressive shape drawn at arrival (zero for
// single-shot tenants).
type request struct {
	at     sim.Time
	prompt int
	output int

	// id is the tenant-scoped arrival ordinal (1-based), the key trace
	// lifecycle events pair on. Replays keep their original id, so a
	// crash-requeued request's whole story lands on one trace row.
	id int64

	// Session-trace prefix chain (workload.DrawSession): the sealed
	// segments this prompt starts with, and the key the request's own
	// tokens seal under at completion. The paged backend's radix cache
	// matches and pins on these; the reserve backend ignores them.
	prefix  []workload.PrefixSeg
	sealKey uint64

	// Crash-replay provenance (see fault.go): a replayed request keeps
	// its ORIGINAL arrival time — the crash penalty lands on the SLO —
	// with any generated prefix folded into prompt/output. hadTok marks
	// a replay whose first token was already delivered before the crash,
	// so the TTFT recorder is not fed twice. crashed distinguishes a
	// crash replay from an eviction replay for the attribution ledger
	// (replay alone is set by both paths).
	replay  bool
	hadTok  bool
	crashed bool
}

// slotQueue is one tenant's wait queue on a replica slot. Private
// replicas have exactly one (the owner's); temporal-shared slots carry
// one per share-group member, in tenant-index order. For LLM tenants it
// also holds the running set: admitted sequences mid-generation, whose
// KV reservations live on this slot until they complete.
type slotQueue struct {
	ten     *tenantState
	reqs    []request
	running []*llmSeq
}

// batchKind distinguishes what one slot invocation does.
type batchKind uint8

const (
	// kindInvoke is a whole-model batched inference (the single-shot path).
	kindInvoke batchKind = iota
	// kindLLMPrefill processes the prompts of newly admitted sequences
	// (continuous batching's join step).
	kindLLMPrefill
	// kindLLMDecode is one decode iteration over the running set.
	kindLLMDecode
	// kindLLMStaticPrefill is a static batch's prefill leg; its decode
	// leg chains at completion.
	kindLLMStaticPrefill
	// kindLLMStaticDecode is a static batch's monolithic decode-to-the-
	// longest-output leg.
	kindLLMStaticDecode
)

// batch is one batched invocation bound to a slot: in service, or
// suspended mid-service by a preemption. total and remaining partition
// its pure service cycles exactly (work conservation); restore is the
// context-switch debt paid at the start of the next segment. Single-
// shot invocations carry their requests in reqs; LLM invocations carry
// the sequences they advance in seqs.
type batch struct {
	ten  *tenantState
	kind batchKind
	reqs []request
	seqs []*llmSeq
	// chunks, parallel to seqs, holds the prompt tokens each sequence
	// advances in a disaggregated (possibly chunked) prefill invocation.
	chunks []int

	total     float64 // pure service cycles (CostDB, fixed at launch)
	remaining float64 // service cycles still owed
	restore   float64 // switch cycles to pay before service (re)starts

	started  sim.Time   // start of the current segment
	doneH    sim.Handle // scheduled completion of the current segment
	preempts int        // preemptions + priority bypasses suffered (stats)

	// Aging credit: victimWait accrues the cycles this batch has spent
	// suspended (waiting covers the open interval since waitFrom). Once
	// it exhausts the fleet's preemptBudget the batch is immune to
	// further preemption and bypass — the wait-denominated
	// anti-starvation bound (see Config.MaxPreemptsPerBatch).
	victimWait float64
	waiting    bool
	waitFrom   sim.Time
}

// replica is one mapped vNPU slot. It is owned (spawned, drained,
// retired) by one tenant's autoscaler, but when that tenant is in a
// share group the slot serves every group member.
type replica struct {
	id  int // owner-tenant spawn ordinal (display)
	uid int // fleet-unique spawn ordinal: global age for tie-breaks

	ten    *tenantState
	vnpu   *core.VNPU
	nm, nv int
	eus    int  // EU budget this replica was allocated at
	role   Role // RoleMixed unless the owner is disaggregated

	qs   []slotQueue // admitted, waiting; one queue per serving tenant
	cur  *batch      // the batch currently in service
	susp []*batch    // preempted batches awaiting resume (LIFO)

	// kv is the KV-cache backend of this slot's vNPU memory partition
	// (full-reservation accountant or paged, per LLMConfig.KVPolicy);
	// non-nil iff an LLM tenant is served here.
	kv kvBackend
	// inbound counts KV migrations in flight TOWARD this decode slot:
	// their reservations are already charged to kv, and a slot with
	// inbound work is not idle (it must not retire under a transfer).
	inbound int

	timerSet   bool
	timer      sim.Handle
	timerAt    sim.Time // armed batch-window deadline
	preemptSet bool
	preemptH   sim.Handle
	draining   bool
	retired    bool

	busyEUCycles float64 // Σ occupied-cycles × (nm+nv), incl. switch overhead
}

// queueFor returns t's wait queue on this slot (nil when t is not
// served here).
func (r *replica) queueFor(t *tenantState) *slotQueue {
	for i := range r.qs {
		if r.qs[i].ten == t {
			return &r.qs[i]
		}
	}
	return nil
}

// queued counts waiting requests across the slot's queues.
func (r *replica) queued() int {
	n := 0
	for i := range r.qs {
		n += len(r.qs[i].reqs)
	}
	return n
}

// inService counts requests bound to the slot: the running batch plus
// every suspended one, plus every LLM sequence mid-generation (LLM
// batches reference sequences already counted in their running sets, so
// only single-shot batches add their requests here).
func (r *replica) inService() int {
	n := 0
	if r.cur != nil && r.cur.kind == kindInvoke {
		n += len(r.cur.reqs)
	}
	for _, b := range r.susp {
		if b.kind == kindInvoke {
			n += len(b.reqs)
		}
	}
	for i := range r.qs {
		n += len(r.qs[i].running)
	}
	return n
}

// backlog is the router's load signal: queued plus in-service requests.
func (r *replica) backlog() int { return r.queued() + r.inService() }

// idleEmpty reports whether the slot holds no work at all — the retire
// condition for a draining slot. An in-flight migration counts as work
// on both ends: the source still owns the sequence (and its prompt KV)
// until the last byte lands, the target has the reservation charged.
func (r *replica) idleEmpty() bool {
	if r.cur != nil || len(r.susp) > 0 || r.queued() > 0 || r.inbound > 0 {
		return false
	}
	for i := range r.qs {
		if len(r.qs[i].running) > 0 {
			return false
		}
	}
	return true
}

// tenantState is the runtime of one tenant.
type tenantState struct {
	cfg TenantConfig
	idx int

	// batcher is the tenant's scheduling/batching policy (batcher.go):
	// dynamicBatch, continuousLLM, or the disaggBatcher decorator. Bound
	// once in newFleet phase 1, before any slot exists.
	batcher batcher

	profile   compiler.Profile
	footprint int64

	curEUs       int     // current per-replica EU budget (autoscaler-adjusted)
	sloCycles    float64 // per-request latency objective
	batchWindow  float64 // coalescing wait, cycles
	basePerCycle float64 // base arrival rate, requests per cycle
	peakMult     float64 // max of the rate envelope (thinning bound)
	capacityRPS  float64 // one initial replica's max-batch throughput

	// Disaggregated pools autoscale against per-phase objectives derived
	// from the same anchors as sloCycles: the prefill pool against its
	// queue delay (prefillSLO = SLOFactor × mean-shape prefill cost) and
	// the decode pool against TPOT (tpotSLO = SLOFactor × mean-context
	// decode-iteration cost). Zero for non-disaggregated tenants.
	prefillSLO float64
	tpotSLO    float64

	arrRNG   *sim.RNG // arrival gaps + thinning coin
	routeRNG *sim.RNG // power-of-two sampling

	// llm is the autoregressive runtime (request-shape RNG, TTFT/TPOT
	// recorders, KV stall counters); nil for single-shot tenants.
	llm *llmTenant
	// kvPaged mirrors cfg.LLM.KVPolicy == KVPaged (bound in newFleet):
	// the batcher's hot-path switch between full-reservation scheduling
	// and the paged decode path (paged.go).
	kvPaged bool

	// peers are the share-group members this tenant pools slots with,
	// in tenant-index order, always including the tenant itself. An
	// ungrouped tenant's peers are just {itself}.
	peers []*tenantState

	replicas      []*replica // active + draining (retired ones removed)
	nextReplicaID int

	// metrics
	lat            metrics.Latencies // all completed requests, cycles
	windowLat      metrics.Latencies // since the last autoscale decision
	arrivals       int
	rejected       int
	completed      int
	windowRejected int
	maxQueue       int
	peakReplicas   int
	prefPeak       int // peak prefill-pool size (disaggregated tenants)
	decPeak        int // peak decode-pool size
	scaleUps       int
	scaleDowns     int
	resizes        int
	scaleFails     int
	replicaTL      *metrics.TimeSeries

	// preemption accounting
	preempted      int     // this tenant's batches suspended mid-service
	preemptsIssued int     // preemptions its batches triggered on others
	resumes        int     // suspended batches resumed
	stolenCycles   float64 // switch overhead charged against its batches
	maxPreempts    int     // worst preempt+bypass count on a single batch
	maxVictimWait  float64 // worst accrued victimization wait, cycles (credit ledger)

	// work-conservation ledger (tests): service cycles priced at launch
	// versus service cycles actually delivered across all segments.
	issuedServiceCycles float64
	servedServiceCycles float64

	// KV occupancy folded from this tenant's replicas (retired ones at
	// retire time, live ones at report time): ∫used dt, ∫total dt, and
	// the worst instantaneous occupancy fraction any replica hit.
	kvUsedArea  float64
	kvBlockArea float64
	kvPeakFrac  float64
	// kvAgg accumulates the policy-specific backend counters (eviction
	// and prefix-cache traffic) folded alongside the occupancy areas;
	// reported only when the tenant sets an explicit KVPolicy.
	kvAgg KVStats

	// Fault/recovery accounting (see fault.go; all zero fault-free).
	crashes         int   // replicas lost to fault events
	crashRequeued   int   // harvested requests re-queued to survivors
	crashLost       int   // harvested requests lost (policy or no room)
	replays         int   // partially-generated sequences replayed
	recomputeTokens int64 // Σ resident KV tokens lost to crashes
	emergencySpawns int   // crash-triggered replacement spawns
	crashAt         float64
	preFaultActive  int     // active replicas at the first crash
	recoveredAt     float64 // first instant active count regained preFaultActive
	fwArrivals      int     // arrivals inside the fault window
	fwSloOK         int     // ...of which finished within the SLO
}

// foldKV accrues one replica backend's occupancy into the tenant's
// report accumulators. The leading accrue finalizes the occupancy
// integral up to the fold instant, so every discard path — graceful
// retire, crash teardown, end-of-run report — reports an exact mean
// even when the backend saw no ledger traffic since its last event.
// Called exactly once per replica lifetime (the replica leaves
// t.replicas on retire/destroy), which is what makes the additive
// addStats fold exact.
func (t *tenantState) foldKV(a kvBackend, now float64) {
	a.accrue(now)
	t.kvUsedArea += a.area()
	t.kvBlockArea += float64(a.total()) * (now - a.bornAt())
	if a.total() > 0 {
		if fr := float64(a.peak()) / float64(a.total()); fr > t.kvPeakFrac {
			t.kvPeakFrac = fr
		}
	}
	a.addStats(&t.kvAgg)
}

// rateMult evaluates the deterministic rate envelope at time t (cycles).
func (t *tenantState) rateMult(at, durCycles float64) float64 {
	switch t.cfg.Arrival {
	case Flash:
		frac := at / durCycles
		if frac >= t.cfg.BurstStart && frac < t.cfg.BurstEnd {
			return t.cfg.BurstFactor
		}
		return 1
	case Diurnal:
		period := t.cfg.DiurnalPeriod * durCycles
		return 1 + t.cfg.DiurnalDepth*math.Sin(2*math.Pi*at/period+t.cfg.DiurnalPhase)
	default:
		return 1
	}
}

func (t *tenantState) activeCount() int {
	n := 0
	for _, r := range t.replicas {
		if !r.draining {
			n++
		}
	}
	return n
}

// disagg returns the tenant's disaggregation config (nil when the
// tenant is colocated or not an LLM).
func (t *tenantState) disagg() *DisaggConfig {
	if t.cfg.LLM == nil {
		return nil
	}
	return t.cfg.LLM.Disagg
}

// activeRole counts non-draining replicas of one role.
func (t *tenantState) activeRole(role Role) int {
	n := 0
	for _, r := range t.replicas {
		if !r.draining && r.role == role {
			n++
		}
	}
	return n
}
