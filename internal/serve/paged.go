package serve

import (
	"fmt"

	"neu10/internal/model"
	"neu10/internal/obs"
	"neu10/internal/sim"
)

// Paged decode scheduling (the policy half of kv_paged.go): block
// grants at iteration launch, youngest-first sequence eviction under
// pressure, and the swap-out/swap-in pipeline over the host link.
//
// The contract with the slot machinery is the same as every batcher
// arm's: next() (via pagedDecodeReady) only proposes a decode the
// launch can actually run, and both run inside one event, so the
// predicate's view cannot go stale before the grants happen.

// pagedDecodeReady reports whether a paged decode iteration can launch:
// there is a decodable resident sequence (prefilled, not frozen by a
// swap or evacuation, output unfinished) AND the iteration can make
// progress — some candidate already has room for its next token, or a
// block can be granted (free or reclaimable-cold), or there are at
// least two candidates so the launch can evict the youngest to feed the
// oldest. A lone candidate with no grantable block cannot help itself
// by eviction, so the slot waits for a completion or swap landing.
func pagedDecodeReady(r *replica, q *slotQueue) (sim.Time, bool) {
	p, ok := r.kv.(*pagedKV)
	if !ok {
		return 0, false
	}
	var at sim.Time
	cands, allNeed := 0, true
	for _, s := range q.running {
		if !s.prefilled || s.migrating || s.swapped || s.produced >= s.req.output {
			continue
		}
		if cands == 0 {
			at = s.req.at // FIFO key: the oldest decodable sequence's arrival
		}
		cands++
		if !p.needsBlock(s) {
			allNeed = false
		}
	}
	if cands == 0 {
		return 0, false
	}
	if !allNeed || p.avail() >= 1 || cands >= 2 {
		return at, true
	}
	return 0, false
}

// launchPagedDecode starts one decode iteration under block-on-demand
// allocation. Sequences needing a block for the token this iteration
// produces are granted one; if demand exceeds what is free plus cold,
// the YOUNGEST sequences evict (vLLM's preemption order — they lose the
// least work and the oldest finish soonest) until demand fits or one
// sequence remains. Any still-ungrantable sequence just sits this
// iteration out.
func (c *continuousLLM) launchPagedDecode(r *replica, q *slotQueue, now sim.Time, restore float64) {
	f, t := c.f, q.ten
	p := r.kv.(*pagedKV)
	var live []*llmSeq
	for _, s := range q.running {
		if s.prefilled && !s.migrating && !s.swapped && s.produced < s.req.output {
			live = append(live, s)
		}
	}
	need := 0
	for _, s := range live {
		if p.needsBlock(s) {
			need++
		}
	}
	for need > p.avail() && len(live) > 1 {
		victim := live[len(live)-1]
		live = live[:len(live)-1]
		if p.needsBlock(victim) {
			need--
		}
		f.evictSeq(r, q, victim, now)
	}
	b := f.takeBatch()
	b.ten, b.restore, b.kind = t, restore, kindLLMDecode
	maxCtx := 0
	for _, s := range live {
		if p.needsBlock(s) {
			if p.avail() < 1 {
				continue // skipped this iteration; retried at the next
			}
			p.extendSeq(s, float64(now))
		}
		b.seqs = append(b.seqs, s)
		if s.ctx > maxCtx {
			maxCtx = s.ctx
		}
	}
	if len(b.seqs) == 0 {
		panic("serve: paged decode launch granted no sequence")
	}
	f.ledSeqs(t, b.seqs, obs.SegDecode, now)
	cycles, err := f.costs.LLMCycles(PhaseDecode, len(b.seqs), maxCtx, r.nm, r.nv)
	if err != nil {
		panic(fmt.Sprintf("serve: costing paged decode iteration: %v", err))
	}
	b.total, b.remaining = cycles, cycles
	t.issuedServiceCycles += cycles
	f.startSegment(r, b, now)
}

// evictSeq removes one victim from the decode set per the tenant's
// eviction policy: recompute drops its device state and replays it
// through admission (crash-replay style, prefix cache softening the
// re-prefill), swap freezes it in place and ships its KV to host
// memory.
func (f *fleet) evictSeq(r *replica, q *slotQueue, s *llmSeq, now sim.Time) {
	t := q.ten
	p := r.kv.(*pagedKV)
	p.evictions++
	if p.evict == KVEvictSwap {
		f.swapOut(p, r, s, now)
		return
	}
	p.evictRecompute++
	p.recomputeTokens += int64(s.ctx - s.hit)
	p.unpin(s)
	if s.blocks > 0 {
		p.a.free(s.blocks, float64(now))
		s.blocks = 0
	}
	p.curSeqs--
	q.removeRunning(s)
	// Replay with the original arrival — the eviction penalty lands on
	// the SLO — and the generated prefix folded into the prompt, exactly
	// the crash-replay shape (crashSeqOutcome). Requeued at the FRONT:
	// the victim re-admits before newer arrivals, vLLM's preemption
	// re-entry order, which also keeps it from starving.
	req := s.req
	req.replay = true
	req.hadTok = true
	req.prompt = s.req.prompt + s.produced
	req.output = s.req.output - s.produced
	q.reqs = append(q.reqs, request{})
	copy(q.reqs[1:], q.reqs)
	q.reqs[0] = req
	f.led.ReqSeg(t.cfg.Name, req.id, obs.SegQueue, float64(now))
	if f.obs != nil {
		f.obs.trace.End("decode", "req", t.cfg.Name, float64(now), s.req.id)
		f.obs.trace.Begin("queue", "req", t.cfg.Name, float64(now), req.id)
		f.obs.trace.Instant("kv-evict", "sched", t.cfg.Name, obsReplicaTrack(r), float64(now), s.req.id,
			"lost_tokens", int64(s.ctx-s.hit), "mode", KVEvictRecompute)
	}
}

// swapOut freezes a victim in its running set and ships its whole
// context to host memory. Its device blocks and prefix pins release
// IMMEDIATELY — the copy-out drains asynchronously while the scheduler
// reuses the pages — so a swapped sequence holds nothing on the chip,
// which is what makes the eviction loop's progress guarantee
// unconditional. The price: the return restores the full context as
// private blocks (no cache credit), and admission backpressures until
// the swap queue drains.
func (f *fleet) swapOut(p *pagedKV, r *replica, s *llmSeq, now sim.Time) {
	t := p.t
	p.evictSwap++
	p.unpin(s)
	if s.blocks > 0 {
		p.a.free(s.blocks, float64(now))
		s.blocks = 0
	}
	s.hit = 0
	s.swapped, s.swapReady = true, false
	p.curSeqs--
	f.led.ReqSeg(t.cfg.Name, s.req.id, obs.SegSwapOut, float64(now))
	bytes := model.LLMKVTransferBytes(s.ctx)
	p.swapOutBytes += bytes
	fl := &swapFlight{seq: s, out: true}
	fl.xfr = p.hostLink.Start(bytes, func(at sim.Time) {
		p.dropFlight(fl)
		s.swapReady = true
		f.led.ReqSeg(t.cfg.Name, s.req.id, obs.SegSwapQ, float64(at))
		f.drainSwaps(r, at)
	})
	p.flights = append(p.flights, fl)
	p.swapQ = append(p.swapQ, s)
	if f.obs != nil {
		f.obs.trace.Instant("swap-out", "sched", t.cfg.Name, obsReplicaTrack(r), float64(now), s.req.id,
			"bytes", bytes, "mode", KVEvictSwap)
	}
}

// drainSwaps restores swapped sequences FIFO: the head returns once its
// outbound copy landed in host memory and its full context fits on the
// device again. Called when blocks free (completeSeq) and when an
// outbound copy lands; head-of-line order keeps the pipeline
// deterministic and starvation-free.
func (f *fleet) drainSwaps(r *replica, now sim.Time) {
	p, ok := r.kv.(*pagedKV)
	if !ok || r.retired {
		return
	}
	for len(p.swapQ) > 0 {
		s := p.swapQ[0]
		if !s.swapReady {
			return
		}
		blocks := p.a.blocksFor(s.ctx)
		if !p.canAlloc(blocks) {
			return
		}
		p.swapQ = p.swapQ[1:]
		p.ensureFree(blocks, float64(now))
		p.a.alloc(blocks, float64(now))
		s.blocks = blocks
		s.swapReady = false
		f.led.ReqSeg(p.t.cfg.Name, s.req.id, obs.SegSwapIn, float64(now))
		bytes := model.LLMKVTransferBytes(s.ctx)
		p.swapInBytes += bytes
		fl := &swapFlight{seq: s}
		fl.xfr = p.hostLink.Start(bytes, func(at sim.Time) {
			p.dropFlight(fl)
			f.swapInLanded(r, s, at)
		})
		p.flights = append(p.flights, fl)
	}
}

// swapInLanded unfreezes a restored sequence and wakes the slot: the
// sequence decodes again from exactly where it stopped (swap never
// replays tokens — that is recompute's trade).
func (f *fleet) swapInLanded(r *replica, s *llmSeq, now sim.Time) {
	p := r.kv.(*pagedKV)
	s.swapped = false
	p.curSeqs++
	if p.curSeqs > p.peakSeqs {
		p.peakSeqs = p.curSeqs
	}
	f.led.ReqSeg(p.t.cfg.Name, s.req.id, obs.SegDecodeGap, float64(now))
	if f.obs != nil {
		f.obs.trace.Instant("swap-in", "sched", p.t.cfg.Name, obsReplicaTrack(r), float64(now), s.req.id,
			"bytes", model.LLMKVTransferBytes(s.ctx), "mode", KVEvictSwap)
	}
	f.dispatch(r, now)
}
