package serve

import (
	"testing"

	"neu10/internal/arch"
)

// The batcher interface promises that the slot machinery composes with
// ANY policy: priority preemption and fault-crash harvesting live in
// slot.go/recovery.go and must work for a plain dynamicBatch tenant
// exactly as they do for the LLM policies they were first built
// around. These tests pin that composition on non-LLM tenants.

// TestBatcherBinding checks newFleet binds the policy matching each
// tenant's config.
func TestBatcherBinding(t *testing.T) {
	cfg := fastConfig(1)
	f, err := newFleet(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, ts := range f.tenants {
		if _, ok := ts.batcher.(*dynamicBatch); !ok {
			t.Errorf("tenant %s: batcher %T, want *dynamicBatch", ts.cfg.Name, ts.batcher)
		}
		if !ts.batcher.coalesces() {
			t.Errorf("tenant %s: dynamic batcher must coalesce behind the batch window", ts.cfg.Name)
		}
	}
}

// sharedPoolConfig overloads a preemptive temporal-shared pool of two
// dynamic-batch tenants — an interactive one and a batch one — so the
// interactive tenant's work has to preempt in-flight batch work.
func sharedPoolConfig(seed uint64) Config {
	return Config{
		Scenario:    "batcher-test",
		Core:        arch.TPUv4Like(),
		Cores:       2,
		DurationSec: 0.02,
		Seed:        seed,
		Preempt:     true,
		Tenants: []TenantConfig{
			{Name: "inter", Model: "MNIST", Load: 1.2, EUs: 2, MaxBatch: 4, QueueCap: 16,
				Priority: Interactive, ShareGroup: "pool", InitialReplicas: 1},
			{Name: "batch", Model: "DLRM", Load: 1.5, EUs: 2, MaxBatch: 8, QueueCap: 32,
				ShareGroup: "pool", InitialReplicas: 1},
		},
	}
}

// TestPreemptionComposesWithDynamicBatch: priority preemption on a
// shared slot must fire for dynamic-batch tenants routed through the
// batcher interface, with the work-conservation ledger intact — every
// offered request still ends rejected or completed, and preempted
// batches resume.
func TestPreemptionComposesWithDynamicBatch(t *testing.T) {
	preempted := false
	for seed := uint64(1); seed <= 4; seed++ {
		rep, err := Run(sharedPoolConfig(seed), nil)
		if err != nil {
			t.Fatal(err)
		}
		var batchTR *TenantReport
		for i := range rep.Tenants {
			tr := &rep.Tenants[i]
			if tr.Arrivals != tr.Rejected+tr.Completed {
				t.Errorf("seed %d tenant %s: %d arrivals ≠ %d rejected + %d completed",
					seed, tr.Name, tr.Arrivals, tr.Rejected, tr.Completed)
			}
			if tr.Name == "batch" {
				batchTR = tr
			}
		}
		if batchTR.Preemptions > 0 {
			preempted = true
			if batchTR.Resumes != batchTR.Preemptions {
				t.Errorf("seed %d: %d preemptions but %d resumes — a suspended dynamic batch was dropped",
					seed, batchTR.Preemptions, batchTR.Resumes)
			}
			if batchTR.StolenMs <= 0 {
				t.Errorf("seed %d: preemptions charged no switch overhead", seed)
			}
		}
	}
	if !preempted {
		t.Error("no seed preempted the batch tenant — the scenario does not exercise preemption")
	}
}

// TestCrashHarvestComposesWithDynamicBatch: crashing a dynamic-batch
// tenant's replica must harvest its queued and in-flight requests
// through the interface-dispatched slot machinery, keeping the offered
// ledger exact: arrivals = rejected + completed + crash-lost.
func TestCrashHarvestComposesWithDynamicBatch(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		cfg := fastConfig(seed)
		cfg.Autoscale = false
		cfg.Tenants[0].InitialReplicas = 2
		cfg.Tenants[0].MaxReplicas = 2
		cfg.Faults = &FaultPlan{Events: []FaultEvent{
			{Kind: FaultCrashReplica, Tenant: "a", AtFrac: 0.4},
		}}
		rep, err := Run(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		tr := rep.Tenants[0]
		if tr.Crashes != 1 {
			t.Fatalf("seed %d: %d crashes recorded, want 1", seed, tr.Crashes)
		}
		if tr.Arrivals != tr.Rejected+tr.Completed+tr.CrashLost {
			t.Errorf("seed %d: %d arrivals ≠ %d rejected + %d completed + %d crash-lost",
				seed, tr.Arrivals, tr.Rejected, tr.Completed, tr.CrashLost)
		}
		if tr.CrashRequeued == 0 && tr.CrashLost == 0 {
			t.Errorf("seed %d: crash harvested nothing — victim idle at injection, scenario too calm", seed)
		}
		// The untouched tenant's ledger must not see the fault.
		other := rep.Tenants[1]
		if other.Crashes != 0 || other.CrashLost != 0 {
			t.Errorf("seed %d: fault leaked to tenant %s (%d crashes, %d lost)",
				seed, other.Name, other.Crashes, other.CrashLost)
		}
		if other.Arrivals != other.Rejected+other.Completed {
			t.Errorf("seed %d tenant %s: %d arrivals ≠ %d rejected + %d completed",
				seed, other.Name, other.Arrivals, other.Rejected, other.Completed)
		}
	}
}

// TestPreemptionAndCrashTogether: both composition seams at once — a
// preemptive shared pool whose batch-tenant replica crashes mid-run.
// Suspended batches harvested off the dead slot must re-enter the
// ledger, not leak.
func TestPreemptionAndCrashTogether(t *testing.T) {
	cfg := sharedPoolConfig(3)
	cfg.Faults = &FaultPlan{Events: []FaultEvent{
		{Kind: FaultCrashReplica, Tenant: "batch", AtFrac: 0.5},
	}}
	rep, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, tr := range rep.Tenants {
		if tr.Arrivals != tr.Rejected+tr.Completed+tr.CrashLost {
			t.Errorf("tenant %s: %d arrivals ≠ %d rejected + %d completed + %d crash-lost",
				tr.Name, tr.Arrivals, tr.Rejected, tr.Completed, tr.CrashLost)
		}
	}
	if rep.Tenants[1].Crashes != 1 {
		t.Errorf("batch tenant crashes = %d, want 1", rep.Tenants[1].Crashes)
	}
}
