package serve

import (
	"fmt"

	"neu10/internal/obs"
	"neu10/internal/sim"
)

// The scheduling/batching policy layer. Every tenant owns a batcher —
// the policy object that decides what work the tenant has on a slot,
// composes/costs/starts the invocation, and retires it — while the
// slot machinery (slot.go) stays policy-free: bestWork ranks the
// batchers' proposals, launch/finish dispatch through the interface,
// and priority preemption, autoscaling signals, fault harvesting and
// observability hooks therefore compose with ANY batcher rather than
// special-casing LLM kinds.
//
// Concrete policies:
//
//   - dynamicBatch (this file): the single-shot dense-model path —
//     coalesce queued requests up to MaxBatch behind the batch-window
//     timer, serve the whole batch in one invocation. Vision and
//     recommendation tenants from the model registry serve through it.
//   - continuousLLM (llm.go): autoregressive serving — continuous
//     (per-iteration joins, vLLM-style) or the static baseline, chosen
//     by LLMConfig.Static.
//   - disaggBatcher (disagg.go): a decorator wrapping continuousLLM
//     with role awareness — prefill-pool admission and chunked prompt
//     processing on RolePrefill slots, KV migration over the fabric,
//     decode delegated to the wrapped batcher on RoleDecode slots.

// batcher is one tenant's scheduling/batching policy, bound at fleet
// build (newFleet phase 1). All methods run inside engine events and
// must stay deterministic: next is a pure read, launch/finish mutate
// only through the slot and cost machinery.
type batcher interface {
	// next proposes the launchable work tenant q.ten has on slot r: the
	// batch kind and its FIFO key (the oldest contributing arrival).
	// ok=false means no launchable work on this queue right now.
	// bestWork ranks proposals across the slot's queues by priority
	// (under Preempt) and key.
	next(r *replica, q *slotQueue) (kind batchKind, key sim.Time, ok bool)
	// launch composes, costs (CostDB) and starts one invocation of a
	// kind this batcher proposed, paying `restore` switch cycles first.
	launch(r *replica, q *slotQueue, kind batchKind, now sim.Time, restore float64)
	// finish retires a completed invocation of this batcher and returns
	// a chained follow-up batch to keep the slot occupied, or nil. (The
	// static LLM prefill leg chains its monolithic decode leg; every
	// other policy returns nil.)
	finish(r *replica, b *batch, now sim.Time) *batch
	// coalesces reports whether the policy holds arrivals for the
	// batch-window timer (dynamic batching, static LLM) or wants an
	// idle slot to start work immediately (continuous LLM, disagg) —
	// poke's fast-path switch.
	coalesces() bool
	// passedOver is called once per launch decision for every queue of
	// the slot that was NOT picked, so a policy can account work it has
	// but could not start (the static batcher's KV-pressure stall).
	passedOver(r *replica, q *slotQueue)
	// admitsArrival reports whether slot r accepts this tenant's new
	// arrivals (the disagg policy routes arrivals to prefill slots
	// only; everything else takes any slot).
	admitsArrival(r *replica) bool
}

// newBatcher builds tenant t's policy object from its config.
func newBatcher(f *fleet, t *tenantState) batcher {
	if t.llm == nil {
		return &dynamicBatch{f: f, t: t}
	}
	c := &continuousLLM{f: f, t: t}
	if t.disagg() != nil {
		return &disaggBatcher{f: f, t: t, inner: c}
	}
	return c
}

// dynamicBatch is the single-shot dense-model policy: queued requests
// coalesce behind the batch-window timer and serve as one whole-model
// invocation of up to MaxBatch requests.
type dynamicBatch struct {
	f *fleet
	t *tenantState
}

func (d *dynamicBatch) next(r *replica, q *slotQueue) (batchKind, sim.Time, bool) {
	if len(q.reqs) > 0 {
		return kindInvoke, q.reqs[0].at, true
	}
	return 0, 0, false
}

// launch takes up to MaxBatch requests off queue q and starts the
// batch on slot r, with `restore` switch cycles to pay first (the
// checkpoint save of a just-preempted victim, or zero).
func (d *dynamicBatch) launch(r *replica, q *slotQueue, _ batchKind, now sim.Time, restore float64) {
	f, t := d.f, q.ten
	f.disarmTimer(r)
	n := len(q.reqs)
	if n > t.cfg.MaxBatch {
		n = t.cfg.MaxBatch
	}
	b := f.takeBatch()
	b.ten, b.restore = t, restore
	b.reqs = append(b.reqs[:0], q.reqs[:n]...)
	rest := copy(q.reqs, q.reqs[n:])
	q.reqs = q.reqs[:rest]
	if f.obs != nil {
		for i := range b.reqs {
			f.obs.trace.End("queue", "req", t.cfg.Name, float64(now), b.reqs[i].id)
			f.obs.trace.Begin("service", "req", t.cfg.Name, float64(now), b.reqs[i].id)
		}
	}
	if f.led != nil {
		for i := range b.reqs {
			f.led.ReqSeg(t.cfg.Name, b.reqs[i].id, obs.SegService, float64(now))
		}
	}
	cycles, err := f.costs.ServiceCycles(t.cfg.Model, n, r.nm, r.nv)
	if err != nil {
		// Every group member's model was pre-measured at spawn for this
		// slot shape; a miss here is a bug.
		panic(fmt.Sprintf("serve: costing launched batch: %v", err))
	}
	b.total, b.remaining = cycles, cycles
	t.issuedServiceCycles += cycles
	f.startSegment(r, b, now)
}

// finish records every request's completion latency against the SLO
// and the priority/fault/autoscale accounting.
func (d *dynamicBatch) finish(r *replica, b *batch, now sim.Time) *batch {
	f, t := d.f, b.ten
	for _, req := range b.reqs {
		lat := float64(now - req.at)
		t.lat.Add(lat)
		f.noteFaultDone(t, req.at, lat)
		if f.cfg.Autoscale {
			// The observation window only exists for the autoscaler; a
			// fixed fleet would just duplicate every sample unread.
			t.windowLat.Add(lat)
		}
		if f.prioEnabled {
			f.prioLat[t.cfg.Priority].Add(lat)
		}
		t.completed++
		f.led.ReqDone(t.cfg.Name, req.id, float64(now), 0)
		if f.obs != nil {
			f.obsCompletion(t, lat)
			f.obs.trace.End("service", "req", t.cfg.Name, float64(now), req.id)
			f.obs.trace.Instant("complete", "req", t.cfg.Name, obsTrackControl, float64(now), req.id, "lat_us", int64(lat/f.cfg.Core.FrequencyHz*1e6), "", "")
		}
	}
	return nil
}

func (d *dynamicBatch) coalesces() bool                 { return true }
func (d *dynamicBatch) passedOver(*replica, *slotQueue) {}
func (d *dynamicBatch) admitsArrival(*replica) bool     { return true }
