package serve

import (
	"fmt"

	"neu10/internal/model"
)

// KV-cache accounting for one replica slot's vNPU HBM partition (§III
// memory partitioning): the capacity left in MemSizePerCore after the
// LLM's resident weights, handed out in fixed-size blocks of
// blockTokens tokens — paged-attention-style block granularity, which
// bounds fragmentation to under one block per sequence.
//
// Two backends implement the accounting behind the kvBackend interface,
// selected per tenant via LLMConfig.KVPolicy:
//
//   - "reserve" (the default, kvAccountant below): a sequence reserves
//     its FULL prompt+output footprint at admission, so a running
//     generation can never overcommit mid-flight; its blocks free when
//     it completes. Safe, simple, and exactly the pre-interface
//     behavior — every legacy scenario runs on it byte-identically.
//   - "paged" (pagedKV, kv_paged.go): blocks allocate as decode
//     actually produces tokens, cold sequences evict under pressure
//     (recompute or swap, priced), and a radix-trie prefix cache lets
//     session traffic reuse resident blocks across requests.

// kvBackend abstracts a replica's KV accounting so admission,
// autoscaling, crash recovery and disagg migration work against the
// policy, not the struct. The raw block ledger (blocksFor/fits/alloc/
// free/accrue) keeps the original accountant's method names: the
// migration and evacuation paths charge explicit reservations through
// it and read identically under either backend.
type kvBackend interface {
	// blocksFor returns the block footprint of `tokens` tokens (0 for
	// tokens ≤ 0).
	blocksFor(tokens int) int
	// fits reports whether `blocks` more blocks can be allocated now.
	fits(blocks int) bool
	// alloc charges blocks; the caller must have checked fits
	// (admission is the only gate, so overcommit is a scheduler bug).
	alloc(blocks int, now float64)
	// free returns blocks to the pool.
	free(blocks int, now float64)
	// accrue advances the occupancy integral to now.
	accrue(now float64)

	// Ledger accessors for obs sampling, occupancy folding and the
	// spawn-time capacity floor.
	used() int
	total() int
	peak() int
	bornAt() float64
	area() float64

	// canAdmit reports, side-effect-free, whether the backend would
	// admit this request now — the scheduling predicate next() and the
	// stall accounting read.
	canAdmit(req request) bool
	// admit charges a fresh sequence's admission footprint and fills in
	// its backend bookkeeping (s.blocks, and for the paged backend its
	// prefix-cache pin). The caller constructs s with req and ctx set;
	// false admits nothing and charges nothing.
	admit(s *llmSeq, now float64) bool
	// release retires a completed sequence, returning its blocks (the
	// paged backend first seals reusable prefix blocks into its cache).
	release(s *llmSeq, now float64)
	// needsBlock reports whether the sequence's next decoded token
	// falls outside its allocated blocks (always false under full
	// reservation).
	needsBlock(s *llmSeq) bool
	// extendSeq grants the sequence one more block for the token the
	// next decode iteration will produce (no-op under full reservation;
	// the caller must have ensured room, evicting if necessary).
	extendSeq(s *llmSeq, now float64)
	// teardown drops backend-internal machinery when the replica dies
	// mid-run (cancels in-flight swap transfers); the block ledger
	// itself is folded by the caller.
	teardown(now float64)

	// addStats folds the backend's policy-specific counters into a
	// tenant aggregate. Called exactly once per replica lifetime (at
	// retire, crash teardown, or the final report), so additive fields
	// accumulate exactly.
	addStats(st *KVStats)
}

// KVStats is the stable KV accounting block every consumer — report
// tables, JSON, and internal/obs timelines — reads uniformly. The
// first four fields are the legacy KV section of LLMTenantReport and
// are always populated for LLM tenants; the extended fields are
// populated only when the tenant sets LLMConfig.KVPolicy explicitly,
// so legacy reports marshal byte-identically.
type KVStats struct {
	// KVBlockTokens is the block granularity in tokens.
	KVBlockTokens int `json:"kv_block_tokens"`
	// KVOccMean / KVOccPeak are the time-averaged and worst
	// instantaneous occupancy fractions across the tenant's replicas.
	KVOccMean float64 `json:"kv_occupancy_mean"`
	KVOccPeak float64 `json:"kv_occupancy_peak"`
	// KVStalls counts batch-growth attempts blocked by KV exhaustion.
	KVStalls int `json:"kv_stalls"`

	// KVPolicy is the backend name ("reserve" or "paged"); empty means
	// the tenant ran on the implicit reserve default and none of the
	// fields below are populated.
	KVPolicy string `json:"kv_policy,omitempty"`
	// PeakSeqs is the peak number of concurrently resident sequences
	// across the tenant's fleet — the admitted-concurrency headline the
	// paged backend exists to raise.
	PeakSeqs int `json:"kv_peak_seqs,omitempty"`

	// Eviction traffic (paged backend only): total evictions split by
	// policy, the tokens whose KV must be re-prefilled after a
	// recompute eviction, and the swap payloads moved to/from host
	// memory over the modeled link.
	Evictions       int     `json:"kv_evictions,omitempty"`
	EvictRecompute  int     `json:"kv_evict_recompute,omitempty"`
	EvictSwap       int     `json:"kv_evict_swap,omitempty"`
	RecomputeTokens int64   `json:"kv_recompute_tokens,omitempty"`
	SwapOutMB       float64 `json:"kv_swap_out_mb,omitempty"`
	SwapInMB        float64 `json:"kv_swap_in_mb,omitempty"`

	// Radix prefix cache: lookup/hit counts over admissions, the KV
	// tokens served from cache instead of prefilled, the cache blocks
	// reclaimed under pressure, and hits/lookups.
	PrefixLookups   int     `json:"kv_prefix_lookups,omitempty"`
	PrefixHits      int     `json:"kv_prefix_hits,omitempty"`
	PrefixHitTokens int64   `json:"kv_prefix_hit_tokens,omitempty"`
	CacheEvictions  int     `json:"kv_cache_evict_blocks,omitempty"`
	PrefixHitRate   float64 `json:"kv_prefix_hit_rate,omitempty"`
}

// newKVBackend constructs the KV backend a fresh replica slot runs on,
// per the serving group's KVPolicy (newFleet validates that LLM peers
// in one share group agree, so the first explicit policy found is the
// group's policy; empty means the implicit reserve default).
func (f *fleet) newKVBackend(t *tenantState, capBytes int64, blockTokens int) kvBackend {
	acct := newKVAccountant(capBytes, model.LLMKVBytesPerToken(), blockTokens, float64(f.eng.Now()))
	for _, p := range t.peers {
		if p.llm != nil && p.cfg.LLM.KVPolicy == KVPaged {
			return newPagedKV(f, p, acct)
		}
	}
	return acct
}

// kvAccountant is the full-reservation backend. It also integrates
// occupancy over time for the report's KV-utilization numbers.
type kvAccountant struct {
	blockTokens int
	totalBlocks int
	usedBlocks  int
	peakBlocks  int

	born     float64 // creation time, cycles (origin of the block·time area)
	lastAt   float64
	usedArea float64 // ∫ usedBlocks dt since born

	// Resident-sequence count through admit/release (the concurrency the
	// paged backend is compared against); crash-discarded sequences skip
	// release, but the peak is already correct when the replica folds.
	curSeqs, peakSeqs int
}

// newKVAccountant carves capBytes into blocks of blockTokens tokens at
// bytesPerToken each.
func newKVAccountant(capBytes, bytesPerToken int64, blockTokens int, now float64) *kvAccountant {
	total := 0
	if blockBytes := bytesPerToken * int64(blockTokens); capBytes > 0 && blockBytes > 0 {
		total = int(capBytes / blockBytes)
	}
	return &kvAccountant{blockTokens: blockTokens, totalBlocks: total, born: now, lastAt: now}
}

// blocksFor returns the reservation for a footprint of `tokens` tokens.
func (a *kvAccountant) blocksFor(tokens int) int {
	if tokens <= 0 {
		return 0
	}
	return (tokens + a.blockTokens - 1) / a.blockTokens
}

// fits reports whether a reservation of `blocks` can be admitted now.
func (a *kvAccountant) fits(blocks int) bool { return a.usedBlocks+blocks <= a.totalBlocks }

// alloc reserves blocks; the caller must have checked fits (admission is
// the only gate, so overcommit here is a scheduler bug, not load).
func (a *kvAccountant) alloc(blocks int, now float64) {
	a.accrue(now)
	a.usedBlocks += blocks
	if a.usedBlocks > a.peakBlocks {
		a.peakBlocks = a.usedBlocks
	}
	if a.usedBlocks > a.totalBlocks {
		panic(fmt.Sprintf("serve: KV accountant overcommitted (%d/%d blocks)", a.usedBlocks, a.totalBlocks))
	}
}

// free returns a completed sequence's reservation.
func (a *kvAccountant) free(blocks int, now float64) {
	a.accrue(now)
	a.usedBlocks -= blocks
	if a.usedBlocks < 0 {
		panic("serve: KV accountant freed more blocks than allocated")
	}
}

// accrue advances the occupancy integral to now.
func (a *kvAccountant) accrue(now float64) {
	if now > a.lastAt {
		a.usedArea += float64(a.usedBlocks) * (now - a.lastAt)
		a.lastAt = now
	}
}

func (a *kvAccountant) used() int       { return a.usedBlocks }
func (a *kvAccountant) total() int      { return a.totalBlocks }
func (a *kvAccountant) peak() int       { return a.peakBlocks }
func (a *kvAccountant) bornAt() float64 { return a.born }
func (a *kvAccountant) area() float64   { return a.usedArea }

// canAdmit: the full prompt+output reservation must fit.
func (a *kvAccountant) canAdmit(req request) bool {
	return a.fits(a.blocksFor(req.prompt + req.output))
}

// admit charges the full reservation, exactly the pre-interface
// admission triple (blocksFor → fits → alloc).
func (a *kvAccountant) admit(s *llmSeq, now float64) bool {
	blocks := a.blocksFor(s.req.prompt + s.req.output)
	if !a.fits(blocks) {
		return false
	}
	a.alloc(blocks, now)
	s.blocks = blocks
	a.curSeqs++
	if a.curSeqs > a.peakSeqs {
		a.peakSeqs = a.curSeqs
	}
	return true
}

// release frees a completed sequence's whole reservation.
func (a *kvAccountant) release(s *llmSeq, now float64) {
	a.free(s.blocks, now)
	a.curSeqs--
}

// The reservation already covers every output token, so decode never
// needs growth and both hooks are no-ops.
func (a *kvAccountant) needsBlock(*llmSeq) bool    { return false }
func (a *kvAccountant) extendSeq(*llmSeq, float64) {}
func (a *kvAccountant) teardown(float64)           {}

// addStats folds the peak resident-sequence count (the only
// policy-specific stat the reserve backend keeps).
func (a *kvAccountant) addStats(st *KVStats) {
	if a.peakSeqs > st.PeakSeqs {
		st.PeakSeqs = a.peakSeqs
	}
}
