package serve

import "fmt"

// kvAccountant models the KV-cache partition of one replica's vNPU HBM
// (§III memory partitioning): the capacity left in MemSizePerCore after
// the LLM's resident weights, handed out in fixed-size blocks of
// blockTokens tokens — paged-attention-style block granularity, which
// bounds fragmentation to under one block per sequence. A sequence
// reserves its full prompt+output footprint at admission, so a running
// generation can never overcommit mid-flight; its blocks free when it
// completes. The accountant also integrates occupancy over time for the
// report's KV-utilization numbers.
type kvAccountant struct {
	blockTokens int
	totalBlocks int
	usedBlocks  int
	peakBlocks  int

	born     float64 // creation time, cycles (origin of the block·time area)
	lastAt   float64
	usedArea float64 // ∫ usedBlocks dt since born
}

// newKVAccountant carves capBytes into blocks of blockTokens tokens at
// bytesPerToken each.
func newKVAccountant(capBytes, bytesPerToken int64, blockTokens int, now float64) *kvAccountant {
	total := 0
	if blockBytes := bytesPerToken * int64(blockTokens); capBytes > 0 && blockBytes > 0 {
		total = int(capBytes / blockBytes)
	}
	return &kvAccountant{blockTokens: blockTokens, totalBlocks: total, born: now, lastAt: now}
}

// blocksFor returns the reservation for a footprint of `tokens` tokens.
func (a *kvAccountant) blocksFor(tokens int) int {
	if tokens <= 0 {
		return 0
	}
	return (tokens + a.blockTokens - 1) / a.blockTokens
}

// fits reports whether a reservation of `blocks` can be admitted now.
func (a *kvAccountant) fits(blocks int) bool { return a.usedBlocks+blocks <= a.totalBlocks }

// alloc reserves blocks; the caller must have checked fits (admission is
// the only gate, so overcommit here is a scheduler bug, not load).
func (a *kvAccountant) alloc(blocks int, now float64) {
	a.accrue(now)
	a.usedBlocks += blocks
	if a.usedBlocks > a.peakBlocks {
		a.peakBlocks = a.usedBlocks
	}
	if a.usedBlocks > a.totalBlocks {
		panic(fmt.Sprintf("serve: KV accountant overcommitted (%d/%d blocks)", a.usedBlocks, a.totalBlocks))
	}
}

// free returns a completed sequence's reservation.
func (a *kvAccountant) free(blocks int, now float64) {
	a.accrue(now)
	a.usedBlocks -= blocks
	if a.usedBlocks < 0 {
		panic("serve: KV accountant freed more blocks than allocated")
	}
}

// accrue advances the occupancy integral to now.
func (a *kvAccountant) accrue(now float64) {
	if now > a.lastAt {
		a.usedArea += float64(a.usedBlocks) * (now - a.lastAt)
		a.lastAt = now
	}
}
