package serve

import (
	"math"
	"testing"

	"neu10/internal/arch"
)

// priorityConfig is the fast mixed-priority scenario the preemption
// tests run: an Interactive MNIST tenant and a Batch DLRM tenant
// pooling their replicas in one share group. MNIST batches cost ~13k
// cycles while DLRM batches cost ~350k, so without preemption an
// interactive request routinely waits an order of magnitude past its
// SLO behind an in-flight DLRM batch.
func priorityConfig(seed uint64, preempt bool) Config {
	return Config{
		Scenario:             "prio-test",
		Core:                 arch.TPUv4Like(),
		Cores:                3,
		Router:               LeastLoaded,
		DurationSec:          0.02,
		Seed:                 seed,
		Autoscale:            true,
		ScaleEverySec:        0.004,
		Preempt:              preempt,
		PreemptQuantumCycles: 2048,
		Tenants: []TenantConfig{
			{Name: "fg", Model: "MNIST", Priority: Interactive, ShareGroup: "pool",
				Load: 0.35, EUs: 2, MaxBatch: 2, QueueCap: 16, InitialReplicas: 1, MaxReplicas: 2},
			{Name: "bg", Model: "DLRM", Priority: Batch, ShareGroup: "pool",
				Load: 0.7, EUs: 2, MaxBatch: 8, QueueCap: 32, InitialReplicas: 1, MaxReplicas: 2},
		},
	}
}

// TestRouteSurvivesFullDrain is the regression test for the full-drain
// routing panic: make-before-break churn can leave every replica of a
// tenant draining, and the pre-fix route() then indexed cands[0] on an
// empty candidate slice (LeastLoaded/JSQ) or called routeRNG.Intn(0)
// (PowerOfTwo) and panicked. The fixed router falls back to the
// least-loaded draining replica, which still serves its queue to
// completion. The drain sequence below is exactly the autoscaler's own
// machinery: a make-before-break resize (spawn bigger, drain the old)
// followed by one more drain of the replacement before any new
// replica maps — the churn preemptive temporal sharing produces.
func TestRouteSurvivesFullDrain(t *testing.T) {
	for _, router := range []RouterPolicy{LeastLoaded, JSQ, PowerOfTwo} {
		cfg := Config{
			Scenario:    "drain-test",
			Core:        arch.TPUv4Like(),
			Cores:       2,
			Router:      router,
			DurationSec: 0.01,
			Seed:        1,
			Tenants: []TenantConfig{
				{Name: "a", Model: "MNIST", Load: 0.5, EUs: 2, MaxBatch: 4, QueueCap: 8},
			},
		}
		f, err := newFleet(cfg, nil)
		if err != nil {
			t.Fatalf("%s: %v", router, err)
		}
		ten := f.tenants[0]

		// Make-before-break resize: spawn the bigger replica, drain the
		// old one (it is idle, so it retires on the spot).
		if err := f.spawnReplica(ten, ten.curEUs+2, RoleMixed); err != nil {
			t.Fatalf("%s: resize spawn: %v", router, err)
		}
		ten.curEUs += 2
		f.drainOne(ten, RoleMixed, 0, true)
		if got := ten.activeCount(); got != 1 {
			t.Fatalf("%s: after resize, %d active replicas, want 1", router, got)
		}

		// Queue work on the survivor, then drain it too — the state the
		// pre-fix router could not survive.
		f.arrive(ten, 0)
		f.drainOne(ten, RoleMixed, 0, false)
		if got := ten.activeCount(); got != 0 {
			t.Fatalf("%s: tenant not fully draining (%d active)", router, got)
		}

		// Pre-fix: panic. Post-fix: deterministic fallback onto the
		// least-loaded draining replica; nothing is shed.
		f.arrive(ten, 0)
		f.arrive(ten, 0)
		if ten.rejected != 0 {
			t.Errorf("%s: %d requests shed during full drain; want queued on a draining replica",
				router, ten.rejected)
		}

		// The draining replica still serves its queue and then retires.
		f.eng.Run()
		if ten.completed != ten.arrivals {
			t.Errorf("%s: %d/%d requests completed after full drain", router, ten.completed, ten.arrivals)
		}
		if len(ten.replicas) != 0 {
			t.Errorf("%s: %d replicas linger after drain completed", router, len(ten.replicas))
		}

		// With no replicas at all, admission rejects instead of panicking.
		before := ten.rejected
		f.arrive(ten, f.eng.Now())
		if ten.rejected != before+1 {
			t.Errorf("%s: request for a replica-less tenant not admission-rejected", router)
		}
	}
}

// TestPreemptionWorkConservation is the core preempt/resume invariant:
// every batch's service cycles are priced once at launch and must be
// delivered exactly once across all of its segments — no work lost, no
// work duplicated, regardless of how often it was suspended. The FIFO
// baseline must additionally never preempt at all.
func TestPreemptionWorkConservation(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	totalPreempts := 0
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := priorityConfig(seed, true)
		f, err := newFleet(cfg, db)
		if err != nil {
			t.Fatal(err)
		}
		for _, ten := range f.tenants {
			f.scheduleArrival(ten)
		}
		f.scheduleScale(cfg.ScaleEverySec * cfg.Core.FrequencyHz)
		f.eng.Run()
		rep := f.report()

		pre, res, overhead := f.switches.Snapshot()
		totalPreempts += pre
		if pre != res {
			t.Errorf("seed %d: %d preemptions but %d resumes — a suspended batch was lost", seed, pre, res)
		}
		if pre > 0 && overhead <= 0 {
			t.Errorf("seed %d: %d preemptions with no switch overhead recorded", seed, pre)
		}
		for _, ten := range f.tenants {
			if diff := math.Abs(ten.issuedServiceCycles - ten.servedServiceCycles); diff > 1e-6*ten.issuedServiceCycles {
				t.Errorf("seed %d tenant %s: issued %.3f service cycles, served %.3f — work not conserved",
					seed, ten.cfg.Name, ten.issuedServiceCycles, ten.servedServiceCycles)
			}
		}
		for _, tr := range rep.Tenants {
			if tr.Arrivals != tr.Rejected+tr.Completed {
				t.Errorf("seed %d tenant %s: %d arrivals ≠ %d rejected + %d completed",
					seed, tr.Name, tr.Arrivals, tr.Rejected, tr.Completed)
			}
		}

		// The FIFO baseline on the identical trace must never preempt.
		off, err := Run(priorityConfig(seed, false), db)
		if err != nil {
			t.Fatal(err)
		}
		if off.Preemptions != 0 || off.Resumes != 0 {
			t.Errorf("seed %d: FIFO baseline recorded %d preempts / %d resumes",
				seed, off.Preemptions, off.Resumes)
		}
	}
	if totalPreempts == 0 {
		t.Error("no preemption occurred across any seed — the invariant was never exercised")
	}
}

// TestBatchBoundedWait is the no-starvation property: under sustained
// Interactive pressure, no Batch batch may be preempted or bypassed
// more than MaxPreemptsPerBatch times, so its wait is bounded and all
// of its admitted work completes.
func TestBatchBoundedWait(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		cfg := priorityConfig(seed, true)
		cfg.Tenants[0].Load = 0.9 // sustained interactive load
		f, err := newFleet(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		for _, ten := range f.tenants {
			f.scheduleArrival(ten)
		}
		f.scheduleScale(cfg.ScaleEverySec * cfg.Core.FrequencyHz)
		f.eng.Run()
		bg := f.tenants[1]
		if bg.maxPreempts > f.cfg.MaxPreemptsPerBatch {
			t.Errorf("seed %d: a batch suffered %d preempts+bypasses, bound %d",
				seed, bg.maxPreempts, f.cfg.MaxPreemptsPerBatch)
		}
		if bg.completed == 0 {
			t.Errorf("seed %d: Batch tenant starved outright (0 completions)", seed)
		}
		if bg.arrivals != bg.rejected+bg.completed {
			t.Errorf("seed %d: Batch accounting broken: %d ≠ %d + %d",
				seed, bg.arrivals, bg.rejected, bg.completed)
		}
	}
}

// TestAgingCreditBoundsWait pins the credit scheme's defining
// property: a batch's total victimization wait (time suspended, across
// preemptions and bypasses) never exceeds the aging-credit budget of
// MaxPreemptsPerBatch × PreemptQuantumCycles by more than the one
// interloper that was in flight when the credit ran out. Event counts
// are NOT the bound — delay is.
func TestAgingCreditBoundsWait(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	exercised := false
	for seed := uint64(1); seed <= 4; seed++ {
		cfg := priorityConfig(seed, true)
		cfg.Tenants[0].Load = 0.9 // sustained interactive pressure
		f, err := newFleet(cfg, db)
		if err != nil {
			t.Fatal(err)
		}
		for _, ten := range f.tenants {
			f.scheduleArrival(ten)
		}
		f.scheduleScale(cfg.ScaleEverySec * cfg.Core.FrequencyHz)
		f.eng.Run()
		budget := f.preemptBudget
		// Overshoot allowance: the interloper running when the credit
		// expired (an MNIST batch, ~13k cycles here) plus its context
		// switches — far below one more budget.
		const slack = 150_000
		bg := f.tenants[1]
		if bg.maxVictimWait > budget+slack {
			t.Errorf("seed %d: a batch waited %.0f cycles under a %.0f-cycle credit budget",
				seed, bg.maxVictimWait, budget)
		}
		if bg.maxVictimWait > 0 {
			exercised = true
		}
	}
	if !exercised {
		t.Error("no batch was ever victimized — the credit ledger was never exercised")
	}
}

// TestPriorityByteIdenticalReport extends the determinism guarantee to
// preemptive runs: same seed, same bytes, warm or cold cost database.
func TestPriorityByteIdenticalReport(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	r1, err := Run(priorityConfig(9, true), db)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(priorityConfig(9, true), db)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Run(priorityConfig(9, true), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Table() != r2.Table() || r1.Table() != r3.Table() {
		t.Errorf("preemptive run is not byte-reproducible:\n%s\nvs\n%s\nvs\n%s",
			r1.Table(), r2.Table(), r3.Table())
	}
	if len(r1.Priorities) != 2 {
		t.Fatalf("priority report has %d classes, want 2:\n%s", len(r1.Priorities), r1.Table())
	}
	if r1.Priorities[0].Priority != Interactive.String() {
		t.Errorf("priority classes not ordered highest-first: %q", r1.Priorities[0].Priority)
	}
}

// TestPriorityImprovesInteractiveTail checks the mechanism does what it
// is for: on the identical trace, preemptive sharing must improve the
// Interactive class's SLO attainment over the FIFO baseline while the
// Batch class keeps completing work.
func TestPriorityImprovesInteractiveTail(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	on, err := Run(priorityConfig(2, true), db)
	if err != nil {
		t.Fatal(err)
	}
	off, err := Run(priorityConfig(2, false), db)
	if err != nil {
		t.Fatal(err)
	}
	if on.Tenants[0].Arrivals != off.Tenants[0].Arrivals {
		t.Fatalf("traces diverge: %d vs %d arrivals", on.Tenants[0].Arrivals, off.Tenants[0].Arrivals)
	}
	if on.Tenants[0].SLOAttainment <= off.Tenants[0].SLOAttainment {
		t.Errorf("preemption did not improve interactive attainment: %.3f vs %.3f",
			on.Tenants[0].SLOAttainment, off.Tenants[0].SLOAttainment)
	}
	if on.Tenants[1].Completed == 0 {
		t.Error("batch tenant completed nothing under preemption")
	}
}

// TestEmptyWindowAutoscalerDecision pins the documented three-way read
// of an empty observation window: backlogged-but-silent windows HOLD
// the fleet, truly idle windows DECAY it toward MinReplicas (pre-fix,
// both held forever, freezing an idle tenant at its peak size).
func TestEmptyWindowAutoscalerDecision(t *testing.T) {
	mk := func() (*fleet, *tenantState) {
		cfg := Config{
			Scenario:    "window-test",
			Core:        arch.TPUv4Like(),
			Cores:       2,
			DurationSec: 0.01,
			Seed:        1,
			Autoscale:   true,
			Tenants: []TenantConfig{
				{Name: "a", Model: "MNIST", Load: 0.5, EUs: 2, MaxBatch: 4, QueueCap: 8,
					InitialReplicas: 2, MinReplicas: 1, MaxReplicas: 2},
			},
		}
		f, err := newFleet(cfg, nil)
		if err != nil {
			t.Fatal(err)
		}
		return f, f.tenants[0]
	}

	// Hold: an empty window with a small backlog (work in flight,
	// nothing completed) must change nothing.
	f, ten := mk()
	f.arrive(ten, 0)
	f.scaleTenant(ten, 0)
	if ten.activeCount() != 2 || ten.scaleDowns != 0 || ten.scaleUps != 0 {
		t.Errorf("hold: empty window with backlog acted (%d active, %d downs, %d ups)",
			ten.activeCount(), ten.scaleDowns, ten.scaleUps)
	}

	// Decay: an empty window with no work at all scales in.
	f, ten = mk()
	f.scaleTenant(ten, 0)
	if ten.activeCount() != 1 || ten.scaleDowns != 1 {
		t.Errorf("decay: idle window kept %d active replicas (%d scale-downs); want decay toward MinReplicas",
			ten.activeCount(), ten.scaleDowns)
	}
	// And never below MinReplicas.
	f.scaleTenant(ten, 0)
	if ten.activeCount() != 1 {
		t.Errorf("decay went below MinReplicas: %d active", ten.activeCount())
	}
}
