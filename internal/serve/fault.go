package serve

import (
	"fmt"

	"neu10/internal/sim"
)

// Fault injection and chaos serving. A production fleet the paper's
// virtualization layer targets loses chips, links flap, and whole pods
// go dark; the fleet here only ever changed by autoscaler intent. A
// FaultPlan schedules deterministic fault events on the sim clock —
// replica/chip crashes, correlated pod outages, degraded and flapping
// interconnect links — and a RecoveryConfig enables the machinery that
// absorbs them: warm spares, crash-triggered emergency spawns that
// bypass the autoscaler's observation window, and migration-based
// evacuation that rebalances a decode pool over the PR-5 KV-migration
// path. Everything runs inside engine events, so a chaos run is exactly
// as reproducible as a healthy one.
//
// Crash semantics (destroyReplica): the replica is removed instantly —
// no graceful drain. Resident KV is lost with the chip; in-flight and
// queued requests are re-queued to surviving slots (re-entering through
// the ordinary router and admission control), and a partially-generated
// sequence is handled per CrashPolicy: replayed — its generated prefix
// folds into the prompt, so the lost KV is recomputed by one prefill
// over prompt+produced tokens, priced through the ordinary prefill cost
// path (model.LLMPrefillChunk on chunked pools) — or failed outright.
// In-flight KV migrations touching the dead chip abort with exact
// conservation: a reservation charged to a dead target rolls back on
// the source's surviving books, a transfer whose source died frees the
// target's reservation at abort, and nothing lands twice.

// CrashPolicy selects what happens to a sequence that had already
// produced output when its replica crashes.
type CrashPolicy int

const (
	// CrashReplay (the default) re-queues the request with its generated
	// prefix folded into the prompt: prompt' = prompt+produced, output' =
	// output−produced. The lost KV is recomputed by a prefill over the
	// folded prompt, decoding resumes at the next token, and end-to-end
	// latency keeps the original arrival — the crash penalty lands on the
	// SLO. Sequences with no output yet are always re-queued this way.
	CrashReplay CrashPolicy = iota
	// CrashFail drops partially-generated sequences outright: the crash
	// costs those requests, not recompute capacity.
	CrashFail
)

func (p CrashPolicy) String() string {
	switch p {
	case CrashReplay:
		return "replay"
	case CrashFail:
		return "fail"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// FaultKind is one fault event's mechanism.
type FaultKind int

const (
	// FaultCrashReplica kills Count replicas of one tenant (oldest
	// first — deterministic victim selection), optionally filtered by
	// Role.
	FaultCrashReplica FaultKind = iota
	// FaultPodOutage kills every replica of every tenant mapped to the
	// listed chips at once — the correlated-failure case.
	FaultPodOutage
	// FaultLinkDegrade scales the whole interconnect's bandwidth by
	// Scale at AtFrac and, when UntilFrac > AtFrac, restores it there.
	// Several degrade events make a flapping link. In-flight transfers
	// stretch mid-copy (xfer.Link.SetBandwidthScale).
	FaultLinkDegrade
)

func (k FaultKind) String() string {
	switch k {
	case FaultCrashReplica:
		return "crash"
	case FaultPodOutage:
		return "pod-outage"
	case FaultLinkDegrade:
		return "link-degrade"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// FaultEvent is one scheduled fault.
type FaultEvent struct {
	Kind FaultKind
	// AtFrac places the event on the sim clock as a fraction of the
	// run's duration, in [0, 1].
	AtFrac float64

	// Tenant names the victim tenant (FaultCrashReplica only).
	Tenant string
	// Role filters crash victims in a disaggregated fleet; RoleMixed
	// (the zero value) matches any role.
	Role Role
	// Count is how many replicas one crash event kills (default 1).
	Count int

	// Chips lists the pNPUs a pod outage takes down (FaultPodOutage).
	Chips []int

	// Scale is the bandwidth multiplier a link degradation applies
	// (0 < Scale; 1 restores). UntilFrac, when > AtFrac, bounds the
	// degradation window.
	Scale     float64
	UntilFrac float64
}

// FaultPlan is a run's full fault schedule.
type FaultPlan struct {
	Events []FaultEvent
	Policy CrashPolicy
}

func (p *FaultPlan) defaults() {
	for i := range p.Events {
		e := &p.Events[i]
		if e.Kind == FaultCrashReplica && e.Count == 0 {
			e.Count = 1
		}
	}
}

func (p *FaultPlan) validate(c *Config) error {
	if p.Policy < CrashReplay || p.Policy > CrashFail {
		return fmt.Errorf("serve: crash policy %d unknown", p.Policy)
	}
	for i := range p.Events {
		e := &p.Events[i]
		if e.AtFrac < 0 || e.AtFrac > 1 {
			return fmt.Errorf("serve: fault %d at fraction %v outside [0,1]", i, e.AtFrac)
		}
		switch e.Kind {
		case FaultCrashReplica:
			found := false
			for j := range c.Tenants {
				if c.Tenants[j].Name == e.Tenant {
					found = true
				}
			}
			if !found {
				return fmt.Errorf("serve: fault %d crashes unknown tenant %q", i, e.Tenant)
			}
			if e.Role < RoleMixed || e.Role > RoleDecode {
				return fmt.Errorf("serve: fault %d role %d unknown", i, e.Role)
			}
			if e.Count < 1 {
				return fmt.Errorf("serve: fault %d kills %d replicas", i, e.Count)
			}
		case FaultPodOutage:
			if len(e.Chips) == 0 {
				return fmt.Errorf("serve: fault %d is a pod outage with no chips", i)
			}
			for _, c2 := range e.Chips {
				if c2 < 0 || c2 >= c.Cores {
					return fmt.Errorf("serve: fault %d outage chip %d outside the %d-pNPU fleet", i, c2, c.Cores)
				}
			}
		case FaultLinkDegrade:
			if !(e.Scale > 0) {
				return fmt.Errorf("serve: fault %d link scale %v", i, e.Scale)
			}
			if e.UntilFrac != 0 && (e.UntilFrac < e.AtFrac || e.UntilFrac > 1) {
				return fmt.Errorf("serve: fault %d degrade window [%v, %v) malformed", i, e.AtFrac, e.UntilFrac)
			}
		default:
			return fmt.Errorf("serve: fault %d kind %d unknown", i, e.Kind)
		}
	}
	return nil
}

// RecoveryConfig enables the recovery machinery a FaultPlan exercises.
// The zero value of each knob is "off", so a faulted run with a nil
// RecoveryConfig is the no-recovery baseline: survivors absorb what the
// router can re-queue and the (optional) autoscaler reacts only at its
// windowed pace.
type RecoveryConfig struct {
	// WarmSpares spawns this many extra replicas per pool (per role for
	// disaggregated tenants) ahead of demand at fleet build, and raises
	// the autoscaler's floor by the same amount so the spares are
	// maintained — capacity standing by before the first fault.
	WarmSpares int
	// EmergencySpawn respawns crashed capacity at the crash instant —
	// one replacement per victim, same role and EU budget — bypassing
	// the autoscaler's p99 observation window entirely.
	EmergencySpawn bool
	// Evacuate rebalances a disaggregated decode pool after a crash by
	// migrating mid-generation KV from overloaded decode slots to
	// underloaded ones (typically the emergency spawns), reusing the
	// prefill→decode migration path and its conservation accounting.
	Evacuate bool
}

func (rc *RecoveryConfig) validate() error {
	if rc.WarmSpares < 0 {
		return fmt.Errorf("serve: %d warm spares", rc.WarmSpares)
	}
	return nil
}

// warmSpares is the per-pool spare-capacity floor increment.
func (f *fleet) warmSpares() int {
	if f.cfg.Recover == nil {
		return 0
	}
	return f.cfg.Recover.WarmSpares
}

// scheduleFaults places every FaultPlan event on the engine's clock.
func (f *fleet) scheduleFaults() {
	p := f.cfg.Faults
	if p == nil {
		return
	}
	for i := range p.Events {
		e := p.Events[i]
		switch e.Kind {
		case FaultLinkDegrade:
			f.eng.At(sim.Time(e.AtFrac*f.durCycles), func(now sim.Time) {
				if f.obs != nil {
					f.obs.trace.Instant("link-scale", "fault", obsProcFleet, obsTrackControl, float64(now), -1,
						"", 0, "scale", fmt.Sprintf("%g", e.Scale))
				}
				f.setLinkScale(e.Scale)
			})
			if e.UntilFrac > e.AtFrac {
				f.eng.At(sim.Time(e.UntilFrac*f.durCycles), func(now sim.Time) {
					if f.obs != nil {
						f.obs.trace.Instant("link-scale", "fault", obsProcFleet, obsTrackControl, float64(now), -1,
							"", 0, "scale", "1")
					}
					f.setLinkScale(1)
				})
			}
		default:
			f.eng.At(sim.Time(e.AtFrac*f.durCycles), func(now sim.Time) { f.injectFault(e, now) })
		}
	}
}

// setLinkScale applies a fabric-wide bandwidth scale (no-op for fleets
// without an interconnect — only disaggregated tenants ship bytes).
func (f *fleet) setLinkScale(scale float64) {
	if f.fabric != nil {
		if err := f.fabric.SetBandwidthScale(scale); err != nil {
			panic(err) // validate() bounds Scale; unreachable
		}
	}
}

// harvested is one request recovered from a crashed replica, waiting to
// be re-queued to a survivor.
type harvested struct {
	ten *tenantState
	req request
}

// injectFault resolves one crash-class event's victims and executes it.
func (f *fleet) injectFault(e FaultEvent, now sim.Time) {
	var victims []*replica
	switch e.Kind {
	case FaultCrashReplica:
		t := f.tenantByName(e.Tenant)
		// Oldest matching replicas first (t.replicas is spawn-ordered, so
		// uid ascends): deterministic victim selection.
		for _, r := range t.replicas {
			if len(victims) >= e.Count {
				break
			}
			if e.Role == RoleMixed || r.role == e.Role {
				victims = append(victims, r)
			}
		}
	case FaultPodOutage:
		for _, t := range f.tenants { // tenant-index, then spawn order
			for _, r := range t.replicas {
				for _, chip := range e.Chips {
					if r.vnpu.Mapping.PNPU == chip {
						victims = append(victims, r)
						break
					}
				}
			}
		}
	}
	if len(victims) > 0 {
		if f.obs != nil {
			f.obs.trace.Instant("fault", "fault", obsProcFleet, obsTrackControl, float64(now), -1,
				"victims", int64(len(victims)), "kind", e.Kind.String())
		}
		f.crashReplicas(victims, now)
	}
}

func (f *fleet) tenantByName(name string) *tenantState {
	for _, t := range f.tenants {
		if t.cfg.Name == name {
			return t
		}
	}
	return nil
}
