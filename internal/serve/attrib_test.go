package serve

import (
	"encoding/json"
	"strings"
	"testing"

	"neu10/internal/arch"
)

// attribOn clones a config with the attribution ledger enabled.
func attribOn(cfg Config) Config {
	o := ObsConfig{}
	if cfg.Obs != nil {
		o = *cfg.Obs
	}
	o.Attrib = true
	cfg.Obs = &o
	return cfg
}

// verifyLedger re-derives both conservation laws from the raw records,
// independently of the in-sim checks the ledger runs itself:
//
//   - per request: the exclusive segments sum EXACTLY — strict float64
//     equality, no epsilon — to completion − arrival (both laws ride on
//     integral sim.Time stamps below 2^53, so every sum is exact);
//   - per replica: the cycle buckets sum exactly to retire − spawn;
//   - fleet-wide: every admitted request is either a completed record
//     or a recorded drop, and nothing is left open after the drain.
func verifyLedger(t *testing.T, label string, rep *Report) {
	t.Helper()
	led := rep.Ledger
	if led == nil {
		t.Fatalf("%s: attribution enabled but the report carries no ledger", label)
	}
	if v := led.Violations(); v != 0 {
		t.Errorf("%s: %d conservation violations", label, v)
	}
	if open := led.Open(); open != 0 {
		t.Errorf("%s: %d requests still open after the drain", label, open)
	}
	for _, r := range led.Completed() {
		var sum float64
		for _, v := range r.Seg {
			sum += v
		}
		if sum != r.Done-r.Arrive {
			t.Errorf("%s: req %s#%d segments sum to %v cycles, lifetime is %v",
				label, r.Proc, r.ID, sum, r.Done-r.Arrive)
		}
	}
	for _, r := range led.Replicas() {
		var sum float64
		for _, v := range r.Buckets {
			sum += v
		}
		if sum != r.Lifetime() {
			t.Errorf("%s: replica %s#%d buckets sum to %v cycles, lifetime is %v",
				label, r.Proc, r.UID, sum, r.Lifetime())
		}
	}
	admitted, completed := 0, 0
	for _, tr := range rep.Tenants {
		admitted += tr.Arrivals - tr.Rejected
		completed += tr.Completed
	}
	if got := len(led.Completed()); got != completed {
		t.Errorf("%s: ledger holds %d completions, reports say %d", label, got, completed)
	}
	if got := len(led.Completed()) + led.Drops(); got != admitted {
		t.Errorf("%s: %d admitted requests but %d completed + %d dropped in the ledger",
			label, admitted, len(led.Completed()), led.Drops())
	}
	cl := rep.CycleLedger
	if cl == nil {
		t.Fatalf("%s: no cycle-ledger section", label)
	}
	var buckets float64
	for _, v := range cl.BucketsMs {
		buckets += v
	}
	if diff := buckets - cl.CapacityMs; diff > 1e-6 || diff < -1e-6 {
		t.Errorf("%s: Σ buckets %.9f ms ≠ capacity %.9f ms", label, buckets, cl.CapacityMs)
	}
}

// TestAttribConservation is the tentpole property test: across seeds ×
// every serving mode — single-shot dynamic batching with autoscaling,
// continuous and static LLM batching, both paged-KV eviction policies,
// preemptive priority sharing, disaggregation, and chaos with crashes,
// a pod outage, link degradation and recovery — both conservation laws
// must hold exactly and the scenario must leave nothing unaccounted.
func TestAttribConservation(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	for seed := uint64(1); seed <= 3; seed++ {
		cases := []struct {
			label string
			cfg   Config
		}{
			{"fast", fastConfig(seed)},
			{"llm-continuous", llmConfig(seed, false)},
			{"llm-static", llmConfig(seed, true)},
			{"paged-recompute", pagedCfg(seed, KVPaged, KVEvictRecompute)},
			{"paged-swap", pagedCfg(seed, KVPaged, KVEvictSwap)},
			{"priority-preempt", priorityConfig(seed, true)},
			{"disagg", disaggConfig(seed, 1, 640)},
			{"chaos-recover", chaosConfig(seed, chaosFaults(CrashReplay),
				&RecoveryConfig{WarmSpares: 1, EmergencySpawn: true, Evacuate: true})},
			{"chaos-fail", chaosConfig(seed, chaosFaults(CrashFail), nil)},
		}
		for _, c := range cases {
			rep, err := Run(attribOn(c.cfg), db)
			if err != nil {
				t.Fatalf("%s seed %d: %v", c.label, seed, err)
			}
			verifyLedger(t, c.label, rep)
		}
	}
}

// TestAttribZeroOverhead is the ledger half of the zero-overhead
// contract: enabling attribution must leave the pre-existing report —
// every table byte and every legacy JSON field — byte-identical, and a
// disabled run must carry no attribution artifacts at all.
func TestAttribZeroOverhead(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	for _, c := range []struct {
		label string
		cfg   Config
	}{
		{"fast", fastConfig(7)},
		{"llm", llmConfig(2, false)},
		{"paged-swap", pagedCfg(2, KVPaged, KVEvictSwap)},
		{"chaos", chaosConfig(1, chaosFaults(CrashReplay),
			&RecoveryConfig{WarmSpares: 1, EmergencySpawn: true, Evacuate: true})},
	} {
		plain, err := Run(c.cfg, db)
		if err != nil {
			t.Fatal(err)
		}
		attrib, err := Run(attribOn(c.cfg), db)
		if err != nil {
			t.Fatal(err)
		}
		if plain.Table() != attrib.Table() {
			t.Errorf("%s: the ledger changed the report table:\n--- off ---\n%s\n--- on ---\n%s",
				c.label, plain.Table(), attrib.Table())
		}
		if plain.Ledger != nil || plain.CycleLedger != nil {
			t.Errorf("%s: disabled run carries attribution artifacts", c.label)
		}
		if plain.AttribTable() != "" {
			t.Errorf("%s: disabled run renders an attribution table", c.label)
		}
		data, err := json.Marshal(plain)
		if err != nil {
			t.Fatal(err)
		}
		for _, leak := range []string{"attrib", "cycle_ledger"} {
			if strings.Contains(string(data), leak) {
				t.Errorf("%s: disabled run leaks %q into JSON", c.label, leak)
			}
		}
		for _, tr := range plain.Tenants {
			if tr.Attrib != nil {
				t.Errorf("%s: disabled run carries tenant attribution", c.label)
			}
		}
	}
}

// TestAttribDeterminism: the same seed must reproduce the attribution
// tables and the raw ledger CSV byte-for-byte.
func TestAttribDeterminism(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	export := func() (string, string) {
		rep, err := Run(attribOn(pagedCfg(2, KVPaged, KVEvictSwap)), db)
		if err != nil {
			t.Fatal(err)
		}
		var csv strings.Builder
		if err := rep.Ledger.WriteCSV(&csv); err != nil {
			t.Fatal(err)
		}
		return rep.AttribTable(), csv.String()
	}
	tbl1, csv1 := export()
	tbl2, csv2 := export()
	if tbl1 != tbl2 {
		t.Error("attribution table is not deterministic")
	}
	if csv1 != csv2 {
		t.Error("ledger CSV export is not deterministic")
	}
	if len(tbl1) == 0 || len(csv1) == 0 {
		t.Fatal("empty attribution exports")
	}
}

// TestAttribTableShape pins the rendered attribution sections: cohort
// rows (with the "all" cohort and tail cohorts), worst-request
// drilldowns, and the cycle-ledger conservation line.
func TestAttribTableShape(t *testing.T) {
	rep, err := Run(attribOn(llmConfig(1, false)), db(t))
	if err != nil {
		t.Fatal(err)
	}
	tbl := rep.AttribTable()
	for _, want := range []string{
		"attrib tenant", "all", "p99_e2e",
		"worst req tenant", "dominant",
		"cycle ledger:", "0 violations, 0 open",
	} {
		if !strings.Contains(tbl, want) {
			t.Errorf("attribution table missing %q:\n%s", want, tbl)
		}
	}
	ten := rep.Tenants[0]
	if ten.Attrib == nil || ten.Attrib.Completed == 0 {
		t.Fatal("no tenant attribution recorded")
	}
	// Cohort means are exact: the per-request law lifts to every mean.
	for _, c := range ten.Attrib.Cohorts {
		var sum float64
		for _, v := range c.Segments {
			sum += v
		}
		if diff := sum - c.MeanMs; diff > 1e-6 || diff < -1e-6 {
			t.Errorf("cohort %s: segment means sum to %.12f ms, mean e2e is %.12f",
				c.Cohort, sum, c.MeanMs)
		}
	}
	if len(ten.Attrib.Worst) == 0 {
		t.Fatal("no worst-request drilldowns")
	}
	for _, w := range ten.Attrib.Worst {
		if w.DominantFrac <= 0 || w.DominantFrac > 1 {
			t.Errorf("req %d: dominant share %v out of (0, 1]", w.Req, w.DominantFrac)
		}
	}
}

// db builds a throwaway cost database.
func db(t *testing.T) *CostDB {
	t.Helper()
	return NewCostDB(arch.TPUv4Like())
}
