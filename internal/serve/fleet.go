package serve

import (
	"fmt"
	"math"

	"neu10/internal/compiler"
	"neu10/internal/core"
	"neu10/internal/metrics"
	"neu10/internal/model"
	"neu10/internal/obs"
	"neu10/internal/sim"
	"neu10/internal/virt"
	"neu10/internal/workload"
	"neu10/internal/xfer"
)

// fleet is the whole serving simulation.
type fleet struct {
	cfg    Config
	eng    *sim.Engine
	costs  *CostDB
	mapper *core.Mapper
	alloc  *core.Allocator
	// fabric is the chip-to-chip interconnect KV migrations ship over;
	// non-nil iff some tenant is disaggregated.
	fabric *xfer.Fabric

	tenants   []*tenantState
	nextVNPU  int
	nextUID   int
	durCycles float64

	// faulted gates every chaos-only report field and counter, so
	// fault-free runs render byte-identically to before; fwStart is the
	// fault window's opening edge (first scheduled event), in cycles.
	faulted bool
	fwStart float64

	// prioEnabled: any share group, non-default priority, or Preempt —
	// gates the per-priority report section so priority-unaware configs
	// render exactly as before.
	prioEnabled bool
	// preemptBudget is the aging-credit allowance in cycles:
	// MaxPreemptsPerBatch × PreemptQuantumCycles of victimization delay
	// per batch.
	preemptBudget float64
	prioLat       [numPriorities]metrics.Latencies
	switches      virt.SwitchLedger

	// time-weighted fleet accounting (lazy snapshots, like internal/cluster)
	lastSnap      float64
	allocatedEUs  int
	allocArea     float64
	strandArea    float64
	busySum       float64 // busyEUCycles of retired replicas
	mapAccepts    int
	mapRejects    int
	routeScratch  []*replica
	routeScratch2 []*replica
	batchFree     []*batch // recycled batch instances (zero-alloc steady state)

	// obs is the run's observability runtime; nil (the default) means
	// every hook site is one nil check and nothing else (see obs.go).
	obs *obsState
	// led is the attribution ledger (nil unless ObsConfig.Attrib): its
	// methods are nil-receiver-safe, so hook sites call it bare — the
	// disabled cost is one nil test inside the callee (see attrib.go).
	led *obs.Ledger
}

// newFleet validates the config and builds the fully initialized fleet
// — tenants, share groups, initial replicas, SLOs and rates — without
// scheduling any traffic, so tests can drive autoscaler and routing
// paths directly.
func newFleet(cfg Config, db *CostDB) (*fleet, error) {
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if db == nil || db.Core() != cfg.Core {
		db = NewCostDB(cfg.Core)
	}
	mapper, err := core.NewMapper(cfg.Cores, cfg.Core)
	if err != nil {
		return nil, err
	}
	mapper.Policy = cfg.Placement
	alloc, err := core.NewAllocator(cfg.Core)
	if err != nil {
		return nil, err
	}
	f := &fleet{
		cfg:           cfg,
		eng:           sim.NewEngine(),
		costs:         db,
		mapper:        mapper,
		alloc:         alloc,
		durCycles:     cfg.DurationSec * cfg.Core.FrequencyHz,
		preemptBudget: float64(cfg.MaxPreemptsPerBatch) * cfg.PreemptQuantumCycles,
	}
	if cfg.Faults != nil && len(cfg.Faults.Events) > 0 {
		f.faulted = true
		f.fwStart = math.Inf(1)
		for _, e := range cfg.Faults.Events {
			if at := e.AtFrac * f.durCycles; at < f.fwStart {
				f.fwStart = at
			}
		}
	}
	if cfg.Obs.enabled() {
		f.obs = newObsState(*cfg.Obs, cfg.Scenario, cfg.Core.FrequencyHz, len(cfg.Tenants))
		if cfg.Obs.Attrib {
			f.led = obs.NewLedger(cfg.Scenario, cfg.Core.FrequencyHz)
		}
	}
	cm := compiler.NewCostModel(cfg.Core)
	// Phase 1: build every tenant, so share groups can be resolved
	// before any slot (whose queues span the whole group) is spawned.
	for i := range cfg.Tenants {
		t := &tenantState{cfg: cfg.Tenants[i], idx: i}
		t.cfg.defaults()
		if err := t.cfg.validate(); err != nil {
			return nil, err
		}
		g, err := model.Build(t.cfg.Model, PadBatch(t.cfg.MaxBatch))
		if err != nil {
			return nil, fmt.Errorf("serve: tenant %s: %w", t.cfg.Name, err)
		}
		t.profile = cm.ProfileGraph(g)
		t.footprint = g.HBMFootprint
		t.curEUs = t.cfg.EUs
		t.arrRNG = sim.NewRNG(cfg.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
		t.routeRNG = sim.NewRNG(cfg.Seed ^ (uint64(i)+1)*0xbf58476d1ce4e5b9)
		t.replicaTL = metrics.NewTimeSeries(t.cfg.Name+"/replicas", 4096)
		if t.cfg.LLM != nil {
			t.llm = &llmTenant{rng: sim.NewRNG(cfg.Seed ^ (uint64(i)+1)*0x94d049bb133111eb)}
			if t.cfg.LLM.Trace.Sessions > 0 {
				t.llm.sess = workload.NewSessionState(t.cfg.LLM.Trace)
			}
			t.kvPaged = t.cfg.LLM.KVPolicy == KVPaged
		}
		t.batcher = newBatcher(f, t)
		f.tenants = append(f.tenants, t)
		if t.cfg.ShareGroup != "" || t.cfg.Priority != Batch {
			f.prioEnabled = true
		}
	}
	if cfg.Preempt {
		f.prioEnabled = true
	}
	for _, t := range f.tenants {
		for _, p := range f.tenants { // tenant-index order: deterministic
			if p == t || (t.cfg.ShareGroup != "" && p.cfg.ShareGroup == t.cfg.ShareGroup) {
				t.peers = append(t.peers, p)
			}
		}
	}
	// LLM peers in one share group draw from one shared KV partition per
	// slot, so their block granularity and capacity override must agree
	// — silently mixing them would misattribute every occupancy number.
	for _, t := range f.tenants {
		if t.llm == nil {
			continue
		}
		for _, p := range t.peers {
			if p.llm == nil || p == t {
				continue
			}
			if p.cfg.LLM.BlockTokens != t.cfg.LLM.BlockTokens ||
				p.cfg.LLM.KVCapTokens != t.cfg.LLM.KVCapTokens ||
				p.cfg.LLM.KVPolicy != t.cfg.LLM.KVPolicy {
				return nil, fmt.Errorf("serve: share group %q: tenants %s and %s disagree on KV settings (blocks %d/%d tokens, cap %d/%d, policy %q/%q)",
					t.cfg.ShareGroup, t.cfg.Name, p.cfg.Name,
					t.cfg.LLM.BlockTokens, p.cfg.LLM.BlockTokens,
					t.cfg.LLM.KVCapTokens, p.cfg.LLM.KVCapTokens,
					t.cfg.LLM.KVPolicy, p.cfg.LLM.KVPolicy)
			}
		}
	}
	// The interconnect exists as soon as any tenant is disaggregated;
	// per-pair links instantiate lazily on first migration.
	for _, t := range f.tenants {
		if t.disagg() != nil {
			bwPerCycle := cfg.LinkGBps * 1e9 / cfg.Core.FrequencyHz
			latency := cfg.LinkLatencyUs * 1e-6 * cfg.Core.FrequencyHz
			fab, err := xfer.NewFabric(f.eng, bwPerCycle, latency)
			if err != nil {
				return nil, err
			}
			f.fabric = fab
			break
		}
	}
	// Phase 2: spawn initial replicas and derive SLOs and offered rates
	// from the measured full-batch service time of one fresh replica.
	for _, t := range f.tenants {
		if d := t.disagg(); d != nil {
			for k := 0; k < d.PrefillReplicas; k++ {
				if err := f.spawnReplica(t, t.curEUs, RolePrefill); err != nil {
					return nil, fmt.Errorf("serve: tenant %s initial prefill replica %d: %w", t.cfg.Name, k, err)
				}
			}
			for k := 0; k < d.DecodeReplicas; k++ {
				if err := f.spawnReplica(t, t.curEUs, RoleDecode); err != nil {
					return nil, fmt.Errorf("serve: tenant %s initial decode replica %d: %w", t.cfg.Name, k, err)
				}
			}
		} else {
			for k := 0; k < t.cfg.InitialReplicas; k++ {
				if err := f.spawnReplica(t, t.curEUs, RoleMixed); err != nil {
					return nil, fmt.Errorf("serve: tenant %s initial replica %d: %w", t.cfg.Name, k, err)
				}
			}
		}
		// Warm spares: extra capacity standing by before the first fault
		// (per pool for disaggregated tenants). Best-effort — a fleet too
		// small for its spares records the misses and serves anyway.
		for k := 0; k < f.warmSpares(); k++ {
			roles := []Role{RoleMixed}
			if t.disagg() != nil {
				roles = []Role{RolePrefill, RoleDecode}
			}
			for _, role := range roles {
				if err := f.spawnReplica(t, t.curEUs, role); err != nil {
					t.scaleFails++
				}
			}
		}
		r0 := t.replicas[0]
		var full float64
		var err error
		// sloAnchor is the per-request service-time anchor the derived
		// SLO multiplies; it equals `full` (the compute anchor capacity
		// is derived from) except for disaggregated tenants, whose
		// requests additionally wait out a KV migration.
		var sloAnchor float64
		if t.llm != nil {
			// An LLM request's ideal service is a full-batch generation of
			// the MEAN shape: one prefill plus output−1 decode iterations,
			// all at MaxBatch occupancy — the SLO/capacity anchor playing
			// the role the whole-model full-batch time plays below.
			tr := t.cfg.LLM.Trace
			pre, perr := db.LLMCycles(PhasePrefill, t.cfg.MaxBatch, tr.MeanPrompt(), r0.nm, r0.nv)
			if perr != nil {
				return nil, perr
			}
			dec, derr := db.LLMCycles(PhaseDecode, t.cfg.MaxBatch, tr.MeanPrompt()+tr.OutputMean, r0.nm, r0.nv)
			if derr != nil {
				return nil, derr
			}
			full = pre + float64(tr.OutputMean-1)*dec
			sloAnchor = full
			if t.disagg() != nil {
				// The mean KV migration (bandwidth + latency) prices into
				// the LATENCY anchor only: a pipelined handoff delays each
				// request without consuming compute, so throughput — and
				// therefore the Load→rate conversion, which must match the
				// colocated baseline at equal Load — excludes it. The
				// per-pool autoscalers get per-phase objectives from the
				// same measurements.
				sloAnchor += float64(model.LLMKVTransferBytes(tr.MeanPrompt()))/(cfg.LinkGBps*1e9/cfg.Core.FrequencyHz) +
					cfg.LinkLatencyUs*1e-6*cfg.Core.FrequencyHz
				t.prefillSLO = t.cfg.SLOFactor * pre
				t.tpotSLO = t.cfg.SLOFactor * dec
			}
		} else {
			full, err = db.ServiceCycles(t.cfg.Model, t.cfg.MaxBatch, r0.nm, r0.nv)
			if err != nil {
				return nil, err
			}
			sloAnchor = full
		}
		if t.cfg.SLOMs > 0 {
			t.sloCycles = t.cfg.SLOMs / 1e3 * cfg.Core.FrequencyHz
		} else {
			t.sloCycles = t.cfg.SLOFactor * sloAnchor
			t.cfg.SLOMs = t.sloCycles / cfg.Core.FrequencyHz * 1e3
		}
		if t.cfg.BatchWindowMs > 0 {
			t.batchWindow = t.cfg.BatchWindowMs / 1e3 * cfg.Core.FrequencyHz
		} else {
			// Never burn more than a tenth of the latency budget waiting
			// for batchmates.
			t.batchWindow = t.sloCycles / 10
		}
		t.capacityRPS = float64(t.cfg.MaxBatch) / (full / cfg.Core.FrequencyHz)
		rps := t.cfg.RatePerSec
		if rps <= 0 {
			chips := t.cfg.InitialReplicas
			if d := t.disagg(); d != nil {
				// Load is offered against the whole disaggregated footprint,
				// so colocated-vs-disagg comparisons at matched chip counts
				// and equal Load see the same offered rate.
				chips = d.PrefillReplicas + d.DecodeReplicas
			}
			rps = t.cfg.Load * float64(chips) * t.capacityRPS
		}
		t.basePerCycle = rps / cfg.Core.FrequencyHz
		t.peakMult = 1
		if t.cfg.Arrival == Flash {
			t.peakMult = t.cfg.BurstFactor
		} else if t.cfg.Arrival == Diurnal {
			t.peakMult = 1 + t.cfg.DiurnalDepth
		}
	}
	return f, nil
}
