package serve

import (
	"strings"
	"testing"

	"neu10/internal/arch"
	"neu10/internal/workload"
)

// llmConfig is the shared LLM test scenario: decode-dominated requests
// with long-tailed output lengths on a fixed two-replica fleet — the
// shape where continuous and static batching genuinely diverge — small
// enough that the phase-cost buckets measure in milliseconds.
func llmConfig(seed uint64, static bool) Config {
	return Config{
		Scenario:    "llm-test",
		Core:        arch.TPUv4Like(),
		Cores:       2,
		Router:      LeastLoaded,
		DurationSec: 10.0,
		Seed:        seed,
		Tenants: []TenantConfig{{
			Name: "gen", Model: "LLaMA", Load: 0.75, EUs: 4, MaxBatch: 8, QueueCap: 32,
			InitialReplicas: 2, MaxReplicas: 2,
			LLM: &LLMConfig{Static: static, Trace: workload.LLMTrace{
				PromptMin: 16, PromptMean: 32, PromptMax: 64,
				OutputMin: 2, OutputMean: 12, OutputMax: 48}},
		}},
	}
}

// TestLLMContinuousBeatsStatic is the tentpole's headline property: on
// the identical trace (same seed, same drawn shapes), the continuous
// batcher must beat the static baseline on goodput AND p99 per-token
// latency. Static batching pads every batch to its longest output, so
// short requests ride dead lanes for whole generations.
func TestLLMContinuousBeatsStatic(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	cont, err := Run(llmConfig(1, false), db)
	if err != nil {
		t.Fatal(err)
	}
	stat, err := Run(llmConfig(1, true), db)
	if err != nil {
		t.Fatal(err)
	}
	ct, st := cont.Tenants[0], stat.Tenants[0]
	if ct.Arrivals != st.Arrivals {
		t.Fatalf("trace not identical: %d vs %d arrivals", ct.Arrivals, st.Arrivals)
	}
	if ct.LLM == nil || st.LLM == nil {
		t.Fatal("LLM report section missing")
	}
	if ct.LLM.Batcher != "continuous" || st.LLM.Batcher != "static" {
		t.Fatalf("batcher labels %q/%q", ct.LLM.Batcher, st.LLM.Batcher)
	}
	if ct.GoodputRPS <= st.GoodputRPS {
		t.Errorf("continuous goodput %.2f did not beat static %.2f", ct.GoodputRPS, st.GoodputRPS)
	}
	if ct.LLM.TPOTP99Ms >= st.LLM.TPOTP99Ms {
		t.Errorf("continuous p99 TPOT %.2fms did not beat static %.2fms",
			ct.LLM.TPOTP99Ms, st.LLM.TPOTP99Ms)
	}
	// Output tokens are a property of the trace, not the batcher.
	if ct.LLM.TokensOut != st.LLM.TokensOut {
		t.Errorf("token totals diverge: continuous %d, static %d", ct.LLM.TokensOut, st.LLM.TokensOut)
	}
	for _, tr := range []TenantReport{ct, st} {
		if tr.Arrivals != tr.Rejected+tr.Completed {
			t.Errorf("%s: %d arrivals ≠ %d rejected + %d completed",
				tr.LLM.Batcher, tr.Arrivals, tr.Rejected, tr.Completed)
		}
	}
}

// TestLLMDeterminism extends the byte-identical guarantee to LLM runs:
// same seed ⇒ identical report, shared or private cost database;
// different seed ⇒ different report.
func TestLLMDeterminism(t *testing.T) {
	shared := NewCostDB(arch.TPUv4Like())
	r1, err := Run(llmConfig(3, false), shared)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Run(llmConfig(3, false), shared)
	if err != nil {
		t.Fatal(err)
	}
	r3, err := Run(llmConfig(3, false), nil)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Table() != r2.Table() {
		t.Errorf("same seed, warm shared DB: reports differ\n%s\nvs\n%s", r1.Table(), r2.Table())
	}
	if r1.Table() != r3.Table() {
		t.Errorf("same seed, private DB: reports differ\n%s\nvs\n%s", r1.Table(), r3.Table())
	}
	r4, err := Run(llmConfig(4, false), shared)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Table() == r4.Table() {
		t.Error("different seeds produced identical LLM reports")
	}
	for _, want := range []string{"llm tenant", "ttft-p99(ms)", "tpot-p99(ms)", "kv-occ(peak)"} {
		if !strings.Contains(r1.Table(), want) {
			t.Errorf("LLM table section missing %q:\n%s", want, r1.Table())
		}
	}
}

// TestLLMKVAdmissionPressure squeezes the per-replica KV capacity with
// the KVCapTokens override until the admission rule has to act: the
// accountant must report stalls and a high peak occupancy, yet every
// request stays accounted for (queued-on-KV requests are served later,
// not lost) and the occupancy fractions stay in [0, 1]. The accountant
// itself panics on any overcommit, so completion of this test also
// certifies no reservation ever exceeded capacity.
func TestLLMKVAdmissionPressure(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	for seed := uint64(1); seed <= 3; seed++ {
		cfg := llmConfig(seed, false)
		// Max request = 64+48 = 112 tokens = 7 blocks; capacity 8 blocks.
		// MaxBatch 8 wants up to ~56 blocks — KV, not batch width, is the
		// binding constraint.
		cfg.Tenants[0].LLM.KVCapTokens = 128
		rep, err := Run(cfg, db)
		if err != nil {
			t.Fatal(err)
		}
		tr := rep.Tenants[0]
		if tr.LLM.KVStalls == 0 {
			t.Errorf("seed %d: KV capacity of 8 blocks produced no stalls — admission rule untested", seed)
		}
		if tr.LLM.KVOccPeak <= 0.5 || tr.LLM.KVOccPeak > 1 {
			t.Errorf("seed %d: peak KV occupancy %.2f not in (0.5, 1]", seed, tr.LLM.KVOccPeak)
		}
		if tr.LLM.KVOccMean < 0 || tr.LLM.KVOccMean > 1 {
			t.Errorf("seed %d: mean KV occupancy %.2f out of [0,1]", seed, tr.LLM.KVOccMean)
		}
		if tr.Arrivals != tr.Rejected+tr.Completed {
			t.Errorf("seed %d: %d arrivals ≠ %d rejected + %d completed",
				seed, tr.Arrivals, tr.Rejected, tr.Completed)
		}
		if tr.Completed == 0 {
			t.Errorf("seed %d: nothing completed under KV pressure", seed)
		}
	}
}

// TestLLMKVCapacityFloor: a replica whose KV partition cannot hold even
// one maximal request must be rejected at construction, not left to
// deadlock its queue head forever.
func TestLLMKVCapacityFloor(t *testing.T) {
	cfg := llmConfig(1, false)
	cfg.Tenants[0].LLM.KVCapTokens = 64 // max request needs 112 tokens
	if _, err := Run(cfg, nil); err == nil {
		t.Fatal("under-capacity KV partition accepted")
	}
}

// TestLLMPreemptionInterplay runs an Interactive single-shot tenant
// sharing slots with a Batch-priority LLM tenant under preemption: the
// multi-iteration decode stream must yield at quantum boundaries
// (preemptions observed), sequences must survive suspension (all
// admitted work completes), and the work-conservation ledger must hold.
func TestLLMPreemptionInterplay(t *testing.T) {
	cfg := Config{
		Scenario:    "llm-preempt",
		Core:        arch.TPUv4Like(),
		Cores:       2,
		Router:      LeastLoaded,
		DurationSec: 6.0,
		Seed:        2,
		Preempt:     true,
		// ~0.5 ms quanta: an ~86 ms decode iteration offers plenty of
		// checkpoints.
		PreemptQuantumCycles: 524_288,
		MaxPreemptsPerBatch:  64,
		Tenants: []TenantConfig{
			{Name: "chat", Model: "ENet", Priority: Interactive, ShareGroup: "pool",
				Load: 0.25, EUs: 4, MaxBatch: 4, InitialReplicas: 1, MaxReplicas: 1},
			{Name: "gen", Model: "LLaMA", Priority: Batch, ShareGroup: "pool",
				Load: 0.5, EUs: 4, MaxBatch: 4, QueueCap: 32, SLOFactor: 6,
				InitialReplicas: 1, MaxReplicas: 1,
				LLM: &LLMConfig{Trace: workload.LLMTrace{
					PromptMin: 16, PromptMean: 32, PromptMax: 64,
					OutputMin: 2, OutputMean: 8, OutputMax: 16}}},
		},
	}
	rep, err := Run(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Preemptions == 0 {
		t.Error("no preemptions: the interactive tenant never interrupted the decode stream")
	}
	for _, tr := range rep.Tenants {
		if tr.Arrivals != tr.Rejected+tr.Completed {
			t.Errorf("tenant %s: %d arrivals ≠ %d rejected + %d completed",
				tr.Name, tr.Arrivals, tr.Rejected, tr.Completed)
		}
	}
	if rep.Tenants[1].LLM == nil || rep.Tenants[1].LLM.TokensOut == 0 {
		t.Error("LLM tenant produced no tokens under preemption")
	}
}
