package serve

import (
	"neu10/internal/sim"
)

// scheduleArrival queues the next candidate arrival of the tenant's
// thinned Poisson stream. Candidates are drawn at the peak rate; each is
// accepted with probability rate(t)/peak, which realizes the exact
// non-homogeneous process deterministically from the tenant's RNG.
func (f *fleet) scheduleArrival(t *tenantState) {
	gap := t.arrRNG.Exp(1 / (t.basePerCycle * t.peakMult))
	at := float64(f.eng.Now()) + gap
	if at > f.durCycles {
		return // traffic ends with the scenario; in-flight work drains
	}
	f.eng.At(sim.Time(at), func(now sim.Time) {
		if t.arrRNG.Float64()*t.peakMult <= t.rateMult(float64(now), f.durCycles) {
			f.arrive(t, now)
		}
		f.scheduleArrival(t)
	})
}

// arrive routes one request and applies admission control: a request
// bound for a slot where the tenant's queue is at QueueCap is rejected
// (shed at the front door) rather than queued into certain SLO
// violation. A tenant with no replica at all — not even a draining one
// — also sheds (admission-reject); route documents when that happens.
func (f *fleet) arrive(t *tenantState, now sim.Time) {
	t.arrivals++
	if f.faulted && float64(now) >= f.fwStart {
		t.fwArrivals++
	}
	req := request{at: now, id: int64(t.arrivals)}
	if t.llm != nil {
		// Shape draws happen before admission, so every configuration
		// compared on a seed (continuous vs static, any router) sees the
		// identical request trace. Session traces likewise evolve their
		// chains here, independent of serving outcomes.
		if t.llm.sess != nil {
			shape := t.cfg.LLM.Trace.DrawSession(t.llm.rng, t.llm.sess)
			req.prompt, req.output = shape.Prompt, shape.Output
			req.prefix, req.sealKey = shape.Prefix, shape.SealKey
		} else {
			shape := t.cfg.LLM.Trace.Draw(t.llm.rng)
			req.prompt, req.output = shape.Prompt, shape.Output
		}
	}
	r := f.route(t)
	if r == nil {
		t.rejected++
		if f.cfg.Autoscale {
			t.windowRejected++
		}
		if f.obs != nil {
			f.obs.trace.Instant("reject", "req", t.cfg.Name, obsTrackControl, float64(now), req.id, "", 0, "reason", "no-replica")
		}
		return
	}
	q := r.queueFor(t)
	if len(q.reqs) >= t.cfg.QueueCap {
		t.rejected++
		if f.cfg.Autoscale {
			t.windowRejected++
		}
		if f.obs != nil {
			f.obs.trace.Instant("reject", "req", t.cfg.Name, obsTrackControl, float64(now), req.id, "", 0, "reason", "queue-cap")
		}
		return
	}
	if f.obs != nil {
		f.obs.trace.Begin("queue", "req", t.cfg.Name, float64(now), req.id)
	}
	f.led.ReqStart(t.cfg.Name, req.id, float64(now))
	q.reqs = append(q.reqs, req)
	if len(q.reqs) > t.maxQueue {
		t.maxQueue = len(q.reqs)
	}
	f.poke(r, t, now)
}

// route picks the target slot among the serving group's non-draining
// replicas (the tenant's own, plus every share-group peer's). All ties
// break toward the older slot (smaller fleet-wide uid), keeping the
// decision deterministic.
//
// When every slot in the group is draining — make-before-break resize
// churn and preemptive drains reach exactly this state — the request
// falls back deterministically to the least-loaded *draining* slot: a
// draining slot still serves its queue to completion, so queueing
// there beats shedding. (Before this guard the function indexed
// cands[0] on an empty slice, and the PowerOfTwo path called
// routeRNG.Intn(0); a fully draining tenant panicked the router.)
// Only a tenant with no replicas at all returns nil, and arrive then
// sheds the request.
func (f *fleet) route(t *tenantState) *replica {
	cands := f.routeScratch[:0]
	for _, p := range t.peers {
		for _, r := range p.replicas {
			if !r.draining && t.batcher.admitsArrival(r) {
				cands = append(cands, r)
			}
		}
	}
	f.routeScratch = cands
	if len(cands) == 0 {
		// Prefer a draining slot where t's queue still has room (the
		// same open-queue filter the non-draining path applies below) so
		// the fallback never sheds while a sibling could still queue.
		var pick, open *replica
		better := func(r, cur *replica) bool {
			return cur == nil || r.backlog() < cur.backlog() ||
				(r.backlog() == cur.backlog() && r.uid < cur.uid)
		}
		for _, p := range t.peers {
			for _, r := range p.replicas {
				if !t.batcher.admitsArrival(r) {
					continue
				}
				if better(r, pick) {
					pick = r
				}
				if len(r.queueFor(t).reqs) < t.cfg.QueueCap && better(r, open) {
					open = r
				}
			}
		}
		if open != nil {
			return open
		}
		return pick
	}
	// On a shared pool the load signal (whole-slot backlog) can disagree
	// with the tenant's own queue depth — a slot can look light because
	// the PEER's queue is empty while t's queue there is already at
	// QueueCap. Never route into a full per-tenant queue while a sibling
	// slot still has room; when every queue is full, fall through to the
	// plain candidates and let admission shed as before.
	if len(t.peers) > 1 {
		open := f.routeScratch2[:0]
		for _, r := range cands {
			if len(r.queueFor(t).reqs) < t.cfg.QueueCap {
				open = append(open, r)
			}
		}
		f.routeScratch2 = open
		if len(open) > 0 {
			cands = open
		}
	}
	if len(cands) == 1 {
		return cands[0]
	}
	load := func(r *replica) int {
		if f.cfg.Router == JSQ {
			return r.queued()
		}
		return r.backlog()
	}
	if f.cfg.Router == PowerOfTwo {
		i := t.routeRNG.Intn(len(cands))
		j := t.routeRNG.Intn(len(cands) - 1)
		if j >= i {
			j++
		}
		a, b := cands[i], cands[j]
		if load(b) < load(a) || (load(b) == load(a) && b.uid < a.uid) {
			return b
		}
		return a
	}
	best := cands[0]
	for _, r := range cands[1:] {
		if load(r) < load(best) || (load(r) == load(best) && r.uid < best.uid) {
			best = r
		}
	}
	return best
}
