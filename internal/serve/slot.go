package serve

import (
	"neu10/internal/sched"
	"neu10/internal/sim"
)

// Slot scheduling: dynamic batching plus priority-aware preemptive
// temporal sharing. A replica is a slot that can interleave batches
// from every tenant in its share group. With Config.Preempt off, the
// slot serves its queues FIFO by arrival (the no-priority baseline);
// with it on, a waiting higher-priority batch preempts the in-flight
// lower-priority one at the next µTOp-quantum boundary:
//
//	maybePreempt: pick boundary via sched.CheckpointAt ──► suspend:
//	cancel completion, bank Remaining (work conservation), pay the
//	checkpoint save (virt.SwitchCycles), launch the preemptor ──►
//	dispatch on completion: resume the suspended batch (paying the
//	restore) unless an even higher-priority queue is waiting and the
//	victim still has aging credit.
//
// Starvation is bounded by AGING CREDIT, denominated in delay rather
// than events: every batch tolerates up to MaxPreemptsPerBatch ×
// PreemptQuantumCycles cycles of victimization wait (time suspended,
// whether it got there by preemption or was bypassed while suspended).
// A batch whose accrued wait exhausts the credit is immune to further
// preemption and bypass, so its total extra delay is hard-bounded in
// cycles — many cheap interruptions spend the credit slowly, one long
// one spends it at once, and either way the victim's wait cannot
// exceed the budget plus the one interloper in flight when the credit
// ran out.

// takeBatch returns a recycled (or new) batch instance; retired
// batches go back through putBatch so the steady-state launch path
// reuses both the struct and its request slice instead of allocating
// per invocation (the same pooling discipline as sched's µTOp pool).
func (f *fleet) takeBatch() *batch {
	if n := len(f.batchFree); n > 0 {
		b := f.batchFree[n-1]
		f.batchFree[n-1] = nil
		f.batchFree = f.batchFree[:n-1]
		return b
	}
	return &batch{}
}

func (f *fleet) putBatch(b *batch) {
	for i := range b.seqs {
		b.seqs[i] = nil
	}
	reqs, seqs, chunks := b.reqs[:0], b.seqs[:0], b.chunks[:0]
	*b = batch{reqs: reqs, seqs: seqs, chunks: chunks}
	f.batchFree = append(f.batchFree, b)
}

// creditLeft returns the unexhausted victimization allowance of batch
// b at `now`, counting the open suspension interval. ≤ 0 means immune:
// b can neither be preempted (while running) nor bypassed (while
// suspended) again.
func (f *fleet) creditLeft(b *batch, now sim.Time) float64 {
	w := b.victimWait
	if b.waiting {
		w += float64(now - b.waitFrom)
	}
	return f.preemptBudget - w
}

// disarmTimer cancels the slot's armed batch-window timer, if any.
func (f *fleet) disarmTimer(r *replica) {
	if r.timerSet {
		f.eng.Cancel(r.timer)
		r.timerSet = false
	}
}

// bestWork is the slot's SINGLE DECISION POINT: every queue's batcher
// proposes its launchable work (batcher.next), and the slot picks the
// highest-priority proposal under Preempt, else FIFO by each
// proposal's oldest waiting request. Ties break by arrival time, then
// by tenant index (queue order), so the choice is deterministic. Each
// wakeup (arrival poke, timer, completion, resume) derives the
// decision at most once and threads it straight into launch — see
// BenchmarkBestWork/BenchmarkDispatchChain for the hot-path cost.
func (f *fleet) bestWork(r *replica) (*slotQueue, batchKind) {
	var pick *slotQueue
	var kind batchKind
	var pickKey sim.Time
	for i := range r.qs {
		q := &r.qs[i]
		k, key, ok := q.ten.batcher.next(r, q)
		if !ok {
			continue
		}
		if pick != nil {
			if f.cfg.Preempt {
				if q.ten.cfg.Priority < pick.ten.cfg.Priority {
					continue
				}
				if q.ten.cfg.Priority == pick.ten.cfg.Priority && key >= pickKey {
					continue
				}
			} else if key >= pickKey {
				continue
			}
		}
		pick, kind, pickKey = q, k, key
	}
	return pick, kind
}

// launch starts the given kind of work from queue q on slot r, with
// `restore` switch cycles to pay first (a just-preempted victim's
// checkpoint save, or zero). Every other queue's batcher is told it
// was passed over — the hook static LLM queues use to count
// KV-pressure stalls.
func (f *fleet) launch(r *replica, q *slotQueue, kind batchKind, now sim.Time, restore float64) {
	for i := range r.qs {
		if sq := &r.qs[i]; sq != q {
			sq.ten.batcher.passedOver(r, sq)
		}
	}
	q.ten.batcher.launch(r, q, kind, now, restore)
}

// poke reacts to a new arrival of tenant t on slot r: it may preempt
// the running batch, launch immediately when t's queue already fills a
// batch, or arm the batch-window timer so stragglers can coalesce. On
// a shared slot each tenant waits at most its OWN window: when the
// armed deadline (set by a slower tenant's window) lands later than
// this arrival's, the timer is re-armed to the sooner deadline, so an
// Interactive request is never held behind a Batch tenant's much
// longer coalescing wait.
func (f *fleet) poke(r *replica, t *tenantState, now sim.Time) {
	if r.retired {
		return
	}
	if r.cur != nil {
		f.maybePreempt(r, now)
		return
	}
	// A non-coalescing batcher (continuous LLM, disagg) never waits at
	// the door: joins happen at iteration boundaries, so an idle slot
	// starts work immediately — but only non-coalescing work. On a
	// shared slot the best work can be a PEER's queue still coalescing
	// under an armed batch-window timer; launching it early here would
	// defeat the peer's batching, so anything else keeps its own trigger
	// (timer, completion, or a suspended batch's resume through the
	// regular dispatch path).
	if !t.batcher.coalesces() {
		if len(r.susp) > 0 {
			f.dispatch(r, now)
			return
		}
		if q, kind := f.bestWork(r); q != nil && !q.ten.batcher.coalesces() {
			f.launch(r, q, kind, now, 0)
		}
		return
	}
	if len(r.queueFor(t).reqs) >= t.cfg.MaxBatch {
		f.dispatch(r, now)
		return
	}
	deadline := now + sim.Time(t.batchWindow) + 1
	if r.timerSet {
		if deadline >= r.timerAt {
			return
		}
		f.eng.Cancel(r.timer)
	}
	r.timerSet = true
	r.timerAt = deadline
	r.timer = f.eng.At(deadline, func(now sim.Time) {
		r.timerSet = false
		if r.cur == nil && !r.retired {
			f.dispatch(r, now)
		}
	})
}

// dispatch fills a free slot: resume the most recently suspended batch
// or launch from the best ready queue — and under Preempt, let a
// strictly higher-priority queue bypass the suspended batch while its
// preempt budget lasts. A draining slot with nothing left retires.
func (f *fleet) dispatch(r *replica, now sim.Time) {
	if r.retired || r.cur != nil {
		return
	}
	if n := len(r.susp); n > 0 {
		top := r.susp[n-1]
		if f.cfg.Preempt {
			if q, kind := f.bestWork(r); q != nil && q.ten.cfg.Priority > top.ten.cfg.Priority &&
				f.creditLeft(top, now) > 0 {
				// A bypass spends the same aging credit a preemption
				// does — the victim keeps waiting, and that wait is what
				// the credit denominates.
				top.preempts++
				if top.preempts > top.ten.maxPreempts {
					top.ten.maxPreempts = top.preempts
				}
				if f.obs != nil {
					f.obs.trace.Instant("bypass", "sched", r.ten.cfg.Name, obsReplicaTrack(r), float64(now), -1, "preempts", int64(top.preempts), "victim", top.ten.cfg.Name)
				}
				f.launch(r, q, kind, now, 0)
				return
			}
		}
		r.susp = r.susp[:n-1]
		f.resume(r, top, now)
		return
	}
	if q, kind := f.bestWork(r); q != nil {
		f.launch(r, q, kind, now, 0)
		return
	}
	if r.draining && r.idleEmpty() {
		f.retire(r, now)
	}
}

// startSegment puts batch b in service on slot r and schedules the
// segment's completion: restore debt first, then the remaining service.
func (f *fleet) startSegment(r *replica, b *batch, now sim.Time) {
	b.started = now
	r.cur = b
	f.led.RepMark(r.uid, ledBusyBucket(b.kind), float64(now))
	seg := b.restore + b.remaining
	b.doneH = f.eng.After(sim.Time(seg)+1, func(now sim.Time) { f.finish(r, b, now) })
}

// finish retires a completed invocation through its tenant's batcher —
// per-request latencies for single-shot batches, generation
// bookkeeping for LLM kinds (llm.go) — settles the work-conservation
// ledger, then refills the slot. A batcher may return a chained batch
// to keep the slot occupied (the static LLM prefill chains its decode
// leg, static batching's defining trait).
func (f *fleet) finish(r *replica, b *batch, now sim.Time) {
	t := b.ten
	if f.obs != nil {
		f.obs.trace.Span(obsBatchName[b.kind], "exec", r.ten.cfg.Name, obsReplicaTrack(r),
			float64(b.started), float64(now), -1, "width", int64(obsBatchWidth(b)), "preempts", int64(b.preempts), "tenant", t.cfg.Name)
	}
	chain := t.batcher.finish(r, b, now)
	r.busyEUCycles += (b.restore + b.remaining) * float64(r.nm+r.nv)
	t.servedServiceCycles += b.remaining
	r.cur = nil
	if r.preemptSet { // defensive: a preemption can never outlive its target
		f.eng.Cancel(r.preemptH)
		r.preemptSet = false
	}
	wasDecode := b.kind == kindLLMDecode
	f.putBatch(b)
	if chain != nil {
		f.startSegment(r, chain, now)
		return
	}
	f.ledRepIdle(r, now)
	// A crash-time rebalance that found its movable sequences locked
	// inside this very iteration parked itself; the batch boundary is
	// the first instant their state is frozen and shippable.
	if wasDecode && t.llm != nil && t.llm.rebalPending {
		t.llm.rebalPending = false
		f.rebalanceDecode(t, now)
	}
	f.dispatch(r, now)
}

// maybePreempt checks whether the running batch should yield to a
// waiting higher-priority one and, if so, schedules the suspension at
// the next µTOp-quantum boundary (sched.CheckpointAt). Each segment is
// guaranteed at least one quantum of fresh progress, so preemption can
// never livelock a batch, and MaxPreemptsPerBatch caps how often one
// batch yields at all.
func (f *fleet) maybePreempt(r *replica, now sim.Time) {
	if !f.cfg.Preempt || r.cur == nil || r.preemptSet {
		return
	}
	b := r.cur
	q, _ := f.bestWork(r)
	if q == nil || q.ten.cfg.Priority <= b.ten.cfg.Priority {
		return
	}
	if f.creditLeft(b, now) <= 0 {
		return // aging credit exhausted: the batch runs non-preemptible
	}
	done := b.total - b.remaining
	serviceStart := float64(b.started) + b.restore
	elapsed := done + (float64(now) - serviceStart)
	if elapsed < done {
		elapsed = done // still paying the restore: no service progress yet
	}
	rp := sched.CheckpointAt(b.total, elapsed, f.cfg.PreemptQuantumCycles)
	if rp.Completed <= done {
		// Sitting exactly on the last checkpoint: insist on one quantum
		// of fresh progress before yielding again.
		rp = sched.CheckpointAt(b.total, done+f.cfg.PreemptQuantumCycles, f.cfg.PreemptQuantumCycles)
	}
	if rp.Remaining < 1 {
		return // the batch completes at (or within a cycle of) the boundary
	}
	at := serviceStart + (rp.Completed - done)
	r.preemptSet = true
	r.preemptH = f.eng.At(sim.Time(at)+1, func(now sim.Time) { f.suspend(r, b, rp, now) })
}

// suspend checkpoints the running batch at its quantum boundary: the
// completed fraction rp reports is banked (work conservation: served +
// Remaining == total exactly), the checkpoint save is charged to the
// slot, and the waiting higher-priority batch launches behind it.
func (f *fleet) suspend(r *replica, b *batch, rp sched.ResumePoint, now sim.Time) {
	r.preemptSet = false
	if r.cur != b {
		return // the batch finished first (defensive; finish cancels us)
	}
	q, kind := f.bestWork(r)
	if q == nil || q.ten.cfg.Priority <= b.ten.cfg.Priority {
		return // urgency evaporated before the boundary (defensive)
	}
	f.eng.Cancel(b.doneH)
	t := b.ten
	if f.obs != nil {
		// The partial segment served so far becomes its own exec slice;
		// the "preempt" instant marks the checkpoint boundary.
		f.obs.trace.Span(obsBatchName[b.kind], "exec", r.ten.cfg.Name, obsReplicaTrack(r),
			float64(b.started), float64(now), -1, "width", int64(obsBatchWidth(b)), "partial", 1, "tenant", t.cfg.Name)
		f.obs.trace.Instant("preempt", "sched", r.ten.cfg.Name, obsReplicaTrack(r), float64(now), -1, "preempts", int64(b.preempts+1), "victim", t.cfg.Name)
	}
	t.servedServiceCycles += rp.Completed - (b.total - b.remaining)
	r.busyEUCycles += float64(now-b.started) * float64(r.nm+r.nv)
	b.remaining = rp.Remaining
	b.preempts++
	if b.preempts > t.maxPreempts {
		t.maxPreempts = b.preempts
	}
	t.preempted++
	q.ten.preemptsIssued++
	sw := f.switches.RecordPreempt(r.nm, r.nv)
	t.stolenCycles += sw
	r.cur = nil
	b.waiting, b.waitFrom = true, now
	r.susp = append(r.susp, b)
	f.ledSuspend(b, now)
	// The preemptor pays the victim's checkpoint save before it runs.
	f.launch(r, q, kind, now, sw)
}

// resume restores a suspended batch: it owes exactly its banked
// remaining service plus the checkpoint-restore debt. The closed
// suspension interval is charged against the batch's aging credit.
func (f *fleet) resume(r *replica, b *batch, now sim.Time) {
	t := b.ten
	if b.waiting {
		b.victimWait += float64(now - b.waitFrom)
		b.waiting = false
		if b.victimWait > t.maxVictimWait {
			t.maxVictimWait = b.victimWait
		}
	}
	sw := f.switches.RecordResume(r.nm, r.nv)
	b.restore = sw
	t.resumes++
	t.stolenCycles += sw
	if f.obs != nil {
		f.obs.trace.Instant("resume", "sched", r.ten.cfg.Name, obsReplicaTrack(r), float64(now), -1, "preempts", int64(b.preempts), "victim", t.cfg.Name)
	}
	f.ledResume(b, now)
	f.startSegment(r, b, now)
}
