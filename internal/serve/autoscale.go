package serve

import (
	"fmt"

	"neu10/internal/cluster"
	"neu10/internal/core"
	"neu10/internal/model"
	"neu10/internal/sim"
)

// The autoscaler: a periodic control loop that compares each tenant's
// windowed p99 latency against its SLO and adjusts the tenant's vNPU
// fleet through the paper's machinery — every replica is sized by the
// §III-B allocator (EU budget → utilization-optimal ME:VE split) and
// placed by the §III-C mapper under the configured cluster policy.
//
// Decision ladder per tenant, per interval:
//
//  1. violated & below MaxReplicas      → scale OUT: spawn one replica.
//  2. violated & at MaxReplicas         → scale UP: spawn one replica at
//     EUs+2 (make-before-break) and drain a small one — the vertical
//     grow path, re-running the allocator at the larger budget.
//  3. calm & above MinReplicas          → scale IN: drain one replica.
//  4. calm & grown & at MinReplicas     → scale DOWN: spawn one replica
//     at EUs−2 and drain a big one — vertical shrink back toward the
//     configured budget.
//
// "Violated" means the window saw rejections, a p99 above
// ScaleUpP99Frac×SLO, or queued work with zero completions (a stalled
// fleet has no percentiles to read). "Calm" means no rejections and a
// p99 under ScaleDownP99Frac×SLO. Draining replicas stop receiving new
// requests and retire once their queue empties, so no admitted request
// is ever dropped by a scaling action.

// scheduleScale runs the control loop every `every` cycles until the
// scenario's traffic ends.
func (f *fleet) scheduleScale(every float64) {
	var tick func(at float64)
	tick = func(at float64) {
		if at > f.durCycles {
			return
		}
		f.eng.At(sim.Time(at), func(now sim.Time) {
			f.snapshot(float64(now))
			for _, t := range f.tenants {
				f.scaleTenant(t, now)
			}
			tick(at + every)
		})
	}
	tick(every)
}

func (f *fleet) scaleTenant(t *tenantState, now sim.Time) {
	if t.disagg() != nil {
		f.scaleTenantDisagg(t, now)
		return
	}
	// Resurrection floor, checked BEFORE the ladder: MinReplicas is a
	// capacity promise, not a decay asymptote. A fleet crashed below it
	// (fault.go) presents an empty window — no samples, and a backlog of
	// zero once everything shed — which the ladder reads as idle calm;
	// without this a tenant crashed to nothing would stay dead forever
	// while every arrival sheds at the door. Warm spares raise the floor
	// the same way they raised the initial spawn.
	floor := t.cfg.MinReplicas + f.warmSpares()
	for t.activeCount() < floor {
		if err := f.spawnReplica(t, t.curEUs, RoleMixed); err != nil {
			t.scaleFails++
			break
		}
		t.scaleUps++
	}
	samples := t.windowLat.Count()
	p99 := t.windowLat.P99()
	backlog := f.tenantBacklog(t)
	violated := t.windowRejected > 0 ||
		(samples > 0 && p99 > f.cfg.ScaleUpP99Frac*t.sloCycles) ||
		(samples == 0 && backlog > t.cfg.MaxBatch)
	// An empty window is read three ways, not two. With queued or
	// suspended work it is either violated (deep backlog, above) or a
	// deliberate HOLD (work in flight but nothing completed — a
	// preemption-heavy interval, or service times longer than the
	// window — where percentiles would be guesses). With no work at all
	// it DECAYS: a truly idle tenant is calm, so the fleet shrinks
	// toward MinReplicas instead of freezing at its last size forever.
	idle := samples == 0 && backlog == 0
	calm := t.windowRejected == 0 &&
		((samples > 0 && p99 < f.cfg.ScaleDownP99Frac*t.sloCycles) || idle)

	switch {
	case violated && t.activeCount() < t.cfg.MaxReplicas:
		if err := f.spawnReplica(t, t.curEUs, RoleMixed); err != nil {
			t.scaleFails++
		} else {
			t.scaleUps++
		}
	case violated && f.splitFits(t, t.curEUs+2):
		// Horizontal headroom exhausted: grow the vNPU size instead.
		if err := f.spawnReplica(t, t.curEUs+2, RoleMixed); err != nil {
			t.scaleFails++
		} else {
			t.curEUs += 2
			t.resizes++
			f.drainOne(t, RoleMixed, now, true)
		}
	case calm && t.activeCount() > floor:
		f.drainOne(t, RoleMixed, now, false)
		t.scaleDowns++
	case calm && t.curEUs > t.cfg.EUs:
		// Idle and previously grown: shrink back toward the configured
		// budget, again make-before-break.
		if err := f.spawnReplica(t, t.curEUs-2, RoleMixed); err != nil {
			t.scaleFails++
		} else {
			t.curEUs -= 2
			t.resizes++
			f.drainOne(t, RoleMixed, now, true)
		}
	}
	t.windowLat.Reset()
	t.windowRejected = 0
}

// scaleTenantDisagg runs the two independent per-pool control loops of
// a disaggregated tenant. Each pool reads its OWN signal — the shared
// end-to-end p99 would conflate a slow link, a prompt burst and a
// decode backlog into one number and scale the wrong pool:
//
//   - The prefill pool scales against windowed p99 QUEUE DELAY (arrival
//     → first prefill invocation) vs prefillSLO, plus admission
//     rejections — arrivals only ever touch prefill slots, so sheds and
//     queue growth are prefill-pool symptoms by construction.
//   - The decode pool scales against windowed TPOT p99 vs tpotSLO,
//     plus migration stalls — a prefill completion that found no
//     admitting decode slot is a direct "decode pool full" signal, and
//     reacting to it drains the parked migrations.
//
// Both pools apply the same hold/decay reading of an empty window as
// the colocated ladder; vertical resizes stay a colocated-only move
// (one EU budget serves both pools).
func (f *fleet) scaleTenantDisagg(t *tenantState, now sim.Time) {
	d := t.cfg.LLM.Disagg
	l := t.llm

	// Per-pool resurrection floors — see scaleTenant: a pool crashed
	// below its Min (+ warm spares) must come back regardless of what
	// the windowed signals say about an empty window.
	preFloor := d.MinPrefill + f.warmSpares()
	for t.activeRole(RolePrefill) < preFloor {
		if err := f.spawnReplica(t, t.curEUs, RolePrefill); err != nil {
			t.scaleFails++
			break
		}
		t.scaleUps++
	}
	decFloor := d.MinDecode + f.warmSpares()
	for t.activeRole(RoleDecode) < decFloor {
		if err := f.spawnReplica(t, t.curEUs, RoleDecode); err != nil {
			t.scaleFails++
			break
		}
		t.scaleUps++
		f.drainMigQ(t, now)
	}

	// The pool's backlog is queued arrivals PLUS prompts mid-prefill —
	// a window with empty queues but chunked prefills still in flight
	// is busy, not idle (sequences already handed to migration hold no
	// prefill compute and do not count).
	preBacklog := 0
	for _, r := range t.replicas {
		if r.role == RolePrefill {
			if q := r.queueFor(t); q != nil {
				preBacklog += len(q.reqs)
				for _, s := range q.running {
					if s.promptDone < s.req.prompt {
						preBacklog++
					}
				}
			}
		}
	}
	waitN := l.windowWait.Count()
	waitP99 := l.windowWait.P99()
	preViolated := t.windowRejected > 0 ||
		(waitN > 0 && waitP99 > f.cfg.ScaleUpP99Frac*t.prefillSLO) ||
		(waitN == 0 && preBacklog > t.cfg.MaxBatch)
	preIdle := waitN == 0 && preBacklog == 0
	preCalm := t.windowRejected == 0 &&
		((waitN > 0 && waitP99 < f.cfg.ScaleDownP99Frac*t.prefillSLO) || preIdle)
	switch {
	case preViolated && t.activeRole(RolePrefill) < d.MaxPrefill:
		if err := f.spawnReplica(t, t.curEUs, RolePrefill); err != nil {
			t.scaleFails++
		} else {
			t.scaleUps++
		}
	case preCalm && t.activeRole(RolePrefill) > preFloor:
		f.drainOne(t, RolePrefill, now, false)
		t.scaleDowns++
	}

	decBusy := len(l.migQ)
	for _, r := range t.replicas {
		if r.role == RoleDecode {
			if q := r.queueFor(t); q != nil {
				decBusy += len(q.running)
			}
			decBusy += r.inbound
		}
	}
	tpotN := l.windowTPOT.Count()
	tpotP99 := l.windowTPOT.P99()
	decViolated := l.windowMigStalls > 0 ||
		(tpotN > 0 && tpotP99 > f.cfg.ScaleUpP99Frac*t.tpotSLO)
	decIdle := tpotN == 0 && decBusy == 0
	// A parked migration queue vetoes calm outright: the backlog shows
	// up as migration WAIT, not TPOT (decode iterations stay healthy by
	// construction), so per-iteration percentiles alone would happily
	// drain the exact pool whose admission is the bottleneck.
	decCalm := l.windowMigStalls == 0 && len(l.migQ) == 0 &&
		((tpotN > 0 && tpotP99 < f.cfg.ScaleDownP99Frac*t.tpotSLO) || decIdle)
	switch {
	case decViolated && t.activeRole(RoleDecode) < d.MaxDecode:
		if err := f.spawnReplica(t, t.curEUs, RoleDecode); err != nil {
			t.scaleFails++
		} else {
			t.scaleUps++
			// A fresh decode slot can admit parked migrations immediately.
			f.drainMigQ(t, now)
		}
	case decCalm && t.activeRole(RoleDecode) > decFloor:
		f.drainOne(t, RoleDecode, now, false)
		t.scaleDowns++
	}

	l.windowWait.Reset()
	l.windowTPOT.Reset()
	l.windowMigStalls = 0
	t.windowLat.Reset()
	t.windowRejected = 0
}

// tenantBacklog counts t's own outstanding requests — queued, in
// service or suspended — across every slot in its serving group. On
// shared slots this deliberately follows the tenant's requests to
// peers' replicas: each tenant autoscales against its own demand, not
// the pool's.
func (f *fleet) tenantBacklog(t *tenantState) int {
	n := 0
	for _, p := range t.peers {
		for _, r := range p.replicas {
			if q := r.queueFor(t); q != nil {
				n += len(q.reqs) + len(q.running)
			}
			if r.cur != nil && r.cur.ten == t && r.cur.kind == kindInvoke {
				n += len(r.cur.reqs)
			}
			for _, b := range r.susp {
				if b.ten == t && b.kind == kindInvoke {
					n += len(b.reqs)
				}
			}
		}
	}
	return n
}

// splitFits reports whether the allocator's split at the given EU budget
// can map onto one physical core at all.
func (f *fleet) splitFits(t *tenantState, eus int) bool {
	nm, nv, err := f.alloc.ChooseSplit(t.profile.M, t.profile.V, eus)
	if err != nil {
		return false
	}
	return nm <= f.cfg.Core.MEs && nv <= f.cfg.Core.VEs
}

// spawnReplica sizes a new vNPU with the §III-B allocator at the given
// EU budget, maps it through the §III-C mapper under the fleet's
// placement policy, and puts it in service. For disaggregated tenants
// the role specializes the slot (and its KV floor: a prefill slot only
// ever holds prompt KV); colocated callers pass RoleMixed.
func (f *fleet) spawnReplica(t *tenantState, eus int, role Role) error {
	a, err := f.alloc.Allocate(t.profile, t.footprint, eus)
	if err != nil {
		return err
	}
	vc := f.alloc.ConfigFor(a)
	if vc.NumMEsPerCore > f.cfg.Core.MEs || vc.NumVEsPerCore > f.cfg.Core.VEs {
		return fmt.Errorf("serve: %dME+%dVE vNPU exceeds the physical core", vc.NumMEsPerCore, vc.NumVEsPerCore)
	}
	// Cap memory so several tenants can share one pNPU's HBM — the same
	// collocation headroom internal/cluster's request catalog leaves.
	if vc.MemSizePerCore > f.cfg.Core.HBMBytes/2 {
		vc.MemSizePerCore = f.cfg.Core.HBMBytes / 2
	}
	// LLM peers need a KV-cache partition carved out of this slot's HBM
	// (§III memory partitioning): whatever MemSizePerCore leaves after
	// the LLM's resident weights, block-granular. A slot whose share
	// group includes LLM peers must provision for them even when its
	// owner's own model is small: its partition grows to the LLM weights
	// plus at least one maximal request's KV per LLM peer — the floor
	// below which a queue head could block forever.
	var kv kvBackend
	{
		var weights, minKV int64
		blockTokens, capOverride, anyLLM := 0, 0, false
		for _, p := range t.peers {
			if p.llm == nil {
				continue
			}
			anyLLM = true
			weights += model.LLMWeightBytes()
			if blockTokens == 0 {
				blockTokens = p.cfg.LLM.BlockTokens
			}
			if p.cfg.LLM.KVCapTokens > 0 {
				capOverride = p.cfg.LLM.KVCapTokens
			}
			worst := p.cfg.LLM.Trace.MaxTokens()
			if role == RolePrefill && f.cfg.Faults == nil {
				// A prefill slot only ever holds prompt KV: generated
				// tokens live on the decode side of the migration. Under
				// fault injection a crash replay folds generated tokens
				// back into the prompt (up to MaxTokens−1), so faulted
				// fleets keep the full floor — otherwise a replayed head
				// could block the prefill queue forever.
				worst = p.cfg.LLM.Trace.MaxPrompt()
			}
			worstTokens := (worst + blockTokens - 1) / blockTokens * blockTokens
			minKV += int64(worstTokens) * model.LLMKVBytesPerToken()
		}
		if anyLLM {
			if need := weights + minKV; vc.MemSizePerCore < need {
				if need > f.cfg.Core.HBMBytes {
					return fmt.Errorf("serve: tenant %s: share group needs %d HBM bytes for LLM weights+KV, core has %d",
						t.cfg.Name, need, f.cfg.Core.HBMBytes)
				}
				vc.MemSizePerCore = need
			}
			capBytes := vc.MemSizePerCore - weights
			if capOverride > 0 {
				capBytes = int64(capOverride) * model.LLMKVBytesPerToken()
			}
			kv = f.newKVBackend(t, capBytes, blockTokens)
			for _, p := range t.peers {
				if p.llm == nil {
					continue
				}
				worstTok := p.cfg.LLM.Trace.MaxTokens()
				if role == RolePrefill && f.cfg.Faults == nil {
					worstTok = p.cfg.LLM.Trace.MaxPrompt()
				}
				// The floor holds under EITHER backend: with full
				// reservation it keeps the queue head admissible; with
				// paging it guarantees one maximal sequence can always be
				// made resident by evicting everything else — the
				// eviction-progress guarantee.
				if worst := kv.blocksFor(worstTok); worst > kv.total() {
					return fmt.Errorf("serve: tenant %s: %s replica KV capacity of %d blocks cannot hold one maximal request of %s (%d blocks)",
						t.cfg.Name, role, kv.total(), p.cfg.Name, worst)
				}
			}
		}
	}
	v := &core.VNPU{ID: f.nextVNPU, Tenant: t.cfg.Name, Config: vc, State: core.StateCreated}
	f.nextVNPU++
	if err := f.mapper.Map(v, core.SpatialIsolated); err != nil {
		f.mapRejects++
		return err
	}
	f.mapAccepts++
	now := float64(f.eng.Now())
	f.snapshot(now)
	f.allocatedEUs += vc.TotalEUs()
	// Pre-measure the service-time buckets this slot can be asked for —
	// for EVERY tenant in the share group, since any member's batches
	// may land here — so launches never fail and cost measurement stays
	// off the serving hot path. LLM peers pre-measure their phase-cost
	// buckets (prefill × prompt, decode × context) instead.
	for _, p := range t.peers {
		var err error
		if p.llm != nil {
			err = f.preMeasureLLM(p, a.MEs, a.VEs)
		} else {
			for b := 1; b <= PadBatch(p.cfg.MaxBatch) && err == nil; b <<= 1 {
				_, err = f.costs.ServiceCycles(p.cfg.Model, b, a.MEs, a.VEs)
			}
		}
		if err != nil {
			f.mapper.Unmap(v)
			f.allocatedEUs -= vc.TotalEUs()
			f.mapAccepts--
			return err
		}
	}
	r := &replica{id: t.nextReplicaID, uid: f.nextUID, ten: t, vnpu: v, nm: a.MEs, nv: a.VEs, eus: eus, role: role, kv: kv}
	f.nextUID++
	t.nextReplicaID++
	if p, ok := kv.(*pagedKV); ok {
		// The paged backend needs its slot for swap scheduling (link
		// naming, wake-ups); the ledger itself never looks back.
		p.bind(r)
	}
	for _, p := range t.peers {
		r.qs = append(r.qs, slotQueue{ten: p})
	}
	t.replicas = append(t.replicas, r)
	f.led.RepSpawn(t.cfg.Name, r.uid, now)
	if n := t.activeCount(); n > t.peakReplicas {
		t.peakReplicas = n
	}
	switch role {
	case RolePrefill:
		if n := t.activeRole(RolePrefill); n > t.prefPeak {
			t.prefPeak = n
		}
	case RoleDecode:
		if n := t.activeRole(RoleDecode); n > t.decPeak {
			t.decPeak = n
		}
	}
	t.replicaTL.Add(now, float64(t.activeCount()))
	if f.obs != nil {
		f.obsRegisterReplica(r)
		f.obs.trace.Instant("spawn", "scale", t.cfg.Name, obsTrackControl, now, -1,
			"replica", int64(r.id), "role", fmt.Sprintf("%s eus=%d chip=%d", role, eus, v.Mapping.PNPU))
	}
	// Recovery milestone (fault.go): the first time a crashed tenant's
	// active count regains its pre-fault level — through emergency
	// spawns, the resurrection floor, or the ordinary ladder — closes
	// its time-to-recover clock.
	if t.crashAt > 0 && t.recoveredAt == 0 && t.activeCount() >= t.preFaultActive {
		t.recoveredAt = now
	}
	return nil
}

// drainOne marks one replica of the given role as draining: the router
// (and, for decode slots, the migration target picker) stops sending it
// work and it retires once idle. With bySize, the replica whose EU
// budget differs most from the tenant's current target goes first (the
// vertical-resize path retiring the old size); otherwise the
// least-backlogged goes (the cheapest to finish off).
func (f *fleet) drainOne(t *tenantState, role Role, now sim.Time, bySize bool) {
	var pick *replica
	score := func(r *replica) int {
		if bySize {
			d := r.eus - t.curEUs
			if d < 0 {
				d = -d
			}
			// Most-mismatched size first; backlog breaks ties.
			return -(d*1_000_000 - r.backlog())
		}
		return r.backlog() + r.inbound
	}
	for _, r := range t.replicas {
		if r.draining || r.role != role {
			continue
		}
		if pick == nil || score(r) < score(pick) || (score(r) == score(pick) && r.uid > pick.uid) {
			// Prefer the youngest among equals: older replicas carry the
			// longer-lived queues.
			pick = r
		}
	}
	if pick == nil {
		return
	}
	pick.draining = true
	f.ledRepIdle(pick, now)
	if f.obs != nil {
		f.obs.trace.Instant("drain", "scale", t.cfg.Name, obsTrackControl, float64(now), -1,
			"replica", int64(pick.id), "role", pick.role.String())
	}
	if pick.idleEmpty() {
		f.retire(pick, now)
	}
	t.replicaTL.Add(float64(now), float64(t.activeCount()))
}

// retire unmaps a drained replica and returns its resources to the
// fleet.
func (f *fleet) retire(r *replica, now sim.Time) {
	t := r.ten
	if r.retired {
		return
	}
	r.retired = true
	f.led.RepRetire(r.uid, float64(now))
	if r.timerSet {
		f.eng.Cancel(r.timer)
		r.timerSet = false
	}
	if r.preemptSet {
		f.eng.Cancel(r.preemptH)
		r.preemptSet = false
	}
	if f.obs != nil {
		f.obs.trace.Instant("retire", "scale", t.cfg.Name, obsTrackControl, float64(now), -1,
			"replica", int64(r.id), "role", r.role.String())
	}
	f.snapshot(float64(now))
	f.allocatedEUs -= r.vnpu.Config.TotalEUs()
	f.busySum += r.busyEUCycles
	if r.kv != nil {
		t.foldKV(r.kv, float64(now))
	}
	f.mapper.Unmap(r.vnpu)
	for i, x := range t.replicas {
		if x == r {
			t.replicas = append(t.replicas[:i], t.replicas[i+1:]...)
			break
		}
	}
}

// snapshot accrues the time-weighted fleet accumulators (allocated EU
// fraction, stranded EUs) up to now — the lazy-update pattern shared
// with internal/cluster's churn study.
func (f *fleet) snapshot(now float64) {
	dt := now - f.lastSnap
	if dt <= 0 {
		return
	}
	f.allocArea += float64(f.allocatedEUs) * dt
	f.strandArea += float64(cluster.StrandedEUs(f.mapper)) * dt
	f.lastSnap = now
}
