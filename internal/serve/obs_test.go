package serve

import (
	"bytes"
	"testing"

	"neu10/internal/arch"
)

// obsOn is the full-observability config for tests.
func obsOn() *ObsConfig { return &ObsConfig{Trace: true, Timelines: true} }

// TestObsZeroOverhead is the zero-overhead contract at the fleet level:
// the same seed must produce a byte-identical report table with
// observability fully on and fully off — observation never perturbs the
// simulation. (The allocation half of the contract — a nil tracer's
// hooks allocate nothing — is locked down in internal/obs.)
func TestObsZeroOverhead(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	plain, err := Run(fastConfig(7), db)
	if err != nil {
		t.Fatal(err)
	}
	cfg := fastConfig(7)
	cfg.Obs = obsOn()
	traced, err := Run(cfg, db)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Table() != traced.Table() {
		t.Errorf("tracing changed the report:\n--- off ---\n%s\n--- on ---\n%s", plain.Table(), traced.Table())
	}
	if plain.Trace != nil || plain.Timelines != nil {
		t.Error("disabled run carries observability artifacts")
	}
	if traced.Trace.Len() == 0 {
		t.Error("traced run recorded no events")
	}
	if len(traced.Timelines.Series()) == 0 {
		t.Error("traced run sampled no timelines")
	}
}

// TestObsSharedConfigNotMutated guards the parallel-leg contract: Run
// defaults a private copy of a shared ObsConfig, never the caller's.
func TestObsSharedConfigNotMutated(t *testing.T) {
	shared := &ObsConfig{Timelines: true}
	cfg := fastConfig(3)
	cfg.Obs = shared
	if _, err := Run(cfg, NewCostDB(arch.TPUv4Like())); err != nil {
		t.Fatal(err)
	}
	if shared.SampleEveryMs != 0 || shared.WindowSamples != 0 {
		t.Errorf("Run mutated the caller's ObsConfig: %+v", *shared)
	}
}

// TestObsChaosTraceDeterministic re-runs the chaos scenario (crashes,
// pod outage, link degradation, recovery machinery) with tracing on and
// requires byte-identical Chrome exports and timeline CSVs — the
// property the CI traced-determinism leg diffs across worker counts.
func TestObsChaosTraceDeterministic(t *testing.T) {
	db := NewCostDB(arch.TPUv4Like())
	export := func() (string, string) {
		cfg := chaosConfig(1, chaosFaults(CrashReplay),
			&RecoveryConfig{WarmSpares: 1, EmergencySpawn: true, Evacuate: true})
		cfg.Obs = obsOn()
		rep, err := Run(cfg, db)
		if err != nil {
			t.Fatal(err)
		}
		var tr, tl bytes.Buffer
		if err := rep.Trace.WriteChrome(&tr); err != nil {
			t.Fatal(err)
		}
		if err := rep.Timelines.WriteCSV(&tl); err != nil {
			t.Fatal(err)
		}
		return tr.String(), tl.String()
	}
	tr1, tl1 := export()
	tr2, tl2 := export()
	if tr1 != tr2 {
		t.Error("chaos trace export is not deterministic")
	}
	if tl1 != tl2 {
		t.Error("chaos timeline export is not deterministic")
	}
	if len(tr1) == 0 || len(tl1) == 0 {
		t.Fatal("empty exports")
	}
}

// TestObsTimelinesReproduceReport cross-checks the sampled series
// against the run's aggregates: the final point of the cumulative
// fault-window attainment series must equal the report's
// FaultAttainment exactly (same counters, same division), the overall
// attainment series must end at SLOAttainment, and the re-based replica
// timeline (the satellite export of the json:"-" ReplicaTimeline) must
// be present with the same number of points.
func TestObsTimelinesReproduceReport(t *testing.T) {
	cfg := chaosConfig(1, chaosFaults(CrashReplay), nil)
	cfg.Obs = obsOn()
	rep, err := Run(cfg, NewCostDB(arch.TPUv4Like()))
	if err != nil {
		t.Fatal(err)
	}
	ten := rep.Tenants[0]
	fw := rep.Timelines.Get(ten.Name + "/fw_attain")
	if fw == nil {
		t.Fatal("no fault-window attainment series")
	}
	if got := fw.Last(); got != ten.FaultAttainment {
		t.Errorf("fw_attain ends at %v, report FaultAttainment %v", got, ten.FaultAttainment)
	}
	attain := rep.Timelines.Get(ten.Name + "/attain")
	if attain == nil || attain.Last() != ten.SLOAttainment {
		t.Errorf("attain series ends at %v, report SLOAttainment %v", attain.Last(), ten.SLOAttainment)
	}
	repl := rep.Timelines.Get(ten.Name + "/replicas")
	if repl == nil {
		t.Fatal("replica timeline not exported")
	}
	if len(repl.Times) != len(ten.ReplicaTimeline.Times) {
		t.Errorf("exported replica timeline has %d points, internal %d",
			len(repl.Times), len(ten.ReplicaTimeline.Times))
	}
	if win := rep.Timelines.Get(ten.Name + "/attain_win"); win == nil {
		t.Error("windowed attainment series not derived")
	}
	// The trace must carry the fault instants the scenario injected.
	var faults, crashes int
	for _, e := range rep.Trace.Events() {
		switch e.Name {
		case "fault":
			faults++
		case "crash":
			crashes++
		}
	}
	if faults == 0 || crashes == 0 {
		t.Errorf("trace has %d fault / %d crash instants, want both > 0", faults, crashes)
	}
}
