package serve

import "testing"

// TestKVAccountantBasics pins the block arithmetic: ceil-division
// reservations, admission against capacity, and exact free/alloc
// round-trips.
func TestKVAccountantBasics(t *testing.T) {
	// 16 blocks of 16 tokens at 1 KiB/token.
	a := newKVAccountant(16*16*1024, 1024, 16, 0)
	if a.totalBlocks != 16 {
		t.Fatalf("capacity carved into %d blocks, want 16", a.totalBlocks)
	}
	if got := a.blocksFor(1); got != 1 {
		t.Errorf("blocksFor(1) = %d, want 1", got)
	}
	if got := a.blocksFor(16); got != 1 {
		t.Errorf("blocksFor(16) = %d, want 1", got)
	}
	if got := a.blocksFor(17); got != 2 {
		t.Errorf("blocksFor(17) = %d, want 2", got)
	}
	if !a.fits(16) {
		t.Error("full-capacity reservation should fit an empty accountant")
	}
	if a.fits(17) {
		t.Error("over-capacity reservation must not fit")
	}
	a.alloc(10, 1)
	if a.fits(7) {
		t.Error("7 blocks cannot fit with 10/16 used")
	}
	if !a.fits(6) {
		t.Error("6 blocks must fit with 10/16 used")
	}
	a.free(10, 2)
	if a.usedBlocks != 0 {
		t.Errorf("used %d after symmetric free, want 0", a.usedBlocks)
	}
	if a.peakBlocks != 10 {
		t.Errorf("peak %d, want 10", a.peakBlocks)
	}
}

// TestKVAccountantOccupancyIntegral checks the time-weighted occupancy
// area: 10 blocks held for 4 cycles then 2 blocks for 6 cycles is an
// area of 52 block·cycles.
func TestKVAccountantOccupancyIntegral(t *testing.T) {
	a := newKVAccountant(16*16, 1, 16, 0) // 16 blocks of 16 tokens at 1 B/token
	a.alloc(10, 0)
	a.free(8, 4) // 10 blocks over [0,4)
	a.accrue(10) // 2 blocks over [4,10)
	if want := 10.0*4 + 2.0*6; a.usedArea != want {
		t.Errorf("occupancy area %v, want %v", a.usedArea, want)
	}
	// Accrue is monotonic: a stale timestamp must not rewind the clock.
	a.accrue(5)
	if want := 10.0*4 + 2.0*6; a.usedArea != want {
		t.Errorf("stale accrue changed the area to %v", a.usedArea)
	}
}

// TestFoldKVFinalizesAccrual is the regression test for the fold-time
// accrual (tenant.go foldKV): folding a backend whose ledger saw no
// traffic since its last event must still integrate the occupancy tail
// up to the fold instant. Without foldKV's leading accrue, a replica
// holding blocks quietly from its last alloc to retirement would
// under-report its whole tail of occupancy.
func TestFoldKVFinalizesAccrual(t *testing.T) {
	a := newKVAccountant(16*16, 1, 16, 0) // 16 blocks, born at t=0
	a.alloc(4, 0)                         // 4 blocks held, no further ledger traffic
	ten := &tenantState{}
	ten.foldKV(a, 100)
	if want := 4.0 * 100; ten.kvUsedArea != want {
		t.Errorf("folded occupancy area %v, want %v — the fold did not finalize the accrual", ten.kvUsedArea, want)
	}
	if want := 16.0 * 100; ten.kvBlockArea != want {
		t.Errorf("folded capacity area %v, want %v", ten.kvBlockArea, want)
	}
	if want := 4.0 / 16.0; ten.kvPeakFrac != want {
		t.Errorf("folded peak fraction %v, want %v", ten.kvPeakFrac, want)
	}
}

// TestKVAccountantGuards: the accountant panics on overcommit and
// over-free — both are scheduler bugs, never load conditions.
func TestKVAccountantGuards(t *testing.T) {
	expectPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s did not panic", name)
			}
		}()
		fn()
	}
	a := newKVAccountant(4*16, 1, 16, 0)
	expectPanic("overcommit", func() { a.alloc(5, 0) })
	b := newKVAccountant(4*16, 1, 16, 0)
	expectPanic("over-free", func() { b.free(1, 0) })
}
