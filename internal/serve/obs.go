package serve

// Observability wiring for the serving simulator (see internal/obs and
// docs/OBSERVABILITY.md): request-lifecycle tracing plus a sampled
// timeline registry, both driven by the sim clock.
//
// The contract every hook site in serve.go / slot.go / llm.go /
// disagg.go / fault.go / autoscale.go follows:
//
//   - f.obs == nil is the disabled state. Every hook is guarded by that
//     one nil check, and all argument computation (string formatting,
//     counter lookups) happens INSIDE the guard, so a disabled run
//     executes no observability code, allocates nothing, and schedules
//     no extra events — its engine event stream, report and JSON are
//     byte-identical to a build without this file.
//   - When enabled, events and samples are recorded by the run's own
//     single-threaded event loop in creation order, stamped with sim
//     cycles only. Parallel scenario legs each own a private obsState,
//     so traces are byte-identical at any worker count.

import (
	"fmt"

	"neu10/internal/metrics"
	"neu10/internal/obs"
	"neu10/internal/sim"
	"neu10/internal/xfer"
)

// ObsConfig switches observability on for a run. The zero value (and a
// nil pointer) disables everything.
type ObsConfig struct {
	// Trace records per-request lifecycle spans and control/fault
	// instants, exported as Chrome trace-event JSON (Perfetto).
	Trace bool
	// Timelines samples queue depth, KV occupancy, fleet/pool sizes,
	// link utilization/backlog and attainment every SampleEveryMs.
	Timelines bool
	// SampleEveryMs is the timeline sampling period in sim milliseconds
	// (default 10).
	SampleEveryMs float64
	// WindowSamples is the sliding-window width, in samples, of the
	// derived windowed-attainment series (default 20).
	WindowSamples int
	// Attrib switches the attribution ledger on (obs.Ledger): exact
	// per-request segment accounting and the fleet cycle ledger, with
	// conservation checked in-sim. Adds the attribution report sections
	// and the per-tenant attrib_dom timeline (when Timelines is also on).
	Attrib bool
}

func (o *ObsConfig) defaults() {
	if o.SampleEveryMs == 0 {
		o.SampleEveryMs = 10
	}
	if o.WindowSamples == 0 {
		o.WindowSamples = 20
	}
}

func (o *ObsConfig) validate() error {
	if o.SampleEveryMs < 0 {
		return fmt.Errorf("serve: obs sample period %v ms", o.SampleEveryMs)
	}
	if o.WindowSamples < 0 {
		return fmt.Errorf("serve: obs window %d samples", o.WindowSamples)
	}
	return nil
}

// enabled reports whether this config turns any collector on.
func (o *ObsConfig) enabled() bool { return o != nil && (o.Trace || o.Timelines || o.Attrib) }

// obsState is one run's observability runtime; fleet.obs is nil when
// disabled.
type obsState struct {
	cfg   ObsConfig
	trace *obs.Tracer      // nil unless cfg.Trace
	tl    *obs.TimelineSet // nil unless cfg.Timelines

	// sloOK counts completions within SLO per tenant — the cumulative
	// attainment numerator, maintained incrementally so sampling never
	// re-sorts the latency recorder.
	sloOK []int
	// hist accumulates per-interval completion latencies (ms) per
	// tenant for the rolling p50/p99 timeline.
	hist []metrics.RollingHist
	// lastLinkBusy remembers each link's busy integral at the previous
	// tick, keyed by link name, to derive per-interval utilization.
	lastLinkBusy map[string]float64
	lastSample   float64

	// attribWin holds, per tenant, a sliding window (WindowSamples+1
	// deep, oldest first) of cumulative completed-request segment totals;
	// the attrib_dom series differences the newest snapshot against the
	// oldest to get the window's dominant-blame share.
	attribWin [][]segSnap
}

// segSnap is one cumulative segment-total snapshot.
type segSnap [obs.NumSegments]float64

// Trace/track layout: one Chrome "process" per tenant plus a "fleet"
// process for fabric and fault-plan events. Within a tenant process,
// track 0 carries control instants (spawn/drain/scale/crash), and each
// replica gets track 2+uid (fleet-unique, so shared slots never
// collide). Async lifecycle phases are keyed by request id, not track.
const (
	obsProcFleet    = "fleet"
	obsTrackControl = int32(0)
)

func obsReplicaTrack(r *replica) int32 { return int32(2 + r.uid) }

// obsBatchName names a batch-kind execution slice.
var obsBatchName = [...]string{
	kindInvoke:           "invoke",
	kindLLMPrefill:       "llm-prefill",
	kindLLMDecode:        "llm-decode",
	kindLLMStaticPrefill: "llm-static-prefill",
	kindLLMStaticDecode:  "llm-static-decode",
}

// obsBatchWidth is the slice's width arg: requests for single-shot
// batches, sequences for LLM kinds.
func obsBatchWidth(b *batch) int {
	if b.kind == kindInvoke {
		return len(b.reqs)
	}
	return len(b.seqs)
}

// newObsState builds the run's observability runtime (cfg is already
// defaulted and validated; callers check cfg.enabled() first).
func newObsState(cfg ObsConfig, scenario string, freqHz float64, tenants int) *obsState {
	o := &obsState{cfg: cfg, sloOK: make([]int, tenants), hist: make([]metrics.RollingHist, tenants)}
	if cfg.Trace {
		o.trace = obs.NewTracer(scenario, freqHz)
	}
	if cfg.Timelines {
		o.tl = obs.NewTimelineSet(scenario, freqHz)
		o.lastLinkBusy = map[string]float64{}
	}
	return o
}

// obsRegisterReplica names a freshly spawned replica's trace track.
func (f *fleet) obsRegisterReplica(r *replica) {
	f.obs.trace.NameTrack(r.ten.cfg.Name, obsReplicaTrack(r),
		fmt.Sprintf("replica %d (%s, chip %d)", r.id, r.role, r.vnpu.Mapping.PNPU))
}

// obsCompletion folds one finished request into the attainment counters
// and the rolling latency histogram. lat is in cycles.
func (f *fleet) obsCompletion(t *tenantState, lat float64) {
	if lat <= t.sloCycles {
		f.obs.sloOK[t.idx]++
	}
	if f.obs.tl != nil {
		f.obs.hist[t.idx].Add(lat / f.cfg.Core.FrequencyHz * 1e3)
	}
}

// scheduleObs arms the recurring timeline sampling tick (every is in
// cycles). Like the autoscaler tick, sampling stops at the scenario
// horizon; report() takes one final sample at the drain end so the last
// point of every cumulative series equals the run aggregate.
func (f *fleet) scheduleObs(every float64) {
	at := float64(f.eng.Now()) + every
	if at > f.durCycles {
		return
	}
	f.eng.At(sim.Time(at), func(now sim.Time) {
		f.obsSample(float64(now))
		f.scheduleObs(every)
	})
}

// obsSample records one timeline tick at `now` cycles. All reads are
// pure or lazily-advancing integrals (kv accrue, link advance), so a
// sample never changes simulation behavior.
func (f *fleet) obsSample(now float64) {
	o := f.obs
	if o == nil || o.tl == nil || now < o.lastSample {
		return
	}
	dt := now - o.lastSample
	o.lastSample = now
	// Queue depth and running-set size, attributed to the QUEUE OWNER
	// tenant (shared slots carry one queue per group member).
	for _, t := range f.tenants {
		name := t.cfg.Name
		var depth, running int
		for _, p := range t.peers {
			for _, r := range p.replicas {
				if q := r.queueFor(t); q != nil {
					depth += len(q.reqs)
					running += len(q.running)
				}
			}
		}
		o.tl.Add(name+"/queue", now, float64(depth))
		o.tl.Add(name+"/replicas_active", now, float64(t.activeCount()))
		if t.llm != nil {
			o.tl.Add(name+"/running", now, float64(running))
		}
		if t.disagg() != nil {
			o.tl.Add(name+"/prefill_replicas", now, float64(t.activeRole(RolePrefill)))
			o.tl.Add(name+"/decode_replicas", now, float64(t.activeRole(RoleDecode)))
		}
		// Per-replica KV occupancy fraction (live replicas only; a
		// retired replica's occupancy is folded into the tenant
		// aggregate at retire time, same as the report).
		for _, r := range t.replicas {
			if r.kv != nil && r.kv.total() > 0 {
				o.tl.Add(fmt.Sprintf("%s/kv_frac/r%d", name, r.id), now,
					float64(r.kv.used())/float64(r.kv.total()))
			}
			// Paged-backend internals (absent for reserve tenants, so
			// legacy timeline sets are unchanged): reclaimable cold cache
			// blocks and the swapped-out sequence backlog.
			if p, ok := r.kv.(*pagedKV); ok {
				o.tl.Add(fmt.Sprintf("%s/kv_cold/r%d", name, r.id), now, float64(p.cold))
				o.tl.Add(fmt.Sprintf("%s/kv_swap_q/r%d", name, r.id), now, float64(len(p.swapQ)))
			}
		}
		// Dominant-blame share over the sliding window: the largest
		// segment's fraction of all attributed cycles completed in the
		// last WindowSamples ticks (0 while the window saw no completion).
		if f.led != nil {
			if o.attribWin == nil {
				o.attribWin = make([][]segSnap, len(f.tenants))
			}
			cur := segSnap(f.led.SegTotals(name))
			win := append(o.attribWin[t.idx], cur)
			if len(win) > o.cfg.WindowSamples+1 {
				n := copy(win, win[1:])
				win = win[:n]
			}
			o.attribWin[t.idx] = win
			old := win[0]
			var sum, max float64
			for i := range cur {
				d := cur[i] - old[i]
				sum += d
				if d > max {
					max = d
				}
			}
			share := 0.0
			if sum > 0 {
				share = max / sum
			}
			o.tl.Add(name+"/attrib_dom", now, share)
		}
		// Cumulative attainment (and its numerator/denominator, which
		// the report post-processes into a sliding-window series).
		o.tl.Add(name+"/arrivals", now, float64(t.arrivals))
		o.tl.Add(name+"/slo_ok", now, float64(o.sloOK[t.idx]))
		attain := 0.0
		if t.arrivals > 0 {
			attain = float64(o.sloOK[t.idx]) / float64(t.arrivals)
		}
		o.tl.Add(name+"/attain", now, attain)
		if f.faulted {
			fw := 0.0
			if t.fwArrivals > 0 {
				fw = float64(t.fwSloOK) / float64(t.fwArrivals)
			}
			o.tl.Add(name+"/fw_attain", now, fw)
		}
		// Rolling per-interval latency percentiles.
		n, p50, p99 := o.hist[t.idx].Flush()
		o.tl.Add(name+"/lat_n", now, float64(n))
		o.tl.Add(name+"/lat_p50_ms", now, p50)
		o.tl.Add(name+"/lat_p99_ms", now, p99)
	}
	if f.fabric != nil {
		f.fabric.EachLink(func(l *xfer.Link) {
			busy := l.BusyCycles(now)
			util := 0.0
			if dt > 0 {
				util = (busy - o.lastLinkBusy[l.Name()]) / dt
			}
			o.lastLinkBusy[l.Name()] = busy
			o.tl.Add("link/"+l.Name()+"/util", now, util)
			o.tl.Add("link/"+l.Name()+"/backlog_mb", now, l.Backlog(now)/(1<<20))
			o.tl.Add("link/"+l.Name()+"/active", now, float64(l.Active()))
		})
	}
}

// obsFinish takes the final sample, derives the windowed-attainment
// series, adopts each tenant's replica timeline (converted from cycles
// to ms) and attaches trace + timelines to the report.
func (f *fleet) obsFinish(rep *Report, end float64) {
	o := f.obs
	if o == nil {
		return
	}
	rep.Trace = o.trace
	if o.tl == nil {
		return
	}
	f.obsSample(end)
	for _, t := range f.tenants {
		name := t.cfg.Name
		if num, den := o.tl.Get(name+"/slo_ok"), o.tl.Get(name+"/arrivals"); num != nil && den != nil {
			if win, err := obs.WindowedRatio(name+"/attain_win", num, den, o.cfg.WindowSamples); err == nil {
				o.tl.Attach(win)
			}
		}
		// The replica timeline report.go previously dropped from JSON
		// (json:"-"): re-based from cycles to ms and exported with
		// everything else.
		rt := metrics.NewTimeSeries(name+"/replicas", 0)
		for i := range t.replicaTL.Times {
			rt.Add(t.replicaTL.Times[i]/f.cfg.Core.FrequencyHz*1e3, t.replicaTL.Values[i])
		}
		o.tl.Attach(rt)
	}
	rep.Timelines = o.tl
}
