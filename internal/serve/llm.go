package serve

import (
	"fmt"

	"neu10/internal/metrics"
	"neu10/internal/sim"
	"neu10/internal/workload"
)

// LLM serving: autoregressive tenants with KV-cache-aware batching.
//
// A request of an LLM tenant is a generation, not one invocation: a
// prefill over its prompt (which emits the first token) followed by one
// decode iteration per remaining output token, the whole sequence
// pinning prompt+output tokens of KV cache on its replica from
// admission to completion. Two batchers are modeled on the same slot
// machinery:
//
//   - Continuous (the default): every invocation is ONE iteration.
//     At each iteration boundary finished sequences exit (freeing KV),
//     and queued prompts whose full KV reservation fits join via a
//     prefill invocation (prefill-prioritized, vLLM-style); otherwise
//     the running set takes one decode step. Batch composition therefore
//     changes every iteration.
//   - Static (the baseline): a batch forms from the queue, prefills
//     together, then decodes as one monolithic invocation to the
//     LONGEST output in the batch — finished lanes ride along as dead
//     weight, and every request returns only when the whole batch does.
//
// Because both run through the ordinary batch/slot path, priorities and
// quantum-boundary preemption compose: a preempted decode iteration
// checkpoints via sched.CheckpointAt like any invocation, and its
// sequences' KV blocks stay resident until the batch resumes and its
// sequences complete.

// LLMConfig switches a tenant to autoregressive LLM serving.
type LLMConfig struct {
	// Trace draws each request's prompt/output shape at arrival (the
	// draw happens before admission, so compared configurations see the
	// identical trace).
	Trace workload.LLMTrace
	// Static selects the static-batching baseline; false (default) is
	// continuous batching.
	Static bool
	// BlockTokens is the KV-cache block granularity in tokens
	// (default 16).
	BlockTokens int
	// KVCapTokens overrides the derived per-replica KV capacity
	// (MemSizePerCore − LLM weights), in tokens. For tests and
	// pressure studies; 0 keeps the derived capacity.
	KVCapTokens int
}

func (lc *LLMConfig) defaults() {
	lc.Trace.Defaults()
	if lc.BlockTokens == 0 {
		lc.BlockTokens = 16
	}
}

func (lc *LLMConfig) validate(tenant string) error {
	if err := lc.Trace.Validate(); err != nil {
		return fmt.Errorf("serve: tenant %s: %w", tenant, err)
	}
	if lc.BlockTokens < 1 {
		return fmt.Errorf("serve: tenant %s KV block of %d tokens", tenant, lc.BlockTokens)
	}
	if lc.KVCapTokens < 0 {
		return fmt.Errorf("serve: tenant %s KV capacity override %d", tenant, lc.KVCapTokens)
	}
	return nil
}

// llmTenant is the runtime LLM state of one tenant.
type llmTenant struct {
	rng *sim.RNG // request-shape draws (one stream, consumed at arrival)

	ttft metrics.Latencies // time to first token (prefill finish − arrival)
	tpot metrics.Latencies // per-token latency: (completion − TTFT)/(output−1)

	admitted      int   // sequences admitted into an engine
	prefills      int   // prefill invocations completed
	decodeIters   int   // decode iterations completed
	staticBatches int   // static batches launched
	tokensOut     int   // output tokens emitted
	promptTokens  int64 // Σ prompt tokens over admitted sequences
	outputTokens  int64 // Σ output tokens over admitted sequences
	kvStalls      int   // batch-growth attempts blocked by KV exhaustion
}

// llmSeq is one admitted sequence: a request plus its KV reservation
// and generation progress. It lives in its slot queue's running set
// from admission (prefill launch) to completion.
type llmSeq struct {
	req       request
	blocks    int  // KV blocks reserved (full prompt+output footprint)
	ctx       int  // tokens resident in the KV cache
	produced  int  // output tokens emitted
	prefilled bool // prompt processed; eligible for decode iterations
	ttftAt    sim.Time
}

// llmAdmit moves admittable requests from the queue head into running
// sequences: FIFO, stopping at MaxBatch or at the first request whose
// full KV reservation does not fit (no head-of-line bypass — admission
// order stays deterministic and starvation-free). A stop forced by KV
// pressure is counted as a stall.
func (f *fleet) llmAdmit(r *replica, q *slotQueue, now sim.Time) []*llmSeq {
	t := q.ten
	var joined []*llmSeq
	for len(q.reqs) > 0 && len(q.running) < t.cfg.MaxBatch {
		req := q.reqs[0]
		blocks := r.kv.blocksFor(req.prompt + req.output)
		if !r.kv.fits(blocks) {
			break
		}
		r.kv.alloc(blocks, float64(now))
		s := &llmSeq{req: req, blocks: blocks, ctx: req.prompt}
		q.running = append(q.running, s)
		joined = append(joined, s)
		n := copy(q.reqs, q.reqs[1:])
		q.reqs = q.reqs[:n]
		t.llm.admitted++
		t.llm.promptTokens += int64(req.prompt)
		t.llm.outputTokens += int64(req.output)
	}
	if len(q.reqs) > 0 && len(q.running) < t.cfg.MaxBatch {
		t.llm.kvStalls++
	}
	return joined
}

// launchLLMPrefill starts a prefill invocation for the queue's
// admittable joiners — kind selects continuous (kindLLMPrefill, whose
// batch retires at the prefill) or static (kindLLMStaticPrefill, whose
// decode leg chains at the prefill's completion). bestWork only
// proposes either when the head fits, so at least one sequence always
// joins.
func (f *fleet) launchLLMPrefill(r *replica, q *slotQueue, kind batchKind, now sim.Time, restore float64) {
	t := q.ten
	f.disarmTimer(r)
	joined := f.llmAdmit(r, q, now)
	if len(joined) == 0 {
		panic("serve: prefill launch admitted no sequence")
	}
	if kind == kindLLMStaticPrefill {
		t.llm.staticBatches++
	}
	maxPrompt := 0
	for _, s := range joined {
		if s.req.prompt > maxPrompt {
			maxPrompt = s.req.prompt
		}
	}
	cycles, err := f.costs.LLMCycles(PhasePrefill, len(joined), maxPrompt, r.nm, r.nv)
	if err != nil {
		panic(fmt.Sprintf("serve: costing prefill batch: %v", err))
	}
	b := f.takeBatch()
	b.ten, b.restore, b.kind = t, restore, kind
	b.seqs = append(b.seqs[:0], joined...)
	b.total, b.remaining = cycles, cycles
	t.issuedServiceCycles += cycles
	f.startSegment(r, b, now)
}

// launchLLMDecode starts one decode iteration over the queue's
// prefilled, unfinished sequences. An iteration that could not also
// grow the batch because the queue head's KV reservation does not fit
// counts as a stall — the KV-pressure signal in the report.
func (f *fleet) launchLLMDecode(r *replica, q *slotQueue, now sim.Time, restore float64) {
	t := q.ten
	f.disarmTimer(r)
	if len(q.reqs) > 0 && len(q.running) < t.cfg.MaxBatch &&
		!r.kv.fits(r.kv.blocksFor(q.reqs[0].prompt+q.reqs[0].output)) {
		t.llm.kvStalls++
	}
	b := f.takeBatch()
	b.ten, b.restore, b.kind = t, restore, kindLLMDecode
	maxCtx := 0
	for _, s := range q.running {
		if s.prefilled && s.produced < s.req.output {
			b.seqs = append(b.seqs, s)
			if s.ctx > maxCtx {
				maxCtx = s.ctx
			}
		}
	}
	if len(b.seqs) == 0 {
		panic("serve: decode launch with no decodable sequence")
	}
	cycles, err := f.costs.LLMCycles(PhaseDecode, len(b.seqs), maxCtx, r.nm, r.nv)
	if err != nil {
		panic(fmt.Sprintf("serve: costing decode iteration: %v", err))
	}
	b.total, b.remaining = cycles, cycles
	t.issuedServiceCycles += cycles
	f.startSegment(r, b, now)
}

// finishLLMPrefill retires a continuous-mode prefill: every joiner has
// its first token (TTFT), single-token requests complete outright, the
// rest become decodable.
func (f *fleet) finishLLMPrefill(r *replica, b *batch, now sim.Time) {
	t := b.ten
	t.llm.prefills++
	for _, s := range b.seqs {
		f.emitFirstToken(t, s, now)
		if s.produced >= s.req.output {
			f.completeSeq(r, t, s, now)
		}
	}
}

// finishLLMDecode retires one decode iteration: every sequence gains a
// token; finished ones exit and free their KV.
func (f *fleet) finishLLMDecode(r *replica, b *batch, now sim.Time) {
	t := b.ten
	t.llm.decodeIters++
	for _, s := range b.seqs {
		s.produced++
		s.ctx++
		t.llm.tokensOut++
		if s.produced >= s.req.output {
			f.completeSeq(r, t, s, now)
		}
	}
}

// finishLLMStaticPrefill retires a static batch's prefill leg and
// returns the chained decode leg: one monolithic invocation covering
// max(output−1) iterations at the batch's FULL launch width — finished
// lanes are padding, the static-batching inefficiency. With no decode
// work left (all outputs of length 1) it completes the batch and
// returns nil.
func (f *fleet) finishLLMStaticPrefill(r *replica, b *batch, now sim.Time) *batch {
	t := b.ten
	t.llm.prefills++
	maxRem, maxCtx := 0, 0
	for _, s := range b.seqs {
		f.emitFirstToken(t, s, now)
		if rem := s.req.output - 1; rem > maxRem {
			maxRem = rem
		}
		if s.ctx > maxCtx {
			maxCtx = s.ctx
		}
	}
	if maxRem == 0 {
		for _, s := range b.seqs {
			f.completeSeq(r, t, s, now)
		}
		return nil
	}
	var cycles float64
	for i := 0; i < maxRem; i++ {
		c, err := f.costs.LLMCycles(PhaseDecode, len(b.seqs), maxCtx+i, r.nm, r.nv)
		if err != nil {
			panic(fmt.Sprintf("serve: costing static decode leg: %v", err))
		}
		cycles += c
	}
	nb := f.takeBatch()
	nb.ten, nb.kind = t, kindLLMStaticDecode
	nb.seqs = append(nb.seqs[:0], b.seqs...)
	nb.total, nb.remaining = cycles, cycles
	t.issuedServiceCycles += cycles
	return nb
}

// finishLLMStaticDecode retires a static batch's decode leg: every
// request returns together (the synchronous static batcher), however
// short its own output was.
func (f *fleet) finishLLMStaticDecode(r *replica, b *batch, now sim.Time) {
	t := b.ten
	maxRem := 0
	for _, s := range b.seqs {
		if rem := s.req.output - 1; rem > maxRem {
			maxRem = rem
		}
	}
	t.llm.decodeIters += maxRem
	for _, s := range b.seqs {
		t.llm.tokensOut += s.req.output - 1
		s.produced = s.req.output
		s.ctx = s.req.prompt + s.req.output
		f.completeSeq(r, t, s, now)
	}
}

// emitFirstToken records a sequence's prefill completion: first token
// out, TTFT measured from arrival (queueing included).
func (f *fleet) emitFirstToken(t *tenantState, s *llmSeq, now sim.Time) {
	s.prefilled = true
	s.produced = 1
	s.ctx++
	s.ttftAt = now
	t.llm.ttft.Add(float64(now - s.req.at))
	t.llm.tokensOut++
}

// completeSeq retires a finished sequence: end-to-end latency recorded
// against the SLO, per-token latency derived from TTFT, KV freed, and
// the sequence removed from its running set.
func (f *fleet) completeSeq(r *replica, t *tenantState, s *llmSeq, now sim.Time) {
	q := r.queueFor(t)
	for i, x := range q.running {
		if x == s {
			q.running = append(q.running[:i], q.running[i+1:]...)
			break
		}
	}
	r.kv.free(s.blocks, float64(now))
	lat := float64(now - s.req.at)
	t.lat.Add(lat)
	if f.cfg.Autoscale {
		t.windowLat.Add(lat)
	}
	if f.prioEnabled {
		f.prioLat[t.cfg.Priority].Add(lat)
	}
	t.completed++
	if s.req.output > 1 {
		t.llm.tpot.Add(float64(now-s.ttftAt) / float64(s.req.output-1))
	}
}

// preMeasureLLM warms every phase-cost bucket this tenant can be asked
// for on an nm×nv slot, so launches never fail and measurement stays
// off the serving hot path (the LLM analogue of the whole-model
// pre-measurement in spawnReplica).
func (f *fleet) preMeasureLLM(t *tenantState, nm, nv int) error {
	tr := t.cfg.LLM.Trace
	maxCtx := PadBatch(tr.PromptMax + tr.OutputMax)
	for b := 1; b <= PadBatch(t.cfg.MaxBatch); b <<= 1 {
		for p := PadBatch(tr.PromptMin); p <= PadBatch(tr.PromptMax); p <<= 1 {
			if _, err := f.costs.LLMCycles(PhasePrefill, b, p, nm, nv); err != nil {
				return err
			}
		}
		for c := PadBatch(tr.PromptMin + 1); c <= maxCtx; c <<= 1 {
			if _, err := f.costs.LLMCycles(PhaseDecode, b, c, nm, nv); err != nil {
				return err
			}
		}
	}
	return nil
}
