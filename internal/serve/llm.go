package serve

import (
	"fmt"

	"neu10/internal/metrics"
	"neu10/internal/obs"
	"neu10/internal/sim"
	"neu10/internal/workload"
	"neu10/internal/xfer"
)

// LLM serving: autoregressive tenants with KV-cache-aware batching.
//
// A request of an LLM tenant is a generation, not one invocation: a
// prefill over its prompt (which emits the first token) followed by one
// decode iteration per remaining output token, the whole sequence
// pinning prompt+output tokens of KV cache on its replica from
// admission to completion. Two batchers are modeled on the same slot
// machinery:
//
//   - Continuous (the default): every invocation is ONE iteration.
//     At each iteration boundary finished sequences exit (freeing KV),
//     and queued prompts whose full KV reservation fits join via a
//     prefill invocation (prefill-prioritized, vLLM-style); otherwise
//     the running set takes one decode step. Batch composition therefore
//     changes every iteration.
//   - Static (the baseline): a batch forms from the queue, prefills
//     together, then decodes as one monolithic invocation to the
//     LONGEST output in the batch — finished lanes ride along as dead
//     weight, and every request returns only when the whole batch does.
//
// Because both run through the ordinary batch/slot path, priorities and
// quantum-boundary preemption compose: a preempted decode iteration
// checkpoints via sched.CheckpointAt like any invocation, and its
// sequences' KV blocks stay resident until the batch resumes and its
// sequences complete.

// LLMConfig switches a tenant to autoregressive LLM serving.
type LLMConfig struct {
	// Trace draws each request's prompt/output shape at arrival (the
	// draw happens before admission, so compared configurations see the
	// identical trace).
	Trace workload.LLMTrace
	// Static selects the static-batching baseline; false (default) is
	// continuous batching.
	Static bool
	// BlockTokens is the KV-cache block granularity in tokens
	// (default 16).
	BlockTokens int
	// KVCapTokens overrides the derived per-replica KV capacity
	// (MemSizePerCore − LLM weights), in tokens. For tests and
	// pressure studies; 0 keeps the derived capacity. With Disagg it
	// applies to both pools' replicas.
	KVCapTokens int

	// KVPolicy selects the KV accounting backend (kv.go): KVReserve —
	// full prompt+output reservation at admission, the pre-paging
	// behavior — or KVPaged — block-on-demand allocation with eviction
	// under pressure and a radix-trie prefix cache (kv_paged.go).
	// Empty runs the reserve backend implicitly AND leaves the report's
	// extended KV fields unpopulated, so legacy scenarios are
	// byte-identical; set it explicitly to surface the policy
	// comparison fields. KVPaged requires the continuous colocated
	// batcher (no Static, Disagg, ShareGroup, or fleet Preempt:
	// suspended batches hold live sequence references the evictor
	// must never invalidate).
	KVPolicy string
	// KVEvict selects how the paged backend reclaims a victim's
	// blocks: KVEvictRecompute drops them and replays the lost tokens
	// through a chunked re-prefill (priced via CostDB.LLMChunkCycles),
	// KVEvictSwap ships them to host memory over a modeled link and
	// back (priced via internal/xfer at SwapGBps). Default recompute;
	// only meaningful with KVPaged.
	KVEvict string
	// SwapGBps is the modeled NPU↔host swap bandwidth in GB/s for
	// KVEvictSwap (default 32 — PCIe-class, deliberately slower than
	// the chip-to-chip fabric).
	SwapGBps float64

	// Disagg, when non-nil, splits the tenant's fleet into
	// role-specialized pools: arrivals prefill on RolePrefill replicas,
	// finished prompts migrate their KV over the modeled interconnect
	// (Config.LinkGBps/LinkLatencyUs, internal/xfer) to an
	// admission-checked RoleDecode replica, and decode iterations run
	// there — prefill bursts can no longer inflate decode TPOT. The
	// migration is priced into TTFT: the first token is delivered only
	// once the KV lands. Mutually exclusive with Static and ShareGroup.
	Disagg *DisaggConfig
}

// DisaggConfig sizes a disaggregated tenant's two pools and the
// chunked-prefill granularity. The per-pool bounds play the role
// InitialReplicas/MinReplicas/MaxReplicas play for a colocated tenant;
// the per-pool autoscalers (see autoscale.go) work these bounds
// against their own signals — prefill queue delay vs decode TPOT p99.
type DisaggConfig struct {
	PrefillReplicas int // initial prefill-pool size (default 1)
	MinPrefill      int // autoscale floor (default 1)
	MaxPrefill      int // autoscale ceiling (default PrefillReplicas)

	DecodeReplicas int // initial decode-pool size (default 1)
	MinDecode      int // autoscale floor (default 1)
	MaxDecode      int // autoscale ceiling (default DecodeReplicas)

	// DecodeBatch is the decode-slot width: how many sequences one
	// decode replica batches per iteration (admission counts in-flight
	// migrations too). Decode is HBM-bound — its iteration cost is
	// nearly flat in batch — so consolidating many sequences onto few
	// wide decode slots is almost free, and that consolidation is half
	// of disaggregation's win (the other half is prefill interference
	// removal). Default 2 × MaxBatch.
	DecodeBatch int

	// ChunkTokens, when > 0, runs chunked prefill on the prefill pool:
	// each invocation advances every in-flight prompt by at most this
	// many tokens, so a short prompt admitted behind a long one gets
	// its first chunk after the long prompt's CURRENT chunk, not after
	// its whole prefill. Chunking is not free — every chunk invocation
	// re-streams the weights, and a late chunk's attention spans the
	// whole cached context behind it (CostDB.LLMChunkCycles measures
	// both). 0 prefills whole prompts in one invocation.
	ChunkTokens int
}

// defaults fills the pool bounds; DecodeBatch is defaulted by
// TenantConfig.defaults, which knows MaxBatch.
func (d *DisaggConfig) defaults() {
	if d.PrefillReplicas == 0 {
		d.PrefillReplicas = 1
	}
	if d.MinPrefill == 0 {
		d.MinPrefill = 1
	}
	if d.MaxPrefill == 0 {
		d.MaxPrefill = d.PrefillReplicas
	}
	if d.DecodeReplicas == 0 {
		d.DecodeReplicas = 1
	}
	if d.MinDecode == 0 {
		d.MinDecode = 1
	}
	if d.MaxDecode == 0 {
		d.MaxDecode = d.DecodeReplicas
	}
}

func (d *DisaggConfig) validate(tenant string) error {
	switch {
	case d.MinPrefill < 1 || d.PrefillReplicas < d.MinPrefill || d.MaxPrefill < d.PrefillReplicas:
		return fmt.Errorf("serve: tenant %s prefill-pool bounds %d ≤ %d ≤ %d malformed",
			tenant, d.MinPrefill, d.PrefillReplicas, d.MaxPrefill)
	case d.MinDecode < 1 || d.DecodeReplicas < d.MinDecode || d.MaxDecode < d.DecodeReplicas:
		return fmt.Errorf("serve: tenant %s decode-pool bounds %d ≤ %d ≤ %d malformed",
			tenant, d.MinDecode, d.DecodeReplicas, d.MaxDecode)
	case d.ChunkTokens < 0:
		return fmt.Errorf("serve: tenant %s chunk of %d tokens", tenant, d.ChunkTokens)
	case d.DecodeBatch < 1:
		return fmt.Errorf("serve: tenant %s decode-slot width %d", tenant, d.DecodeBatch)
	}
	return nil
}

// KV backend policy and eviction names (LLMConfig.KVPolicy/KVEvict).
const (
	KVReserve = "reserve"
	KVPaged   = "paged"

	KVEvictRecompute = "recompute"
	KVEvictSwap      = "swap"
)

func (lc *LLMConfig) defaults() {
	lc.Trace.Defaults()
	if lc.BlockTokens == 0 {
		lc.BlockTokens = 16
	}
	if lc.KVPolicy == KVPaged {
		if lc.KVEvict == "" {
			lc.KVEvict = KVEvictRecompute
		}
		if lc.SwapGBps == 0 {
			lc.SwapGBps = 32
		}
	}
	if lc.Disagg != nil {
		lc.Disagg.defaults()
	}
}

func (lc *LLMConfig) validate(tenant string) error {
	if err := lc.Trace.Validate(); err != nil {
		return fmt.Errorf("serve: tenant %s: %w", tenant, err)
	}
	if lc.BlockTokens < 1 {
		return fmt.Errorf("serve: tenant %s KV block of %d tokens", tenant, lc.BlockTokens)
	}
	if lc.KVCapTokens < 0 {
		return fmt.Errorf("serve: tenant %s KV capacity override %d", tenant, lc.KVCapTokens)
	}
	switch lc.KVPolicy {
	case "", KVReserve, KVPaged:
	default:
		return fmt.Errorf("serve: tenant %s KV policy %q (want %q or %q)", tenant, lc.KVPolicy, KVReserve, KVPaged)
	}
	if lc.KVPolicy == KVPaged {
		if lc.Static {
			return fmt.Errorf("serve: tenant %s: paged KV requires the continuous batcher", tenant)
		}
		if lc.Disagg != nil {
			return fmt.Errorf("serve: tenant %s: paged KV and disaggregation are mutually exclusive", tenant)
		}
		switch lc.KVEvict {
		case KVEvictRecompute, KVEvictSwap:
		default:
			return fmt.Errorf("serve: tenant %s KV eviction %q (want %q or %q)", tenant, lc.KVEvict, KVEvictRecompute, KVEvictSwap)
		}
	} else if lc.KVEvict != "" {
		return fmt.Errorf("serve: tenant %s: KV eviction policy requires the paged backend", tenant)
	}
	if lc.SwapGBps < 0 {
		return fmt.Errorf("serve: tenant %s swap bandwidth %v GB/s", tenant, lc.SwapGBps)
	}
	if lc.Disagg != nil {
		if lc.Static {
			return fmt.Errorf("serve: tenant %s: disaggregation requires the continuous batcher", tenant)
		}
		return lc.Disagg.validate(tenant)
	}
	return nil
}

// llmTenant is the runtime LLM state of one tenant.
type llmTenant struct {
	rng *sim.RNG // request-shape draws (one stream, consumed at arrival)
	// sess holds the live conversation chains of a session trace
	// (Trace.Sessions > 0); nil for independent-request traces.
	sess *workload.SessionState

	ttft metrics.Latencies // time to first token (prefill finish − arrival)
	tpot metrics.Latencies // per-token latency: (completion − TTFT)/(output−1)

	admitted      int   // sequences admitted into an engine
	prefills      int   // prefill invocations completed
	decodeIters   int   // decode iterations completed
	staticBatches int   // static batches launched
	tokensOut     int   // output tokens emitted
	promptTokens  int64 // Σ prompt tokens over admitted sequences
	outputTokens  int64 // Σ output tokens over admitted sequences
	kvStalls      int   // batch-growth attempts blocked by KV exhaustion

	// Disaggregation runtime (zero / empty for colocated tenants).
	migQ          []migPending // prefilled seqs awaiting a decode slot, FIFO
	migrations    int          // KV migrations started
	migLanded     int          // KV migrations completed
	migAborted    int          // KV migrations aborted by a crash (fault.go)
	migBytes      int64        // Σ payload bytes LANDED (aborts never count)
	migWaitCycles float64      // Σ (decode join − prefill finish) over LANDED migrations
	migStalls     int          // prefill completions that found no admitting decode slot

	// In-flight transfer registry (prefill→decode handoffs and crash
	// evacuations), start-ordered: crash handling walks it to abort
	// flights touching a dead chip with conservation intact. Once
	// drained, migrations == migLanded + migAborted and likewise for
	// evacuations.
	migInflight []*migFlight
	evacStarted int   // crash evacuations launched (fault.go)
	evacLanded  int   // crash evacuations landed
	evacAborted int   // crash evacuations aborted by a second fault
	evacBytes   int64 // Σ evacuated KV bytes LANDED
	// rebalPending: a post-crash rebalance found the load gap but every
	// movable sequence sat inside an in-flight decode iteration (whose
	// state must freeze for the copy); retry at the next batch boundary.
	rebalPending bool

	// Per-pool autoscaler windows (reset every control interval).
	windowWait      metrics.Latencies // prefill queue delay: arrival → prefill start
	windowTPOT      metrics.Latencies // per-token latency of completed sequences
	windowMigStalls int
}

// migPending is one sequence parked between prefill and decode: its
// prompt KV still occupies `from` until a decode slot admits the
// migration. The queue drains FIFO with no bypass, so migration order
// is deterministic and starvation-free.
type migPending struct {
	seq  *llmSeq
	from *replica
}

// migFlight is one KV transfer on the wire: a prefill→decode handoff
// (evac false) or a mid-generation crash evacuation (evac true). The
// target's full reservation (dblocks) was charged at start; bytes is
// the payload priced onto the link. The xfer handle lets a crash abort
// the copy mid-flight.
type migFlight struct {
	seq      *llmSeq
	src, dst *replica
	dblocks  int
	bytes    int64
	xfr      *xfer.Transfer
	evac     bool
}

// dropFlight removes one landed or aborted flight from the registry.
func (l *llmTenant) dropFlight(fl *migFlight) {
	for i, x := range l.migInflight {
		if x == fl {
			l.migInflight = append(l.migInflight[:i], l.migInflight[i+1:]...)
			return
		}
	}
}

// llmSeq is one admitted sequence: a request plus its KV reservation
// and generation progress. It lives in its slot queue's running set
// from admission (prefill launch) to completion.
type llmSeq struct {
	req       request
	blocks    int  // KV blocks reserved (full prompt+output footprint)
	ctx       int  // tokens resident in the KV cache
	produced  int  // output tokens emitted
	prefilled bool // prompt processed; eligible for decode iterations
	ttftAt    sim.Time

	// Disaggregation: prefill progress in tokens (chunked prefill
	// advances it per chunk; colocated sequences never use it) and the
	// prefill-completion time the migration wait is measured from. On a
	// prefill replica `blocks` covers only the prompt; the migration
	// swaps it for the full prompt+output reservation on the decode
	// side.
	promptDone int
	prefDone   sim.Time

	// migrating freezes the sequence while a crash evacuation ships its
	// KV (fault.go): no decode iteration includes it until the pages
	// land, so its state is immutable on the wire.
	migrating bool

	// Paged-backend state (kv_paged.go; zero under the reserve backend).
	// hit is the prefix-cache tokens served from pinned shared blocks —
	// `blocks` then covers only the private remainder, and block demand
	// is measured against blocks×BlockTokens+hit. cref pins the matched
	// radix chain from admission to release. A swapped sequence stays in
	// its running set but owns no device blocks: swapped freezes it,
	// swapReady marks its KV landed in host memory (eligible to swap
	// back in when blocks free up).
	hit       int
	cref      *radixNode
	swapped   bool
	swapReady bool
}

// continuousLLM is the autoregressive batcher policy: one invocation
// per iteration under continuous batching (the default), or the
// two-leg static baseline when LLMConfig.Static is set. It owns the
// prefill/decode arms the slot machinery used to switch on directly;
// disaggBatcher (disagg.go) wraps it for role-split fleets.
type continuousLLM struct {
	f *fleet
	t *tenantState
}

// next proposes this queue's launchable work. Continuous mode: a
// prefill when the queue head's KV reservation fits and the running
// set has room (prefill-prioritized joins), else one decode iteration
// when prefilled sequences remain. Static mode: a fresh batch, only
// when no batch of this queue is mid-generation and the head's
// reservation fits.
func (c *continuousLLM) next(r *replica, q *slotQueue) (batchKind, sim.Time, bool) {
	t := q.ten
	if t.cfg.LLM.Static {
		if len(q.reqs) > 0 && len(q.running) == 0 && r.kv.canAdmit(q.reqs[0]) {
			return kindLLMStaticPrefill, q.reqs[0].at, true
		}
		return 0, 0, false
	}
	if len(q.reqs) > 0 && len(q.running) < t.cfg.MaxBatch && r.kv.canAdmit(q.reqs[0]) {
		return kindLLMPrefill, q.reqs[0].at, true
	}
	if t.kvPaged {
		// Block-on-demand decode readiness is stricter than "any
		// decodable sequence": the iteration must be able to grant or
		// free the blocks it needs (paged.go).
		if at, ok := pagedDecodeReady(r, q); ok {
			return kindLLMDecode, at, true
		}
		return 0, 0, false
	}
	for _, s := range q.running {
		if s.prefilled && s.produced < s.req.output {
			// FIFO key: the oldest decodable sequence's arrival.
			return kindLLMDecode, s.req.at, true
		}
	}
	return 0, 0, false
}

func (c *continuousLLM) launch(r *replica, q *slotQueue, kind batchKind, now sim.Time, restore float64) {
	if kind == kindLLMDecode {
		c.launchDecode(r, q, now, restore)
		return
	}
	c.launchPrefill(r, q, kind, now, restore)
}

func (c *continuousLLM) finish(r *replica, b *batch, now sim.Time) *batch {
	switch b.kind {
	case kindLLMPrefill:
		c.finishPrefill(r, b, now)
	case kindLLMDecode:
		c.finishDecode(r, b, now)
	case kindLLMStaticPrefill:
		return c.finishStaticPrefill(r, b, now)
	case kindLLMStaticDecode:
		c.finishStaticDecode(r, b, now)
	}
	return nil
}

// coalesces: a continuous batcher never waits at the door — joins
// happen at iteration boundaries — but the static baseline forms its
// batch from the queue the way the dynamic batcher does.
func (c *continuousLLM) coalesces() bool { return c.t.cfg.LLM.Static }

// passedOver counts a KV-pressure stall for a static queue that could
// not form a batch because its head's reservation does not fit and was
// passed over by whatever launched instead — mirroring the continuous
// path's accounting in admit/launchDecode (once per launch decision,
// so the count stays deterministic).
func (c *continuousLLM) passedOver(r *replica, q *slotQueue) {
	if !c.t.cfg.LLM.Static {
		return
	}
	if len(q.reqs) > 0 && len(q.running) == 0 && !r.kv.canAdmit(q.reqs[0]) {
		c.t.llm.kvStalls++
		c.f.ledStall(c.t, q.reqs[0], c.f.eng.Now())
	}
}

func (c *continuousLLM) admitsArrival(*replica) bool { return true }

// admit moves admittable requests from the queue head into running
// sequences: FIFO, stopping at MaxBatch or at the first request whose
// full KV reservation does not fit (no head-of-line bypass — admission
// order stays deterministic and starvation-free). A stop forced by KV
// pressure is counted as a stall. The disaggregated prefill pool runs
// its own variant of this loop (disaggBatcher.launchPrefill in
// disagg.go: prompt-only reservation, width counts only unfinished
// prefills, queue-delay window sample) — bookkeeping changes here
// likely apply there too.
func (c *continuousLLM) admit(r *replica, q *slotQueue, now sim.Time) []*llmSeq {
	f, t := c.f, q.ten
	var joined []*llmSeq
	for len(q.reqs) > 0 && len(q.running) < t.cfg.MaxBatch {
		req := q.reqs[0]
		s := &llmSeq{req: req, ctx: req.prompt}
		if !r.kv.admit(s, float64(now)) {
			break
		}
		q.running = append(q.running, s)
		joined = append(joined, s)
		n := copy(q.reqs, q.reqs[1:])
		q.reqs = q.reqs[:n]
		t.llm.admitted++
		t.llm.promptTokens += int64(req.prompt)
		t.llm.outputTokens += int64(req.output)
		if f.obs != nil {
			f.obs.trace.End("queue", "req", t.cfg.Name, float64(now), req.id)
			f.obs.trace.Begin("prefill", "req", t.cfg.Name, float64(now), req.id)
		}
	}
	if len(q.reqs) > 0 && len(q.running) < t.cfg.MaxBatch {
		t.llm.kvStalls++
		f.ledStall(t, q.reqs[0], now)
		if f.obs != nil {
			f.obs.trace.Instant("kv-stall", "sched", r.ten.cfg.Name, obsReplicaTrack(r), float64(now), q.reqs[0].id, "", 0, "tenant", t.cfg.Name)
		}
	}
	return joined
}

// launchPrefill starts a prefill invocation for the queue's
// admittable joiners — kind selects continuous (kindLLMPrefill, whose
// batch retires at the prefill) or static (kindLLMStaticPrefill, whose
// decode leg chains at the prefill's completion). next only proposes
// either when the head fits, so at least one sequence always joins.
func (c *continuousLLM) launchPrefill(r *replica, q *slotQueue, kind batchKind, now sim.Time, restore float64) {
	f, t := c.f, q.ten
	f.disarmTimer(r)
	joined := c.admit(r, q, now)
	if len(joined) == 0 {
		panic("serve: prefill launch admitted no sequence")
	}
	f.ledPrefillSeqs(t, joined, now)
	if kind == kindLLMStaticPrefill {
		t.llm.staticBatches++
	}
	maxPrompt := 0
	for _, s := range joined {
		if s.req.prompt > maxPrompt {
			maxPrompt = s.req.prompt
		}
	}
	var cycles float64
	var err error
	if t.kvPaged {
		// Prefix-cache hits shrink the prefill to the unmatched suffix —
		// a chunk whose attention still spans the cached context behind
		// it, exactly what LLMChunkCycles measures. With no hit in the
		// batch this is a plain full-prompt chunk at context 0.
		maxChunk, maxBehind := 0, 0
		for _, s := range joined {
			if c := s.req.prompt - s.hit; c > maxChunk {
				maxChunk = c
			}
			if s.hit > maxBehind {
				maxBehind = s.hit
			}
		}
		cycles, err = f.costs.LLMChunkCycles(len(joined), maxChunk, maxBehind, r.nm, r.nv)
	} else {
		cycles, err = f.costs.LLMCycles(PhasePrefill, len(joined), maxPrompt, r.nm, r.nv)
	}
	if err != nil {
		panic(fmt.Sprintf("serve: costing prefill batch: %v", err))
	}
	b := f.takeBatch()
	b.ten, b.restore, b.kind = t, restore, kind
	b.seqs = append(b.seqs[:0], joined...)
	b.total, b.remaining = cycles, cycles
	t.issuedServiceCycles += cycles
	f.startSegment(r, b, now)
}

// launchDecode starts one decode iteration over the queue's
// prefilled, unfinished sequences. An iteration that could not also
// grow the batch because the queue head's KV reservation does not fit
// counts as a stall — the KV-pressure signal in the report.
func (c *continuousLLM) launchDecode(r *replica, q *slotQueue, now sim.Time, restore float64) {
	f, t := c.f, q.ten
	f.disarmTimer(r)
	if len(q.reqs) > 0 && len(q.running) < t.cfg.MaxBatch && !r.kv.canAdmit(q.reqs[0]) {
		t.llm.kvStalls++
		f.ledStall(t, q.reqs[0], now)
	}
	if t.kvPaged {
		c.launchPagedDecode(r, q, now, restore)
		return
	}
	b := f.takeBatch()
	b.ten, b.restore, b.kind = t, restore, kindLLMDecode
	maxCtx := 0
	for _, s := range q.running {
		if s.prefilled && !s.migrating && s.produced < s.req.output {
			b.seqs = append(b.seqs, s)
			if s.ctx > maxCtx {
				maxCtx = s.ctx
			}
		}
	}
	if len(b.seqs) == 0 {
		panic("serve: decode launch with no decodable sequence")
	}
	f.ledSeqs(t, b.seqs, obs.SegDecode, now)
	cycles, err := f.costs.LLMCycles(PhaseDecode, len(b.seqs), maxCtx, r.nm, r.nv)
	if err != nil {
		panic(fmt.Sprintf("serve: costing decode iteration: %v", err))
	}
	b.total, b.remaining = cycles, cycles
	t.issuedServiceCycles += cycles
	f.startSegment(r, b, now)
}

// finishPrefill retires a continuous-mode prefill: every joiner has
// its first token (TTFT), single-token requests complete outright, the
// rest become decodable.
func (c *continuousLLM) finishPrefill(r *replica, b *batch, now sim.Time) {
	f, t := c.f, b.ten
	t.llm.prefills++
	for _, s := range b.seqs {
		f.emitFirstToken(t, s, now)
		if s.produced >= s.req.output {
			f.completeSeq(r, t, s, now)
		}
	}
}

// finishDecode retires one decode iteration: every sequence gains a
// token; finished ones exit and free their KV.
func (c *continuousLLM) finishDecode(r *replica, b *batch, now sim.Time) {
	f, t := c.f, b.ten
	t.llm.decodeIters++
	for _, s := range b.seqs {
		s.produced++
		s.ctx++
		t.llm.tokensOut++
		if s.produced >= s.req.output {
			f.completeSeq(r, t, s, now)
		} else if f.led != nil {
			f.led.ReqSeg(t.cfg.Name, s.req.id, obs.SegDecodeGap, float64(now))
		}
	}
}

// finishStaticPrefill retires a static batch's prefill leg and
// returns the chained decode leg: one monolithic invocation covering
// max(output−1) iterations at the batch's FULL launch width — finished
// lanes are padding, the static-batching inefficiency. With no decode
// work left (all outputs of length 1) it completes the batch and
// returns nil.
func (c *continuousLLM) finishStaticPrefill(r *replica, b *batch, now sim.Time) *batch {
	f, t := c.f, b.ten
	t.llm.prefills++
	maxRem, maxCtx := 0, 0
	for _, s := range b.seqs {
		f.emitFirstToken(t, s, now)
		if rem := s.req.output - 1; rem > maxRem {
			maxRem = rem
		}
		if s.ctx > maxCtx {
			maxCtx = s.ctx
		}
	}
	if maxRem == 0 {
		for _, s := range b.seqs {
			f.completeSeq(r, t, s, now)
		}
		return nil
	}
	var cycles float64
	for i := 0; i < maxRem; i++ {
		c, err := f.costs.LLMCycles(PhaseDecode, len(b.seqs), maxCtx+i, r.nm, r.nv)
		if err != nil {
			panic(fmt.Sprintf("serve: costing static decode leg: %v", err))
		}
		cycles += c
	}
	nb := f.takeBatch()
	nb.ten, nb.kind = t, kindLLMStaticDecode
	nb.seqs = append(nb.seqs[:0], b.seqs...)
	nb.total, nb.remaining = cycles, cycles
	t.issuedServiceCycles += cycles
	// The monolithic decode leg starts the instant this prefill retires
	// (finish chains it), so the whole leg is decode time.
	f.ledSeqs(t, nb.seqs, obs.SegDecode, now)
	return nb
}

// finishStaticDecode retires a static batch's decode leg: every
// request returns together (the synchronous static batcher), however
// short its own output was.
func (c *continuousLLM) finishStaticDecode(r *replica, b *batch, now sim.Time) {
	f, t := c.f, b.ten
	maxRem := 0
	for _, s := range b.seqs {
		if rem := s.req.output - 1; rem > maxRem {
			maxRem = rem
		}
	}
	t.llm.decodeIters += maxRem
	for _, s := range b.seqs {
		t.llm.tokensOut += s.req.output - 1
		s.produced = s.req.output
		s.ctx = s.req.prompt + s.req.output
		f.completeSeq(r, t, s, now)
	}
}

// emitFirstToken records a sequence's prefill completion: first token
// out, TTFT measured from arrival (queueing included). A crash replay
// whose first token was already delivered before the crash skips the
// TTFT sample — the user saw that token once.
func (f *fleet) emitFirstToken(t *tenantState, s *llmSeq, now sim.Time) {
	s.prefilled = true
	s.produced = 1
	s.ctx++
	s.ttftAt = now
	if !s.req.hadTok {
		t.llm.ttft.Add(float64(now - s.req.at))
	}
	t.llm.tokensOut++
	if f.led != nil {
		f.led.ReqFirstToken(t.cfg.Name, s.req.id, float64(now))
		if s.produced < s.req.output {
			f.led.ReqSeg(t.cfg.Name, s.req.id, obs.SegDecodeGap, float64(now))
		}
	}
	if f.obs != nil {
		// Disaggregated prefill already closed its phase at prefDone
		// (finishDisaggPrefill); here the first token lands after the
		// migration, so only the decode phase opens.
		if t.disagg() == nil {
			f.obs.trace.End("prefill", "req", t.cfg.Name, float64(now), s.req.id)
		}
		f.obs.trace.Instant("first-token", "req", t.cfg.Name, obsTrackControl, float64(now), s.req.id, "ttft_us", int64(float64(now-s.req.at)/f.cfg.Core.FrequencyHz*1e6), "", "")
		if s.produced < s.req.output {
			f.obs.trace.Begin("decode", "req", t.cfg.Name, float64(now), s.req.id)
		}
	}
}

// removeRunning takes a sequence out of a slot queue's running set.
func (q *slotQueue) removeRunning(s *llmSeq) {
	for i, x := range q.running {
		if x == s {
			q.running = append(q.running[:i], q.running[i+1:]...)
			return
		}
	}
}

// completeSeq retires a finished sequence: end-to-end latency recorded
// against the SLO, per-token latency derived from TTFT, KV freed, and
// the sequence removed from its running set.
func (f *fleet) completeSeq(r *replica, t *tenantState, s *llmSeq, now sim.Time) {
	r.queueFor(t).removeRunning(s)
	r.kv.release(s, float64(now))
	lat := float64(now - s.req.at)
	t.lat.Add(lat)
	f.noteFaultDone(t, s.req.at, lat)
	if f.cfg.Autoscale {
		t.windowLat.Add(lat)
	}
	if f.prioEnabled {
		f.prioLat[t.cfg.Priority].Add(lat)
	}
	t.completed++
	f.led.ReqDone(t.cfg.Name, s.req.id, float64(now), s.produced)
	if f.obs != nil {
		f.obsCompletion(t, lat)
		if s.req.output > 1 {
			f.obs.trace.End("decode", "req", t.cfg.Name, float64(now), s.req.id)
		}
		f.obs.trace.Instant("complete", "req", t.cfg.Name, obsTrackControl, float64(now), s.req.id, "lat_us", int64(lat/f.cfg.Core.FrequencyHz*1e6), "", "")
	}
	if s.req.output > 1 {
		tpot := float64(now-s.ttftAt) / float64(s.req.output-1)
		t.llm.tpot.Add(tpot)
		if t.disagg() != nil && f.cfg.Autoscale {
			t.llm.windowTPOT.Add(tpot)
		}
	}
	if t.disagg() != nil {
		// The freed decode blocks may admit a parked migration.
		f.drainMigQ(t, now)
	} else if t.kvPaged {
		// The freed blocks may let a swapped-out sequence return.
		f.drainSwaps(r, now)
	}
}
