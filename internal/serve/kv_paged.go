package serve

import (
	"fmt"

	"neu10/internal/xfer"
)

// Paged KV backend: block-on-demand allocation with a radix-trie prefix
// cache (vLLM's PagedAttention allocation discipline plus SGLang-style
// RadixAttention reuse, on the simulator's block ledger).
//
// Where the reserve backend charges a sequence's whole prompt+output
// footprint at admission, the paged backend charges only the prompt
// (plus the prefill's first token) and grants one block at a time as
// decode actually produces tokens. That admits far more concurrent
// sequences on the same HBM — and makes mid-flight exhaustion possible,
// which the scheduling layer (paged.go) resolves by evicting the
// youngest sequences: dropping their blocks and replaying the lost
// tokens through a chunked re-prefill ("recompute"), or shipping them
// to host memory and back over a modeled PCIe-class link ("swap").
//
// Completed sequences do not just free their blocks: a session-traced
// request seals its tokens into the radix cache, a refcounted trie
// keyed by opaque segment keys (workload.PrefixSeg). Cache nodes with
// no live pins are "cold" — still resident, counted reclaimable, and
// evicted LRU-leaf-first only under allocation pressure. A later
// request whose prefix chain matches resident nodes pins them and
// skips re-prefilling the matched whole blocks.
//
// Invariants (asserted in tests):
//   - acct.used == Σ live private blocks + Σ cache-node blocks;
//   - cold == Σ blocks of cache nodes with refs == 0;
//   - node refs ≥ 0 everywhere, and a node's refs ≥ any child's
//     (chains pin whole paths, so cold subtrees are evictable
//     leaf-first);
//   - after drain, no live sequences: used == cold (only cache).

// radixNode is one sealed segment in the prefix-cache trie. Block
// ownership is an exact partition of the chain: a node owns the whole
// blocks that COMPLETE within its token span, so a chain of C tokens
// owns floor(C/blockTokens) blocks with no double counting across
// parent and child.
type radixNode struct {
	key      uint64
	tokens   int // tokens this segment adds to its chain
	startTok int // chain tokens before this segment
	blocks   int // whole blocks completing within this segment's span

	parent   *radixNode
	children map[uint64]*radixNode

	refs    int   // live sequences pinning this node (via descendants too)
	lastUse int64 // LRU clock at last pin/seal touch
	ord     int64 // creation ordinal: deterministic LRU tie-break
}

// swapFlight is one sequence's KV payload on the host link, outbound
// (evict) or inbound (restore). Held so a crash teardown can cancel the
// copy mid-flight.
type swapFlight struct {
	seq *llmSeq
	xfr *xfer.Transfer
	out bool
}

// pagedKV implements kvBackend with block-on-demand allocation,
// cold-block eviction and prefix caching on top of the raw kvAccountant
// ledger (which keeps owning the occupancy integral and peak).
type pagedKV struct {
	f     *fleet
	t     *tenantState  // owning LLM tenant (paged excludes share groups)
	r     *replica      // bound after spawn (bind); nil only during spawn
	a     *kvAccountant // raw block ledger
	evict string        // KVEvictRecompute | KVEvictSwap

	root    *radixNode
	nodes   []*radixNode // every cache node (eviction scan set)
	cold    int          // Σ blocks of refs==0 nodes: reclaimable without touching live seqs
	lruTick int64
	nodeOrd int64

	// hostLink models the NPU↔host swap path (SwapGBps); lazily created
	// at bind. swapQ holds swapped-out sequences FIFO: the head returns
	// as soon as its outbound copy landed and blocks free up, and
	// admission backpressures while any sequence waits here.
	hostLink *xfer.Link
	swapQ    []*llmSeq
	flights  []*swapFlight

	// Policy counters folded into KVStats at addStats.
	curSeqs, peakSeqs int
	evictions         int
	evictRecompute    int
	evictSwap         int
	recomputeTokens   int64
	swapOutBytes      int64
	swapInBytes       int64
	prefixLookups     int
	prefixHits        int
	prefixHitTokens   int64
	cacheEvictBlocks  int
}

// newPagedKV wraps a fresh replica's block ledger in the paged backend.
func newPagedKV(f *fleet, t *tenantState, acct *kvAccountant) *pagedKV {
	return &pagedKV{
		f: f, t: t, a: acct,
		evict: t.cfg.LLM.KVEvict,
		root:  &radixNode{children: map[uint64]*radixNode{}},
	}
}

// bind attaches the backend to its spawned replica and opens the host
// swap link (per replica: swap bandwidth is a per-chip resource).
func (p *pagedKV) bind(r *replica) {
	p.r = r
	bw := p.t.cfg.LLM.SwapGBps * 1e9 / p.f.cfg.Core.FrequencyHz
	lat := p.f.cfg.LinkLatencyUs * 1e-6 * p.f.cfg.Core.FrequencyHz
	l, err := xfer.NewLink(p.f.eng, fmt.Sprintf("host/%s/r%d", p.t.cfg.Name, r.uid), bw, lat)
	if err != nil {
		panic(fmt.Sprintf("serve: paged KV host link: %v", err))
	}
	p.hostLink = l
}

// ---- raw ledger delegation ----

func (p *pagedKV) blocksFor(tokens int) int      { return p.a.blocksFor(tokens) }
func (p *pagedKV) fits(blocks int) bool          { return p.a.fits(blocks) }
func (p *pagedKV) alloc(blocks int, now float64) { p.a.alloc(blocks, now) }
func (p *pagedKV) free(blocks int, now float64)  { p.a.free(blocks, now) }
func (p *pagedKV) accrue(now float64)            { p.a.accrue(now) }
func (p *pagedKV) used() int                     { return p.a.used() }
func (p *pagedKV) total() int                    { return p.a.total() }
func (p *pagedKV) peak() int                     { return p.a.peak() }
func (p *pagedKV) bornAt() float64               { return p.a.bornAt() }
func (p *pagedKV) area() float64                 { return p.a.area() }

// ---- allocation arithmetic ----

// freeBlocks is the ledger's unallocated remainder; avail adds the cold
// cache blocks reclaimable on demand.
func (p *pagedKV) freeBlocks() int { return p.a.total() - p.a.used() }
func (p *pagedKV) avail() int      { return p.freeBlocks() + p.cold }

func (p *pagedKV) canAlloc(blocks int) bool { return p.avail() >= blocks }

// ensureFree evicts cold cache blocks LRU-leaf-first until `blocks` can
// allocate from the ledger. Callers must have checked canAlloc.
func (p *pagedKV) ensureFree(blocks int, now float64) {
	for p.freeBlocks() < blocks {
		v := p.coldestLeaf()
		if v == nil {
			panic("serve: paged KV ensureFree with no reclaimable blocks")
		}
		p.dropNode(v, now)
	}
}

// coldestLeaf picks the eviction victim: among unpinned childless
// nodes, the least recently used (creation ordinal breaks ties, so the
// scan order over the node set cannot matter).
func (p *pagedKV) coldestLeaf() *radixNode {
	var best *radixNode
	for _, n := range p.nodes {
		if n.refs != 0 || len(n.children) != 0 {
			continue
		}
		if best == nil || n.lastUse < best.lastUse ||
			(n.lastUse == best.lastUse && n.ord < best.ord) {
			best = n
		}
	}
	return best
}

// dropNode evicts one cold leaf: its blocks return to the ledger and
// its parent may become a leaf for the next round.
func (p *pagedKV) dropNode(n *radixNode, now float64) {
	delete(n.parent.children, n.key)
	for i, x := range p.nodes {
		if x == n {
			p.nodes = append(p.nodes[:i], p.nodes[i+1:]...)
			break
		}
	}
	p.cold -= n.blocks
	p.cacheEvictBlocks += n.blocks
	if n.blocks > 0 {
		p.a.free(n.blocks, now)
	}
}

func (p *pagedKV) tick() int64 {
	p.lruTick++
	return p.lruTick
}

// ---- prefix matching ----

// matchPrefix walks the request's chain against the trie: segments
// match on key AND span. Returns the deepest matched node (nil on a
// cold miss), the matched tokens, and the blocks of matched nodes that
// are currently cold — which pinning would remove from the reclaimable
// pool, so admission must discount them.
func (p *pagedKV) matchPrefix(req request) (*radixNode, int, int) {
	node, tok, coldB := p.root, 0, 0
	for _, seg := range req.prefix {
		child := node.children[seg.Key]
		if child == nil || child.tokens != seg.Tokens {
			break
		}
		node = child
		tok += seg.Tokens
		if child.refs == 0 {
			coldB += child.blocks
		}
	}
	if node == p.root {
		return nil, 0, 0
	}
	return node, tok, coldB
}

// hitTokens converts matched chain tokens into the reusable hit: whole
// blocks only, and never the entire prompt — the prefill must still
// process at least one token to produce the first output logits.
func (p *pagedKV) hitTokens(matched, prompt int) int {
	if matched > prompt-1 {
		matched = prompt - 1
	}
	if matched < 0 {
		return 0
	}
	return matched / p.a.blockTokens * p.a.blockTokens
}

// pinChain refs every node on the path root→tail; a node going cold→
// pinned leaves the reclaimable pool.
func (p *pagedKV) pinChain(tail *radixNode) {
	for n := tail; n != nil && n != p.root; n = n.parent {
		if n.refs == 0 {
			p.cold -= n.blocks
		}
		n.refs++
		n.lastUse = p.tick()
	}
}

// unpin releases a sequence's chain pin; nodes dropping to refs 0
// become cold (reclaimable).
func (p *pagedKV) unpin(s *llmSeq) {
	for n := s.cref; n != nil && n != p.root; n = n.parent {
		n.refs--
		if n.refs < 0 {
			panic("serve: paged KV unpinned below zero")
		}
		if n.refs == 0 {
			p.cold += n.blocks
		}
	}
	s.cref = nil
}

// ---- kvBackend admission / release ----

// canAdmit: admission charges blocksFor(prompt+1−hit) — the prompt
// suffix the prefill actually processes plus the first token it emits;
// decode grows the rest block-by-block. Admission backpressures while
// any sequence waits in the swap queue (its return has first claim on
// freed blocks), and discounts the matched chain's cold blocks, which
// pinning will make unreclaimable.
func (p *pagedKV) canAdmit(req request) bool {
	if len(p.swapQ) > 0 {
		return false
	}
	_, tok, coldB := p.matchPrefix(req)
	need := p.a.blocksFor(req.prompt + 1 - p.hitTokens(tok, req.prompt))
	return p.avail()-coldB >= need
}

// admit pins the matched prefix chain and charges the private suffix.
// next() proposes work and launches it within one event, so state
// cannot shift between the canAdmit that approved this admission and
// the charge here.
func (p *pagedKV) admit(s *llmSeq, now float64) bool {
	if !p.canAdmit(s.req) {
		return false
	}
	tail, tok, _ := p.matchPrefix(s.req)
	hit := p.hitTokens(tok, s.req.prompt)
	need := p.a.blocksFor(s.req.prompt + 1 - hit)
	if tail != nil {
		p.pinChain(tail)
		s.cref = tail
	}
	p.ensureFree(need, now)
	p.a.alloc(need, now)
	s.blocks, s.hit = need, hit
	p.prefixLookups++
	if hit > 0 {
		p.prefixHits++
		p.prefixHitTokens += int64(hit)
	}
	p.curSeqs++
	if p.curSeqs > p.peakSeqs {
		p.peakSeqs = p.curSeqs
	}
	return true
}

// release retires a completed sequence: its tokens seal into the cache
// under the request's seal key (transferring the covering blocks from
// the private pool), the chain pin drops, and the private remainder
// frees.
func (p *pagedKV) release(s *llmSeq, now float64) {
	if s.req.sealKey != 0 {
		p.seal(s)
	}
	p.unpin(s)
	if s.blocks > 0 {
		p.a.free(s.blocks, now)
		s.blocks = 0
	}
	p.curSeqs--
}

// seal walks/creates the request's full chain — prefix segments plus
// its own segment — moving block ownership for newly created nodes out
// of the sequence's private pool. The private pool always covers them:
// it holds ceil((ctx−hit)/blockTokens) blocks while new nodes own at
// most floor(ctx/blockTokens) − hit/blockTokens.
func (p *pagedKV) seal(s *llmSeq) {
	bt := p.a.blockTokens
	node, tokens := p.root, 0
	transferred := 0
	addSeg := func(key uint64, span int) bool {
		child := node.children[key]
		if child != nil {
			if child.tokens != span {
				return false // foreign key reuse; stop sealing
			}
			child.lastUse = p.tick()
		} else {
			child = &radixNode{
				key: key, tokens: span, startTok: tokens,
				blocks: (tokens+span)/bt - tokens/bt,
				parent: node, children: map[uint64]*radixNode{},
				lastUse: p.tick(), ord: p.nodeOrd,
			}
			p.nodeOrd++
			node.children[key] = child
			p.nodes = append(p.nodes, child)
			p.cold += child.blocks // born cold; a later admission may pin it
			transferred += child.blocks
		}
		node = child
		tokens += span
		return true
	}
	for _, seg := range s.req.prefix {
		if !addSeg(seg.Key, seg.Tokens) {
			break
		}
	}
	if rest := s.ctx - tokens; rest > 0 {
		addSeg(s.req.sealKey, rest)
	}
	s.blocks -= transferred
	if s.blocks < 0 {
		panic("serve: paged KV sealed more blocks than the sequence owned")
	}
}

// needsBlock: the next decoded token lands at ctx+1; capacity is the
// private blocks plus the cache-served hit.
func (p *pagedKV) needsBlock(s *llmSeq) bool {
	return s.blocks*p.a.blockTokens+s.hit < s.ctx+1
}

// extendSeq grants one more private block, reclaiming a cold cache
// block if the ledger is out of free ones. The scheduling layer
// (launchPagedDecode) checked avail.
func (p *pagedKV) extendSeq(s *llmSeq, now float64) {
	p.ensureFree(1, now)
	p.a.alloc(1, now)
	s.blocks++
}

// teardown cancels in-flight swap copies when the replica dies; the
// harvested sequences themselves are crash-handled by the caller.
func (p *pagedKV) teardown(now float64) {
	for _, fl := range p.flights {
		fl.xfr.Cancel()
	}
	p.flights = p.flights[:0]
	p.swapQ = p.swapQ[:0]
}

func (p *pagedKV) dropFlight(fl *swapFlight) {
	for i, x := range p.flights {
		if x == fl {
			p.flights = append(p.flights[:i], p.flights[i+1:]...)
			return
		}
	}
}

// addStats folds the replica's policy counters into the tenant
// aggregate (once per replica lifetime, from foldKV).
func (p *pagedKV) addStats(st *KVStats) {
	if p.peakSeqs > st.PeakSeqs {
		st.PeakSeqs = p.peakSeqs
	}
	st.Evictions += p.evictions
	st.EvictRecompute += p.evictRecompute
	st.EvictSwap += p.evictSwap
	st.RecomputeTokens += p.recomputeTokens
	st.SwapOutMB += float64(p.swapOutBytes) / 1e6
	st.SwapInMB += float64(p.swapInBytes) / 1e6
	st.PrefixLookups += p.prefixLookups
	st.PrefixHits += p.prefixHits
	st.PrefixHitTokens += p.prefixHitTokens
	st.CacheEvictions += p.cacheEvictBlocks
}

var _ kvBackend = (*pagedKV)(nil)
