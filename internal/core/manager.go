package core

import (
	"fmt"
	"sync"

	"neu10/internal/arch"
)

// Manager is the vNPU manager of Fig. 11: the host-side component (a
// kernel module in the paper's KVM integration) that owns the physical
// NPU inventory and services the three management hypercalls — create,
// reconfigure, deallocate. It is safe for concurrent use; the data-path
// (command buffers, DMA) deliberately bypasses it, matching the paper's
// "hypervisor only mediates functions off the critical path".
type Manager struct {
	mu     sync.Mutex
	mapper *Mapper
	core   arch.CoreConfig
	vnpus  map[int]*VNPU
	nextID int
}

// NewManager builds a manager over n physical cores.
func NewManager(n int, core arch.CoreConfig) (*Manager, error) {
	mp, err := NewMapper(n, core)
	if err != nil {
		return nil, err
	}
	return &Manager{mapper: mp, core: core, vnpus: map[int]*VNPU{}}, nil
}

// Create allocates and maps a new vNPU for a tenant.
func (m *Manager) Create(tenant string, cfg VNPUConfig, mode IsolationMode) (*VNPU, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if cfg.NumMEsPerCore > m.core.MEs || cfg.NumVEsPerCore > m.core.VEs {
		// Paper §III-A: the maximum vNPU size is capped by the physical
		// NPU; bigger jobs get multiple vNPU instances.
		return nil, fmt.Errorf("core: vNPU (%d MEs, %d VEs) exceeds physical core (%d, %d); allocate multiple vNPUs instead",
			cfg.NumMEsPerCore, cfg.NumVEsPerCore, m.core.MEs, m.core.VEs)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	v := &VNPU{ID: m.nextID, Tenant: tenant, Config: cfg, State: StateCreated}
	m.nextID++
	if err := m.mapper.Map(v, mode); err != nil {
		return nil, err
	}
	m.vnpus[v.ID] = v
	return v, nil
}

// Get looks up a vNPU by ID.
func (m *Manager) Get(id int) (*VNPU, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.vnpus[id]
	if !ok {
		return nil, fmt.Errorf("core: no vNPU %d", id)
	}
	return v, nil
}

// Reconfigure resizes an existing vNPU (hypercall 2 of §III-F): the old
// mapping is released and the new configuration mapped atomically —
// failure restores the original binding.
func (m *Manager) Reconfigure(id int, cfg VNPUConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.vnpus[id]
	if !ok {
		return fmt.Errorf("core: no vNPU %d", id)
	}
	oldCfg, oldMode := v.Config, v.Mapping.Mode
	if err := m.mapper.Unmap(v); err != nil {
		return err
	}
	v.Config = cfg
	v.State = StateCreated
	if err := m.mapper.Map(v, oldMode); err != nil {
		// Roll back.
		v.Config = oldCfg
		v.State = StateCreated
		if rbErr := m.mapper.Map(v, oldMode); rbErr != nil {
			return fmt.Errorf("core: reconfigure failed (%v) and rollback failed (%v)", err, rbErr)
		}
		return err
	}
	return nil
}

// Free deallocates a vNPU (hypercall 3): context cleanup + DMA teardown.
func (m *Manager) Free(id int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	v, ok := m.vnpus[id]
	if !ok {
		return fmt.Errorf("core: no vNPU %d", id)
	}
	if err := m.mapper.Unmap(v); err != nil {
		return err
	}
	delete(m.vnpus, id)
	return nil
}

// Live returns the number of live vNPUs.
func (m *Manager) Live() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.vnpus)
}

// Mapper exposes the underlying mapper for inspection.
func (m *Manager) Mapper() *Mapper { return m.mapper }
