package core

import (
	"fmt"
	"math"

	"neu10/internal/arch"
	"neu10/internal/compiler"
)

// The vNPU allocator (§III-B). Users specify a total EU budget (the
// pay-as-you-go cost knob); the allocator picks the ME:VE split that
// maximizes EU utilization for the workload's compile-time profile
// (m = ME active fraction, v = VE active fraction on 1 ME + 1 VE).

// NormalizedTime implements the paper's Eq. 1: execution time on
// (nm, nv) EUs normalized to 1 ME + 1 VE, under the Amdahl decomposition
// into ME-only (1-v), VE-only (1-m) and concurrent (m+v-1) phases.
// When m+v < 1 (a memory-bound workload), the concurrent term clamps to
// zero — neither engine is the bottleneck in the residual phase, which
// scales with neither engine count.
func NormalizedTime(m, v float64, nm, nv int) float64 {
	if nm < 1 || nv < 1 {
		return math.Inf(1)
	}
	meOnly := 1 - v
	veOnly := 1 - m
	conc := m + v - 1
	membound := 0.0
	if conc < 0 {
		membound = -conc
		conc = 0
		// The ME-only and VE-only phases are then exactly m and v.
		meOnly = m
		veOnly = v
	}
	minN := nm
	if nv < minN {
		minN = nv
	}
	return meOnly/float64(nm) + veOnly/float64(nv) + conc/float64(minN) + membound
}

// Utilization implements Eq. 2: the ratio between the hypothetical
// execution time on nm+nv type-agnostic EUs and the estimated time.
func Utilization(m, v float64, nm, nv int) float64 {
	th := (m + v) / float64(nm+nv)
	t := NormalizedTime(m, v, nm, nv)
	if t <= 0 {
		return 0
	}
	return th / t
}

// OptimalRatio implements Eq. 4: the closed-form ME:VE quantity ratio
// k = nm/nv maximizing utilization.
func OptimalRatio(m, v float64) float64 {
	switch {
	case m < 0.5:
		return math.Sqrt(m / (1 - m))
	case v < 0.5:
		return math.Sqrt((1 - v) / v)
	default:
		return 1
	}
}

// Allocation is the allocator's recommendation for one workload.
type Allocation struct {
	MEs, VEs    int
	Utilization float64 // Eq. 2 at the chosen split
	Speedup     float64 // 1 / Eq. 1 — normalized throughput vs 1 ME + 1 VE
	SRAMBytes   int64
	HBMBytes    int64
}

// Allocator sizes vNPUs from compile-time profiles.
type Allocator struct {
	core arch.CoreConfig
}

// NewAllocator returns an allocator for a physical core family.
func NewAllocator(core arch.CoreConfig) (*Allocator, error) {
	if err := core.Validate(); err != nil {
		return nil, err
	}
	return &Allocator{core: core}, nil
}

// ChooseSplit picks (nm, nv) with nm+nv == totalEUs maximizing Eq. 2
// utilization, with at least one of each. Among near-equal utilization
// the smaller |k - optimal| wins, which reproduces the paper's Fig. 12
// "selected configs" walk.
func (a *Allocator) ChooseSplit(m, v float64, totalEUs int) (int, int, error) {
	if totalEUs < 2 {
		return 0, 0, fmt.Errorf("core: need ≥2 EUs (1 ME + 1 VE), got %d", totalEUs)
	}
	if m < 0 || m > 1 || v < 0 || v > 1 {
		return 0, 0, fmt.Errorf("core: profile fractions m=%v v=%v out of [0,1]", m, v)
	}
	bestM, bestU := 1, -1.0
	for nm := 1; nm < totalEUs; nm++ {
		u := Utilization(m, v, nm, totalEUs-nm)
		if u > bestU+1e-12 {
			bestU, bestM = u, nm
		}
	}
	return bestM, totalEUs - bestM, nil
}

// Allocate produces the full recommendation for a profiled workload: the
// EU split via Eq. 4, SRAM proportional to MEs (more MEs → larger tiles,
// §III-B), and HBM sized to the model footprint.
func (a *Allocator) Allocate(p compiler.Profile, footprint int64, totalEUs int) (Allocation, error) {
	nm, nv, err := a.ChooseSplit(p.M, p.V, totalEUs)
	if err != nil {
		return Allocation{}, err
	}
	sram := a.core.SRAMBytes * int64(nm) / int64(a.core.MEs)
	if sram > a.core.SRAMBytes {
		sram = a.core.SRAMBytes
	}
	hbm := footprint + footprint/8 // headroom for runtime buffers
	if hbm > a.core.HBMBytes {
		hbm = a.core.HBMBytes
	}
	return Allocation{
		MEs:         nm,
		VEs:         nv,
		Utilization: Utilization(p.M, p.V, nm, nv),
		Speedup:     1 / NormalizedTime(p.M, p.V, nm, nv),
		SRAMBytes:   sram,
		HBMBytes:    hbm,
	}, nil
}

// Sweep evaluates every split for every EU budget in [2, maxEUs] — the
// data behind Fig. 12: for each total the selected config and, for
// comparison, every alternative's speedup.
type SweepPoint struct {
	TotalEUs int
	MEs, VEs int
	Speedup  float64
	Selected bool
}

// Sweep returns all (nm, nv) points for budgets 2..maxEUs.
func (a *Allocator) Sweep(m, v float64, maxEUs int) []SweepPoint {
	var out []SweepPoint
	for total := 2; total <= maxEUs; total++ {
		selM, _, err := a.ChooseSplit(m, v, total)
		if err != nil {
			continue
		}
		for nm := 1; nm < total; nm++ {
			out = append(out, SweepPoint{
				TotalEUs: total,
				MEs:      nm,
				VEs:      total - nm,
				Speedup:  1 / NormalizedTime(m, v, nm, total-nm),
				Selected: nm == selM,
			})
		}
	}
	return out
}

// ConfigFor converts an allocation into the user-facing vNPU config.
func (a *Allocator) ConfigFor(al Allocation) VNPUConfig {
	return VNPUConfig{
		NumChips:        1,
		NumCoresPerChip: 1,
		NumMEsPerCore:   al.MEs,
		NumVEsPerCore:   al.VEs,
		SRAMSizePerCore: al.SRAMBytes,
		MemSizePerCore:  al.HBMBytes,
	}
}
