package core

import (
	"fmt"
	"math"

	"neu10/internal/arch"
)

// vNPU→pNPU mapping (§III-C): segment-granular memory isolation plus two
// mapping schemes — hardware-isolated (spatial) and software-isolated
// (temporal with oversubscription) — under a greedy policy that balances
// EU and memory consumption on every physical core.

// Segment sizes from §III-C: "For the NPU core in Table II, an SRAM/HBM
// segment is 2MB/1GB."
const (
	SRAMSegmentBytes = 2 << 20
	HBMSegmentBytes  = 1 << 30
)

// unowned marks a free segment.
const unowned = -1

// PNPU is one physical NPU core tracked by the mapper.
type PNPU struct {
	ID   int
	Core arch.CoreConfig

	meOwner  []int // physical ME -> vNPU ID (spatial) or unowned
	veOwner  []int
	sramSeg  []int // segment -> vNPU ID
	hbmSeg   []int
	temporal []*VNPU // vNPUs time-sharing this core
}

// NewPNPU builds an empty physical core.
func NewPNPU(id int, core arch.CoreConfig) (*PNPU, error) {
	if err := core.Validate(); err != nil {
		return nil, err
	}
	p := &PNPU{
		ID:      id,
		Core:    core,
		meOwner: fill(core.MEs),
		veOwner: fill(core.VEs),
		sramSeg: fill(int(core.SRAMBytes / SRAMSegmentBytes)),
		hbmSeg:  fill(int(core.HBMBytes / HBMSegmentBytes)),
	}
	return p, nil
}

func fill(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = unowned
	}
	return s
}

func countFree(owners []int) int {
	n := 0
	for _, o := range owners {
		if o == unowned {
			n++
		}
	}
	return n
}

// FreeMEs returns unowned matrix engines.
func (p *PNPU) FreeMEs() int { return countFree(p.meOwner) }

// FreeVEs returns unowned vector engines.
func (p *PNPU) FreeVEs() int { return countFree(p.veOwner) }

// FreeSRAMSegments returns unowned SRAM segments.
func (p *PNPU) FreeSRAMSegments() int { return countFree(p.sramSeg) }

// FreeHBMSegments returns unowned HBM segments.
func (p *PNPU) FreeHBMSegments() int { return countFree(p.hbmSeg) }

// TemporalLoad is the summed EU requirement fraction of temporally
// mapped vNPUs (1.0 = one full core's worth).
func (p *PNPU) TemporalLoad() float64 {
	var eus int
	for _, v := range p.temporal {
		eus += v.Config.TotalEUs()
	}
	return float64(eus) / float64(p.Core.MEs+p.Core.VEs)
}

// euUseAfter and memUseAfter support the greedy balance policy.
func (p *PNPU) euUse() float64 {
	total := p.Core.MEs + p.Core.VEs
	used := total - p.FreeMEs() - p.FreeVEs()
	return float64(used) / float64(total)
}

func (p *PNPU) memUse() float64 {
	total := len(p.sramSeg) + len(p.hbmSeg)
	used := total - p.FreeSRAMSegments() - p.FreeHBMSegments()
	return float64(used) / float64(total)
}

// Mapping records a vNPU's physical binding.
type Mapping struct {
	PNPU int
	Mode IsolationMode
	// Spatial mode: the dedicated engine indices.
	MEs []int
	VEs []int
	// Memory segments (both modes — memory is always hardware-isolated).
	SRAMSegments []int
	HBMSegments  []int
}

// TranslateHBM performs the §III-C segment address translation: virtual
// byte address → physical byte address, faulting on out-of-range access.
func (m *Mapping) TranslateHBM(vaddr int64) (int64, error) {
	seg := vaddr / HBMSegmentBytes
	off := vaddr % HBMSegmentBytes
	if vaddr < 0 || seg >= int64(len(m.HBMSegments)) {
		return 0, fmt.Errorf("core: HBM page fault at vaddr %#x (vNPU has %d segments)",
			vaddr, len(m.HBMSegments))
	}
	return int64(m.HBMSegments[seg])*HBMSegmentBytes + off, nil
}

// TranslateSRAM translates a virtual SRAM byte address.
func (m *Mapping) TranslateSRAM(vaddr int64) (int64, error) {
	seg := vaddr / SRAMSegmentBytes
	off := vaddr % SRAMSegmentBytes
	if vaddr < 0 || seg >= int64(len(m.SRAMSegments)) {
		return 0, fmt.Errorf("core: SRAM page fault at vaddr %#x (vNPU has %d segments)",
			vaddr, len(m.SRAMSegments))
	}
	return int64(m.SRAMSegments[seg])*SRAMSegmentBytes + off, nil
}

// PlacementPolicy selects how Map chooses among feasible cores for
// spatially isolated vNPUs. GreedyBalance is the paper's §III-C policy;
// the others exist for the cluster-level policy comparison.
type PlacementPolicy int

const (
	// GreedyBalance minimizes the change in |EU use − memory use| so
	// EU-heavy and memory-heavy vNPUs collocate (§III-C).
	GreedyBalance PlacementPolicy = iota
	// FirstFit takes the lowest-numbered feasible core.
	FirstFit
	// WorstFit takes the emptiest feasible core (most free EUs).
	WorstFit
)

func (p PlacementPolicy) String() string {
	switch p {
	case GreedyBalance:
		return "greedy-balance"
	case FirstFit:
		return "first-fit"
	case WorstFit:
		return "worst-fit"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// Mapper places vNPUs onto a fleet of physical cores.
type Mapper struct {
	pnpus []*PNPU
	// MaxOversubscription caps temporal load per core (in core-equivalents).
	MaxOversubscription float64
	// Policy selects the spatial placement heuristic (GreedyBalance
	// default).
	Policy PlacementPolicy
}

// NewMapper builds a mapper over n identical cores.
func NewMapper(n int, core arch.CoreConfig) (*Mapper, error) {
	if n < 1 {
		return nil, fmt.Errorf("core: need ≥1 pNPU, got %d", n)
	}
	m := &Mapper{MaxOversubscription: 4}
	for i := 0; i < n; i++ {
		p, err := NewPNPU(i, core)
		if err != nil {
			return nil, err
		}
		m.pnpus = append(m.pnpus, p)
	}
	return m, nil
}

// PNPUs exposes the fleet (read-only use).
func (m *Mapper) PNPUs() []*PNPU { return m.pnpus }

func segmentsNeeded(bytes int64, segSize int64) int {
	return int((bytes + segSize - 1) / segSize)
}

// Map binds a vNPU. Spatial mode requires dedicated free MEs/VEs and
// memory segments on a single core; the greedy policy picks the feasible
// core that, after placement, minimizes |EU use − memory use| — the
// paper's balance objective that avoids stranding EUs or memory.
// Temporal mode requires only memory and picks the least-loaded core,
// allowing oversubscription up to MaxOversubscription.
func (m *Mapper) Map(v *VNPU, mode IsolationMode) error {
	if v.State != StateCreated {
		return fmt.Errorf("core: vNPU %d is %s, cannot map", v.ID, v.State)
	}
	cfg := v.Config
	if cfg.NumChips != 1 || cfg.NumCoresPerChip != 1 {
		return fmt.Errorf("core: mapper handles single-core vNPUs; request multiple vNPU instances for multi-core jobs (§III-A)")
	}
	sramSegs := segmentsNeeded(cfg.SRAMSizePerCore, SRAMSegmentBytes)
	hbmSegs := segmentsNeeded(cfg.MemSizePerCore, HBMSegmentBytes)

	var best *PNPU
	var bestScore float64
	for _, p := range m.pnpus {
		if p.FreeSRAMSegments() < sramSegs || p.FreeHBMSegments() < hbmSegs {
			continue
		}
		switch mode {
		case SpatialIsolated:
			if p.FreeMEs() < cfg.NumMEsPerCore || p.FreeVEs() < cfg.NumVEsPerCore {
				continue
			}
			var score float64
			switch m.Policy {
			case FirstFit:
				if best == nil {
					best = p
				}
				continue
			case WorstFit:
				score = -float64(p.FreeMEs() + p.FreeVEs())
			default:
				// Greedy balance objective: minimize the change in the
				// core's |EU use − memory use| imbalance caused by this
				// placement. A negative delta means the vNPU complements
				// what is already there (many-EU/small-memory next to
				// few-EU/large-memory, the §III-C pairing).
				euBefore, memBefore := p.euUse(), p.memUse()
				euAfter := euBefore + float64(cfg.TotalEUs())/float64(p.Core.MEs+p.Core.VEs)
				memAfter := memBefore + float64(sramSegs+hbmSegs)/float64(len(p.sramSeg)+len(p.hbmSeg))
				score = math.Abs(euAfter-memAfter) - math.Abs(euBefore-memBefore)
			}
			if best == nil || score < bestScore {
				best, bestScore = p, score
			}
		case TemporalShared:
			load := p.TemporalLoad() + float64(cfg.TotalEUs())/float64(p.Core.MEs+p.Core.VEs)
			if load > m.MaxOversubscription {
				continue
			}
			if best == nil || load < bestScore {
				best, bestScore = p, load
			}
		}
	}
	if best == nil {
		return fmt.Errorf("core: no pNPU can host vNPU %d (%d MEs, %d VEs, %d+%d segments, %s)",
			v.ID, cfg.NumMEsPerCore, cfg.NumVEsPerCore, sramSegs, hbmSegs, mode)
	}

	mp := &Mapping{PNPU: best.ID, Mode: mode}
	if mode == SpatialIsolated {
		mp.MEs = claim(best.meOwner, cfg.NumMEsPerCore, v.ID)
		mp.VEs = claim(best.veOwner, cfg.NumVEsPerCore, v.ID)
	} else {
		best.temporal = append(best.temporal, v)
	}
	mp.SRAMSegments = claim(best.sramSeg, sramSegs, v.ID)
	mp.HBMSegments = claim(best.hbmSeg, hbmSegs, v.ID)
	v.Mapping = mp
	v.State = StateMapped
	return nil
}

func claim(owners []int, n, id int) []int {
	out := make([]int, 0, n)
	for i := range owners {
		if len(out) == n {
			break
		}
		if owners[i] == unowned {
			owners[i] = id
			out = append(out, i)
		}
	}
	return out
}

// Unmap releases a vNPU's physical resources (§III-B deallocation: the
// manager cleans the vNPU context and removes the DMA setup).
func (m *Mapper) Unmap(v *VNPU) error {
	if v.Mapping == nil {
		return fmt.Errorf("core: vNPU %d has no mapping", v.ID)
	}
	p := m.pnpus[v.Mapping.PNPU]
	release(p.meOwner, v.ID)
	release(p.veOwner, v.ID)
	release(p.sramSeg, v.ID)
	release(p.hbmSeg, v.ID)
	for i, t := range p.temporal {
		if t.ID == v.ID {
			p.temporal = append(p.temporal[:i], p.temporal[i+1:]...)
			break
		}
	}
	v.Mapping = nil
	v.State = StateFreed
	return nil
}

func release(owners []int, id int) {
	for i := range owners {
		if owners[i] == id {
			owners[i] = unowned
		}
	}
}
