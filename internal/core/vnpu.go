// Package core implements the paper's primary contribution: the vNPU
// abstraction (§III-A), the vNPU resource allocator built on the
// Amdahl-style utilization model of §III-B (Eq. 1–4), and the
// vNPU-to-pNPU mapper (§III-C) with segment-based memory isolation.
package core

import (
	"fmt"

	"neu10/internal/arch"
)

// VNPUConfig mirrors the paper's Fig. 10 struct vNPU_Config: the
// user-visible shape of a virtual NPU, following the hierarchy of a
// physical board.
type VNPUConfig struct {
	NumChips        int
	NumCoresPerChip int
	NumMEsPerCore   int
	NumVEsPerCore   int
	SRAMSizePerCore int64 // bytes
	MemSizePerCore  int64 // HBM bytes
}

// Validate checks the configuration is sane (positive everywhere).
func (c VNPUConfig) Validate() error {
	switch {
	case c.NumChips < 1:
		return fmt.Errorf("core: vNPU needs ≥1 chip, got %d", c.NumChips)
	case c.NumCoresPerChip < 1:
		return fmt.Errorf("core: vNPU needs ≥1 core/chip, got %d", c.NumCoresPerChip)
	case c.NumMEsPerCore < 1:
		// Paper §III-B: every vNPU has at least one ME and one VE.
		return fmt.Errorf("core: vNPU needs ≥1 ME/core, got %d", c.NumMEsPerCore)
	case c.NumVEsPerCore < 1:
		return fmt.Errorf("core: vNPU needs ≥1 VE/core, got %d", c.NumVEsPerCore)
	case c.SRAMSizePerCore <= 0:
		return fmt.Errorf("core: vNPU needs SRAM, got %d", c.SRAMSizePerCore)
	case c.MemSizePerCore <= 0:
		return fmt.Errorf("core: vNPU needs HBM, got %d", c.MemSizePerCore)
	}
	return nil
}

// TotalEUs returns execution units per core — the pay-as-you-go cost unit
// users actually reason about (§III-B).
func (c VNPUConfig) TotalEUs() int { return c.NumMEsPerCore + c.NumVEsPerCore }

// Preset vNPU sizes cloud providers would list (paper §III-A mentions
// small/medium/large defaults).
func PresetSmall(core arch.CoreConfig) VNPUConfig {
	return preset(core, 1, 1)
}
func PresetMedium(core arch.CoreConfig) VNPUConfig {
	return preset(core, core.MEs/2, core.VEs/2)
}
func PresetLarge(core arch.CoreConfig) VNPUConfig {
	return preset(core, core.MEs, core.VEs)
}

func preset(core arch.CoreConfig, mes, ves int) VNPUConfig {
	if mes < 1 {
		mes = 1
	}
	if ves < 1 {
		ves = 1
	}
	frac := int64(mes+ves) * 2
	total := int64(core.MEs + core.VEs)
	return VNPUConfig{
		NumChips:        1,
		NumCoresPerChip: 1,
		NumMEsPerCore:   mes,
		NumVEsPerCore:   ves,
		SRAMSizePerCore: core.SRAMBytes * frac / (2 * total),
		MemSizePerCore:  core.HBMBytes * frac / (2 * total),
	}
}

// State tracks a vNPU through its lifecycle (§III-A).
type State int

const (
	StateCreated State = iota // configured, not yet mapped to hardware
	StateMapped               // bound to pNPU resources, context installed
	StateRunning              // guest has issued work
	StateFreed                // deallocated; context destroyed
)

func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateMapped:
		return "mapped"
	case StateRunning:
		return "running"
	case StateFreed:
		return "freed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// VNPU is one virtual NPU instance.
type VNPU struct {
	ID     int
	Tenant string
	Config VNPUConfig
	State  State

	// Mapping holds the physical binding once mapped.
	Mapping *Mapping
}

// IsolationMode selects how a vNPU shares physical engines (§III-C).
type IsolationMode int

const (
	// SpatialIsolated maps the vNPU to dedicated EUs (hardware-isolated);
	// harvesting may still borrow idle cycles without ownership transfer.
	SpatialIsolated IsolationMode = iota
	// TemporalShared time-multiplexes EUs among vNPUs (software-isolated),
	// allowing oversubscription.
	TemporalShared
)

func (m IsolationMode) String() string {
	if m == SpatialIsolated {
		return "spatial-isolated"
	}
	return "temporal-shared"
}
