package core

import (
	"math"
	"testing"
	"testing/quick"

	"neu10/internal/arch"
	"neu10/internal/compiler"
	"neu10/internal/model"
)

func TestVNPUConfigValidate(t *testing.T) {
	good := VNPUConfig{1, 1, 2, 2, 64 << 20, 16 << 30}
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []VNPUConfig{
		{0, 1, 2, 2, 1, 1},
		{1, 0, 2, 2, 1, 1},
		{1, 1, 0, 2, 1, 1}, // every vNPU has ≥1 ME (§III-B)
		{1, 1, 2, 0, 1, 1},
		{1, 1, 2, 2, 0, 1},
		{1, 1, 2, 2, 1, 0},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d validated: %+v", i, c)
		}
	}
}

func TestPresets(t *testing.T) {
	tpu := arch.TPUv4Like()
	small, med, large := PresetSmall(tpu), PresetMedium(tpu), PresetLarge(tpu)
	for _, p := range []VNPUConfig{small, med, large} {
		if err := p.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	if !(small.TotalEUs() < med.TotalEUs() && med.TotalEUs() < large.TotalEUs()) {
		t.Fatalf("preset sizes not ordered: %d %d %d", small.TotalEUs(), med.TotalEUs(), large.TotalEUs())
	}
	if large.NumMEsPerCore != tpu.MEs || large.NumVEsPerCore != tpu.VEs {
		t.Fatal("large preset is not the whole core")
	}
}

// TestEq1KnownValues pins Eq. 1 against hand-computed values.
func TestEq1KnownValues(t *testing.T) {
	// m=1, v=0.5: ME-only 0.5, VE-only 0, concurrent 0.5.
	got := NormalizedTime(1, 0.5, 2, 1)
	want := 0.5/2 + 0.0/1 + 0.5/1
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("T(1,0.5,2,1) = %v, want %v", got, want)
	}
	// Equal engines, fully concurrent workload halves on 2+2.
	got = NormalizedTime(1, 1, 2, 2)
	if math.Abs(got-0.5) > 1e-12 {
		t.Fatalf("T(1,1,2,2) = %v, want 0.5", got)
	}
	// 1 ME + 1 VE is the unit baseline for any compute-bound profile.
	for _, mv := range [][2]float64{{1, 0.3}, {0.6, 0.6}, {0.2, 0.9}} {
		if mv[0]+mv[1] < 1 {
			continue
		}
		if d := math.Abs(NormalizedTime(mv[0], mv[1], 1, 1) - 1); d > 1e-12 {
			t.Fatalf("T(m=%v,v=%v,1,1) != 1 (off by %v)", mv[0], mv[1], d)
		}
	}
}

// TestEq4MatchesBruteForce verifies the paper's closed-form Eq. 4 against
// exhaustive search of Eq. 2 over fine-grained splits: the closed-form
// k must achieve utilization within a hair of the best real split.
func TestEq4MatchesBruteForce(t *testing.T) {
	f := func(mRaw, vRaw uint16) bool {
		m := float64(mRaw%1000)/1000*0.5 + 0.5 // m in [0.5, 1)
		v := 1 - m + float64(vRaw%1000)/1000*(1-(1-m))
		if v > 1 {
			v = 1
		}
		// Continuous check: evaluate U on a fine grid of k with nv=100.
		kStar := OptimalRatio(m, v)
		const nv = 100
		nmStar := int(math.Round(kStar * nv))
		if nmStar < 1 {
			nmStar = 1
		}
		uStar := Utilization(m, v, nmStar, nv)
		for nm := 1; nm <= 400; nm++ {
			if Utilization(m, v, nm, nv) > uStar+1e-3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestOptimalRatioCases(t *testing.T) {
	// m ≥ 0.5 and v ≥ 0.5 → equal split.
	if OptimalRatio(0.7, 0.8) != 1 {
		t.Fatal("balanced profile should give k=1")
	}
	// VE-heavy (m < 0.5): fewer MEs than VEs.
	if k := OptimalRatio(0.2, 0.9); k >= 1 {
		t.Fatalf("VE-heavy profile gave k=%v ≥ 1", k)
	}
	// ME-heavy (v < 0.5): more MEs than VEs.
	if k := OptimalRatio(0.95, 0.3); k <= 1 {
		t.Fatalf("ME-heavy profile gave k=%v ≤ 1", k)
	}
}

func TestChooseSplitMEHeavyVsVEHeavy(t *testing.T) {
	a, err := NewAllocator(arch.TPUv4Like())
	if err != nil {
		t.Fatal(err)
	}
	// BERT-like profile: heavily ME-active.
	nm, nv, err := a.ChooseSplit(0.97, 0.18, 8)
	if err != nil {
		t.Fatal(err)
	}
	if nm <= nv {
		t.Fatalf("ME-heavy split gave %d MEs / %d VEs", nm, nv)
	}
	// DLRM-like profile: heavily VE-active.
	nm, nv, err = a.ChooseSplit(0.02, 0.9, 8)
	if err != nil {
		t.Fatal(err)
	}
	if nm >= nv {
		t.Fatalf("VE-heavy split gave %d MEs / %d VEs", nm, nv)
	}
	if nm < 1 {
		t.Fatal("split dropped below 1 ME")
	}
}

func TestChooseSplitErrors(t *testing.T) {
	a, _ := NewAllocator(arch.TPUv4Like())
	if _, _, err := a.ChooseSplit(0.5, 0.5, 1); err == nil {
		t.Fatal("1-EU budget accepted")
	}
	if _, _, err := a.ChooseSplit(-0.1, 0.5, 4); err == nil {
		t.Fatal("negative m accepted")
	}
	if _, _, err := a.ChooseSplit(0.5, 1.2, 4); err == nil {
		t.Fatal("v > 1 accepted")
	}
}

// TestFig12SelectionWalk reproduces Fig. 12's qualitative result: for an
// ME-intensive model the selected configs hold more MEs than VEs at every
// budget; for a balanced model (EfficientNet) they stay near-equal; and
// selected speedup is monotonically non-decreasing in the budget.
func TestFig12SelectionWalk(t *testing.T) {
	tpu := arch.TPUv4Like()
	a, _ := NewAllocator(tpu)
	cm := compiler.NewCostModel(tpu)

	prof := func(name string) compiler.Profile {
		g, err := model.Build(name, 32)
		if err != nil {
			t.Fatal(err)
		}
		return cm.ProfileGraph(g)
	}

	bert := prof("BERT")
	prevSpeedup := 0.0
	for total := 2; total <= 16; total++ {
		nm, nv, err := a.ChooseSplit(bert.M, bert.V, total)
		if err != nil {
			t.Fatal(err)
		}
		if nm < nv {
			t.Errorf("BERT at %d EUs: selected %d MEs < %d VEs", total, nm, nv)
		}
		sp := 1 / NormalizedTime(bert.M, bert.V, nm, nv)
		if sp+1e-9 < prevSpeedup {
			t.Errorf("BERT speedup not monotone at %d EUs: %.3f < %.3f", total, sp, prevSpeedup)
		}
		prevSpeedup = sp
	}

	enetGraph, _ := model.Build("ENet", 32)
	enet := cm.ProfileGraph(enetGraph)
	for total := 2; total <= 16; total += 2 {
		nm, nv, err := a.ChooseSplit(enet.M, enet.V, total)
		if err != nil {
			t.Fatal(err)
		}
		if d := nm - nv; d < -2 || d > 2 {
			t.Errorf("ENet at %d EUs: selected (%d,%d), expected near-balanced", total, nm, nv)
		}
	}
}

func TestSweepMarksExactlyOneSelectionPerBudget(t *testing.T) {
	a, _ := NewAllocator(arch.TPUv4Like())
	points := a.Sweep(0.9, 0.4, 16)
	count := map[int]int{}
	for _, p := range points {
		if p.MEs+p.VEs != p.TotalEUs {
			t.Fatalf("sweep point %+v inconsistent", p)
		}
		if p.Selected {
			count[p.TotalEUs]++
		}
	}
	for total := 2; total <= 16; total++ {
		if count[total] != 1 {
			t.Fatalf("budget %d has %d selected configs", total, count[total])
		}
	}
}

func TestAllocateSizesMemory(t *testing.T) {
	tpu := arch.TPUv4Like()
	a, _ := NewAllocator(tpu)
	g, _ := model.Build("BERT", 8)
	p := compiler.NewCostModel(tpu).ProfileGraph(g)
	al, err := a.Allocate(p, g.HBMFootprint, 4)
	if err != nil {
		t.Fatal(err)
	}
	if al.MEs+al.VEs != 4 {
		t.Fatalf("allocation EUs %d+%d != 4", al.MEs, al.VEs)
	}
	if al.HBMBytes < g.HBMFootprint {
		t.Fatal("HBM allocation below footprint")
	}
	if al.SRAMBytes <= 0 || al.SRAMBytes > tpu.SRAMBytes {
		t.Fatalf("SRAM allocation %d out of range", al.SRAMBytes)
	}
	cfg := a.ConfigFor(al)
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestMapperSpatialIsolation(t *testing.T) {
	tpu := arch.TPUv4Like()
	mp, err := NewMapper(1, tpu)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id, mes, ves int) *VNPU {
		return &VNPU{ID: id, Config: VNPUConfig{1, 1, mes, ves, 32 << 20, 8 << 30}, State: StateCreated}
	}
	a, b := mk(0, 2, 2), mk(1, 2, 2)
	if err := mp.Map(a, SpatialIsolated); err != nil {
		t.Fatal(err)
	}
	if err := mp.Map(b, SpatialIsolated); err != nil {
		t.Fatal(err)
	}
	// Engines must not overlap.
	seen := map[int]bool{}
	for _, me := range append(append([]int{}, a.Mapping.MEs...), b.Mapping.MEs...) {
		if seen[me] {
			t.Fatalf("ME %d double-assigned", me)
		}
		seen[me] = true
	}
	// Third 2+2 vNPU cannot fit a 4-ME core.
	c := mk(2, 2, 2)
	if err := mp.Map(c, SpatialIsolated); err == nil {
		t.Fatal("overcommitted spatial mapping accepted")
	}
	// After freeing one, it fits.
	if err := mp.Unmap(a); err != nil {
		t.Fatal(err)
	}
	if a.State != StateFreed {
		t.Fatalf("state after unmap = %v", a.State)
	}
	if err := mp.Map(c, SpatialIsolated); err != nil {
		t.Fatalf("mapping after free failed: %v", err)
	}
}

func TestMapperTemporalOversubscription(t *testing.T) {
	tpu := arch.TPUv4Like()
	mp, _ := NewMapper(1, tpu)
	// Four 2+2 vNPUs on a 4+4 core: 2x oversubscribed, allowed.
	for i := 0; i < 4; i++ {
		v := &VNPU{ID: i, Config: VNPUConfig{1, 1, 2, 2, 8 << 20, 4 << 30}, State: StateCreated}
		if err := mp.Map(v, TemporalShared); err != nil {
			t.Fatalf("vNPU %d: %v", i, err)
		}
	}
	if got := mp.PNPUs()[0].TemporalLoad(); math.Abs(got-2.0) > 1e-9 {
		t.Fatalf("temporal load %v, want 2.0", got)
	}
	// Memory is never oversubscribed: segments are physical.
	big := &VNPU{ID: 99, Config: VNPUConfig{1, 1, 1, 1, 8 << 20, 60 << 30}, State: StateCreated}
	if err := mp.Map(big, TemporalShared); err == nil {
		t.Fatal("HBM oversubscription accepted")
	}
}

func TestMapperBalancesEUsAndMemory(t *testing.T) {
	// Paper §III-C: vNPUs with many EUs and small memory should collocate
	// with vNPUs with few EUs and large memory.
	tpu := arch.TPUv4Like()
	mp, _ := NewMapper(2, tpu)
	euHeavy := &VNPU{ID: 0, Config: VNPUConfig{1, 1, 3, 3, 8 << 20, 2 << 30}, State: StateCreated}
	if err := mp.Map(euHeavy, SpatialIsolated); err != nil {
		t.Fatal(err)
	}
	memHeavy := &VNPU{ID: 1, Config: VNPUConfig{1, 1, 1, 1, 8 << 20, 48 << 30}, State: StateCreated}
	if err := mp.Map(memHeavy, SpatialIsolated); err != nil {
		t.Fatal(err)
	}
	if euHeavy.Mapping.PNPU != memHeavy.Mapping.PNPU {
		t.Fatal("complementary vNPUs not collocated by the balance policy")
	}
}

func TestSegmentTranslation(t *testing.T) {
	m := &Mapping{
		SRAMSegments: []int{5, 9},
		HBMSegments:  []int{3, 0, 7},
	}
	// vaddr in segment 1 at offset 100.
	pa, err := m.TranslateHBM(HBMSegmentBytes + 100)
	if err != nil {
		t.Fatal(err)
	}
	if pa != 0*HBMSegmentBytes+100 {
		t.Fatalf("HBM translation %d", pa)
	}
	if _, err := m.TranslateHBM(3 * HBMSegmentBytes); err == nil {
		t.Fatal("out-of-range HBM access did not fault")
	}
	pa, err = m.TranslateSRAM(SRAMSegmentBytes * 2 / 2)
	if err != nil {
		t.Fatal(err)
	}
	if pa != 9*SRAMSegmentBytes {
		t.Fatalf("SRAM translation %d", pa)
	}
	if _, err := m.TranslateSRAM(-1); err == nil {
		t.Fatal("negative address did not fault")
	}
}

func TestSegmentTranslationProperty(t *testing.T) {
	m := &Mapping{HBMSegments: []int{2, 4, 6, 8}}
	f := func(raw uint32) bool {
		vaddr := int64(raw) % (4 * HBMSegmentBytes)
		pa, err := m.TranslateHBM(vaddr)
		if err != nil {
			return false
		}
		// Offset preserved, segment remapped, no cross-segment bleed.
		return pa%HBMSegmentBytes == vaddr%HBMSegmentBytes &&
			pa/HBMSegmentBytes == int64(m.HBMSegments[vaddr/HBMSegmentBytes])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestManagerLifecycle(t *testing.T) {
	tpu := arch.TPUv4Like()
	mgr, err := NewManager(2, tpu)
	if err != nil {
		t.Fatal(err)
	}
	cfg := VNPUConfig{1, 1, 2, 2, 32 << 20, 8 << 30}
	v, err := mgr.Create("tenant-a", cfg, SpatialIsolated)
	if err != nil {
		t.Fatal(err)
	}
	if v.State != StateMapped {
		t.Fatalf("state %v after create", v.State)
	}
	got, err := mgr.Get(v.ID)
	if err != nil || got.ID != v.ID {
		t.Fatalf("Get: %v", err)
	}
	// Reconfigure to a bigger shape.
	if err := mgr.Reconfigure(v.ID, VNPUConfig{1, 1, 3, 2, 32 << 20, 8 << 30}); err != nil {
		t.Fatal(err)
	}
	if v.Config.NumMEsPerCore != 3 {
		t.Fatal("reconfigure did not apply")
	}
	if err := mgr.Free(v.ID); err != nil {
		t.Fatal(err)
	}
	if mgr.Live() != 0 {
		t.Fatal("vNPU still live after free")
	}
	if _, err := mgr.Get(v.ID); err == nil {
		t.Fatal("freed vNPU still retrievable")
	}
}

func TestManagerRejectsOversizedVNPU(t *testing.T) {
	tpu := arch.TPUv4Like()
	mgr, _ := NewManager(1, tpu)
	cfg := VNPUConfig{1, 1, tpu.MEs + 1, 2, 32 << 20, 8 << 30}
	if _, err := mgr.Create("t", cfg, SpatialIsolated); err == nil {
		t.Fatal("vNPU bigger than pNPU accepted")
	}
}

func TestManagerReconfigureRollsBackOnFailure(t *testing.T) {
	tpu := arch.TPUv4Like()
	mgr, _ := NewManager(1, tpu)
	cfg := VNPUConfig{1, 1, 2, 2, 32 << 20, 8 << 30}
	v, err := mgr.Create("a", cfg, SpatialIsolated)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := mgr.Create("b", cfg, SpatialIsolated); err != nil {
		t.Fatal(err)
	}
	// Growing A to 3 MEs can't fit (B holds 2 of 4); must roll back.
	if err := mgr.Reconfigure(v.ID, VNPUConfig{1, 1, 3, 2, 32 << 20, 8 << 30}); err == nil {
		t.Fatal("impossible reconfigure succeeded")
	}
	if v.Config.NumMEsPerCore != 2 || v.State != StateMapped {
		t.Fatalf("rollback failed: %d MEs, state %v", v.Config.NumMEsPerCore, v.State)
	}
}
