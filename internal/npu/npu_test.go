package npu

import (
	"strings"
	"testing"

	"neu10/internal/isa"
	"neu10/internal/tensor"
)

func newTestCore(t *testing.T) *Core {
	t.Helper()
	cfg := DefaultConfig()
	cfg.SRAMWords = 1 << 18
	cfg.HBMWords = 1 << 18
	c, err := NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := good
	bad.MEs = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("0-ME config validated")
	}
	bad = good
	bad.VELanes = 64
	if err := bad.Validate(); err == nil {
		t.Fatal("mismatched lane config validated")
	}
}

func TestSystolicArrayMatchesReference(t *testing.T) {
	const k, n, rows = 96, 128, 8
	a := tensor.New(rows, k)
	b := tensor.New(k, n)
	for i := range a.Data {
		a.Data[i] = float32(i%17) - 8
	}
	for i := range b.Data {
		b.Data[i] = float32(i%13)/4 - 1.5
	}
	want := tensor.MatMul(a, b)

	s := NewSystolicArray(128)
	if err := s.LoadWeights(b.Data, k, n); err != nil {
		t.Fatal(err)
	}
	for r := 0; r < rows; r++ {
		if err := s.Push(a.Data[r*k : (r+1)*k]); err != nil {
			t.Fatal(err)
		}
	}
	if s.Pending() != rows {
		t.Fatalf("pending = %d, want %d", s.Pending(), rows)
	}
	got := tensor.New(rows, n)
	for r := 0; r < rows; r++ {
		row, err := s.Pop()
		if err != nil {
			t.Fatal(err)
		}
		copy(got.Data[r*n:], row)
	}
	if d := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("systolic result differs from reference by %v", d)
	}
}

func TestSystolicArrayErrors(t *testing.T) {
	s := NewSystolicArray(128)
	if err := s.Push(make([]float32, 8)); err == nil {
		t.Fatal("push with no weights accepted")
	}
	if _, err := s.Pop(); err == nil {
		t.Fatal("pop with no outputs accepted")
	}
	if err := s.LoadWeights(make([]float32, 300*300), 300, 300); err == nil {
		t.Fatal("oversized tile accepted")
	}
	if err := s.LoadWeights(make([]float32, 4), 2, 3); err == nil {
		t.Fatal("short weight buffer accepted")
	}
	if err := s.LoadWeights(make([]float32, 16), 4, 4); err != nil {
		t.Fatal(err)
	}
	if err := s.Push(make([]float32, 3)); err == nil {
		t.Fatal("wrong-length row accepted")
	}
}

func TestSystolicSaveRestore(t *testing.T) {
	s := NewSystolicArray(128)
	w := []float32{1, 2, 3, 4}
	if err := s.LoadWeights(w, 2, 2); err != nil {
		t.Fatal(err)
	}
	if err := s.Push([]float32{1, 1}); err != nil {
		t.Fatal(err)
	}
	st := s.Save()
	if s.Pending() != 0 {
		t.Fatal("save did not clear array")
	}
	if err := s.Push([]float32{1, 1}); err == nil {
		t.Fatal("push after save/clear accepted")
	}
	s.Restore(st)
	row, err := s.Pop()
	if err != nil {
		t.Fatal(err)
	}
	if row[0] != 4 || row[1] != 6 {
		t.Fatalf("restored output %v, want [4 6]", row)
	}
}

// buildMatMulReluNeu compiles (by hand) a fused MatMul+ReLU over
// A [rows×k] · B [k×128] into `nutops` ME µTOps sharing one snippet that
// uses uTop.index to find its row range — the paper's Fig. 8/13 shape.
// Layout (SRAM words): A at aBase, B at bBase, C at cBase.
func buildMatMulReluNeu(t *testing.T, rows, k, nutops int, aBase, bBase, cBase int32) *isa.NeuProgram {
	t.Helper()
	const n = isa.VectorLanes
	if rows%nutops != 0 {
		t.Fatalf("rows %d not divisible by %d µTOps", rows, nutops)
	}
	per := rows / nutops

	b := isa.NewBuilder(isa.Format{MESlots: 1, VESlots: 4})
	// r2 = µTOp index; r3 = rows-per-µTOp; r4 = first row of my range.
	b.Misc(isa.UTopIndex(2)).End()
	b.Misc(isa.SMovI(3, int32(per))).End()
	b.Misc(isa.Operation{Op: isa.OpSMul, Dst: 4, A: 2, B: 3}).End()
	// r5 = B base; latch weights.
	b.Misc(isa.SMovI(5, bBase)).End()
	b.ME(isa.MELoadW(5, k, n)).End()
	// r6 = A row pointer = aBase + r4*k ; r7 = C row pointer = cBase + r4*n.
	b.Misc(isa.SMovI(8, int32(k))).End()
	b.Misc(isa.Operation{Op: isa.OpSMul, Dst: 6, A: 4, B: 8}).End()
	b.Misc(isa.SAddI(6, 6, aBase)).End()
	b.Misc(isa.SMovI(9, int32(n))).End()
	b.Misc(isa.Operation{Op: isa.OpSMul, Dst: 7, A: 4, B: 9}).End()
	b.Misc(isa.SAddI(7, 7, cBase)).End()
	// Loop over my rows: r10 counts down from per.
	b.Misc(isa.SMovI(10, int32(per))).End()
	loopTop := b.PC()
	b.ME(isa.MEPush(6, k)).End()
	b.ME(isa.MEPop(0)).VE(isa.V1(isa.OpVRelu, 0, 0)).End()
	b.LS(isa.VStore(7, 0, 0)).End()
	b.Misc(isa.SAddI(6, 6, int32(k))).End()
	b.Misc(isa.SAddI(7, 7, int32(n))).End()
	b.Misc(isa.SAddI(10, 10, -1)).End()
	bPC := b.PC()
	b.Misc(isa.Branch(isa.OpBNE, 10, 0, int32(loopTop-bPC))).End()
	b.Misc(isa.UTopFinish()).End()
	code, err := b.Code()
	if err != nil {
		t.Fatal(err)
	}

	utops := make([]isa.UTop, nutops)
	mes := make([]int, nutops)
	for i := range utops {
		utops[i] = isa.UTop{Kind: isa.MEUTop, Start: 0}
		mes[i] = i
	}
	p := &isa.NeuProgram{
		VESlots: 4,
		MECode:  code,
		UTops:   utops,
		Groups:  []isa.Group{{ME: mes, VE: isa.NullUTop}},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func runMatMulRelu(t *testing.T, c *Core, meCount, nutops int) *tensor.Tensor {
	t.Helper()
	const rows, k, n = 16, 64, isa.VectorLanes
	a := tensor.New(rows, k)
	bm := tensor.New(k, n)
	for i := range a.Data {
		a.Data[i] = float32(i%23) - 11
	}
	for i := range bm.Data {
		bm.Data[i] = float32(i%19)/8 - 1
	}
	const aBase, bBase, cBase = 0, 4096, 32768
	copy(c.SRAM[aBase:], a.Data)
	copy(c.SRAM[bBase:], bm.Data)

	p := buildMatMulReluNeu(t, rows, k, nutops, aBase, bBase, cBase)
	mes := make([]int, meCount)
	for i := range mes {
		mes[i] = i
	}
	st, err := c.RunNeu(p, mes)
	if err != nil {
		t.Fatal(err)
	}
	if st.UTopsRun != uint64(nutops) || st.GroupsRun != 1 {
		t.Fatalf("stats %+v, want %d µTOps / 1 group", st, nutops)
	}

	got := tensor.New(rows, n)
	copy(got.Data, c.SRAM[cBase:cBase+rows*n])
	return got
}

func TestNeuMatMulReluMatchesReference(t *testing.T) {
	const rows, k, n = 16, 64, isa.VectorLanes
	a := tensor.New(rows, k)
	bm := tensor.New(k, n)
	for i := range a.Data {
		a.Data[i] = float32(i%23) - 11
	}
	for i := range bm.Data {
		bm.Data[i] = float32(i%19)/8 - 1
	}
	want := tensor.ReLU(tensor.MatMul(a, bm))

	c := newTestCore(t)
	got := runMatMulRelu(t, c, 4, 4)
	if d := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("NeuISA matmul differs from reference by %v", d)
	}
}

// The defining property of NeuISA: the same binary runs on any number of
// MEs without recompilation and produces identical results.
func TestNeuProgramRunsOnAnyMECount(t *testing.T) {
	ref := runMatMulRelu(t, newTestCore(t), 4, 4)
	for _, meCount := range []int{1, 2, 3} {
		got := runMatMulRelu(t, newTestCore(t), meCount, 4)
		if d := tensor.MaxAbsDiff(ref, got); d != 0 {
			t.Fatalf("result on %d MEs differs by %v", meCount, d)
		}
	}
}

func TestNeuNextGroupLoop(t *testing.T) {
	// Paper Fig. 15: a loop across µTOp groups driven by a counter in
	// SRAM. Groups 0 and 1 do work; group 2 increments the counter and
	// redirects to group 0 until the counter reaches 4.
	const workA, workB, counter = 100, 101, 102
	b := isa.NewBuilder(isa.Format{MESlots: 0, VESlots: 4})

	snippetAcc := func(addr int32, inc int32) int {
		start := b.PC()
		b.Misc(isa.Operation{Op: isa.OpSLoad, Dst: 2, A: 0, Imm: addr}).End()
		b.Misc(isa.SAddI(2, 2, inc)).End()
		b.Misc(isa.Operation{Op: isa.OpSStore, A: 0, B: 2, Imm: addr}).End()
		b.Misc(isa.UTopFinish()).End()
		return start
	}
	sA := snippetAcc(workA, 1)
	sB := snippetAcc(workB, 2)

	// Group 2 snippet (paper Fig. 15 shape: one finish at the end, the
	// conditional nextGroup branched over when the loop is done):
	// counter++; if counter >= 4 skip the nextGroup; finish.
	sC := b.PC()
	b.Misc(isa.Operation{Op: isa.OpSLoad, Dst: 2, A: 0, Imm: counter}).End()
	b.Misc(isa.SAddI(2, 2, 1)).End()
	b.Misc(isa.Operation{Op: isa.OpSStore, A: 0, B: 2, Imm: counter}).End()
	b.Misc(isa.SMovI(3, 3)).End()
	b.Misc(isa.Branch(isa.OpBLT, 3, 2, 2)).End() // counter > 3: skip nextGroup
	b.Misc(isa.UTopNextGroup(0)).End()           // %r0 == 0: loop to group 0
	b.Misc(isa.UTopFinish()).End()
	code, err := b.Code()
	if err != nil {
		t.Fatal(err)
	}

	p := &isa.NeuProgram{
		VESlots: 4,
		VECode:  code,
		UTops: []isa.UTop{
			{Kind: isa.VEUTop, Start: sA},
			{Kind: isa.VEUTop, Start: sB},
			{Kind: isa.VEUTop, Start: sC},
		},
		Groups: []isa.Group{{VE: 0}, {VE: 1}, {VE: 2}},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}

	c := newTestCore(t)
	st, err := c.RunNeu(p, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.SRAM[workA]; got != 4 {
		t.Errorf("workA = %v, want 4 iterations", got)
	}
	if got := c.SRAM[workB]; got != 8 {
		t.Errorf("workB = %v, want 8", got)
	}
	if got := c.SRAM[counter]; got != 4 {
		t.Errorf("counter = %v, want 4", got)
	}
	if st.GroupsRun != 12 {
		t.Errorf("groups run = %d, want 12 (3 groups × 4 iterations)", st.GroupsRun)
	}
}

func TestNeuConflictingNextGroupErrors(t *testing.T) {
	b := isa.NewBuilder(isa.Format{MESlots: 0, VESlots: 1})
	s0 := b.PC()
	b.Misc(isa.SMovI(2, 0)).End()
	b.Misc(isa.UTopNextGroup(2)).End()
	b.Misc(isa.UTopFinish()).End()
	s1 := b.PC()
	b.Misc(isa.SMovI(2, 1)).End()
	b.Misc(isa.UTopNextGroup(2)).End()
	b.Misc(isa.UTopFinish()).End()
	code, err := b.Code()
	if err != nil {
		t.Fatal(err)
	}
	// Two VE µTOps can't share a group, so wrap one as an "ME" µTOp — but
	// ME cells must hold ME µTOps. Instead use two groups' worth of ME
	// µTOps: rebuild in ME format.
	mb := isa.NewBuilder(isa.Format{MESlots: 1, VESlots: 1})
	m0 := mb.PC()
	mb.Misc(isa.SMovI(2, 0)).End()
	mb.Misc(isa.UTopNextGroup(2)).End()
	mb.Misc(isa.UTopFinish()).End()
	m1 := mb.PC()
	mb.Misc(isa.SMovI(2, 1)).End()
	mb.Misc(isa.UTopNextGroup(2)).End()
	mb.Misc(isa.UTopFinish()).End()
	meCode, err := mb.Code()
	if err != nil {
		t.Fatal(err)
	}
	_ = code
	_, _ = s0, s1
	p := &isa.NeuProgram{
		VESlots: 1,
		MECode:  meCode,
		UTops: []isa.UTop{
			{Kind: isa.MEUTop, Start: m0},
			{Kind: isa.MEUTop, Start: m1},
		},
		Groups: []isa.Group{{ME: []int{0, 1}, VE: isa.NullUTop}},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	c := newTestCore(t)
	if _, err := c.RunNeu(p, []int{0, 1}); err == nil {
		t.Fatal("conflicting uTop.nextGroup did not error")
	} else if !strings.Contains(err.Error(), "disagree") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestVLIWMatMulAndStaticCoupling(t *testing.T) {
	// A 2-ME VLIW program: each ME multiplies its own 2×k tile.
	const k, n = 32, isa.VectorLanes
	c := newTestCore(t)
	a := tensor.New(4, k) // rows 0-1 → ME0, rows 2-3 → ME1
	bm := tensor.New(k, n)
	for i := range a.Data {
		a.Data[i] = float32(i % 7)
	}
	for i := range bm.Data {
		bm.Data[i] = float32(i%5) - 2
	}
	const aBase, bBase, cBase = 0, 2048, 16384
	copy(c.SRAM[aBase:], a.Data)
	copy(c.SRAM[bBase:], bm.Data)

	b := isa.NewBuilder(isa.Format{MESlots: 2, VESlots: 4})
	b.Misc(isa.SMovI(5, bBase)).End()
	b.ME(isa.MELoadW(5, k, n)).ME(isa.MELoadW(5, k, n)).End()
	b.Misc(isa.SMovI(6, aBase)).End()     // ME0 row ptr
	b.Misc(isa.SMovI(7, aBase+2*k)).End() // ME1 row ptr
	b.Misc(isa.SMovI(8, cBase)).End()     // ME0 out ptr
	b.Misc(isa.SMovI(9, cBase+2*n)).End() // ME1 out ptr
	for r := 0; r < 2; r++ {
		b.ME(isa.MEPush(6, k)).ME(isa.MEPush(7, k)).End()
		b.ME(isa.MEPop(0)).ME(isa.MEPop(1)).End()
		b.LS(isa.VStore(8, 0, int32(r*n))).LS(isa.VStore(9, 1, int32(r*n))).End()
		b.Misc(isa.SAddI(6, 6, k)).End()
		b.Misc(isa.SAddI(7, 7, k)).End()
	}
	b.Misc(isa.Halt()).End()
	code, err := b.Code()
	if err != nil {
		t.Fatal(err)
	}
	p := &isa.Program{Format: isa.Format{MESlots: 2, VESlots: 4}, Code: code}

	if _, err := c.RunVLIW(p); err != nil {
		t.Fatal(err)
	}
	want := tensor.MatMul(a, bm)
	got := tensor.New(4, n)
	copy(got.Data, c.SRAM[cBase:cBase+4*n])
	if d := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("VLIW matmul differs by %v", d)
	}

	// Static coupling (paper Fig. 9): the same binary refuses to run on a
	// core with fewer MEs than its format demands.
	small := DefaultConfig()
	small.MEs = 1
	small.SRAMWords = 1 << 18
	small.HBMWords = 1 << 12
	sc, err := NewCore(small)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sc.RunVLIW(p); err == nil {
		t.Fatal("2-ME VLIW binary ran on 1-ME core")
	}
}

func TestDMARoundTrip(t *testing.T) {
	c := newTestCore(t)
	src := make([]float32, 512)
	for i := range src {
		src[i] = float32(i) * 1.5
	}
	if err := c.WriteHBM(1000, src); err != nil {
		t.Fatal(err)
	}
	b := isa.NewBuilder(isa.Format{MESlots: 1, VESlots: 1})
	b.Misc(isa.SMovI(2, 64)).End()   // SRAM dst
	b.Misc(isa.SMovI(3, 1000)).End() // HBM src
	b.Misc(isa.DMALoad(2, 3, 512)).End()
	b.Misc(isa.SMovI(4, 5000)).End() // HBM dst
	b.Misc(isa.DMAStore(4, 2, 512)).End()
	b.Misc(isa.Halt()).End()
	code, err := b.Code()
	if err != nil {
		t.Fatal(err)
	}
	p := &isa.Program{Format: isa.Format{MESlots: 1, VESlots: 1}, Code: code}
	if _, err := c.RunVLIW(p); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadHBM(5000, 512)
	if err != nil {
		t.Fatal(err)
	}
	for i := range src {
		if got[i] != src[i] {
			t.Fatalf("DMA roundtrip [%d] = %v, want %v", i, got[i], src[i])
		}
	}
	if c.DMACycle == 0 {
		t.Fatal("DMA cycles not accounted")
	}
}

func TestFaultOnOutOfRangeAccess(t *testing.T) {
	c := newTestCore(t)
	b := isa.NewBuilder(isa.Format{MESlots: 1, VESlots: 1})
	b.Misc(isa.SMovI(2, int32(len(c.SRAM)))).End()
	b.LS(isa.VLoad(0, 2, 0)).End()
	b.Misc(isa.Halt()).End()
	code, err := b.Code()
	if err != nil {
		t.Fatal(err)
	}
	p := &isa.Program{Format: isa.Format{MESlots: 1, VESlots: 1}, Code: code}
	_, err = c.RunVLIW(p)
	if err == nil {
		t.Fatal("out-of-range load did not fault")
	}
	var f *Fault
	if !errorsAs(err, &f) {
		t.Fatalf("error %T is not a Fault: %v", err, err)
	}
}

func errorsAs(err error, target **Fault) bool {
	f, ok := err.(*Fault)
	if ok {
		*target = f
	}
	return ok
}

func TestScalarRegZeroHardwired(t *testing.T) {
	c := newTestCore(t)
	b := isa.NewBuilder(isa.Format{MESlots: 1, VESlots: 1})
	b.Misc(isa.SMovI(0, 42)).End() // write to %r0 must be discarded
	b.Misc(isa.Operation{Op: isa.OpSStore, A: 0, B: 0, Imm: 10}).End()
	b.Misc(isa.Halt()).End()
	code, err := b.Code()
	if err != nil {
		t.Fatal(err)
	}
	p := &isa.Program{Format: isa.Format{MESlots: 1, VESlots: 1}, Code: code}
	if _, err := c.RunVLIW(p); err != nil {
		t.Fatal(err)
	}
	if c.SRAM[10] != 0 {
		t.Fatalf("SRAM[10] = %v; %%r0 is writable", c.SRAM[10])
	}
}

// TestFig6VEUnderutilization reproduces the paper's Fig. 6 narrative: in
// an ME-intensive fused operator each pop costs 8 cycles while the ReLU
// costs 1, so VE utilization is far below ME utilization.
func TestFig6VEUnderutilization(t *testing.T) {
	c := newTestCore(t)
	got := runMatMulRelu(t, c, 4, 4)
	_ = got
	meU, veU := c.MEUtilization(), c.VEUtilization()
	if meU <= veU {
		t.Fatalf("ME util %.3f not above VE util %.3f for ME-intensive op", meU, veU)
	}
	if veU > 0.25 {
		t.Fatalf("VE util %.3f unexpectedly high (pop=8 cycles, relu=1)", veU)
	}
}

func TestInfiniteLoopGuard(t *testing.T) {
	cfg := DefaultConfig()
	cfg.SRAMWords = 2048
	cfg.HBMWords = 2048
	c, err := NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := isa.NewBuilder(isa.Format{MESlots: 1, VESlots: 1})
	b.Misc(isa.Branch(isa.OpBEQ, 0, 0, 0)).End() // jump to self forever
	b.Misc(isa.Halt()).End()
	code, err := b.Code()
	if err != nil {
		t.Fatal(err)
	}
	p := &isa.Program{Format: isa.Format{MESlots: 1, VESlots: 1}, Code: code}
	if _, err := c.RunVLIW(p); err == nil {
		t.Fatal("infinite loop did not trip the guard")
	}
}
