// Package npu implements a functional simulator of an NPU core in the
// style of a Google TPU (paper §II-A, Fig. 1): matrix engines built from
// weight-stationary systolic arrays, vector engines operating on 128-lane
// vectors, an on-chip SRAM, and DMA to off-chip HBM.
//
// The simulator executes real encoded programs from internal/isa — both
// traditional VLIW binaries and NeuISA binaries — instruction by
// instruction, and is validated against the reference operators in
// internal/tensor. It also keeps simple per-engine cycle counters, which
// is enough to demonstrate, e.g., the VE idleness of Fig. 6; the
// *performance* experiments use internal/perfsim instead.
package npu

import (
	"fmt"

	"neu10/internal/isa"
)

// Config describes one NPU core. Defaults follow the paper's Table II.
type Config struct {
	MEs          int // matrix engines
	VEs          int // vector engines
	SystolicDim  int // ME is SystolicDim × SystolicDim (128 in TPUv4)
	VELanes      int // lanes per VE operation (128)
	SRAMWords    int // on-chip SRAM size in float32 words
	HBMWords     int // off-chip HBM size in float32 words (per core slice)
	PopCycles    int // cycles per me.pop (8 in the paper's Fig. 6)
	VEOpCycles   int // cycles per VE operation (1)
	PushCycles   int // cycles per me.push
	LoadWPerRow  int // cycles per weight row latched
	DMAWordsPerC int // DMA throughput, words per cycle
}

// DefaultConfig returns a functional-test-sized core: real systolic and
// lane dimensions, but modest memories so tests stay fast.
func DefaultConfig() Config {
	return Config{
		MEs:          4,
		VEs:          4,
		SystolicDim:  128,
		VELanes:      isa.VectorLanes,
		SRAMWords:    1 << 22, // 16 MB of floats
		HBMWords:     1 << 24, // 64 MB of floats
		PopCycles:    8,
		VEOpCycles:   1,
		PushCycles:   1,
		LoadWPerRow:  1,
		DMAWordsPerC: 64,
	}
}

// Validate checks the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.MEs < 1 || c.MEs > 16:
		return fmt.Errorf("npu: MEs %d out of range", c.MEs)
	case c.VEs < 1 || c.VEs > 16:
		return fmt.Errorf("npu: VEs %d out of range", c.VEs)
	case c.SystolicDim < 1 || c.SystolicDim > 1024:
		return fmt.Errorf("npu: systolic dim %d out of range", c.SystolicDim)
	case c.VELanes != isa.VectorLanes:
		return fmt.Errorf("npu: VE lanes %d must equal ISA vector lanes %d", c.VELanes, isa.VectorLanes)
	case c.SRAMWords < 1024:
		return fmt.Errorf("npu: SRAM %d words too small", c.SRAMWords)
	case c.HBMWords < 1024:
		return fmt.Errorf("npu: HBM %d words too small", c.HBMWords)
	}
	return nil
}

// Fault is raised (as an error, not a panic) when a program performs an
// illegal access — the functional analogue of the paper's page fault on
// invalid segment accesses.
type Fault struct {
	PC     int
	Reason string
}

func (f *Fault) Error() string { return fmt.Sprintf("npu: fault at pc %d: %s", f.PC, f.Reason) }

// Core is one NPU core: SRAM, MEs, and cycle accounting. HBM is owned by
// the Device so multiple cores can share it; a single-core test can use
// NewCore which bundles a private HBM.
type Core struct {
	Cfg  Config
	SRAM []float32
	HBM  []float32
	MEs  []*SystolicArray

	// Cycle accounting, per engine class. These are functional-simulator
	// cycles (each instruction advances time by the longest busy slot),
	// good enough for utilization demonstrations.
	Cycles   uint64
	MEBusy   []uint64
	VEBusy   []uint64
	DMACycle uint64

	// Interpreter scratch state (see exec_decoded.go): the register
	// file and ME-binding slice are reused across runs and µTOps so the
	// execution loop performs no per-µTOp allocation.
	execRF  *regFile
	execMEs []int
	execOne [1]int
}

// NewCore builds a core with a private HBM buffer.
func NewCore(cfg Config) (*Core, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	c := &Core{
		Cfg:    cfg,
		SRAM:   make([]float32, cfg.SRAMWords),
		HBM:    make([]float32, cfg.HBMWords),
		MEs:    make([]*SystolicArray, cfg.MEs),
		MEBusy: make([]uint64, cfg.MEs),
		VEBusy: make([]uint64, cfg.VEs),
	}
	for i := range c.MEs {
		c.MEs[i] = NewSystolicArray(cfg.SystolicDim)
	}
	return c, nil
}

// ResetCounters zeroes the cycle accounting (memories are untouched).
func (c *Core) ResetCounters() {
	c.Cycles, c.DMACycle = 0, 0
	for i := range c.MEBusy {
		c.MEBusy[i] = 0
	}
	for i := range c.VEBusy {
		c.VEBusy[i] = 0
	}
}

// MEUtilization returns the mean busy fraction of the matrix engines.
func (c *Core) MEUtilization() float64 { return meanBusy(c.MEBusy, c.Cycles) }

// VEUtilization returns the mean busy fraction of the vector engines.
func (c *Core) VEUtilization() float64 { return meanBusy(c.VEBusy, c.Cycles) }

func meanBusy(busy []uint64, total uint64) float64 {
	if total == 0 || len(busy) == 0 {
		return 0
	}
	var sum uint64
	for _, b := range busy {
		sum += b
	}
	return float64(sum) / (float64(total) * float64(len(busy)))
}

// WriteHBM copies data into HBM at a word address.
func (c *Core) WriteHBM(addr int, data []float32) error {
	if addr < 0 || addr+len(data) > len(c.HBM) {
		return fmt.Errorf("npu: HBM write [%d,%d) out of range", addr, addr+len(data))
	}
	copy(c.HBM[addr:], data)
	return nil
}

// ReadHBM copies n words out of HBM at a word address.
func (c *Core) ReadHBM(addr, n int) ([]float32, error) {
	if addr < 0 || addr+n > len(c.HBM) {
		return nil, fmt.Errorf("npu: HBM read [%d,%d) out of range", addr, addr+n)
	}
	out := make([]float32, n)
	copy(out, c.HBM[addr:])
	return out, nil
}
