package npu

import "fmt"

// SystolicArray is the functional model of one matrix engine: a
// weight-stationary dim×dim grid. A weight tile W of shape K×N
// (K, N ≤ dim) is latched by loadw; each push streams one activation row
// x (length K) through the array; the corresponding output row y = x·W
// (length N) becomes available to pop in FIFO order.
//
// The model is functionally exact for tiled matrix multiplication: the
// dot products are accumulated in k-major order, the same order the
// reference tensor.MatMul uses, so results match bit-for-bit.
type SystolicArray struct {
	Dim int

	k, n    int       // latched tile shape
	weights []float32 // K×N row-major
	outputs [][]float32
	outHead int // FIFO head index into outputs (capacity is reused)

	// arena backs output rows in large chunks: rows are carved out
	// monotonically and never rewritten, so a popped row stays valid for
	// as long as the caller holds it while Push itself stays off the
	// allocator on all but the chunk-boundary iterations.
	arena []float32

	// Preemption bookkeeping: µTOp context switches save/restore the
	// latched weights and in-flight outputs (the paper charges 256 cycles
	// for this: 128 to pop partial sums + 128 to pop weights).
}

// NewSystolicArray builds an idle array.
func NewSystolicArray(dim int) *SystolicArray { return &SystolicArray{Dim: dim} }

// LoadWeights latches a K×N tile read from src (row-major, len K*N).
func (s *SystolicArray) LoadWeights(src []float32, k, n int) error {
	if k < 1 || k > s.Dim || n < 1 || n > s.Dim {
		return fmt.Errorf("npu: weight tile %dx%d exceeds systolic dim %d", k, n, s.Dim)
	}
	if len(src) < k*n {
		return fmt.Errorf("npu: weight tile needs %d words, have %d", k*n, len(src))
	}
	s.k, s.n = k, n
	s.weights = append(s.weights[:0], src[:k*n]...)
	return nil
}

// Push streams activation row x (length K) through the array, producing
// one pending output row. The accumulation visits p = 0..K-1 for every
// output element exactly as the straightforward column walk does — only
// the memory access pattern changes (weights are streamed row-major),
// so results stay bit-identical while the inner loop stops striding the
// cache.
func (s *SystolicArray) Push(x []float32) error {
	if s.weights == nil {
		return fmt.Errorf("npu: push with no weights latched")
	}
	if len(x) != s.k {
		return fmt.Errorf("npu: pushed row length %d, tile K=%d", len(x), s.k)
	}
	y := s.allocRow(s.n)
	for j := range y {
		y[j] = 0
	}
	for p := 0; p < s.k; p++ {
		xv := x[p]
		wrow := s.weights[p*s.n : (p+1)*s.n]
		for j, w := range wrow {
			y[j] += xv * w
		}
	}
	if s.outHead > 0 && len(s.outputs) == cap(s.outputs) {
		n := copy(s.outputs, s.outputs[s.outHead:])
		for i := n; i < len(s.outputs); i++ {
			s.outputs[i] = nil
		}
		s.outputs = s.outputs[:n]
		s.outHead = 0
	}
	s.outputs = append(s.outputs, y)
	return nil
}

// allocRow carves an n-word row out of the arena, starting a fresh
// chunk when the current one is exhausted.
func (s *SystolicArray) allocRow(n int) []float32 {
	if len(s.arena)+n > cap(s.arena) {
		chunk := 1 << 14
		if n > chunk {
			chunk = n
		}
		s.arena = make([]float32, 0, chunk)
	}
	off := len(s.arena)
	s.arena = s.arena[:off+n]
	return s.arena[off : off+n : off+n]
}

// Pop removes and returns the oldest pending output row. The row
// remains owned by the caller (it is never overwritten by later
// pushes).
func (s *SystolicArray) Pop() ([]float32, error) {
	if s.outHead == len(s.outputs) {
		return nil, fmt.Errorf("npu: pop with no pending outputs")
	}
	y := s.outputs[s.outHead]
	s.outputs[s.outHead] = nil
	s.outHead++
	if s.outHead == len(s.outputs) {
		s.outputs = s.outputs[:0]
		s.outHead = 0
	}
	return y, nil
}

// Pending reports the number of un-popped output rows.
func (s *SystolicArray) Pending() int { return len(s.outputs) - s.outHead }

// TileShape returns the latched tile's K and N (0,0 when idle).
func (s *SystolicArray) TileShape() (k, n int) { return s.k, s.n }

// SavedState is a snapshot of the array for µTOp preemption.
type SavedState struct {
	K, N    int
	Weights []float32
	Outputs [][]float32
}

// Save snapshots the array state (for a context switch) and clears it.
func (s *SystolicArray) Save() SavedState {
	st := SavedState{K: s.k, N: s.n, Weights: s.weights, Outputs: s.outputs[s.outHead:]}
	s.k, s.n, s.weights, s.outputs, s.outHead = 0, 0, nil, nil, 0
	return st
}

// Restore reinstates a saved snapshot.
func (s *SystolicArray) Restore(st SavedState) {
	s.k, s.n, s.weights, s.outputs, s.outHead = st.K, st.N, st.Weights, st.Outputs, 0
}
