package npu

import "fmt"

// SystolicArray is the functional model of one matrix engine: a
// weight-stationary dim×dim grid. A weight tile W of shape K×N
// (K, N ≤ dim) is latched by loadw; each push streams one activation row
// x (length K) through the array; the corresponding output row y = x·W
// (length N) becomes available to pop in FIFO order.
//
// The model is functionally exact for tiled matrix multiplication: the
// dot products are accumulated in k-major order, the same order the
// reference tensor.MatMul uses, so results match bit-for-bit.
type SystolicArray struct {
	Dim int

	k, n    int       // latched tile shape
	weights []float32 // K×N row-major
	outputs [][]float32

	// Preemption bookkeeping: µTOp context switches save/restore the
	// latched weights and in-flight outputs (the paper charges 256 cycles
	// for this: 128 to pop partial sums + 128 to pop weights).
}

// NewSystolicArray builds an idle array.
func NewSystolicArray(dim int) *SystolicArray { return &SystolicArray{Dim: dim} }

// LoadWeights latches a K×N tile read from src (row-major, len K*N).
func (s *SystolicArray) LoadWeights(src []float32, k, n int) error {
	if k < 1 || k > s.Dim || n < 1 || n > s.Dim {
		return fmt.Errorf("npu: weight tile %dx%d exceeds systolic dim %d", k, n, s.Dim)
	}
	if len(src) < k*n {
		return fmt.Errorf("npu: weight tile needs %d words, have %d", k*n, len(src))
	}
	s.k, s.n = k, n
	s.weights = append(s.weights[:0], src[:k*n]...)
	return nil
}

// Push streams activation row x (length K) through the array, producing
// one pending output row.
func (s *SystolicArray) Push(x []float32) error {
	if s.weights == nil {
		return fmt.Errorf("npu: push with no weights latched")
	}
	if len(x) != s.k {
		return fmt.Errorf("npu: pushed row length %d, tile K=%d", len(x), s.k)
	}
	y := make([]float32, s.n)
	for j := 0; j < s.n; j++ {
		var sum float32
		for p := 0; p < s.k; p++ {
			sum += x[p] * s.weights[p*s.n+j]
		}
		y[j] = sum
	}
	s.outputs = append(s.outputs, y)
	return nil
}

// Pop removes and returns the oldest pending output row.
func (s *SystolicArray) Pop() ([]float32, error) {
	if len(s.outputs) == 0 {
		return nil, fmt.Errorf("npu: pop with no pending outputs")
	}
	y := s.outputs[0]
	s.outputs = s.outputs[1:]
	return y, nil
}

// Pending reports the number of un-popped output rows.
func (s *SystolicArray) Pending() int { return len(s.outputs) }

// TileShape returns the latched tile's K and N (0,0 when idle).
func (s *SystolicArray) TileShape() (k, n int) { return s.k, s.n }

// SavedState is a snapshot of the array for µTOp preemption.
type SavedState struct {
	K, N    int
	Weights []float32
	Outputs [][]float32
}

// Save snapshots the array state (for a context switch) and clears it.
func (s *SystolicArray) Save() SavedState {
	st := SavedState{K: s.k, N: s.n, Weights: s.weights, Outputs: s.outputs}
	s.k, s.n, s.weights, s.outputs = 0, 0, nil, nil
	return st
}

// Restore reinstates a saved snapshot.
func (s *SystolicArray) Restore(st SavedState) {
	s.k, s.n, s.weights, s.outputs = st.K, st.N, st.Weights, st.Outputs
}
