package npu

import (
	"fmt"
	"math"
	"testing"

	"neu10/internal/isa"
)

// Golden regression tests for the predecoded interpreter: the decoded
// fast path (stepDecoded) must produce exactly the state the reference
// slot-walking interpreter (step) produces — same statistics, same
// cycle accounting, same memories, bit for bit.

// runVLIWReference is the pre-decode execution loop, kept verbatim so
// the fast path has a fixed semantic anchor.
func runVLIWReference(c *Core, p *isa.Program) (RunStats, error) {
	var st RunStats
	if err := p.Validate(); err != nil {
		return st, err
	}
	if p.Format.MESlots > c.Cfg.MEs {
		return st, fmt.Errorf("npu: program compiled for %d MEs, core has %d", p.Format.MESlots, c.Cfg.MEs)
	}
	mes := make([]int, p.Format.MESlots)
	for i := range mes {
		mes[i] = i
	}
	rf := &regFile{}
	env := &execEnv{mes: mes, nextGroup: -1}
	start := c.Cycles
	pc := 0
	for !env.halted {
		if pc < 0 || pc >= len(p.Code) {
			return st, &Fault{PC: pc, Reason: "pc out of range"}
		}
		d, err := c.step(&p.Code[pc], rf, env, pc)
		if err != nil {
			return st, err
		}
		pc += d
		st.Instructions++
		if st.Instructions > maxInstructions {
			return st, fmt.Errorf("npu: VLIW program exceeded %d instructions", maxInstructions)
		}
	}
	st.Cycles = c.Cycles - start
	return st, nil
}

// runNeuReference is the pre-decode NeuISA execution loop.
func runNeuReference(c *Core, p *isa.NeuProgram, mes []int) (NeuRunStats, error) {
	var st NeuRunStats
	if err := p.Validate(); err != nil {
		return st, err
	}
	start := c.Cycles
	group := 0
	for group >= 0 && group < len(p.Groups) {
		st.GroupsRun++
		utops := p.GroupUTops(group)
		next := -1
		nextSet := false
		for idx, ui := range utops {
			u := p.UTops[ui]
			code, _ := p.CodeFor(u.Kind)
			rf := &regFile{}
			env := &execEnv{group: group, index: idx, nextGroup: -1}
			if u.Kind == isa.MEUTop {
				env.mes = []int{mes[idx%len(mes)]}
			}
			pc := u.Start
			for !env.finished {
				if pc < 0 || pc >= len(code) {
					return st, &Fault{PC: pc, Reason: "pc out of snippet range"}
				}
				d, err := c.step(&code[pc], rf, env, pc)
				if err != nil {
					return st, err
				}
				pc += d
				st.Instructions++
			}
			st.UTopsRun++
			if env.nextGroup >= 0 {
				if nextSet && next != env.nextGroup {
					return st, fmt.Errorf("npu: group %d µTOps disagree on next group", group)
				}
				next, nextSet = env.nextGroup, true
			}
		}
		if nextSet {
			group = next
		} else {
			group++
		}
	}
	st.Cycles = c.Cycles - start
	return st, nil
}

func newGoldenCore(t *testing.T) *Core {
	t.Helper()
	cfg := DefaultConfig()
	cfg.SRAMWords = 1 << 18
	cfg.HBMWords = 1 << 14
	c, err := NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Deterministic non-trivial memory contents.
	for i := range c.SRAM {
		c.SRAM[i] = float32(i%251) * 0.5
	}
	for i := range c.HBM {
		c.HBM[i] = float32(i % 17)
	}
	return c
}

func compareCores(t *testing.T, ref, fast *Core, label string) {
	t.Helper()
	if ref.Cycles != fast.Cycles {
		t.Fatalf("%s: cycles %d (reference) vs %d (decoded)", label, ref.Cycles, fast.Cycles)
	}
	if ref.DMACycle != fast.DMACycle {
		t.Fatalf("%s: DMA cycles %d vs %d", label, ref.DMACycle, fast.DMACycle)
	}
	for i := range ref.MEBusy {
		if ref.MEBusy[i] != fast.MEBusy[i] {
			t.Fatalf("%s: MEBusy[%d] %d vs %d", label, i, ref.MEBusy[i], fast.MEBusy[i])
		}
	}
	for i := range ref.VEBusy {
		if ref.VEBusy[i] != fast.VEBusy[i] {
			t.Fatalf("%s: VEBusy[%d] %d vs %d", label, i, ref.VEBusy[i], fast.VEBusy[i])
		}
	}
	for i := range ref.SRAM {
		if math.Float32bits(ref.SRAM[i]) != math.Float32bits(fast.SRAM[i]) {
			t.Fatalf("%s: SRAM[%d] %v vs %v (not bit-identical)", label, i, ref.SRAM[i], fast.SRAM[i])
		}
	}
	for i := range ref.HBM {
		if math.Float32bits(ref.HBM[i]) != math.Float32bits(fast.HBM[i]) {
			t.Fatalf("%s: HBM[%d] %v vs %v", label, i, ref.HBM[i], fast.HBM[i])
		}
	}
}

// vliwGoldenProgram assembles a program exercising every slot class:
// DMA in, vector arithmetic across multiple VE slots, ME tile multiply
// on two engines, a scalar loop with a backward branch, and stores.
func vliwGoldenProgram(t *testing.T) *isa.Program {
	t.Helper()
	f := isa.Format{MESlots: 2, VESlots: 2}
	b := isa.NewBuilder(f)
	// Latch an 8x8 weight tile (SRAM base r1=0) on both MEs.
	b.Misc(isa.SMovI(1, 0)).End()
	b.ME(isa.MELoadW(1, 8, 8)).ME(isa.MELoadW(1, 8, 8)).End()
	// DMA 256 words of HBM into SRAM at 1024.
	b.Misc(isa.SMovI(2, 1024)).End()
	b.Misc(isa.SMovI(3, 0)).End()
	b.Misc(isa.DMALoad(2, 3, 256)).End()
	// Push a row through both MEs and pop with VE postprocessing.
	b.Misc(isa.SMovI(4, 1024)).End()
	b.ME(isa.MEPush(4, 8)).ME(isa.MEPush(4, 8)).End()
	b.ME(isa.MEPop(1)).ME(isa.MEPopA(1)).End()
	b.VE(isa.V1(isa.OpVRelu, 2, 1)).
		VE(isa.Operation{Op: isa.OpVAddS, Dst: 3, A: 1, Imm: 7}).
		LS(isa.VLoad(4, 1, 128)).End()
	b.VE(isa.V2(isa.OpVAdd, 5, 2, 3)).VE(isa.V2(isa.OpVMax, 6, 2, 4)).End()
	b.LS(isa.VStore(1, 5, 2048)).LS(isa.VStore(1, 4, 2304)).End()
	// Scalar loop: r10 counts 0..4 with a backward BNE.
	b.Misc(isa.SMovI(10, 0)).End()
	b.Misc(isa.SMovI(11, 5)).End()
	loop := b.PC()
	b.Misc(isa.SAddI(10, 10, 1)).End()
	b.VE(isa.Operation{Op: isa.OpVMulS, Dst: 6, A: 5, Imm: 2}).End()
	brPC := b.PC()
	b.Misc(isa.Branch(isa.OpBNE, 10, 11, int32(loop-brPC))).End()
	// Reduce, DMA results back out, halt.
	b.VE(isa.V1(isa.OpVRsum, 14, 5)).End()
	b.Misc(isa.SMovI(12, 4096)).End()
	b.Misc(isa.SMovI(13, 2048)).End()
	b.Misc(isa.DMAStore(12, 13, 128)).End()
	b.Misc(isa.Halt()).End()
	code, err := b.Code()
	if err != nil {
		t.Fatal(err)
	}
	p := &isa.Program{Format: f, Code: code}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

// buildExecNeuProgram assembles a NeuISA kernel through the text
// toolchain: two ME µTOps computing a fused MatMul+ReLU over shared
// snippets, exercising uTop.index, scalar loops and branches.
func buildExecNeuProgram(t *testing.T) *isa.NeuProgram {
	t.Helper()
	const src = `
.neuisa veslots=4
.utop me tile
    uTop.index %r2
    s.movi %r3, #8
    s.mul %r4, %r2, %r3
    s.movi %r5, #16384
    me.loadw [%r5], 64, 128
    s.movi %r8, #64
    s.mul %r6, %r4, %r8
    s.movi %r9, #128
    s.mul %r7, %r4, %r9
    s.addi %r7, %r7, #65536
    s.movi %r10, #8
LOOP:
    me.push [%r6], 64
    me.pop %v0 | v.relu %v0, %v0
    ls.store [%r7+0], %v0
    s.addi %r6, %r6, #64
    s.addi %r7, %r7, #128
    s.addi %r10, %r10, #-1
    bne %r10, %r0, @LOOP
    uTop.finish
.group tile tile
`
	prog, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestDecodedVLIWMatchesReference(t *testing.T) {
	p := vliwGoldenProgram(t)
	ref := newGoldenCore(t)
	fast := newGoldenCore(t)
	refSt, refErr := runVLIWReference(ref, p)
	fastSt, fastErr := fast.RunVLIW(p)
	if (refErr == nil) != (fastErr == nil) {
		t.Fatalf("error mismatch: reference %v, decoded %v", refErr, fastErr)
	}
	if refSt != fastSt {
		t.Fatalf("stats mismatch: reference %+v, decoded %+v", refSt, fastSt)
	}
	compareCores(t, ref, fast, "vliw")
}

func TestDecodedNeuMatchesReference(t *testing.T) {
	p := buildExecNeuProgram(t)
	for _, mes := range [][]int{{0}, {0, 1}, {0, 1, 2, 3}} {
		ref := newGoldenCore(t)
		fast := newGoldenCore(t)
		refSt, refErr := runNeuReference(ref, p, mes)
		fastSt, fastErr := fast.RunNeu(p, mes)
		if (refErr == nil) != (fastErr == nil) {
			t.Fatalf("mes=%v: error mismatch: reference %v, decoded %v", mes, refErr, fastErr)
		}
		if refSt != fastSt {
			t.Fatalf("mes=%v: stats mismatch: reference %+v, decoded %+v", mes, refSt, fastSt)
		}
		compareCores(t, ref, fast, fmt.Sprintf("neu mes=%v", mes))
	}
}

// TestDecodedInterpreterAllocBudget is the allocation budget for the
// interpreter inner loop: steady-state re-execution of a NeuISA program
// on a warmed core must not allocate (the systolic arena refills count
// amortize to ~0 and are tolerated up to a small budget).
func TestDecodedInterpreterAllocBudget(t *testing.T) {
	p := buildExecNeuProgram(t)
	c := newGoldenCore(t)
	mes := []int{0, 1}
	if _, err := c.RunNeu(p, mes); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if _, err := c.RunNeu(p, mes); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 2 {
		t.Fatalf("interpreter allocates %.1f objects per program run, want ≤ 2", allocs)
	}
}
