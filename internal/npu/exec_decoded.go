package npu

import (
	"fmt"

	"neu10/internal/isa"
)

// The decoded fast path. RunVLIW and RunNeu execute the decode-once
// representation cached on the program (isa.DecodedCode): only the
// populated slots of each instruction word are visited, the slot kind
// is resolved at decode time into one flat opcode dispatch, and the
// register file / execution environment are scratch state reused across
// µTOps instead of being reallocated 16 KB at a time inside the
// 50M-instruction execution loop. Semantics are identical to the
// reference interpreter (step in exec.go) — decoding preserves the
// LS → ME → VE → misc slot order and omits only nops, which have no
// architectural effect. decoded_test.go locks the two paths together.

// scratchRF returns the core's reusable register file, zeroed — the
// architectural start state of every program and µTOp.
func (c *Core) scratchRF() *regFile {
	if c.execRF == nil {
		c.execRF = &regFile{}
	} else {
		*c.execRF = regFile{}
	}
	return c.execRF
}

// scratchMEs returns the identity ME binding [0..n) for RunVLIW without
// reallocating it per run.
func (c *Core) scratchMEs(n int) []int {
	if cap(c.execMEs) < n {
		c.execMEs = make([]int, n)
	}
	c.execMEs = c.execMEs[:n]
	for i := range c.execMEs {
		c.execMEs[i] = i
	}
	return c.execMEs
}

// stepDecoded executes one decoded instruction and returns the pc delta.
// It mirrors step (exec.go) case for case.
func (c *Core) stepDecoded(ops []isa.DecodedOp, rf *regFile, env *execEnv, pc int) (int, error) {
	delta := 1
	var maxCost uint64 = 1

	for i := range ops {
		op := ops[i].Op
		switch op.Op {
		// --- load/store slots ---
		case isa.OpVLoad:
			base := int(rf.s[op.A]) + int(op.Imm)
			if base < 0 || base+isa.VectorLanes > len(c.SRAM) {
				return 0, &Fault{PC: pc, Reason: fmt.Sprintf("SRAM load [%d,+128) out of range", base)}
			}
			copy(rf.v[op.Dst][:], c.SRAM[base:base+isa.VectorLanes])
		case isa.OpVStore:
			base := int(rf.s[op.A]) + int(op.Imm)
			if base < 0 || base+isa.VectorLanes > len(c.SRAM) {
				return 0, &Fault{PC: pc, Reason: fmt.Sprintf("SRAM store [%d,+128) out of range", base)}
			}
			copy(c.SRAM[base:base+isa.VectorLanes], rf.v[op.B][:])

		// --- ME slots ---
		case isa.OpMELoadW, isa.OpMEPush, isa.OpMEPop, isa.OpMEPopA:
			slot := int(ops[i].SlotIdx)
			if slot >= len(env.mes) {
				return 0, &Fault{PC: pc, Reason: fmt.Sprintf("ME slot %d has no bound engine", slot)}
			}
			me := c.MEs[env.mes[slot]]
			var cost uint64
			switch op.Op {
			case isa.OpMELoadW:
				rows, cols := int(op.Imm>>16), int(op.Imm&0xffff)
				base := int(rf.s[op.A])
				if base < 0 || base+rows*cols > len(c.SRAM) {
					return 0, &Fault{PC: pc, Reason: fmt.Sprintf("weight load [%d,+%d) out of range", base, rows*cols)}
				}
				if err := me.LoadWeights(c.SRAM[base:base+rows*cols], rows, cols); err != nil {
					return 0, &Fault{PC: pc, Reason: err.Error()}
				}
				cost = uint64(rows * c.Cfg.LoadWPerRow)
			case isa.OpMEPush:
				base, n := int(rf.s[op.A]), int(op.Imm)
				if base < 0 || base+n > len(c.SRAM) {
					return 0, &Fault{PC: pc, Reason: fmt.Sprintf("push row [%d,+%d) out of range", base, n)}
				}
				if err := me.Push(c.SRAM[base : base+n]); err != nil {
					return 0, &Fault{PC: pc, Reason: err.Error()}
				}
				cost = uint64(c.Cfg.PushCycles)
			case isa.OpMEPop, isa.OpMEPopA:
				row, err := me.Pop()
				if err != nil {
					return 0, &Fault{PC: pc, Reason: err.Error()}
				}
				dst := &rf.v[op.Dst]
				if op.Op == isa.OpMEPop {
					for i := range dst {
						dst[i] = 0
					}
					copy(dst[:], row)
				} else {
					for i, v := range row {
						dst[i] += v
					}
				}
				cost = uint64(c.Cfg.PopCycles)
			}
			c.MEBusy[env.mes[slot]] += cost
			if cost > maxCost {
				maxCost = cost
			}

		// --- VE slots ---
		case isa.OpVAdd, isa.OpVSub, isa.OpVMul, isa.OpVMax, isa.OpVRelu,
			isa.OpVMov, isa.OpVBcast, isa.OpVAddS, isa.OpVMulS, isa.OpVRsum:
			dst, a, b := &rf.v[op.Dst], &rf.v[op.A], &rf.v[op.B]
			switch op.Op {
			case isa.OpVAdd:
				for i := range dst {
					dst[i] = a[i] + b[i]
				}
			case isa.OpVSub:
				for i := range dst {
					dst[i] = a[i] - b[i]
				}
			case isa.OpVMul:
				for i := range dst {
					dst[i] = a[i] * b[i]
				}
			case isa.OpVMax:
				for i := range dst {
					if a[i] > b[i] {
						dst[i] = a[i]
					} else {
						dst[i] = b[i]
					}
				}
			case isa.OpVRelu:
				for i := range dst {
					if a[i] > 0 {
						dst[i] = a[i]
					} else {
						dst[i] = 0
					}
				}
			case isa.OpVMov:
				*dst = *a
			case isa.OpVBcast:
				v := float32(rf.s[op.A])
				for i := range dst {
					dst[i] = v
				}
			case isa.OpVAddS:
				v := float32(op.Imm)
				for i := range dst {
					dst[i] = a[i] + v
				}
			case isa.OpVMulS:
				v := float32(op.Imm)
				for i := range dst {
					dst[i] = a[i] * v
				}
			case isa.OpVRsum:
				var sum float32
				for _, v := range a {
					sum += v
				}
				rf.setS(op.Dst, int32(sum))
			}
			cost := uint64(c.Cfg.VEOpCycles)
			c.VEBusy[int(ops[i].SlotIdx)%len(c.VEBusy)] += cost
			if cost > maxCost {
				maxCost = cost
			}

		// --- misc slot ---
		case isa.OpHalt:
			env.halted = true
		case isa.OpSMovI:
			rf.setS(op.Dst, op.Imm)
		case isa.OpSAddI:
			rf.setS(op.Dst, rf.s[op.A]+op.Imm)
		case isa.OpSAdd:
			rf.setS(op.Dst, rf.s[op.A]+rf.s[op.B])
		case isa.OpSMul:
			rf.setS(op.Dst, rf.s[op.A]*rf.s[op.B])
		case isa.OpSLoad:
			addr := int(rf.s[op.A]) + int(op.Imm)
			if addr < 0 || addr >= len(c.SRAM) {
				return 0, &Fault{PC: pc, Reason: fmt.Sprintf("scalar load at %d out of range", addr)}
			}
			rf.setS(op.Dst, int32(c.SRAM[addr]))
		case isa.OpSStore:
			addr := int(rf.s[op.A]) + int(op.Imm)
			if addr < 0 || addr >= len(c.SRAM) {
				return 0, &Fault{PC: pc, Reason: fmt.Sprintf("scalar store at %d out of range", addr)}
			}
			c.SRAM[addr] = float32(rf.s[op.B])
		case isa.OpBEQ:
			if rf.s[op.A] == rf.s[op.B] {
				delta = int(op.Imm)
			}
		case isa.OpBNE:
			if rf.s[op.A] != rf.s[op.B] {
				delta = int(op.Imm)
			}
		case isa.OpBLT:
			if rf.s[op.A] < rf.s[op.B] {
				delta = int(op.Imm)
			}
		case isa.OpDMALoad, isa.OpDMAStore:
			dst, src, n := int(rf.s[op.Dst]), int(rf.s[op.A]), int(op.Imm)
			if n < 0 {
				return 0, &Fault{PC: pc, Reason: "negative DMA length"}
			}
			if op.Op == isa.OpDMALoad {
				if src < 0 || src+n > len(c.HBM) {
					return 0, &Fault{PC: pc, Reason: fmt.Sprintf("DMA HBM read [%d,+%d) out of range", src, n)}
				}
				if dst < 0 || dst+n > len(c.SRAM) {
					return 0, &Fault{PC: pc, Reason: fmt.Sprintf("DMA SRAM write [%d,+%d) out of range", dst, n)}
				}
				copy(c.SRAM[dst:dst+n], c.HBM[src:src+n])
			} else {
				if src < 0 || src+n > len(c.SRAM) {
					return 0, &Fault{PC: pc, Reason: fmt.Sprintf("DMA SRAM read [%d,+%d) out of range", src, n)}
				}
				if dst < 0 || dst+n > len(c.HBM) {
					return 0, &Fault{PC: pc, Reason: fmt.Sprintf("DMA HBM write [%d,+%d) out of range", dst, n)}
				}
				copy(c.HBM[dst:dst+n], c.SRAM[src:src+n])
			}
			cost := uint64(n/c.Cfg.DMAWordsPerC) + 1
			c.DMACycle += cost
			if cost > maxCost {
				maxCost = cost
			}
		case isa.OpUTopFinish:
			env.finished = true
		case isa.OpUTopNextGroup:
			env.nextGroup = int(rf.s[op.A])
		case isa.OpUTopGroup:
			rf.setS(op.Dst, int32(env.group))
		case isa.OpUTopIndex:
			rf.setS(op.Dst, int32(env.index))
		}
	}

	c.Cycles += maxCost
	return delta, nil
}
