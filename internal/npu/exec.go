package npu

import (
	"fmt"

	"neu10/internal/isa"
)

// The interpreter. Slots of one instruction execute in the deterministic
// order LS → ME → VE → misc; the compiler is responsible for not encoding
// intra-instruction hazards it does not want (this matches the
// compiler-managed contract of VLIW machines). Scalar register 0 is
// hardwired to zero: writes to it are discarded.

// maxInstructions bounds any single program run so a buggy uTop.nextGroup
// loop or branch cycle returns an error instead of hanging the test suite.
const maxInstructions = 50_000_000

type regFile struct {
	v [isa.NumVectorRegs][isa.VectorLanes]float32
	s [isa.NumScalarRegs]int32
}

func (r *regFile) setS(idx uint8, v int32) {
	if idx != 0 {
		r.s[idx] = v
	}
}

// execEnv carries the per-µTOp execution environment through the
// interpreter: which physical ME the (single) ME slot drives, and the
// NeuISA group/index visible to uTop.group / uTop.index.
type execEnv struct {
	mes       []int // physical ME index per ME slot
	group     int
	index     int
	nextGroup int // -1 = fall through to group+1
	finished  bool
	halted    bool
}

// RunStats reports what a program run cost.
type RunStats struct {
	Instructions uint64
	Cycles       uint64
}

// step executes one instruction from its slot-structured form and
// returns the pc delta (normally +1, branch target offset otherwise).
// It is the reference interpreter: the decoded fast path below
// (stepDecoded) must stay observationally identical to it, and the
// golden tests in decoded_test.go enforce that.
func (c *Core) step(in *isa.Instruction, rf *regFile, env *execEnv, pc int) (int, error) {
	delta := 1
	var maxCost uint64 = 1

	fault := func(reason string) error { return &Fault{PC: pc, Reason: reason} }

	// --- load/store slots ---
	for _, op := range in.LS {
		switch op.Op {
		case isa.OpNop:
		case isa.OpVLoad:
			base := int(rf.s[op.A]) + int(op.Imm)
			if base < 0 || base+isa.VectorLanes > len(c.SRAM) {
				return 0, fault(fmt.Sprintf("SRAM load [%d,+128) out of range", base))
			}
			copy(rf.v[op.Dst][:], c.SRAM[base:base+isa.VectorLanes])
		case isa.OpVStore:
			base := int(rf.s[op.A]) + int(op.Imm)
			if base < 0 || base+isa.VectorLanes > len(c.SRAM) {
				return 0, fault(fmt.Sprintf("SRAM store [%d,+128) out of range", base))
			}
			copy(c.SRAM[base:base+isa.VectorLanes], rf.v[op.B][:])
		}
	}

	// --- ME slots ---
	for slot, op := range in.ME {
		if op.Op == isa.OpNop {
			continue
		}
		if slot >= len(env.mes) {
			return 0, fault(fmt.Sprintf("ME slot %d has no bound engine", slot))
		}
		me := c.MEs[env.mes[slot]]
		var cost uint64
		switch op.Op {
		case isa.OpMELoadW:
			rows, cols := int(op.Imm>>16), int(op.Imm&0xffff)
			base := int(rf.s[op.A])
			if base < 0 || base+rows*cols > len(c.SRAM) {
				return 0, fault(fmt.Sprintf("weight load [%d,+%d) out of range", base, rows*cols))
			}
			if err := me.LoadWeights(c.SRAM[base:base+rows*cols], rows, cols); err != nil {
				return 0, fault(err.Error())
			}
			cost = uint64(rows * c.Cfg.LoadWPerRow)
		case isa.OpMEPush:
			base, n := int(rf.s[op.A]), int(op.Imm)
			if base < 0 || base+n > len(c.SRAM) {
				return 0, fault(fmt.Sprintf("push row [%d,+%d) out of range", base, n))
			}
			if err := me.Push(c.SRAM[base : base+n]); err != nil {
				return 0, fault(err.Error())
			}
			cost = uint64(c.Cfg.PushCycles)
		case isa.OpMEPop, isa.OpMEPopA:
			row, err := me.Pop()
			if err != nil {
				return 0, fault(err.Error())
			}
			dst := &rf.v[op.Dst]
			if op.Op == isa.OpMEPop {
				for i := range dst {
					dst[i] = 0
				}
				copy(dst[:], row)
			} else {
				for i, v := range row {
					dst[i] += v
				}
			}
			cost = uint64(c.Cfg.PopCycles)
		}
		c.MEBusy[env.mes[slot]] += cost
		if cost > maxCost {
			maxCost = cost
		}
	}

	// --- VE slots ---
	for slot, op := range in.VE {
		if op.Op == isa.OpNop {
			continue
		}
		dst, a, b := &rf.v[op.Dst], &rf.v[op.A], &rf.v[op.B]
		switch op.Op {
		case isa.OpVAdd:
			for i := range dst {
				dst[i] = a[i] + b[i]
			}
		case isa.OpVSub:
			for i := range dst {
				dst[i] = a[i] - b[i]
			}
		case isa.OpVMul:
			for i := range dst {
				dst[i] = a[i] * b[i]
			}
		case isa.OpVMax:
			for i := range dst {
				if a[i] > b[i] {
					dst[i] = a[i]
				} else {
					dst[i] = b[i]
				}
			}
		case isa.OpVRelu:
			for i := range dst {
				if a[i] > 0 {
					dst[i] = a[i]
				} else {
					dst[i] = 0
				}
			}
		case isa.OpVMov:
			*dst = *a
		case isa.OpVBcast:
			v := float32(rf.s[op.A])
			for i := range dst {
				dst[i] = v
			}
		case isa.OpVAddS:
			v := float32(op.Imm)
			for i := range dst {
				dst[i] = a[i] + v
			}
		case isa.OpVMulS:
			v := float32(op.Imm)
			for i := range dst {
				dst[i] = a[i] * v
			}
		case isa.OpVRsum:
			var sum float32
			for _, v := range a {
				sum += v
			}
			rf.setS(op.Dst, int32(sum))
		}
		cost := uint64(c.Cfg.VEOpCycles)
		c.VEBusy[slot%len(c.VEBusy)] += cost
		if cost > maxCost {
			maxCost = cost
		}
	}

	// --- misc slot ---
	switch op := in.Misc; op.Op {
	case isa.OpNop:
	case isa.OpHalt:
		env.halted = true
	case isa.OpSMovI:
		rf.setS(op.Dst, op.Imm)
	case isa.OpSAddI:
		rf.setS(op.Dst, rf.s[op.A]+op.Imm)
	case isa.OpSAdd:
		rf.setS(op.Dst, rf.s[op.A]+rf.s[op.B])
	case isa.OpSMul:
		rf.setS(op.Dst, rf.s[op.A]*rf.s[op.B])
	case isa.OpSLoad:
		addr := int(rf.s[op.A]) + int(op.Imm)
		if addr < 0 || addr >= len(c.SRAM) {
			return 0, fault(fmt.Sprintf("scalar load at %d out of range", addr))
		}
		rf.setS(op.Dst, int32(c.SRAM[addr]))
	case isa.OpSStore:
		addr := int(rf.s[op.A]) + int(op.Imm)
		if addr < 0 || addr >= len(c.SRAM) {
			return 0, fault(fmt.Sprintf("scalar store at %d out of range", addr))
		}
		c.SRAM[addr] = float32(rf.s[op.B])
	case isa.OpBEQ:
		if rf.s[op.A] == rf.s[op.B] {
			delta = int(op.Imm)
		}
	case isa.OpBNE:
		if rf.s[op.A] != rf.s[op.B] {
			delta = int(op.Imm)
		}
	case isa.OpBLT:
		if rf.s[op.A] < rf.s[op.B] {
			delta = int(op.Imm)
		}
	case isa.OpDMALoad, isa.OpDMAStore:
		dst, src, n := int(rf.s[op.Dst]), int(rf.s[op.A]), int(op.Imm)
		if n < 0 {
			return 0, fault("negative DMA length")
		}
		if op.Op == isa.OpDMALoad {
			if src < 0 || src+n > len(c.HBM) {
				return 0, fault(fmt.Sprintf("DMA HBM read [%d,+%d) out of range", src, n))
			}
			if dst < 0 || dst+n > len(c.SRAM) {
				return 0, fault(fmt.Sprintf("DMA SRAM write [%d,+%d) out of range", dst, n))
			}
			copy(c.SRAM[dst:dst+n], c.HBM[src:src+n])
		} else {
			if src < 0 || src+n > len(c.SRAM) {
				return 0, fault(fmt.Sprintf("DMA SRAM read [%d,+%d) out of range", src, n))
			}
			if dst < 0 || dst+n > len(c.HBM) {
				return 0, fault(fmt.Sprintf("DMA HBM write [%d,+%d) out of range", dst, n))
			}
			copy(c.HBM[dst:dst+n], c.SRAM[src:src+n])
		}
		cost := uint64(n/c.Cfg.DMAWordsPerC) + 1
		c.DMACycle += cost
		if cost > maxCost {
			maxCost = cost
		}
	case isa.OpUTopFinish:
		env.finished = true
	case isa.OpUTopNextGroup:
		env.nextGroup = int(rf.s[op.A])
	case isa.OpUTopGroup:
		rf.setS(op.Dst, int32(env.group))
	case isa.OpUTopIndex:
		rf.setS(op.Dst, int32(env.index))
	}

	c.Cycles += maxCost
	return delta, nil
}

// RunVLIW executes a traditional VLIW program to its halt. ME slot i
// drives physical ME i; the program therefore requires at least
// Format.MESlots physical MEs — the static coupling the paper's Fig. 9
// illustrates. It returns run statistics. Execution runs over the
// program's cached decode-once representation.
func (c *Core) RunVLIW(p *isa.Program) (RunStats, error) {
	var st RunStats
	if err := p.Validate(); err != nil {
		return st, err
	}
	if p.Format.MESlots > c.Cfg.MEs {
		return st, fmt.Errorf("npu: program compiled for %d MEs, core has %d", p.Format.MESlots, c.Cfg.MEs)
	}
	mes := c.scratchMEs(p.Format.MESlots)
	rf := c.scratchRF()
	env := &execEnv{mes: mes, nextGroup: -1}
	dc := p.Decoded()
	start := c.Cycles
	pc := 0
	for !env.halted {
		if pc < 0 || pc >= dc.Len() {
			return st, &Fault{PC: pc, Reason: "pc out of range"}
		}
		d, err := c.stepDecoded(dc.At(pc), rf, env, pc)
		if err != nil {
			return st, err
		}
		pc += d
		st.Instructions++
		if st.Instructions > maxInstructions {
			return st, fmt.Errorf("npu: VLIW program exceeded %d instructions", maxInstructions)
		}
	}
	st.Cycles = c.Cycles - start
	return st, nil
}

// NeuRunStats extends RunStats with µTOp-level counts.
type NeuRunStats struct {
	RunStats
	UTopsRun  uint64
	GroupsRun uint64
}

// RunNeu executes a NeuISA program on the core using the given physical
// MEs (by index). Unlike RunVLIW, any positive number of MEs works: µTOps
// of a group are bound to the available engines round-robin — this is
// exactly the decoupling NeuISA exists to provide. Groups execute
// sequentially (data dependencies), µTOps within a group in table order;
// uTop.nextGroup redirects sequencing, and conflicting redirections from
// µTOps of the same group raise an error, per the paper §III-D.
func (c *Core) RunNeu(p *isa.NeuProgram, mes []int) (NeuRunStats, error) {
	var st NeuRunStats
	if err := p.Validate(); err != nil {
		return st, err
	}
	if len(mes) == 0 {
		return st, fmt.Errorf("npu: no MEs allocated")
	}
	for _, m := range mes {
		if m < 0 || m >= c.Cfg.MEs {
			return st, fmt.Errorf("npu: ME index %d out of range", m)
		}
	}
	start := c.Cycles
	group := 0
	for group >= 0 && group < len(p.Groups) {
		st.GroupsRun++
		utops := p.DecodedGroupUTops(group)
		next := -1
		nextSet := false
		for idx, ui := range utops {
			u := p.UTops[ui]
			dc := p.DecodedFor(u.Kind)
			rf := c.scratchRF()
			env := &execEnv{group: group, index: idx, nextGroup: -1}
			if u.Kind == isa.MEUTop {
				c.execOne[0] = mes[idx%len(mes)]
				env.mes = c.execOne[:1]
			}
			pc := u.Start
			for !env.finished {
				if pc < 0 || pc >= dc.Len() {
					return st, &Fault{PC: pc, Reason: "pc out of snippet range"}
				}
				d, err := c.stepDecoded(dc.At(pc), rf, env, pc)
				if err != nil {
					return st, err
				}
				pc += d
				st.Instructions++
				if st.Instructions > maxInstructions {
					return st, fmt.Errorf("npu: NeuISA program exceeded %d instructions", maxInstructions)
				}
			}
			st.UTopsRun++
			if env.nextGroup >= 0 {
				if nextSet && next != env.nextGroup {
					return st, fmt.Errorf("npu: group %d µTOps disagree on next group (%d vs %d)", group, next, env.nextGroup)
				}
				next, nextSet = env.nextGroup, true
			}
		}
		if nextSet {
			if next >= len(p.Groups) {
				return st, fmt.Errorf("npu: uTop.nextGroup target %d out of range", next)
			}
			group = next
		} else {
			group++
		}
	}
	st.Cycles = c.Cycles - start
	return st, nil
}
