package npu

import (
	"testing"

	"neu10/internal/isa"
	"neu10/internal/tensor"
)

// End-to-end through the text toolchain: assemble a fused MatMul+ReLU
// kernel from source, execute it on the functional simulator, and verify
// against the host reference.
func TestAssembledKernelExecutes(t *testing.T) {
	const src = `
.neuisa veslots=4
.utop me tile
    uTop.index %r2
    s.movi %r3, #8
    s.mul %r4, %r2, %r3
    s.movi %r5, #16384
    me.loadw [%r5], 64, 128
    s.movi %r8, #64
    s.mul %r6, %r4, %r8
    s.movi %r9, #128
    s.mul %r7, %r4, %r9
    s.addi %r7, %r7, #65536
    s.movi %r10, #8
LOOP:
    me.push [%r6], 64
    me.pop %v0 | v.relu %v0, %v0
    ls.store [%r7+0], %v0
    s.addi %r6, %r6, #64
    s.addi %r7, %r7, #128
    s.addi %r10, %r10, #-1
    bne %r10, %r0, @LOOP
    uTop.finish
.group tile tile
`
	prog, err := isa.Assemble(src)
	if err != nil {
		t.Fatal(err)
	}

	const m, k, n = 16, 64, isa.VectorLanes // 2 µTOps × 8 rows
	a := tensor.New(m, k)
	bm := tensor.New(k, n)
	for i := range a.Data {
		a.Data[i] = float32(i%19) - 9
	}
	for i := range bm.Data {
		bm.Data[i] = float32(i%13)/4 - 1.5
	}
	want := tensor.ReLU(tensor.MatMul(a, bm))

	core := newTestCore(t)
	copy(core.SRAM[0:], a.Data)
	copy(core.SRAM[16384:], bm.Data)
	if _, err := core.RunNeu(prog, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	got := tensor.New(m, n)
	copy(got.Data, core.SRAM[65536:65536+m*n])
	if d := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("assembled kernel differs from reference by %v", d)
	}
}
