// Package xfer models the cluster's chip-to-chip interconnect: the
// links a disaggregated serving system ships KV caches (or any other
// bulk payload) over between pNPUs. It is deliberately a fluid model,
// not a packet simulator — the same altitude internal/sched's fluid
// scheduler occupies for compute:
//
//   - A Link has a bandwidth (bytes per core cycle) and a fixed
//     per-transfer latency (propagation + protocol, in cycles).
//   - Concurrent transfers on one link share its bandwidth max-min
//     fairly. With a single bottleneck resource and equally greedy
//     flows, the max-min allocation is the equal share B/n, re-divided
//     whenever a transfer starts or finishes — classic processor
//     sharing. A transfer's payload drains at the current share; its
//     completion fires `latency` cycles after the last byte leaves.
//   - All progress is advanced lazily on the owning sim.Engine's
//     clock: the link keeps exactly one pending event (the earliest
//     completion) and re-derives it whenever membership changes, so a
//     whole run stays deterministic and allocation-light.
//
// A Fabric is the per-pair link directory serving uses: it lazily
// creates one identically-shaped Link per ordered (src, dst) chip pair
// — a fully connected point-to-point topology, the usual abstraction
// for intra-pod NPU interconnects — and aggregates fleet-wide stats.
package xfer

import (
	"fmt"
	"math"

	"neu10/internal/sim"
)

// transfer is one in-flight payload on a link.
type transfer struct {
	remaining float64 // payload bytes still to move
	bytes     int64
	done      func(now sim.Time)
}

// Link is one chip-to-chip connection. All methods must be called from
// the owning engine's event context (the single-threaded sim loop).
type Link struct {
	eng        *sim.Engine
	name       string
	bwPerCycle float64 // bytes per cycle
	latency    float64 // cycles added after the last byte drains

	active []*transfer

	// stats
	lastAt     float64
	busyArea   float64 // cycles with ≥1 transfer in flight
	flowArea   float64 // ∫ len(active) dt
	bytesMoved int64
	transfers  int
	peakActive int

	doneSet bool
	doneH   sim.Handle
}

// NewLink builds a link on the engine's clock. bwPerCycle is in bytes
// per core cycle; latency in cycles.
func NewLink(eng *sim.Engine, name string, bwPerCycle, latency float64) (*Link, error) {
	if bwPerCycle <= 0 {
		return nil, fmt.Errorf("xfer: link %s bandwidth %v bytes/cycle", name, bwPerCycle)
	}
	if latency < 0 {
		return nil, fmt.Errorf("xfer: link %s latency %v cycles", name, latency)
	}
	return &Link{eng: eng, name: name, bwPerCycle: bwPerCycle, latency: latency,
		lastAt: float64(eng.Now())}, nil
}

// Name returns the link's label.
func (l *Link) Name() string { return l.name }

// Active returns the number of transfers currently in their bandwidth
// phase (latency-phase completions are already off the link).
func (l *Link) Active() int { return len(l.active) }

// Start begins shipping `bytes` over the link. done fires exactly once,
// `latency` cycles after the payload's last byte drains at the link's
// max-min fair share. A zero-byte transfer still pays the latency.
func (l *Link) Start(bytes int64, done func(now sim.Time)) {
	now := float64(l.eng.Now())
	l.advance(now)
	l.transfers++
	if bytes <= 0 {
		l.eng.After(sim.Time(l.latency)+1, done)
		return
	}
	t := &transfer{remaining: float64(bytes), bytes: bytes, done: done}
	l.active = append(l.active, t)
	if len(l.active) > l.peakActive {
		l.peakActive = len(l.active)
	}
	l.reschedule(now)
}

// advance drains every active transfer at the fair share over
// [lastAt, now) and accrues the utilization integrals.
func (l *Link) advance(now float64) {
	dt := now - l.lastAt
	if dt <= 0 {
		return
	}
	if n := len(l.active); n > 0 {
		share := l.bwPerCycle / float64(n)
		for _, t := range l.active {
			t.remaining -= share * dt
		}
		l.busyArea += dt
		l.flowArea += float64(n) * dt
	}
	l.lastAt = now
}

// reschedule re-derives the single pending completion event: the
// transfer with the least remaining payload finishes first (ties drain
// together and complete in the same event, FIFO by start order).
func (l *Link) reschedule(now float64) {
	if l.doneSet {
		l.eng.Cancel(l.doneH)
		l.doneSet = false
	}
	if len(l.active) == 0 {
		return
	}
	min := math.Inf(1)
	for _, t := range l.active {
		if t.remaining < min {
			min = t.remaining
		}
	}
	if min < 0 {
		min = 0
	}
	eta := min / (l.bwPerCycle / float64(len(l.active)))
	l.doneSet = true
	l.doneH = l.eng.After(sim.Time(eta)+1, l.fire)
}

// fire advances progress and completes every transfer whose payload has
// drained, then reschedules for the survivors. Completions keep start
// order (the slice is filtered in place), so callback order is
// deterministic.
func (l *Link) fire(nowT sim.Time) {
	l.doneSet = false
	now := float64(nowT)
	l.advance(now)
	kept := l.active[:0]
	var finished []*transfer
	for _, t := range l.active {
		// The event lands ≥1 cycle past the exact drain time, so the
		// earliest transfer is at or below zero; anything within one
		// cycle's fair share of empty drains in the same event.
		if t.remaining <= 1e-9 {
			finished = append(finished, t)
		} else {
			kept = append(kept, t)
		}
	}
	for i := len(kept); i < len(l.active); i++ {
		l.active[i] = nil
	}
	l.active = kept
	l.reschedule(now)
	for _, t := range finished {
		l.bytesMoved += t.bytes
		if l.latency > 0 {
			l.eng.After(sim.Time(l.latency)+1, t.done)
		} else {
			t.done(nowT)
		}
	}
}

// Stats is a link's (or fabric's) aggregate accounting.
type Stats struct {
	Transfers  int     // transfers started
	BytesMoved int64   // payload bytes fully drained
	BusyCycles float64 // cycles the link spent with ≥1 transfer in flight
	FlowArea   float64 // ∫ active-transfer count dt (mean concurrency × time)
	PeakActive int     // most transfers ever concurrent on one link
}

// Stats snapshots the link's accounting up to `now` (cycles).
func (l *Link) Stats(now float64) Stats {
	l.advance(now)
	return Stats{
		Transfers:  l.transfers,
		BytesMoved: l.bytesMoved,
		BusyCycles: l.busyArea,
		FlowArea:   l.flowArea,
		PeakActive: l.peakActive,
	}
}

// Fabric lazily builds one Link per ordered (src, dst) chip pair, all
// identically shaped — a fully connected point-to-point interconnect.
type Fabric struct {
	eng        *sim.Engine
	bwPerCycle float64
	latency    float64
	links      map[[2]int]*Link
	// order lists links by creation (an event-driven, therefore
	// deterministic order); Stats folds float sums over it so the
	// rounding of the aggregates never depends on map iteration.
	order []*Link
}

// NewFabric builds an empty fabric; links appear on first use.
func NewFabric(eng *sim.Engine, bwPerCycle, latency float64) (*Fabric, error) {
	if bwPerCycle <= 0 {
		return nil, fmt.Errorf("xfer: fabric bandwidth %v bytes/cycle", bwPerCycle)
	}
	if latency < 0 {
		return nil, fmt.Errorf("xfer: fabric latency %v cycles", latency)
	}
	return &Fabric{eng: eng, bwPerCycle: bwPerCycle, latency: latency, links: map[[2]int]*Link{}}, nil
}

// Link returns the src→dst link, creating it on first use. A loopback
// pair (src == dst) is legal and models an on-chip copy at link speed.
func (f *Fabric) Link(src, dst int) *Link {
	key := [2]int{src, dst}
	if l, ok := f.links[key]; ok {
		return l
	}
	l, err := NewLink(f.eng, fmt.Sprintf("chip%d→chip%d", src, dst), f.bwPerCycle, f.latency)
	if err != nil {
		panic(err) // NewFabric validated the shape; unreachable
	}
	f.links[key] = l
	f.order = append(f.order, l)
	return l
}

// Links returns how many pair links have been instantiated.
func (f *Fabric) Links() int { return len(f.links) }

// Stats folds every instantiated link's accounting up to `now`. Peak
// concurrency is the max over links (per-link contention is what the
// max-min share divides by); the other fields are sums.
func (f *Fabric) Stats(now float64) Stats {
	var s Stats
	for _, l := range f.order {
		ls := l.Stats(now)
		s.Transfers += ls.Transfers
		s.BytesMoved += ls.BytesMoved
		s.BusyCycles += ls.BusyCycles
		s.FlowArea += ls.FlowArea
		if ls.PeakActive > s.PeakActive {
			s.PeakActive = ls.PeakActive
		}
	}
	return s
}
