// Package xfer models the cluster's chip-to-chip interconnect: the
// links a disaggregated serving system ships KV caches (or any other
// bulk payload) over between pNPUs. It is deliberately a fluid model,
// not a packet simulator — the same altitude internal/sched's fluid
// scheduler occupies for compute:
//
//   - A Link has a bandwidth (bytes per core cycle) and a fixed
//     per-transfer latency (propagation + protocol, in cycles).
//   - Concurrent transfers on one link share its bandwidth max-min
//     fairly. With a single bottleneck resource and equally greedy
//     flows, the max-min allocation is the equal share B/n, re-divided
//     whenever a transfer starts or finishes — classic processor
//     sharing. A transfer's payload drains at the current share; its
//     completion fires `latency` cycles after the last byte leaves.
//   - All progress is advanced lazily on the owning sim.Engine's
//     clock: the link keeps exactly one pending event (the earliest
//     completion) and re-derives it whenever membership changes, so a
//     whole run stays deterministic and allocation-light.
//
// Links additionally support runtime degradation (SetBandwidthScale)
// and transfer cancellation (Transfer.Cancel) — the fault-injection
// surface: a degraded link stretches every in-flight copy mid-payload,
// and a crashed endpoint aborts its transfers without their completion
// callbacks ever firing.
//
// A Fabric is the per-pair link directory serving uses: it lazily
// creates one identically-shaped Link per ordered (src, dst) chip pair
// — a fully connected point-to-point topology, the usual abstraction
// for intra-pod NPU interconnects — and aggregates fleet-wide stats.
package xfer

import (
	"fmt"
	"math"

	"neu10/internal/sim"
)

// transfer is one in-flight payload on a link.
type transfer struct {
	remaining float64 // payload bytes still to move
	bytes     int64
	done      func(now sim.Time)

	latSet   bool // payload drained; the latency-phase completion is pending
	latH     sim.Handle
	finished bool // done fired, or the transfer was canceled
}

// Transfer is the handle Start returns for one payload: it stays valid
// for the transfer's whole lifetime and supports cancellation.
type Transfer struct {
	l *Link
	t *transfer
}

// Cancel aborts the transfer if it has not completed: its done callback
// will never fire, and any payload still unsent is abandoned (partial
// progress does not count toward BytesMoved — the payload never fully
// drained). Surviving transfers on the link immediately speed up to the
// wider fair share. Reports false when the transfer already completed.
func (tr *Transfer) Cancel() bool {
	l, t := tr.l, tr.t
	if t.finished {
		return false
	}
	t.finished = true
	l.canceled++
	if t.latSet {
		// Payload fully drained; only the latency-phase completion event
		// remains — the bytes moved, but the handoff they announced will
		// never be acted on.
		l.eng.Cancel(t.latH)
		t.latSet = false
		return true
	}
	now := float64(l.eng.Now())
	l.advance(now)
	for i, x := range l.active {
		if x == t {
			l.active = append(l.active[:i], l.active[i+1:]...)
			break
		}
	}
	l.reschedule(now)
	return true
}

// Link is one chip-to-chip connection. All methods must be called from
// the owning engine's event context (the single-threaded sim loop).
type Link struct {
	eng        *sim.Engine
	name       string
	bwPerCycle float64 // nominal bytes per cycle
	latency    float64 // cycles added after the last byte drains
	scale      float64 // runtime bandwidth multiplier (fault injection)

	active []*transfer

	// stats
	lastAt     float64
	busyArea   float64 // cycles with ≥1 transfer in flight
	flowArea   float64 // ∫ len(active) dt
	bytesMoved int64
	transfers  int
	canceled   int
	peakActive int

	doneSet bool
	doneH   sim.Handle
}

// NewLink builds a link on the engine's clock. bwPerCycle is in bytes
// per core cycle; latency in cycles.
func NewLink(eng *sim.Engine, name string, bwPerCycle, latency float64) (*Link, error) {
	if bwPerCycle <= 0 {
		return nil, fmt.Errorf("xfer: link %s bandwidth %v bytes/cycle", name, bwPerCycle)
	}
	if latency < 0 {
		return nil, fmt.Errorf("xfer: link %s latency %v cycles", name, latency)
	}
	return &Link{eng: eng, name: name, bwPerCycle: bwPerCycle, latency: latency,
		scale: 1, lastAt: float64(eng.Now())}, nil
}

// Name returns the link's label.
func (l *Link) Name() string { return l.name }

// Active returns the number of transfers currently in their bandwidth
// phase (latency-phase completions are already off the link).
func (l *Link) Active() int { return len(l.active) }

// BandwidthScale returns the current runtime multiplier (1 = healthy).
func (l *Link) BandwidthScale() float64 { return l.scale }

// Backlog returns the payload bytes still queued on the link across its
// in-flight transfers, advanced to `now` — the instantaneous congestion
// signal the observability sampler records. Advancing is the same lazy
// bookkeeping every other accessor performs, so sampling never perturbs
// completion times.
func (l *Link) Backlog(now float64) float64 {
	l.advance(now)
	var b float64
	for _, t := range l.active {
		if t.remaining > 0 {
			b += t.remaining
		}
	}
	return b
}

// BusyCycles returns the cycles the link has spent with ≥1 transfer in
// flight, advanced to `now` (the utilization integral Stats also
// reports; exposed separately so per-tick samplers can diff it without
// assembling a full Stats).
func (l *Link) BusyCycles(now float64) float64 {
	l.advance(now)
	return l.busyArea
}

// rate is the effective bandwidth: nominal × runtime scale.
func (l *Link) rate() float64 { return l.bwPerCycle * l.scale }

// SetBandwidthScale rescales the link's effective bandwidth at runtime
// — a degraded (scale < 1) or recovered (scale = 1) link under fault
// injection. In-flight transfers stretch or shrink mid-payload.
//
// Progress MUST be advanced at the OLD rate up to now before the rate
// changes: advance() drains the whole [lastAt, now) interval at the
// current share, so mutating the rate first would retroactively apply
// the new bandwidth to an interval already served at the old one —
// skewing both the completion time and the busy/flow integrals the
// Stats report. Only then is the pending completion re-derived at the
// new share.
func (l *Link) SetBandwidthScale(scale float64) error {
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 1) {
		return fmt.Errorf("xfer: link %s bandwidth scale %v", l.name, scale)
	}
	now := float64(l.eng.Now())
	l.advance(now)
	l.scale = scale
	l.reschedule(now)
	return nil
}

// Start begins shipping `bytes` over the link. done fires exactly once
// — `latency` cycles after the payload's last byte drains at the link's
// max-min fair share — unless the returned handle is canceled first. A
// zero-byte transfer still pays the latency.
func (l *Link) Start(bytes int64, done func(now sim.Time)) *Transfer {
	now := float64(l.eng.Now())
	l.advance(now)
	l.transfers++
	t := &transfer{remaining: float64(bytes), bytes: bytes, done: done}
	if bytes <= 0 {
		t.latSet = true
		t.latH = l.eng.After(sim.Time(l.latency)+1, func(at sim.Time) { l.complete(t, at) })
		return &Transfer{l: l, t: t}
	}
	l.active = append(l.active, t)
	if len(l.active) > l.peakActive {
		l.peakActive = len(l.active)
	}
	l.reschedule(now)
	return &Transfer{l: l, t: t}
}

// complete fires a transfer's done callback exactly once.
func (l *Link) complete(t *transfer, now sim.Time) {
	t.latSet = false
	t.finished = true
	t.done(now)
}

// advance drains every active transfer at the fair share over
// [lastAt, now) and accrues the utilization integrals.
func (l *Link) advance(now float64) {
	dt := now - l.lastAt
	if dt <= 0 {
		return
	}
	if n := len(l.active); n > 0 {
		share := l.rate() / float64(n)
		for _, t := range l.active {
			t.remaining -= share * dt
		}
		l.busyArea += dt
		l.flowArea += float64(n) * dt
	}
	l.lastAt = now
}

// reschedule re-derives the single pending completion event: the
// transfer with the least remaining payload finishes first (ties drain
// together and complete in the same event, FIFO by start order).
func (l *Link) reschedule(now float64) {
	if l.doneSet {
		l.eng.Cancel(l.doneH)
		l.doneSet = false
	}
	if len(l.active) == 0 {
		return
	}
	min := math.Inf(1)
	for _, t := range l.active {
		if t.remaining < min {
			min = t.remaining
		}
	}
	if min < 0 {
		min = 0
	}
	eta := min / (l.rate() / float64(len(l.active)))
	l.doneSet = true
	l.doneH = l.eng.After(sim.Time(eta)+1, l.fire)
}

// fire advances progress and completes every transfer whose payload has
// drained, then reschedules for the survivors. Completions keep start
// order (the slice is filtered in place), so callback order is
// deterministic.
func (l *Link) fire(nowT sim.Time) {
	l.doneSet = false
	now := float64(nowT)
	l.advance(now)
	kept := l.active[:0]
	var finished []*transfer
	for _, t := range l.active {
		// The event lands ≥1 cycle past the exact drain time, so the
		// earliest transfer is at or below zero; anything within one
		// cycle's fair share of empty drains in the same event.
		if t.remaining <= 1e-9 {
			finished = append(finished, t)
		} else {
			kept = append(kept, t)
		}
	}
	for i := len(kept); i < len(l.active); i++ {
		l.active[i] = nil
	}
	l.active = kept
	l.reschedule(now)
	for _, t := range finished {
		l.bytesMoved += t.bytes
		if l.latency > 0 {
			t.latSet = true
			tt := t
			t.latH = l.eng.After(sim.Time(l.latency)+1, func(at sim.Time) { l.complete(tt, at) })
		} else {
			l.complete(t, nowT)
		}
	}
}

// Stats is a link's (or fabric's) aggregate accounting.
type Stats struct {
	Transfers  int     // transfers started
	Canceled   int     // transfers aborted before completion
	BytesMoved int64   // payload bytes fully drained
	BusyCycles float64 // cycles the link spent with ≥1 transfer in flight
	FlowArea   float64 // ∫ active-transfer count dt (mean concurrency × time)
	PeakActive int     // most transfers ever concurrent on one link
}

// Stats snapshots the link's accounting up to `now` (cycles).
func (l *Link) Stats(now float64) Stats {
	l.advance(now)
	return Stats{
		Transfers:  l.transfers,
		Canceled:   l.canceled,
		BytesMoved: l.bytesMoved,
		BusyCycles: l.busyArea,
		FlowArea:   l.flowArea,
		PeakActive: l.peakActive,
	}
}

// Fabric lazily builds one Link per ordered (src, dst) chip pair, all
// identically shaped — a fully connected point-to-point interconnect.
type Fabric struct {
	eng        *sim.Engine
	bwPerCycle float64
	latency    float64
	scale      float64 // applied to existing links and inherited by new ones
	links      map[[2]int]*Link
	// order lists links by creation (an event-driven, therefore
	// deterministic order); Stats folds float sums over it so the
	// rounding of the aggregates never depends on map iteration.
	order []*Link
}

// NewFabric builds an empty fabric; links appear on first use.
func NewFabric(eng *sim.Engine, bwPerCycle, latency float64) (*Fabric, error) {
	if bwPerCycle <= 0 {
		return nil, fmt.Errorf("xfer: fabric bandwidth %v bytes/cycle", bwPerCycle)
	}
	if latency < 0 {
		return nil, fmt.Errorf("xfer: fabric latency %v cycles", latency)
	}
	return &Fabric{eng: eng, bwPerCycle: bwPerCycle, latency: latency, scale: 1, links: map[[2]int]*Link{}}, nil
}

// Link returns the src→dst link, creating it on first use. A loopback
// pair (src == dst) is legal and models an on-chip copy at link speed.
func (f *Fabric) Link(src, dst int) *Link {
	key := [2]int{src, dst}
	if l, ok := f.links[key]; ok {
		return l
	}
	l, err := NewLink(f.eng, fmt.Sprintf("chip%d→chip%d", src, dst), f.bwPerCycle, f.latency)
	if err != nil {
		panic(err) // NewFabric validated the shape; unreachable
	}
	// A link born inside a fabric-wide degradation window is degraded
	// from its first byte.
	l.scale = f.scale
	f.links[key] = l
	f.order = append(f.order, l)
	return l
}

// SetBandwidthScale rescales every link — existing and future — by the
// same factor: a fabric-wide degradation (or recovery at scale 1). The
// per-link rescale reschedules each link's in-flight transfers at the
// new fair share.
func (f *Fabric) SetBandwidthScale(scale float64) error {
	if scale <= 0 || math.IsNaN(scale) || math.IsInf(scale, 1) {
		return fmt.Errorf("xfer: fabric bandwidth scale %v", scale)
	}
	f.scale = scale
	for _, l := range f.order { // creation order: deterministic
		if err := l.SetBandwidthScale(scale); err != nil {
			return err
		}
	}
	return nil
}

// Links returns how many pair links have been instantiated.
func (f *Fabric) Links() int { return len(f.links) }

// EachLink visits every instantiated link in creation order (an
// event-driven, therefore deterministic order) — the iteration surface
// per-link telemetry samples over.
func (f *Fabric) EachLink(fn func(l *Link)) {
	for _, l := range f.order {
		fn(l)
	}
}

// Stats folds every instantiated link's accounting up to `now`. Peak
// concurrency is the max over links (per-link contention is what the
// max-min share divides by); the other fields are sums.
func (f *Fabric) Stats(now float64) Stats {
	var s Stats
	for _, l := range f.order {
		ls := l.Stats(now)
		s.Transfers += ls.Transfers
		s.Canceled += ls.Canceled
		s.BytesMoved += ls.BytesMoved
		s.BusyCycles += ls.BusyCycles
		s.FlowArea += ls.FlowArea
		if ls.PeakActive > s.PeakActive {
			s.PeakActive = ls.PeakActive
		}
	}
	return s
}
