package xfer

import (
	"math"
	"testing"

	"neu10/internal/sim"
)

// TestSoloTransferTiming pins the base timing model: a solo transfer of
// B bytes on a link of bw bytes/cycle completes after B/bw cycles plus
// the fixed latency (each scheduling hop may add up to one cycle of
// quantization, never more).
func TestSoloTransferTiming(t *testing.T) {
	eng := sim.NewEngine()
	l, err := NewLink(eng, "test", 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time
	l.Start(1000, func(now sim.Time) { doneAt = now })
	eng.Run()
	// 1000 B at 10 B/cycle = 100 cycles drain + 100 latency = 200.
	if doneAt < 200 || doneAt > 202 {
		t.Errorf("solo transfer completed at %d, want 200 (+≤2 quantization)", doneAt)
	}
	st := l.Stats(float64(eng.Now()))
	if st.BytesMoved != 1000 || st.Transfers != 1 {
		t.Errorf("stats: %+v", st)
	}
	if st.BusyCycles < 100 || st.BusyCycles > 102 {
		t.Errorf("busy %v cycles, want ~100", st.BusyCycles)
	}
}

// TestMaxMinFairSharing: two equal transfers started together each get
// half the bandwidth and finish together at twice the solo drain time;
// a short transfer started alongside a long one finishes first, after
// which the long one reclaims the full bandwidth (the max-min
// re-division on membership change).
func TestMaxMinFairSharing(t *testing.T) {
	eng := sim.NewEngine()
	l, err := NewLink(eng, "test", 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	var aAt, bAt sim.Time
	l.Start(1000, func(now sim.Time) { aAt = now })
	l.Start(1000, func(now sim.Time) { bAt = now })
	eng.Run()
	// Each drains at 5 B/cycle: 200 cycles, together.
	if aAt < 200 || aAt > 202 || bAt != aAt {
		t.Errorf("equal pair completed at %d / %d, want both ~200", aAt, bAt)
	}

	eng = sim.NewEngine()
	l, _ = NewLink(eng, "test", 10, 0)
	var longAt, shortAt sim.Time
	l.Start(2000, func(now sim.Time) { longAt = now })
	l.Start(500, func(now sim.Time) { shortAt = now })
	eng.Run()
	// Shared until the short one drains: 500 B at 5 B/cycle = 100 cycles
	// (long has 1500 left). Then the long one runs solo: 150 more.
	if shortAt < 100 || shortAt > 102 {
		t.Errorf("short transfer at %d, want ~100", shortAt)
	}
	if longAt < 250 || longAt > 254 {
		t.Errorf("long transfer at %d, want ~250", longAt)
	}
	if got := l.Stats(float64(eng.Now())); got.PeakActive != 2 {
		t.Errorf("peak active %d, want 2", got.PeakActive)
	}
}

// TestWorkConservation: however transfers overlap, total bytes over
// total busy time can never beat the link bandwidth, and every started
// transfer completes exactly once.
func TestWorkConservation(t *testing.T) {
	eng := sim.NewEngine()
	l, err := NewLink(eng, "test", 7, 13)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(42)
	const n = 100
	completions := 0
	var total int64
	for i := 0; i < n; i++ {
		bytes := int64(1 + rng.Intn(5000))
		total += bytes
		at := sim.Time(rng.Intn(2000))
		eng.At(at, func(sim.Time) {
			l.Start(bytes, func(sim.Time) { completions++ })
		})
	}
	eng.Run()
	if completions != n {
		t.Fatalf("%d/%d transfers completed", completions, n)
	}
	st := l.Stats(float64(eng.Now()))
	if st.BytesMoved != total {
		t.Errorf("moved %d bytes, want %d", st.BytesMoved, total)
	}
	if rate := float64(st.BytesMoved) / st.BusyCycles; rate > 7*1.01 {
		t.Errorf("effective rate %.2f B/cycle beats the 7 B/cycle link", rate)
	}
	// Busy time is at least the back-to-back drain time of all bytes.
	if st.BusyCycles < float64(total)/7-1 {
		t.Errorf("busy %.0f cycles < serialized drain %.0f — bytes teleported", st.BusyCycles, float64(total)/7)
	}
}

// TestZeroByteTransfer still pays the latency and completes once.
func TestZeroByteTransfer(t *testing.T) {
	eng := sim.NewEngine()
	l, _ := NewLink(eng, "test", 10, 50)
	var at sim.Time
	fired := 0
	l.Start(0, func(now sim.Time) { at = now; fired++ })
	eng.Run()
	if fired != 1 || at < 50 || at > 52 {
		t.Errorf("zero-byte transfer fired %d times at %d, want once at ~50", fired, at)
	}
}

// TestDeterministicReplay: the same schedule replays to identical
// completion times and stats.
func TestDeterministicReplay(t *testing.T) {
	run := func() ([]sim.Time, Stats) {
		eng := sim.NewEngine()
		f, err := NewFabric(eng, 3, 5)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(7)
		var times []sim.Time
		for i := 0; i < 40; i++ {
			src, dst := rng.Intn(4), rng.Intn(4)
			bytes := int64(1 + rng.Intn(999))
			at := sim.Time(rng.Intn(500))
			eng.At(at, func(sim.Time) {
				f.Link(src, dst).Start(bytes, func(now sim.Time) { times = append(times, now) })
			})
		}
		eng.Run()
		return times, f.Stats(float64(eng.Now()))
	}
	t1, s1 := run()
	t2, s2 := run()
	if len(t1) != 40 || len(t2) != 40 {
		t.Fatalf("completions %d / %d, want 40", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("replay diverged at completion %d: %d vs %d", i, t1[i], t2[i])
		}
	}
	if s1 != s2 {
		t.Errorf("replay stats diverged: %+v vs %+v", s1, s2)
	}
}

// TestFabricPairIsolation: transfers on distinct chip pairs do not
// contend — two simultaneous transfers on different pairs finish in
// solo time, and the fabric reports two links.
func TestFabricPairIsolation(t *testing.T) {
	eng := sim.NewEngine()
	f, err := NewFabric(eng, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	var aAt, bAt sim.Time
	f.Link(0, 1).Start(1000, func(now sim.Time) { aAt = now })
	f.Link(2, 3).Start(1000, func(now sim.Time) { bAt = now })
	eng.Run()
	if aAt > 102 || bAt > 102 {
		t.Errorf("pair-isolated transfers at %d / %d, want both ~100 (no contention)", aAt, bAt)
	}
	if f.Links() != 2 {
		t.Errorf("fabric instantiated %d links, want 2", f.Links())
	}
	if st := f.Stats(float64(eng.Now())); st.BytesMoved != 2000 || st.PeakActive != 1 {
		t.Errorf("fabric stats %+v, want 2000 bytes, peak 1 per link", st)
	}
}

// TestBandwidthRescaleMidCopy pins the degraded-link timing model —
// and is the regression test for the progress-accounting skew: scaling
// a link that has NOT advanced its transfers to `now` first would
// retroactively re-price the whole elapsed interval at the new rate.
// 1000 B at 1 B/cycle, halved at t=500: the first 500 B drain at full
// rate, the remaining 500 B at 0.5 B/cycle take 1000 more cycles —
// completion at exactly 1500 (+ event quantization), not 2000 (whole
// copy at the degraded rate) and not 1000 (whole copy at full rate).
func TestBandwidthRescaleMidCopy(t *testing.T) {
	eng := sim.NewEngine()
	l, err := NewLink(eng, "test", 1, 0)
	if err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time
	l.Start(1000, func(now sim.Time) { doneAt = now })
	eng.At(500, func(sim.Time) {
		if err := l.SetBandwidthScale(0.5); err != nil {
			t.Errorf("SetBandwidthScale: %v", err)
		}
	})
	eng.Run()
	if doneAt < 1500 || doneAt > 1503 {
		t.Errorf("degraded copy completed at %d, want exactly 1500 (+≤3 quantization)", doneAt)
	}
	// Busy time covers the whole stretched copy; bytes are conserved.
	st := l.Stats(float64(eng.Now()))
	if st.BytesMoved != 1000 {
		t.Errorf("moved %d bytes, want 1000", st.BytesMoved)
	}
	if st.BusyCycles < 1500 || st.BusyCycles > 1503 {
		t.Errorf("busy %.0f cycles, want ~1500", st.BusyCycles)
	}

	// A flap (degrade then restore) splits the copy into three exact
	// phases: 250 B at 1 B/cycle, then 500 cycles at 0.25 B/cycle move
	// 125 B, then the remaining 625 B at full rate — 250+500+625 = 1375.
	eng = sim.NewEngine()
	l, _ = NewLink(eng, "test", 1, 0)
	doneAt = 0
	l.Start(1000, func(now sim.Time) { doneAt = now })
	eng.At(250, func(sim.Time) { _ = l.SetBandwidthScale(0.25) })
	eng.At(750, func(sim.Time) { _ = l.SetBandwidthScale(1) })
	eng.Run()
	if doneAt < 1375 || doneAt > 1379 {
		t.Errorf("flapped copy completed at %d, want exactly 1375 (+≤4 quantization)", doneAt)
	}
	if l.BandwidthScale() != 1 {
		t.Errorf("scale %v after restore, want 1", l.BandwidthScale())
	}

	if err := l.SetBandwidthScale(0); err == nil {
		t.Error("zero bandwidth scale accepted")
	}
	if err := l.SetBandwidthScale(-2); err == nil {
		t.Error("negative bandwidth scale accepted")
	}
	if err := l.SetBandwidthScale(math.Inf(1)); err == nil {
		t.Error("infinite bandwidth scale accepted")
	}
}

// TestFabricRescaleCoversFutureLinks: a fabric-wide degradation applies
// to links instantiated DURING the window too — a migration between a
// fresh chip pair inside an outage is just as slow as on existing pairs.
func TestFabricRescaleCoversFutureLinks(t *testing.T) {
	eng := sim.NewEngine()
	f, err := NewFabric(eng, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.Link(0, 1) // exists before the degradation
	if err := f.SetBandwidthScale(0.5); err != nil {
		t.Fatal(err)
	}
	var oldAt, newAt sim.Time
	f.Link(0, 1).Start(1000, func(now sim.Time) { oldAt = now })
	f.Link(2, 3).Start(1000, func(now sim.Time) { newAt = now }) // born degraded
	eng.Run()
	// Both at 5 B/cycle: 200 cycles.
	if oldAt < 200 || oldAt > 202 || newAt < 200 || newAt > 202 {
		t.Errorf("degraded transfers at %d / %d, want both ~200", oldAt, newAt)
	}
	if err := f.SetBandwidthScale(0); err == nil {
		t.Error("zero fabric scale accepted")
	}
}

// TestTransferCancel covers the three cancellation states: mid-payload
// (survivors reclaim bandwidth, no bytes counted), latency phase (bytes
// counted, done never fires), and post-completion (Cancel reports
// false). Exactly the semantics a chip crash needs: the dead endpoint's
// transfers vanish without their landing callbacks ever firing.
func TestTransferCancel(t *testing.T) {
	eng := sim.NewEngine()
	l, _ := NewLink(eng, "test", 10, 0)
	var aAt sim.Time
	bFired := false
	l.Start(2000, func(now sim.Time) { aAt = now })
	tb := l.Start(2000, func(sim.Time) { bFired = true })
	eng.At(100, func(sim.Time) {
		if !tb.Cancel() {
			t.Error("mid-payload cancel reported false")
		}
	})
	eng.Run()
	// Shared 5 B/cycle for 100 cycles (a has 1500 left), then solo at
	// 10 B/cycle: 150 more — a completes at 250, b never does.
	if bFired {
		t.Error("canceled transfer's done fired")
	}
	if aAt < 250 || aAt > 253 {
		t.Errorf("survivor completed at %d, want ~250 (reclaimed bandwidth)", aAt)
	}
	st := l.Stats(float64(eng.Now()))
	if st.BytesMoved != 2000 || st.Canceled != 1 || st.Transfers != 2 {
		t.Errorf("stats %+v, want 2000 B moved, 1 canceled of 2", st)
	}

	// Latency-phase cancel: payload drained (bytes count) but the
	// completion callback is suppressed.
	eng = sim.NewEngine()
	l, _ = NewLink(eng, "test", 10, 1000)
	cFired := false
	tc := l.Start(100, func(sim.Time) { cFired = true })
	eng.At(500, func(sim.Time) { // drain ends ~10; deep in the latency phase
		if !tc.Cancel() {
			t.Error("latency-phase cancel reported false")
		}
	})
	eng.Run()
	if cFired {
		t.Error("latency-phase canceled transfer's done fired")
	}
	if st := l.Stats(float64(eng.Now())); st.BytesMoved != 100 || st.Canceled != 1 {
		t.Errorf("stats %+v, want 100 B moved, 1 canceled", st)
	}

	// Post-completion cancel is a no-op.
	eng = sim.NewEngine()
	l, _ = NewLink(eng, "test", 10, 0)
	td := l.Start(100, func(sim.Time) {})
	eng.Run()
	if td.Cancel() {
		t.Error("cancel after completion reported true")
	}
	if st := l.Stats(float64(eng.Now())); st.Canceled != 0 {
		t.Errorf("completed-then-canceled transfer counted: %+v", st)
	}

	// Zero-byte transfers are cancelable in their (only) latency phase.
	eng = sim.NewEngine()
	l, _ = NewLink(eng, "test", 10, 50)
	zFired := false
	tz := l.Start(0, func(sim.Time) { zFired = true })
	eng.At(10, func(sim.Time) { tz.Cancel() })
	eng.Run()
	if zFired {
		t.Error("canceled zero-byte transfer's done fired")
	}
}

// TestLinkValidation rejects malformed shapes.
func TestLinkValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewLink(eng, "bad", 0, 0); err == nil {
		t.Error("zero-bandwidth link accepted")
	}
	if _, err := NewLink(eng, "bad", 1, -1); err == nil {
		t.Error("negative-latency link accepted")
	}
	if _, err := NewFabric(eng, -1, 0); err == nil {
		t.Error("negative-bandwidth fabric accepted")
	}
	if _, err := NewFabric(eng, 1, math.Inf(-1)); err == nil {
		t.Error("negative-latency fabric accepted")
	}
}
