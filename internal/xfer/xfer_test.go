package xfer

import (
	"math"
	"testing"

	"neu10/internal/sim"
)

// TestSoloTransferTiming pins the base timing model: a solo transfer of
// B bytes on a link of bw bytes/cycle completes after B/bw cycles plus
// the fixed latency (each scheduling hop may add up to one cycle of
// quantization, never more).
func TestSoloTransferTiming(t *testing.T) {
	eng := sim.NewEngine()
	l, err := NewLink(eng, "test", 10, 100)
	if err != nil {
		t.Fatal(err)
	}
	var doneAt sim.Time
	l.Start(1000, func(now sim.Time) { doneAt = now })
	eng.Run()
	// 1000 B at 10 B/cycle = 100 cycles drain + 100 latency = 200.
	if doneAt < 200 || doneAt > 202 {
		t.Errorf("solo transfer completed at %d, want 200 (+≤2 quantization)", doneAt)
	}
	st := l.Stats(float64(eng.Now()))
	if st.BytesMoved != 1000 || st.Transfers != 1 {
		t.Errorf("stats: %+v", st)
	}
	if st.BusyCycles < 100 || st.BusyCycles > 102 {
		t.Errorf("busy %v cycles, want ~100", st.BusyCycles)
	}
}

// TestMaxMinFairSharing: two equal transfers started together each get
// half the bandwidth and finish together at twice the solo drain time;
// a short transfer started alongside a long one finishes first, after
// which the long one reclaims the full bandwidth (the max-min
// re-division on membership change).
func TestMaxMinFairSharing(t *testing.T) {
	eng := sim.NewEngine()
	l, err := NewLink(eng, "test", 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	var aAt, bAt sim.Time
	l.Start(1000, func(now sim.Time) { aAt = now })
	l.Start(1000, func(now sim.Time) { bAt = now })
	eng.Run()
	// Each drains at 5 B/cycle: 200 cycles, together.
	if aAt < 200 || aAt > 202 || bAt != aAt {
		t.Errorf("equal pair completed at %d / %d, want both ~200", aAt, bAt)
	}

	eng = sim.NewEngine()
	l, _ = NewLink(eng, "test", 10, 0)
	var longAt, shortAt sim.Time
	l.Start(2000, func(now sim.Time) { longAt = now })
	l.Start(500, func(now sim.Time) { shortAt = now })
	eng.Run()
	// Shared until the short one drains: 500 B at 5 B/cycle = 100 cycles
	// (long has 1500 left). Then the long one runs solo: 150 more.
	if shortAt < 100 || shortAt > 102 {
		t.Errorf("short transfer at %d, want ~100", shortAt)
	}
	if longAt < 250 || longAt > 254 {
		t.Errorf("long transfer at %d, want ~250", longAt)
	}
	if got := l.Stats(float64(eng.Now())); got.PeakActive != 2 {
		t.Errorf("peak active %d, want 2", got.PeakActive)
	}
}

// TestWorkConservation: however transfers overlap, total bytes over
// total busy time can never beat the link bandwidth, and every started
// transfer completes exactly once.
func TestWorkConservation(t *testing.T) {
	eng := sim.NewEngine()
	l, err := NewLink(eng, "test", 7, 13)
	if err != nil {
		t.Fatal(err)
	}
	rng := sim.NewRNG(42)
	const n = 100
	completions := 0
	var total int64
	for i := 0; i < n; i++ {
		bytes := int64(1 + rng.Intn(5000))
		total += bytes
		at := sim.Time(rng.Intn(2000))
		eng.At(at, func(sim.Time) {
			l.Start(bytes, func(sim.Time) { completions++ })
		})
	}
	eng.Run()
	if completions != n {
		t.Fatalf("%d/%d transfers completed", completions, n)
	}
	st := l.Stats(float64(eng.Now()))
	if st.BytesMoved != total {
		t.Errorf("moved %d bytes, want %d", st.BytesMoved, total)
	}
	if rate := float64(st.BytesMoved) / st.BusyCycles; rate > 7*1.01 {
		t.Errorf("effective rate %.2f B/cycle beats the 7 B/cycle link", rate)
	}
	// Busy time is at least the back-to-back drain time of all bytes.
	if st.BusyCycles < float64(total)/7-1 {
		t.Errorf("busy %.0f cycles < serialized drain %.0f — bytes teleported", st.BusyCycles, float64(total)/7)
	}
}

// TestZeroByteTransfer still pays the latency and completes once.
func TestZeroByteTransfer(t *testing.T) {
	eng := sim.NewEngine()
	l, _ := NewLink(eng, "test", 10, 50)
	var at sim.Time
	fired := 0
	l.Start(0, func(now sim.Time) { at = now; fired++ })
	eng.Run()
	if fired != 1 || at < 50 || at > 52 {
		t.Errorf("zero-byte transfer fired %d times at %d, want once at ~50", fired, at)
	}
}

// TestDeterministicReplay: the same schedule replays to identical
// completion times and stats.
func TestDeterministicReplay(t *testing.T) {
	run := func() ([]sim.Time, Stats) {
		eng := sim.NewEngine()
		f, err := NewFabric(eng, 3, 5)
		if err != nil {
			t.Fatal(err)
		}
		rng := sim.NewRNG(7)
		var times []sim.Time
		for i := 0; i < 40; i++ {
			src, dst := rng.Intn(4), rng.Intn(4)
			bytes := int64(1 + rng.Intn(999))
			at := sim.Time(rng.Intn(500))
			eng.At(at, func(sim.Time) {
				f.Link(src, dst).Start(bytes, func(now sim.Time) { times = append(times, now) })
			})
		}
		eng.Run()
		return times, f.Stats(float64(eng.Now()))
	}
	t1, s1 := run()
	t2, s2 := run()
	if len(t1) != 40 || len(t2) != 40 {
		t.Fatalf("completions %d / %d, want 40", len(t1), len(t2))
	}
	for i := range t1 {
		if t1[i] != t2[i] {
			t.Fatalf("replay diverged at completion %d: %d vs %d", i, t1[i], t2[i])
		}
	}
	if s1 != s2 {
		t.Errorf("replay stats diverged: %+v vs %+v", s1, s2)
	}
}

// TestFabricPairIsolation: transfers on distinct chip pairs do not
// contend — two simultaneous transfers on different pairs finish in
// solo time, and the fabric reports two links.
func TestFabricPairIsolation(t *testing.T) {
	eng := sim.NewEngine()
	f, err := NewFabric(eng, 10, 0)
	if err != nil {
		t.Fatal(err)
	}
	var aAt, bAt sim.Time
	f.Link(0, 1).Start(1000, func(now sim.Time) { aAt = now })
	f.Link(2, 3).Start(1000, func(now sim.Time) { bAt = now })
	eng.Run()
	if aAt > 102 || bAt > 102 {
		t.Errorf("pair-isolated transfers at %d / %d, want both ~100 (no contention)", aAt, bAt)
	}
	if f.Links() != 2 {
		t.Errorf("fabric instantiated %d links, want 2", f.Links())
	}
	if st := f.Stats(float64(eng.Now())); st.BytesMoved != 2000 || st.PeakActive != 1 {
		t.Errorf("fabric stats %+v, want 2000 bytes, peak 1 per link", st)
	}
}

// TestLinkValidation rejects malformed shapes.
func TestLinkValidation(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewLink(eng, "bad", 0, 0); err == nil {
		t.Error("zero-bandwidth link accepted")
	}
	if _, err := NewLink(eng, "bad", 1, -1); err == nil {
		t.Error("negative-latency link accepted")
	}
	if _, err := NewFabric(eng, -1, 0); err == nil {
		t.Error("negative-bandwidth fabric accepted")
	}
	if _, err := NewFabric(eng, 1, math.Inf(-1)); err == nil {
		t.Error("negative-latency fabric accepted")
	}
}
