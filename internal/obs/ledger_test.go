package obs

import (
	"bytes"
	"testing"
)

// TestNilLedgerIsSafeAndFree locks the disabled-path contract down:
// every method of a nil *Ledger must no-op, and the whole hook surface
// must allocate nothing.
func TestNilLedgerIsSafeAndFree(t *testing.T) {
	var l *Ledger
	if l.Completed() != nil || l.Replicas() != nil {
		t.Fatal("nil ledger has records")
	}
	if l.Open() != 0 || l.Drops() != 0 || l.Violations() != 0 {
		t.Fatal("nil ledger has counters")
	}
	if tot := l.SegTotals("p"); tot != ([numSegments]float64{}) {
		t.Fatal("nil ledger has totals")
	}
	if err := l.WriteCSV(&bytes.Buffer{}); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		l.ReqStart("p", 1, 0)
		l.ReqSeg("p", 1, SegService, 1)
		l.ReqSuspend("p", 1, 2)
		l.ReqResume("p", 1, 3)
		l.ReqFirstToken("p", 1, 3)
		l.ReqDone("p", 1, 4, 2)
		l.ReqDrop("p", 2)
		l.RepSpawn("p", 0, 0)
		l.RepMark(0, BucketDecode, 1)
		l.RepCrash(0, 2)
		l.RepRetire(0, 3)
		l.FinishReps(4)
	})
	if allocs > 0 {
		t.Fatalf("nil ledger allocates %.1f objects per hook batch, want 0", allocs)
	}
}

// TestLedgerRequestConservation walks one request through a full
// excursion — queue, KV stall, prefill, a preempted decode gap, decode —
// and checks exact segment accounting plus the derived metrics.
func TestLedgerRequestConservation(t *testing.T) {
	l := NewLedger("run", 1e9)
	l.ReqStart("ten", 1, 100)
	l.ReqSeg("ten", 1, SegKVStall, 200)   // queue:   100
	l.ReqSeg("ten", 1, SegPrefill, 450)   // kv_stall: 250
	l.ReqFirstToken("ten", 1, 900)        //
	l.ReqSeg("ten", 1, SegDecodeGap, 900) // prefill: 450
	l.ReqSuspend("ten", 1, 1000)          // decode_gap: 100
	l.ReqSuspend("ten", 1, 1100)          // idempotent while suspended
	l.ReqResume("ten", 1, 1400)           // preempt: 400
	l.ReqSeg("ten", 1, SegDecode, 1500)   // decode_gap: +100
	l.ReqFirstToken("ten", 1, 1600)       // first call won; no restamp
	l.ReqDone("ten", 1, 2100, 5)          // decode:  600
	if v := l.Violations(); v != 0 {
		t.Fatalf("%d violations on a legal walk", v)
	}
	recs := l.Completed()
	if len(recs) != 1 || l.Open() != 0 {
		t.Fatalf("%d completed / %d open, want 1/0", len(recs), l.Open())
	}
	r := recs[0]
	want := map[Segment]float64{
		SegQueue: 100, SegKVStall: 250, SegPrefill: 450,
		SegDecodeGap: 200, SegPreempt: 400, SegDecode: 600,
	}
	for s, v := range want {
		if r.Seg[s] != v {
			t.Errorf("%s = %v cycles, want %v", s, r.Seg[s], v)
		}
	}
	if e := r.E2E(); e != 2000 {
		t.Errorf("E2E %v, want 2000", e)
	}
	if ttft := r.TTFT(); ttft != 800 {
		t.Errorf("TTFT %v, want 800 (first stamp wins)", ttft)
	}
	if tpot := r.TPOT(); tpot != 300 { // (2100-900)/(5-1)
		t.Errorf("TPOT %v, want 300", tpot)
	}
	if dom := r.Dominant(); dom != SegDecode {
		t.Errorf("dominant %s, want decode", dom)
	}
	if tot := l.SegTotals("ten"); tot[SegPreempt] != 400 {
		t.Errorf("tenant totals not folded: preempt %v, want 400", tot[SegPreempt])
	}
}

// TestLedgerReplicaConservation: bucket spans must partition each
// replica's lifetime, with crashes re-attributing the open span to
// BucketFaulted and FinishReps sealing survivors at end-of-run.
func TestLedgerReplicaConservation(t *testing.T) {
	l := NewLedger("run", 1e9)
	l.RepSpawn("ten", 0, 0)
	l.RepMark(0, BucketPrefill, 100) // idle: 100
	l.RepMark(0, BucketIdle, 400)    // prefill: 300
	l.RepMark(0, BucketDecode, 500)  // idle: +100
	l.RepCrash(0, 900)               // faulted: 400 (the open decode span)
	l.RepMark(0, BucketIdle, 950)    // sealed: must be ignored
	l.RepSpawn("ten", 1, 200)
	l.RepMark(1, BucketService, 300) // idle: 100
	l.FinishReps(1000)               // service: 700
	if v := l.Violations(); v != 0 {
		t.Fatalf("%d violations on a legal fleet history", v)
	}
	reps := l.Replicas()
	if len(reps) != 2 {
		t.Fatalf("%d replica records, want 2", len(reps))
	}
	crashed := reps[0]
	if crashed.Buckets[BucketFaulted] != 400 || crashed.Buckets[BucketDecode] != 0 {
		t.Errorf("crash did not re-attribute the open span: %v", crashed.Buckets)
	}
	if crashed.Lifetime() != 900 {
		t.Errorf("crashed lifetime %v, want 900", crashed.Lifetime())
	}
	for _, r := range reps {
		var sum float64
		for _, v := range r.Buckets {
			sum += v
		}
		if sum != r.Lifetime() {
			t.Errorf("replica %d buckets sum to %v, lifetime %v", r.UID, sum, r.Lifetime())
		}
	}
}

// TestLedgerViolations: protocol errors — double-start, hooks on
// unknown requests, a completion whose stamps cannot reconcile — must
// count instead of panicking or passing silently.
func TestLedgerViolations(t *testing.T) {
	l := NewLedger("run", 1e9)
	l.ReqStart("ten", 1, 0)
	l.ReqStart("ten", 1, 5)           // double start
	l.ReqSeg("ten", 99, SegDecode, 5) // unknown request
	l.ReqDone("ten", 98, 10, 0)       // unknown completion
	if v := l.Violations(); v != 3 {
		t.Fatalf("%d violations, want 3", v)
	}
	// A completion BEFORE the last transition stamp breaks telescoping
	// (the final interval goes negative on one segment and positive
	// nowhere else only if stamps run backwards — simulate that).
	l2 := NewLedger("run", 1e9)
	l2.ReqStart("ten", 1, 0)
	l2.ReqSeg("ten", 1, SegService, 100)
	r := l2.reqs[reqKey{"ten", 1}]
	r.Seg[SegQueue] += 7 // corrupt the books
	l2.ReqDone("ten", 1, 200, 0)
	if v := l2.Violations(); v != 1 {
		t.Fatalf("%d violations after corrupted books, want 1", v)
	}
}

// TestLedgerDrop: dropped requests leave the open set without entering
// the completed list, and double-drops do not double-count.
func TestLedgerDrop(t *testing.T) {
	l := NewLedger("run", 1e9)
	l.ReqStart("ten", 1, 0)
	l.ReqDrop("ten", 1)
	l.ReqDrop("ten", 1)
	if l.Open() != 0 || l.Drops() != 1 || len(l.Completed()) != 0 {
		t.Fatalf("open %d / drops %d / done %d, want 0/1/0", l.Open(), l.Drops(), len(l.Completed()))
	}
}

// TestLedgerCSV pins the export schema and determinism: long-format
// rows, nonzero entries only, requests in completion order then
// replicas as tenant "fleet", cycles converted to milliseconds.
func TestLedgerCSV(t *testing.T) {
	mk := func() *Ledger {
		l := NewLedger("run", 1e9) // 1e6 cycles per ms
		l.ReqStart("ten", 1, 0)
		l.ReqSeg("ten", 1, SegService, 2e6)
		l.ReqDone("ten", 1, 5e6, 0)
		l.RepSpawn("ten", 0, 0)
		l.RepMark(0, BucketService, 2e6)
		l.RepRetire(0, 5e6)
		return l
	}
	var buf bytes.Buffer
	if err := WriteLedgerCSVAll(&buf, []*Ledger{mk(), nil}); err != nil {
		t.Fatal(err)
	}
	want := LedgerCSVHeader +
		"run,ten,1,queue,2\n" +
		"run,ten,1,service,3\n" +
		"run,fleet,0,service,3\n" +
		"run,fleet,0,idle,2\n"
	if buf.String() != want {
		t.Fatalf("CSV:\n%q\nwant:\n%q", buf.String(), want)
	}
	var again bytes.Buffer
	if err := WriteLedgerCSVAll(&again, []*Ledger{mk(), nil}); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), again.Bytes()) {
		t.Fatal("ledger CSV export is not deterministic")
	}
}
