package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"neu10/internal/metrics"
)

// TestNilTracerIsSafeAndFree locks the disabled-path contract down: every
// method of a nil *Tracer must no-op without touching its arguments, and
// the whole hook surface must allocate nothing.
func TestNilTracerIsSafeAndFree(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	if tr.Len() != 0 || tr.Events() != nil {
		t.Fatal("nil tracer has events")
	}
	if tr.Gantt(0) != "" {
		t.Fatal("nil tracer renders a Gantt")
	}
	allocs := testing.AllocsPerRun(1000, func() {
		tr.NameTrack("p", 1, "label")
		tr.Span("exec", "exec", "p", 1, 0, 10, -1, "a", 1, "b", 2, "s", "v")
		tr.Begin("queue", "req", "p", 0, 7)
		tr.End("queue", "req", "p", 5, 7)
		tr.Instant("crash", "fault", "p", 0, 5, -1, "a", 1, "s", "v")
	})
	if allocs > 0 {
		t.Fatalf("nil tracer allocates %.1f objects per hook batch, want 0", allocs)
	}
}

// sampleTracer builds a small deterministic trace at 1 GHz (1e6 cycles
// per millisecond).
func sampleTracer() *Tracer {
	tr := NewTracer("run", 1e9)
	tr.NameTrack("ten", 2, "replica 0")
	tr.Begin("queue", "req", "ten", 0, 1)
	tr.End("queue", "req", "ten", 1e6, 1)
	tr.Begin("service", "req", "ten", 1e6, 1)
	tr.Span("invoke", "exec", "ten", 2, 1e6, 3e6, -1, "width", 2, "", 0, "tenant", "ten")
	tr.End("service", "req", "ten", 3e6, 1)
	tr.Instant("complete", "req", "ten", 0, 3e6, 1, "lat_us", 3000, "", "")
	return tr
}

// TestWriteChromeShape checks the export is valid Chrome trace-event
// JSON: a traceEvents envelope, metadata for named processes/tracks,
// microsecond stamps, and non-zero async ids.
func TestWriteChromeShape(t *testing.T) {
	var buf bytes.Buffer
	if err := sampleTracer().WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	var metas, asyncs, spans, instants int
	for _, e := range doc.TraceEvents {
		switch e["ph"] {
		case "M":
			metas++
		case "b", "e":
			asyncs++
			if id, _ := e["id"].(float64); id == 0 {
				t.Fatalf("async event %v has zero id", e)
			}
		case "X":
			spans++
			if e["dur"].(float64) != 2000 { // 2e6 cycles at 1 GHz = 2000 µs
				t.Fatalf("span dur %v µs, want 2000", e["dur"])
			}
		case "i":
			instants++
			if e["s"] != "t" {
				t.Fatalf("instant scope %v, want t", e["s"])
			}
		}
	}
	if metas < 2 { // process_name + thread_name
		t.Fatalf("%d metadata records, want >= 2", metas)
	}
	if asyncs != 4 || spans != 1 || instants != 1 {
		t.Fatalf("got %d async / %d span / %d instant events, want 4/1/1", asyncs, spans, instants)
	}
}

// TestWriteChromeDeterministic checks byte-identical re-export — the
// property the CI determinism leg diffs across worker counts.
func TestWriteChromeDeterministic(t *testing.T) {
	var a, b bytes.Buffer
	if err := sampleTracer().WriteChrome(&a); err != nil {
		t.Fatal(err)
	}
	if err := sampleTracer().WriteChrome(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two exports of the same event stream differ")
	}
}

// TestWriteChromeAllNamespaces checks merged traces keep runs apart via
// label-prefixed process names and disjoint pids.
func TestWriteChromeAllNamespaces(t *testing.T) {
	t1, t2 := sampleTracer(), sampleTracer()
	t2.Label = "other"
	var buf bytes.Buffer
	if err := WriteChromeAll(&buf, []*Tracer{t1, nil, t2}); err != nil {
		t.Fatal(err)
	}
	s := buf.String()
	if !strings.Contains(s, `"run: ten"`) || !strings.Contains(s, `"other: ten"`) {
		t.Fatalf("merged export lacks label-prefixed process names:\n%s", s)
	}
}

// TestGantt checks the per-request summary pairs phases and totals them.
func TestGantt(t *testing.T) {
	g := sampleTracer().Gantt(0)
	want := "  ten#1 @0.00ms:  queue 1.00ms  service 2.00ms  | total 3.00ms\n"
	if !strings.Contains(g, want) {
		t.Fatalf("Gantt output:\n%s\nwant line:\n%s", g, want)
	}
	if !strings.HasPrefix(g, "request Gantt (1 of 1 requests") {
		t.Fatalf("Gantt header: %q", g)
	}
	// maxReqs truncation.
	tr := sampleTracer()
	tr.Begin("queue", "req", "ten", 0, 2)
	tr.End("queue", "req", "ten", 5e5, 2)
	if g := tr.Gantt(1); strings.Contains(g, "ten#2") {
		t.Fatalf("Gantt(1) shows a second request:\n%s", g)
	}
}

// TestTimelineSetExports checks cycle→ms conversion, registration-order
// CSV, and the JSON schema.
func TestTimelineSetExports(t *testing.T) {
	s := NewTimelineSet("run", 1e9)
	s.Add("b", 1e6, 2)   // 1 ms
	s.Add("a", 1e6, 0.5) // registered second: must export second
	s.Add("b", 2e6, 3)
	var buf bytes.Buffer
	if err := WriteCSVAll(&buf, []*TimelineSet{s, nil}); err != nil {
		t.Fatal(err)
	}
	want := CSVHeader + "run,b,1,2\nrun,b,2,3\nrun,a,1,0.5\n"
	if buf.String() != want {
		t.Fatalf("CSV:\n%q\nwant:\n%q", buf.String(), want)
	}
	data, err := json.Marshal(s)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		Label  string  `json:"label"`
		FreqHz float64 `json:"freq_hz"`
		Series []struct {
			Name   string    `json:"name"`
			Times  []float64 `json:"times_ms"`
			Values []float64 `json:"values"`
		} `json:"series"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	if doc.Label != "run" || len(doc.Series) != 2 || doc.Series[0].Name != "b" {
		t.Fatalf("JSON schema mismatch: %s", data)
	}
}

// TestTimelineAttachReplaces checks Attach keeps registration order when
// replacing a same-named series.
func TestTimelineAttachReplaces(t *testing.T) {
	s := NewTimelineSet("run", 1e9)
	s.Add("x", 1e6, 1)
	s.Add("y", 1e6, 2)
	repl := metrics.NewTimeSeries("x", 0)
	repl.Add(5, 9)
	s.Attach(repl)
	if got := s.Get("x"); got != repl {
		t.Fatal("Attach did not replace the indexed series")
	}
	if s.Series()[0] != repl || s.Series()[1].Name != "y" {
		t.Fatal("Attach broke registration order")
	}
}

// TestWindowedRatio checks the sliding-window ratio math and the
// carry-forward rule on empty denominators.
func TestWindowedRatio(t *testing.T) {
	num := metrics.NewTimeSeries("ok", 0)
	den := metrics.NewTimeSeries("all", 0)
	// Cumulative: 4 arrivals/4 ok, then 4 more arrivals/2 ok, then idle.
	for i, p := range []struct{ n, d float64 }{{0, 0}, {4, 4}, {6, 8}, {6, 8}} {
		num.Add(float64(i), p.n)
		den.Add(float64(i), p.d)
	}
	win, err := WindowedRatio("w", num, den, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{1, 1, 0.5, 0.5} // idle tail carries 0.5 forward
	for i, w := range want {
		if win.Values[i] != w {
			t.Fatalf("win[%d] = %v, want %v (all %v)", i, win.Values[i], w, win.Values)
		}
	}
	short := metrics.NewTimeSeries("s", 0)
	if _, err := WindowedRatio("w", num, short, 1); err == nil {
		t.Fatal("length mismatch not rejected")
	}
}
