// Ledger is the attribution half of the observability subsystem: exact,
// conservation-checked accounting of where every cycle went.
//
// Two books are kept:
//
//   - Per-request segments: each tracked request is, at every instant
//     between arrival and completion, in exactly ONE segment (queued,
//     stalled on KV, computing a prefill, suspended by a preemption,
//     riding a migration, ...). Segment transitions close the open
//     interval into the outgoing segment's accumulator, so the segments
//     partition the lifetime by construction and sum EXACTLY — in
//     cycles, no epsilon — to completion−arrival. ReqDone checks that
//     invariant on every completion.
//   - Fleet cycle buckets: each replica is, at every instant between
//     spawn and retire, in exactly one bucket (prefill/decode/service
//     compute, migration, drain, faulted, idle), so Σ buckets equals the
//     replica's lifetime and, fleet-wide, the integrated capacity.
//     RepRetire/FinishReps check that per replica.
//
// Exactness leans on the simulator's clock: timestamps arrive as
// float64(sim.Time), integral values far below 2^53, so differences and
// telescoping sums are computed without rounding. A failed invariant
// increments Violations() instead of panicking — property tests assert
// it stays zero across every scenario.
//
// The Ledger follows the Tracer's design rules: every method is
// nil-receiver-safe (a disabled run passes nil and pays one pointer
// test per hook, allocating nothing), recording is single-threaded by
// the run's own event loop, and all output — records, CSV, totals — is
// a deterministic function of the simulation.
package obs

import (
	"io"
	"strconv"
	"strings"
)

// Segment identifies one exclusive state of a tracked request's
// lifetime. The set is exhaustive for the serving simulator's paths:
// single-shot, continuous/static LLM batching, paged KV (eviction
// recompute and swapping), chunked prefill + migration, preemptive
// sharing, and crash recovery.
type Segment uint8

const (
	// SegQueue: waiting in a slot queue for admission/batching.
	SegQueue Segment = iota
	// SegKVStall: at the head of the queue, admissible but for KV-cache
	// capacity (the accountant or pager could not grant the blocks).
	SegKVStall
	// SegService: single-shot whole-model batch compute.
	SegService
	// SegPrefill: prompt (or prompt-chunk) compute of the first pass.
	SegPrefill
	// SegChunkGap: admitted to a prefill slot, between prompt chunks.
	SegChunkGap
	// SegMigrate: KV migration — parked in the migration queue or in
	// flight on the interconnect (includes evacuation transfers).
	SegMigrate
	// SegDecode: decode-iteration compute the request participates in.
	SegDecode
	// SegDecodeGap: in the running set between decode iterations (or
	// between prefill completion and the first decode launch).
	SegDecodeGap
	// SegPreempt: suspended mid-service by a preemption.
	SegPreempt
	// SegSwapOut: paged KV being written to host memory after eviction.
	SegSwapOut
	// SegSwapQ: fully swapped out, waiting for residency to return.
	SegSwapQ
	// SegSwapIn: paged KV being read back from host memory.
	SegSwapIn
	// SegReplay: re-running prefill over tokens lost to an eviction
	// under the recompute policy.
	SegReplay
	// SegCrashRequeue: back in a queue after the serving replica
	// crashed.
	SegCrashRequeue
	// SegCrashReplay: re-running prefill over the prompt plus any
	// generated prefix lost to a crash.
	SegCrashReplay

	numSegments
)

// NumSegments is the number of request segments.
const NumSegments = int(numSegments)

var segmentNames = [...]string{
	SegQueue:        "queue",
	SegKVStall:      "kv_stall",
	SegService:      "service",
	SegPrefill:      "prefill",
	SegChunkGap:     "chunk_gap",
	SegMigrate:      "migrate",
	SegDecode:       "decode",
	SegDecodeGap:    "decode_gap",
	SegPreempt:      "preempt",
	SegSwapOut:      "swap_out",
	SegSwapQ:        "swap_q",
	SegSwapIn:       "swap_in",
	SegReplay:       "replay",
	SegCrashRequeue: "crash_requeue",
	SegCrashReplay:  "crash_replay",
}

func (s Segment) String() string {
	if int(s) < len(segmentNames) {
		return segmentNames[s]
	}
	return "segment(" + strconv.Itoa(int(s)) + ")"
}

// Bucket identifies one exclusive state of a replica's lifetime in the
// fleet cycle ledger.
type Bucket uint8

const (
	// BucketPrefill: running a prefill (or chunked-prefill) batch.
	BucketPrefill Bucket = iota
	// BucketDecode: running a decode-iteration batch.
	BucketDecode
	// BucketService: running a single-shot whole-model batch.
	BucketService
	// BucketMigration: otherwise idle but holding in-flight inbound KV
	// transfers (a slot that must not retire, doing wire work).
	BucketMigration
	// BucketDrain: draining — refused new work, finishing off or empty.
	BucketDrain
	// BucketFaulted: compute destroyed by a crash — the open busy span
	// at teardown time is re-attributed here.
	BucketFaulted
	// BucketIdle: in service, no work bound.
	BucketIdle

	numBuckets
)

// NumBuckets is the number of replica cycle buckets.
const NumBuckets = int(numBuckets)

var bucketNames = [...]string{
	BucketPrefill:   "prefill",
	BucketDecode:    "decode",
	BucketService:   "service",
	BucketMigration: "migration",
	BucketDrain:     "drain",
	BucketFaulted:   "faulted",
	BucketIdle:      "idle",
}

func (b Bucket) String() string {
	if int(b) < len(bucketNames) {
		return bucketNames[b]
	}
	return "bucket(" + strconv.Itoa(int(b)) + ")"
}

// ReqRecord is one completed request's segment decomposition. All
// times are in cycles.
type ReqRecord struct {
	Proc      string // owning tenant
	ID        int64  // tenant-scoped request id
	Arrive    float64
	Done      float64
	FirstTok  float64 // first-token emission (0: none recorded)
	OutTokens int     // tokens produced (0 for single-shot requests)
	Seg       [numSegments]float64

	cur       Segment
	since     float64
	susp      Segment // segment to restore on resume
	suspended bool
}

// E2E is the request's end-to-end latency in cycles.
func (r *ReqRecord) E2E() float64 { return r.Done - r.Arrive }

// TTFT is the first-token latency in cycles (0 when no token event was
// recorded — single-shot requests).
func (r *ReqRecord) TTFT() float64 {
	if r.FirstTok == 0 {
		return 0
	}
	return r.FirstTok - r.Arrive
}

// TPOT is the mean time per output token after the first, in cycles
// (0 when fewer than two tokens were produced).
func (r *ReqRecord) TPOT() float64 {
	if r.FirstTok == 0 || r.OutTokens < 2 {
		return 0
	}
	return (r.Done - r.FirstTok) / float64(r.OutTokens-1)
}

// Dominant returns the segment holding the largest share of the
// request's lifetime, with ties broken by segment order.
func (r *ReqRecord) Dominant() Segment {
	best := Segment(0)
	for s := Segment(1); s < numSegments; s++ {
		if r.Seg[s] > r.Seg[best] {
			best = s
		}
	}
	return best
}

// RepRecord is one replica's cycle-bucket decomposition. UID is the
// fleet-unique spawn ordinal; Proc the owning tenant.
type RepRecord struct {
	Proc    string
	UID     int
	Spawn   float64
	End     float64
	Buckets [numBuckets]float64

	cur   Bucket
	since float64
	open  bool
}

// Lifetime is the replica's in-service span in cycles.
func (r *RepRecord) Lifetime() float64 { return r.End - r.Spawn }

type reqKey struct {
	proc string
	id   int64
}

// Ledger is the attribution recorder for one run. A nil *Ledger is the
// disabled state: every method is a no-op behind one nil test.
type Ledger struct {
	Label  string  // run label (scenario)
	FreqHz float64 // cycles per second, for cycle→ms conversion

	reqs map[reqKey]*ReqRecord // open (in-flight) requests
	done []*ReqRecord          // completed, in completion order

	reps     map[int]*RepRecord
	repOrder []int // spawn order

	// totals accumulates completed requests' segments per tenant — the
	// cheap cumulative series the attribution timeline samples.
	totals map[string]*[numSegments]float64

	drops      int
	violations int
}

// NewLedger builds an empty attribution ledger for one run.
func NewLedger(label string, freqHz float64) *Ledger {
	return &Ledger{
		Label:  label,
		FreqHz: freqHz,
		reqs:   map[reqKey]*ReqRecord{},
		reps:   map[int]*RepRecord{},
		totals: map[string]*[numSegments]float64{},
	}
}

// close folds the open interval into the current segment and restamps.
func (r *ReqRecord) close(at float64) {
	r.Seg[r.cur] += at - r.since
	r.since = at
}

// ReqStart opens a request record at its arrival instant; the request
// starts in SegQueue. Double-starts count as violations.
func (l *Ledger) ReqStart(proc string, id int64, at float64) {
	if l == nil {
		return
	}
	k := reqKey{proc, id}
	if _, ok := l.reqs[k]; ok {
		l.violations++
		return
	}
	l.reqs[k] = &ReqRecord{Proc: proc, ID: id, Arrive: at, cur: SegQueue, since: at}
}

// ReqSeg transitions the request into seg, closing the open interval
// into the outgoing segment. Unknown requests (a hook firing before
// ReqStart) count as violations.
func (l *Ledger) ReqSeg(proc string, id int64, seg Segment, at float64) {
	if l == nil {
		return
	}
	r := l.reqs[reqKey{proc, id}]
	if r == nil {
		l.violations++
		return
	}
	r.close(at)
	r.cur = seg
	r.suspended = false
}

// ReqSuspend parks the request in SegPreempt, remembering the segment
// to restore on resume. Idempotent while suspended.
func (l *Ledger) ReqSuspend(proc string, id int64, at float64) {
	if l == nil {
		return
	}
	r := l.reqs[reqKey{proc, id}]
	if r == nil || r.suspended {
		return
	}
	r.close(at)
	r.susp = r.cur
	r.cur = SegPreempt
	r.suspended = true
}

// ReqResume restores the segment ReqSuspend parked.
func (l *Ledger) ReqResume(proc string, id int64, at float64) {
	if l == nil {
		return
	}
	r := l.reqs[reqKey{proc, id}]
	if r == nil || !r.suspended {
		return
	}
	r.close(at)
	r.cur = r.susp
	r.suspended = false
}

// ReqFirstToken stamps the request's first-token emission (first call
// wins — a crash replay whose token was already delivered must not
// restamp).
func (l *Ledger) ReqFirstToken(proc string, id int64, at float64) {
	if l == nil {
		return
	}
	if r := l.reqs[reqKey{proc, id}]; r != nil && r.FirstTok == 0 {
		r.FirstTok = at
	}
}

// ReqDone closes the record at the completion instant, checks the
// conservation invariant (Σ segments == done − arrive, exactly) and
// moves the record to the completed list.
func (l *Ledger) ReqDone(proc string, id int64, at float64, outTokens int) {
	if l == nil {
		return
	}
	k := reqKey{proc, id}
	r := l.reqs[k]
	if r == nil {
		l.violations++
		return
	}
	r.close(at)
	r.Done = at
	r.OutTokens = outTokens
	var sum float64
	for _, v := range r.Seg {
		sum += v
	}
	if sum != at-r.Arrive {
		l.violations++
	}
	delete(l.reqs, k)
	l.done = append(l.done, r)
	tot := l.totals[proc]
	if tot == nil {
		tot = new([numSegments]float64)
		l.totals[proc] = tot
	}
	for i, v := range r.Seg {
		tot[i] += v
	}
}

// ReqDrop discards an open record — a request lost to a crash or a
// recovery policy, whose lifetime will never complete.
func (l *Ledger) ReqDrop(proc string, id int64) {
	if l == nil {
		return
	}
	k := reqKey{proc, id}
	if l.reqs[k] != nil {
		delete(l.reqs, k)
		l.drops++
	}
}

// RepSpawn opens a replica's cycle record; it starts in BucketIdle.
func (l *Ledger) RepSpawn(proc string, uid int, at float64) {
	if l == nil {
		return
	}
	if _, ok := l.reps[uid]; ok {
		l.violations++
		return
	}
	l.reps[uid] = &RepRecord{Proc: proc, UID: uid, Spawn: at, cur: BucketIdle, since: at, open: true}
	l.repOrder = append(l.repOrder, uid)
}

// RepMark transitions the replica into bucket b, closing the open span
// into the outgoing bucket.
func (l *Ledger) RepMark(uid int, b Bucket, at float64) {
	if l == nil {
		return
	}
	r := l.reps[uid]
	if r == nil || !r.open {
		return
	}
	r.Buckets[r.cur] += at - r.since
	r.since = at
	r.cur = b
}

// RepCrash ends a replica's lifetime at a fault, re-attributing the
// open span — whatever work was in flight — to BucketFaulted.
func (l *Ledger) RepCrash(uid int, at float64) {
	if l == nil {
		return
	}
	r := l.reps[uid]
	if r == nil || !r.open {
		return
	}
	r.Buckets[BucketFaulted] += at - r.since
	r.since = at
	l.sealRep(r, at)
}

// RepRetire ends a replica's lifetime at a graceful retire.
func (l *Ledger) RepRetire(uid int, at float64) {
	if l == nil {
		return
	}
	r := l.reps[uid]
	if r == nil || !r.open {
		return
	}
	r.Buckets[r.cur] += at - r.since
	r.since = at
	l.sealRep(r, at)
}

// sealRep closes the record and checks bucket conservation.
func (l *Ledger) sealRep(r *RepRecord, at float64) {
	r.End = at
	r.open = false
	var sum float64
	for _, v := range r.Buckets {
		sum += v
	}
	if sum != r.End-r.Spawn {
		l.violations++
	}
}

// FinishReps seals every still-open replica record at the end-of-run
// instant, so Σ buckets == integrated capacity over the whole fleet.
func (l *Ledger) FinishReps(at float64) {
	if l == nil {
		return
	}
	for _, uid := range l.repOrder {
		if r := l.reps[uid]; r.open {
			r.Buckets[r.cur] += at - r.since
			r.since = at
			l.sealRep(r, at)
		}
	}
}

// Completed lists completed request records in completion order.
func (l *Ledger) Completed() []*ReqRecord {
	if l == nil {
		return nil
	}
	return l.done
}

// Replicas lists replica records in spawn order.
func (l *Ledger) Replicas() []*RepRecord {
	if l == nil {
		return nil
	}
	out := make([]*RepRecord, 0, len(l.repOrder))
	for _, uid := range l.repOrder {
		out = append(out, l.reps[uid])
	}
	return out
}

// SegTotals returns the cumulative completed-request segment cycles of
// one tenant (zeros for an unknown tenant).
func (l *Ledger) SegTotals(proc string) [numSegments]float64 {
	if l == nil {
		return [numSegments]float64{}
	}
	if tot := l.totals[proc]; tot != nil {
		return *tot
	}
	return [numSegments]float64{}
}

// Open counts requests still in flight (must be zero once a run has
// fully drained — every admitted request completes or is dropped).
func (l *Ledger) Open() int {
	if l == nil {
		return 0
	}
	return len(l.reqs)
}

// Drops counts records discarded by ReqDrop.
func (l *Ledger) Drops() int {
	if l == nil {
		return 0
	}
	return l.drops
}

// Violations counts conservation-invariant failures and hook-protocol
// errors; zero on every healthy run.
func (l *Ledger) Violations() int {
	if l == nil {
		return 0
	}
	return l.violations
}

// LedgerCSVHeader is the column row matching WriteCSV: one row per
// nonzero request segment (tenant/req keyed) and, with tenant "fleet",
// one row per nonzero replica bucket (req column carries the uid).
const LedgerCSVHeader = "run,tenant,req,segment,ms\n"

// WriteCSV emits the ledger in long format, requests in completion
// order then replicas in spawn order, segments in taxonomy order.
// Floats use the shortest round-trip representation, so the bytes are
// a deterministic function of the records.
func (l *Ledger) WriteCSV(w io.Writer) error {
	if l == nil {
		return nil
	}
	ms := func(cycles float64) string {
		return strconv.FormatFloat(cycles/l.FreqHz*1e3, 'g', -1, 64)
	}
	var b strings.Builder
	row := func(tenant, req, seg, val string) {
		b.WriteString(l.Label)
		b.WriteByte(',')
		b.WriteString(tenant)
		b.WriteByte(',')
		b.WriteString(req)
		b.WriteByte(',')
		b.WriteString(seg)
		b.WriteByte(',')
		b.WriteString(val)
		b.WriteByte('\n')
	}
	for _, r := range l.done {
		id := strconv.FormatInt(r.ID, 10)
		for s, v := range r.Seg {
			if v > 0 {
				row(r.Proc, id, Segment(s).String(), ms(v))
			}
		}
	}
	for _, uid := range l.repOrder {
		r := l.reps[uid]
		id := strconv.Itoa(r.UID)
		for bk, v := range r.Buckets {
			if v > 0 {
				row("fleet", id, Bucket(bk).String(), ms(v))
			}
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteLedgerCSVAll concatenates several runs' ledgers under one header.
func WriteLedgerCSVAll(w io.Writer, ls []*Ledger) error {
	if _, err := io.WriteString(w, LedgerCSVHeader); err != nil {
		return err
	}
	for _, l := range ls {
		if err := l.WriteCSV(w); err != nil {
			return err
		}
	}
	return nil
}
