// Timeline half of the observability subsystem: a sampled registry of
// named time series — gauges sampled on the obs tick, counters diffed
// into rates, rolling-histogram percentiles — exported as CSV or JSON
// so a chaos or disagg run can be plotted over time (attainment dips,
// time-to-recover, link backlog) instead of read as one scalar.
package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"neu10/internal/metrics"
)

// TimelineSet is an ordered registry of time series for one run. Times
// are milliseconds of sim time; series appear in first-Track order, so
// every export is deterministic.
type TimelineSet struct {
	Label  string  // run label (scenario), carried into merged exports
	FreqHz float64 // cycles per second, for cycle→ms conversion

	series []*metrics.TimeSeries
	index  map[string]*metrics.TimeSeries
}

// NewTimelineSet builds an empty registry on a sim clock of freqHz.
func NewTimelineSet(label string, freqHz float64) *TimelineSet {
	return &TimelineSet{Label: label, FreqHz: freqHz, index: map[string]*metrics.TimeSeries{}}
}

// Track returns the named series, creating it (unbounded) on first use.
func (s *TimelineSet) Track(name string) *metrics.TimeSeries {
	if ts, ok := s.index[name]; ok {
		return ts
	}
	ts := metrics.NewTimeSeries(name, 0)
	s.index[name] = ts
	s.series = append(s.series, ts)
	return ts
}

// Add appends one sample to the named series; atCycles converts to ms.
func (s *TimelineSet) Add(name string, atCycles, v float64) {
	s.Track(name).Add(atCycles/s.FreqHz*1e3, v)
}

// Attach adopts an externally built series (times already in ms) under
// its own name, replacing any same-named track.
func (s *TimelineSet) Attach(ts *metrics.TimeSeries) {
	if old, ok := s.index[ts.Name]; ok {
		for i, cur := range s.series {
			if cur == old {
				s.series[i] = ts
				break
			}
		}
		s.index[ts.Name] = ts
		return
	}
	s.index[ts.Name] = ts
	s.series = append(s.series, ts)
}

// Series lists the registered series in registration order.
func (s *TimelineSet) Series() []*metrics.TimeSeries {
	if s == nil {
		return nil
	}
	return s.series
}

// Get returns the named series, or nil.
func (s *TimelineSet) Get(name string) *metrics.TimeSeries {
	if s == nil {
		return nil
	}
	return s.index[name]
}

// MarshalJSON exports {label, freq_hz, series:[{name,times_ms,values}]}.
func (s *TimelineSet) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Label  string                `json:"label,omitempty"`
		FreqHz float64               `json:"freq_hz"`
		Series []*metrics.TimeSeries `json:"series"`
	}{s.Label, s.FreqHz, s.series})
}

// WriteCSV emits the set in long format — run,series,time_ms,value —
// one row per sample, series in registration order. Floats use the
// shortest round-trip representation, so the bytes are a deterministic
// function of the samples.
func (s *TimelineSet) WriteCSV(w io.Writer) error {
	if s == nil {
		return nil
	}
	var b strings.Builder
	for _, ts := range s.series {
		for i := range ts.Times {
			b.WriteString(s.Label)
			b.WriteByte(',')
			b.WriteString(ts.Name)
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(ts.Times[i], 'g', -1, 64))
			b.WriteByte(',')
			b.WriteString(strconv.FormatFloat(ts.Values[i], 'g', -1, 64))
			b.WriteByte('\n')
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// CSVHeader is the column row matching WriteCSV.
const CSVHeader = "run,series,time_ms,value\n"

// WriteCSVAll concatenates several runs' timelines under one header.
func WriteCSVAll(w io.Writer, sets []*TimelineSet) error {
	if _, err := io.WriteString(w, CSVHeader); err != nil {
		return err
	}
	for _, s := range sets {
		if s == nil {
			continue
		}
		if err := s.WriteCSV(w); err != nil {
			return err
		}
	}
	return nil
}

// WindowedRatio derives a sliding-window ratio series from cumulative
// numerator and denominator series sampled on the same tick grid:
// out[i] = (num[i]-num[i-w]) / (den[i]-den[i-w]), the attainment (or
// hit-rate) over the trailing w samples. Intervals with an empty
// denominator carry the previous value forward (1 before any traffic),
// so the series plots cleanly. The input series must be equal-length.
func WindowedRatio(name string, num, den *metrics.TimeSeries, w int) (*metrics.TimeSeries, error) {
	if len(num.Times) != len(den.Times) {
		return nil, fmt.Errorf("obs: windowed ratio %s: series lengths differ (%d vs %d)", name, len(num.Times), len(den.Times))
	}
	if w < 1 {
		w = 1
	}
	out := metrics.NewTimeSeries(name, 0)
	prev := 1.0
	for i := range num.Times {
		j := i - w
		var n0, d0 float64
		if j >= 0 {
			n0, d0 = num.Values[j], den.Values[j]
		}
		if d := den.Values[i] - d0; d > 0 {
			prev = (num.Values[i] - n0) / d
		}
		out.Add(num.Times[i], prev)
	}
	return out, nil
}
