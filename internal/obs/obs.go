// Package obs is the serving simulator's observability substrate:
// deterministic request-lifecycle tracing and time-resolved telemetry,
// both driven entirely by the sim clock.
//
// The design contract, shared with internal/serve:
//
//   - Zero overhead when disabled. Every Tracer method is safe on a nil
//     receiver and returns immediately without touching its arguments,
//     so instrumentation sites cost one nil check and no allocations
//     when observability is off — fault-free, trace-free runs stay
//     byte-identical and benchmarks stay flat.
//   - Deterministic when enabled. Events carry sim-clock cycle stamps
//     and are folded in creation order by the single-threaded event
//     loop that owns the Tracer; no wall clock, no map iteration, no
//     goroutine interleaving touches the recorded stream. Exports are
//     therefore byte-identical at any worker count.
//
// Two export surfaces:
//
//   - WriteChrome/WriteChromeAll emit Chrome trace-event JSON (the
//     "JSON Array Format" with a traceEvents envelope) loadable in
//     Perfetto (https://ui.perfetto.dev) or chrome://tracing. Replica
//     service segments are complete ("X") slices on per-replica
//     tracks; per-request lifecycle phases (queue, prefill, migrate,
//     decode) are async ("b"/"e") pairs keyed by request id; control
//     and fault actions are instant ("i") events.
//   - Gantt renders a compact per-request phase summary as text.
//
// Time-resolved metrics live in TimelineSet (timeline.go).
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// Event phase markers, a subset of the Chrome trace-event phases.
const (
	PhaseSpan    = byte('X') // complete slice: Start..Start+Dur on a track
	PhaseBegin   = byte('b') // async begin, paired by (Proc, Req, Name)
	PhaseEnd     = byte('e') // async end
	PhaseInstant = byte('i') // point event
)

// Event is one trace record. Fields are fixed and scalar so emitting an
// event is a single slice append — no maps, no interfaces, no boxing.
type Event struct {
	Name  string  // what happened ("queue", "llm-decode", "crash", ...)
	Cat   string  // category ("req", "exec", "control", "fault", ...)
	Ph    byte    // PhaseSpan, PhaseBegin, PhaseEnd or PhaseInstant
	Proc  string  // process label (tenant name, or "fleet")
	Track int32   // thread within the process (PhaseSpan/PhaseInstant)
	Start float64 // sim cycles
	Dur   float64 // sim cycles (PhaseSpan only)
	Req   int64   // request id for lifecycle events, -1 otherwise

	// Up to two numeric args and one string arg, keyed; empty keys are
	// omitted from the export.
	AK, BK string
	AV, BV int64
	SK, SV string
}

// trackKey identifies one named track.
type trackKey struct {
	proc  string
	track int32
}

// Tracer accumulates events for one simulation run. A nil *Tracer is
// the disabled state: every method no-ops. Construct with NewTracer
// only when tracing is on.
type Tracer struct {
	// Label namespaces this run's processes when several runs' traces
	// are merged into one file (WriteChromeAll); empty for a lone run.
	Label string

	freqHz float64
	events []Event
	names  map[trackKey]string
	order  []trackKey
}

// NewTracer builds an enabled tracer; freqHz converts cycle stamps to
// microseconds at export time.
func NewTracer(label string, freqHz float64) *Tracer {
	return &Tracer{Label: label, freqHz: freqHz, names: map[trackKey]string{}}
}

// Enabled reports whether the tracer records anything.
func (t *Tracer) Enabled() bool { return t != nil }

// Len returns the number of recorded events.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	return len(t.events)
}

// Events exposes the recorded stream in fold order (tests, Gantt).
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	return t.events
}

// NameTrack labels a (proc, track) pair in the export ("replica 3
// (decode, chip 5)"). First writer wins; renaming is a no-op.
func (t *Tracer) NameTrack(proc string, track int32, label string) {
	if t == nil {
		return
	}
	k := trackKey{proc, track}
	if _, ok := t.names[k]; ok {
		return
	}
	t.names[k] = label
	t.order = append(t.order, k)
}

// Span records a complete slice on a track: [start, end) cycles.
func (t *Tracer) Span(name, cat, proc string, track int32, start, end float64, req int64, ak string, av int64, bk string, bv int64, sk, sv string) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Name: name, Cat: cat, Ph: PhaseSpan, Proc: proc,
		Track: track, Start: start, Dur: end - start, Req: req,
		AK: ak, AV: av, BK: bk, BV: bv, SK: sk, SV: sv})
}

// Begin opens an async lifecycle phase for request req.
func (t *Tracer) Begin(name, cat, proc string, at float64, req int64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Name: name, Cat: cat, Ph: PhaseBegin, Proc: proc, Start: at, Req: req})
}

// End closes the matching async phase.
func (t *Tracer) End(name, cat, proc string, at float64, req int64) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Name: name, Cat: cat, Ph: PhaseEnd, Proc: proc, Start: at, Req: req})
}

// Instant records a point event on a track.
func (t *Tracer) Instant(name, cat, proc string, track int32, at float64, req int64, ak string, av int64, sk, sv string) {
	if t == nil {
		return
	}
	t.events = append(t.events, Event{Name: name, Cat: cat, Ph: PhaseInstant, Proc: proc,
		Track: track, Start: at, Req: req, AK: ak, AV: av, SK: sk, SV: sv})
}

// ---- Chrome trace-event export ----

// chromeMeta is a metadata record (process_name / thread_name).
type chromeMeta struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args"`
}

// chromeEvent is one exported record. encoding/json preserves struct
// field order and sorts map keys, so the byte stream is a pure function
// of the event sequence.
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"` // microseconds
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid,omitempty"`
	ID   int64          `json:"id,omitempty"` // async pairing
	S    string         `json:"s,omitempty"`  // instant scope
	Args map[string]any `json:"args,omitempty"`
}

// WriteChrome exports the tracer's events as Chrome trace-event JSON.
func (t *Tracer) WriteChrome(w io.Writer) error {
	return WriteChromeAll(w, []*Tracer{t})
}

// WriteChromeAll merges several runs' traces into one Chrome JSON file:
// each tracer's processes are namespaced by its Label and assigned
// disjoint pids, in slice order. Nil tracers are skipped.
//
// Records stream to w one at a time — peak memory is one marshaled
// record, not a second copy of the whole trace. The bytes are the same
// as encoding the full slice in one Encoder.Encode: compact JSON
// inside a traceEvents envelope, trailing newline, and the legacy
// `{"traceEvents":null}` form when nothing at all is emitted.
func WriteChromeAll(w io.Writer, traces []*Tracer) error {
	bw := bufio.NewWriter(w)
	var werr error
	n := 0
	emit := func(v any) {
		if werr != nil {
			return
		}
		var data []byte
		if data, werr = json.Marshal(v); werr != nil {
			return
		}
		if n == 0 {
			_, werr = bw.WriteString(`{"traceEvents":[`)
		} else {
			werr = bw.WriteByte(',')
		}
		if werr == nil {
			n++
			_, werr = bw.Write(data)
		}
	}
	pids := map[string]int{} // prefixed proc -> pid, first-seen order
	pid := func(proc string) int {
		p, ok := pids[proc]
		if !ok {
			p = len(pids) + 1
			pids[proc] = p
			emit(chromeMeta{Name: "process_name", Ph: "M", Pid: p,
				Args: map[string]any{"name": proc}})
		}
		return p
	}
	for _, t := range traces {
		if t == nil {
			continue
		}
		prefix := ""
		if t.Label != "" {
			prefix = t.Label + ": "
		}
		toUs := 1e6 / t.freqHz
		for _, k := range t.order { // declared track names, declaration order
			emit(chromeMeta{Name: "thread_name", Ph: "M",
				Pid: pid(prefix + k.proc), Tid: int(k.track),
				Args: map[string]any{"name": t.names[k]}})
		}
		for i := range t.events {
			e := &t.events[i]
			ce := chromeEvent{Name: e.Name, Cat: e.Cat, Ph: string(e.Ph),
				Ts: e.Start * toUs, Pid: pid(prefix + e.Proc)}
			switch e.Ph {
			case PhaseSpan:
				ce.Tid = int(e.Track)
				ce.Dur = e.Dur * toUs
			case PhaseBegin, PhaseEnd:
				ce.ID = e.Req + 1 // ids must be non-zero
			case PhaseInstant:
				ce.Tid = int(e.Track)
				ce.S = "t"
			}
			if e.Req >= 0 || e.AK != "" || e.BK != "" || e.SK != "" {
				args := make(map[string]any, 4)
				if e.Req >= 0 {
					args["req"] = e.Req
				}
				if e.AK != "" {
					args[e.AK] = e.AV
				}
				if e.BK != "" {
					args[e.BK] = e.BV
				}
				if e.SK != "" {
					args[e.SK] = e.SV
				}
				ce.Args = args
			}
			emit(ce)
		}
	}
	if werr != nil {
		return werr
	}
	if n == 0 {
		// An empty merge encoded a nil slice before; keep those bytes.
		if _, err := bw.WriteString(`{"traceEvents":null}`); err != nil {
			return err
		}
	} else if _, err := bw.WriteString(`]}`); err != nil {
		return err
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	return bw.Flush()
}

// ---- Gantt summary ----

// ganttPhase is one closed lifecycle phase of a request.
type ganttPhase struct {
	name       string
	start, end float64
}

// ganttReq collects one request's phases, keyed by (proc, req).
type ganttReq struct {
	proc   string
	req    int64
	phases []ganttPhase
}

// Gantt renders a compact per-request phase summary of the trace: one
// line per request (first maxReqs by first-event order; 0 = all),
// listing each closed async phase with its duration in milliseconds.
// Only requests with at least one closed phase appear.
func (t *Tracer) Gantt(maxReqs int) string {
	if t == nil {
		return ""
	}
	type key struct {
		proc string
		req  int64
	}
	open := map[key]map[string]float64{}
	byReq := map[key]*ganttReq{}
	var order []key
	for i := range t.events {
		e := &t.events[i]
		if e.Req < 0 || (e.Ph != PhaseBegin && e.Ph != PhaseEnd) {
			continue
		}
		k := key{e.Proc, e.Req}
		if e.Ph == PhaseBegin {
			if open[k] == nil {
				open[k] = map[string]float64{}
			}
			open[k][e.Name] = e.Start
			continue
		}
		st, ok := open[k][e.Name]
		if !ok {
			continue
		}
		delete(open[k], e.Name)
		r := byReq[k]
		if r == nil {
			r = &ganttReq{proc: k.proc, req: k.req}
			byReq[k] = r
			order = append(order, k)
		}
		r.phases = append(r.phases, ganttPhase{e.Name, st, e.Start})
	}
	if maxReqs > 0 && len(order) > maxReqs {
		order = order[:maxReqs]
	}
	msPer := t.freqHz / 1e3
	var b strings.Builder
	fmt.Fprintf(&b, "request Gantt (%d of %d requests with closed phases)\n", len(order), len(byReq))
	for _, k := range order {
		r := byReq[k]
		sort.SliceStable(r.phases, func(i, j int) bool { return r.phases[i].start < r.phases[j].start })
		t0 := r.phases[0].start
		tEnd := t0
		for _, p := range r.phases {
			if p.end > tEnd {
				tEnd = p.end
			}
		}
		fmt.Fprintf(&b, "  %s#%d @%.2fms:", r.proc, r.req, t0/msPer)
		for _, p := range r.phases {
			fmt.Fprintf(&b, "  %s %.2fms", p.name, (p.end-p.start)/msPer)
		}
		fmt.Fprintf(&b, "  | total %.2fms\n", (tEnd-t0)/msPer)
	}
	if hidden := len(byReq) - len(order); hidden > 0 {
		fmt.Fprintf(&b, "  (+%d more requests)\n", hidden)
	}
	return b.String()
}
