package sched

import (
	"math"
	"testing"
	"testing/quick"
)

// TestCheckpointAtBoundaries pins the checkpoint contract serve's
// preemptive temporal sharing is built on.
func TestCheckpointAtBoundaries(t *testing.T) {
	cases := []struct {
		total, elapsed, quantum float64
		wantBoundary            float64
	}{
		{10000, 0, 2048, 0},        // nothing run: checkpoint immediately
		{10000, 1, 2048, 2048},     // mid-quantum: round up
		{10000, 2048, 2048, 2048},  // exactly on a boundary: stop here
		{10000, 2049, 2048, 4096},  // just past: next boundary
		{10000, 9000, 2048, 10000}, // boundary past the end: cap at total
		{10000, 12000, 2048, 10000},
		{10000, -5, 2048, 0},  // clamped elapsed
		{10000, 300, 0, 300},  // no quantum: preempt anywhere
		{10000, 300, -1, 300}, // negative quantum treated as none
	}
	for _, c := range cases {
		rp := CheckpointAt(c.total, c.elapsed, c.quantum)
		if rp.Boundary != c.wantBoundary {
			t.Errorf("CheckpointAt(%v, %v, %v).Boundary = %v, want %v",
				c.total, c.elapsed, c.quantum, rp.Boundary, c.wantBoundary)
		}
		if rp.Completed != rp.Boundary {
			t.Errorf("Completed %v != Boundary %v", rp.Completed, rp.Boundary)
		}
		if rp.Completed+rp.Remaining != c.total {
			t.Errorf("CheckpointAt(%v, %v, %v): %v + %v != total — work not conserved",
				c.total, c.elapsed, c.quantum, rp.Completed, rp.Remaining)
		}
	}
	if rp := CheckpointAt(0, 5, 64); rp.Frac != 1 || rp.Remaining != 0 {
		t.Errorf("empty run checkpoint = %+v; want nothing owed", rp)
	}
}

// TestCheckpointAtProperties quick-checks the invariants for arbitrary
// inputs: the boundary is quantum-aligned (or capped), never before the
// observed progress, and the split always partitions total exactly.
func TestCheckpointAtProperties(t *testing.T) {
	f := func(totalU, elapsedU uint32, quantumU uint16) bool {
		total := float64(totalU%1_000_000) + 1
		elapsed := float64(elapsedU % 1_200_000)
		quantum := float64(quantumU%8192) + 1
		rp := CheckpointAt(total, elapsed, quantum)
		if rp.Completed+rp.Remaining != total {
			return false
		}
		clamped := math.Min(elapsed, total)
		if rp.Boundary < clamped || rp.Boundary > total {
			return false
		}
		if rp.Boundary < total && math.Mod(rp.Boundary, quantum) != 0 {
			return false
		}
		if rp.Frac < 0 || rp.Frac > 1 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}
