package sched

import (
	"testing"

	"neu10/internal/compiler"
	"neu10/internal/isa"
	"neu10/internal/sim"
)

// Property tests: randomized workload graphs run under every policy and
// checked against structural invariants of the simulator — completion,
// determinism, work conservation, and the isolation guarantee of static
// spatial partitioning.

// randGraph builds a random compiled graph: 2-6 operators mixing ME
// groups (1-4 µTOps, with or without inline VE work), VE ops, and
// reduction-split shapes.
func randGraph(rng *sim.RNG, kind compiler.ISAKind) *compiler.CompiledGraph {
	nOps := 2 + rng.Intn(5)
	var ops []compiler.CompiledOp
	for i := 0; i < nOps; i++ {
		switch rng.Intn(4) {
		case 0: // plain ME op
			ops = append(ops, meOp(1+rng.Intn(4), uint64(500+rng.Intn(4000)), uint64(rng.Intn(800))))
		case 1: // VE op
			ops = append(ops, veOp(uint64(300+rng.Intn(5000))))
		case 2: // ME op with heavy inline VE
			ops = append(ops, meOp(1+rng.Intn(2), uint64(500+rng.Intn(1000)), uint64(1000+rng.Intn(2000))))
		default: // reduction-split: ME group then VE summation group
			op := meOp(2+rng.Intn(3), uint64(500+rng.Intn(2000)), 0)
			op.Groups = append(op.Groups, compiler.GroupSpec{UTops: []compiler.UTopSpec{
				{Kind: isa.VEUTop, VECycles: uint64(200 + rng.Intn(1000))},
			}})
			op.ReductionSplit = true
			ops = append(ops, op)
		}
	}
	return synth(kind, ops...)
}

func totals(g *compiler.CompiledGraph) (me, ve uint64) {
	for i := range g.Ops {
		me += g.Ops[i].TotalME()
		ve += g.Ops[i].TotalVE()
	}
	return
}

func TestPropertyRandomGraphsAllPolicies(t *testing.T) {
	rng := sim.NewRNG(2024)
	const trials = 40
	for trial := 0; trial < trials; trial++ {
		seed := rng.Uint64()
		for _, pol := range []Mode{PMT, V10, NeuNH, Neu10} {
			gr := sim.NewRNG(seed)
			ga := randGraph(gr, pol.ISAFor())
			gb := randGraph(gr, pol.ISAFor())
			specs := []TenantSpec{
				{Name: "A", Graph: ga, MEs: 2, VEs: 2},
				{Name: "B", Graph: gb, MEs: 2, VEs: 2},
			}
			cfg := Config{Core: tpu(), Policy: pol, Requests: 4}
			res, err := Run(cfg, specs)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, pol, err)
			}

			// Invariant 1: every tenant completed the target.
			for _, tr := range res.Tenants {
				if tr.Requests < 4 {
					t.Fatalf("trial %d %s: tenant %s completed %d/4", trial, pol, tr.Name, tr.Requests)
				}
				if tr.MeanLatency <= 0 || tr.P95Latency < tr.MeanLatency/2 {
					t.Fatalf("trial %d %s: implausible latency stats %v/%v",
						trial, pol, tr.MeanLatency, tr.P95Latency)
				}
			}

			// Invariant 2: latency lower bound — a request can never beat
			// its critical path on unlimited engines (max over ops of the
			// longest single µTOp, summed over ops is too strong; use the
			// sum of each op's longest µTOp, which any schedule must pay).
			for w, g := range []*compiler.CompiledGraph{ga, gb} {
				var critical float64
				for i := range g.Ops {
					for _, grp := range g.Ops[i].Groups {
						var longest uint64
						for _, u := range grp.UTops {
							n := u.MECycles
							if u.VECycles > n && u.Kind == isa.MEUTop {
								n = u.VECycles
							}
							if u.Kind == isa.VEUTop {
								// Divisible across all VEs at best.
								n = u.VECycles / uint64(tpu().VEs)
							}
							if n > longest {
								longest = n
							}
						}
						critical += float64(longest)
					}
				}
				// Every request's latency must be ≥ the critical path.
				if res.Tenants[w].Latency.Percentile(0) < critical*0.999 {
					t.Fatalf("trial %d %s tenant %d: min latency %.0f below critical path %.0f",
						trial, pol, w, res.Tenants[w].Latency.Percentile(0), critical)
				}
			}

			// Invariant 3: determinism.
			res2, err := Run(cfg, specs)
			if err != nil {
				t.Fatal(err)
			}
			if res.DurationCycles != res2.DurationCycles {
				t.Fatalf("trial %d %s: nondeterministic duration", trial, pol)
			}

			// Invariant 4: utilizations in [0, 1].
			if res.MEUtil < 0 || res.MEUtil > 1+1e-9 || res.VEUtil < 0 || res.VEUtil > 1+1e-9 {
				t.Fatalf("trial %d %s: utilization out of range %v/%v", trial, pol, res.MEUtil, res.VEUtil)
			}
		}
	}
}

// TestPropertyNHIsolation: under static spatial partitioning with no HBM
// pressure, a tenant's latency must be bit-identical no matter what its
// neighbour runs — the definition of hardware isolation.
func TestPropertyNHIsolation(t *testing.T) {
	rng := sim.NewRNG(7)
	for trial := 0; trial < 25; trial++ {
		seed := rng.Uint64()
		gr := sim.NewRNG(seed)
		ga := randGraph(gr, compiler.ISANeu)
		mkB := func(s uint64) *compiler.CompiledGraph { return randGraph(sim.NewRNG(s), compiler.ISANeu) }

		run := func(gb *compiler.CompiledGraph) float64 {
			res, err := Run(Config{Core: tpu(), Policy: NeuNH, Requests: 5},
				[]TenantSpec{
					{Name: "A", Graph: ga, MEs: 2, VEs: 2},
					{Name: "B", Graph: gb, MEs: 2, VEs: 2},
				})
			if err != nil {
				t.Fatal(err)
			}
			return res.Tenants[0].MeanLatency
		}
		l1 := run(mkB(seed ^ 0xaaaa))
		l2 := run(mkB(seed ^ 0x5555))
		if l1 != l2 {
			t.Fatalf("trial %d: NH tenant latency depends on neighbour (%.2f vs %.2f)", trial, l1, l2)
		}
	}
}

// TestPropertyHarvestingNeverSlowsAggregate: across random scenarios,
// Neu10's total completed work per cycle is at least NH's (modulo a
// small tolerance for reclaim penalties).
func TestPropertyHarvestingAggregate(t *testing.T) {
	rng := sim.NewRNG(99)
	for trial := 0; trial < 25; trial++ {
		seed := rng.Uint64()
		gr1 := sim.NewRNG(seed)
		mk := func(r *sim.RNG) []TenantSpec {
			return []TenantSpec{
				{Name: "A", Graph: randGraph(r, compiler.ISANeu), MEs: 2, VEs: 2},
				{Name: "B", Graph: randGraph(r, compiler.ISANeu), MEs: 2, VEs: 2},
			}
		}
		specs := mk(gr1)
		nh, err := Run(Config{Core: tpu(), Policy: NeuNH, Requests: 5}, specs)
		if err != nil {
			t.Fatal(err)
		}
		n10, err := Run(Config{Core: tpu(), Policy: Neu10, Requests: 5}, specs)
		if err != nil {
			t.Fatal(err)
		}
		aggNH := nh.Tenants[0].Throughput + nh.Tenants[1].Throughput
		aggN10 := n10.Tenants[0].Throughput + n10.Tenants[1].Throughput
		if aggN10 < aggNH*0.93 {
			t.Fatalf("trial %d: harvesting reduced aggregate throughput %.1f -> %.1f",
				trial, aggNH, aggN10)
		}
	}
}
