package sched

import (
	"fmt"

	"neu10/internal/compiler"
	"neu10/internal/isa"
	"neu10/internal/metrics"
	"neu10/internal/sim"
)

// Simulator is the event-driven fluid simulator. Build one with New,
// run with Run.
type Simulator struct {
	cfg     Config
	tenants []*tenant

	// Physical ME state.
	meOwner   []int     // ME -> owning tenant (spatial modes) or -1
	meHeld    []*utop   // ME -> running µTOp
	meBlocked []float64 // ME -> blocked-until time (preemption penalties)

	// Temporal-sharing state.
	activeTenant int // PMT: the tenant owning the whole core
	complexOwner int // V10: the tenant owning the ME complex
	quantumStart float64

	now        float64
	events     uint64
	nextSample float64

	// Accumulators.
	meBusyArea float64
	veBusyArea float64
	bwArea     float64
	hbmTL      *metrics.TimeSeries

	// Zero-alloc machinery: retired µTOp instances are recycled through
	// utopFree, and every per-event temporary (bandwidth demand items,
	// waterfill buffers, VE grant lists) lives in scratch so the steady
	// state of the event loop performs no heap allocation. The buffers
	// only ever grow; result bytes are unaffected because the arithmetic
	// runs in exactly the order the allocating version used.
	utopFree []*utop
	scratch  struct {
		items   []bwItem
		tStart  []int
		tDemand []float64
		tGrant  []float64
		demands []float64
		grants  []float64
		unsat   []int
		ves     []*utop
		unmet   []*utop
		freeMEs []int
		one     [1]*tenant
	}
}

// bwItem pairs a µTOp with its bandwidth demand during applySpeeds.
type bwItem struct {
	u *utop
	d float64
}

// takeUTop returns a recycled (or new) µTOp initialized for the spec.
func (s *Simulator) takeUTop(t *tenant, opIdx int, spec compiler.UTopSpec) *utop {
	if n := len(s.utopFree); n > 0 {
		u := s.utopFree[n-1]
		s.utopFree[n-1] = nil
		s.utopFree = s.utopFree[:n-1]
		*u = utop{}
		u.init(t, opIdx, spec)
		return u
	}
	u := &utop{}
	u.init(t, opIdx, spec)
	return u
}

const eps = 1e-6

// New validates the scenario and builds a simulator.
func New(cfg Config, specs []TenantSpec) (*Simulator, error) {
	cfg.defaults()
	if err := cfg.Core.Validate(); err != nil {
		return nil, err
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("sched: no tenants")
	}
	s := &Simulator{
		cfg:          cfg,
		meOwner:      make([]int, cfg.Core.MEs),
		meHeld:       make([]*utop, cfg.Core.MEs),
		meBlocked:    make([]float64, cfg.Core.MEs),
		activeTenant: -1,
		complexOwner: -1,
		hbmTL:        metrics.NewTimeSeries("hbm", 4096),
	}
	for i := range s.meOwner {
		s.meOwner[i] = -1
	}
	spatial := cfg.Policy == NeuNH || cfg.Policy == Neu10
	nextME := 0
	for i, spec := range specs {
		if spec.Graph == nil {
			return nil, fmt.Errorf("sched: tenant %q has no graph", spec.Name)
		}
		if spec.Graph.ISA != cfg.Policy.ISAFor() {
			return nil, fmt.Errorf("sched: tenant %q compiled for %s but policy %s needs %s",
				spec.Name, spec.Graph.ISA, cfg.Policy, cfg.Policy.ISAFor())
		}
		if spec.MEs < 1 || spec.VEs < 1 {
			return nil, fmt.Errorf("sched: tenant %q allocated %d MEs / %d VEs", spec.Name, spec.MEs, spec.VEs)
		}
		t := &tenant{
			spec: spec,
			idx:  i,
			lat:  &metrics.Latencies{},
		}
		t.opDurSum = make([]float64, len(spec.Graph.Ops))
		t.opDurN = make([]int, len(spec.Graph.Ops))
		if spec.ArrivalRate < 0 {
			return nil, fmt.Errorf("sched: tenant %q has negative arrival rate", spec.Name)
		}
		if spec.ArrivalRate > 0 {
			t.rng = sim.NewRNG(cfg.Seed ^ (uint64(i)+1)*0x9e3779b97f4a7c15)
		}
		if cfg.SampleEvery > 0 {
			t.meTL = metrics.NewTimeSeries(spec.Name+"/ME", 4096)
			t.veTL = metrics.NewTimeSeries(spec.Name+"/VE", 4096)
		}
		if spatial {
			if nextME+spec.MEs > cfg.Core.MEs {
				return nil, fmt.Errorf("sched: spatial mapping exceeds %d MEs", cfg.Core.MEs)
			}
			for k := 0; k < spec.MEs; k++ {
				t.ownMEs = append(t.ownMEs, nextME)
				s.meOwner[nextME] = i
				nextME++
			}
		}
		s.tenants = append(s.tenants, t)
	}
	if spatial {
		totVE := 0
		for _, t := range s.tenants {
			totVE += t.spec.VEs
		}
		if totVE > cfg.Core.VEs {
			return nil, fmt.Errorf("sched: spatial VE allocation %d exceeds %d", totVE, cfg.Core.VEs)
		}
	}
	return s, nil
}

// Run simulates to steady state and returns the results.
func (s *Simulator) Run() (*Result, error) {
	for _, t := range s.tenants {
		if t.spec.ArrivalRate > 0 {
			t.idle = true
			t.opIdx = len(t.spec.Graph.Ops) // no current group while idle
			t.nextArrival = s.interarrival(t)
		} else {
			s.beginService(t, 0)
		}
	}
	const maxEvents = 80_000_000
	for {
		s.events++
		if s.events > maxEvents {
			return nil, fmt.Errorf("sched: exceeded %d events at cycle %.0f", uint64(maxEvents), s.now)
		}
		s.pumpArrivals()
		s.bind()
		s.grantVE()
		served := s.applySpeeds()
		dt, anyWork := s.horizon()
		if !anyWork {
			return nil, fmt.Errorf("sched: deadlock at cycle %.0f (no runnable work)", s.now)
		}
		if s.now+dt >= s.cfg.MaxCycles {
			break
		}
		s.advance(dt, served)
		if s.complete() {
			break
		}
	}
	return s.collect(), nil
}

// beginService starts serving a request that arrived at arrivedAt (for
// closed-loop tenants, arrival == service start, the §V-A methodology).
func (s *Simulator) beginService(t *tenant, arrivedAt float64) {
	t.opIdx, t.groupIdx = 0, 0
	t.reqStart = arrivedAt
	t.opStart = s.now
	t.idle = false
	s.emitGroup(t)
}

// interarrival draws the next exponential interarrival gap in cycles.
func (s *Simulator) interarrival(t *tenant) float64 {
	meanCycles := s.cfg.Core.FrequencyHz / t.spec.ArrivalRate
	return t.rng.Exp(meanCycles)
}

// pumpArrivals admits every open-loop arrival with timestamp <= now:
// an idle vNPU starts serving immediately, otherwise the request queues.
func (s *Simulator) pumpArrivals() {
	for _, t := range s.tenants {
		if t.spec.ArrivalRate <= 0 {
			continue
		}
		for t.nextArrival <= s.now+eps {
			at := t.nextArrival
			t.nextArrival += s.interarrival(t)
			if t.idle {
				s.beginService(t, at)
			} else {
				t.pending = append(t.pending, at)
			}
		}
	}
}

// emitGroup instantiates the µTOps of the tenant's current group.
func (s *Simulator) emitGroup(t *tenant) {
	g := t.currentGroup()
	if g == nil {
		return
	}
	t.inFlight = len(g.UTops)
	for _, spec := range g.UTops {
		u := s.takeUTop(t, t.opIdx, spec)
		if u.kind == isa.MEUTop {
			t.readyME.Push(u)
		} else {
			// "A ready VE µTOp is always executed" (§III-E): it enters
			// the running set immediately and progresses as granted.
			t.running = append(t.running, u)
		}
	}
}

// ---- policy: ME binding ----

func (s *Simulator) bind() {
	switch s.cfg.Policy {
	case NeuNH:
		for _, t := range s.tenants {
			s.bindOwn(t)
		}
	case Neu10:
		for _, t := range s.tenants {
			s.reclaim(t)
		}
		for _, t := range s.tenants {
			s.bindOwn(t)
		}
		if !s.cfg.DisableMEHarvest {
			s.harvestBind()
		}
	case V10:
		s.v10Bind()
	case PMT:
		s.pmtBind()
	}
}

func (s *Simulator) meFree(m int) bool {
	return s.meHeld[m] == nil && s.meBlocked[m] <= s.now+eps
}

func (s *Simulator) bindTo(u *utop, m int, harvested bool) {
	u.me = m
	u.harvested = harvested
	s.meHeld[m] = u
	u.ten.running = append(u.ten.running, u)
}

func (s *Simulator) popReady(t *tenant) *utop {
	return t.readyME.Pop()
}

// bindOwn binds a tenant's ready ME µTOps to its own free engines.
func (s *Simulator) bindOwn(t *tenant) {
	for _, m := range t.ownMEs {
		if t.readyME.Len() == 0 {
			return
		}
		if s.meFree(m) {
			s.bindTo(s.popReady(t), m, false)
		}
	}
}

// reclaim preempts harvesting µTOps when the owner has ready work
// (§III-E: "If the allocated MEs are already being harvested by µTOps
// from other vNPUs, these µTOps will be preempted"). The reclaimed ME is
// blocked for the context-switch penalty (pop partials + pop weights).
func (s *Simulator) reclaim(t *tenant) {
	need := t.readyME.Len()
	if need == 0 {
		return
	}
	for _, m := range t.ownMEs {
		if need == 0 {
			return
		}
		u := s.meHeld[m]
		if u != nil && u.harvested {
			s.unbind(u)
			u.ten.readyME.Push(u) // state saved; work resumes later
			s.meBlocked[m] = s.now + float64(s.cfg.Core.MEPreemptCycles)
			need--
		} else if u == nil && s.meBlocked[m] > s.now+eps {
			need-- // already draining for us
		} else if u != nil && !u.harvested {
			need--
		}
	}
}

func (s *Simulator) unbind(u *utop) {
	if u.me >= 0 {
		s.meHeld[u.me] = nil
		u.me = -1
	}
	u.harvested = false
	t := u.ten
	for i, r := range t.running {
		if r == u {
			t.running = append(t.running[:i], t.running[i+1:]...)
			break
		}
	}
}

// harvestBind gives idle MEs (whose owner has nothing ready) to tenants
// with excess ready µTOps, round-robin for fairness.
func (s *Simulator) harvestBind() {
	freeMEs := s.scratch.freeMEs[:0]
	for m := range s.meHeld {
		if !s.meFree(m) {
			continue
		}
		owner := s.meOwner[m]
		if owner >= 0 && s.tenants[owner].readyME.Len() > 0 {
			continue // owner wants it; bindOwn will have taken it already
		}
		freeMEs = append(freeMEs, m)
	}
	s.scratch.freeMEs = freeMEs
	if len(freeMEs) == 0 {
		return
	}
	// Round-robin across tenants with remaining ready µTOps.
	next := 0
	for progress := true; progress && next < len(freeMEs); {
		progress = false
		for _, t := range s.tenants {
			if next == len(freeMEs) {
				break
			}
			if t.readyME.Len() == 0 {
				continue
			}
			m := freeMEs[next]
			next++
			s.bindTo(s.popReady(t), m, s.meOwner[m] != t.idx)
			progress = true
		}
	}
}

// v10Bind models the VLIW coupling: one tenant owns the entire ME
// complex; its group's µTOps bind together; other tenants may only run
// VE µTOps concurrently. The complex is re-arbitrated to the tenant with
// the least weighted service at *operator group boundaries only* — the
// VLIW ISA couples all MEs for the duration of an operator, so a waiting
// tenant's ME work queues behind the remaining length of the running
// operator. This imbalanced-operator-length head-of-line blocking is
// exactly the tail-latency failure mode the paper attributes to V10
// (§V-B), despite its otherwise fair priority-based policy.
func (s *Simulator) v10Bind() {
	// An operator group boundary: the owner has no µTOps left on the MEs.
	prev := s.complexOwner
	if s.complexOwner >= 0 && !s.hasBoundME(s.tenants[s.complexOwner]) {
		s.complexOwner = -1
	}
	// Grant the complex to the neediest ready tenant.
	if s.complexOwner < 0 {
		var pick *tenant
		for _, t := range s.tenants {
			if t.readyME.Len() == 0 {
				continue
			}
			if pick == nil || t.serviceCycles/t.priority() < pick.serviceCycles/pick.priority() {
				pick = t
			}
		}
		if pick != nil {
			s.complexOwner = pick.idx
			if prev >= 0 && prev != pick.idx {
				// Ownership changed hands: pay the ME-complex switch cost.
				for m := range s.meBlocked {
					if s.meBlocked[m] < s.now+v10SwitchPenalty {
						s.meBlocked[m] = s.now + v10SwitchPenalty
					}
				}
			}
		}
	}
	if s.complexOwner >= 0 {
		o := s.tenants[s.complexOwner]
		for m := 0; m < len(s.meHeld) && o.readyME.Len() > 0; m++ {
			if s.meFree(m) {
				s.bindTo(s.popReady(o), m, false)
			}
		}
	}
}

func (s *Simulator) hasBoundME(t *tenant) bool {
	for _, u := range t.running {
		if u.me >= 0 {
			return true
		}
	}
	return false
}

// pmtBind models PREMA-style whole-core time sharing with a quantum.
func (s *Simulator) pmtBind() {
	hasWork := func(t *tenant) bool {
		return t.readyME.Len() > 0 || len(t.running) > 0
	}
	// Quantum expiry or empty slot → switch to least-served tenant.
	cur := s.activeTenant
	needSwitch := cur < 0 || !hasWork(s.tenants[cur]) ||
		s.now-s.quantumStart >= s.cfg.QuantumCycles
	if needSwitch {
		var pick *tenant
		for _, t := range s.tenants {
			if !hasWork(t) {
				continue
			}
			if pick == nil || t.serviceCycles/t.priority() < pick.serviceCycles/pick.priority() {
				pick = t
			}
		}
		if pick != nil && pick.idx != cur {
			// Context switch: evict the old tenant's bound µTOps and pay
			// the full-core switch penalty.
			if cur >= 0 {
				old := s.tenants[cur]
				for m, u := range s.meHeld {
					if u != nil && u.ten == old {
						s.unbind(u)
						old.readyME.Push(u)
						_ = m
					}
				}
				for m := range s.meBlocked {
					s.meBlocked[m] = s.now + pmtSwitchPenalty
				}
			}
			s.activeTenant = pick.idx
			s.quantumStart = s.now
		} else if pick != nil {
			s.quantumStart = s.now
		}
	}
	if s.activeTenant >= 0 {
		a := s.tenants[s.activeTenant]
		for m := 0; m < len(s.meHeld) && a.readyME.Len() > 0; m++ {
			if s.meFree(m) {
				s.bindTo(s.popReady(a), m, false)
			}
		}
	}
}

// ---- policy: VE grants ----

func (s *Simulator) grantVE() {
	for _, t := range s.tenants {
		for _, u := range t.running {
			u.veGrant = 0
		}
	}
	switch s.cfg.Policy {
	case NeuNH:
		for _, t := range s.tenants {
			s.grantTenantVE(t, float64(t.spec.VEs))
		}
	case Neu10:
		pool := 0.0
		for _, t := range s.tenants {
			pool += s.grantTenantVE(t, float64(t.spec.VEs))
		}
		if !s.cfg.DisableVEHarvest {
			s.redistributeVE(pool)
		}
	case V10:
		pool := float64(s.cfg.Core.VEs)
		if s.complexOwner >= 0 {
			pool -= s.grantMEUTopVE(s.tenants[s.complexOwner], pool)
		}
		// All tenants' VE µTOps share what remains.
		s.grantVEUTops(s.tenants, pool)
	case PMT:
		if s.activeTenant >= 0 {
			t := s.tenants[s.activeTenant]
			pool := float64(s.cfg.Core.VEs)
			pool -= s.grantMEUTopVE(t, pool)
			s.scratch.one[0] = t
			s.grantVEUTops(s.scratch.one[:], pool)
		}
	}
}

// grantMEUTopVE serves the VE needs of a tenant's bound ME µTOps from a
// budget, returning the amount consumed. The operation scheduler
// prioritizes VE operations from ME µTOps so MEs free up sooner (§III-E).
func (s *Simulator) grantMEUTopVE(t *tenant, budget float64) float64 {
	var need float64
	for _, u := range t.running {
		if u.kind == isa.MEUTop && u.me >= 0 {
			need += u.veNeed
		}
	}
	if need == 0 {
		return 0
	}
	scale := 1.0
	if need > budget {
		scale = budget / need
	}
	var used float64
	for _, u := range t.running {
		if u.kind == isa.MEUTop && u.me >= 0 {
			u.veGrant = u.veNeed * scale
			used += u.veGrant
		}
	}
	return used
}

// grantVEUTops splits a budget across the VE µTOps of the given tenants.
func (s *Simulator) grantVEUTops(ts []*tenant, budget float64) {
	if budget <= 0 {
		return
	}
	ves := s.scratch.ves[:0]
	for _, t := range ts {
		for _, u := range t.running {
			if u.kind == isa.VEUTop {
				ves = append(ves, u)
			}
		}
	}
	s.scratch.ves = ves
	if len(ves) == 0 {
		return
	}
	share := budget / float64(len(ves))
	max := float64(s.cfg.Core.VEs)
	for _, u := range ves {
		g := share
		if g > max {
			g = max
		}
		u.veGrant = g
	}
}

// grantTenantVE serves a tenant from its own VE allocation: bound ME
// µTOps first, then its VE µTOps. It returns the unused remainder
// (harvestable under Neu10).
func (s *Simulator) grantTenantVE(t *tenant, cap float64) float64 {
	cap -= s.grantMEUTopVE(t, cap)
	if cap <= 0 {
		return 0
	}
	ves := s.scratch.ves[:0]
	for _, u := range t.running {
		if u.kind == isa.VEUTop {
			ves = append(ves, u)
		}
	}
	s.scratch.ves = ves
	if len(ves) > 0 {
		share := cap / float64(len(ves))
		for _, u := range ves {
			u.veGrant = share
		}
		return 0
	}
	return cap
}

// redistributeVE implements VE harvesting (Fig. 18b): leftover VE
// capacity flows to other tenants' unmet ME-µTOp needs first, then to
// VE µTOps.
func (s *Simulator) redistributeVE(pool float64) {
	if pool <= 0 {
		return
	}
	unmet := s.scratch.unmet[:0]
	var totalUnmet float64
	for _, t := range s.tenants {
		for _, u := range t.running {
			if u.kind == isa.MEUTop && u.me >= 0 && u.veGrant < u.veNeed-eps {
				unmet = append(unmet, u)
				totalUnmet += u.veNeed - u.veGrant
			}
		}
	}
	s.scratch.unmet = unmet
	if totalUnmet > 0 {
		scale := 1.0
		if totalUnmet > pool {
			scale = pool / totalUnmet
		}
		for _, u := range unmet {
			extra := (u.veNeed - u.veGrant) * scale
			u.veGrant += extra
			pool -= extra
		}
	}
	if pool <= eps {
		return
	}
	// Remaining pool → VE µTOps (they can absorb arbitrary rate).
	ves := s.scratch.ves[:0]
	for _, t := range s.tenants {
		for _, u := range t.running {
			if u.kind == isa.VEUTop {
				ves = append(ves, u)
			}
		}
	}
	s.scratch.ves = ves
	if len(ves) == 0 {
		return
	}
	share := pool / float64(len(ves))
	max := float64(s.cfg.Core.VEs)
	for _, u := range ves {
		u.veGrant += share
		if u.veGrant > max {
			u.veGrant = max
		}
	}
}

// ---- rates, horizon, advance ----

// preSpeed computes a µTOp's progress rate before bandwidth scaling.
func (s *Simulator) preSpeed(u *utop) float64 {
	switch u.kind {
	case isa.MEUTop:
		if u.me < 0 {
			return 0
		}
		if u.veNeed <= eps {
			return 1
		}
		sp := u.veGrant / u.veNeed
		if sp > 1 {
			sp = 1
		}
		return sp
	default:
		return u.veGrant
	}
}

// waterfill allocates cap across demands max-min fairly: demands below
// the progressively recomputed fair share are fully satisfied; the rest
// split the remainder equally. Grants are written into the caller's
// slice (len(grants) == len(demands)); the unsatisfied-index worklist is
// scratch owned by the simulator so repeated calls do not allocate.
func (s *Simulator) waterfill(demands, grants []float64, cap float64) {
	for i := range grants {
		grants[i] = 0
	}
	unsat := s.scratch.unsat[:0]
	var total float64
	for i, d := range demands {
		total += d
		unsat = append(unsat, i)
	}
	s.scratch.unsat = unsat
	if total <= cap {
		copy(grants, demands)
		return
	}
	remaining := cap
	for len(unsat) > 0 {
		share := remaining / float64(len(unsat))
		next := unsat[:0]
		progressed := false
		for _, i := range unsat {
			if demands[i] <= share+1e-12 {
				grants[i] = demands[i]
				remaining -= demands[i]
				progressed = true
			} else {
				next = append(next, i)
			}
		}
		if !progressed {
			for _, i := range next {
				grants[i] = share
			}
			return
		}
		unsat = next
	}
}

// growFloats returns buf resized to n, reallocating only on growth.
func growFloats(buf []float64, n int) []float64 {
	if cap(buf) < n {
		return make([]float64, n, n+n/2+8)
	}
	return buf[:n]
}

// applySpeeds sets every running µTOp's progress rate: the engine-grant
// speed, throttled by a two-level max-min fair share of HBM bandwidth —
// first across vNPUs (the paper's §III-B "fair sharing of HBM bandwidth
// by default"), then across each vNPU's µTOps. Light consumers
// (compute-bound tenants) receive their full demand; the shortage lands
// on the heavy, memory-bound ones. It returns the bandwidth served
// (bytes/cycle).
func (s *Simulator) applySpeeds() float64 {
	sc := &s.scratch
	sc.items = sc.items[:0]
	sc.tStart = sc.tStart[:0]
	sc.tDemand = growFloats(sc.tDemand, len(s.tenants))
	var totalDemand float64
	for ti, t := range s.tenants {
		sc.tStart = append(sc.tStart, len(sc.items))
		sc.tDemand[ti] = 0
		for _, u := range t.running {
			pre := s.preSpeed(u)
			u.speed = pre
			if pre > 0 && u.bwNeed > 0 {
				d := u.bwNeed * pre
				sc.items = append(sc.items, bwItem{u, d})
				sc.tDemand[ti] += d
			}
		}
	}
	sc.tStart = append(sc.tStart, len(sc.items))
	for _, d := range sc.tDemand {
		totalDemand += d
	}
	capacity := s.cfg.Core.HBMBytesPerCycle()
	if totalDemand <= capacity {
		return totalDemand
	}
	sc.tGrant = growFloats(sc.tGrant, len(s.tenants))
	s.waterfill(sc.tDemand, sc.tGrant, capacity)
	served := 0.0
	for ti := range s.tenants {
		items := sc.items[sc.tStart[ti]:sc.tStart[ti+1]]
		if len(items) == 0 {
			continue
		}
		sc.demands = growFloats(sc.demands, len(items))
		sc.grants = growFloats(sc.grants, len(items))
		demands, grants := sc.demands, sc.grants
		for i, it := range items {
			demands[i] = it.d
		}
		s.waterfill(demands, grants, sc.tGrant[ti])
		for i, it := range items {
			if grants[i] < it.d {
				it.u.speed *= grants[i] / it.d
			}
			served += grants[i]
		}
	}
	return served
}

// horizon returns the time to the next event and whether any progress or
// pending unblock exists.
func (s *Simulator) horizon() (float64, bool) {
	dt := s.cfg.MaxCycles - s.now
	any := false
	for _, t := range s.tenants {
		for _, u := range t.running {
			if u.speed > eps {
				any = true
				if d := u.rem / u.speed; d < dt {
					dt = d
				}
			}
		}
	}
	for _, until := range s.meBlocked {
		if until > s.now+eps {
			any = true
			if d := until - s.now; d < dt {
				dt = d
			}
		}
	}
	for _, t := range s.tenants {
		if t.spec.ArrivalRate > 0 {
			any = true
			if d := t.nextArrival - s.now; d > eps && d < dt {
				dt = d
			}
		}
	}
	if s.cfg.Policy == PMT && s.activeTenant >= 0 {
		if d := s.quantumStart + s.cfg.QuantumCycles - s.now; d > eps && d < dt {
			dt = d
		}
	}
	if s.cfg.SampleEvery > 0 {
		if d := s.nextSample - s.now; d > eps {
			if d < dt {
				dt = d
			}
		} else {
			s.sample()
			s.nextSample = s.now + s.cfg.SampleEvery
		}
	}
	if dt < 0 {
		dt = 0
	}
	return dt, any
}

func (s *Simulator) sample() {
	for _, t := range s.tenants {
		if t.meTL == nil {
			continue
		}
		mes, ves := 0, 0.0
		for _, u := range t.running {
			if u.me >= 0 {
				mes++
			}
			ves += u.veGrant
		}
		t.meTL.Add(s.now, float64(mes))
		t.veTL.Add(s.now, ves)
	}
}

func (s *Simulator) advance(dt float64, servedBW float64) {
	for _, t := range s.tenants {
		active := false
		for _, u := range t.running {
			if u.speed <= eps {
				continue
			}
			active = true
			u.rem -= u.speed * dt
			if u.kind == isa.MEUTop {
				s.meBusyArea += u.meFrac * u.speed * dt
				s.veBusyArea += u.veNeed * u.speed * dt
			} else {
				s.veBusyArea += u.speed * dt
			}
		}
		if active {
			t.activeCycles += dt
		}
		// Table III accounting: the tenant is "blocked due to being
		// harvested" when it has ready µTOps while one of its own MEs is
		// running a harvester or draining a reclaim.
		if t.readyME.Len() > 0 {
			blocked := false
			for _, m := range t.ownMEs {
				if u := s.meHeld[m]; u != nil && u.harvested {
					blocked = true
					break
				}
				if s.meBlocked[m] > s.now+eps {
					blocked = true
					break
				}
			}
			if blocked {
				t.harvestBlocked += dt
			}
		}
	}
	// Fairness accounting for temporal policies.
	switch s.cfg.Policy {
	case V10:
		// Service accrues only while the owner actually occupies the
		// MEs; charging during switch-penalty windows would flip the
		// arbitration every penalty and livelock the complex.
		if s.complexOwner >= 0 {
			o := s.tenants[s.complexOwner]
			if s.hasBoundME(o) {
				o.serviceCycles += dt * float64(s.cfg.Core.MEs)
			}
		}
	case PMT:
		if s.activeTenant >= 0 {
			s.tenants[s.activeTenant].serviceCycles += dt * float64(s.cfg.Core.MEs+s.cfg.Core.VEs)
		}
	}
	s.bwArea += servedBW * dt
	s.hbmTL.Add(s.now, servedBW)
	s.now += dt
}

// complete retires finished µTOps and advances groups, operators and
// requests. It returns true when every tenant has completed the target.
func (s *Simulator) complete() bool {
	for _, t := range s.tenants {
		for i := 0; i < len(t.running); {
			u := t.running[i]
			if u.rem > eps {
				i++
				continue
			}
			s.unbind(u) // removes from t.running
			t.inFlight--
			s.utopFree = append(s.utopFree, u)
		}
		for !t.idle && t.inFlight == 0 && t.currentGroup() != nil {
			s.advanceGroup(t)
		}
	}
	done := true
	for _, t := range s.tenants {
		if t.completed < s.cfg.Requests {
			done = false
			break
		}
	}
	return done
}

func (s *Simulator) advanceGroup(t *tenant) {
	op := &t.spec.Graph.Ops[t.opIdx]
	t.groupIdx++
	if t.groupIdx < len(op.Groups) {
		s.emitGroup(t)
		return
	}
	// Operator finished.
	t.opDurSum[t.opIdx] += s.now - t.opStart
	t.opDurN[t.opIdx]++
	t.opIdx++
	t.groupIdx = 0
	t.opStart = s.now
	if t.opIdx < len(t.spec.Graph.Ops) {
		s.emitGroup(t)
		return
	}
	// Request finished.
	t.lat.Add(s.now - t.reqStart)
	t.completed++
	if t.spec.ArrivalRate > 0 {
		if len(t.pending) > 0 {
			at := t.pending[0]
			t.pending = t.pending[1:]
			s.beginService(t, at)
		} else {
			t.idle = true
		}
	} else {
		// Closed loop: the next request starts immediately (§V-A).
		s.beginService(t, s.now)
	}
}

func (s *Simulator) collect() *Result {
	res := &Result{
		Policy:         s.cfg.Policy,
		DurationCycles: s.now,
		HBMTimeline:    s.hbmTL,
	}
	if s.now > 0 {
		res.MEUtil = s.meBusyArea / (s.now * float64(s.cfg.Core.MEs))
		res.VEUtil = s.veBusyArea / (s.now * float64(s.cfg.Core.VEs))
		res.AvgBandwidth = s.bwArea / s.now
	}
	seconds := s.cfg.Core.CyclesToSeconds(uint64(s.now))
	for _, t := range s.tenants {
		tr := TenantResult{
			Name:           t.spec.Name,
			Requests:       t.completed,
			Latency:        t.lat,
			MeanLatency:    t.lat.Mean(),
			P95Latency:     t.lat.P95(),
			ActiveCycles:   t.activeCycles,
			HarvestBlocked: t.harvestBlocked,
			METimeline:     t.meTL,
			VETimeline:     t.veTL,
		}
		if seconds > 0 {
			tr.Throughput = float64(t.completed) / seconds
		}
		tr.OpDurations = make([]float64, len(t.opDurSum))
		for i := range t.opDurSum {
			if t.opDurN[i] > 0 {
				tr.OpDurations[i] = t.opDurSum[i] / float64(t.opDurN[i])
			}
		}
		res.Tenants = append(res.Tenants, tr)
	}
	return res
}

// Run is the package-level convenience: build and run in one call.
func Run(cfg Config, specs []TenantSpec) (*Result, error) {
	s, err := New(cfg, specs)
	if err != nil {
		return nil, err
	}
	return s.Run()
}
