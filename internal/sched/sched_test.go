package sched

import (
	"math"
	"testing"

	"neu10/internal/arch"
	"neu10/internal/compiler"
	"neu10/internal/isa"
)

func tpu() arch.CoreConfig { return arch.TPUv4Like() }

// synth builds a compiled graph from raw µTOp specs for precise tests.
func synth(kind compiler.ISAKind, ops ...compiler.CompiledOp) *compiler.CompiledGraph {
	return &compiler.CompiledGraph{
		Model:     "synthetic",
		BatchSize: 1,
		Target:    tpu(),
		ISA:       kind,
		Ops:       ops,
	}
}

// meOp builds an operator of n ME µTOps, each me cycles of matrix work
// and ve cycles of inline vector work.
func meOp(n int, me, ve uint64) compiler.CompiledOp {
	g := compiler.GroupSpec{}
	for i := 0; i < n; i++ {
		g.UTops = append(g.UTops, compiler.UTopSpec{Kind: isa.MEUTop, MECycles: me, VECycles: ve})
	}
	return compiler.CompiledOp{Name: "me-op", Kind: compiler.MatMul, Groups: []compiler.GroupSpec{g}}
}

// veOp builds a single VE µTOp operator.
func veOp(ve uint64) compiler.CompiledOp {
	return compiler.CompiledOp{Name: "ve-op", Kind: compiler.VectorEW, Groups: []compiler.GroupSpec{
		{UTops: []compiler.UTopSpec{{Kind: isa.VEUTop, VECycles: ve}}},
	}}
}

func mustRun(t *testing.T, cfg Config, specs ...TenantSpec) *Result {
	t.Helper()
	res, err := Run(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestSoloTenantNHBasicTiming(t *testing.T) {
	// One op of 4 µTOps × 1000 cycles on a 2-ME vNPU: two waves → ~2000
	// cycles per request.
	g := synth(compiler.ISANeu, meOp(4, 1000, 0))
	res := mustRun(t, Config{Core: tpu(), Policy: NeuNH, Requests: 5},
		TenantSpec{Name: "solo", Graph: g, MEs: 2, VEs: 2})
	lat := res.Tenants[0].MeanLatency
	if math.Abs(lat-2000) > 1 {
		t.Fatalf("latency %.1f, want ~2000", lat)
	}
	if res.Tenants[0].Requests < 5 {
		t.Fatalf("completed %d requests", res.Tenants[0].Requests)
	}
}

func TestSoloTenantFullCoreIsFaster(t *testing.T) {
	g := synth(compiler.ISANeu, meOp(4, 1000, 0))
	half := mustRun(t, Config{Core: tpu(), Policy: NeuNH, Requests: 5},
		TenantSpec{Name: "s", Graph: g, MEs: 2, VEs: 2})
	full := mustRun(t, Config{Core: tpu(), Policy: NeuNH, Requests: 5},
		TenantSpec{Name: "s", Graph: g, MEs: 4, VEs: 4})
	if full.Tenants[0].MeanLatency >= half.Tenants[0].MeanLatency {
		t.Fatalf("full core (%.0f) not faster than half (%.0f)",
			full.Tenants[0].MeanLatency, half.Tenants[0].MeanLatency)
	}
	if math.Abs(full.Tenants[0].MeanLatency-1000) > 1 {
		t.Fatalf("full-core latency %.1f, want ~1000", full.Tenants[0].MeanLatency)
	}
}

func TestVEPipelineBound(t *testing.T) {
	// An ME µTOp whose inline VE work exceeds its ME work is bound by the
	// VE stream: 1 µTOp with me=100, ve=400 and 1 VE → 400 cycles.
	g := synth(compiler.ISANeu, meOp(1, 100, 400))
	res := mustRun(t, Config{Core: tpu(), Policy: NeuNH, Requests: 3},
		TenantSpec{Name: "s", Graph: g, MEs: 1, VEs: 1})
	if lat := res.Tenants[0].MeanLatency; math.Abs(lat-400) > 1 {
		t.Fatalf("latency %.1f, want ~400 (VE bound)", lat)
	}
}

func TestGroupBarrierSequencing(t *testing.T) {
	// Two groups: 4 ME µTOps then a VE summation (the reduction-split
	// shape). The VE group must wait for all ME µTOps.
	op := compiler.CompiledOp{Name: "red", Kind: compiler.MatMul, Groups: []compiler.GroupSpec{
		{UTops: []compiler.UTopSpec{
			{Kind: isa.MEUTop, MECycles: 500},
			{Kind: isa.MEUTop, MECycles: 500},
			{Kind: isa.MEUTop, MECycles: 500},
			{Kind: isa.MEUTop, MECycles: 500},
		}},
		{UTops: []compiler.UTopSpec{{Kind: isa.VEUTop, VECycles: 300}}},
	}, ReductionSplit: true}
	g := synth(compiler.ISANeu, op)
	res := mustRun(t, Config{Core: tpu(), Policy: NeuNH, Requests: 3},
		TenantSpec{Name: "s", Graph: g, MEs: 4, VEs: 1})
	// 500 (parallel MEs) + 300 (VE at grant 1) = 800.
	if lat := res.Tenants[0].MeanLatency; math.Abs(lat-800) > 1 {
		t.Fatalf("latency %.1f, want ~800", lat)
	}
}

func TestNeu10HarvestsIdleMEs(t *testing.T) {
	// Tenant A: pure ME work with 4-wide groups on a 2-ME vNPU.
	// Tenant B: pure VE work — its 2 MEs sit idle.
	// Under NH, A runs 2-wide (2000/op); under Neu10 it harvests B's MEs
	// and runs 4-wide (~1000/op).
	ga := synth(compiler.ISANeu, meOp(4, 1000, 0))
	gb := synth(compiler.ISANeu, veOp(4000))
	run := func(p Mode) *Result {
		return mustRun(t, Config{Core: tpu(), Policy: p, Requests: 10},
			TenantSpec{Name: "A", Graph: ga, MEs: 2, VEs: 2},
			TenantSpec{Name: "B", Graph: gb, MEs: 2, VEs: 2})
	}
	nh, n10 := run(NeuNH), run(Neu10)
	speedup := nh.Tenants[0].MeanLatency / n10.Tenants[0].MeanLatency
	if speedup < 1.8 {
		t.Fatalf("harvest speedup %.2f, want ~2x", speedup)
	}
	// B must be essentially unharmed (its VE work owns its VEs).
	slowdown := n10.Tenants[1].MeanLatency / nh.Tenants[1].MeanLatency
	if slowdown > 1.05 {
		t.Fatalf("victim slowdown %.3f under harvesting", slowdown)
	}
	// Utilization rises with harvesting (Fig. 22 direction).
	if n10.MEUtil <= nh.MEUtil {
		t.Fatalf("ME util did not improve: %.3f vs %.3f", n10.MEUtil, nh.MEUtil)
	}
}

func TestNeu10ReclaimProtectsOwner(t *testing.T) {
	// Both tenants have bursty ME phases (ME op then VE op). Harvesting
	// must not inflate either tenant's latency much beyond its NH value.
	mk := func() *compiler.CompiledGraph {
		return synth(compiler.ISANeu,
			meOp(4, 2000, 0), veOp(8000), meOp(2, 1000, 0), veOp(4000))
	}
	run := func(p Mode) *Result {
		return mustRun(t, Config{Core: tpu(), Policy: p, Requests: 10},
			TenantSpec{Name: "A", Graph: mk(), MEs: 2, VEs: 2},
			TenantSpec{Name: "B", Graph: mk(), MEs: 2, VEs: 2})
	}
	nh, n10 := run(NeuNH), run(Neu10)
	for i := range nh.Tenants {
		ratio := n10.Tenants[i].P95Latency / nh.Tenants[i].P95Latency
		if ratio > 1.15 {
			t.Fatalf("tenant %d p95 inflated %.2fx by harvesting", i, ratio)
		}
	}
	// Overall throughput should not regress.
	tputNH := nh.Tenants[0].Throughput + nh.Tenants[1].Throughput
	tputN10 := n10.Tenants[0].Throughput + n10.Tenants[1].Throughput
	if tputN10 < tputNH*0.95 {
		t.Fatalf("aggregate throughput regressed: %.1f vs %.1f", tputN10, tputNH)
	}
}

func TestTableIIIHarvestBlockedAccounting(t *testing.T) {
	// A is ME-hungry; B alternates: B should record some blocked time
	// (reclaim penalties) but a small fraction of its runtime.
	ga := synth(compiler.ISANeu, meOp(8, 2000, 0))
	gb := synth(compiler.ISANeu, veOp(6000), meOp(2, 1000, 0))
	res := mustRun(t, Config{Core: tpu(), Policy: Neu10, Requests: 20},
		TenantSpec{Name: "A", Graph: ga, MEs: 2, VEs: 2},
		TenantSpec{Name: "B", Graph: gb, MEs: 2, VEs: 2})
	b := res.Tenants[1]
	if b.HarvestBlocked == 0 {
		t.Fatal("no harvest-blocked time recorded despite reclaims")
	}
	frac := b.HarvestBlocked / res.DurationCycles
	if frac > 0.15 {
		t.Fatalf("blocked fraction %.3f; paper reports ≤ ~10%%", frac)
	}
}

func TestV10HeadOfLineBlocking(t *testing.T) {
	// Under V10 an ME operator occupies the whole ME complex for its
	// duration, so tenant B's short ME bursts queue behind tenant A's
	// long operators (imbalanced operator lengths, §V-B). Under Neu10,
	// B's own MEs make its latency independent of A.
	mkA := func(k compiler.ISAKind) *compiler.CompiledGraph {
		return synth(k, meOp(4, 20000, 0))
	}
	mkB := func(k compiler.ISAKind) *compiler.CompiledGraph {
		// ME burst, then a VE phase: B's ME-readiness lands mid-A-op.
		return synth(k, meOp(2, 250, 0), veOp(4000))
	}
	v10 := mustRun(t, Config{Core: tpu(), Policy: V10, Requests: 20},
		TenantSpec{Name: "A", Graph: mkA(compiler.ISAVLIW), MEs: 2, VEs: 2},
		TenantSpec{Name: "B", Graph: mkB(compiler.ISAVLIW), MEs: 2, VEs: 2})
	n10 := mustRun(t, Config{Core: tpu(), Policy: Neu10, Requests: 20},
		TenantSpec{Name: "A", Graph: mkA(compiler.ISANeu), MEs: 2, VEs: 2},
		TenantSpec{Name: "B", Graph: mkB(compiler.ISANeu), MEs: 2, VEs: 2})

	// B's tail under V10 should be far worse than under Neu10 (the
	// paper reports up to 4.6x).
	ratio := v10.Tenants[1].P95Latency / n10.Tenants[1].P95Latency
	if ratio < 2 {
		t.Fatalf("V10 p95 %.0f vs Neu10 %.0f (%.1fx): expected head-of-line blocking",
			v10.Tenants[1].P95Latency, n10.Tenants[1].P95Latency, ratio)
	}
}

func TestV10OverlapsMEWithVE(t *testing.T) {
	// V10's advantage over PMT: a VE-only op of B runs concurrently with
	// A's ME op.
	gaV := synth(compiler.ISAVLIW, meOp(4, 5000, 0))
	gbV := synth(compiler.ISAVLIW, veOp(20000))
	v10 := mustRun(t, Config{Core: tpu(), Policy: V10, Requests: 10},
		TenantSpec{Name: "A", Graph: gaV, MEs: 2, VEs: 2},
		TenantSpec{Name: "B", Graph: gbV, MEs: 2, VEs: 2})
	pmt := mustRun(t, Config{Core: tpu(), Policy: PMT, Requests: 10},
		TenantSpec{Name: "A", Graph: gaV, MEs: 2, VEs: 2},
		TenantSpec{Name: "B", Graph: gbV, MEs: 2, VEs: 2})
	tputV10 := v10.Tenants[0].Throughput + v10.Tenants[1].Throughput
	tputPMT := pmt.Tenants[0].Throughput + pmt.Tenants[1].Throughput
	if tputV10 <= tputPMT*1.3 {
		t.Fatalf("V10 (%.1f rps) should clearly beat PMT (%.1f rps) on ME+VE overlap",
			tputV10, tputPMT)
	}
}

func TestPMTTimeSharesFairly(t *testing.T) {
	// Two identical tenants: PMT must give each ~half the core; each
	// latency ≈ 2x the solo latency.
	g := func() *compiler.CompiledGraph { return synth(compiler.ISAVLIW, meOp(4, 5000, 0)) }
	solo := mustRun(t, Config{Core: tpu(), Policy: PMT, Requests: 40, QuantumCycles: 20000},
		TenantSpec{Name: "A", Graph: g(), MEs: 4, VEs: 4})
	both := mustRun(t, Config{Core: tpu(), Policy: PMT, Requests: 40, QuantumCycles: 20000},
		TenantSpec{Name: "A", Graph: g(), MEs: 2, VEs: 2},
		TenantSpec{Name: "B", Graph: g(), MEs: 2, VEs: 2})
	soloLat := solo.Tenants[0].MeanLatency
	for i, tr := range both.Tenants {
		if tr.MeanLatency < 1.5*soloLat || tr.MeanLatency > 3.5*soloLat {
			t.Fatalf("tenant %d latency %.0f vs solo %.0f: not ~2x time sharing",
				i, tr.MeanLatency, soloLat)
		}
	}
	// Fairness: requests completed within 25%.
	a, b := both.Tenants[0].Requests, both.Tenants[1].Requests
	if a*4 < b*3 || b*4 < a*3 {
		t.Fatalf("unfair sharing: %d vs %d requests", a, b)
	}
}

func TestHBMContentionStretchesExecution(t *testing.T) {
	// A µTOp demanding 2x the HBM bandwidth must take ~2x its nominal.
	core := tpu()
	bytes := int64(2 * core.HBMBytesPerCycle() * 10000)
	op := compiler.CompiledOp{Name: "mem", Kind: compiler.VectorEW, Groups: []compiler.GroupSpec{
		{UTops: []compiler.UTopSpec{{Kind: isa.VEUTop, VECycles: 10000, HBMBytes: bytes}}},
	}}
	g := synth(compiler.ISANeu, op)
	res := mustRun(t, Config{Core: core, Policy: NeuNH, Requests: 3},
		TenantSpec{Name: "m", Graph: g, MEs: 1, VEs: 1})
	if lat := res.Tenants[0].MeanLatency; math.Abs(lat-20000) > 100 {
		t.Fatalf("latency %.0f, want ~20000 (bandwidth bound)", lat)
	}
	if res.AvgBandwidth > core.HBMBytesPerCycle()*1.001 {
		t.Fatalf("served bandwidth %.0f exceeds capacity %.0f",
			res.AvgBandwidth, core.HBMBytesPerCycle())
	}
}

func TestHigherBandwidthHelpsMemoryBound(t *testing.T) {
	core := tpu()
	bytes := int64(3 * core.HBMBytesPerCycle() * 10000)
	op := compiler.CompiledOp{Name: "mem", Kind: compiler.VectorEW, Groups: []compiler.GroupSpec{
		{UTops: []compiler.UTopSpec{{Kind: isa.VEUTop, VECycles: 10000, HBMBytes: bytes}}},
	}}
	slow := mustRun(t, Config{Core: core, Policy: NeuNH, Requests: 3},
		TenantSpec{Name: "m", Graph: synth(compiler.ISANeu, op), MEs: 1, VEs: 1})
	fast := mustRun(t, Config{Core: core.WithHBMBandwidth(core.HBMBwBytes * 3), Policy: NeuNH, Requests: 3},
		TenantSpec{Name: "m", Graph: synth(compiler.ISANeu, op), MEs: 1, VEs: 1})
	if fast.Tenants[0].MeanLatency > slow.Tenants[0].MeanLatency/2 {
		t.Fatalf("3x bandwidth gave %.0f vs %.0f", fast.Tenants[0].MeanLatency, slow.Tenants[0].MeanLatency)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []TenantSpec {
		return []TenantSpec{
			{Name: "A", Graph: synth(compiler.ISANeu, meOp(4, 2000, 500), veOp(3000)), MEs: 2, VEs: 2},
			{Name: "B", Graph: synth(compiler.ISANeu, meOp(2, 1500, 200), veOp(1000)), MEs: 2, VEs: 2},
		}
	}
	cfg := Config{Core: tpu(), Policy: Neu10, Requests: 10}
	a := mustRun(t, cfg, mk()...)
	b := mustRun(t, cfg, mk()...)
	if a.DurationCycles != b.DurationCycles {
		t.Fatalf("durations differ: %v vs %v", a.DurationCycles, b.DurationCycles)
	}
	for i := range a.Tenants {
		if a.Tenants[i].MeanLatency != b.Tenants[i].MeanLatency ||
			a.Tenants[i].P95Latency != b.Tenants[i].P95Latency {
			t.Fatalf("tenant %d metrics differ between identical runs", i)
		}
	}
}

func TestConfigValidation(t *testing.T) {
	g := synth(compiler.ISANeu, meOp(1, 100, 0))
	gv := synth(compiler.ISAVLIW, meOp(1, 100, 0))

	// ISA / policy mismatch.
	if _, err := Run(Config{Core: tpu(), Policy: PMT, Requests: 1},
		[]TenantSpec{{Name: "x", Graph: g, MEs: 2, VEs: 2}}); err == nil {
		t.Fatal("NeuISA graph accepted by PMT")
	}
	if _, err := Run(Config{Core: tpu(), Policy: Neu10, Requests: 1},
		[]TenantSpec{{Name: "x", Graph: gv, MEs: 2, VEs: 2}}); err == nil {
		t.Fatal("VLIW graph accepted by Neu10")
	}
	// Spatial overcommit.
	if _, err := Run(Config{Core: tpu(), Policy: NeuNH, Requests: 1},
		[]TenantSpec{
			{Name: "a", Graph: g, MEs: 3, VEs: 2},
			{Name: "b", Graph: g, MEs: 3, VEs: 2},
		}); err == nil {
		t.Fatal("ME overcommit accepted for spatial policy")
	}
	// No tenants.
	if _, err := Run(Config{Core: tpu(), Policy: Neu10, Requests: 1}, nil); err == nil {
		t.Fatal("empty tenant list accepted")
	}
	// Zero allocation.
	if _, err := Run(Config{Core: tpu(), Policy: Neu10, Requests: 1},
		[]TenantSpec{{Name: "x", Graph: g, MEs: 0, VEs: 2}}); err == nil {
		t.Fatal("0-ME tenant accepted")
	}
}

func TestTimelineSampling(t *testing.T) {
	ga := synth(compiler.ISANeu, meOp(4, 1000, 0), veOp(2000))
	res := mustRun(t, Config{Core: tpu(), Policy: Neu10, Requests: 10, SampleEvery: 500},
		TenantSpec{Name: "A", Graph: ga, MEs: 2, VEs: 2},
		TenantSpec{Name: "B", Graph: synth(compiler.ISANeu, veOp(5000)), MEs: 2, VEs: 2})
	tl := res.Tenants[0].METimeline
	if tl == nil || tl.Len() < 10 {
		t.Fatal("ME timeline not sampled")
	}
	if tl.MaxValue() < 3 {
		t.Fatalf("tenant A never harvested beyond its 2 MEs (max %.0f)", tl.MaxValue())
	}
	if res.Tenants[0].VETimeline.Len() == 0 {
		t.Fatal("VE timeline not sampled")
	}
	if res.HBMTimeline == nil {
		t.Fatal("no HBM timeline")
	}
}

func TestPriorityWeighting(t *testing.T) {
	// Under PMT, a 3x-priority tenant should complete ~3x the requests.
	g := func() *compiler.CompiledGraph { return synth(compiler.ISAVLIW, meOp(4, 5000, 0)) }
	res := mustRun(t, Config{Core: tpu(), Policy: PMT, Requests: 6},
		TenantSpec{Name: "hi", Graph: g(), MEs: 2, VEs: 2, Priority: 3},
		TenantSpec{Name: "lo", Graph: g(), MEs: 2, VEs: 2, Priority: 1})
	hi, lo := res.Tenants[0].Requests, res.Tenants[1].Requests
	if hi < 2*lo {
		t.Fatalf("priority ignored: hi=%d lo=%d", hi, lo)
	}
}
