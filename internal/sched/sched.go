// Package sched implements the paper's architectural contribution — the
// µTOp scheduler and operation scheduler of §III-E — together with the
// event-driven multi-tenant NPU-core performance simulator of §III-G
// that evaluates it, and the three baselines of §V-A:
//
//   - PMT:    PREMA-style temporal sharing of the whole core.
//   - V10:    operator-level temporal sharing of all MEs under the VLIW
//     coupling constraint (an ME operator occupies every ME).
//   - NeuNH:  Neu10-NoHarvest — spatially isolated vNPUs, MIG-style.
//   - Neu10:  spatial isolation plus dynamic µTOp scheduling with ME/VE
//     harvesting and 256-cycle reclaim preemption.
//
// The simulator is a deterministic fluid model: µTOps progress at
// piecewise-constant rates set by ME bindings, VE grants and HBM
// bandwidth sharing; events fire at completions and policy decision
// points. This matches the granularity the paper describes (replaying
// µTOp traces through a frontend scheduler and a backend timing model).
package sched

import (
	"fmt"

	"neu10/internal/arch"
	"neu10/internal/compiler"
	"neu10/internal/isa"
	"neu10/internal/metrics"
	"neu10/internal/sim"
)

// Mode selects the scheduling policy.
type Mode int

const (
	PMT Mode = iota
	V10
	NeuNH
	Neu10
)

func (m Mode) String() string {
	switch m {
	case PMT:
		return "PMT"
	case V10:
		return "V10"
	case NeuNH:
		return "Neu10-NH"
	case Neu10:
		return "Neu10"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// ISAFor returns the compilation target a policy's tenants must use:
// the temporal-sharing baselines run traditional VLIW binaries, the
// spatial policies run NeuISA.
func (m Mode) ISAFor() compiler.ISAKind {
	if m == PMT || m == V10 {
		return compiler.ISAVLIW
	}
	return compiler.ISANeu
}

// TenantSpec describes one collocated vNPU and its workload.
type TenantSpec struct {
	Name     string
	Graph    *compiler.CompiledGraph
	MEs, VEs int     // the vNPU's EU allocation
	Priority float64 // fair-share weight (default 1)

	// ArrivalRate, when > 0, switches this tenant to open-loop traffic:
	// requests arrive in a Poisson stream at this rate (requests/second)
	// and queue when the vNPU is busy; latency then includes queueing
	// delay. Zero keeps the paper's closed-loop methodology (§V-A).
	ArrivalRate float64
}

// Config configures one simulation run.
type Config struct {
	Core   arch.CoreConfig
	Policy Mode
	// Requests: the run ends when every tenant has completed this many
	// requests (the paper's steady-state methodology, §V-A).
	Requests int
	// MaxCycles is a safety stop (0 = default).
	MaxCycles float64
	// QuantumCycles is the PMT time slice and the V10 fairness deficit
	// threshold (0 = default 100k cycles).
	QuantumCycles float64
	// SampleEvery enables timeline sampling at this cycle interval.
	SampleEvery float64
	// Seed drives the deterministic RNG behind open-loop arrivals.
	Seed uint64

	// Ablation knobs for the Neu10 policy (the DESIGN.md ablation
	// studies): disable ME harvesting and/or VE harvesting to isolate
	// each mechanism's contribution. Both false = full Neu10.
	DisableMEHarvest bool
	DisableVEHarvest bool
}

func (c *Config) defaults() {
	if c.Requests == 0 {
		c.Requests = 10
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 5e12
	}
	if c.QuantumCycles == 0 {
		c.QuantumCycles = 100_000
	}
}

// Penalties (cycles). The ME reclaim penalty comes from the core config
// (256 = pop partials + pop weights, §III-G); the others model the
// coarser context switches of the baselines.
const (
	pmtSwitchPenalty = 1024 // full-core context switch (PREMA-style)
	v10SwitchPenalty = 256  // operator-boundary ME-complex switch
)

// TenantResult aggregates one tenant's measurements.
type TenantResult struct {
	Name           string
	Requests       int
	Latency        *metrics.Latencies // cycles per completed request
	MeanLatency    float64
	P95Latency     float64
	Throughput     float64 // requests per second (core frequency applied)
	ActiveCycles   float64 // cycles with ≥1 µTOp running
	HarvestBlocked float64 // cycles blocked because own MEs were harvested (Table III)
	// OpDurations[i] = mean duration of operator i across requests, for
	// the Fig. 23 per-operator speedup breakdown.
	OpDurations []float64
	// Timelines (filled when Config.SampleEvery > 0): assigned MEs and
	// granted VEs over time (Fig. 24).
	METimeline *metrics.TimeSeries
	VETimeline *metrics.TimeSeries
}

// Result is a full simulation outcome.
type Result struct {
	Policy         Mode
	DurationCycles float64
	Tenants        []TenantResult
	MEUtil         float64             // work-weighted busy fraction of all MEs (Fig. 22a)
	VEUtil         float64             // Fig. 22b
	HBMTimeline    *metrics.TimeSeries // bytes/cycle demand served (Fig. 7)
	AvgBandwidth   float64             // bytes/cycle average
}

// ---- internal runtime state ----

// utop is a live µTOp instance.
type utop struct {
	ten   *tenant
	opIdx int
	kind  isa.UTopKind

	// rem is remaining nominal cycles: for ME µTOps the pipeline-bound
	// max(MECycles, VECycles); for VE µTOps, VECycles on one VE.
	rem     float64
	nominal float64
	meFrac  float64 // ME work per nominal cycle (ME µTOps; ≤ 1)
	veNeed  float64 // VE units required at full speed (ME µTOps; ≤ 1)
	bwNeed  float64 // bytes per nominal cycle

	me        int  // bound physical ME (-1 when unbound / VE µTOp)
	harvested bool // running on another vNPU's ME (or borrowed VE time)

	// transient per-event scheduling results
	veGrant float64
	speed   float64
}

// init (re)initializes a µTOp instance for a spec; instances are pooled
// by the simulator (Simulator.takeUTop) so the event loop stays off the
// allocator.
func (u *utop) init(t *tenant, opIdx int, spec compiler.UTopSpec) {
	u.ten, u.opIdx, u.kind, u.me = t, opIdx, spec.Kind, -1
	me := float64(spec.MECycles)
	ve := float64(spec.VECycles)
	switch spec.Kind {
	case isa.MEUTop:
		u.nominal = me
		if ve > u.nominal {
			u.nominal = ve
		}
		if u.nominal == 0 {
			u.nominal = 1
		}
		u.meFrac = me / u.nominal
		u.veNeed = ve / u.nominal
	default:
		u.nominal = ve
		if u.nominal == 0 {
			u.nominal = 1
		}
	}
	u.rem = u.nominal
	u.bwNeed = float64(spec.HBMBytes) / u.nominal
}

// tenant is the runtime state of one collocated vNPU.
type tenant struct {
	spec TenantSpec
	idx  int

	// ownMEs are the physical ME ids this vNPU owns (spatial modes).
	ownMEs []int

	// request progress
	opIdx    int
	groupIdx int
	inFlight int // µTOps of the current group still unfinished

	readyME utopQueue // ready, unbound ME µTOps of the current group
	running []*utop   // bound ME µTOps + active VE µTOps

	reqStart  float64
	completed int

	// Open-loop state: exponential interarrival RNG, the next arrival
	// time, and arrival timestamps waiting for service.
	rng         *sim.RNG
	nextArrival float64
	pending     []float64
	idle        bool

	// fairness accounting
	serviceCycles float64 // weighted engine-cycles consumed (V10/PMT)

	// metrics
	lat            *metrics.Latencies
	activeCycles   float64
	harvestBlocked float64
	opDurSum       []float64
	opDurN         []int
	opStart        float64
	meTL, veTL     *metrics.TimeSeries
}

// utopQueue is a FIFO of ready µTOps with a head index instead of
// re-slicing, so the backing array's capacity is reused across the
// simulation instead of leaking one slot per pop.
type utopQueue struct {
	buf  []*utop
	head int
}

func (q *utopQueue) Len() int { return len(q.buf) - q.head }

func (q *utopQueue) Push(u *utop) {
	if q.head > 0 && len(q.buf) == cap(q.buf) {
		// Compact before growing: usually frees enough room to avoid
		// the reallocation entirely.
		n := copy(q.buf, q.buf[q.head:])
		for i := n; i < len(q.buf); i++ {
			q.buf[i] = nil
		}
		q.buf = q.buf[:n]
		q.head = 0
	}
	q.buf = append(q.buf, u)
}

func (q *utopQueue) Pop() *utop {
	u := q.buf[q.head]
	q.buf[q.head] = nil
	q.head++
	if q.head == len(q.buf) {
		q.buf = q.buf[:0]
		q.head = 0
	}
	return u
}

func (t *tenant) priority() float64 {
	if t.spec.Priority > 0 {
		return t.spec.Priority
	}
	return 1
}

// currentGroup returns the group being executed, or nil when the request
// is finished.
func (t *tenant) currentGroup() *compiler.GroupSpec {
	if t.opIdx >= len(t.spec.Graph.Ops) {
		return nil
	}
	return &t.spec.Graph.Ops[t.opIdx].Groups[t.groupIdx]
}
