package sched

import (
	"testing"

	"neu10/internal/compiler"
)

// TestSimulatorAllocBudget is the allocation budget for the fluid
// simulator's event loop. The loop recycles µTOps and keeps every
// per-event temporary in Simulator scratch, so a full steady-state run
// should cost only the per-run setup (simulator construction, metrics,
// result collection) — a few hundred objects — rather than the
// hundreds of thousands per run the allocating version performed.
// The budget is deliberately loose (1500) to stay robust across Go
// versions while still catching any reintroduced per-event allocation
// (each run executes tens of thousands of events).
func TestSimulatorAllocBudget(t *testing.T) {
	graphA := synth(compiler.ISANeu,
		meOp(4, 3000, 800), veOp(4000), meOp(2, 1500, 2200), meOp(3, 2500, 0))
	graphB := synth(compiler.ISANeu,
		meOp(2, 2000, 500), meOp(4, 1000, 1500), veOp(2500))
	specs := []TenantSpec{
		{Name: "A", Graph: graphA, MEs: 2, VEs: 2},
		{Name: "B", Graph: graphB, MEs: 2, VEs: 2},
	}
	cfg := Config{Core: tpu(), Policy: Neu10, Requests: 50}
	if _, err := Run(cfg, specs); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(10, func() {
		if _, err := Run(cfg, specs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs > 1500 {
		t.Fatalf("simulator run allocates %.0f objects, want ≤ 1500 (event-loop allocation regression?)", allocs)
	}
}
