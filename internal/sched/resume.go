package sched

import "math"

// Resumable fluid runs: the serving layer (internal/serve) prices a
// batched invocation as one opaque fluid run of `total` service cycles
// (CostDB measures it through this package's simulator). Preemptive
// temporal sharing needs to stop such a run part-way and restart it
// later with exactly the work it had left. The fluid model cannot stop
// anywhere: execution checkpoints only at µTOp boundaries — the same
// granularity §III-E preempts harvested MEs at — which this package
// models as a fixed µTOp quantum. CheckpointAt is that contract: given
// how far a run has progressed, it reports the first legal preemption
// point and the exact service split around it.

// ResumePoint describes a fluid run checkpointed at a µTOp-quantum
// boundary. Completed and Remaining partition the run's total service
// cycles exactly (Completed + Remaining == total, bit-for-bit), which
// is what makes preempt/resume work-conserving: the resumed run owes
// precisely Remaining cycles, no more, no less.
type ResumePoint struct {
	// Boundary is the progress point (service cycles from the start of
	// the run) where execution actually stops: the first quantum
	// boundary at or after the observed progress, capped at the total.
	Boundary float64
	// Completed is the service completed at the boundary (== Boundary).
	Completed float64
	// Remaining is the service still owed after the boundary.
	Remaining float64
	// Frac is Completed/total — the completed fraction the
	// checkpoint/restore hook reports at preemption time.
	Frac float64
}

// CheckpointAt computes the earliest legal checkpoint of a fluid run of
// `total` service cycles that has progressed `elapsed` cycles: the next
// µTOp-quantum boundary (a multiple of `quantum`) at or after elapsed,
// capped at total. A run already sitting exactly on a boundary
// checkpoints immediately. A non-positive quantum means preemption is
// legal anywhere (the boundary is elapsed itself); elapsed is clamped
// into [0, total].
func CheckpointAt(total, elapsed, quantum float64) ResumePoint {
	if total <= 0 {
		return ResumePoint{Frac: 1}
	}
	if elapsed < 0 {
		elapsed = 0
	}
	if elapsed > total {
		elapsed = total
	}
	b := elapsed
	if quantum > 0 {
		b = math.Ceil(elapsed/quantum) * quantum
	}
	if b > total {
		b = total
	}
	return ResumePoint{
		Boundary:  b,
		Completed: b,
		Remaining: total - b,
		Frac:      b / total,
	}
}
