package sched

import (
	"math"
	"testing"

	"neu10/internal/compiler"
)

// Open-loop (Poisson arrival) traffic and the harvest-ablation knobs.

func TestOpenLoopLowLoadLatencyNearService(t *testing.T) {
	// Service time 1000 cycles on 4 MEs; arrivals at 5% load: queueing
	// is negligible, mean latency ≈ service time.
	core := tpu()
	g := synth(compiler.ISANeu, meOp(4, 1000, 0))
	rate := 0.05 * core.FrequencyHz / 1000 // 5% utilization
	res := mustRun(t, Config{Core: core, Policy: NeuNH, Requests: 200, Seed: 1},
		TenantSpec{Name: "ol", Graph: g, MEs: 4, VEs: 4, ArrivalRate: rate})
	lat := res.Tenants[0].MeanLatency
	if lat < 1000 || lat > 1200 {
		t.Fatalf("low-load open-loop latency %.0f, want ~1000-1200", lat)
	}
}

func TestOpenLoopQueueingGrowsWithLoad(t *testing.T) {
	// M/D/1-style behavior: latency at 90% load must clearly exceed
	// latency at 30% load (queueing delay).
	core := tpu()
	mk := func() *compiler.CompiledGraph { return synth(compiler.ISANeu, meOp(4, 1000, 0)) }
	run := func(load float64) float64 {
		rate := load * core.FrequencyHz / 1000
		res := mustRun(t, Config{Core: core, Policy: NeuNH, Requests: 400, Seed: 7},
			TenantSpec{Name: "ol", Graph: mk(), MEs: 4, VEs: 4, ArrivalRate: rate})
		return res.Tenants[0].MeanLatency
	}
	lo, hi := run(0.3), run(0.9)
	if hi < 1.5*lo {
		t.Fatalf("latency at 90%% load (%.0f) not clearly above 30%% load (%.0f)", hi, lo)
	}
}

func TestOpenLoopThroughputTracksArrivalRate(t *testing.T) {
	// Under low load the served rate equals the offered rate, not the
	// closed-loop saturation rate.
	core := tpu()
	g := synth(compiler.ISANeu, meOp(4, 1000, 0))
	rate := 0.1 * core.FrequencyHz / 1000
	res := mustRun(t, Config{Core: core, Policy: NeuNH, Requests: 300, Seed: 3},
		TenantSpec{Name: "ol", Graph: g, MEs: 4, VEs: 4, ArrivalRate: rate})
	if got := res.Tenants[0].Throughput; math.Abs(got-rate)/rate > 0.15 {
		t.Fatalf("served %.0f req/s vs offered %.0f", got, rate)
	}
}

func TestOpenLoopDeterministicUnderSeed(t *testing.T) {
	core := tpu()
	mk := func() []TenantSpec {
		return []TenantSpec{{
			Name:  "ol",
			Graph: synth(compiler.ISANeu, meOp(4, 1000, 200), veOp(500)),
			MEs:   2, VEs: 2,
			ArrivalRate: 1e5,
		}}
	}
	cfg := Config{Core: core, Policy: Neu10, Requests: 100, Seed: 42}
	a := mustRun(t, cfg, mk()...)
	b := mustRun(t, cfg, mk()...)
	if a.Tenants[0].MeanLatency != b.Tenants[0].MeanLatency {
		t.Fatal("same seed produced different open-loop results")
	}
	cfg2 := cfg
	cfg2.Seed = 43
	c := mustRun(t, cfg2, mk()...)
	if a.Tenants[0].MeanLatency == c.Tenants[0].MeanLatency {
		t.Fatal("different seeds produced identical arrival streams")
	}
}

func TestOpenLoopMixedWithClosedLoop(t *testing.T) {
	// A bursty open-loop tenant next to a closed-loop batch tenant: the
	// batch tenant harvests the idle engines between bursts.
	core := tpu()
	bursty := synth(compiler.ISANeu, meOp(2, 5000, 0))
	batch := synth(compiler.ISANeu, meOp(4, 20000, 0))
	res := mustRun(t, Config{Core: core, Policy: Neu10, Requests: 20, Seed: 5},
		TenantSpec{Name: "bursty", Graph: bursty, MEs: 2, VEs: 2, ArrivalRate: 2000},
		TenantSpec{Name: "batch", Graph: batch, MEs: 2, VEs: 2})
	nh := mustRun(t, Config{Core: core, Policy: NeuNH, Requests: 20, Seed: 5},
		TenantSpec{Name: "bursty", Graph: bursty, MEs: 2, VEs: 2, ArrivalRate: 2000},
		TenantSpec{Name: "batch", Graph: batch, MEs: 2, VEs: 2})
	// The batch tenant gains from harvesting the bursty tenant's slack.
	if res.Tenants[1].Throughput <= nh.Tenants[1].Throughput*1.2 {
		t.Fatalf("batch tenant gained only %.2fx from harvesting idle open-loop engines",
			res.Tenants[1].Throughput/nh.Tenants[1].Throughput)
	}
	// The bursty tenant's own latency must stay near its NH value.
	if res.Tenants[0].P95Latency > nh.Tenants[0].P95Latency*1.25 {
		t.Fatalf("bursty tenant p95 inflated %.2fx by harvesting",
			res.Tenants[0].P95Latency/nh.Tenants[0].P95Latency)
	}
}

func TestNegativeArrivalRateRejected(t *testing.T) {
	g := synth(compiler.ISANeu, meOp(1, 100, 0))
	_, err := Run(Config{Core: tpu(), Policy: Neu10, Requests: 1},
		[]TenantSpec{{Name: "x", Graph: g, MEs: 1, VEs: 1, ArrivalRate: -1}})
	if err == nil {
		t.Fatal("negative arrival rate accepted")
	}
}

// Ablations: disabling each harvesting mechanism must remove exactly its
// contribution.

func TestAblationDisableMEHarvest(t *testing.T) {
	// Tenant A has ME work 4 wide on 2 own MEs; B is VE-only. ME
	// harvesting is the whole benefit; disabling it must reduce A to NH
	// speed.
	ga := synth(compiler.ISANeu, meOp(4, 1000, 0))
	gb := synth(compiler.ISANeu, veOp(4000))
	run := func(disable bool) float64 {
		res := mustRun(t, Config{Core: tpu(), Policy: Neu10, Requests: 10, DisableMEHarvest: disable},
			TenantSpec{Name: "A", Graph: ga, MEs: 2, VEs: 2},
			TenantSpec{Name: "B", Graph: gb, MEs: 2, VEs: 2})
		return res.Tenants[0].MeanLatency
	}
	with, without := run(false), run(true)
	if without < with*1.8 {
		t.Fatalf("disabling ME harvest changed latency %.0f -> %.0f; expected ~2x", with, without)
	}
}

func TestAblationDisableVEHarvest(t *testing.T) {
	// Tenant A's ME µTOps carry VE work needing more than its own VEs
	// (veNeed 1.0 per µTOp, 2 µTOps, 1 own VE); B's VEs are idle. VE
	// harvesting doubles A's effective VE feed.
	ga := synth(compiler.ISANeu, meOp(2, 1000, 1000))
	gb := synth(compiler.ISANeu, meOp(1, 100000, 0))
	run := func(disable bool) float64 {
		res := mustRun(t, Config{Core: tpu(), Policy: Neu10, Requests: 10, DisableVEHarvest: disable},
			TenantSpec{Name: "A", Graph: ga, MEs: 2, VEs: 1},
			TenantSpec{Name: "B", Graph: gb, MEs: 2, VEs: 3})
		return res.Tenants[0].MeanLatency
	}
	with, without := run(false), run(true)
	if without <= with*1.3 {
		t.Fatalf("disabling VE harvest changed latency %.0f -> %.0f; expected clear slowdown", with, without)
	}
}

func TestAblationFullDisableEqualsNH(t *testing.T) {
	// Neu10 with both harvest paths disabled must behave exactly like
	// Neu10-NH.
	mk := func() []TenantSpec {
		return []TenantSpec{
			{Name: "A", Graph: synth(compiler.ISANeu, meOp(4, 2000, 500), veOp(3000)), MEs: 2, VEs: 2},
			{Name: "B", Graph: synth(compiler.ISANeu, meOp(2, 1500, 200), veOp(1000)), MEs: 2, VEs: 2},
		}
	}
	nh := mustRun(t, Config{Core: tpu(), Policy: NeuNH, Requests: 10}, mk()...)
	abl := mustRun(t, Config{Core: tpu(), Policy: Neu10, Requests: 10,
		DisableMEHarvest: true, DisableVEHarvest: true}, mk()...)
	for i := range nh.Tenants {
		if nh.Tenants[i].MeanLatency != abl.Tenants[i].MeanLatency {
			t.Fatalf("tenant %d: NH %.2f vs fully-ablated Neu10 %.2f",
				i, nh.Tenants[i].MeanLatency, abl.Tenants[i].MeanLatency)
		}
	}
}
