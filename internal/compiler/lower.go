package compiler

import (
	"fmt"

	"neu10/internal/isa"
)

// This file is the compiler's functional backend: it emits executable
// NeuISA binaries for matrix workloads, used by the examples and by the
// cross-validation tests that run the same computation on the functional
// simulator and compare against reference numerics.
//
// The lowering follows the paper's compilation strategy (§III-D): the
// operator is partitioned into up to nx ME µTOps; every µTOp shares one
// code snippet and uses uTop.index to locate its tile; each µTOp is
// compiled as if for a fictional NPU with one ME.

// MatMulLayout fixes SRAM placement for a lowered MatMul.
type MatMulLayout struct {
	ABase int32 // A [M×K], row-major
	BBase int32 // B [K×N], row-major
	CBase int32 // C [M×N], row-major
}

// LowerMatMul emits a NeuISA binary computing C = A·B (optionally fused
// with ReLU) for M×K×N with K ≤ SystolicDim and N == VectorLanes. The
// result is partitioned into `parts` ME µTOps sharing one snippet;
// parts must divide M.
func LowerMatMul(m, k, n, parts int, fuseReLU bool, lay MatMulLayout, veSlots int) (*isa.NeuProgram, error) {
	if n != isa.VectorLanes {
		return nil, fmt.Errorf("compiler: lowering requires N == %d, got %d", isa.VectorLanes, n)
	}
	if k < 1 || k > 128 {
		return nil, fmt.Errorf("compiler: lowering requires K ≤ 128, got %d", k)
	}
	if parts < 1 || m%parts != 0 {
		return nil, fmt.Errorf("compiler: %d µTOps must divide M=%d", parts, m)
	}
	rowsPer := m / parts

	b := isa.NewBuilder(isa.Format{MESlots: 1, VESlots: veSlots})
	// r2 = my µTOp index; r4 = first row of my range.
	b.Misc(isa.UTopIndex(2)).End()
	b.Misc(isa.SMovI(3, int32(rowsPer))).End()
	b.Misc(isa.Operation{Op: isa.OpSMul, Dst: 4, A: 2, B: 3}).End()
	// Latch weights.
	b.Misc(isa.SMovI(5, lay.BBase)).End()
	b.ME(isa.MELoadW(5, k, n)).End()
	// r6 = &A[r4*K], r7 = &C[r4*N].
	b.Misc(isa.SMovI(8, int32(k))).End()
	b.Misc(isa.Operation{Op: isa.OpSMul, Dst: 6, A: 4, B: 8}).End()
	b.Misc(isa.SAddI(6, 6, lay.ABase)).End()
	b.Misc(isa.SMovI(9, int32(n))).End()
	b.Misc(isa.Operation{Op: isa.OpSMul, Dst: 7, A: 4, B: 9}).End()
	b.Misc(isa.SAddI(7, 7, lay.CBase)).End()
	// r10 = remaining rows.
	b.Misc(isa.SMovI(10, int32(rowsPer))).End()
	loopTop := b.PC()
	b.ME(isa.MEPush(6, k)).End()
	if fuseReLU {
		b.ME(isa.MEPop(0)).VE(isa.V1(isa.OpVRelu, 0, 0)).End()
	} else {
		b.ME(isa.MEPop(0)).End()
	}
	b.LS(isa.VStore(7, 0, 0)).End()
	b.Misc(isa.SAddI(6, 6, int32(k))).End()
	b.Misc(isa.SAddI(7, 7, int32(n))).End()
	b.Misc(isa.SAddI(10, 10, -1)).End()
	pc := b.PC()
	b.Misc(isa.Branch(isa.OpBNE, 10, 0, int32(loopTop-pc))).End()
	b.Misc(isa.UTopFinish()).End()
	code, err := b.Code()
	if err != nil {
		return nil, err
	}

	utops := make([]isa.UTop, parts)
	mes := make([]int, parts)
	for i := range utops {
		utops[i] = isa.UTop{Kind: isa.MEUTop, Start: 0}
		mes[i] = i
	}
	p := &isa.NeuProgram{
		VESlots: veSlots,
		MECode:  code,
		UTops:   utops,
		Groups:  []isa.Group{{ME: mes, VE: isa.NullUTop}},
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: lowered program invalid: %w", err)
	}
	return p, nil
}

// LowerMatMulVLIW emits the traditional VLIW equivalent for exactly
// `mes` matrix engines: row blocks are statically assigned to ME slots,
// so the binary only runs on a core with ≥ mes MEs — the coupling NeuISA
// removes. parts semantics match LowerMatMul for comparability.
func LowerMatMulVLIW(m, k, n, mes int, fuseReLU bool, lay MatMulLayout, veSlots int) (*isa.Program, error) {
	if n != isa.VectorLanes {
		return nil, fmt.Errorf("compiler: lowering requires N == %d, got %d", isa.VectorLanes, n)
	}
	if k < 1 || k > 128 {
		return nil, fmt.Errorf("compiler: lowering requires K ≤ 128, got %d", k)
	}
	if mes < 1 || m%mes != 0 {
		return nil, fmt.Errorf("compiler: %d MEs must divide M=%d", mes, m)
	}
	if veSlots < mes {
		// Each ME's popped row needs a VE slot in the same instruction.
		veSlots = mes
	}
	rowsPer := m / mes

	b := isa.NewBuilder(isa.Format{MESlots: mes, VESlots: veSlots})
	// Latch weights into every ME.
	b.Misc(isa.SMovI(5, lay.BBase)).End()
	{
		for s := 0; s < mes; s++ {
			b.ME(isa.MELoadW(5, k, n))
		}
		b.End()
	}
	// Row/output pointers per ME: r8+2i = A ptr, r9+2i... keep it simple:
	// r10+i = A ptr for ME i, r20+i = C ptr for ME i.
	for s := 0; s < mes; s++ {
		b.Misc(isa.SMovI(uint8(10+s), lay.ABase+int32(s*rowsPer*k))).End()
		b.Misc(isa.SMovI(uint8(20+s), lay.CBase+int32(s*rowsPer*n))).End()
	}
	// Fully unrolled row loop: all MEs push, all pop (+ fused ReLU), all
	// store, pointers advance. One VLIW instruction drives all MEs —
	// their control flows are fused, which is the paper's Fig. 8 "before"
	// picture.
	for r := 0; r < rowsPer; r++ {
		for s := 0; s < mes; s++ {
			b.ME(isa.MEPush(uint8(10+s), k))
		}
		b.End()
		for s := 0; s < mes; s++ {
			b.ME(isa.MEPop(uint8(s)))
			if fuseReLU {
				b.VE(isa.V1(isa.OpVRelu, uint8(s), uint8(s)))
			}
		}
		b.End()
		for s := 0; s < mes; s += isa.LSSlots {
			for t := s; t < s+isa.LSSlots && t < mes; t++ {
				b.LS(isa.VStore(uint8(20+t), uint8(t), 0))
			}
			b.End()
		}
		for s := 0; s < mes; s++ {
			b.Misc(isa.SAddI(uint8(10+s), uint8(10+s), int32(k))).End()
			b.Misc(isa.SAddI(uint8(20+s), uint8(20+s), int32(n))).End()
		}
	}
	b.Misc(isa.Halt()).End()
	code, err := b.Code()
	if err != nil {
		return nil, err
	}
	p := &isa.Program{Format: isa.Format{MESlots: mes, VESlots: veSlots}, Code: code}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("compiler: lowered VLIW program invalid: %w", err)
	}
	return p, nil
}

// Transfer describes one HBM<->SRAM staging copy for WrapWithHBMStaging.
type Transfer struct {
	SRAM  int32 // SRAM word address
	HBM   int32 // HBM word address
	Words int32
}

// WrapWithHBMStaging extends a lowered NeuISA program with a prologue
// group that DMAs inputs HBM→SRAM and an epilogue group that DMAs
// outputs SRAM→HBM, using the misc-slot DMA operations. This is how real
// NPU kernels stage their operands; the virtualization layer's launch
// path expects self-staging programs.
func WrapWithHBMStaging(p *isa.NeuProgram, loads, stores []Transfer) error {
	b := isa.NewBuilder(isa.Format{MESlots: 0, VESlots: p.VESlots})
	emit := func(ts []Transfer, op func(dst, a uint8, w int32) isa.Operation) int {
		start := b.PC()
		for _, t := range ts {
			b.Misc(isa.SMovI(2, t.SRAM)).End()
			b.Misc(isa.SMovI(3, t.HBM)).End()
			b.Misc(op(2, 3, t.Words)).End()
		}
		b.Misc(isa.UTopFinish()).End()
		return start
	}
	inStart := emit(loads, func(dst, a uint8, w int32) isa.Operation {
		return isa.DMALoad(dst, a, w)
	})
	outStart := emit(stores, func(dst, a uint8, w int32) isa.Operation {
		// dma.store: HBM[sreg dst] <- SRAM[sreg a]; swap operands.
		return isa.DMAStore(a, dst, w)
	})
	base := len(p.VECode)
	code, err := b.Code()
	if err != nil {
		return err
	}
	p.VECode = append(p.VECode, code...)
	inIdx := len(p.UTops)
	p.UTops = append(p.UTops,
		isa.UTop{Kind: isa.VEUTop, Start: base + inStart},
		isa.UTop{Kind: isa.VEUTop, Start: base + outStart},
	)
	groups := make([]isa.Group, 0, len(p.Groups)+2)
	groups = append(groups, isa.Group{ME: nil, VE: inIdx})
	groups = append(groups, p.Groups...)
	groups = append(groups, isa.Group{ME: nil, VE: inIdx + 1})
	p.Groups = groups
	return p.Validate()
}
