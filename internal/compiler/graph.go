// Package compiler implements the ML-compiler substrate the paper relies
// on: a tensor-operator graph IR, a systolic-array cost model, operator
// tiling into NeuISA µTOps, fused-operator grouping, and the compile-time
// profiling (ME/VE active fractions m and v) that drives the vNPU
// allocator. A small backend also lowers matrix workloads to executable
// NeuISA binaries for the functional simulator.
package compiler

import "fmt"

// OpKind classifies tensor operators by which engine does their work.
type OpKind int

const (
	// MatMul covers dense matrix multiplication, including convolutions
	// after im2col rewriting (M=N·OH·OW, K=KH·KW·Cin, N=Cout) and batched
	// attention matmuls. ME-executed with a VE epilogue.
	MatMul OpKind = iota
	// VectorEW is elementwise vector work (add, mul, activation, scale…).
	VectorEW
	// Softmax is a multi-pass vector op (max, exp, sum, normalize).
	Softmax
	// LayerNorm is a multi-pass vector normalization.
	LayerNorm
	// Reduction reduces along an axis on the VEs.
	Reduction
	// EmbeddingLookup is the DLRM/NCF-style gather: tiny compute, large
	// HBM traffic; VE-executed.
	EmbeddingLookup
	// Pooling is window pooling; VE-executed.
	Pooling
)

func (k OpKind) String() string {
	switch k {
	case MatMul:
		return "MatMul"
	case VectorEW:
		return "VectorEW"
	case Softmax:
		return "Softmax"
	case LayerNorm:
		return "LayerNorm"
	case Reduction:
		return "Reduction"
	case EmbeddingLookup:
		return "Embedding"
	case Pooling:
		return "Pooling"
	default:
		return fmt.Sprintf("OpKind(%d)", int(k))
	}
}

// IsME reports whether the operator's main work runs on matrix engines.
func (k OpKind) IsME() bool { return k == MatMul }

// Op is one tensor operator in a DNN execution graph.
type Op struct {
	Name string
	Kind OpKind

	// MatMul geometry (after im2col for convolutions). Unused otherwise.
	M, K, N int

	// Elems is the element count for vector-kind operators.
	Elems int64
	// Passes is how many read-modify-write sweeps a vector op makes over
	// its data (1 for elementwise, ~4 for softmax/layernorm).
	Passes int

	// FusedVE marks a fused VE epilogue on a MatMul (bias+activation):
	// the ReLU in the paper's running MatMul+ReLU example.
	FusedVE bool

	// Memory traffic in bytes. WeightBytes counts parameters streamed
	// from HBM (embedding tables included); IOBytes counts activation
	// reads+writes that miss SRAM.
	WeightBytes int64
	IOBytes     int64
}

// Validate checks the operator is well-formed.
func (o *Op) Validate() error {
	switch o.Kind {
	case MatMul:
		if o.M < 1 || o.K < 1 || o.N < 1 {
			return fmt.Errorf("compiler: %s: MatMul %dx%dx%d", o.Name, o.M, o.K, o.N)
		}
	default:
		if o.Elems < 1 {
			return fmt.Errorf("compiler: %s: %s with %d elements", o.Name, o.Kind, o.Elems)
		}
		if o.Passes < 1 {
			return fmt.Errorf("compiler: %s: %s with %d passes", o.Name, o.Kind, o.Passes)
		}
	}
	if o.WeightBytes < 0 || o.IOBytes < 0 {
		return fmt.Errorf("compiler: %s: negative traffic", o.Name)
	}
	return nil
}

// MACs returns the multiply-accumulate count of a MatMul op.
func (o *Op) MACs() int64 {
	if o.Kind != MatMul {
		return 0
	}
	return int64(o.M) * int64(o.K) * int64(o.N)
}

// Graph is a DNN inference program: a dependence-ordered operator list.
// Inference graphs on NPUs are static and (per the paper §III-G) replayed
// as traces, so a topologically sorted sequence is the natural form;
// operators at the same position in independent branches are simply
// adjacent in the order the compiler emitted them.
type Graph struct {
	Model     string
	BatchSize int
	Ops       []Op

	// HBMFootprint is the resident-set size of the model (weights +
	// peak activations), the Table I column.
	HBMFootprint int64
}

// Validate checks every operator.
func (g *Graph) Validate() error {
	if g.Model == "" {
		return fmt.Errorf("compiler: graph without model name")
	}
	if g.BatchSize < 1 {
		return fmt.Errorf("compiler: batch size %d", g.BatchSize)
	}
	if len(g.Ops) == 0 {
		return fmt.Errorf("compiler: %s: empty graph", g.Model)
	}
	for i := range g.Ops {
		if err := g.Ops[i].Validate(); err != nil {
			return fmt.Errorf("op %d: %w", i, err)
		}
	}
	return nil
}

// TotalMACs sums MACs across the graph.
func (g *Graph) TotalMACs() int64 {
	var t int64
	for i := range g.Ops {
		t += g.Ops[i].MACs()
	}
	return t
}

// TotalHBMTraffic sums weight and activation traffic in bytes.
func (g *Graph) TotalHBMTraffic() int64 {
	var t int64
	for i := range g.Ops {
		t += g.Ops[i].WeightBytes + g.Ops[i].IOBytes
	}
	return t
}
