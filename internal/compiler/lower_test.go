package compiler

import (
	"testing"

	"neu10/internal/isa"
	"neu10/internal/npu"
	"neu10/internal/tensor"
)

// Cross-validation: the compiler's functional backend must produce NeuISA
// and VLIW binaries that, executed on the functional simulator, match the
// reference numerics — and the NeuISA binary must produce the same result
// on every ME count (the paper's recompilation-free portability claim).

func lowerTestData(m, k int) (*tensor.Tensor, *tensor.Tensor) {
	a := tensor.New(m, k)
	b := tensor.New(k, isa.VectorLanes)
	for i := range a.Data {
		a.Data[i] = float32((i*7)%31) - 15
	}
	for i := range b.Data {
		b.Data[i] = float32((i*5)%23)/4 - 2.5
	}
	return a, b
}

func newLowerCore(t *testing.T) *npu.Core {
	t.Helper()
	cfg := npu.DefaultConfig()
	cfg.SRAMWords = 1 << 18
	cfg.HBMWords = 1 << 12
	c, err := npu.NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestLowerMatMulMatchesReference(t *testing.T) {
	const m, k = 32, 96
	a, bm := lowerTestData(m, k)
	want := tensor.ReLU(tensor.MatMul(a, bm))

	lay := MatMulLayout{ABase: 0, BBase: 16384, CBase: 65536}
	prog, err := LowerMatMul(m, k, isa.VectorLanes, 4, true, lay, 4)
	if err != nil {
		t.Fatal(err)
	}

	for _, meCount := range []int{1, 2, 4} {
		core := newLowerCore(t)
		copy(core.SRAM[lay.ABase:], a.Data)
		copy(core.SRAM[lay.BBase:], bm.Data)
		mes := make([]int, meCount)
		for i := range mes {
			mes[i] = i
		}
		if _, err := core.RunNeu(prog, mes); err != nil {
			t.Fatalf("%d MEs: %v", meCount, err)
		}
		got := tensor.New(m, isa.VectorLanes)
		copy(got.Data, core.SRAM[lay.CBase:int(lay.CBase)+m*isa.VectorLanes])
		if d := tensor.MaxAbsDiff(want, got); d != 0 {
			t.Fatalf("%d MEs: lowered NeuISA differs from reference by %v", meCount, d)
		}
	}
}

func TestLowerMatMulNoFusion(t *testing.T) {
	const m, k = 16, 64
	a, bm := lowerTestData(m, k)
	want := tensor.MatMul(a, bm) // negative values preserved

	lay := MatMulLayout{ABase: 0, BBase: 8192, CBase: 32768}
	prog, err := LowerMatMul(m, k, isa.VectorLanes, 2, false, lay, 2)
	if err != nil {
		t.Fatal(err)
	}
	core := newLowerCore(t)
	copy(core.SRAM[lay.ABase:], a.Data)
	copy(core.SRAM[lay.BBase:], bm.Data)
	if _, err := core.RunNeu(prog, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	got := tensor.New(m, isa.VectorLanes)
	copy(got.Data, core.SRAM[lay.CBase:int(lay.CBase)+m*isa.VectorLanes])
	if d := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("unfused lowering differs by %v", d)
	}
	neg := false
	for _, v := range got.Data {
		if v < 0 {
			neg = true
		}
	}
	if !neg {
		t.Fatal("test data produced no negative outputs; fusion test is vacuous")
	}
}

func TestLowerVLIWMatchesNeuISA(t *testing.T) {
	const m, k = 24, 48
	a, bm := lowerTestData(m, k)
	want := tensor.ReLU(tensor.MatMul(a, bm))
	lay := MatMulLayout{ABase: 0, BBase: 8192, CBase: 32768}

	vp, err := LowerMatMulVLIW(m, k, isa.VectorLanes, 4, true, lay, 4)
	if err != nil {
		t.Fatal(err)
	}
	core := newLowerCore(t)
	copy(core.SRAM[lay.ABase:], a.Data)
	copy(core.SRAM[lay.BBase:], bm.Data)
	if _, err := core.RunVLIW(vp); err != nil {
		t.Fatal(err)
	}
	got := tensor.New(m, isa.VectorLanes)
	copy(got.Data, core.SRAM[lay.CBase:int(lay.CBase)+m*isa.VectorLanes])
	if d := tensor.MaxAbsDiff(want, got); d != 0 {
		t.Fatalf("VLIW lowering differs by %v", d)
	}
}

func TestLowerVLIWStaticCoupling(t *testing.T) {
	// The VLIW binary compiled for 4 MEs must refuse to run on 2 MEs,
	// while the NeuISA binary for the same operator runs anywhere — the
	// paper's core ISA argument in one test.
	const m, k = 16, 32
	lay := MatMulLayout{ABase: 0, BBase: 4096, CBase: 16384}
	vp, err := LowerMatMulVLIW(m, k, isa.VectorLanes, 4, false, lay, 4)
	if err != nil {
		t.Fatal(err)
	}
	np, err := LowerMatMul(m, k, isa.VectorLanes, 4, false, lay, 4)
	if err != nil {
		t.Fatal(err)
	}

	cfg := npu.DefaultConfig()
	cfg.MEs = 2
	cfg.SRAMWords = 1 << 18
	cfg.HBMWords = 1 << 12
	core, err := npu.NewCore(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.RunVLIW(vp); err == nil {
		t.Fatal("4-ME VLIW binary ran on a 2-ME core")
	}
	if _, err := core.RunNeu(np, []int{0, 1}); err != nil {
		t.Fatalf("NeuISA binary failed on 2-ME core: %v", err)
	}
}

func TestLowerRejectsBadShapes(t *testing.T) {
	lay := MatMulLayout{}
	if _, err := LowerMatMul(10, 64, isa.VectorLanes, 3, false, lay, 2); err == nil {
		t.Fatal("parts not dividing M accepted")
	}
	if _, err := LowerMatMul(8, 256, isa.VectorLanes, 2, false, lay, 2); err == nil {
		t.Fatal("K > 128 accepted")
	}
	if _, err := LowerMatMul(8, 64, 64, 2, false, lay, 2); err == nil {
		t.Fatal("N != lanes accepted")
	}
}

func TestLoweredProgramSharesSnippets(t *testing.T) {
	prog, err := LowerMatMul(32, 64, isa.VectorLanes, 4, true, MatMulLayout{}, 4)
	if err != nil {
		t.Fatal(err)
	}
	s := prog.Stats()
	if s.MEUTops != 4 {
		t.Fatalf("µTOps = %d, want 4", s.MEUTops)
	}
	if s.SharedBytes == 0 {
		t.Fatal("lowered µTOps do not share their snippet")
	}
}
