package compiler

import (
	"testing"
	"testing/quick"

	"neu10/internal/arch"
	"neu10/internal/isa"
)

func testCore() arch.CoreConfig { return arch.TPUv4Like() }

func TestCostModelMatMulCycles(t *testing.T) {
	cm := NewCostModel(testCore())
	op := Op{Name: "mm", Kind: MatMul, M: 1024, K: 1024, N: 1024}
	c := cm.Cost(&op)
	streaming := float64(op.MACs()) / cm.Core.MEMACsPerCycle()
	if float64(c.MECycles) < streaming {
		t.Fatalf("ME cycles %d below streaming bound %.0f", c.MECycles, streaming)
	}
	if float64(c.MECycles) > streaming*1.5 {
		t.Fatalf("ME cycles %d more than 1.5x streaming bound %.0f", c.MECycles, streaming)
	}
	// Output elements must each cross a VE once (aggregation).
	minVE := float64(op.M*op.N) / cm.Core.VEOpsPerCycle()
	if float64(c.VECycles) < minVE {
		t.Fatalf("VE cycles %d below aggregation bound %.0f", c.VECycles, minVE)
	}
}

func TestCostModelFusedEpilogueCostsMore(t *testing.T) {
	cm := NewCostModel(testCore())
	plain := Op{Name: "mm", Kind: MatMul, M: 512, K: 512, N: 512}
	fused := plain
	fused.FusedVE = true
	if cm.Cost(&fused).VECycles <= cm.Cost(&plain).VECycles {
		t.Fatal("fused epilogue did not increase VE cycles")
	}
	if cm.Cost(&fused).MECycles != cm.Cost(&plain).MECycles {
		t.Fatal("fusion changed ME cycles")
	}
}

func TestCostModelVectorOp(t *testing.T) {
	cm := NewCostModel(testCore())
	op := Op{Name: "ln", Kind: LayerNorm, Elems: 1 << 20, Passes: 4}
	c := cm.Cost(&op)
	streaming := uint64(float64(op.Elems) * 4 / cm.Core.VEOpsPerCycle())
	if c.MECycles != 0 {
		t.Fatalf("vector op has ME cycles %d", c.MECycles)
	}
	if c.VECycles < streaming || c.VECycles > streaming+8192 {
		t.Fatalf("VE cycles %d outside [%d, %d+launch]", c.VECycles, streaming, streaming)
	}
}

func TestCostModelGEMVIsMemoryBound(t *testing.T) {
	// A decode-shaped GEMV (tiny M, huge K×N) must be HBM-bound, the
	// paper's LLaMA observation.
	cm := NewCostModel(testCore())
	op := Op{Name: "gemv", Kind: MatMul, M: 8, K: 5120, N: 13824,
		WeightBytes: 5120 * 13824 * 4}
	c := cm.Cost(&op)
	if hbm := cm.HBMCycles(c.HBMBytes); hbm <= c.MECycles || hbm <= c.VECycles {
		t.Fatalf("GEMV not memory bound: me=%d ve=%d hbm=%d", c.MECycles, c.VECycles, hbm)
	}
}

func TestProfileComputeBoundSumsAtLeastOne(t *testing.T) {
	// For compute-bound graphs the paper's m+v >= 1 assumption must hold.
	g := &Graph{Model: "toy", BatchSize: 1, Ops: []Op{
		{Name: "mm", Kind: MatMul, M: 2048, K: 2048, N: 2048},
		{Name: "act", Kind: VectorEW, Elems: 2048 * 2048, Passes: 1},
	}}
	cm := NewCostModel(testCore())
	p := cm.ProfileGraph(g)
	if p.M+p.V < 1 {
		t.Fatalf("m+v = %.3f < 1 for compute-bound graph", p.M+p.V)
	}
	if p.M <= p.V {
		t.Fatalf("matmul-heavy graph has m=%.3f <= v=%.3f", p.M, p.V)
	}
}

func TestCompileNeuOutputParallelMatMul(t *testing.T) {
	c, err := New(testCore())
	if err != nil {
		t.Fatal(err)
	}
	g := &Graph{Model: "toy", BatchSize: 1, Ops: []Op{
		{Name: "big", Kind: MatMul, M: 4096, K: 1024, N: 1024},
	}}
	cg, err := c.Compile(g, ISANeu)
	if err != nil {
		t.Fatal(err)
	}
	if err := cg.Validate(); err != nil {
		t.Fatal(err)
	}
	op := cg.Ops[0]
	if len(op.Groups) != 1 {
		t.Fatalf("output-parallel matmul compiled to %d groups", len(op.Groups))
	}
	if got := len(op.Groups[0].UTops); got != testCore().MEs {
		t.Fatalf("got %d µTOps, want %d", got, testCore().MEs)
	}
	if op.ReductionSplit {
		t.Fatal("output-parallel matmul marked reduction-split")
	}
	// Cycle conservation.
	cost := c.CostModel().Cost(&g.Ops[0])
	if op.TotalME() != cost.MECycles {
		t.Fatalf("ME cycles not conserved: %d vs %d", op.TotalME(), cost.MECycles)
	}
	if op.TotalVE() != cost.VECycles {
		t.Fatalf("VE cycles not conserved: %d vs %d", op.TotalVE(), cost.VECycles)
	}
	if op.TotalHBM() != cost.HBMBytes {
		t.Fatalf("HBM bytes not conserved: %d vs %d", op.TotalHBM(), cost.HBMBytes)
	}
}

func TestCompileNeuReductionSplit(t *testing.T) {
	c, err := New(testCore())
	if err != nil {
		t.Fatal(err)
	}
	// One output tile (M,N ≤ 128) but a deep K: must split the reduction
	// and pay the separate VE summation group — the Fig. 16 overhead.
	g := &Graph{Model: "toy", BatchSize: 1, Ops: []Op{
		{Name: "deep", Kind: MatMul, M: 64, K: 8192, N: 64},
	}}
	cg, err := c.Compile(g, ISANeu)
	if err != nil {
		t.Fatal(err)
	}
	op := cg.Ops[0]
	if !op.ReductionSplit {
		t.Fatal("deep-K matmul not reduction-split under NeuISA")
	}
	if len(op.Groups) != 2 {
		t.Fatalf("reduction split has %d groups, want 2", len(op.Groups))
	}
	last := op.Groups[1].UTops
	if len(last) != 1 || last[0].Kind != isa.VEUTop {
		t.Fatal("summation group is not a single VE µTOp")
	}

	// The same op under VLIW pipelines the summation: one group, no split.
	vg, err := c.Compile(g, ISAVLIW)
	if err != nil {
		t.Fatal(err)
	}
	if vg.Ops[0].ReductionSplit || len(vg.Ops[0].Groups) != 1 {
		t.Fatal("VLIW compilation should pipeline the reduction")
	}
}

func TestCompileVectorOp(t *testing.T) {
	c, _ := New(testCore())
	g := &Graph{Model: "toy", BatchSize: 1, Ops: []Op{
		{Name: "sm", Kind: Softmax, Elems: 1 << 16, Passes: 4},
	}}
	cg, err := c.Compile(g, ISANeu)
	if err != nil {
		t.Fatal(err)
	}
	op := cg.Ops[0]
	if len(op.Groups) != 1 || len(op.Groups[0].UTops) != 1 {
		t.Fatal("vector op should compile to a single VE µTOp")
	}
	if op.Groups[0].UTops[0].Kind != isa.VEUTop {
		t.Fatal("vector op compiled to an ME µTOp")
	}
}

func TestCompileRejectsInvalidGraph(t *testing.T) {
	c, _ := New(testCore())
	if _, err := c.Compile(&Graph{Model: "x", BatchSize: 1}, ISANeu); err == nil {
		t.Fatal("empty graph compiled")
	}
	bad := &Graph{Model: "x", BatchSize: 1, Ops: []Op{{Name: "m", Kind: MatMul}}}
	if _, err := c.Compile(bad, ISANeu); err == nil {
		t.Fatal("zero-dim matmul compiled")
	}
}

func TestSplitCyclesConservesProperty(t *testing.T) {
	f := func(total uint32, nRaw uint8) bool {
		n := int(nRaw%16) + 1
		parts := splitCycles(uint64(total), n)
		var sum uint64
		var maxP, minP uint64 = 0, ^uint64(0)
		for _, p := range parts {
			sum += p
			if p > maxP {
				maxP = p
			}
			if p < minP {
				minP = p
			}
		}
		return sum == uint64(total) && len(parts) == n && maxP-minP <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestIntensityRatioOrdering(t *testing.T) {
	cm := NewCostModel(testCore())
	meHeavy := &Graph{Model: "me", BatchSize: 1, Ops: []Op{
		{Name: "mm", Kind: MatMul, M: 4096, K: 4096, N: 4096},
	}}
	veHeavy := &Graph{Model: "ve", BatchSize: 1, Ops: []Op{
		{Name: "ew", Kind: VectorEW, Elems: 1 << 24, Passes: 8},
		{Name: "mm", Kind: MatMul, M: 128, K: 128, N: 128},
	}}
	if cm.IntensityRatio(meHeavy) <= 1 {
		t.Fatal("matmul graph not ME-intensive")
	}
	if cm.IntensityRatio(veHeavy) >= 1 {
		t.Fatal("vector graph not VE-intensive")
	}
}
