package compiler

import (
	"math"

	"neu10/internal/arch"
)

// CostModel converts operator shapes into engine cycles for a core
// configuration. It follows systolic-array first principles:
//
//   - An ME retires SystolicDim² MACs/cycle once streaming; each weight
//     tile costs a fill/drain/load overhead proportional to SystolicDim.
//   - A VE retires VELanes×VESublanes FP32 lane-ops per cycle.
//   - Every MatMul output element passes through a VE at least once (the
//     VE aggregates systolic outputs — paper §III-D), plus one more pass
//     per fused epilogue.
//   - HBM traffic is weights + activation spill; SRAM reuse is already
//     reflected in the per-op byte counts provided by the model builders.
type CostModel struct {
	Core arch.CoreConfig
}

// NewCostModel builds a cost model for the core.
func NewCostModel(core arch.CoreConfig) *CostModel { return &CostModel{Core: core} }

// OpCost is the engine-cycle decomposition of one operator, before any
// partitioning into µTOps: totals across the whole operator, as if run on
// one ME and one VE.
type OpCost struct {
	MECycles uint64 // systolic busy cycles (single ME)
	VECycles uint64 // vector busy cycles (single VE)
	HBMBytes int64  // off-chip traffic
}

func ceilDiv(a, b int) int { return (a + b - 1) / b }

// veLaunchCycles is the fixed cost of a standalone vector kernel
// invocation: launch, pipeline warmup, and the serial latency of
// cross-lane reduction trees that small tensors cannot hide. It is why
// small-batch workloads look relatively VE-heavier and drift ME-ward as
// batch grows (the paper's Fig. 4 trend).
const veLaunchCycles = 1536

// Cost computes the cost of one operator.
func (cm *CostModel) Cost(op *Op) OpCost {
	var c OpCost
	c.HBMBytes = op.WeightBytes + op.IOBytes
	dim := cm.Core.SystolicDim
	switch op.Kind {
	case MatMul:
		tilesK := ceilDiv(op.K, dim)
		tilesN := ceilDiv(op.N, dim)
		streaming := float64(op.MACs()) / cm.Core.MEMACsPerCycle()
		// Weight latching is double-buffered against compute, so the
		// exposed overhead is the pipeline fill per K-stripe and drain
		// per N-stripe, not a full reload per tile.
		overhead := float64(tilesK+tilesN) * float64(dim)
		c.MECycles = uint64(math.Ceil(streaming + overhead))
		// VE aggregation: one pass over outputs, plus one per fused op.
		passes := 1.0
		if op.FusedVE {
			passes = 2.0
		}
		outElems := float64(op.M) * float64(op.N) * float64(tilesK)
		c.VECycles = uint64(math.Ceil(outElems * passes / cm.Core.VEOpsPerCycle()))
	case EmbeddingLookup:
		// Gather: VE moves each element once; the real cost is HBM.
		c.VECycles = veLaunchCycles + uint64(math.Ceil(float64(op.Elems)*float64(op.Passes)/cm.Core.VEOpsPerCycle()))
	default:
		// Standalone vector kernels pay a fixed launch/pipeline-warmup
		// cost per invocation; it amortizes with batch size, which is why
		// workloads drift ME-ward as batch grows (Fig. 4).
		c.VECycles = veLaunchCycles + uint64(math.Ceil(float64(op.Elems)*float64(op.Passes)/cm.Core.VEOpsPerCycle()))
	}
	if c.MECycles == 0 && c.VECycles == 0 {
		c.VECycles = 1
	}
	return c
}

// HBMCycles converts op traffic into cycles at full bandwidth — the
// operator's minimum runtime when memory-bound.
func (cm *CostModel) HBMCycles(bytes int64) uint64 {
	if bytes <= 0 {
		return 0
	}
	return uint64(math.Ceil(float64(bytes) / cm.Core.HBMBytesPerCycle()))
}

// Profile is the compile-time profiling result the vNPU allocator
// consumes (paper §III-B): m and v are the ME and VE active-time
// fractions of the workload measured on one ME and one VE.
type Profile struct {
	Model     string
	BatchSize int
	M         float64 // ME active fraction, m
	V         float64 // VE active fraction, v
	// TotalCycles is the 1-ME/1-VE runtime with ME/VE overlap.
	TotalCycles uint64
	// MECycles/VECycles are the raw busy totals.
	MECycles uint64
	VECycles uint64
	// HBMBytes is total traffic; AvgBandwidth the implied mean demand.
	HBMBytes int64
}

// ProfileGraph computes (m, v) for a workload: per operator the ME and VE
// streams overlap (VLIW slots pipeline them), so the operator runtime on
// 1 ME + 1 VE is max(me, ve) and the active fractions follow. The paper's
// observation m+v ≥ 1 holds by construction.
func (cm *CostModel) ProfileGraph(g *Graph) Profile {
	p := Profile{Model: g.Model, BatchSize: g.BatchSize}
	for i := range g.Ops {
		c := cm.Cost(&g.Ops[i])
		t := c.MECycles
		if c.VECycles > t {
			t = c.VECycles
		}
		// A memory-bound operator cannot finish faster than its traffic.
		if h := cm.HBMCycles(c.HBMBytes); h > t {
			t = h
		}
		p.TotalCycles += t
		p.MECycles += c.MECycles
		p.VECycles += c.VECycles
		p.HBMBytes += c.HBMBytes
	}
	if p.TotalCycles > 0 {
		p.M = float64(p.MECycles) / float64(p.TotalCycles)
		p.V = float64(p.VECycles) / float64(p.TotalCycles)
	}
	if p.M > 1 {
		p.M = 1
	}
	if p.V > 1 {
		p.V = 1
	}
	return p
}

// IntensityRatio returns the ME:VE execution-time ratio of a graph — the
// quantity plotted in the paper's Fig. 4 (0.001…100 across workloads).
func (cm *CostModel) IntensityRatio(g *Graph) float64 {
	var me, ve uint64
	for i := range g.Ops {
		c := cm.Cost(&g.Ops[i])
		me += c.MECycles
		ve += c.VECycles
	}
	if ve == 0 {
		return math.Inf(1)
	}
	return float64(me) / float64(ve)
}
