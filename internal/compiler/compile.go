package compiler

import (
	"fmt"

	"neu10/internal/arch"
	"neu10/internal/isa"
)

// UTopSpec is the performance-simulator skeleton of one µTOp: how many
// busy cycles it needs on each engine class and how much HBM traffic it
// carries. The functional encoding of µTOps lives in internal/isa; the
// performance experiments schedule these specs (paper §III-G: the
// simulator replays µTOp traces).
type UTopSpec struct {
	Kind     isa.UTopKind
	MECycles uint64 // busy cycles on the one ME this µTOp binds (0 for VE µTOps)
	VECycles uint64 // VE work carried by this µTOp (epilogue for ME µTOps)
	HBMBytes int64
}

// GroupSpec is one µTOp group: its µTOps may run concurrently; groups of
// an operator execute in order.
type GroupSpec struct {
	UTops []UTopSpec
}

// CompiledOp is an operator lowered to µTOp groups.
type CompiledOp struct {
	Name string
	Kind OpKind
	// Groups run sequentially; µTOps within a group concurrently.
	Groups []GroupSpec
	// ReductionSplit marks the NeuISA-overhead case (paper §III-D): the
	// operator was partitioned on the reduction dimension, so the final
	// summation runs as a separate VE µTOp group and cannot pipeline with
	// the ME µTOps.
	ReductionSplit bool
}

// TotalME returns the summed ME cycles across all µTOps.
func (c *CompiledOp) TotalME() uint64 {
	var t uint64
	for _, g := range c.Groups {
		for _, u := range g.UTops {
			t += u.MECycles
		}
	}
	return t
}

// TotalVE returns the summed VE cycles across all µTOps.
func (c *CompiledOp) TotalVE() uint64 {
	var t uint64
	for _, g := range c.Groups {
		for _, u := range g.UTops {
			t += u.VECycles
		}
	}
	return t
}

// TotalHBM returns the summed HBM bytes across all µTOps.
func (c *CompiledOp) TotalHBM() int64 {
	var t int64
	for _, g := range c.Groups {
		for _, u := range g.UTops {
			t += u.HBMBytes
		}
	}
	return t
}

// CompiledGraph is a whole workload lowered to µTOp groups.
type CompiledGraph struct {
	Model     string
	BatchSize int
	Target    arch.CoreConfig
	ISA       ISAKind
	Ops       []CompiledOp
	Footprint int64
}

// ISAKind distinguishes the two compilation targets.
type ISAKind int

const (
	// ISANeu is NeuISA: operators split into per-ME µTOps that hardware
	// binds to engines at runtime.
	ISANeu ISAKind = iota
	// ISAVLIW is the traditional coupled VLIW target: the operator's ME
	// count is baked in at compile time.
	ISAVLIW
)

func (k ISAKind) String() string {
	if k == ISANeu {
		return "NeuISA"
	}
	return "VLIW"
}

// Compiler lowers operator graphs for a target core.
type Compiler struct {
	cm   *CostModel
	core arch.CoreConfig
}

// New returns a compiler for the core configuration.
func New(core arch.CoreConfig) (*Compiler, error) {
	if err := core.Validate(); err != nil {
		return nil, err
	}
	return &Compiler{cm: NewCostModel(core), core: core}, nil
}

// CostModel exposes the compiler's cost model (the allocator reuses it).
func (c *Compiler) CostModel() *CostModel { return c.cm }

// Compile lowers a graph. For ISANeu, each MatMul is partitioned into up
// to core.MEs ME µTOps along its independent output tiles; when the
// output is too small to split, the reduction dimension is split instead
// and a separate VE-µTOp summation group is appended (the Fig. 16
// overhead case). Vector operators become single VE µTOps. For ISAVLIW,
// the operator keeps one group whose ME µTOps must launch together
// (enforced by the scheduler, not the data) and reduction summation
// pipelines with the MEs, matching the paper's observation that the
// traditional ISA can pipeline what NeuISA must serialize.
func (c *Compiler) Compile(g *Graph, kind ISAKind) (*CompiledGraph, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	out := &CompiledGraph{
		Model:     g.Model,
		BatchSize: g.BatchSize,
		Target:    c.core,
		ISA:       kind,
		Footprint: g.HBMFootprint,
		Ops:       make([]CompiledOp, 0, len(g.Ops)),
	}
	for i := range g.Ops {
		op := &g.Ops[i]
		cost := c.cm.Cost(op)
		var co CompiledOp
		switch {
		case op.Kind.IsME():
			co = c.compileMatMul(op, cost, kind)
		default:
			co = CompiledOp{
				Name: op.Name,
				Kind: op.Kind,
				Groups: []GroupSpec{{UTops: []UTopSpec{{
					Kind:     isa.VEUTop,
					VECycles: cost.VECycles,
					HBMBytes: cost.HBMBytes,
				}}}},
			}
		}
		out.Ops = append(out.Ops, co)
	}
	return out, nil
}

func (c *Compiler) compileMatMul(op *Op, cost OpCost, kind ISAKind) CompiledOp {
	dim := c.core.SystolicDim
	nx := c.core.MEs
	// Independent output tiles (M×N plane) can go to different MEs with
	// no cross-ME dependency.
	outTiles := ceilDiv(op.M, dim) * ceilDiv(op.N, dim)
	kTiles := ceilDiv(op.K, dim)

	parts := outTiles
	if parts > nx {
		parts = nx
	}
	reduction := false
	if outTiles < nx && kTiles > 1 {
		// Not enough output parallelism: split the reduction dimension to
		// occupy all MEs (paper §III-D).
		parts = outTiles * kTiles
		if parts > nx {
			parts = nx
		}
		reduction = parts > outTiles
	}
	if parts < 1 {
		parts = 1
	}

	me := splitCycles(cost.MECycles, parts)
	hbm := splitBytes(cost.HBMBytes, parts)

	co := CompiledOp{Name: op.Name, Kind: op.Kind}
	switch {
	case kind == ISANeu && reduction:
		// ME µTOps produce partials; a separate VE µTOp group sums them.
		// The VE aggregation cannot pipeline with the MEs (the NeuISA
		// overhead): all VE cycles land in the second group.
		g0 := GroupSpec{}
		for p := 0; p < parts; p++ {
			g0.UTops = append(g0.UTops, UTopSpec{Kind: isa.MEUTop, MECycles: me[p], HBMBytes: hbm[p]})
		}
		g1 := GroupSpec{UTops: []UTopSpec{{Kind: isa.VEUTop, VECycles: cost.VECycles}}}
		co.Groups = []GroupSpec{g0, g1}
		co.ReductionSplit = true
	default:
		// Output-parallel (or VLIW): the VE epilogue pipelines inside the
		// ME µTOps, split evenly.
		ve := splitCycles(cost.VECycles, parts)
		g0 := GroupSpec{}
		for p := 0; p < parts; p++ {
			g0.UTops = append(g0.UTops, UTopSpec{
				Kind:     isa.MEUTop,
				MECycles: me[p],
				VECycles: ve[p],
				HBMBytes: hbm[p],
			})
		}
		co.Groups = []GroupSpec{g0}
	}
	return co
}

// splitCycles divides total into n near-equal shares that sum exactly.
func splitCycles(total uint64, n int) []uint64 {
	out := make([]uint64, n)
	base := total / uint64(n)
	rem := total % uint64(n)
	for i := range out {
		out[i] = base
		if uint64(i) < rem {
			out[i]++
		}
	}
	return out
}

func splitBytes(total int64, n int) []int64 {
	out := make([]int64, n)
	base := total / int64(n)
	rem := total % int64(n)
	for i := range out {
		out[i] = base
		if int64(i) < rem {
			out[i]++
		}
	}
	return out
}

// Validate checks structural invariants of a compiled graph: cycle
// conservation against the cost model and group shapes (≤ MEs ME µTOps
// and ≤ 1 VE µTOp per group).
func (cg *CompiledGraph) Validate() error {
	if len(cg.Ops) == 0 {
		return fmt.Errorf("compiler: empty compiled graph")
	}
	for i := range cg.Ops {
		op := &cg.Ops[i]
		if len(op.Groups) == 0 {
			return fmt.Errorf("compiler: op %s has no groups", op.Name)
		}
		for gi, g := range op.Groups {
			if len(g.UTops) == 0 {
				return fmt.Errorf("compiler: op %s group %d empty", op.Name, gi)
			}
			meCount, veCount := 0, 0
			for _, u := range g.UTops {
				switch u.Kind {
				case isa.MEUTop:
					meCount++
					if u.MECycles == 0 {
						return fmt.Errorf("compiler: op %s: ME µTOp with zero ME cycles", op.Name)
					}
				case isa.VEUTop:
					veCount++
					if u.MECycles != 0 {
						return fmt.Errorf("compiler: op %s: VE µTOp with ME cycles", op.Name)
					}
				}
			}
			if meCount > cg.Target.MEs {
				return fmt.Errorf("compiler: op %s group %d has %d ME µTOps for %d MEs",
					op.Name, gi, meCount, cg.Target.MEs)
			}
			if veCount > 1 {
				return fmt.Errorf("compiler: op %s group %d has %d VE µTOps", op.Name, gi, veCount)
			}
		}
	}
	return nil
}
