// Package tensor provides the host-side tensor representation shared by
// the compiler, the DNN model builders, and the functional NPU simulator.
//
// Tensors here are deliberately simple — dense row-major float32 buffers
// with a shape — because they exist to describe workloads and to verify
// the functional simulator against reference computations, not to be a
// performance-critical math library.
package tensor

import (
	"fmt"
	"strings"
)

// DType identifies an element type. The NPU in this repository computes
// in FP32 (the paper's Table II lists a 128×8 FP32 VE); BF16 and INT8
// exist for footprint accounting of weights.
type DType int

const (
	Float32 DType = iota
	BFloat16
	Int8
	Int32
)

// Size returns the element size in bytes.
func (d DType) Size() int {
	switch d {
	case Float32, Int32:
		return 4
	case BFloat16:
		return 2
	case Int8:
		return 1
	default:
		panic(fmt.Sprintf("tensor: unknown dtype %d", int(d)))
	}
}

func (d DType) String() string {
	switch d {
	case Float32:
		return "f32"
	case BFloat16:
		return "bf16"
	case Int8:
		return "i8"
	case Int32:
		return "i32"
	default:
		return fmt.Sprintf("dtype(%d)", int(d))
	}
}

// Shape is a tensor shape; dimensions are in row-major order.
type Shape []int

// Elems returns the total element count. An empty shape is a scalar (1).
func (s Shape) Elems() int64 {
	n := int64(1)
	for _, d := range s {
		n *= int64(d)
	}
	return n
}

// Bytes returns the buffer size for the shape at the given dtype.
func (s Shape) Bytes(d DType) int64 { return s.Elems() * int64(d.Size()) }

// Rank returns the number of dimensions.
func (s Shape) Rank() int { return len(s) }

// Equal reports whether two shapes are identical.
func (s Shape) Equal(o Shape) bool {
	if len(s) != len(o) {
		return false
	}
	for i := range s {
		if s[i] != o[i] {
			return false
		}
	}
	return true
}

// Valid reports whether every dimension is positive.
func (s Shape) Valid() bool {
	for _, d := range s {
		if d <= 0 {
			return false
		}
	}
	return true
}

// Clone returns a copy of the shape.
func (s Shape) Clone() Shape { return append(Shape(nil), s...) }

func (s Shape) String() string {
	parts := make([]string, len(s))
	for i, d := range s {
		parts[i] = fmt.Sprint(d)
	}
	return "[" + strings.Join(parts, "×") + "]"
}

// Tensor is a dense row-major float32 tensor.
type Tensor struct {
	Shape Shape
	Data  []float32
}

// New allocates a zero tensor of the given shape.
func New(shape ...int) *Tensor {
	s := Shape(shape)
	if !s.Valid() {
		panic(fmt.Sprintf("tensor: invalid shape %v", s))
	}
	return &Tensor{Shape: s.Clone(), Data: make([]float32, s.Elems())}
}

// FromData wraps data with a shape; the length must match.
func FromData(data []float32, shape ...int) *Tensor {
	s := Shape(shape)
	if int64(len(data)) != s.Elems() {
		panic(fmt.Sprintf("tensor: %d elements for shape %v", len(data), s))
	}
	return &Tensor{Shape: s.Clone(), Data: data}
}

// At returns the element at the given indices.
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.offset(idx)] }

// Set assigns the element at the given indices.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.offset(idx)] = v }

func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: %d indices for rank %d", len(idx), len(t.Shape)))
	}
	off := 0
	for i, ix := range idx {
		if ix < 0 || ix >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %d out of range for dim %d (%d)", ix, i, t.Shape[i]))
		}
		off = off*t.Shape[i] + ix
	}
	return off
}

// Clone deep-copies the tensor.
func (t *Tensor) Clone() *Tensor {
	c := New(t.Shape...)
	copy(c.Data, t.Data)
	return c
}

// Fill sets every element to v and returns the tensor.
func (t *Tensor) Fill(v float32) *Tensor {
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// MaxAbsDiff returns the largest absolute elementwise difference between
// two same-shaped tensors.
func MaxAbsDiff(a, b *Tensor) float64 {
	if !a.Shape.Equal(b.Shape) {
		panic(fmt.Sprintf("tensor: shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	var m float64
	for i := range a.Data {
		d := float64(a.Data[i]) - float64(b.Data[i])
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
