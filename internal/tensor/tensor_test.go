package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestShapeElemsAndBytes(t *testing.T) {
	cases := []struct {
		s     Shape
		elems int64
	}{
		{Shape{}, 1},
		{Shape{7}, 7},
		{Shape{3, 4}, 12},
		{Shape{2, 3, 4, 5}, 120},
	}
	for _, c := range cases {
		if got := c.s.Elems(); got != c.elems {
			t.Errorf("%v.Elems() = %d, want %d", c.s, got, c.elems)
		}
		if got := c.s.Bytes(Float32); got != c.elems*4 {
			t.Errorf("%v.Bytes(f32) = %d, want %d", c.s, got, c.elems*4)
		}
		if got := c.s.Bytes(BFloat16); got != c.elems*2 {
			t.Errorf("%v.Bytes(bf16) = %d, want %d", c.s, got, c.elems*2)
		}
	}
}

func TestShapeEqualAndClone(t *testing.T) {
	a := Shape{2, 3}
	b := a.Clone()
	if !a.Equal(b) {
		t.Fatal("clone not equal")
	}
	b[0] = 9
	if a.Equal(b) {
		t.Fatal("mutating clone affected original comparison")
	}
	if a.Equal(Shape{2, 3, 1}) {
		t.Fatal("different ranks compared equal")
	}
}

func TestDTypeSizes(t *testing.T) {
	if Float32.Size() != 4 || BFloat16.Size() != 2 || Int8.Size() != 1 || Int32.Size() != 4 {
		t.Fatal("dtype sizes wrong")
	}
}

func TestTensorIndexing(t *testing.T) {
	a := New(2, 3, 4)
	a.Set(42, 1, 2, 3)
	if a.At(1, 2, 3) != 42 {
		t.Fatal("Set/At roundtrip failed")
	}
	if a.Data[1*12+2*4+3] != 42 {
		t.Fatal("row-major layout wrong")
	}
}

func TestTensorIndexOutOfRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("out-of-range index did not panic")
		}
	}()
	New(2, 2).At(2, 0)
}

func TestMatMulSmall(t *testing.T) {
	a := FromData([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromData([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	c := MatMul(a, b)
	want := []float32{58, 64, 139, 154}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("MatMul[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestMatMulIdentity(t *testing.T) {
	const n = 16
	id := New(n, n)
	for i := 0; i < n; i++ {
		id.Set(1, i, i)
	}
	a := New(n, n)
	for i := range a.Data {
		a.Data[i] = float32(i%13) - 6
	}
	c := MatMul(a, id)
	if MaxAbsDiff(a, c) != 0 {
		t.Fatal("A·I != A")
	}
}

func TestMatMulDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("mismatched MatMul did not panic")
		}
	}()
	MatMul(New(2, 3), New(4, 2))
}

func TestReLU(t *testing.T) {
	a := FromData([]float32{-1, 0, 2, -0.5}, 4)
	c := ReLU(a)
	want := []float32{0, 0, 2, 0}
	for i, w := range want {
		if c.Data[i] != w {
			t.Fatalf("ReLU[%d] = %v, want %v", i, c.Data[i], w)
		}
	}
}

func TestSoftmaxRowsSumToOne(t *testing.T) {
	a := New(5, 8)
	for i := range a.Data {
		a.Data[i] = float32(i%7) - 3
	}
	s := Softmax(a)
	for r := 0; r < 5; r++ {
		var sum float64
		for j := 0; j < 8; j++ {
			v := s.At(r, j)
			if v < 0 || v > 1 {
				t.Fatalf("softmax out of range: %v", v)
			}
			sum += float64(v)
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", r, sum)
		}
	}
}

func TestSoftmaxShiftInvariance(t *testing.T) {
	a := FromData([]float32{1, 2, 3, 4}, 1, 4)
	b := AddScalar(a, 100)
	if d := MaxAbsDiff(Softmax(a), Softmax(b)); d > 1e-5 {
		t.Fatalf("softmax not shift invariant: %v", d)
	}
}

func TestLayerNormMoments(t *testing.T) {
	a := New(3, 64)
	for i := range a.Data {
		a.Data[i] = float32(i*i%97) / 10
	}
	n := LayerNorm(a, 1e-6)
	for r := 0; r < 3; r++ {
		var mean, sq float64
		for j := 0; j < 64; j++ {
			v := float64(n.At(r, j))
			mean += v
			sq += v * v
		}
		mean /= 64
		variance := sq/64 - mean*mean
		if math.Abs(mean) > 1e-4 {
			t.Fatalf("row %d mean %v", r, mean)
		}
		if math.Abs(variance-1) > 1e-3 {
			t.Fatalf("row %d variance %v", r, variance)
		}
	}
}

func TestConv2DIdentityKernel(t *testing.T) {
	in := New(1, 5, 5, 3)
	for i := range in.Data {
		in.Data[i] = float32(i)
	}
	// 1x1 kernel that copies channel c to output channel c.
	k := New(1, 1, 3, 3)
	for c := 0; c < 3; c++ {
		k.Set(1, 0, 0, c, c)
	}
	out := Conv2D(in, k, 1, false)
	if !out.Shape.Equal(in.Shape) {
		t.Fatalf("identity conv changed shape: %v", out.Shape)
	}
	if MaxAbsDiff(in, out) != 0 {
		t.Fatal("identity conv changed values")
	}
}

func TestConv2DKnownSum(t *testing.T) {
	// 3x3 all-ones kernel over an all-ones image, valid padding: each
	// output element is kh*kw*cin = 9*2 = 18.
	in := New(1, 4, 4, 2).Fill(1)
	k := New(3, 3, 2, 1).Fill(1)
	out := Conv2D(in, k, 1, false)
	if !out.Shape.Equal(Shape{1, 2, 2, 1}) {
		t.Fatalf("shape %v", out.Shape)
	}
	for _, v := range out.Data {
		if v != 18 {
			t.Fatalf("conv value %v, want 18", v)
		}
	}
}

func TestConv2DSamePaddingShape(t *testing.T) {
	in := New(2, 8, 8, 4)
	k := New(3, 3, 4, 16)
	out := Conv2D(in, k, 1, true)
	if !out.Shape.Equal(Shape{2, 8, 8, 16}) {
		t.Fatalf("same-pad shape %v", out.Shape)
	}
	out2 := Conv2D(in, k, 2, true)
	if !out2.Shape.Equal(Shape{2, 4, 4, 16}) {
		t.Fatalf("strided same-pad shape %v", out2.Shape)
	}
}

func TestElementwiseProperties(t *testing.T) {
	cfg := &quick.Config{MaxCount: 50}
	mk := func(vals []float32) *Tensor {
		if len(vals) == 0 {
			vals = []float32{0}
		}
		return FromData(vals, len(vals))
	}
	// Add is commutative.
	if err := quick.Check(func(xs []float32) bool {
		a, b := mk(xs), mk(xs)
		for i := range b.Data {
			b.Data[i] = -b.Data[i]
		}
		return MaxAbsDiff(Add(a, b), Add(b, a)) == 0
	}, cfg); err != nil {
		t.Error(err)
	}
	// ReLU is idempotent.
	if err := quick.Check(func(xs []float32) bool {
		a := mk(xs)
		r := ReLU(a)
		return MaxAbsDiff(r, ReLU(r)) == 0
	}, cfg); err != nil {
		t.Error(err)
	}
	// Max(a,a) == a.
	if err := quick.Check(func(xs []float32) bool {
		a := mk(xs)
		return MaxAbsDiff(Max(a, a), a) == 0
	}, cfg); err != nil {
		t.Error(err)
	}
}
