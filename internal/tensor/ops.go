package tensor

import (
	"fmt"
	"math"
)

// Reference operator implementations. The functional NPU simulator is
// validated against these: a program compiled to NeuISA and executed on
// the simulated systolic array must reproduce these results bit-for-bit
// (modulo float accumulation order, which both sides perform in the same
// k-major order).

// MatMul computes C = A·B for A [M×K] and B [K×N].
func MatMul(a, b *Tensor) *Tensor {
	if a.Shape.Rank() != 2 || b.Shape.Rank() != 2 {
		panic("tensor: MatMul requires rank-2 operands")
	}
	m, k := a.Shape[0], a.Shape[1]
	k2, n := b.Shape[0], b.Shape[1]
	if k != k2 {
		panic(fmt.Sprintf("tensor: MatMul inner dims %d vs %d", k, k2))
	}
	c := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var sum float32
			for p := 0; p < k; p++ {
				sum += a.Data[i*k+p] * b.Data[p*n+j]
			}
			c.Data[i*n+j] = sum
		}
	}
	return c
}

// Add computes elementwise a+b.
func Add(a, b *Tensor) *Tensor { return zip(a, b, func(x, y float32) float32 { return x + y }) }

// Mul computes elementwise a*b (Hadamard product).
func Mul(a, b *Tensor) *Tensor { return zip(a, b, func(x, y float32) float32 { return x * y }) }

// Sub computes elementwise a-b.
func Sub(a, b *Tensor) *Tensor { return zip(a, b, func(x, y float32) float32 { return x - y }) }

// Max computes elementwise max(a, b).
func Max(a, b *Tensor) *Tensor {
	return zip(a, b, func(x, y float32) float32 {
		if x > y {
			return x
		}
		return y
	})
}

func zip(a, b *Tensor, f func(x, y float32) float32) *Tensor {
	if !a.Shape.Equal(b.Shape) {
		panic(fmt.Sprintf("tensor: elementwise shape mismatch %v vs %v", a.Shape, b.Shape))
	}
	c := New(a.Shape...)
	for i := range a.Data {
		c.Data[i] = f(a.Data[i], b.Data[i])
	}
	return c
}

// ReLU applies max(0, x) elementwise.
func ReLU(a *Tensor) *Tensor { return apply(a, func(x float32) float32 { return max32(x, 0) }) }

// Scale multiplies every element by s.
func Scale(a *Tensor, s float32) *Tensor {
	return apply(a, func(x float32) float32 { return x * s })
}

// AddScalar adds s to every element.
func AddScalar(a *Tensor, s float32) *Tensor {
	return apply(a, func(x float32) float32 { return x + s })
}

func apply(a *Tensor, f func(float32) float32) *Tensor {
	c := New(a.Shape...)
	for i := range a.Data {
		c.Data[i] = f(a.Data[i])
	}
	return c
}

func max32(a, b float32) float32 {
	if a > b {
		return a
	}
	return b
}

// Softmax applies a numerically stable softmax along the last dimension.
func Softmax(a *Tensor) *Tensor {
	if a.Shape.Rank() == 0 {
		panic("tensor: Softmax on scalar")
	}
	last := a.Shape[a.Shape.Rank()-1]
	rows := int(a.Shape.Elems()) / last
	c := New(a.Shape...)
	for r := 0; r < rows; r++ {
		row := a.Data[r*last : (r+1)*last]
		out := c.Data[r*last : (r+1)*last]
		mx := row[0]
		for _, v := range row {
			if v > mx {
				mx = v
			}
		}
		var sum float64
		for i, v := range row {
			e := math.Exp(float64(v - mx))
			out[i] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for i := range out {
			out[i] *= inv
		}
	}
	return c
}

// LayerNorm normalizes along the last dimension with unit gain, zero bias.
func LayerNorm(a *Tensor, eps float64) *Tensor {
	last := a.Shape[a.Shape.Rank()-1]
	rows := int(a.Shape.Elems()) / last
	c := New(a.Shape...)
	for r := 0; r < rows; r++ {
		row := a.Data[r*last : (r+1)*last]
		out := c.Data[r*last : (r+1)*last]
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(last)
		var variance float64
		for _, v := range row {
			d := float64(v) - mean
			variance += d * d
		}
		variance /= float64(last)
		inv := 1 / math.Sqrt(variance+eps)
		for i, v := range row {
			out[i] = float32((float64(v) - mean) * inv)
		}
	}
	return c
}

// Conv2D computes a NHWC convolution with stride and same/valid padding.
// Input [N,H,W,Cin], kernel [KH,KW,Cin,Cout].
func Conv2D(in, kernel *Tensor, stride int, samePad bool) *Tensor {
	if in.Shape.Rank() != 4 || kernel.Shape.Rank() != 4 {
		panic("tensor: Conv2D requires NHWC input and KHWC kernel")
	}
	n, h, w, cin := in.Shape[0], in.Shape[1], in.Shape[2], in.Shape[3]
	kh, kw, kcin, cout := kernel.Shape[0], kernel.Shape[1], kernel.Shape[2], kernel.Shape[3]
	if cin != kcin {
		panic(fmt.Sprintf("tensor: Conv2D channel mismatch %d vs %d", cin, kcin))
	}
	padH, padW := 0, 0
	if samePad {
		padH, padW = (kh-1)/2, (kw-1)/2
	}
	oh := (h+2*padH-kh)/stride + 1
	ow := (w+2*padW-kw)/stride + 1
	out := New(n, oh, ow, cout)
	for b := 0; b < n; b++ {
		for oy := 0; oy < oh; oy++ {
			for ox := 0; ox < ow; ox++ {
				for oc := 0; oc < cout; oc++ {
					var sum float32
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride + ky - padH
						if iy < 0 || iy >= h {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride + kx - padW
							if ix < 0 || ix >= w {
								continue
							}
							for ic := 0; ic < cin; ic++ {
								sum += in.At(b, iy, ix, ic) * kernel.At(ky, kx, ic, oc)
							}
						}
					}
					out.Set(sum, b, oy, ox, oc)
				}
			}
		}
	}
	return out
}
