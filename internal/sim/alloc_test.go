package sim

import "testing"

// nopFn is a static event body: scheduling it must not allocate once the
// heap slice has grown to capacity.
func nopFn(Time) {}

// TestEngineZeroAllocSteadyState is the allocation budget for the event
// kernel: after warm-up, a push+pop cycle performs zero allocations.
// This is the property the value-based 4-ary heap exists to provide —
// regressions here mean someone reintroduced per-event boxing.
func TestEngineZeroAllocSteadyState(t *testing.T) {
	e := NewEngine()
	rng := NewRNG(1)
	// Warm up the heap slice to its steady-state capacity.
	for i := 0; i < 1024; i++ {
		e.At(e.Now()+Time(rng.Intn(1000)), nopFn)
	}
	for e.Step() {
	}
	allocs := testing.AllocsPerRun(1000, func() {
		for i := 0; i < 64; i++ {
			e.At(e.Now()+Time(rng.Intn(1000)), nopFn)
		}
		for e.Step() {
		}
	})
	if allocs > 0 {
		t.Fatalf("event kernel allocates %.1f objects per 64-event batch, want 0", allocs)
	}
}

// TestEngineCancelMidHeap exercises removal from an interior heap
// position (the 4-ary removeAt sift-down/sift-up path).
func TestEngineCancelMidHeap(t *testing.T) {
	e := NewEngine()
	var ran []Time
	record := func(now Time) { ran = append(ran, now) }
	var handles []Handle
	for _, at := range []Time{50, 10, 40, 20, 30, 60, 5} {
		handles = append(handles, e.At(at, record))
	}
	// Cancel the events at t=40 and t=20.
	if !e.Cancel(handles[2]) || !e.Cancel(handles[3]) {
		t.Fatal("Cancel failed for pending events")
	}
	if e.Cancel(Handle{}) {
		t.Fatal("zero Handle cancelled something")
	}
	e.Run()
	want := []Time{5, 10, 30, 50, 60}
	if len(ran) != len(want) {
		t.Fatalf("ran %v, want %v", ran, want)
	}
	for i := range want {
		if ran[i] != want[i] {
			t.Fatalf("ran %v, want %v", ran, want)
		}
	}
}
