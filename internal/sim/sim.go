// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is intentionally minimal: a monotonically advancing cycle
// clock, a priority queue of timestamped events, and a seeded random
// number generator. Everything that needs time in the repository —
// the performance simulator, the schedulers, the workload generators —
// is driven from this kernel so that whole experiments are reproducible
// bit-for-bit from a seed.
package sim

import (
	"container/heap"
	"fmt"
)

// Time is a simulation timestamp in NPU core cycles.
type Time uint64

// Event is a unit of scheduled work. Events compare by time, then by
// priority (lower runs first), then by sequence number (FIFO within a
// cycle) so execution order is fully deterministic.
type Event struct {
	At       Time
	Priority int
	Fn       func(now Time)

	seq   uint64
	index int // heap bookkeeping; -1 when not queued
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	a, b := q[i], q[j]
	if a.At != b.At {
		return a.At < b.At
	}
	if a.Priority != b.Priority {
		return a.Priority < b.Priority
	}
	return a.seq < b.seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulation engine.
type Engine struct {
	now    Time
	queue  eventQueue
	nextID uint64
	halted bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at the absolute time t. Scheduling in the past
// panics: it always indicates a logic error in the caller.
func (e *Engine) At(t Time, fn func(now Time)) *Event {
	return e.AtPriority(t, 0, fn)
}

// AtPriority schedules fn at time t with an explicit priority; events at
// the same time run in ascending priority order.
func (e *Engine) AtPriority(t Time, pri int, fn func(now Time)) *Event {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	ev := &Event{At: t, Priority: pri, Fn: fn, seq: e.nextID, index: -1}
	e.nextID++
	heap.Push(&e.queue, ev)
	return ev
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func(now Time)) *Event {
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false.
func (e *Engine) Cancel(ev *Event) bool {
	if ev == nil || ev.index < 0 {
		return false
	}
	heap.Remove(&e.queue, ev.index)
	ev.index = -1
	return true
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.queue) }

// Halt stops Run/RunUntil after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// Step executes the single earliest event. It reports false when the
// queue is empty.
func (e *Engine) Step() bool {
	if len(e.queue) == 0 {
		return false
	}
	ev := heap.Pop(&e.queue).(*Event)
	e.now = ev.At
	ev.Fn(e.now)
	return true
}

// Run executes events until the queue is empty or Halt is called.
// It returns the final simulation time.
func (e *Engine) Run() Time {
	e.halted = false
	for !e.halted && e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline. The clock is left
// at min(deadline, time of last event) — it does not jump past work that
// remains queued beyond the deadline.
func (e *Engine) RunUntil(deadline Time) Time {
	e.halted = false
	for !e.halted && len(e.queue) > 0 && e.queue[0].At <= deadline {
		e.Step()
	}
	if e.now < deadline && !e.halted {
		e.now = deadline
	}
	return e.now
}
