// Package sim provides a deterministic discrete-event simulation kernel.
//
// The kernel is intentionally minimal: a monotonically advancing cycle
// clock, a priority queue of timestamped events, and a seeded random
// number generator. Everything that needs time in the repository —
// the performance simulator, the schedulers, the workload generators —
// is driven from this kernel so that whole experiments are reproducible
// bit-for-bit from a seed.
//
// The queue is a value-based 4-ary implicit heap: events are stored
// inline in a single slice rather than as individually heap-allocated
// nodes behind an interface, so scheduling an event performs no
// allocation once the slice has warmed up, and sift operations touch
// 4x fewer cache lines than a binary pointer heap. This is the classic
// low-overhead DES event-queue design; it is what keeps the fluid
// scheduler and the cluster churn simulator off the allocator in their
// hot loops.
//
// # Cancellation semantics
//
// Every At/AtPriority/After call returns a Handle naming that one
// scheduled occurrence. Handles are issued from a monotonically
// increasing sequence, are never reused, and the zero Handle is never
// issued — so a retained zero value can always be passed to Cancel
// safely. Cancel(h) removes the pending event and returns true exactly
// once; cancelling an event that has already fired, was already
// cancelled, or was never issued is a harmless no-op returning false.
// Cancellation does not disturb the clock or the ordering of the
// remaining events. The cost is O(n) in the pending-event count: Cancel
// is the cold path (a serving replica tearing down its batch-window
// timer), and keeping it linear keeps the hot push/pop paths free of
// per-event index bookkeeping.
package sim

import "fmt"

// Time is a simulation timestamp in NPU core cycles.
type Time uint64

// Handle identifies a scheduled event so it can be cancelled. The zero
// Handle is invalid and never issued.
type Handle struct{ seq uint64 }

// event is one queued unit of work, stored by value in the heap slice.
// Events compare by time, then by priority (lower runs first), then by
// sequence number (FIFO within a cycle) so execution order is fully
// deterministic.
type event struct {
	at  Time
	seq uint64
	pri int
	fn  func(now Time)
}

// Engine is a discrete-event simulation engine.
type Engine struct {
	now    Time
	heap   []event // 4-ary implicit min-heap
	nextID uint64
	halted bool
}

// NewEngine returns an engine with the clock at zero.
func NewEngine() *Engine { return &Engine{nextID: 1} }

// Now returns the current simulation time.
func (e *Engine) Now() Time { return e.now }

// At schedules fn to run at the absolute time t. Scheduling in the past
// panics: it always indicates a logic error in the caller.
func (e *Engine) At(t Time, fn func(now Time)) Handle {
	return e.AtPriority(t, 0, fn)
}

// AtPriority schedules fn at time t with an explicit priority; events at
// the same time run in ascending priority order.
func (e *Engine) AtPriority(t Time, pri int, fn func(now Time)) Handle {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %d before now %d", t, e.now))
	}
	ev := event{at: t, pri: pri, seq: e.nextID, fn: fn}
	e.nextID++
	e.heap = append(e.heap, ev)
	e.siftUp(len(e.heap) - 1)
	return Handle{seq: ev.seq}
}

// After schedules fn to run d cycles from now.
func (e *Engine) After(d Time, fn func(now Time)) Handle {
	return e.At(e.now+d, fn)
}

// Cancel removes a pending event. Cancelling an already-fired or
// already-cancelled event is a no-op and returns false. Cancellation is
// O(n) in the number of pending events — it is a cold path; the hot
// push/pop paths stay branch-light because of it.
func (e *Engine) Cancel(h Handle) bool {
	if h.seq == 0 {
		return false
	}
	for i := range e.heap {
		if e.heap[i].seq == h.seq {
			e.removeAt(i)
			return true
		}
	}
	return false
}

// Pending reports the number of queued events.
func (e *Engine) Pending() int { return len(e.heap) }

// Halt stops Run/RunUntil after the currently executing event returns.
func (e *Engine) Halt() { e.halted = true }

// Step executes the single earliest event. It reports false when the
// queue is empty.
func (e *Engine) Step() bool {
	if len(e.heap) == 0 {
		return false
	}
	at, fn := e.heap[0].at, e.heap[0].fn
	e.removeAt(0)
	e.now = at
	fn(e.now)
	return true
}

// Run executes events until the queue is empty or Halt is called.
// It returns the final simulation time.
func (e *Engine) Run() Time {
	e.halted = false
	for !e.halted && e.Step() {
	}
	return e.now
}

// RunUntil executes events with timestamps <= deadline. The clock is left
// at min(deadline, time of last event) — it does not jump past work that
// remains queued beyond the deadline.
func (e *Engine) RunUntil(deadline Time) Time {
	e.halted = false
	for !e.halted && len(e.heap) > 0 && e.heap[0].at <= deadline {
		e.Step()
	}
	if e.now < deadline && !e.halted {
		e.now = deadline
	}
	return e.now
}

// ---- 4-ary heap internals ----

// less orders events by (time, priority, sequence).
func (e *Engine) less(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	if a.pri != b.pri {
		return a.pri < b.pri
	}
	return a.seq < b.seq
}

func (e *Engine) siftUp(i int) {
	h := e.heap
	ev := h[i]
	for i > 0 {
		parent := (i - 1) / 4
		if !e.less(&ev, &h[parent]) {
			break
		}
		h[i] = h[parent]
		i = parent
	}
	h[i] = ev
}

func (e *Engine) siftDown(i int) {
	h := e.heap
	n := len(h)
	ev := h[i]
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if e.less(&h[c], &h[min]) {
				min = c
			}
		}
		if !e.less(&h[min], &ev) {
			break
		}
		h[i] = h[min]
		i = min
	}
	h[i] = ev
}

// removeAt deletes the event at heap index i, releasing its closure so
// the garbage collector can reclaim captured state promptly.
func (e *Engine) removeAt(i int) {
	n := len(e.heap) - 1
	if i != n {
		moved := e.heap[n]
		e.heap[n] = event{}
		e.heap = e.heap[:n]
		e.heap[i] = moved
		e.siftDown(i)
		if e.heap[i].seq == moved.seq {
			e.siftUp(i)
		}
	} else {
		e.heap[n] = event{}
		e.heap = e.heap[:n]
	}
}
