package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random number generator
// (xoshiro256**). It is used instead of math/rand so that experiment
// reproducibility does not depend on the Go runtime's seeding behaviour
// and so parallel benchmark shards can derive independent streams.
type RNG struct {
	s [4]uint64
}

// NewRNG returns a generator seeded from seed via SplitMix64, which
// guarantees a well-mixed non-zero state for any seed including 0.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	for i := range r.s {
		r.s[i] = next()
	}
	return r
}

// Split derives an independent child generator; the parent advances.
func (r *RNG) Split() *RNG { return NewRNG(r.Uint64()) }

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Norm returns a normally distributed value (Box–Muller).
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}
