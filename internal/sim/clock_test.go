package sim

import "testing"

// TestClockAccessorGuard locks down the Now() contract the rest of the
// repository leans on: the clock is monotone, every callback observes
// Now() equal to its own scheduled timestamp, and RunUntil leaves the
// clock at min(deadline, last executed event) without jumping past
// still-queued work. The serving subsystem derives latencies from
// subtracting Now() values, so a regression here silently corrupts
// every latency percentile.
func TestClockAccessorGuard(t *testing.T) {
	e := NewEngine()
	if e.Now() != 0 {
		t.Fatalf("fresh engine clock = %d, want 0", e.Now())
	}

	var observed []Time
	last := Time(0)
	record := func(now Time) {
		if now != e.Now() {
			t.Errorf("callback sees now=%d but Engine.Now()=%d", now, e.Now())
		}
		if now < last {
			t.Errorf("clock went backwards: %d after %d", now, last)
		}
		last = now
		observed = append(observed, now)
	}
	for _, at := range []Time{30, 10, 20, 10} {
		e.At(at, record)
	}

	// RunUntil must execute only events ≤ deadline and park the clock at
	// the deadline, not at the next queued event.
	if got := e.RunUntil(25); got != 25 {
		t.Fatalf("RunUntil(25) = %d, want 25", got)
	}
	if e.Now() != 25 {
		t.Fatalf("Now() after RunUntil(25) = %d, want 25", e.Now())
	}
	if len(observed) != 3 {
		t.Fatalf("RunUntil(25) ran %d events (%v), want 3", len(observed), observed)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending after RunUntil = %d, want 1", e.Pending())
	}

	// Scheduling before Now() must panic — it always indicates a caller
	// bug, and the serving arrival streams rely on it firing loudly.
	func() {
		defer func() {
			if recover() == nil {
				t.Error("scheduling in the past did not panic")
			}
		}()
		e.At(5, record)
	}()

	if got := e.Run(); got != 30 {
		t.Fatalf("Run() final time = %d, want 30", got)
	}
	want := []Time{10, 10, 20, 30}
	for i, at := range want {
		if observed[i] != at {
			t.Fatalf("execution order %v, want %v", observed, want)
		}
	}
}

// TestCancelSemanticsGuard pins the documented Handle behaviour: one
// true per issued occurrence, false for fired/cancelled/zero handles.
func TestCancelSemanticsGuard(t *testing.T) {
	e := NewEngine()
	fired := 0
	h1 := e.At(10, func(Time) { fired++ })
	h2 := e.At(20, func(Time) { fired++ })

	if !e.Cancel(h2) {
		t.Fatal("first Cancel of a pending event must return true")
	}
	if e.Cancel(h2) {
		t.Fatal("second Cancel of the same handle must return false")
	}
	if e.Cancel(Handle{}) {
		t.Fatal("zero Handle must cancel nothing")
	}
	e.Run()
	if fired != 1 {
		t.Fatalf("fired %d events, want 1 (h2 cancelled)", fired)
	}
	if e.Cancel(h1) {
		t.Fatal("cancelling an already-fired event must return false")
	}
}
