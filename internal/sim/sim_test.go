package sim

import (
	"testing"
	"testing/quick"
)

func TestEngineRunsEventsInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []Time
	for _, at := range []Time{30, 10, 20, 10, 0} {
		at := at
		e.At(at, func(now Time) { got = append(got, now) })
	}
	e.Run()
	want := []Time{0, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("ran %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("event %d at %d, want %d (order %v)", i, got[i], want[i], got)
		}
	}
}

func TestEngineFIFOWithinSameCycle(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		e.At(5, func(Time) { order = append(order, i) })
	}
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("same-cycle events not FIFO: %v", order)
		}
	}
}

func TestEnginePriorityOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	e.AtPriority(5, 2, func(Time) { order = append(order, 2) })
	e.AtPriority(5, 0, func(Time) { order = append(order, 0) })
	e.AtPriority(5, 1, func(Time) { order = append(order, 1) })
	e.Run()
	if len(order) != 3 || order[0] != 0 || order[1] != 1 || order[2] != 2 {
		t.Fatalf("priority order wrong: %v", order)
	}
}

func TestEngineAfterSchedulesRelative(t *testing.T) {
	e := NewEngine()
	var fired Time
	e.At(100, func(now Time) {
		e.After(50, func(now Time) { fired = now })
	})
	e.Run()
	if fired != 150 {
		t.Fatalf("After fired at %d, want 150", fired)
	}
}

func TestEngineCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := e.At(10, func(Time) { ran = true })
	if !e.Cancel(ev) {
		t.Fatal("Cancel returned false for pending event")
	}
	if e.Cancel(ev) {
		t.Fatal("double Cancel returned true")
	}
	e.Run()
	if ran {
		t.Fatal("cancelled event ran")
	}
}

func TestEngineSchedulingInPastPanics(t *testing.T) {
	e := NewEngine()
	e.At(10, func(Time) {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.At(5, func(Time) {})
}

func TestEngineHalt(t *testing.T) {
	e := NewEngine()
	count := 0
	e.At(1, func(Time) { count++; e.Halt() })
	e.At(2, func(Time) { count++ })
	e.Run()
	if count != 1 {
		t.Fatalf("halt did not stop engine: ran %d events", count)
	}
	if e.Pending() != 1 {
		t.Fatalf("pending = %d, want 1", e.Pending())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	var ran []Time
	for _, at := range []Time{5, 15, 25} {
		e.At(at, func(now Time) { ran = append(ran, now) })
	}
	e.RunUntil(20)
	if len(ran) != 2 {
		t.Fatalf("RunUntil(20) ran %d events, want 2", len(ran))
	}
	if e.Now() != 20 {
		t.Fatalf("clock at %d after RunUntil(20)", e.Now())
	}
	e.Run()
	if len(ran) != 3 || ran[2] != 25 {
		t.Fatalf("remaining event mishandled: %v", ran)
	}
}

func TestEngineReentrantScheduling(t *testing.T) {
	// Events scheduled by events in the same cycle must still run.
	e := NewEngine()
	depth := 0
	var recurse func(Time)
	recurse = func(now Time) {
		if depth < 100 {
			depth++
			e.At(now, recurse)
		}
	}
	e.At(0, recurse)
	e.Run()
	if depth != 100 {
		t.Fatalf("reentrant scheduling depth = %d, want 100", depth)
	}
	if e.Now() != 0 {
		t.Fatalf("clock moved to %d during same-cycle recursion", e.Now())
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed RNGs diverged at draw %d", i)
		}
	}
	c := NewRNG(43)
	same := 0
	for i := 0; i < 1000; i++ {
		if NewRNG(42).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 10 {
		t.Fatalf("different seeds produced %d/1000 identical draws", same)
	}
}

func TestRNGFloat64Range(t *testing.T) {
	r := NewRNG(7)
	if err := quick.Check(func(_ int) bool {
		f := r.Float64()
		return f >= 0 && f < 1
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGIntnRange(t *testing.T) {
	r := NewRNG(9)
	if err := quick.Check(func(n uint16) bool {
		m := int(n%1000) + 1
		v := r.Intn(m)
		return v >= 0 && v < m
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGPermIsPermutation(t *testing.T) {
	r := NewRNG(11)
	for n := 0; n < 50; n++ {
		p := r.Perm(n)
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) not a permutation: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestRNGExpMeanApprox(t *testing.T) {
	r := NewRNG(13)
	const n = 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(10)
	}
	mean := sum / n
	if mean < 9.5 || mean > 10.5 {
		t.Fatalf("Exp(10) sample mean = %v", mean)
	}
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(17)
	const n = 200000
	sum, sq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Norm(5, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if mean < 4.9 || mean > 5.1 {
		t.Fatalf("Norm mean = %v, want ~5", mean)
	}
	if variance < 3.6 || variance > 4.4 {
		t.Fatalf("Norm variance = %v, want ~4", variance)
	}
}

func TestRNGSplitIndependence(t *testing.T) {
	parent := NewRNG(21)
	child := parent.Split()
	// Child stream should not equal a fresh parent-seeded stream draw-for-draw.
	fresh := NewRNG(21)
	fresh.Uint64() // parent consumed one draw for the split
	equal := 0
	for i := 0; i < 100; i++ {
		if child.Uint64() == fresh.Uint64() {
			equal++
		}
	}
	if equal > 2 {
		t.Fatalf("split child correlates with parent stream: %d/100 equal", equal)
	}
}
