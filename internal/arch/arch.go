// Package arch holds the shared hardware description of an NPU core —
// the paper's Table II configuration — consumed by the compiler's cost
// model, the vNPU allocator, and the performance simulator. Keeping it in
// one place guarantees that "a cycle" means the same thing everywhere.
package arch

import "fmt"

// CoreConfig describes one physical NPU core.
type CoreConfig struct {
	MEs         int     // matrix engines per core
	VEs         int     // vector engines per core
	SystolicDim int     // ME systolic array is SystolicDim×SystolicDim
	VELanes     int     // VE lane count (vector width)
	VESublanes  int     // VE sublanes: VELanes×VESublanes FP32 ops/cycle
	FrequencyHz float64 // core clock
	SRAMBytes   int64   // on-chip SRAM
	HBMBytes    int64   // HBM capacity behind this core
	HBMBwBytes  float64 // HBM bandwidth, bytes/second

	// MEPreemptCycles is the context-switch penalty to reclaim a harvested
	// ME: pop the partial sums (SystolicDim cycles) plus pop the weights
	// (SystolicDim cycles) of the preempted µTOp (paper §III-G).
	MEPreemptCycles int
}

// TPUv4Like returns the paper's Table II configuration:
// 4 MEs & 4 VEs, 128×128 systolic arrays, 128×8 FP32/cycle VEs, 1050 MHz,
// 128 MB SRAM, 64 GB HBM at 1200 GB/s.
func TPUv4Like() CoreConfig {
	return CoreConfig{
		MEs:             4,
		VEs:             4,
		SystolicDim:     128,
		VELanes:         128,
		VESublanes:      8,
		FrequencyHz:     1.05e9,
		SRAMBytes:       128 << 20,
		HBMBytes:        64 << 30,
		HBMBwBytes:      1200e9,
		MEPreemptCycles: 256,
	}
}

// Validate checks the configuration.
func (c CoreConfig) Validate() error {
	switch {
	case c.MEs < 1 || c.MEs > 64:
		return fmt.Errorf("arch: MEs %d out of range", c.MEs)
	case c.VEs < 1 || c.VEs > 64:
		return fmt.Errorf("arch: VEs %d out of range", c.VEs)
	case c.SystolicDim < 8:
		return fmt.Errorf("arch: systolic dim %d too small", c.SystolicDim)
	case c.VELanes < 8 || c.VESublanes < 1:
		return fmt.Errorf("arch: VE %dx%d malformed", c.VELanes, c.VESublanes)
	case c.FrequencyHz <= 0:
		return fmt.Errorf("arch: frequency %v", c.FrequencyHz)
	case c.SRAMBytes <= 0 || c.HBMBytes <= 0:
		return fmt.Errorf("arch: non-positive memory sizes")
	case c.HBMBwBytes <= 0:
		return fmt.Errorf("arch: non-positive HBM bandwidth")
	case c.MEPreemptCycles < 0:
		return fmt.Errorf("arch: negative preemption cost")
	}
	return nil
}

// MEMACsPerCycle returns multiply-accumulates one ME retires per cycle.
func (c CoreConfig) MEMACsPerCycle() float64 {
	return float64(c.SystolicDim) * float64(c.SystolicDim)
}

// VEOpsPerCycle returns FP32 lane-operations one VE retires per cycle.
func (c CoreConfig) VEOpsPerCycle() float64 {
	return float64(c.VELanes) * float64(c.VESublanes)
}

// HBMBytesPerCycle converts HBM bandwidth into bytes per core cycle.
func (c CoreConfig) HBMBytesPerCycle() float64 { return c.HBMBwBytes / c.FrequencyHz }

// CyclesToSeconds converts a cycle count to wall-clock seconds.
func (c CoreConfig) CyclesToSeconds(cycles uint64) float64 {
	return float64(cycles) / c.FrequencyHz
}

// SecondsToCycles converts seconds to cycles (rounded down).
func (c CoreConfig) SecondsToCycles(s float64) uint64 {
	if s <= 0 {
		return 0
	}
	return uint64(s * c.FrequencyHz)
}

// WithEUs returns a copy with the given engine counts — used by the
// Fig. 25 scaling sweep (2ME-2VE … 8ME-8VE).
func (c CoreConfig) WithEUs(mes, ves int) CoreConfig {
	c.MEs, c.VEs = mes, ves
	return c
}

// WithHBMBandwidth returns a copy with the given bandwidth in bytes/s —
// used by the Fig. 26 bandwidth sweep (900 GB/s … 3 TB/s).
func (c CoreConfig) WithHBMBandwidth(bw float64) CoreConfig {
	c.HBMBwBytes = bw
	return c
}
