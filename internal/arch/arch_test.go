package arch

import (
	"math"
	"testing"
)

func TestTPUv4LikeMatchesTableII(t *testing.T) {
	c := TPUv4Like()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.MEs != 4 || c.VEs != 4 {
		t.Error("Table II: 4 MEs & 4 VEs")
	}
	if c.SystolicDim != 128 {
		t.Error("Table II: 128x128 systolic array")
	}
	if c.VELanes != 128 || c.VESublanes != 8 {
		t.Error("Table II: 128x8 FP32/cycle VE")
	}
	if c.FrequencyHz != 1.05e9 {
		t.Error("Table II: 1050 MHz")
	}
	if c.SRAMBytes != 128<<20 {
		t.Error("Table II: 128 MB SRAM")
	}
	if c.HBMBytes != 64<<30 || c.HBMBwBytes != 1200e9 {
		t.Error("Table II: 64 GB HBM at 1200 GB/s")
	}
	if c.MEPreemptCycles != 256 {
		t.Error("§III-G: 256-cycle ME preemption (128 partials + 128 weights)")
	}
}

func TestDerivedRates(t *testing.T) {
	c := TPUv4Like()
	if got := c.MEMACsPerCycle(); got != 128*128 {
		t.Errorf("MACs/cycle = %v", got)
	}
	if got := c.VEOpsPerCycle(); got != 128*8 {
		t.Errorf("VE ops/cycle = %v", got)
	}
	want := 1200e9 / 1.05e9
	if got := c.HBMBytesPerCycle(); math.Abs(got-want) > 1e-9 {
		t.Errorf("HBM bytes/cycle = %v, want %v", got, want)
	}
}

func TestTimeConversionsRoundTrip(t *testing.T) {
	c := TPUv4Like()
	cycles := uint64(2_100_000_000)
	s := c.CyclesToSeconds(cycles)
	if math.Abs(s-2.0) > 1e-9 {
		t.Errorf("2.1e9 cycles = %v s, want 2", s)
	}
	if back := c.SecondsToCycles(s); back != cycles {
		t.Errorf("roundtrip %d -> %d", cycles, back)
	}
	if c.SecondsToCycles(-1) != 0 {
		t.Error("negative seconds should clamp to 0 cycles")
	}
}

func TestWithHelpers(t *testing.T) {
	c := TPUv4Like()
	c2 := c.WithEUs(8, 2)
	if c2.MEs != 8 || c2.VEs != 2 {
		t.Error("WithEUs did not apply")
	}
	if c.MEs != 4 {
		t.Error("WithEUs mutated the receiver")
	}
	c3 := c.WithHBMBandwidth(3e12)
	if c3.HBMBwBytes != 3e12 || c.HBMBwBytes != 1200e9 {
		t.Error("WithHBMBandwidth wrong")
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	cases := []func(*CoreConfig){
		func(c *CoreConfig) { c.MEs = 0 },
		func(c *CoreConfig) { c.VEs = 100 },
		func(c *CoreConfig) { c.SystolicDim = 2 },
		func(c *CoreConfig) { c.FrequencyHz = 0 },
		func(c *CoreConfig) { c.SRAMBytes = 0 },
		func(c *CoreConfig) { c.HBMBwBytes = -1 },
		func(c *CoreConfig) { c.MEPreemptCycles = -5 },
	}
	for i, mutate := range cases {
		c := TPUv4Like()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d validated", i)
		}
	}
}
