package workload

import (
	"fmt"
	"math"
)

// ServingMix describes a consolidated serving trace: one aggregate
// offered rate split across a cluster's model families by share. It is
// the workload half of a consolidation study — per-tenant RatePerSec
// values that stay mutually consistent when the total or the shares
// move, so "the same traffic, merged vs siloed" is true by
// construction.
type ServingMix struct {
	// TotalRPS is the cluster's aggregate offered rate in requests per
	// second.
	TotalRPS float64
	// Shares splits TotalRPS by family; fractions must sum to 1.
	Shares []MixShare
}

// MixShare is one family's slice of the aggregate rate.
type MixShare struct {
	Name string
	Frac float64
}

// Validate checks the mix is well-formed: a positive total, uniquely
// named positive shares, fractions summing to 1.
func (m *ServingMix) Validate() error {
	if !(m.TotalRPS > 0) {
		return fmt.Errorf("workload: serving mix total %v rps", m.TotalRPS)
	}
	if len(m.Shares) == 0 {
		return fmt.Errorf("workload: serving mix has no shares")
	}
	sum := 0.0
	seen := map[string]bool{}
	for _, s := range m.Shares {
		if s.Name == "" {
			return fmt.Errorf("workload: serving mix share without a name")
		}
		if seen[s.Name] {
			return fmt.Errorf("workload: serving mix share %q listed twice", s.Name)
		}
		seen[s.Name] = true
		if !(s.Frac > 0) {
			return fmt.Errorf("workload: serving mix share %q fraction %v", s.Name, s.Frac)
		}
		sum += s.Frac
	}
	if math.Abs(sum-1) > 1e-9 {
		return fmt.Errorf("workload: serving mix fractions sum to %v, want 1", sum)
	}
	return nil
}

// RateFor returns one family's offered rate in requests per second
// (zero for a name the mix does not carry).
func (m *ServingMix) RateFor(name string) float64 {
	for _, s := range m.Shares {
		if s.Name == name {
			return m.TotalRPS * s.Frac
		}
	}
	return 0
}
