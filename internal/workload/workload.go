// Package workload defines the multi-tenant evaluation scenarios of the
// paper's §V-A: the nine collocation pairs grouped by ME/VE contention
// level, their batch sizes, and helpers that compile them into scheduler
// tenant specs.
package workload

import (
	"fmt"
	"sync"

	"neu10/internal/arch"
	"neu10/internal/compiler"
	"neu10/internal/model"
	"neu10/internal/sched"
)

// Contention classifies a pair by how much its workloads fight over the
// same engine type (§V-A).
type Contention int

const (
	LowContention Contention = iota
	MediumContention
	HighContention
)

func (c Contention) String() string {
	switch c {
	case LowContention:
		return "low"
	case MediumContention:
		return "medium"
	case HighContention:
		return "high"
	default:
		return fmt.Sprintf("contention(%d)", int(c))
	}
}

// Pair is one collocation scenario.
type Pair struct {
	W1, W2     string
	Contention Contention
}

// Name returns the paper's "W1+W2" label.
func (p Pair) Name() string { return p.W1 + "+" + p.W2 }

// Pairs returns the paper's nine evaluation pairs in figure order:
// low contention (DLRM+SMask, DLRM+RtNt, NCF+RsNt), medium
// (ENet+SMask, BERT+ENet, ENet+MRCN), high (ENet+TFMR, MNIST+RtNt,
// RNRS+RtNt).
func Pairs() []Pair {
	return []Pair{
		{"DLRM", "SMask", LowContention},
		{"DLRM", "RtNt", LowContention},
		{"NCF", "RsNt", LowContention},
		{"ENet", "SMask", MediumContention},
		{"BERT", "ENet", MediumContention},
		{"ENet", "MRCNN", MediumContention},
		{"ENet", "TFMR", HighContention},
		{"MNIST", "RtNt", HighContention},
		{"RNRS", "RtNt", HighContention},
	}
}

// MemoryPairs returns the §V-F additions: two memory-intensive pairs and
// the three LLM collocations.
func MemoryPairs() []Pair {
	return []Pair{
		{"DLRM", "NCF", HighContention},
		{"NCF", "TFMR", HighContention},
		{"LLaMA", "BERT", LowContention},
		{"LLaMA", "RsNt", LowContention},
		{"LLaMA", "RtNt", LowContention},
	}
}

// BatchFor returns the paper's batch size for a model in the §V
// experiments: 32 for everything except Mask-RCNN and ShapeMask (8), and
// 8 for the LLaMA case study.
func BatchFor(name string) int {
	switch name {
	case "MRCNN", "SMask", "LLaMA":
		return 8
	default:
		return 32
	}
}

// Compiled caches compiled graphs keyed by (model, batch, ISA) so sweeps
// do not recompile the same workload. It is safe for concurrent use:
// the parallel experiment runner shares one cache across its worker
// pool. Compilation is a pure function of the key, so whichever worker
// populates an entry first produces the same graph any other would.
// Entries are single-flighted per key: distinct keys compile
// concurrently, a duplicate request waits for the first and shares it.
type Compiled struct {
	comp  *compiler.Compiler
	mu    sync.Mutex // guards cache map shape only
	cache map[string]*compiledEntry
}

// compiledEntry is one single-flight cache slot.
type compiledEntry struct {
	once sync.Once
	cg   *compiler.CompiledGraph
	err  error
}

// NewCompiled builds a compilation cache for a core config.
func NewCompiled(core arch.CoreConfig) (*Compiled, error) {
	comp, err := compiler.New(core)
	if err != nil {
		return nil, err
	}
	return &Compiled{comp: comp, cache: map[string]*compiledEntry{}}, nil
}

// Graph compiles (or returns cached) the named workload. The map lock
// is held only to claim the key's entry; compilation itself runs under
// the entry's sync.Once, so distinct keys compile in parallel.
func (c *Compiled) Graph(name string, batch int, kind compiler.ISAKind) (*compiler.CompiledGraph, error) {
	key := fmt.Sprintf("%s/%d/%d", name, batch, kind)
	c.mu.Lock()
	e, ok := c.cache[key]
	if !ok {
		e = &compiledEntry{}
		c.cache[key] = e
	}
	c.mu.Unlock()
	e.once.Do(func() {
		g, err := model.Build(name, batch)
		if err != nil {
			e.err = err
			return
		}
		e.cg, e.err = c.comp.Compile(g, kind)
	})
	return e.cg, e.err
}

// Tenants builds the two tenant specs for a pair under the given policy,
// with each vNPU sized mes×ves (the paper's default: 2 MEs + 2 VEs each
// on a 4+4 core).
func (c *Compiled) Tenants(p Pair, policy sched.Mode, mes, ves int) ([]sched.TenantSpec, error) {
	var specs []sched.TenantSpec
	for _, name := range []string{p.W1, p.W2} {
		g, err := c.Graph(name, BatchFor(name), policy.ISAFor())
		if err != nil {
			return nil, err
		}
		specs = append(specs, sched.TenantSpec{Name: name, Graph: g, MEs: mes, VEs: ves})
	}
	return specs, nil
}
