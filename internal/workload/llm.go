package workload

import (
	"fmt"

	"neu10/internal/sim"
)

// Autoregressive LLM request model. A serving request is not one
// invocation but a generation: a prompt processed once (prefill) and
// then one decode iteration per output token, each iteration pinning
// the sequence's KV cache. The serving layer (internal/serve) prices
// the two phases separately through its CostDB; this file supplies the
// request-shape model the scenarios draw traces from.

// PrefixSeg is one segment of a request's KV-prefix chain: an opaque
// content key plus the segment's length in tokens. A session's requests
// share a growing chain of segments (system prompt, then one segment
// per completed turn); a prefix-caching KV backend can match the chain
// segment-by-segment against what it still holds and skip re-prefilling
// the hit. The simulator has no token content, so equal keys stand in
// for equal token spans.
type PrefixSeg struct {
	Key    uint64
	Tokens int
}

// LLMRequest is one autoregressive inference request: Prompt tokens to
// prefill, Output tokens to generate (the first is emitted by the
// prefill itself). Session traces additionally carry the request's
// prefix chain and the key under which its own prompt+output span is
// sealed into the cache at completion.
type LLMRequest struct {
	Prompt int
	Output int

	// Prefix is the chain of previously-sealed segments this prompt
	// starts with (nil for independent requests). The segment token
	// counts sum to at most Prompt; the remainder is the new turn.
	Prefix []PrefixSeg
	// SealKey names the segment covering this request's new tokens
	// (turn + generated output); 0 means the request seals nothing.
	SealKey uint64
}

// Tokens returns the request's full KV-cache residency in tokens — the
// reservation an admission-time KV accountant must find room for.
func (r LLMRequest) Tokens() int { return r.Prompt + r.Output }

// LLMTrace is the request-shape distribution: prompt and output lengths
// drawn independently as shifted exponentials (min + Exp(mean−min))
// clamped to max — the long-tailed, mostly-short shape of production
// LLM traffic. Draws consume exactly two RNG values regardless of
// outcome, so a trace is reproducible and identical across scheduler
// variants compared on the same seed.
type LLMTrace struct {
	PromptMin, PromptMean, PromptMax int
	OutputMin, OutputMean, OutputMax int

	// PromptLongFrac, when > 0, makes the prompt distribution bimodal: a
	// request's prompt is drawn from the long mode below with this
	// probability, from the base mode above otherwise — the mixed
	// long-prompt/short-prompt shape (RAG contexts and pasted documents
	// among chat turns) that makes prefill/decode interference visible.
	// The draw count per request stays fixed for a given trace config
	// (both modes are always sampled), preserving trace identity across
	// compared configurations.
	PromptLongFrac                               float64
	PromptLongMin, PromptLongMean, PromptLongMax int

	// Sessions, when > 0, turns the trace into multi-turn conversations
	// drawn via DrawSession: each arrival picks one of this many
	// concurrent sessions uniformly, its prompt is the session's whole
	// chain so far plus a fresh turn (drawn from the prompt distribution
	// above), and its completion seals the new tokens onto the chain.
	// Turn shapes still come from the base distributions, so the draw
	// count per request stays fixed and the trace is identical across
	// compared configurations regardless of serving outcomes.
	Sessions int
	// SharedPrefixTokens seeds every session with a common system-prompt
	// segment of this many tokens (the cross-session shareable prefix).
	// 0 means sessions share nothing.
	SharedPrefixTokens int
	// MaxSessionTokens caps a session chain: a turn that would push
	// chain+turn+output past it resets the session to the shared prefix
	// first (the conversation ends; a fresh one starts). This is the
	// largest KV residency any session request can reach, so it is the
	// MaxTokens() bound for session traces. Defaults to
	// SharedPrefixTokens + 4×(PromptMax+OutputMax).
	MaxSessionTokens int
}

// Defaults fills zero fields with a chat-like shape: prompts 32–1024
// tokens (mean 256), outputs 2–64 tokens (mean 16).
func (tr *LLMTrace) Defaults() {
	if tr.PromptMin == 0 {
		tr.PromptMin = 32
	}
	if tr.PromptMean == 0 {
		tr.PromptMean = 256
	}
	if tr.PromptMax == 0 {
		tr.PromptMax = 1024
	}
	if tr.OutputMin == 0 {
		tr.OutputMin = 2
	}
	if tr.OutputMean == 0 {
		tr.OutputMean = 16
	}
	if tr.OutputMax == 0 {
		tr.OutputMax = 64
	}
	if tr.Sessions > 0 && tr.MaxSessionTokens == 0 {
		tr.MaxSessionTokens = tr.SharedPrefixTokens + 4*(tr.maxTurn()+tr.OutputMax)
	}
}

// Validate rejects malformed shape bounds.
func (tr LLMTrace) Validate() error {
	check := func(kind string, min, mean, max int) error {
		switch {
		case min < 1:
			return fmt.Errorf("workload: %s min %d < 1", kind, min)
		case max < min:
			return fmt.Errorf("workload: %s max %d < min %d", kind, max, min)
		case mean < min || mean > max:
			return fmt.Errorf("workload: %s mean %d outside [%d, %d]", kind, mean, min, max)
		}
		return nil
	}
	if err := check("prompt", tr.PromptMin, tr.PromptMean, tr.PromptMax); err != nil {
		return err
	}
	if tr.PromptLongFrac < 0 || tr.PromptLongFrac >= 1 {
		return fmt.Errorf("workload: long-prompt fraction %v out of [0,1)", tr.PromptLongFrac)
	}
	if tr.PromptLongFrac > 0 {
		if err := check("long prompt", tr.PromptLongMin, tr.PromptLongMean, tr.PromptLongMax); err != nil {
			return err
		}
	}
	if err := check("output", tr.OutputMin, tr.OutputMean, tr.OutputMax); err != nil {
		return err
	}
	if tr.Sessions < 0 {
		return fmt.Errorf("workload: %d sessions", tr.Sessions)
	}
	if tr.Sessions > 0 {
		if tr.SharedPrefixTokens < 0 {
			return fmt.Errorf("workload: shared prefix of %d tokens", tr.SharedPrefixTokens)
		}
		// A freshly-reset session must be able to host any turn+output.
		if floor := tr.SharedPrefixTokens + tr.maxTurn() + tr.OutputMax; tr.MaxSessionTokens < floor {
			return fmt.Errorf("workload: session cap %d tokens < shared prefix + worst turn + worst output = %d",
				tr.MaxSessionTokens, floor)
		}
	} else if tr.SharedPrefixTokens != 0 || tr.MaxSessionTokens != 0 {
		return fmt.Errorf("workload: session prefix/cap set without Sessions")
	}
	return nil
}

// maxTurn returns the largest single draw of the prompt distribution —
// the whole prompt for independent traces, one turn for session traces.
func (tr LLMTrace) maxTurn() int {
	if tr.PromptLongFrac > 0 && tr.PromptLongMax > tr.PromptMax {
		return tr.PromptLongMax
	}
	return tr.PromptMax
}

// MaxTokens returns the largest KV reservation any drawn request can
// need — the floor a replica's KV capacity must clear, or its queue
// head could block forever. For session traces that is the session
// cap: a request's prompt is its whole chain plus the turn.
func (tr LLMTrace) MaxTokens() int {
	if tr.Sessions > 0 {
		return tr.MaxSessionTokens
	}
	return tr.maxTurn() + tr.OutputMax
}

// MaxPrompt returns the largest prompt any drawn request can carry —
// the floor a prefill-pool replica's KV capacity must clear.
func (tr LLMTrace) MaxPrompt() int {
	if tr.Sessions > 0 {
		return tr.MaxSessionTokens - tr.OutputMin
	}
	return tr.maxTurn()
}

// MeanPrompt returns the expected prompt length (the SLO and
// migration-cost anchor). Session chains grow from the shared prefix
// toward the cap and reset, so their prompts are anchored at the
// midpoint of that range.
func (tr LLMTrace) MeanPrompt() int {
	if tr.Sessions > 0 {
		return (tr.SharedPrefixTokens + tr.MaxSessionTokens) / 2
	}
	if tr.PromptLongFrac <= 0 {
		return tr.PromptMean
	}
	m := (1-tr.PromptLongFrac)*float64(tr.PromptMean) + tr.PromptLongFrac*float64(tr.PromptLongMean)
	return int(m + 0.5)
}

// Draw samples one request shape from the trace's distributions.
func (tr LLMTrace) Draw(rng *sim.RNG) LLMRequest {
	prompt := drawLen(rng, tr.PromptMin, tr.PromptMean, tr.PromptMax)
	if tr.PromptLongFrac > 0 {
		// Both modes and the mode coin are always consumed, keeping the
		// per-request draw count a constant of the trace config.
		long := drawLen(rng, tr.PromptLongMin, tr.PromptLongMean, tr.PromptLongMax)
		if rng.Float64() < tr.PromptLongFrac {
			prompt = long
		}
	}
	return LLMRequest{
		Prompt: prompt,
		Output: drawLen(rng, tr.OutputMin, tr.OutputMean, tr.OutputMax),
	}
}

// SessionState is the mutable side of a session trace: the live
// conversation chains DrawSession grows. It belongs to the trace
// consumer (one per tenant RNG stream), not to the LLMTrace config.
type SessionState struct {
	chains  []sessionChain
	nextKey uint64
}

type sessionChain struct {
	segs   []PrefixSeg
	tokens int
}

// NewSessionState builds the initial chains for a session trace: every
// session starts at the shared system-prompt segment (key 1), or empty
// when the trace shares nothing.
func NewSessionState(tr LLMTrace) *SessionState {
	st := &SessionState{nextKey: 2}
	st.chains = make([]sessionChain, tr.Sessions)
	for i := range st.chains {
		if tr.SharedPrefixTokens > 0 {
			st.chains[i] = sessionChain{
				segs:   []PrefixSeg{{Key: 1, Tokens: tr.SharedPrefixTokens}},
				tokens: tr.SharedPrefixTokens,
			}
		}
	}
	return st
}

// DrawSession samples one multi-turn request: a uniform session pick,
// then a turn/output shape from the base distributions. The request's
// prompt is the session's whole chain plus the turn; its Prefix is the
// chain as sealed so far and its SealKey names the new segment, which
// is appended to the chain immediately — optimistically, whether or not
// the request is ultimately admitted — so the chain evolution (and with
// it the whole trace) depends only on the RNG stream, never on serving
// outcomes. A rejected turn simply leaves a segment no backend ever
// seals, which later requests miss on. Draw consumption is fixed: one
// session pick plus Draw's fixed count.
func (tr LLMTrace) DrawSession(rng *sim.RNG, st *SessionState) LLMRequest {
	i := rng.Intn(len(st.chains))
	shape := tr.Draw(rng)
	ch := &st.chains[i]
	if ch.tokens+shape.Prompt+shape.Output > tr.MaxSessionTokens {
		// Context window exhausted: the conversation ends and a fresh one
		// (sharing only the system prompt) takes its slot. Fresh slices —
		// outstanding requests still reference the old chain.
		*ch = sessionChain{}
		if tr.SharedPrefixTokens > 0 {
			ch.segs = []PrefixSeg{{Key: 1, Tokens: tr.SharedPrefixTokens}}
			ch.tokens = tr.SharedPrefixTokens
		}
	}
	req := LLMRequest{
		Prompt:  ch.tokens + shape.Prompt,
		Output:  shape.Output,
		Prefix:  ch.segs[:len(ch.segs):len(ch.segs)],
		SealKey: st.nextKey,
	}
	st.nextKey++
	ch.segs = append(ch.segs, PrefixSeg{Key: req.SealKey, Tokens: shape.Prompt + shape.Output})
	ch.tokens += shape.Prompt + shape.Output
	return req
}

// drawLen samples min + Exp(mean−min) rounded, clamped to max. The RNG
// is always consumed exactly once so the draw count per request is
// fixed (trace identity across compared configurations).
func drawLen(rng *sim.RNG, min, mean, max int) int {
	g := rng.Exp(float64(mean - min))
	if mean <= min {
		return min
	}
	v := min + int(g+0.5)
	if v > max {
		return max
	}
	return v
}
