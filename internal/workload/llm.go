package workload

import (
	"fmt"

	"neu10/internal/sim"
)

// Autoregressive LLM request model. A serving request is not one
// invocation but a generation: a prompt processed once (prefill) and
// then one decode iteration per output token, each iteration pinning
// the sequence's KV cache. The serving layer (internal/serve) prices
// the two phases separately through its CostDB; this file supplies the
// request-shape model the scenarios draw traces from.

// LLMRequest is one autoregressive inference request: Prompt tokens to
// prefill, Output tokens to generate (the first is emitted by the
// prefill itself).
type LLMRequest struct {
	Prompt int
	Output int
}

// Tokens returns the request's full KV-cache residency in tokens — the
// reservation an admission-time KV accountant must find room for.
func (r LLMRequest) Tokens() int { return r.Prompt + r.Output }

// LLMTrace is the request-shape distribution: prompt and output lengths
// drawn independently as shifted exponentials (min + Exp(mean−min))
// clamped to max — the long-tailed, mostly-short shape of production
// LLM traffic. Draws consume exactly two RNG values regardless of
// outcome, so a trace is reproducible and identical across scheduler
// variants compared on the same seed.
type LLMTrace struct {
	PromptMin, PromptMean, PromptMax int
	OutputMin, OutputMean, OutputMax int

	// PromptLongFrac, when > 0, makes the prompt distribution bimodal: a
	// request's prompt is drawn from the long mode below with this
	// probability, from the base mode above otherwise — the mixed
	// long-prompt/short-prompt shape (RAG contexts and pasted documents
	// among chat turns) that makes prefill/decode interference visible.
	// The draw count per request stays fixed for a given trace config
	// (both modes are always sampled), preserving trace identity across
	// compared configurations.
	PromptLongFrac                               float64
	PromptLongMin, PromptLongMean, PromptLongMax int
}

// Defaults fills zero fields with a chat-like shape: prompts 32–1024
// tokens (mean 256), outputs 2–64 tokens (mean 16).
func (tr *LLMTrace) Defaults() {
	if tr.PromptMin == 0 {
		tr.PromptMin = 32
	}
	if tr.PromptMean == 0 {
		tr.PromptMean = 256
	}
	if tr.PromptMax == 0 {
		tr.PromptMax = 1024
	}
	if tr.OutputMin == 0 {
		tr.OutputMin = 2
	}
	if tr.OutputMean == 0 {
		tr.OutputMean = 16
	}
	if tr.OutputMax == 0 {
		tr.OutputMax = 64
	}
}

// Validate rejects malformed shape bounds.
func (tr LLMTrace) Validate() error {
	check := func(kind string, min, mean, max int) error {
		switch {
		case min < 1:
			return fmt.Errorf("workload: %s min %d < 1", kind, min)
		case max < min:
			return fmt.Errorf("workload: %s max %d < min %d", kind, max, min)
		case mean < min || mean > max:
			return fmt.Errorf("workload: %s mean %d outside [%d, %d]", kind, mean, min, max)
		}
		return nil
	}
	if err := check("prompt", tr.PromptMin, tr.PromptMean, tr.PromptMax); err != nil {
		return err
	}
	if tr.PromptLongFrac < 0 || tr.PromptLongFrac >= 1 {
		return fmt.Errorf("workload: long-prompt fraction %v out of [0,1)", tr.PromptLongFrac)
	}
	if tr.PromptLongFrac > 0 {
		if err := check("long prompt", tr.PromptLongMin, tr.PromptLongMean, tr.PromptLongMax); err != nil {
			return err
		}
	}
	return check("output", tr.OutputMin, tr.OutputMean, tr.OutputMax)
}

// MaxTokens returns the largest KV reservation any drawn request can
// need — the floor a replica's KV capacity must clear, or its queue
// head could block forever.
func (tr LLMTrace) MaxTokens() int {
	p := tr.PromptMax
	if tr.PromptLongFrac > 0 && tr.PromptLongMax > p {
		p = tr.PromptLongMax
	}
	return p + tr.OutputMax
}

// MaxPrompt returns the largest prompt any drawn request can carry —
// the floor a prefill-pool replica's KV capacity must clear.
func (tr LLMTrace) MaxPrompt() int {
	if tr.PromptLongFrac > 0 && tr.PromptLongMax > tr.PromptMax {
		return tr.PromptLongMax
	}
	return tr.PromptMax
}

// MeanPrompt returns the mixture's expected prompt length (the SLO and
// migration-cost anchor for bimodal traces).
func (tr LLMTrace) MeanPrompt() int {
	if tr.PromptLongFrac <= 0 {
		return tr.PromptMean
	}
	m := (1-tr.PromptLongFrac)*float64(tr.PromptMean) + tr.PromptLongFrac*float64(tr.PromptLongMean)
	return int(m + 0.5)
}

// Draw samples one request shape from the trace's distributions.
func (tr LLMTrace) Draw(rng *sim.RNG) LLMRequest {
	prompt := drawLen(rng, tr.PromptMin, tr.PromptMean, tr.PromptMax)
	if tr.PromptLongFrac > 0 {
		// Both modes and the mode coin are always consumed, keeping the
		// per-request draw count a constant of the trace config.
		long := drawLen(rng, tr.PromptLongMin, tr.PromptLongMean, tr.PromptLongMax)
		if rng.Float64() < tr.PromptLongFrac {
			prompt = long
		}
	}
	return LLMRequest{
		Prompt: prompt,
		Output: drawLen(rng, tr.OutputMin, tr.OutputMean, tr.OutputMax),
	}
}

// drawLen samples min + Exp(mean−min) rounded, clamped to max. The RNG
// is always consumed exactly once so the draw count per request is
// fixed (trace identity across compared configurations).
func drawLen(rng *sim.RNG, min, mean, max int) int {
	g := rng.Exp(float64(mean - min))
	if mean <= min {
		return min
	}
	v := min + int(g+0.5)
	if v > max {
		return max
	}
	return v
}
