package workload

import (
	"testing"

	"neu10/internal/sim"
)

// TestLLMTraceDrawBounds: every drawn shape must respect the configured
// bounds, across many draws and seeds.
func TestLLMTraceDrawBounds(t *testing.T) {
	tr := LLMTrace{
		PromptMin: 16, PromptMean: 64, PromptMax: 256,
		OutputMin: 2, OutputMean: 12, OutputMax: 48,
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 3; seed++ {
		rng := sim.NewRNG(seed)
		var promptSum, outSum float64
		const n = 4000
		for i := 0; i < n; i++ {
			r := tr.Draw(rng)
			if r.Prompt < tr.PromptMin || r.Prompt > tr.PromptMax {
				t.Fatalf("prompt %d outside [%d, %d]", r.Prompt, tr.PromptMin, tr.PromptMax)
			}
			if r.Output < tr.OutputMin || r.Output > tr.OutputMax {
				t.Fatalf("output %d outside [%d, %d]", r.Output, tr.OutputMin, tr.OutputMax)
			}
			if r.Tokens() != r.Prompt+r.Output {
				t.Fatalf("Tokens() = %d, want %d", r.Tokens(), r.Prompt+r.Output)
			}
			promptSum += float64(r.Prompt)
			outSum += float64(r.Output)
		}
		// Loose sanity on the means: clamping at max pulls them below the
		// nominal targets, but they should land in the right region.
		if m := promptSum / n; m < float64(tr.PromptMin) || m > float64(tr.PromptMean)*1.5 {
			t.Errorf("seed %d: prompt mean %.1f implausible for target %d", seed, m, tr.PromptMean)
		}
		if m := outSum / n; m < float64(tr.OutputMin) || m > float64(tr.OutputMean)*1.5 {
			t.Errorf("seed %d: output mean %.1f implausible for target %d", seed, m, tr.OutputMean)
		}
	}
}

// TestLLMTraceDrawDeterministic: the same seed must reproduce the exact
// shape sequence, and every draw must consume a fixed number of RNG
// values so downstream consumers stay aligned across configurations.
func TestLLMTraceDrawDeterministic(t *testing.T) {
	tr := LLMTrace{}
	tr.Defaults()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	a, b := sim.NewRNG(7), sim.NewRNG(7)
	for i := 0; i < 1000; i++ {
		if ra, rb := tr.Draw(a), tr.Draw(b); ra != rb {
			t.Fatalf("draw %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
	// Fixed consumption: after identical draw counts, both streams must
	// be at the same position.
	if a.Uint64() != b.Uint64() {
		t.Error("draws consumed different numbers of RNG values")
	}
}

// TestLLMTraceValidate rejects malformed bounds.
func TestLLMTraceValidate(t *testing.T) {
	bad := []LLMTrace{
		{PromptMin: 0, PromptMean: 8, PromptMax: 16, OutputMin: 1, OutputMean: 2, OutputMax: 4},
		{PromptMin: 8, PromptMean: 4, PromptMax: 16, OutputMin: 1, OutputMean: 2, OutputMax: 4},
		{PromptMin: 8, PromptMean: 32, PromptMax: 16, OutputMin: 1, OutputMean: 2, OutputMax: 4},
		{PromptMin: 8, PromptMean: 8, PromptMax: 16, OutputMin: 4, OutputMean: 2, OutputMax: 1},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: malformed trace %+v accepted", i, tr)
		}
	}
	var tr LLMTrace
	tr.Defaults()
	if err := tr.Validate(); err != nil {
		t.Errorf("defaulted trace rejected: %v", err)
	}
	if tr.MaxTokens() != tr.PromptMax+tr.OutputMax {
		t.Errorf("MaxTokens %d, want %d", tr.MaxTokens(), tr.PromptMax+tr.OutputMax)
	}
}
