package workload

import (
	"testing"

	"neu10/internal/sim"
)

// TestLLMTraceDrawBounds: every drawn shape must respect the configured
// bounds, across many draws and seeds.
func TestLLMTraceDrawBounds(t *testing.T) {
	tr := LLMTrace{
		PromptMin: 16, PromptMean: 64, PromptMax: 256,
		OutputMin: 2, OutputMean: 12, OutputMax: 48,
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 3; seed++ {
		rng := sim.NewRNG(seed)
		var promptSum, outSum float64
		const n = 4000
		for i := 0; i < n; i++ {
			r := tr.Draw(rng)
			if r.Prompt < tr.PromptMin || r.Prompt > tr.PromptMax {
				t.Fatalf("prompt %d outside [%d, %d]", r.Prompt, tr.PromptMin, tr.PromptMax)
			}
			if r.Output < tr.OutputMin || r.Output > tr.OutputMax {
				t.Fatalf("output %d outside [%d, %d]", r.Output, tr.OutputMin, tr.OutputMax)
			}
			if r.Tokens() != r.Prompt+r.Output {
				t.Fatalf("Tokens() = %d, want %d", r.Tokens(), r.Prompt+r.Output)
			}
			promptSum += float64(r.Prompt)
			outSum += float64(r.Output)
		}
		// Loose sanity on the means: clamping at max pulls them below the
		// nominal targets, but they should land in the right region.
		if m := promptSum / n; m < float64(tr.PromptMin) || m > float64(tr.PromptMean)*1.5 {
			t.Errorf("seed %d: prompt mean %.1f implausible for target %d", seed, m, tr.PromptMean)
		}
		if m := outSum / n; m < float64(tr.OutputMin) || m > float64(tr.OutputMean)*1.5 {
			t.Errorf("seed %d: output mean %.1f implausible for target %d", seed, m, tr.OutputMean)
		}
	}
}

// TestLLMTraceDrawDeterministic: the same seed must reproduce the exact
// shape sequence, and every draw must consume a fixed number of RNG
// values so downstream consumers stay aligned across configurations.
func TestLLMTraceDrawDeterministic(t *testing.T) {
	tr := LLMTrace{}
	tr.Defaults()
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	a, b := sim.NewRNG(7), sim.NewRNG(7)
	for i := 0; i < 1000; i++ {
		if ra, rb := tr.Draw(a), tr.Draw(b); ra.Prompt != rb.Prompt || ra.Output != rb.Output {
			t.Fatalf("draw %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
	// Fixed consumption: after identical draw counts, both streams must
	// be at the same position.
	if a.Uint64() != b.Uint64() {
		t.Error("draws consumed different numbers of RNG values")
	}
}

// TestLLMTraceBimodal pins the long-prompt mixture: draws respect both
// modes' bounds, the long mode appears at roughly its configured
// fraction, consumption stays fixed per draw, and the helper bounds
// (MaxPrompt/MaxTokens/MeanPrompt) cover the mixture.
func TestLLMTraceBimodal(t *testing.T) {
	tr := LLMTrace{
		PromptMin: 16, PromptMean: 32, PromptMax: 64,
		PromptLongFrac: 0.25, PromptLongMin: 128, PromptLongMean: 192, PromptLongMax: 256,
		OutputMin: 2, OutputMean: 8, OutputMax: 16,
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if tr.MaxPrompt() != 256 || tr.MaxTokens() != 256+16 {
		t.Errorf("mixture bounds: MaxPrompt %d, MaxTokens %d", tr.MaxPrompt(), tr.MaxTokens())
	}
	if m := tr.MeanPrompt(); m != 72 { // 0.75×32 + 0.25×192
		t.Errorf("MeanPrompt %d, want 72", m)
	}
	rng := sim.NewRNG(3)
	long := 0
	const n = 4000
	for i := 0; i < n; i++ {
		r := tr.Draw(rng)
		inBase := r.Prompt >= tr.PromptMin && r.Prompt <= tr.PromptMax
		inLong := r.Prompt >= tr.PromptLongMin && r.Prompt <= tr.PromptLongMax
		if !inBase && !inLong {
			t.Fatalf("prompt %d outside both modes", r.Prompt)
		}
		if inLong {
			long++
		}
	}
	if frac := float64(long) / n; frac < 0.2 || frac > 0.3 {
		t.Errorf("long-mode fraction %.3f far from configured 0.25", frac)
	}
	// Fixed consumption with the mixture enabled: both streams align.
	a, b := sim.NewRNG(9), sim.NewRNG(9)
	for i := 0; i < 500; i++ {
		if ra, rb := tr.Draw(a), tr.Draw(b); ra.Prompt != rb.Prompt || ra.Output != rb.Output {
			t.Fatalf("draw %d diverged: %+v vs %+v", i, ra, rb)
		}
	}
	if a.Uint64() != b.Uint64() {
		t.Error("bimodal draws consumed different numbers of RNG values")
	}
	// Malformed mixtures are rejected.
	badFrac := tr
	badFrac.PromptLongFrac = 1.5
	if err := badFrac.Validate(); err == nil {
		t.Error("long fraction 1.5 accepted")
	}
	badMode := tr
	badMode.PromptLongMean = 1000
	if err := badMode.Validate(); err == nil {
		t.Error("long mean beyond long max accepted")
	}
}

// TestLLMTraceValidate rejects malformed bounds.
func TestLLMTraceValidate(t *testing.T) {
	bad := []LLMTrace{
		{PromptMin: 0, PromptMean: 8, PromptMax: 16, OutputMin: 1, OutputMean: 2, OutputMax: 4},
		{PromptMin: 8, PromptMean: 4, PromptMax: 16, OutputMin: 1, OutputMean: 2, OutputMax: 4},
		{PromptMin: 8, PromptMean: 32, PromptMax: 16, OutputMin: 1, OutputMean: 2, OutputMax: 4},
		{PromptMin: 8, PromptMean: 8, PromptMax: 16, OutputMin: 4, OutputMean: 2, OutputMax: 1},
	}
	for i, tr := range bad {
		if err := tr.Validate(); err == nil {
			t.Errorf("case %d: malformed trace %+v accepted", i, tr)
		}
	}
	var tr LLMTrace
	tr.Defaults()
	if err := tr.Validate(); err != nil {
		t.Errorf("defaulted trace rejected: %v", err)
	}
	if tr.MaxTokens() != tr.PromptMax+tr.OutputMax {
		t.Errorf("MaxTokens %d, want %d", tr.MaxTokens(), tr.PromptMax+tr.OutputMax)
	}
}
