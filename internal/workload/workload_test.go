package workload

import (
	"testing"

	"neu10/internal/arch"
	"neu10/internal/compiler"
	"neu10/internal/sched"
)

func TestPairsMatchPaper(t *testing.T) {
	ps := Pairs()
	if len(ps) != 9 {
		t.Fatalf("have %d pairs, paper evaluates 9", len(ps))
	}
	byLevel := map[Contention]int{}
	for _, p := range ps {
		byLevel[p.Contention]++
	}
	for _, lvl := range []Contention{LowContention, MediumContention, HighContention} {
		if byLevel[lvl] != 3 {
			t.Errorf("%s contention has %d pairs, want 3", lvl, byLevel[lvl])
		}
	}
	if ps[0].Name() != "DLRM+SMask" {
		t.Errorf("first pair %s, want DLRM+SMask", ps[0].Name())
	}
}

func TestBatchFor(t *testing.T) {
	if BatchFor("BERT") != 32 || BatchFor("MRCNN") != 8 || BatchFor("SMask") != 8 || BatchFor("LLaMA") != 8 {
		t.Fatal("batch sizes do not match §V-A")
	}
}

func TestCompiledCacheReuses(t *testing.T) {
	c, err := NewCompiled(arch.TPUv4Like())
	if err != nil {
		t.Fatal(err)
	}
	a, err := c.Graph("MNIST", 8, compiler.ISANeu)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Graph("MNIST", 8, compiler.ISANeu)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("cache did not reuse compiled graph")
	}
	v, err := c.Graph("MNIST", 8, compiler.ISAVLIW)
	if err != nil {
		t.Fatal(err)
	}
	if v == a {
		t.Fatal("different ISA shared a cache entry")
	}
}

func TestTenantsBuild(t *testing.T) {
	c, err := NewCompiled(arch.TPUv4Like())
	if err != nil {
		t.Fatal(err)
	}
	for _, pol := range []sched.Mode{sched.PMT, sched.V10, sched.NeuNH, sched.Neu10} {
		specs, err := c.Tenants(Pair{W1: "MNIST", W2: "ENet"}, pol, 2, 2)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if len(specs) != 2 || specs[0].Name != "MNIST" || specs[1].Name != "ENet" {
			t.Fatalf("%s: bad specs %+v", pol, specs)
		}
		if specs[0].Graph.ISA != pol.ISAFor() {
			t.Fatalf("%s: ISA mismatch", pol)
		}
	}
}

func TestMemoryPairsIncludeLLM(t *testing.T) {
	mp := MemoryPairs()
	llm := 0
	for _, p := range mp {
		if p.W1 == "LLaMA" {
			llm++
		}
	}
	if llm != 3 {
		t.Fatalf("want 3 LLaMA collocations (§V-F), have %d", llm)
	}
}
