package workload

import (
	"strings"
	"testing"
)

func TestServingMixRates(t *testing.T) {
	m := ServingMix{TotalRPS: 200, Shares: []MixShare{
		{Name: "chat", Frac: 0.05},
		{Name: "vision", Frac: 0.35},
		{Name: "rank", Frac: 0.60},
	}}
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	total := 0.0
	for _, s := range m.Shares {
		total += m.RateFor(s.Name)
	}
	if diff := total - m.TotalRPS; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("per-family rates sum to %v, want %v", total, m.TotalRPS)
	}
	if got := m.RateFor("rank"); got != 120 {
		t.Errorf("rank rate %v, want 120", got)
	}
	if got := m.RateFor("absent"); got != 0 {
		t.Errorf("unknown family rate %v, want 0", got)
	}
}

func TestServingMixValidate(t *testing.T) {
	cases := []struct {
		name string
		mix  ServingMix
		want string
	}{
		{"zero total", ServingMix{Shares: []MixShare{{Name: "a", Frac: 1}}}, "total"},
		{"no shares", ServingMix{TotalRPS: 10}, "no shares"},
		{"unnamed", ServingMix{TotalRPS: 10, Shares: []MixShare{{Frac: 1}}}, "without a name"},
		{"duplicate", ServingMix{TotalRPS: 10, Shares: []MixShare{
			{Name: "a", Frac: 0.5}, {Name: "a", Frac: 0.5}}}, "twice"},
		{"nonpositive", ServingMix{TotalRPS: 10, Shares: []MixShare{
			{Name: "a", Frac: 1}, {Name: "b", Frac: 0}}}, "fraction"},
		{"sum", ServingMix{TotalRPS: 10, Shares: []MixShare{
			{Name: "a", Frac: 0.5}, {Name: "b", Frac: 0.4}}}, "sum"},
	}
	for _, c := range cases {
		err := c.mix.Validate()
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want mention of %q", c.name, err, c.want)
		}
	}
}
