package isa

import (
	"strings"
	"testing"
)

const matmulAsm = `
.neuisa veslots=4

; fused MatMul+ReLU tile: each µTOp multiplies its row range of A by the
; shared weight tile B and stores ReLU(A·B) — the paper's Fig. 8 kernel.
.utop me tile
    uTop.index %r2
    s.movi %r3, #8              ; rows per µTOp
    s.mul %r4, %r2, %r3
    s.movi %r5, #16384
    me.loadw [%r5], 64, 128
    s.movi %r8, #64
    s.mul %r6, %r4, %r8         ; A offset
    s.movi %r9, #128
    s.mul %r7, %r4, %r9
    s.addi %r7, %r7, #65536     ; C base
    s.movi %r10, #8
LOOP:
    me.push [%r6], 64
    me.pop %v0 | v.relu %v0, %v0
    ls.store [%r7+0], %v0
    s.addi %r6, %r6, #64
    s.addi %r7, %r7, #128
    s.addi %r10, %r10, #-1
    bne %r10, %r0, @LOOP
    uTop.finish

.utop ve sum
    ls.load %v0, [%r1+0]
    ls.load %v1, [%r1+128]
    v.add %v2, %v0, %v1
    ls.store [%r1+256], %v2
    uTop.finish

.group tile tile
.group | sum
`

func TestAssembleMatMulKernel(t *testing.T) {
	p, err := Assemble(matmulAsm)
	if err != nil {
		t.Fatal(err)
	}
	if p.VESlots != 4 {
		t.Fatalf("veslots %d", p.VESlots)
	}
	if len(p.UTops) != 2 || p.UTops[0].Kind != MEUTop || p.UTops[1].Kind != VEUTop {
		t.Fatalf("µTOps %+v", p.UTops)
	}
	if len(p.Groups) != 2 {
		t.Fatalf("groups %d", len(p.Groups))
	}
	if len(p.Groups[0].ME) != 2 || p.Groups[0].VE != NullUTop {
		t.Fatalf("group 0 %+v", p.Groups[0])
	}
	if p.Groups[1].VE != 1 || len(p.Groups[1].ME) != 0 {
		t.Fatalf("group 1 %+v", p.Groups[1])
	}
	// The branch must have resolved to a negative offset landing on LOOP.
	var branch *Operation
	for i := range p.MECode {
		if p.MECode[i].Misc.Op == OpBNE {
			branch = &p.MECode[i].Misc
		}
	}
	if branch == nil {
		t.Fatal("no branch assembled")
	}
	if branch.Imm >= 0 || branch.Imm < -10 {
		t.Fatalf("branch offset %d implausible", branch.Imm)
	}
	// Round-trip through the binary encoder.
	q, err := DecodeNeuProgram(p.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if DumpNeuProgram(p) != DumpNeuProgram(q) {
		t.Fatal("assembled program does not survive encode/decode")
	}
}

func TestAssembleParallelSlots(t *testing.T) {
	p, err := Assemble(`
.neuisa veslots=2
.utop me k
    me.pop %v0 | v.relu %v0, %v0 | v.mov %v1, %v0 | ls.store [%r1+0], %v0
    uTop.finish
.group k
`)
	if err != nil {
		t.Fatal(err)
	}
	in := p.MECode[p.UTops[0].Start]
	if in.ME[0].Op != OpMEPop || in.VE[0].Op != OpVRelu || in.VE[1].Op != OpVMov ||
		in.LS[0].Op != OpVStore {
		t.Fatalf("parallel slots misassembled: %s", Disassemble(&in))
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"no header", ".utop me x\nuTop.finish\n.group x", ".neuisa"},
		{"dup header", ".neuisa veslots=2\n.neuisa veslots=2", "duplicate"},
		{"bad veslots", ".neuisa veslots=99", "veslots"},
		{"unknown mnemonic", ".neuisa veslots=2\n.utop me x\nfrobnicate %r1\nuTop.finish\n.group x", "mnemonic"},
		{"missing finish", ".neuisa veslots=2\n.utop me x\nme.pop %v0\n.group x", "finish"},
		{"undefined label", ".neuisa veslots=2\n.utop me x\nbne %r1, %r0, @nope\nuTop.finish\n.group x", "label"},
		{"dup utop", ".neuisa veslots=2\n.utop me x\nuTop.finish\n.utop me x\nuTop.finish\n.group x", "duplicate"},
		{"unknown utop in group", ".neuisa veslots=2\n.utop me x\nuTop.finish\n.group y", "unknown"},
		{"ve op in me position", ".neuisa veslots=2\n.utop ve x\nme.pop %v0\nuTop.finish\n.group | x", "ME slot"},
		{"bad register", ".neuisa veslots=2\n.utop me x\ns.movi %q1, #5\nuTop.finish\n.group x", "s.movi"},
		{"two ve in group", ".neuisa veslots=2\n.utop ve a\nuTop.finish\n.utop ve b\nuTop.finish\n.group | a b", "two VE"},
		{"instr outside utop", ".neuisa veslots=2\ns.movi %r1, #5", "outside"},
		{"empty group", ".neuisa veslots=2\n.utop me x\nuTop.finish\n.group |", "empty"},
	}
	for _, c := range cases {
		_, err := Assemble(c.src)
		if err == nil {
			t.Errorf("%s: assembled without error", c.name)
			continue
		}
		if !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %q does not mention %q", c.name, err, c.want)
		}
	}
}

func TestAssembleCommentsAndBlankLines(t *testing.T) {
	p, err := Assemble(`
; leading comment
.neuisa veslots=2   ; trailing comment

.utop ve v          ; the µTOp
    v.bcast %v0, %r1
    v.rsum %r2, %v0 ; reduce
    uTop.finish

.group | v
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.VECode) != 3 {
		t.Fatalf("expected 3 instructions, got %d", len(p.VECode))
	}
}

func TestAssembleNextGroupLoop(t *testing.T) {
	// The paper's Fig. 15 loop, in assembler form.
	p, err := Assemble(`
.neuisa veslots=1
.utop ve body
    s.load %r2, [%r0+100]
    s.addi %r2, %r2, #1
    s.store [%r0+100], %r2
    uTop.finish
.utop ve check
    s.load %r2, [%r0+101]
    s.addi %r2, %r2, #1
    s.store [%r0+101], %r2
    s.movi %r3, #3
    blt %r3, %r2, @DONE
    uTop.nextGroup %r0
DONE:
    uTop.finish
.group | body
.group | check
`)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(p.Groups) != 2 {
		t.Fatalf("groups %d", len(p.Groups))
	}
}
