// Package isa defines the NPU instruction set used throughout the
// repository: the traditional VLIW format that production NPUs expose to
// their compilers, and NeuISA, the paper's extension that reorganizes a
// VLIW program into independently schedulable micro tensor operators
// (µTOps) so the hardware can re-bind work to matrix engines at runtime.
//
// The package is shared by the compiler (which emits programs), the
// functional simulator in internal/npu (which executes them), and the
// performance simulator (which schedules their µTOp skeletons).
package isa

import "fmt"

// Opcode identifies an operation within an instruction slot. Opcodes are
// grouped by the slot type they are legal in; Legal() enforces this.
type Opcode uint8

const (
	// Universal.
	OpNop Opcode = iota

	// ME slot operations (matrix engine / systolic array).
	OpMELoadW // latch a 128×128 weight tile from SRAM: dst=ME-local, A=sreg(base addr), Imm=rows<<16|cols
	OpMEPush  // push one activation row into the array: A=sreg(SRAM addr of row), Imm=row length
	OpMEPop   // pop one result row into a vector register: Dst=vreg
	OpMEPopA  // pop-accumulate: Dst=vreg, vreg += popped row

	// VE slot operations (vector engine). Vector registers hold 128 lanes.
	OpVAdd   // Dst = A + B
	OpVSub   // Dst = A - B
	OpVMul   // Dst = A * B
	OpVMax   // Dst = max(A, B)
	OpVRelu  // Dst = max(A, 0)
	OpVMov   // Dst = A
	OpVBcast // Dst[lane] = sreg[A] for all lanes (scalar broadcast)
	OpVAddS  // Dst = A + imm-as-float
	OpVMulS  // Dst = A * imm-as-float
	OpVRsum  // sreg[Dst] = sum over lanes of A (reduction to scalar)

	// Load/store slot operations (SRAM <-> vector registers). Addresses
	// are in float32 words; A names a scalar register holding the base,
	// Imm is a word offset.
	OpVLoad  // vreg[Dst] = SRAM[sreg[A]+Imm : +128]
	OpVStore // SRAM[sreg[A]+Imm : +128] = vreg[B]

	// Misc slot operations: scalar ALU, control flow, DMA, and the NeuISA
	// µTOp control instructions from the paper's Fig. 14.
	OpHalt     // stop a (traditional VLIW) program
	OpSMovI    // sreg[Dst] = Imm
	OpSAddI    // sreg[Dst] = sreg[A] + Imm
	OpSAdd     // sreg[Dst] = sreg[A] + sreg[B]
	OpSMul     // sreg[Dst] = sreg[A] * sreg[B]
	OpSLoad    // sreg[Dst] = int32(SRAM[sreg[A]+Imm])
	OpSStore   // SRAM[sreg[A]+Imm] = float32(sreg[B])
	OpBEQ      // if sreg[A] == sreg[B] jump to PC+Imm (relative, within snippet)
	OpBNE      // if sreg[A] != sreg[B] jump to PC+Imm
	OpBLT      // if sreg[A] <  sreg[B] jump to PC+Imm
	OpDMALoad  // SRAM[sreg[Dst]..] = HBM[sreg[A]..], Imm words (asynchronous in HW; synchronous functionally)
	OpDMAStore // HBM[sreg[Dst]..] = SRAM[sreg[A]..], Imm words

	// NeuISA µTOp control instructions (paper Fig. 14).
	OpUTopFinish    // signal the µTOp scheduler: this µTOp is done
	OpUTopNextGroup // set the next µTOp group index from sreg[A]
	OpUTopGroup     // sreg[Dst] = current group index
	OpUTopIndex     // sreg[Dst] = µTOp index within the current group

	opCount
)

var opNames = map[Opcode]string{
	OpNop: "nop",

	OpMELoadW: "me.loadw", OpMEPush: "me.push", OpMEPop: "me.pop", OpMEPopA: "me.popacc",

	OpVAdd: "v.add", OpVSub: "v.sub", OpVMul: "v.mul", OpVMax: "v.max",
	OpVRelu: "v.relu", OpVMov: "v.mov", OpVBcast: "v.bcast",
	OpVAddS: "v.adds", OpVMulS: "v.muls", OpVRsum: "v.rsum",

	OpVLoad: "ls.load", OpVStore: "ls.store",

	OpHalt: "halt", OpSMovI: "s.movi", OpSAddI: "s.addi", OpSAdd: "s.add",
	OpSMul: "s.mul", OpSLoad: "s.load", OpSStore: "s.store",
	OpBEQ: "beq", OpBNE: "bne", OpBLT: "blt",
	OpDMALoad: "dma.load", OpDMAStore: "dma.store",

	OpUTopFinish: "uTop.finish", OpUTopNextGroup: "uTop.nextGroup",
	OpUTopGroup: "uTop.group", OpUTopIndex: "uTop.index",
}

func (o Opcode) String() string {
	if s, ok := opNames[o]; ok {
		return s
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// SlotKind identifies which slot of a VLIW instruction an operation
// occupies.
type SlotKind int

const (
	SlotME SlotKind = iota
	SlotVE
	SlotLS
	SlotMisc
)

func (k SlotKind) String() string {
	switch k {
	case SlotME:
		return "ME"
	case SlotVE:
		return "VE"
	case SlotLS:
		return "LS"
	case SlotMisc:
		return "misc"
	default:
		return fmt.Sprintf("slot(%d)", int(k))
	}
}

// Legal reports whether an opcode may appear in a slot of the given kind.
func (o Opcode) Legal(k SlotKind) bool {
	if o == OpNop {
		return true
	}
	switch k {
	case SlotME:
		return o >= OpMELoadW && o <= OpMEPopA
	case SlotVE:
		return o >= OpVAdd && o <= OpVRsum
	case SlotLS:
		return o == OpVLoad || o == OpVStore
	case SlotMisc:
		return o >= OpHalt && o <= OpUTopIndex
	default:
		return false
	}
}

// IsBranch reports whether the opcode is a misc-slot branch.
func (o Opcode) IsBranch() bool { return o == OpBEQ || o == OpBNE || o == OpBLT }

// Operation is one slot's worth of work: an opcode plus register operands
// and a 32-bit immediate. Register fields index the vector register file
// for ME/VE/LS slots and the scalar register file for misc slots (and for
// address operands of LS/ME slots).
type Operation struct {
	Op  Opcode
	Dst uint8
	A   uint8
	B   uint8
	Imm int32
}

// Nop is the canonical no-op operation.
var Nop = Operation{Op: OpNop}

// IsNop reports whether the operation does nothing.
func (op Operation) IsNop() bool { return op.Op == OpNop }

func (op Operation) String() string {
	if op.IsNop() {
		return "nop"
	}
	return fmt.Sprintf("%s d%d a%d b%d #%d", op.Op, op.Dst, op.A, op.B, op.Imm)
}

// Format describes the slot layout of instructions in a program: how many
// ME slots and VE slots each instruction word carries. A traditional VLIW
// program for a core with nx MEs and ny VEs uses Format{nx, ny}; a NeuISA
// ME µTOp uses Format{1, ny}; a NeuISA VE µTOp uses Format{0, ny}.
// All formats carry two load/store slots and one misc slot.
type Format struct {
	MESlots int
	VESlots int
}

// LSSlots is the number of load/store slots in every instruction.
const LSSlots = 2

// Validate checks the format is representable.
func (f Format) Validate() error {
	if f.MESlots < 0 || f.MESlots > 16 {
		return fmt.Errorf("isa: ME slots %d out of range [0,16]", f.MESlots)
	}
	if f.VESlots < 1 || f.VESlots > 16 {
		return fmt.Errorf("isa: VE slots %d out of range [1,16]", f.VESlots)
	}
	return nil
}

// Instruction is one VLIW instruction word: a fixed set of parallel slots
// determined by the program's Format.
type Instruction struct {
	ME   []Operation // len = Format.MESlots
	VE   []Operation // len = Format.VESlots
	LS   [LSSlots]Operation
	Misc Operation
}

// NewInstruction returns an all-nop instruction for the format.
func NewInstruction(f Format) Instruction {
	in := Instruction{ME: make([]Operation, f.MESlots), VE: make([]Operation, f.VESlots)}
	for i := range in.ME {
		in.ME[i] = Nop
	}
	for i := range in.VE {
		in.VE[i] = Nop
	}
	in.LS[0], in.LS[1] = Nop, Nop
	in.Misc = Nop
	return in
}

// Validate checks every slot holds a legal opcode for its kind.
func (in *Instruction) Validate(f Format) error {
	if len(in.ME) != f.MESlots || len(in.VE) != f.VESlots {
		return fmt.Errorf("isa: instruction has %d ME / %d VE slots, format wants %d/%d",
			len(in.ME), len(in.VE), f.MESlots, f.VESlots)
	}
	for i, op := range in.ME {
		if !op.Op.Legal(SlotME) {
			return fmt.Errorf("isa: ME slot %d holds illegal opcode %s", i, op.Op)
		}
	}
	for i, op := range in.VE {
		if !op.Op.Legal(SlotVE) {
			return fmt.Errorf("isa: VE slot %d holds illegal opcode %s", i, op.Op)
		}
	}
	for i, op := range in.LS {
		if !op.Op.Legal(SlotLS) {
			return fmt.Errorf("isa: LS slot %d holds illegal opcode %s", i, op.Op)
		}
	}
	if !in.Misc.Op.Legal(SlotMisc) {
		return fmt.Errorf("isa: misc slot holds illegal opcode %s", in.Misc.Op)
	}
	return nil
}

// NumScalarRegs and NumVectorRegs size the architectural register files.
// Scalar register 0 (%r0) is hardwired to zero, per the paper's Fig. 14.
const (
	NumScalarRegs = 32
	NumVectorRegs = 32
	VectorLanes   = 128
)
