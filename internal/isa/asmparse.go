package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// parseOp parses one slot operation in assembler syntax, returning the
// operation, its slot kind, and (for branches) the unresolved label.
func parseOp(s string) (Operation, SlotKind, string, error) {
	mnemonic, rest, _ := strings.Cut(s, " ")
	args := splitArgs(rest)
	fail := func(usage string) (Operation, SlotKind, string, error) {
		return Operation{}, 0, "", fmt.Errorf("bad %s: %q (usage: %s)", mnemonic, s, usage)
	}

	switch mnemonic {
	case "nop":
		return Nop, SlotMisc, "", nil

	// ---- ME slot ----
	case "me.loadw": // me.loadw [%rA], rows, cols
		if len(args) != 3 {
			return fail("me.loadw [%rA], rows, cols")
		}
		a, err1 := parseMemReg(args[0])
		rows, err2 := strconv.Atoi(args[1])
		cols, err3 := strconv.Atoi(args[2])
		if err1 != nil || err2 != nil || err3 != nil {
			return fail("me.loadw [%rA], rows, cols")
		}
		return MELoadW(a, rows, cols), SlotME, "", nil
	case "me.push": // me.push [%rA], len
		if len(args) != 2 {
			return fail("me.push [%rA], len")
		}
		a, err1 := parseMemReg(args[0])
		n, err2 := strconv.Atoi(args[1])
		if err1 != nil || err2 != nil {
			return fail("me.push [%rA], len")
		}
		return MEPush(a, n), SlotME, "", nil
	case "me.pop", "me.popacc": // me.pop %vD
		if len(args) != 1 {
			return fail("me.pop %vD")
		}
		d, err := parseReg(args[0], 'v')
		if err != nil {
			return fail("me.pop %vD")
		}
		if mnemonic == "me.pop" {
			return MEPop(d), SlotME, "", nil
		}
		return MEPopA(d), SlotME, "", nil

	// ---- VE slot ----
	case "v.add", "v.sub", "v.mul", "v.max":
		op := map[string]Opcode{"v.add": OpVAdd, "v.sub": OpVSub, "v.mul": OpVMul, "v.max": OpVMax}[mnemonic]
		if len(args) != 3 {
			return fail(mnemonic + " %vD, %vA, %vB")
		}
		d, e1 := parseReg(args[0], 'v')
		a, e2 := parseReg(args[1], 'v')
		b, e3 := parseReg(args[2], 'v')
		if e1 != nil || e2 != nil || e3 != nil {
			return fail(mnemonic + " %vD, %vA, %vB")
		}
		return V2(op, d, a, b), SlotVE, "", nil
	case "v.relu", "v.mov":
		op := OpVRelu
		if mnemonic == "v.mov" {
			op = OpVMov
		}
		if len(args) != 2 {
			return fail(mnemonic + " %vD, %vA")
		}
		d, e1 := parseReg(args[0], 'v')
		a, e2 := parseReg(args[1], 'v')
		if e1 != nil || e2 != nil {
			return fail(mnemonic + " %vD, %vA")
		}
		return V1(op, d, a), SlotVE, "", nil
	case "v.bcast": // v.bcast %vD, %rA
		if len(args) != 2 {
			return fail("v.bcast %vD, %rA")
		}
		d, e1 := parseReg(args[0], 'v')
		a, e2 := parseReg(args[1], 'r')
		if e1 != nil || e2 != nil {
			return fail("v.bcast %vD, %rA")
		}
		return Operation{Op: OpVBcast, Dst: d, A: a}, SlotVE, "", nil
	case "v.adds", "v.muls": // v.adds %vD, %vA, #imm
		op := OpVAddS
		if mnemonic == "v.muls" {
			op = OpVMulS
		}
		if len(args) != 3 {
			return fail(mnemonic + " %vD, %vA, #imm")
		}
		d, e1 := parseReg(args[0], 'v')
		a, e2 := parseReg(args[1], 'v')
		imm, e3 := parseImm(args[2])
		if e1 != nil || e2 != nil || e3 != nil {
			return fail(mnemonic + " %vD, %vA, #imm")
		}
		return Operation{Op: op, Dst: d, A: a, Imm: imm}, SlotVE, "", nil
	case "v.rsum": // v.rsum %rD, %vA
		if len(args) != 2 {
			return fail("v.rsum %rD, %vA")
		}
		d, e1 := parseReg(args[0], 'r')
		a, e2 := parseReg(args[1], 'v')
		if e1 != nil || e2 != nil {
			return fail("v.rsum %rD, %vA")
		}
		return Operation{Op: OpVRsum, Dst: d, A: a}, SlotVE, "", nil

	// ---- LS slot ----
	case "ls.load": // ls.load %vD, [%rA+off]
		if len(args) != 2 {
			return fail("ls.load %vD, [%rA+off]")
		}
		d, e1 := parseReg(args[0], 'v')
		a, off, e2 := parseMemRegOff(args[1])
		if e1 != nil || e2 != nil {
			return fail("ls.load %vD, [%rA+off]")
		}
		return VLoad(d, a, off), SlotLS, "", nil
	case "ls.store": // ls.store [%rA+off], %vB
		if len(args) != 2 {
			return fail("ls.store [%rA+off], %vB")
		}
		a, off, e1 := parseMemRegOff(args[0])
		b, e2 := parseReg(args[1], 'v')
		if e1 != nil || e2 != nil {
			return fail("ls.store [%rA+off], %vB")
		}
		return VStore(a, b, off), SlotLS, "", nil

	// ---- misc slot ----
	case "halt":
		return Halt(), SlotMisc, "", nil
	case "s.movi": // s.movi %rD, #imm
		if len(args) != 2 {
			return fail("s.movi %rD, #imm")
		}
		d, e1 := parseReg(args[0], 'r')
		imm, e2 := parseImm(args[1])
		if e1 != nil || e2 != nil {
			return fail("s.movi %rD, #imm")
		}
		return SMovI(d, imm), SlotMisc, "", nil
	case "s.addi": // s.addi %rD, %rA, #imm
		if len(args) != 3 {
			return fail("s.addi %rD, %rA, #imm")
		}
		d, e1 := parseReg(args[0], 'r')
		a, e2 := parseReg(args[1], 'r')
		imm, e3 := parseImm(args[2])
		if e1 != nil || e2 != nil || e3 != nil {
			return fail("s.addi %rD, %rA, #imm")
		}
		return SAddI(d, a, imm), SlotMisc, "", nil
	case "s.add", "s.mul": // s.add %rD, %rA, %rB
		op := OpSAdd
		if mnemonic == "s.mul" {
			op = OpSMul
		}
		if len(args) != 3 {
			return fail(mnemonic + " %rD, %rA, %rB")
		}
		d, e1 := parseReg(args[0], 'r')
		a, e2 := parseReg(args[1], 'r')
		b, e3 := parseReg(args[2], 'r')
		if e1 != nil || e2 != nil || e3 != nil {
			return fail(mnemonic + " %rD, %rA, %rB")
		}
		return Operation{Op: op, Dst: d, A: a, B: b}, SlotMisc, "", nil
	case "s.load": // s.load %rD, [%rA+off]
		if len(args) != 2 {
			return fail("s.load %rD, [%rA+off]")
		}
		d, e1 := parseReg(args[0], 'r')
		a, off, e2 := parseMemRegOff(args[1])
		if e1 != nil || e2 != nil {
			return fail("s.load %rD, [%rA+off]")
		}
		return Operation{Op: OpSLoad, Dst: d, A: a, Imm: off}, SlotMisc, "", nil
	case "s.store": // s.store [%rA+off], %rB
		if len(args) != 2 {
			return fail("s.store [%rA+off], %rB")
		}
		a, off, e1 := parseMemRegOff(args[0])
		b, e2 := parseReg(args[1], 'r')
		if e1 != nil || e2 != nil {
			return fail("s.store [%rA+off], %rB")
		}
		return Operation{Op: OpSStore, A: a, B: b, Imm: off}, SlotMisc, "", nil
	case "beq", "bne", "blt": // bne %rA, %rB, @label
		op := map[string]Opcode{"beq": OpBEQ, "bne": OpBNE, "blt": OpBLT}[mnemonic]
		if len(args) != 3 || !strings.HasPrefix(args[2], "@") {
			return fail(mnemonic + " %rA, %rB, @label")
		}
		a, e1 := parseReg(args[0], 'r')
		b, e2 := parseReg(args[1], 'r')
		if e1 != nil || e2 != nil {
			return fail(mnemonic + " %rA, %rB, @label")
		}
		return Branch(op, a, b, 0), SlotMisc, strings.TrimPrefix(args[2], "@"), nil
	case "dma.load", "dma.store": // dma.load %rD, %rA, words
		if len(args) != 3 {
			return fail(mnemonic + " %rD, %rA, words")
		}
		d, e1 := parseReg(args[0], 'r')
		a, e2 := parseReg(args[1], 'r')
		w, e3 := strconv.Atoi(args[2])
		if e1 != nil || e2 != nil || e3 != nil {
			return fail(mnemonic + " %rD, %rA, words")
		}
		if mnemonic == "dma.load" {
			return DMALoad(d, a, int32(w)), SlotMisc, "", nil
		}
		return DMAStore(d, a, int32(w)), SlotMisc, "", nil
	case "uTop.finish":
		return UTopFinish(), SlotMisc, "", nil
	case "uTop.nextGroup": // uTop.nextGroup %rA
		if len(args) != 1 {
			return fail("uTop.nextGroup %rA")
		}
		a, err := parseReg(args[0], 'r')
		if err != nil {
			return fail("uTop.nextGroup %rA")
		}
		return UTopNextGroup(a), SlotMisc, "", nil
	case "uTop.group", "uTop.index": // uTop.group %rD
		if len(args) != 1 {
			return fail(mnemonic + " %rD")
		}
		d, err := parseReg(args[0], 'r')
		if err != nil {
			return fail(mnemonic + " %rD")
		}
		if mnemonic == "uTop.group" {
			return UTopGroup(d), SlotMisc, "", nil
		}
		return UTopIndex(d), SlotMisc, "", nil
	default:
		return Operation{}, 0, "", fmt.Errorf("isa: unknown mnemonic %q", mnemonic)
	}
}

func splitArgs(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

// parseReg parses "%rN" or "%vN".
func parseReg(s string, class byte) (uint8, error) {
	want := "%" + string(class)
	if !strings.HasPrefix(s, want) {
		return 0, fmt.Errorf("expected %s register, got %q", want, s)
	}
	n, err := strconv.Atoi(s[len(want):])
	if err != nil || n < 0 || n >= NumScalarRegs {
		return 0, fmt.Errorf("bad register %q", s)
	}
	return uint8(n), nil
}

// parseMemReg parses "[%rN]".
func parseMemReg(s string) (uint8, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, fmt.Errorf("expected [%%rN], got %q", s)
	}
	return parseReg(s[1:len(s)-1], 'r')
}

// parseMemRegOff parses "[%rN+off]" or "[%rN]".
func parseMemRegOff(s string) (uint8, int32, error) {
	if !strings.HasPrefix(s, "[") || !strings.HasSuffix(s, "]") {
		return 0, 0, fmt.Errorf("expected [%%rN+off], got %q", s)
	}
	inner := s[1 : len(s)-1]
	regPart, offPart, hasOff := strings.Cut(inner, "+")
	r, err := parseReg(strings.TrimSpace(regPart), 'r')
	if err != nil {
		return 0, 0, err
	}
	if !hasOff {
		return r, 0, nil
	}
	off, err := strconv.Atoi(strings.TrimSpace(offPart))
	if err != nil {
		return 0, 0, fmt.Errorf("bad offset in %q", s)
	}
	return r, int32(off), nil
}

// parseImm parses "#N".
func parseImm(s string) (int32, error) {
	if !strings.HasPrefix(s, "#") {
		return 0, fmt.Errorf("expected #imm, got %q", s)
	}
	n, err := strconv.Atoi(s[1:])
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	return int32(n), nil
}
