package isa

import "fmt"

// Builder assembles programs programmatically. It is the compiler
// backend's interface to the ISA: the compiler creates a builder per
// snippet, fills slots, and seals instructions. The builder enforces
// slot legality and slot-count limits eagerly so compiler bugs surface
// at emission, not at execution.
type Builder struct {
	format Format
	code   []Instruction
	cur    Instruction
	open   bool
	meUsed int
	veUsed int
	lsUsed int
	err    error
}

// NewBuilder returns a builder for the given instruction format.
func NewBuilder(f Format) *Builder {
	if err := f.Validate(); err != nil {
		panic(err)
	}
	return &Builder{format: f}
}

func (b *Builder) fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

func (b *Builder) ensure() {
	if !b.open {
		b.cur = NewInstruction(b.format)
		b.open = true
		b.meUsed, b.veUsed, b.lsUsed = 0, 0, 0
	}
}

// ME adds an operation to the next free ME slot of the current instruction.
func (b *Builder) ME(op Operation) *Builder {
	b.ensure()
	if !op.Op.Legal(SlotME) {
		b.fail("isa: %s illegal in ME slot", op.Op)
		return b
	}
	if b.meUsed >= b.format.MESlots {
		b.fail("isa: instruction %d exceeds %d ME slots", len(b.code), b.format.MESlots)
		return b
	}
	b.cur.ME[b.meUsed] = op
	b.meUsed++
	return b
}

// VE adds an operation to the next free VE slot.
func (b *Builder) VE(op Operation) *Builder {
	b.ensure()
	if !op.Op.Legal(SlotVE) {
		b.fail("isa: %s illegal in VE slot", op.Op)
		return b
	}
	if b.veUsed >= b.format.VESlots {
		b.fail("isa: instruction %d exceeds %d VE slots", len(b.code), b.format.VESlots)
		return b
	}
	b.cur.VE[b.veUsed] = op
	b.veUsed++
	return b
}

// LS adds a load/store operation to the next free LS slot.
func (b *Builder) LS(op Operation) *Builder {
	b.ensure()
	if !op.Op.Legal(SlotLS) {
		b.fail("isa: %s illegal in LS slot", op.Op)
		return b
	}
	if b.lsUsed >= LSSlots {
		b.fail("isa: instruction %d exceeds %d LS slots", len(b.code), LSSlots)
		return b
	}
	b.cur.LS[b.lsUsed] = op
	b.lsUsed++
	return b
}

// Misc sets the misc slot of the current instruction.
func (b *Builder) Misc(op Operation) *Builder {
	b.ensure()
	if !op.Op.Legal(SlotMisc) {
		b.fail("isa: %s illegal in misc slot", op.Op)
		return b
	}
	if !b.cur.Misc.IsNop() {
		b.fail("isa: instruction %d sets misc slot twice", len(b.code))
		return b
	}
	b.cur.Misc = op
	return b
}

// End seals the current instruction and returns its index.
func (b *Builder) End() int {
	b.ensure()
	b.code = append(b.code, b.cur)
	b.open = false
	return len(b.code) - 1
}

// PC returns the index the next sealed instruction will have.
func (b *Builder) PC() int {
	if b.open {
		return len(b.code) + 1
	}
	return len(b.code)
}

// Inst appends a fully formed single-op instruction in one call: the
// operation is routed to its slot kind and the instruction sealed.
func (b *Builder) Inst(kind SlotKind, op Operation) int {
	switch kind {
	case SlotME:
		b.ME(op)
	case SlotVE:
		b.VE(op)
	case SlotLS:
		b.LS(op)
	case SlotMisc:
		b.Misc(op)
	}
	return b.End()
}

// Code returns the assembled instructions, or the first error encountered.
func (b *Builder) Code() ([]Instruction, error) {
	if b.open {
		b.fail("isa: unsealed trailing instruction")
	}
	if b.err != nil {
		return nil, b.err
	}
	return b.code, nil
}

// Convenience operation constructors. These keep compiler code readable:
// the operand meanings are easy to transpose when building Operations
// positionally.

// MELoadW latches a rows×cols weight tile whose SRAM base is in sreg a.
func MELoadW(aReg uint8, rows, cols int) Operation {
	return Operation{Op: OpMELoadW, A: aReg, Imm: int32(rows)<<16 | int32(cols)}
}

// MEPush feeds one activation row (length n) from SRAM[sreg a] into the array.
func MEPush(aReg uint8, n int) Operation {
	return Operation{Op: OpMEPush, A: aReg, Imm: int32(n)}
}

// MEPop pops one result row into vector register dst.
func MEPop(dst uint8) Operation { return Operation{Op: OpMEPop, Dst: dst} }

// MEPopA pops one result row and accumulates into vector register dst.
func MEPopA(dst uint8) Operation { return Operation{Op: OpMEPopA, Dst: dst} }

// V2 builds a two-source VE operation dst = a Op b.
func V2(op Opcode, dst, a, b uint8) Operation { return Operation{Op: op, Dst: dst, A: a, B: b} }

// V1 builds a one-source VE operation dst = Op a.
func V1(op Opcode, dst, a uint8) Operation { return Operation{Op: op, Dst: dst, A: a} }

// VLoad loads vreg dst from SRAM[sreg a + off].
func VLoad(dst, aReg uint8, off int32) Operation {
	return Operation{Op: OpVLoad, Dst: dst, A: aReg, Imm: off}
}

// VStore stores vreg b to SRAM[sreg a + off].
func VStore(aReg, b uint8, off int32) Operation {
	return Operation{Op: OpVStore, A: aReg, B: b, Imm: off}
}

// SMovI sets sreg dst = imm.
func SMovI(dst uint8, imm int32) Operation { return Operation{Op: OpSMovI, Dst: dst, Imm: imm} }

// SAddI sets sreg dst = sreg a + imm.
func SAddI(dst, a uint8, imm int32) Operation {
	return Operation{Op: OpSAddI, Dst: dst, A: a, Imm: imm}
}

// Branch builds a relative branch on sregs a, b.
func Branch(op Opcode, a, b uint8, rel int32) Operation {
	return Operation{Op: op, A: a, B: b, Imm: rel}
}

// DMALoad copies words floats HBM[sreg a] → SRAM[sreg dst].
func DMALoad(dstReg, aReg uint8, words int32) Operation {
	return Operation{Op: OpDMALoad, Dst: dstReg, A: aReg, Imm: words}
}

// DMAStore copies words floats SRAM[sreg a] → HBM[sreg dst].
func DMAStore(dstReg, aReg uint8, words int32) Operation {
	return Operation{Op: OpDMAStore, Dst: dstReg, A: aReg, Imm: words}
}

// UTopFinish terminates a µTOp snippet.
func UTopFinish() Operation { return Operation{Op: OpUTopFinish} }

// UTopNextGroup redirects group sequencing to the group index in sreg a.
func UTopNextGroup(aReg uint8) Operation { return Operation{Op: OpUTopNextGroup, A: aReg} }

// UTopGroup stores the current group index into sreg dst.
func UTopGroup(dst uint8) Operation { return Operation{Op: OpUTopGroup, Dst: dst} }

// UTopIndex stores the µTOp's index within its group into sreg dst.
func UTopIndex(dst uint8) Operation { return Operation{Op: OpUTopIndex, Dst: dst} }

// Halt terminates a VLIW program.
func Halt() Operation { return Operation{Op: OpHalt} }
