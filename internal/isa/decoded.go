package isa

import (
	"sync/atomic"
	"unsafe"
)

// Decode-once instruction representation. The interpreter in
// internal/npu used to walk every slot of every Instruction on every
// dynamic execution — for a Format{4,4} word that is 11 slot visits per
// instruction even when 10 of them hold nops, repeated tens of millions
// of times per program run. DecodedCode flattens each instruction into
// just its populated operations, with the slot kind and original slot
// index resolved at decode time, the way VLIW simulators cache
// pre-decoded instruction words. Decoding preserves the architectural
// slot order (LS → ME → VE → misc), so executing the decoded stream is
// observationally identical to walking the slots.

// DecodedOp is one populated operation with its slot binding resolved.
type DecodedOp struct {
	Op      Operation
	Slot    SlotKind
	SlotIdx uint8 // original slot index (ME engine binding, VE busy accounting)
}

// DecodedCode is the decode-once form of an instruction sequence.
// Ops holds the non-nop operations of all instructions back to back;
// instruction pc covers Ops[Start[pc]:Start[pc+1]].
type DecodedCode struct {
	Ops   []DecodedOp
	Start []uint32 // len = len(code)+1
}

// DecodeCode builds the decoded form of an instruction sequence.
func DecodeCode(code []Instruction) *DecodedCode {
	dc := &DecodedCode{Start: make([]uint32, 1, len(code)+1)}
	for i := range code {
		in := &code[i]
		for s := range in.LS {
			if in.LS[s].Op != OpNop {
				dc.Ops = append(dc.Ops, DecodedOp{Op: in.LS[s], Slot: SlotLS, SlotIdx: uint8(s)})
			}
		}
		for s := range in.ME {
			if in.ME[s].Op != OpNop {
				dc.Ops = append(dc.Ops, DecodedOp{Op: in.ME[s], Slot: SlotME, SlotIdx: uint8(s)})
			}
		}
		for s := range in.VE {
			if in.VE[s].Op != OpNop {
				dc.Ops = append(dc.Ops, DecodedOp{Op: in.VE[s], Slot: SlotVE, SlotIdx: uint8(s)})
			}
		}
		if in.Misc.Op != OpNop {
			dc.Ops = append(dc.Ops, DecodedOp{Op: in.Misc, Slot: SlotMisc})
		}
		dc.Start = append(dc.Start, uint32(len(dc.Ops)))
	}
	return dc
}

// Len returns the number of decoded instructions.
func (dc *DecodedCode) Len() int { return len(dc.Start) - 1 }

// At returns the decoded operations of instruction pc.
func (dc *DecodedCode) At(pc int) []DecodedOp {
	return dc.Ops[dc.Start[pc]:dc.Start[pc+1]]
}

// ---- lazy per-program caches ----
//
// The caches use atomic pointers so concurrently executing cores (the
// parallel experiment runner fans scenario simulations across a worker
// pool, and compiled programs are shared between them) decode at most a
// handful of times and race-free. Decoding is deterministic, so losing
// the publication race is harmless.

// Decoded returns the cached decode-once form of the program, building
// it on first use. Mutating Code in place after the first execution is
// unsupported (re-assemble or rebuild the program instead); as a cheap
// guard, a cache built for a different instruction count — the common
// copy-then-edit footgun — is detected and rebuilt rather than
// silently executing the stale stream.
func (p *Program) Decoded() *DecodedCode {
	if dc := (*DecodedCode)(p.decoded.load()); dc != nil && dc.Len() == len(p.Code) {
		return dc
	}
	dc := DecodeCode(p.Code)
	p.decoded.store(unsafe.Pointer(dc))
	return dc
}

// neuDecoded caches everything RunNeu needs per dynamic group step.
type neuDecoded struct {
	me     *DecodedCode
	ve     *DecodedCode
	groups [][]int // GroupUTops precomputed per group
}

// DecodedFor returns the cached decoded code pool for a µTOp kind.
func (p *NeuProgram) DecodedFor(k UTopKind) *DecodedCode {
	nd := p.neuCache()
	if k == MEUTop {
		return nd.me
	}
	return nd.ve
}

// DecodedGroupUTops returns the cached µTOp index list of group g (ME
// entries first, then the VE entry) — the allocation-free equivalent of
// GroupUTops for the interpreter's group sequencing loop.
func (p *NeuProgram) DecodedGroupUTops(g int) []int {
	return p.neuCache().groups[g]
}

func (p *NeuProgram) neuCache() *neuDecoded {
	if nd := (*neuDecoded)(p.decoded.load()); nd != nil &&
		nd.me.Len() == len(p.MECode) && nd.ve.Len() == len(p.VECode) &&
		len(nd.groups) == len(p.Groups) {
		return nd
	}
	nd := &neuDecoded{
		me:     DecodeCode(p.MECode),
		ve:     DecodeCode(p.VECode),
		groups: make([][]int, len(p.Groups)),
	}
	for g := range p.Groups {
		nd.groups[g] = p.GroupUTops(g)
	}
	p.decoded.store(unsafe.Pointer(nd))
	return nd
}

// decodedCache is the atomic lazy-init slot embedded in program types.
// It deliberately holds a raw unsafe.Pointer rather than an
// atomic.Pointer[T]: the atomic types carry a noCopy marker, and
// programs are legitimately copied by value (e.g. to derive a variant
// before re-validating). A copy simply carries or drops the immutable
// cache; the length guards above rebuild a carried cache that no
// longer matches the copy's code.
type decodedCache struct{ p unsafe.Pointer }

func (c *decodedCache) load() unsafe.Pointer { return atomic.LoadPointer(&c.p) }

// store publishes v; decoding is deterministic, so concurrent builders
// racing to publish all install equivalent caches.
func (c *decodedCache) store(v unsafe.Pointer) {
	atomic.StorePointer(&c.p, v)
}
