package isa

import (
	"fmt"
	"strconv"
	"strings"
)

// Assembler: a human-writable text format for NeuISA programs, used by
// tests, tooling and anyone prototyping µTOp kernels by hand. Grammar
// (one construct per line; ';' starts a comment):
//
//	.neuisa veslots=4            header (required, first)
//	.utop me NAME                start an ME µTOp snippet
//	.utop ve NAME                start a VE µTOp snippet (no ME slot)
//	.group A B | C               execution-table row: ME µTOps A, B and
//	                             VE µTOp C; '|' separates, either side
//	                             may be empty ("| C" or "A B")
//	LABEL:                       branch target inside the current snippet
//
// Instruction lines hold one or more slot operations separated by '|'
// (they form one VLIW instruction word):
//
//	me.loadw [%r5], 96, 128      latch a 96x128 weight tile
//	me.push [%r6], 96            push one activation row
//	me.pop %v0 | v.relu %v0, %v0 pop and ReLU in one instruction
//	ls.load %v1, [%r2+128]       SRAM -> vreg
//	ls.store [%r2+0], %v1        vreg -> SRAM
//	s.movi %r3, #42              scalar immediates use '#'
//	bne %r10, %r0, @LOOP         branches take '@label'
//	dma.load %r2, %r3, 512       SRAM[%r2] <- HBM[%r3], 512 words
//	uTop.finish                  end of µTOp
//
// Every µTOp must end with uTop.finish. Assemble returns a validated
// NeuProgram.
func Assemble(src string) (*NeuProgram, error) {
	a := &assembler{labels: map[string]int{}, utops: map[string]int{}}
	return a.run(src)
}

type pendingBranch struct {
	snippet string // µTOp name (for error messages)
	pc      int    // absolute pc of the branch instruction
	label   string
	line    int
}

type assembler struct {
	prog    *NeuProgram
	cur     *Builder
	curKind UTopKind
	curName string
	started bool

	labels   map[string]int // label -> absolute pc within current pool
	branches []pendingBranch
	utops    map[string]int // µTOp name -> index in prog.UTops
	groups   [][2][]string  // raw group rows: [ME names, VE names]
}

func (a *assembler) run(src string) (*NeuProgram, error) {
	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := a.line(line, ln+1); err != nil {
			return nil, fmt.Errorf("line %d: %w", ln+1, err)
		}
	}
	if err := a.flushSnippet(); err != nil {
		return nil, err
	}
	if a.prog == nil {
		return nil, fmt.Errorf("isa: missing .neuisa header")
	}
	// Resolve groups.
	for _, row := range a.groups {
		g := Group{VE: NullUTop}
		for _, name := range row[0] {
			ui, ok := a.utops[name]
			if !ok {
				return nil, fmt.Errorf("isa: group references unknown µTOp %q", name)
			}
			g.ME = append(g.ME, ui)
		}
		for _, name := range row[1] {
			ui, ok := a.utops[name]
			if !ok {
				return nil, fmt.Errorf("isa: group references unknown µTOp %q", name)
			}
			if g.VE != NullUTop {
				return nil, fmt.Errorf("isa: group has two VE µTOps")
			}
			g.VE = ui
		}
		a.prog.Groups = append(a.prog.Groups, g)
	}
	if err := a.prog.Validate(); err != nil {
		return nil, err
	}
	return a.prog, nil
}

func (a *assembler) line(line string, ln int) error {
	switch {
	case strings.HasPrefix(line, ".neuisa"):
		if a.prog != nil {
			return fmt.Errorf("duplicate .neuisa header")
		}
		rest := strings.TrimSpace(strings.TrimPrefix(line, ".neuisa"))
		kv := strings.Split(rest, "=")
		if len(kv) != 2 || strings.TrimSpace(kv[0]) != "veslots" {
			return fmt.Errorf("header must be '.neuisa veslots=N'")
		}
		n, err := strconv.Atoi(strings.TrimSpace(kv[1]))
		if err != nil || n < 1 || n > 16 {
			return fmt.Errorf("bad veslots %q", kv[1])
		}
		a.prog = &NeuProgram{VESlots: n}
		return nil
	case strings.HasPrefix(line, ".utop"):
		if a.prog == nil {
			return fmt.Errorf(".utop before .neuisa header")
		}
		if err := a.flushSnippet(); err != nil {
			return err
		}
		fields := strings.Fields(line)
		if len(fields) != 3 {
			return fmt.Errorf("usage: .utop me|ve NAME")
		}
		switch fields[1] {
		case "me":
			a.curKind = MEUTop
			a.cur = NewBuilder(Format{MESlots: 1, VESlots: a.prog.VESlots})
		case "ve":
			a.curKind = VEUTop
			a.cur = NewBuilder(Format{MESlots: 0, VESlots: a.prog.VESlots})
		default:
			return fmt.Errorf("µTOp kind must be me or ve, got %q", fields[1])
		}
		a.curName = fields[2]
		if _, dup := a.utops[a.curName]; dup {
			return fmt.Errorf("duplicate µTOp name %q", a.curName)
		}
		a.started = true
		a.labels = map[string]int{}
		return nil
	case strings.HasPrefix(line, ".group"):
		if a.prog == nil {
			return fmt.Errorf(".group before .neuisa header")
		}
		rest := strings.TrimSpace(strings.TrimPrefix(line, ".group"))
		parts := strings.SplitN(rest, "|", 2)
		row := [2][]string{strings.Fields(parts[0]), nil}
		if len(parts) == 2 {
			row[1] = strings.Fields(parts[1])
		}
		if len(row[0])+len(row[1]) == 0 {
			return fmt.Errorf("empty .group")
		}
		a.groups = append(a.groups, row)
		return nil
	case strings.HasSuffix(line, ":") && !strings.Contains(line, " "):
		if a.cur == nil {
			return fmt.Errorf("label outside µTOp")
		}
		name := strings.TrimSuffix(line, ":")
		if _, dup := a.labels[name]; dup {
			return fmt.Errorf("duplicate label %q", name)
		}
		a.labels[name] = a.cur.PC()
		return nil
	default:
		if a.cur == nil {
			return fmt.Errorf("instruction outside µTOp: %q", line)
		}
		return a.instruction(line, ln)
	}
}

// flushSnippet seals the in-progress µTOp into the program.
func (a *assembler) flushSnippet() error {
	if !a.started {
		return nil
	}
	code, err := a.cur.Code()
	if err != nil {
		return fmt.Errorf("µTOp %q: %w", a.curName, err)
	}
	if len(code) == 0 || code[len(code)-1].Misc.Op != OpUTopFinish {
		return fmt.Errorf("µTOp %q does not end with uTop.finish", a.curName)
	}
	// Resolve branch labels now that the snippet is complete.
	for _, pb := range a.branches {
		tgt, ok := a.labels[pb.label]
		if !ok {
			return fmt.Errorf("µTOp %q: undefined label %q (line %d)", a.curName, pb.label, pb.line)
		}
		code[pb.pc].Misc.Imm = int32(tgt - pb.pc)
	}
	a.branches = nil

	var start int
	if a.curKind == MEUTop {
		start = len(a.prog.MECode)
		a.prog.MECode = append(a.prog.MECode, code...)
	} else {
		start = len(a.prog.VECode)
		a.prog.VECode = append(a.prog.VECode, code...)
	}
	a.utops[a.curName] = len(a.prog.UTops)
	a.prog.UTops = append(a.prog.UTops, UTop{Kind: a.curKind, Start: start})
	a.started = false
	a.cur = nil
	return nil
}

// instruction parses one line of '|'-separated slot operations into a
// single VLIW instruction.
func (a *assembler) instruction(line string, ln int) error {
	for _, slot := range strings.Split(line, "|") {
		op, kind, label, err := parseOp(strings.TrimSpace(slot))
		if err != nil {
			return err
		}
		switch kind {
		case SlotME:
			a.cur.ME(op)
		case SlotVE:
			a.cur.VE(op)
		case SlotLS:
			a.cur.LS(op)
		case SlotMisc:
			a.cur.Misc(op)
			if label != "" {
				// Imm patched at flush; remember the pc this will get.
				a.branches = append(a.branches, pendingBranch{
					snippet: a.curName, pc: a.cur.PC() - 1, label: label, line: ln,
				})
			}
		}
	}
	a.cur.End()
	return nil
}
