package isa

import "fmt"

// Program is a traditional VLIW program: a flat instruction sequence
// executed in order until OpHalt. The Format fixes the number of ME slots,
// which is exactly the coupling the paper criticizes — the instruction
// stream hardwires how many MEs the program uses.
type Program struct {
	Format Format
	Code   []Instruction

	// decoded is the lazily built decode-once cache (see decoded.go).
	decoded decodedCache
}

// Validate checks the whole program.
func (p *Program) Validate() error {
	if err := p.Format.Validate(); err != nil {
		return err
	}
	halted := false
	for i := range p.Code {
		if err := p.Code[i].Validate(p.Format); err != nil {
			return fmt.Errorf("instruction %d: %w", i, err)
		}
		if p.Code[i].Misc.Op == OpHalt {
			halted = true
		}
		if b := p.Code[i].Misc; b.Op.IsBranch() {
			tgt := i + int(b.Imm)
			if tgt < 0 || tgt >= len(p.Code) {
				return fmt.Errorf("instruction %d: branch target %d out of range", i, tgt)
			}
		}
	}
	if len(p.Code) > 0 && !halted {
		return fmt.Errorf("isa: VLIW program has no halt")
	}
	return nil
}

// UTopKind distinguishes the two µTOp types from the paper's Fig. 13.
type UTopKind int

const (
	// MEUTop carries one ME slot plus ny VE slots per instruction: the
	// control flow of exactly one matrix engine (plus the vector work
	// needed to drain/post-process its output, enabling fusions such as
	// MatMul+ReLU).
	MEUTop UTopKind = iota
	// VEUTop carries no ME slot and ny VE slots: pure vector work.
	VEUTop
)

func (k UTopKind) String() string {
	if k == MEUTop {
		return "ME-µTOp"
	}
	return "VE-µTOp"
}

// UTop is a micro tensor operator: a self-contained snippet of VLIW-style
// instructions ending in uTop.finish. Start indexes into the owning
// program's code pool for the µTOp's kind; snippets may be shared between
// µTOps (the paper relies on this to bound code inflation).
type UTop struct {
	Kind  UTopKind
	Start int
}

// NullUTop marks an empty cell in the execution table.
const NullUTop = -1

// Group is one row of the µTOp execution table: up to nx ME µTOps that
// may run concurrently, plus at most one VE µTOp. Entries index into
// NeuProgram.UTops; NullUTop marks absent cells. Groups execute in order
// (group i+1 after group i) unless redirected by uTop.nextGroup.
type Group struct {
	ME []int
	VE int
}

// NeuProgram is a NeuISA binary: two code pools (ME-format and VE-format
// snippets), the µTOp table, and the group execution table. The split
// pools mirror the paper's program layout (Fig. 15): snippet addresses in
// the execution table, shared snippets, and a static group sequence with
// dynamic redirection.
type NeuProgram struct {
	VESlots int           // ny of the target core family
	MECode  []Instruction // pool for ME µTOps, Format{1, VESlots}
	VECode  []Instruction // pool for VE µTOps, Format{0, VESlots}
	UTops   []UTop
	Groups  []Group

	// decoded is the lazily built decode-once cache (see decoded.go).
	decoded decodedCache
}

// MEFormat returns the instruction format of ME µTOp snippets.
func (p *NeuProgram) MEFormat() Format { return Format{MESlots: 1, VESlots: p.VESlots} }

// VEFormat returns the instruction format of VE µTOp snippets.
func (p *NeuProgram) VEFormat() Format { return Format{MESlots: 0, VESlots: p.VESlots} }

// CodeFor returns the code pool and format for a µTOp kind.
func (p *NeuProgram) CodeFor(k UTopKind) ([]Instruction, Format) {
	if k == MEUTop {
		return p.MECode, p.MEFormat()
	}
	return p.VECode, p.VEFormat()
}

// SnippetLen returns the instruction count of the µTOp snippet starting
// at start in the given pool (inclusive of the uTop.finish terminator).
// It returns an error if the snippet runs off the end of the pool.
func snippetLen(code []Instruction, start int) (int, error) {
	for i := start; i < len(code); i++ {
		if code[i].Misc.Op == OpUTopFinish {
			return i - start + 1, nil
		}
	}
	return 0, fmt.Errorf("isa: snippet at %d has no uTop.finish", start)
}

// Validate checks structural invariants of the NeuISA binary:
// slot legality, snippet termination, table references, and the paper's
// group-shape constraints (≤1 VE µTOp per group; ME entries are ME µTOps).
func (p *NeuProgram) Validate() error {
	if p.VESlots < 1 || p.VESlots > 16 {
		return fmt.Errorf("isa: VE slots %d out of range", p.VESlots)
	}
	mef, vef := p.MEFormat(), p.VEFormat()
	for i := range p.MECode {
		if err := p.MECode[i].Validate(mef); err != nil {
			return fmt.Errorf("ME pool instruction %d: %w", i, err)
		}
	}
	for i := range p.VECode {
		if err := p.VECode[i].Validate(vef); err != nil {
			return fmt.Errorf("VE pool instruction %d: %w", i, err)
		}
	}
	for i, u := range p.UTops {
		code, _ := p.CodeFor(u.Kind)
		if u.Start < 0 || u.Start >= len(code) {
			return fmt.Errorf("µTOp %d: start %d outside %s pool", i, u.Start, u.Kind)
		}
		n, err := snippetLen(code, u.Start)
		if err != nil {
			return fmt.Errorf("µTOp %d: %w", i, err)
		}
		// Branches must stay within the snippet: µTOps are the unit of
		// scheduling and cannot jump into one another.
		for pc := u.Start; pc < u.Start+n; pc++ {
			if b := code[pc].Misc; b.Op.IsBranch() {
				tgt := pc + int(b.Imm)
				if tgt < u.Start || tgt >= u.Start+n {
					return fmt.Errorf("µTOp %d: branch at %d escapes snippet [%d,%d)", i, pc, u.Start, u.Start+n)
				}
			}
		}
	}
	if len(p.Groups) == 0 {
		return fmt.Errorf("isa: program has no µTOp groups")
	}
	for gi, g := range p.Groups {
		if len(g.ME) == 0 && g.VE == NullUTop {
			return fmt.Errorf("group %d: empty", gi)
		}
		for _, ui := range g.ME {
			if ui == NullUTop {
				continue
			}
			if ui < 0 || ui >= len(p.UTops) {
				return fmt.Errorf("group %d: ME entry %d out of range", gi, ui)
			}
			if p.UTops[ui].Kind != MEUTop {
				return fmt.Errorf("group %d: ME entry %d is a %s", gi, ui, p.UTops[ui].Kind)
			}
		}
		if g.VE != NullUTop {
			if g.VE < 0 || g.VE >= len(p.UTops) {
				return fmt.Errorf("group %d: VE entry %d out of range", gi, g.VE)
			}
			if p.UTops[g.VE].Kind != VEUTop {
				return fmt.Errorf("group %d: VE entry %d is a %s", gi, g.VE, p.UTops[g.VE].Kind)
			}
		}
	}
	return nil
}

// GroupUTops returns the µTOp indices populated in group g, ME entries
// first, then the VE entry.
func (p *NeuProgram) GroupUTops(g int) []int {
	var out []int
	for _, ui := range p.Groups[g].ME {
		if ui != NullUTop {
			out = append(out, ui)
		}
	}
	if p.Groups[g].VE != NullUTop {
		out = append(out, p.Groups[g].VE)
	}
	return out
}

// Stats summarizes a NeuISA program.
type Stats struct {
	Groups       int
	MEUTops      int
	VEUTops      int
	Instructions int
	SharedBytes  int // bytes saved by snippet sharing vs. duplicating per µTOp
}

// Stats computes summary statistics, counting shared snippets once for
// the instruction total.
func (p *NeuProgram) Stats() Stats {
	s := Stats{Groups: len(p.Groups), Instructions: len(p.MECode) + len(p.VECode)}
	starts := map[[2]int]bool{}
	dupInsts := 0
	for _, u := range p.UTops {
		if u.Kind == MEUTop {
			s.MEUTops++
		} else {
			s.VEUTops++
		}
		code, f := p.CodeFor(u.Kind)
		if n, err := snippetLen(code, u.Start); err == nil {
			key := [2]int{int(u.Kind), u.Start}
			if starts[key] {
				dupInsts += n * f.wordsPerInstruction() * 8
			}
			starts[key] = true
		}
	}
	s.SharedBytes = dupInsts
	return s
}
