package isa

import (
	"fmt"
	"strings"
)

// Disassemble renders an instruction as one line of text, omitting nop
// slots for readability. Slot order is ME*, VE*, LS*, misc.
func Disassemble(in *Instruction) string {
	var parts []string
	for i, op := range in.ME {
		if !op.IsNop() {
			parts = append(parts, fmt.Sprintf("ME%d{%s}", i, opText(op)))
		}
	}
	for i, op := range in.VE {
		if !op.IsNop() {
			parts = append(parts, fmt.Sprintf("VE%d{%s}", i, opText(op)))
		}
	}
	for i, op := range in.LS {
		if !op.IsNop() {
			parts = append(parts, fmt.Sprintf("LS%d{%s}", i, opText(op)))
		}
	}
	if !in.Misc.IsNop() {
		parts = append(parts, fmt.Sprintf("M{%s}", opText(in.Misc)))
	}
	if len(parts) == 0 {
		return "nop"
	}
	return strings.Join(parts, " ; ")
}

func opText(op Operation) string {
	switch op.Op {
	case OpMELoadW:
		return fmt.Sprintf("me.loadw [%%r%d] %dx%d", op.A, op.Imm>>16, op.Imm&0xffff)
	case OpMEPush:
		return fmt.Sprintf("me.push [%%r%d] len=%d", op.A, op.Imm)
	case OpMEPop:
		return fmt.Sprintf("me.pop %%v%d", op.Dst)
	case OpMEPopA:
		return fmt.Sprintf("me.popacc %%v%d", op.Dst)
	case OpVAdd, OpVSub, OpVMul, OpVMax:
		return fmt.Sprintf("%s %%v%d, %%v%d, %%v%d", op.Op, op.Dst, op.A, op.B)
	case OpVRelu, OpVMov:
		return fmt.Sprintf("%s %%v%d, %%v%d", op.Op, op.Dst, op.A)
	case OpVBcast:
		return fmt.Sprintf("v.bcast %%v%d, %%r%d", op.Dst, op.A)
	case OpVAddS, OpVMulS:
		return fmt.Sprintf("%s %%v%d, %%v%d, #%d", op.Op, op.Dst, op.A, op.Imm)
	case OpVRsum:
		return fmt.Sprintf("v.rsum %%r%d, %%v%d", op.Dst, op.A)
	case OpVLoad:
		return fmt.Sprintf("ls.load %%v%d, [%%r%d+%d]", op.Dst, op.A, op.Imm)
	case OpVStore:
		return fmt.Sprintf("ls.store [%%r%d+%d], %%v%d", op.A, op.Imm, op.B)
	case OpSMovI:
		return fmt.Sprintf("s.movi %%r%d, #%d", op.Dst, op.Imm)
	case OpSAddI:
		return fmt.Sprintf("s.addi %%r%d, %%r%d, #%d", op.Dst, op.A, op.Imm)
	case OpSAdd, OpSMul:
		return fmt.Sprintf("%s %%r%d, %%r%d, %%r%d", op.Op, op.Dst, op.A, op.B)
	case OpSLoad:
		return fmt.Sprintf("s.load %%r%d, [%%r%d+%d]", op.Dst, op.A, op.Imm)
	case OpSStore:
		return fmt.Sprintf("s.store [%%r%d+%d], %%r%d", op.A, op.Imm, op.B)
	case OpBEQ, OpBNE, OpBLT:
		return fmt.Sprintf("%s %%r%d, %%r%d, %+d", op.Op, op.A, op.B, op.Imm)
	case OpDMALoad:
		return fmt.Sprintf("dma.load sram[%%r%d] <- hbm[%%r%d], %d", op.Dst, op.A, op.Imm)
	case OpDMAStore:
		return fmt.Sprintf("dma.store hbm[%%r%d] <- sram[%%r%d], %d", op.Dst, op.A, op.Imm)
	case OpUTopNextGroup:
		return fmt.Sprintf("uTop.nextGroup %%r%d", op.A)
	case OpUTopGroup, OpUTopIndex:
		return fmt.Sprintf("%s %%r%d", op.Op, op.Dst)
	default:
		return op.Op.String()
	}
}

// DumpNeuProgram renders a NeuISA binary as human-readable text: the
// execution table followed by each µTOp's snippet.
func DumpNeuProgram(p *NeuProgram) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "NeuISA program: %d groups, %d µTOps, %d VE slots/inst\n",
		len(p.Groups), len(p.UTops), p.VESlots)
	sb.WriteString("µTOp execution table:\n")
	for gi, g := range p.Groups {
		fmt.Fprintf(&sb, "  group %d: ME%v VE=%d\n", gi, g.ME, g.VE)
	}
	for ui, u := range p.UTops {
		code, _ := p.CodeFor(u.Kind)
		n, err := snippetLen(code, u.Start)
		if err != nil {
			fmt.Fprintf(&sb, "µTOp %d (%s @%d): %v\n", ui, u.Kind, u.Start, err)
			continue
		}
		fmt.Fprintf(&sb, "µTOp %d (%s @%d, %d insts):\n", ui, u.Kind, u.Start, n)
		for pc := u.Start; pc < u.Start+n; pc++ {
			fmt.Fprintf(&sb, "  %4d: %s\n", pc, Disassemble(&code[pc]))
		}
	}
	return sb.String()
}
