package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpcodeSlotLegality(t *testing.T) {
	cases := []struct {
		op    Opcode
		kind  SlotKind
		legal bool
	}{
		{OpNop, SlotME, true},
		{OpNop, SlotVE, true},
		{OpNop, SlotLS, true},
		{OpNop, SlotMisc, true},
		{OpMEPush, SlotME, true},
		{OpMEPush, SlotVE, false},
		{OpVAdd, SlotVE, true},
		{OpVAdd, SlotME, false},
		{OpVLoad, SlotLS, true},
		{OpVLoad, SlotMisc, false},
		{OpUTopFinish, SlotMisc, true},
		{OpUTopFinish, SlotME, false},
		{OpHalt, SlotMisc, true},
		{OpDMALoad, SlotMisc, true},
		{OpBEQ, SlotMisc, true},
		{OpVStore, SlotLS, true},
		{OpVStore, SlotVE, false},
	}
	for _, c := range cases {
		if got := c.op.Legal(c.kind); got != c.legal {
			t.Errorf("%s legal in %s = %v, want %v", c.op, c.kind, got, c.legal)
		}
	}
}

func TestEveryOpcodeHasExactlyOneSlotFamily(t *testing.T) {
	for op := OpNop + 1; op < opCount; op++ {
		n := 0
		for _, k := range []SlotKind{SlotME, SlotVE, SlotLS, SlotMisc} {
			if op.Legal(k) {
				n++
			}
		}
		if n != 1 {
			t.Errorf("opcode %s legal in %d slot kinds, want 1", op, n)
		}
	}
}

func TestOpcodeStringsDistinct(t *testing.T) {
	seen := map[string]Opcode{}
	for op := OpNop; op < opCount; op++ {
		s := op.String()
		if strings.HasPrefix(s, "op(") {
			t.Errorf("opcode %d has no name", op)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("opcodes %d and %d share name %q", prev, op, s)
		}
		seen[s] = op
	}
}

func TestInstructionValidate(t *testing.T) {
	f := Format{MESlots: 2, VESlots: 4}
	in := NewInstruction(f)
	if err := in.Validate(f); err != nil {
		t.Fatalf("all-nop instruction invalid: %v", err)
	}
	in.ME[0] = Operation{Op: OpVAdd} // VE op in ME slot
	if err := in.Validate(f); err == nil {
		t.Fatal("VE op in ME slot not rejected")
	}
}

func TestBuilderSlotOverflow(t *testing.T) {
	b := NewBuilder(Format{MESlots: 1, VESlots: 2})
	b.ME(MEPop(0)).ME(MEPop(1)) // second ME op overflows
	b.End()
	if _, err := b.Code(); err == nil {
		t.Fatal("ME slot overflow not reported")
	}
}

func TestBuilderIllegalSlot(t *testing.T) {
	b := NewBuilder(Format{MESlots: 1, VESlots: 1})
	b.VE(MEPop(0)) // ME op routed to VE slot
	b.End()
	if _, err := b.Code(); err == nil {
		t.Fatal("illegal slot op not reported")
	}
}

func TestBuilderDoubleMisc(t *testing.T) {
	b := NewBuilder(Format{MESlots: 0, VESlots: 1})
	b.Misc(Halt()).Misc(Halt())
	b.End()
	if _, err := b.Code(); err == nil {
		t.Fatal("double misc not reported")
	}
}

func TestBuilderUnsealedTrailing(t *testing.T) {
	b := NewBuilder(Format{MESlots: 0, VESlots: 1})
	b.VE(V1(OpVRelu, 0, 1)) // never sealed
	if _, err := b.Code(); err == nil {
		t.Fatal("unsealed instruction not reported")
	}
}

func buildTestVLIW(t *testing.T) *Program {
	t.Helper()
	b := NewBuilder(Format{MESlots: 2, VESlots: 2})
	b.Misc(SMovI(1, 64)).End()
	b.ME(MELoadW(1, 128, 128)).ME(MELoadW(1, 128, 128)).End()
	b.ME(MEPush(1, 128)).ME(MEPush(1, 128)).VE(V1(OpVRelu, 2, 2)).End()
	b.ME(MEPop(0)).ME(MEPop(1)).End()
	b.LS(VStore(1, 0, 0)).LS(VStore(1, 1, 128)).Misc(Halt()).End()
	code, err := b.Code()
	if err != nil {
		t.Fatal(err)
	}
	p := &Program{Format: Format{MESlots: 2, VESlots: 2}, Code: code}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestVLIWEncodeDecodeRoundTrip(t *testing.T) {
	p := buildTestVLIW(t)
	bin := p.Encode()
	q, err := DecodeProgram(bin)
	if err != nil {
		t.Fatal(err)
	}
	if q.Format != p.Format || len(q.Code) != len(p.Code) {
		t.Fatalf("format/len mismatch: %+v vs %+v", q.Format, p.Format)
	}
	for i := range p.Code {
		a, b := &p.Code[i], &q.Code[i]
		if Disassemble(a) != Disassemble(b) {
			t.Fatalf("instruction %d mismatch:\n%s\n%s", i, Disassemble(a), Disassemble(b))
		}
	}
}

func TestVLIWProgramRequiresHalt(t *testing.T) {
	b := NewBuilder(Format{MESlots: 1, VESlots: 1})
	b.VE(V1(OpVRelu, 0, 0)).End()
	code, err := b.Code()
	if err != nil {
		t.Fatal(err)
	}
	p := &Program{Format: Format{MESlots: 1, VESlots: 1}, Code: code}
	if err := p.Validate(); err == nil {
		t.Fatal("halt-less program validated")
	}
}

func TestVLIWBranchRangeChecked(t *testing.T) {
	b := NewBuilder(Format{MESlots: 1, VESlots: 1})
	b.Misc(Branch(OpBNE, 1, 0, +100)).End()
	b.Misc(Halt()).End()
	code, _ := b.Code()
	p := &Program{Format: Format{MESlots: 1, VESlots: 1}, Code: code}
	if err := p.Validate(); err == nil {
		t.Fatal("out-of-range branch validated")
	}
}

// buildTestNeuProgram builds a two-group NeuISA program: group 0 has two
// ME µTOps sharing one snippet, group 1 has a VE µTOp.
func buildTestNeuProgram(t *testing.T) *NeuProgram {
	t.Helper()
	me := NewBuilder(Format{MESlots: 1, VESlots: 2})
	me.Misc(UTopIndex(2)).End()
	me.ME(MELoadW(1, 128, 128)).End()
	me.ME(MEPush(1, 128)).End()
	me.ME(MEPop(0)).VE(V1(OpVRelu, 0, 0)).End()
	me.LS(VStore(1, 0, 0)).Misc(UTopFinish()).End()
	meCode, err := me.Code()
	if err != nil {
		t.Fatal(err)
	}

	ve := NewBuilder(Format{MESlots: 0, VESlots: 2})
	ve.LS(VLoad(0, 1, 0)).LS(VLoad(1, 1, 128)).End()
	ve.VE(V2(OpVAdd, 2, 0, 1)).VE(V1(OpVRelu, 3, 2)).End()
	ve.LS(VStore(1, 2, 256)).Misc(UTopFinish()).End()
	veCode, err := ve.Code()
	if err != nil {
		t.Fatal(err)
	}

	p := &NeuProgram{
		VESlots: 2,
		MECode:  meCode,
		VECode:  veCode,
		UTops: []UTop{
			{Kind: MEUTop, Start: 0},
			{Kind: MEUTop, Start: 0}, // shares the snippet
			{Kind: VEUTop, Start: 0},
		},
		Groups: []Group{
			{ME: []int{0, 1}, VE: NullUTop},
			{ME: nil, VE: 2},
		},
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNeuProgramValidate(t *testing.T) {
	p := buildTestNeuProgram(t)

	// VE µTOp referenced from an ME cell must fail.
	bad := *p
	bad.Groups = []Group{{ME: []int{2}, VE: NullUTop}}
	if err := bad.Validate(); err == nil {
		t.Fatal("VE µTOp in ME cell validated")
	}

	// Dangling µTOp start must fail.
	bad2 := *p
	bad2.UTops = append([]UTop{}, p.UTops...)
	bad2.UTops[0].Start = 9999
	if err := bad2.Validate(); err == nil {
		t.Fatal("dangling snippet start validated")
	}

	// Empty group must fail.
	bad3 := *p
	bad3.Groups = append([]Group{}, p.Groups...)
	bad3.Groups = append(bad3.Groups, Group{VE: NullUTop})
	if err := bad3.Validate(); err == nil {
		t.Fatal("empty group validated")
	}
}

func TestNeuProgramMissingFinishRejected(t *testing.T) {
	b := NewBuilder(Format{MESlots: 1, VESlots: 1})
	b.ME(MEPop(0)).End() // no uTop.finish
	code, _ := b.Code()
	p := &NeuProgram{
		VESlots: 1,
		MECode:  code,
		UTops:   []UTop{{Kind: MEUTop, Start: 0}},
		Groups:  []Group{{ME: []int{0}, VE: NullUTop}},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("unterminated snippet validated")
	}
}

func TestNeuProgramBranchEscapeRejected(t *testing.T) {
	b := NewBuilder(Format{MESlots: 1, VESlots: 1})
	b.Misc(Branch(OpBNE, 1, 0, +10)).End()
	b.Misc(UTopFinish()).End()
	code, _ := b.Code()
	p := &NeuProgram{
		VESlots: 1,
		MECode:  code,
		UTops:   []UTop{{Kind: MEUTop, Start: 0}},
		Groups:  []Group{{ME: []int{0}, VE: NullUTop}},
	}
	if err := p.Validate(); err == nil {
		t.Fatal("branch escaping snippet validated")
	}
}

func TestNeuEncodeDecodeRoundTrip(t *testing.T) {
	p := buildTestNeuProgram(t)
	bin := p.Encode()
	q, err := DecodeNeuProgram(bin)
	if err != nil {
		t.Fatal(err)
	}
	if err := q.Validate(); err != nil {
		t.Fatalf("decoded program invalid: %v", err)
	}
	if DumpNeuProgram(p) != DumpNeuProgram(q) {
		t.Fatalf("roundtrip mismatch:\n%s\nvs\n%s", DumpNeuProgram(p), DumpNeuProgram(q))
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := DecodeProgram([]byte("not a binary")); err == nil {
		t.Fatal("garbage VLIW accepted")
	}
	if _, err := DecodeNeuProgram([]byte("nope")); err == nil {
		t.Fatal("garbage NeuISA accepted")
	}
	// Truncation at every prefix length must error, never panic.
	p := buildTestNeuProgram(t)
	bin := p.Encode()
	for n := 0; n < len(bin); n += 7 {
		if _, err := DecodeNeuProgram(bin[:n]); err == nil {
			t.Fatalf("truncated binary (%d bytes) accepted", n)
		}
	}
}

func TestOperationEncodingRoundTripProperty(t *testing.T) {
	f := func(opByte, dst, a, b uint8, imm int32) bool {
		op := Operation{Op: Opcode(opByte), Dst: dst, A: a, B: b, Imm: imm}
		var buf [8]byte
		putOp(buf[:], op)
		return getOp(buf[:]) == op
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestGroupUTops(t *testing.T) {
	p := buildTestNeuProgram(t)
	g0 := p.GroupUTops(0)
	if len(g0) != 2 || g0[0] != 0 || g0[1] != 1 {
		t.Fatalf("group 0 µTOps = %v", g0)
	}
	g1 := p.GroupUTops(1)
	if len(g1) != 1 || g1[0] != 2 {
		t.Fatalf("group 1 µTOps = %v", g1)
	}
}

func TestStatsCountsSharing(t *testing.T) {
	p := buildTestNeuProgram(t)
	s := p.Stats()
	if s.Groups != 2 || s.MEUTops != 2 || s.VEUTops != 1 {
		t.Fatalf("stats = %+v", s)
	}
	if s.SharedBytes == 0 {
		t.Fatal("snippet sharing saved zero bytes despite shared snippet")
	}
}

func TestDisassembleCoversAllOpcodes(t *testing.T) {
	for op := OpNop; op < opCount; op++ {
		txt := opText(Operation{Op: op, Dst: 1, A: 2, B: 3, Imm: 4})
		if txt == "" {
			t.Errorf("opcode %s disassembles to empty string", op)
		}
	}
}
