package isa

import (
	"encoding/binary"
	"fmt"
)

// Binary encoding. Each operation encodes to one 64-bit word:
//
//	byte 0    opcode
//	byte 1    dst
//	byte 2    a
//	byte 3    b
//	bytes 4-7 imm (little-endian int32)
//
// An instruction is MESlots+VESlots+LSSlots+1 consecutive words. Programs
// carry a small header. Two container types exist: "NVLW" for flat VLIW
// programs and "NISA" for NeuISA binaries (code pools + µTOp table +
// execution table), mirroring the paper's program layout in Fig. 15.

var (
	magicVLIW = [4]byte{'N', 'V', 'L', 'W'}
	magicNeu  = [4]byte{'N', 'I', 'S', 'A'}
)

const encVersion = 1

func (f Format) wordsPerInstruction() int { return f.MESlots + f.VESlots + LSSlots + 1 }

func putOp(b []byte, op Operation) {
	b[0] = byte(op.Op)
	b[1] = op.Dst
	b[2] = op.A
	b[3] = op.B
	binary.LittleEndian.PutUint32(b[4:], uint32(op.Imm))
}

func getOp(b []byte) Operation {
	return Operation{
		Op:  Opcode(b[0]),
		Dst: b[1],
		A:   b[2],
		B:   b[3],
		Imm: int32(binary.LittleEndian.Uint32(b[4:])),
	}
}

func encodeCode(dst []byte, code []Instruction) []byte {
	var w [8]byte
	emit := func(op Operation) {
		putOp(w[:], op)
		dst = append(dst, w[:]...)
	}
	for i := range code {
		in := &code[i]
		for _, op := range in.ME {
			emit(op)
		}
		for _, op := range in.VE {
			emit(op)
		}
		for _, op := range in.LS {
			emit(op)
		}
		emit(in.Misc)
	}
	return dst
}

func decodeCode(b []byte, f Format, n int) ([]Instruction, []byte, error) {
	wpi := f.wordsPerInstruction()
	need := n * wpi * 8
	if len(b) < need {
		return nil, nil, fmt.Errorf("isa: truncated code section: have %d bytes, need %d", len(b), need)
	}
	code := make([]Instruction, n)
	off := 0
	next := func() Operation {
		op := getOp(b[off:])
		off += 8
		return op
	}
	for i := 0; i < n; i++ {
		in := NewInstruction(f)
		for s := 0; s < f.MESlots; s++ {
			in.ME[s] = next()
		}
		for s := 0; s < f.VESlots; s++ {
			in.VE[s] = next()
		}
		for s := 0; s < LSSlots; s++ {
			in.LS[s] = next()
		}
		in.Misc = next()
		code[i] = in
	}
	return code, b[need:], nil
}

func putU32(dst []byte, v uint32) []byte {
	var w [4]byte
	binary.LittleEndian.PutUint32(w[:], v)
	return append(dst, w[:]...)
}

func readU32(b []byte) (uint32, []byte, error) {
	if len(b) < 4 {
		return 0, nil, fmt.Errorf("isa: truncated binary")
	}
	return binary.LittleEndian.Uint32(b), b[4:], nil
}

// Encode serializes a VLIW program.
func (p *Program) Encode() []byte {
	out := append([]byte{}, magicVLIW[:]...)
	out = putU32(out, encVersion)
	out = putU32(out, uint32(p.Format.MESlots))
	out = putU32(out, uint32(p.Format.VESlots))
	out = putU32(out, uint32(len(p.Code)))
	return encodeCode(out, p.Code)
}

// DecodeProgram parses a VLIW binary produced by Encode.
func DecodeProgram(b []byte) (*Program, error) {
	if len(b) < 4 || [4]byte(b[:4]) != magicVLIW {
		return nil, fmt.Errorf("isa: not a VLIW binary")
	}
	b = b[4:]
	var ver, me, ve, n uint32
	var err error
	for _, dst := range []*uint32{&ver, &me, &ve, &n} {
		if *dst, b, err = readU32(b); err != nil {
			return nil, err
		}
	}
	if ver != encVersion {
		return nil, fmt.Errorf("isa: unsupported version %d", ver)
	}
	f := Format{MESlots: int(me), VESlots: int(ve)}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	code, rest, err := decodeCode(b, f, int(n))
	if err != nil {
		return nil, err
	}
	if len(rest) != 0 {
		return nil, fmt.Errorf("isa: %d trailing bytes", len(rest))
	}
	return &Program{Format: f, Code: code}, nil
}

// Encode serializes a NeuISA binary: header, ME pool, VE pool, µTOp
// table, then the group execution table.
func (p *NeuProgram) Encode() []byte {
	out := append([]byte{}, magicNeu[:]...)
	out = putU32(out, encVersion)
	out = putU32(out, uint32(p.VESlots))
	out = putU32(out, uint32(len(p.MECode)))
	out = putU32(out, uint32(len(p.VECode)))
	out = putU32(out, uint32(len(p.UTops)))
	out = putU32(out, uint32(len(p.Groups)))
	out = encodeCode(out, p.MECode)
	out = encodeCode(out, p.VECode)
	for _, u := range p.UTops {
		out = putU32(out, uint32(u.Kind))
		out = putU32(out, uint32(u.Start))
	}
	for _, g := range p.Groups {
		out = putU32(out, uint32(len(g.ME)))
		for _, ui := range g.ME {
			out = putU32(out, uint32(int32(ui)))
		}
		out = putU32(out, uint32(int32(g.VE)))
	}
	return out
}

// DecodeNeuProgram parses a NeuISA binary produced by Encode.
func DecodeNeuProgram(b []byte) (*NeuProgram, error) {
	if len(b) < 4 || [4]byte(b[:4]) != magicNeu {
		return nil, fmt.Errorf("isa: not a NeuISA binary")
	}
	b = b[4:]
	var ver, ve, nme, nve, nut, ngr uint32
	var err error
	for _, dst := range []*uint32{&ver, &ve, &nme, &nve, &nut, &ngr} {
		if *dst, b, err = readU32(b); err != nil {
			return nil, err
		}
	}
	if ver != encVersion {
		return nil, fmt.Errorf("isa: unsupported version %d", ver)
	}
	p := &NeuProgram{VESlots: int(ve)}
	if p.MECode, b, err = decodeCode(b, p.MEFormat(), int(nme)); err != nil {
		return nil, err
	}
	if p.VECode, b, err = decodeCode(b, p.VEFormat(), int(nve)); err != nil {
		return nil, err
	}
	p.UTops = make([]UTop, nut)
	for i := range p.UTops {
		var k, s uint32
		if k, b, err = readU32(b); err != nil {
			return nil, err
		}
		if s, b, err = readU32(b); err != nil {
			return nil, err
		}
		p.UTops[i] = UTop{Kind: UTopKind(k), Start: int(s)}
	}
	p.Groups = make([]Group, ngr)
	for i := range p.Groups {
		var n uint32
		if n, b, err = readU32(b); err != nil {
			return nil, err
		}
		if n > 1024 {
			return nil, fmt.Errorf("isa: group %d claims %d ME entries", i, n)
		}
		g := Group{ME: make([]int, n)}
		for j := range g.ME {
			var v uint32
			if v, b, err = readU32(b); err != nil {
				return nil, err
			}
			g.ME[j] = int(int32(v))
		}
		var v uint32
		if v, b, err = readU32(b); err != nil {
			return nil, err
		}
		g.VE = int(int32(v))
		p.Groups[i] = g
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("isa: %d trailing bytes", len(b))
	}
	return p, nil
}
