// Package trace serializes compiled µTOp traces. The paper's simulator
// "replays the generated µTOp traces" (§III-G); this package gives that
// workflow a stable on-disk form, so traces can be exported once (e.g.
// from the bundled analytical models, or converted from real profiler
// dumps) and replayed into the scheduler without recompilation.
//
// The format is a single JSON document with a version header; it
// round-trips compiler.CompiledGraph exactly.
package trace

import (
	"encoding/json"
	"fmt"
	"io"

	"neu10/internal/arch"
	"neu10/internal/compiler"
	"neu10/internal/isa"
)

// FormatVersion identifies the trace schema.
const FormatVersion = 1

// file is the on-disk schema. It mirrors compiler types with stable,
// lower-case field names so the format survives internal refactors.
type file struct {
	Version   int      `json:"version"`
	Model     string   `json:"model"`
	BatchSize int      `json:"batch_size"`
	ISA       string   `json:"isa"`
	Target    target   `json:"target"`
	Footprint int64    `json:"hbm_footprint"`
	Ops       []fileOp `json:"ops"`
}

type target struct {
	MEs         int     `json:"mes"`
	VEs         int     `json:"ves"`
	SystolicDim int     `json:"systolic_dim"`
	VELanes     int     `json:"ve_lanes"`
	VESublanes  int     `json:"ve_sublanes"`
	FrequencyHz float64 `json:"frequency_hz"`
	SRAMBytes   int64   `json:"sram_bytes"`
	HBMBytes    int64   `json:"hbm_bytes"`
	HBMBwBytes  float64 `json:"hbm_bw_bytes"`
	Preempt     int     `json:"me_preempt_cycles"`
}

type fileOp struct {
	Name           string     `json:"name"`
	Kind           int        `json:"kind"`
	ReductionSplit bool       `json:"reduction_split,omitempty"`
	Groups         [][]fileUT `json:"groups"`
}

type fileUT struct {
	Kind     string `json:"kind"` // "me" | "ve"
	MECycles uint64 `json:"me_cycles,omitempty"`
	VECycles uint64 `json:"ve_cycles,omitempty"`
	HBMBytes int64  `json:"hbm_bytes,omitempty"`
}

// Write serializes a compiled graph.
func Write(w io.Writer, g *compiler.CompiledGraph) error {
	if err := g.Validate(); err != nil {
		return fmt.Errorf("trace: refusing to write invalid graph: %w", err)
	}
	f := file{
		Version:   FormatVersion,
		Model:     g.Model,
		BatchSize: g.BatchSize,
		ISA:       g.ISA.String(),
		Footprint: g.Footprint,
		Target: target{
			MEs: g.Target.MEs, VEs: g.Target.VEs,
			SystolicDim: g.Target.SystolicDim,
			VELanes:     g.Target.VELanes, VESublanes: g.Target.VESublanes,
			FrequencyHz: g.Target.FrequencyHz,
			SRAMBytes:   g.Target.SRAMBytes, HBMBytes: g.Target.HBMBytes,
			HBMBwBytes: g.Target.HBMBwBytes, Preempt: g.Target.MEPreemptCycles,
		},
	}
	for i := range g.Ops {
		op := &g.Ops[i]
		fo := fileOp{Name: op.Name, Kind: int(op.Kind), ReductionSplit: op.ReductionSplit}
		for _, grp := range op.Groups {
			var row []fileUT
			for _, u := range grp.UTops {
				kind := "ve"
				if u.Kind == isa.MEUTop {
					kind = "me"
				}
				row = append(row, fileUT{
					Kind: kind, MECycles: u.MECycles, VECycles: u.VECycles, HBMBytes: u.HBMBytes,
				})
			}
			fo.Groups = append(fo.Groups, row)
		}
		f.Ops = append(f.Ops, fo)
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(f)
}

// Read parses a trace and reconstructs the compiled graph, validating it.
func Read(r io.Reader) (*compiler.CompiledGraph, error) {
	var f file
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if f.Version != FormatVersion {
		return nil, fmt.Errorf("trace: unsupported version %d (want %d)", f.Version, FormatVersion)
	}
	var kind compiler.ISAKind
	switch f.ISA {
	case "NeuISA":
		kind = compiler.ISANeu
	case "VLIW":
		kind = compiler.ISAVLIW
	default:
		return nil, fmt.Errorf("trace: unknown ISA %q", f.ISA)
	}
	g := &compiler.CompiledGraph{
		Model:     f.Model,
		BatchSize: f.BatchSize,
		ISA:       kind,
		Footprint: f.Footprint,
		Target: arch.CoreConfig{
			MEs: f.Target.MEs, VEs: f.Target.VEs,
			SystolicDim: f.Target.SystolicDim,
			VELanes:     f.Target.VELanes, VESublanes: f.Target.VESublanes,
			FrequencyHz: f.Target.FrequencyHz,
			SRAMBytes:   f.Target.SRAMBytes, HBMBytes: f.Target.HBMBytes,
			HBMBwBytes: f.Target.HBMBwBytes, MEPreemptCycles: f.Target.Preempt,
		},
	}
	if err := g.Target.Validate(); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	for _, fo := range f.Ops {
		op := compiler.CompiledOp{
			Name: fo.Name, Kind: compiler.OpKind(fo.Kind), ReductionSplit: fo.ReductionSplit,
		}
		for _, row := range fo.Groups {
			var grp compiler.GroupSpec
			for _, u := range row {
				spec := compiler.UTopSpec{MECycles: u.MECycles, VECycles: u.VECycles, HBMBytes: u.HBMBytes}
				switch u.Kind {
				case "me":
					spec.Kind = isa.MEUTop
				case "ve":
					spec.Kind = isa.VEUTop
				default:
					return nil, fmt.Errorf("trace: op %q: bad µTOp kind %q", fo.Name, u.Kind)
				}
				grp.UTops = append(grp.UTops, spec)
			}
			op.Groups = append(op.Groups, grp)
		}
		g.Ops = append(g.Ops, op)
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("trace: invalid trace: %w", err)
	}
	return g, nil
}
