package trace

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"neu10/internal/arch"
	"neu10/internal/compiler"
	"neu10/internal/model"
	"neu10/internal/sched"
)

func compileAll(t *testing.T, name string, kind compiler.ISAKind) *compiler.CompiledGraph {
	t.Helper()
	comp, err := compiler.New(arch.TPUv4Like())
	if err != nil {
		t.Fatal(err)
	}
	g, err := model.Build(name, 8)
	if err != nil {
		t.Fatal(err)
	}
	cg, err := comp.Compile(g, kind)
	if err != nil {
		t.Fatal(err)
	}
	return cg
}

func TestRoundTripAllModels(t *testing.T) {
	for _, name := range model.Names() {
		for _, kind := range []compiler.ISAKind{compiler.ISANeu, compiler.ISAVLIW} {
			cg := compileAll(t, name, kind)
			var buf bytes.Buffer
			if err := Write(&buf, cg); err != nil {
				t.Fatalf("%s/%s write: %v", name, kind, err)
			}
			back, err := Read(&buf)
			if err != nil {
				t.Fatalf("%s/%s read: %v", name, kind, err)
			}
			if !reflect.DeepEqual(cg, back) {
				t.Fatalf("%s/%s: trace did not round-trip", name, kind)
			}
		}
	}
}

func TestReplayedTraceMatchesOriginalSimulation(t *testing.T) {
	// A trace written and re-read must drive the scheduler to the exact
	// same results as the in-memory graph — the replay guarantee.
	core := arch.TPUv4Like()
	a := compileAll(t, "MNIST", compiler.ISANeu)
	b := compileAll(t, "ENet", compiler.ISANeu)

	reload := func(g *compiler.CompiledGraph) *compiler.CompiledGraph {
		var buf bytes.Buffer
		if err := Write(&buf, g); err != nil {
			t.Fatal(err)
		}
		back, err := Read(&buf)
		if err != nil {
			t.Fatal(err)
		}
		return back
	}

	run := func(ga, gb *compiler.CompiledGraph) *sched.Result {
		res, err := sched.Run(sched.Config{Core: core, Policy: sched.Neu10, Requests: 4},
			[]sched.TenantSpec{
				{Name: "A", Graph: ga, MEs: 2, VEs: 2},
				{Name: "B", Graph: gb, MEs: 2, VEs: 2},
			})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	orig := run(a, b)
	replay := run(reload(a), reload(b))
	if orig.DurationCycles != replay.DurationCycles {
		t.Fatalf("replayed trace diverged: %.0f vs %.0f cycles",
			orig.DurationCycles, replay.DurationCycles)
	}
	for i := range orig.Tenants {
		if orig.Tenants[i].MeanLatency != replay.Tenants[i].MeanLatency {
			t.Fatalf("tenant %d latency diverged", i)
		}
	}
}

func TestReadRejectsBadInput(t *testing.T) {
	cases := map[string]string{
		"garbage":       "not json",
		"wrong version": `{"version":99,"model":"x","batch_size":1,"isa":"NeuISA","target":{},"ops":[]}`,
		"unknown isa":   `{"version":1,"model":"x","batch_size":1,"isa":"RISC","target":{},"ops":[]}`,
		"unknown field": `{"version":1,"bogus":true}`,
		"empty ops":     `{"version":1,"model":"x","batch_size":1,"isa":"NeuISA","target":{"mes":4,"ves":4,"systolic_dim":128,"ve_lanes":128,"ve_sublanes":8,"frequency_hz":1e9,"sram_bytes":1,"hbm_bytes":1,"hbm_bw_bytes":1},"ops":[]}`,
	}
	for name, src := range cases {
		if _, err := Read(strings.NewReader(src)); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestWriteRejectsInvalidGraph(t *testing.T) {
	var buf bytes.Buffer
	bad := &compiler.CompiledGraph{Model: "x", BatchSize: 1, Target: arch.TPUv4Like()}
	if err := Write(&buf, bad); err == nil {
		t.Fatal("empty graph written")
	}
}
