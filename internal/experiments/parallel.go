package experiments

import (
	"context"
	"fmt"
	"math"
	"runtime"
	"runtime/pprof"
	"sync"
	"sync/atomic"
)

// The parallel experiment runner. Every figure of the paper is a sweep
// over independent scenario simulations — (pair, policy) cells, core
// configurations, bandwidth points, offered loads — and each
// sched.Simulator instance is fully self-contained, so the sweeps fan
// out across a GOMAXPROCS-sized worker pool. Determinism is preserved
// by construction:
//
//   - results are collected into a slice by job index and consumed in
//     that order, so tables are byte-identical to a sequential run;
//   - each simulation derives its randomness from its own Config.Seed,
//     never from scheduling order;
//   - on error, the error of the lowest-indexed failing job is
//     returned — exactly the one a sequential loop would have hit
//     first;
//   - shared caches (compiled workloads, the pair-study memo) are
//     mutex-guarded and their contents are pure functions of their
//     keys, so population order cannot leak into results.
//
// TestParallelMatchesSequential locks the byte-identical property down.

// parMap runs fn over 0..n-1 on min(workers, n) goroutines and returns
// the results indexed by job. workers <= 0 means GOMAXPROCS.
func parMap[R any](workers, n int, fn func(i int) (R, error)) ([]R, error) {
	results := make([]R, n)
	errs := make([]error, n)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			r, err := fn(i)
			if err != nil {
				return nil, err // fail fast, like the sequential loop
			}
			results[i] = r
		}
		return results, nil
	}
	// failedAt tracks the lowest failed job index so far: jobs above it
	// are skipped (their results could not influence the returned error
	// or survive it), while lower-indexed jobs still run — one of them
	// may fail too and become the error a sequential loop would report.
	var failedAt atomic.Int64
	failedAt.Store(math.MaxInt64)
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func(w int) {
			defer wg.Done()
			// The pprof label tags every sample a -cpuprofile run collects
			// with the worker that produced it (`pprof -tagfocus`).
			pprof.Do(context.Background(), pprof.Labels("parmap-worker", fmt.Sprint(w)), func(context.Context) {
				for i := range next {
					if int64(i) > failedAt.Load() {
						continue
					}
					results[i], errs[i] = fn(i)
					if errs[i] != nil {
						for {
							cur := failedAt.Load()
							if int64(i) >= cur || failedAt.CompareAndSwap(cur, int64(i)) {
								break
							}
						}
					}
				}
			})
		}(w)
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// parMapPairs is parMap over an item slice.
func parMapPairs[T, R any](workers int, items []T, fn func(i int, item T) (R, error)) ([]R, error) {
	return parMap(workers, len(items), func(i int) (R, error) {
		return fn(i, items[i])
	})
}
