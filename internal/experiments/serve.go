package experiments

import (
	"fmt"
	"strings"

	"neu10/internal/obs"
	"neu10/internal/serve"
	"neu10/internal/workload"
)

// The online-serving scenarios: canned serve.Config setups that exercise
// the SLO-aware serving subsystem end-to-end (open-loop traffic →
// admission/routing → dynamic batching → autoscaling through the §III-B
// allocator and §III-C mapper). They run through Runner/RunMany like the
// figure sweeps, sharing one measured CostDB across the worker pool, and
// their tables are byte-identical for any worker count.

// ServeResult wraps one scenario's report(s) as an experiment result.
// Reports holds the underlying structured data for JSON output
// (cmd/neu10-serve -json).
type ServeResult struct {
	ID      string
	Reports []*serve.Report
	// Summary is an optional scenario-level verdict rendered after the
	// report tables (the consolidation scenario's chips-needed
	// comparison).
	Summary string
}

func (r *ServeResult) Name() string { return r.ID }

func (r *ServeResult) Table() string {
	var sb strings.Builder
	for i, rep := range r.Reports {
		if i > 0 {
			sb.WriteByte('\n')
		}
		sb.WriteString(rep.Table())
		// Empty unless the run carried an attribution ledger
		// (Config.Obs.Attrib), so legacy tables are byte-identical.
		sb.WriteString(rep.AttribTable())
	}
	if r.Summary != "" {
		sb.WriteByte('\n')
		sb.WriteString(r.Summary)
		sb.WriteByte('\n')
	}
	return sb.String()
}

// serveCosts returns the runner's shared invocation-cost database,
// building it on first use. Entries are pure functions of their keys, so
// sharing it across scenarios and workers never changes a report.
func (r *Runner) serveCosts() *serve.CostDB {
	r.serveMu.Lock()
	defer r.serveMu.Unlock()
	if r.serveDB == nil {
		r.serveDB = serve.NewCostDB(r.opts.Core)
	}
	return r.serveDB
}

// ServeSteady is the bring-up scenario: three tenants with distinct
// service-time scales (a transformer, a detector, a recommender) at
// moderate Poisson load on a 4-pNPU fleet, autoscaler on. Healthy
// output: high attainment for all three, a mostly flat replica count,
// and fleet utilization comfortably under allocation.
func (r *Runner) ServeSteady() (*ServeResult, error) {
	cfg := serve.Config{
		Scenario:    "steady",
		Core:        r.opts.Core,
		Cores:       4,
		Router:      serve.LeastLoaded,
		DurationSec: 2.0,
		Seed:        r.opts.ServeSeed,
		Obs:         r.opts.ServeObs,
		Autoscale:   true,
		Tenants: []serve.TenantConfig{
			{Name: "chat", Model: "BERT", Load: 0.55, EUs: 4, MaxBatch: 8,
				InitialReplicas: 1, MaxReplicas: 3},
			{Name: "vision", Model: "RtNt", Load: 0.50, EUs: 4, MaxBatch: 8,
				InitialReplicas: 1, MaxReplicas: 3},
			{Name: "rank", Model: "DLRM", Load: 0.45, EUs: 2, MaxBatch: 16,
				InitialReplicas: 1, MaxReplicas: 3},
		},
	}
	rep, err := serve.Run(cfg, r.serveCosts())
	if err != nil {
		return nil, fmt.Errorf("serve-steady: %w", err)
	}
	return &ServeResult{ID: "serve-steady", Reports: []*serve.Report{rep}}, nil
}

// ServeFlashCrowd hits one tenant with a 5× flash crowd for the middle
// third of the run and reports the same trace twice — autoscaler on vs.
// off — in one result. The autoscaled run should recover SLO attainment
// that the fixed fleet loses to queue sheds and tail blowup.
func (r *Runner) ServeFlashCrowd() (*ServeResult, error) {
	mk := func(autoscale bool) serve.Config {
		label := "flash-crowd"
		if !autoscale {
			label = "flash-crowd/no-autoscale"
		}
		return serve.Config{
			Scenario:      label,
			Core:          r.opts.Core,
			Cores:         6,
			Router:        serve.PowerOfTwo,
			DurationSec:   3.0,
			Seed:          r.opts.ServeSeed,
			Obs:           r.opts.ServeObs,
			Autoscale:     autoscale,
			ScaleEverySec: 0.1,
			Tenants: []serve.TenantConfig{
				{Name: "web", Model: "ENet", Load: 0.5, EUs: 2, MaxBatch: 8,
					Arrival: serve.Flash, BurstFactor: 5, BurstStart: 0.35, BurstEnd: 0.65,
					InitialReplicas: 1, MaxReplicas: 3},
				{Name: "batch", Model: "TFMR", Load: 0.4, EUs: 4, MaxBatch: 8,
					InitialReplicas: 1, MaxReplicas: 2},
			},
		}
	}
	reports, err := parMapPairs(r.workers(), []bool{true, false},
		func(_ int, autoscale bool) (*serve.Report, error) {
			return serve.Run(mk(autoscale), r.serveCosts())
		})
	if err != nil {
		return nil, fmt.Errorf("serve-flash: %w", err)
	}
	return &ServeResult{ID: "serve-flash", Reports: reports}, nil
}

// ServePriority is the mixed interactive/batch scenario: a
// latency-sensitive EfficientNet tenant (sub-ms batches, few-ms SLO)
// and a throughput-oriented Transformer tenant (~25 ms batches) pool
// their replicas in one temporal-share group, and the same trace is
// reported twice — priority-aware preemptive scheduling vs. the
// FIFO-shared baseline. In the FIFO run an interactive request caught
// behind a TFMR invocation serves an order of magnitude past its SLO;
// with preemption it checkpoints the batch at the next µTOp-quantum
// boundary (0.5 ms here, so every resumed segment makes real progress)
// and the batch tenant pays a bounded, reported goodput/latency cost
// (see the per-priority section and the preemption line of the table).
func (r *Runner) ServePriority() (*ServeResult, error) {
	mk := func(preempt bool) serve.Config {
		label := "priority"
		if !preempt {
			label = "priority/fifo"
		}
		return serve.Config{
			Scenario:    label,
			Core:        r.opts.Core,
			Cores:       3,
			Router:      serve.LeastLoaded,
			DurationSec: 2.0,
			Seed:        r.opts.ServeSeed,
			Obs:         r.opts.ServeObs,
			Preempt:     preempt,
			// ~50 quantum boundaries per TFMR batch; the aging credit
			// (64 × 0.5 ms quanta ≈ 32 ms of tolerated victimization
			// wait) keeps a batch effectively always preemptible while
			// its total extra delay stays hard-bounded.
			PreemptQuantumCycles: 524_288,
			MaxPreemptsPerBatch:  64,
			Tenants: []serve.TenantConfig{
				{Name: "chat", Model: "ENet", Priority: serve.Interactive, ShareGroup: "pool",
					Load: 0.35, EUs: 4, MaxBatch: 4, InitialReplicas: 1, MaxReplicas: 1},
				{Name: "analytics", Model: "TFMR", Priority: serve.Batch, ShareGroup: "pool",
					Load: 0.7, EUs: 4, MaxBatch: 8, SLOFactor: 4, InitialReplicas: 2, MaxReplicas: 2},
			},
		}
	}
	reports, err := parMapPairs(r.workers(), []bool{true, false},
		func(_ int, preempt bool) (*serve.Report, error) {
			return serve.Run(mk(preempt), r.serveCosts())
		})
	if err != nil {
		return nil, fmt.Errorf("serve-priority: %w", err)
	}
	return &ServeResult{ID: "serve-priority", Reports: reports}, nil
}

// ServeLLM is the KV-cache-aware LLM serving scenario: one
// autoregressive LLaMA-13B tenant (decode-dominated requests with
// long-tailed output lengths) on a fixed two-replica fleet, reported
// twice on the identical trace — continuous batching vs the static
// baseline. Continuous batching releases finished sequences at every
// decode-iteration boundary and admits queued prefills in their place,
// so short requests never ride a long batch's dead lanes; static pads
// every batch to its longest output and returns the whole batch
// together. The per-replica KV partition is tightened (KVCapTokens) so
// the admission rule visibly gates batch growth (kv-stalls,
// kv-occupancy in the LLM table). Healthy output: continuous beats
// static on goodput, SLO attainment, TTFT and p99 per-token latency,
// with identical arrivals and token totals.
func (r *Runner) ServeLLM() (*ServeResult, error) {
	mk := func(continuous bool) serve.Config {
		label := "llm"
		if !continuous {
			label = "llm/static"
		}
		return serve.Config{
			Scenario:    label,
			Core:        r.opts.Core,
			Cores:       2,
			Router:      serve.LeastLoaded,
			DurationSec: 10.0,
			Seed:        r.opts.ServeSeed,
			Obs:         r.opts.ServeObs,
			Tenants: []serve.TenantConfig{{
				Name: "assistant", Model: "LLaMA", Load: 0.75, EUs: 4,
				MaxBatch: 8, QueueCap: 32, InitialReplicas: 2, MaxReplicas: 2,
				LLM: &serve.LLMConfig{
					Static: !continuous,
					// A 768-token KV partition per replica: full batches of
					// typical requests fit, but clustered long generations
					// hit the admission rule — KV, not batch width, is the
					// binding constraint under bursts.
					KVCapTokens: 768,
					Trace: workload.LLMTrace{
						PromptMin: 16, PromptMean: 48, PromptMax: 128,
						OutputMin: 2, OutputMean: 12, OutputMax: 48,
					},
				},
			}},
		}
	}
	reports, err := parMapPairs(r.workers(), []bool{true, false},
		func(_ int, continuous bool) (*serve.Report, error) {
			return serve.Run(mk(continuous), r.serveCosts())
		})
	if err != nil {
		return nil, fmt.Errorf("serve-llm: %w", err)
	}
	return &ServeResult{ID: "serve-llm", Reports: reports}, nil
}

// ServeDisagg is the disaggregated prefill/decode scenario: one
// autoregressive LLaMA-13B tenant with a bimodal long-prompt/short-
// prompt trace, compared at a MATCHED chip count (4 pNPUs) and matched
// aggregate decode width on the identical request trace:
//
//   - colocated: 4 mixed replicas running the continuous batcher —
//     prefill-prioritized joins interleave with decode iterations on
//     every slot, so each long-prompt prefill invocation stalls that
//     slot's running generations (the TPOT interference the vNPU
//     partitioning story is about);
//   - disaggregated: 2 prefill + 2 decode replicas, chunked prefill
//     (64-token chunks) on the prefill pool, KV migrations over the
//     modeled chip-to-chip fabric, decode slots batching 2×MaxBatch
//     wide (decode cost is HBM-bound and nearly flat in batch, so
//     consolidation is almost free) — swept over interconnect
//     bandwidth.
//
// Healthy output: at ample bandwidth disaggregation beats colocation
// on TPOT p99 (no prefill ever runs on a decode slot), TTFT and SLO
// attainment; as the link slows, migration time (priced into TTFT) and
// prefill-side KV backpressure erode the advantage until the slowest
// link crosses below the colocated baseline — the bandwidth floor
// DistServe-style role specialization needs.
func (r *Runner) ServeDisagg() (*ServeResult, error) {
	trace := workload.LLMTrace{
		PromptMin: 16, PromptMean: 32, PromptMax: 64,
		PromptLongFrac: 0.25, PromptLongMin: 128, PromptLongMean: 192, PromptLongMax: 256,
		OutputMin: 6, OutputMean: 12, OutputMax: 24,
	}
	mk := func(label string, disagg bool, gbps float64) serve.Config {
		llm := &serve.LLMConfig{Trace: trace}
		if disagg {
			llm.Disagg = &serve.DisaggConfig{
				PrefillReplicas: 2, DecodeReplicas: 2, ChunkTokens: 64,
			}
		}
		return serve.Config{
			Scenario:    label,
			Core:        r.opts.Core,
			Cores:       4,
			Router:      serve.LeastLoaded,
			DurationSec: 8.0,
			Seed:        r.opts.ServeSeed,
			Obs:         r.opts.ServeObs,
			LinkGBps:    gbps,
			Tenants: []serve.TenantConfig{{
				// RatePerSec (not Load) so every configuration sees the
				// byte-identical arrival trace regardless of its own
				// capacity anchor; SLOMs explicit for the same reason.
				Name: "assistant", Model: "LLaMA", RatePerSec: 22, EUs: 4,
				MaxBatch: 8, QueueCap: 64, SLOMs: 3000,
				InitialReplicas: 4, MaxReplicas: 4,
				LLM: llm,
			}},
		}
	}
	cfgs := []serve.Config{
		mk("disagg/colocated", false, 64),
		mk("disagg/64GBps", true, 64),
		mk("disagg/4GBps", true, 4),
		mk("disagg/0.5GBps", true, 0.5),
		mk("disagg/0.0625GBps", true, 0.0625),
	}
	reports, err := parMapPairs(r.workers(), cfgs,
		func(_ int, cfg serve.Config) (*serve.Report, error) {
			return serve.Run(cfg, r.serveCosts())
		})
	if err != nil {
		return nil, fmt.Errorf("serve-disagg: %w", err)
	}
	return &ServeResult{ID: "serve-disagg", Reports: reports}, nil
}

// ServeChaos is the fault-injection scenario: one disaggregated
// LLaMA-13B tenant (2 prefill + 2 decode replicas, chunked prefill, KV
// migrations over the fabric) on an 8-pNPU fleet, the identical trace
// reported three ways:
//
//   - chaos/no-fault: the healthy reference run;
//   - chaos/fault: a mid-trace decode-replica crash (35%), a correlated
//     pod outage taking chips 0–1 down (52%), and the interconnect
//     degraded to 1/16 bandwidth for [55%, 72%) — no recovery machinery
//     beyond the autoscaler's ordinary windowed ladder and MinReplicas
//     resurrection;
//   - chaos/fault+recover: the same faults with one warm spare per
//     pool, crash-triggered emergency spawns (bypassing the p99
//     window), and migration-based decode-pool evacuation.
//
// Crashed replicas lose their resident KV: queued and in-flight
// requests re-queue to survivors, partially-generated sequences replay
// with their prefix folded into the prompt (recompute itemized in the
// chaos table). Healthy output: fault attainment (requests arriving
// after the first fault, served within SLO) strictly higher and
// time-to-recover strictly lower with recovery than without, at the
// price of the spare capacity and recompute tokens the table shows.
func (r *Runner) ServeChaos() (*ServeResult, error) {
	return r.serveChaos("serve-chaos", r.opts.ServeObs)
}

// ServeChaosTraced is the chaos scenario with full observability forced
// on — lifecycle tracing and sampled timelines — regardless of
// Options.ServeObs. Its TABLES are byte-identical to serve-chaos (the
// zero-overhead contract: observation never perturbs the simulation);
// its reports additionally carry the Perfetto trace and the timeline
// set, which is what cmd/neu10-serve -trace/-timelines and the
// traced-determinism CI leg export.
func (r *Runner) ServeChaosTraced() (*ServeResult, error) {
	res, err := r.serveChaos("serve-chaos-traced", &serve.ObsConfig{Trace: true, Timelines: true})
	return res, err
}

func (r *Runner) serveChaos(id string, obs *serve.ObsConfig) (*ServeResult, error) {
	trace := workload.LLMTrace{
		PromptMin: 16, PromptMean: 32, PromptMax: 64,
		PromptLongFrac: 0.25, PromptLongMin: 128, PromptLongMean: 192, PromptLongMax: 256,
		OutputMin: 6, OutputMean: 12, OutputMax: 24,
	}
	mkFaults := func() *serve.FaultPlan {
		return &serve.FaultPlan{Events: []serve.FaultEvent{
			{Kind: serve.FaultCrashReplica, AtFrac: 0.35, Tenant: "assistant", Role: serve.RoleDecode},
			{Kind: serve.FaultPodOutage, AtFrac: 0.52, Chips: []int{0, 1}},
			{Kind: serve.FaultLinkDegrade, AtFrac: 0.55, Scale: 1.0 / 16, UntilFrac: 0.72},
		}}
	}
	mk := func(label string, faults *serve.FaultPlan, rec *serve.RecoveryConfig) serve.Config {
		return serve.Config{
			Scenario:    label,
			Core:        r.opts.Core,
			Cores:       8,
			Router:      serve.LeastLoaded,
			DurationSec: 6.0,
			Seed:        r.opts.ServeSeed,
			Obs:         obs,
			Autoscale:   true,
			Faults:      faults,
			Recover:     rec,
			Tenants: []serve.TenantConfig{{
				// RatePerSec (not Load) so every variant sees the
				// byte-identical arrival trace; SLOMs explicit for the same
				// reason.
				Name: "assistant", Model: "LLaMA", RatePerSec: 24, EUs: 4,
				MaxBatch: 4, QueueCap: 64, SLOMs: 2000,
				InitialReplicas: 4, MaxReplicas: 8,
				LLM: &serve.LLMConfig{
					Trace: trace,
					Disagg: &serve.DisaggConfig{
						PrefillReplicas: 2, MaxPrefill: 3,
						DecodeReplicas: 2, MaxDecode: 4,
						ChunkTokens: 64,
					},
				},
			}},
		}
	}
	cfgs := []serve.Config{
		mk("chaos/no-fault", nil, nil),
		mk("chaos/fault", mkFaults(), nil),
		mk("chaos/fault+recover", mkFaults(),
			&serve.RecoveryConfig{WarmSpares: 1, EmergencySpawn: true, Evacuate: true}),
	}
	reports, err := parMapPairs(r.workers(), cfgs,
		func(_ int, cfg serve.Config) (*serve.Report, error) {
			return serve.Run(cfg, r.serveCosts())
		})
	if err != nil {
		return nil, fmt.Errorf("%s: %w", id, err)
	}
	return &ServeResult{ID: id, Reports: reports}, nil
}

// ServeConsolidate is the consolidation study the batcher policy layer
// exists for: one shared cluster serving an LLM tenant alongside
// vision and recommendation tenants — three scheduling policies
// (continuous batching plus two dynamic batchers), mixed priority/SLO
// classes — on a single aggregate trace (workload.ServingMix splits
// one cluster rate across the families), compared against running each
// tenant in its own silo at the same per-tenant rate. Every fleet is
// sized by a min-chips search: the smallest pNPU count whose placement
// fits the tenant's replicas, checked against a shared SLO-attainment
// floor. Healthy output: merged ≤ Σ siloed — the fractional-chip
// remainders (a 4-EU vision replica, a 2-EU recommender) pack into the
// LLM chip's spare EUs and HBM instead of each rounding up to a whole
// silo chip.
func (r *Runner) ServeConsolidate() (*ServeResult, error) {
	const attainFloor = 0.95
	mix := workload.ServingMix{
		TotalRPS: 400,
		Shares: []workload.MixShare{
			{Name: "assistant", Frac: 0.02},
			{Name: "vision", Frac: 0.23},
			{Name: "rank", Frac: 0.75},
		},
	}
	if err := mix.Validate(); err != nil {
		return nil, fmt.Errorf("serve-consolidate: %w", err)
	}
	mkTenants := func() []serve.TenantConfig {
		return []serve.TenantConfig{
			{Name: "assistant", Model: "LLaMA", RatePerSec: mix.RateFor("assistant"),
				EUs: 4, MaxBatch: 4, QueueCap: 32, Priority: serve.Interactive,
				InitialReplicas: 1, MaxReplicas: 1,
				LLM: &serve.LLMConfig{Trace: workload.LLMTrace{
					PromptMin: 16, PromptMean: 48, PromptMax: 128,
					OutputMin: 2, OutputMean: 12, OutputMax: 48,
				}}},
			{Name: "vision", Model: "RtNt", RatePerSec: mix.RateFor("vision"),
				EUs: 4, MaxBatch: 8, InitialReplicas: 1, MaxReplicas: 1},
			{Name: "rank", Model: "DLRM", RatePerSec: mix.RateFor("rank"),
				EUs: 2, MaxBatch: 16, SLOFactor: 4, Priority: serve.Batch,
				InitialReplicas: 1, MaxReplicas: 1},
		}
	}
	type variant struct {
		label   string
		tenants []serve.TenantConfig
	}
	base := mkTenants()
	variants := []variant{{label: "consolidate/merged", tenants: mkTenants()}}
	for i := range base {
		variants = append(variants, variant{
			label:   "consolidate/silo-" + base[i].Name,
			tenants: mkTenants()[i : i+1],
		})
	}
	type sized struct {
		chips int
		rep   *serve.Report
	}
	results, err := parMapPairs(r.workers(), variants, func(_ int, v variant) (sized, error) {
		var lastErr error
		for chips := 1; chips <= 10; chips++ {
			cfg := serve.Config{
				Scenario:    fmt.Sprintf("%s@%dchip", v.label, chips),
				Core:        r.opts.Core,
				Cores:       chips,
				Router:      serve.LeastLoaded,
				DurationSec: 2.0,
				Seed:        r.opts.ServeSeed,
				Obs:         r.opts.ServeObs,
				Tenants:     v.tenants,
			}
			rep, err := serve.Run(cfg, r.serveCosts())
			if err != nil {
				lastErr = err // placement did not fit: try a bigger fleet
				continue
			}
			for _, tr := range rep.Tenants {
				if tr.SLOAttainment < attainFloor {
					// Replica counts are fixed, vNPUs are segment-isolated:
					// more chips cannot raise attainment, so the miss is a
					// workload-sizing bug, not a small fleet.
					return sized{}, fmt.Errorf("%s: tenant %s attainment %.3f below the %.2f floor",
						v.label, tr.Name, tr.SLOAttainment, attainFloor)
				}
			}
			return sized{chips, rep}, nil
		}
		return sized{}, fmt.Errorf("%s: no fleet ≤ 10 chips placed the tenants: %w", v.label, lastErr)
	})
	if err != nil {
		return nil, fmt.Errorf("serve-consolidate: %w", err)
	}
	merged := results[0]
	reports := []*serve.Report{merged.rep}
	siloSum := 0
	parts := make([]string, 0, len(base))
	for i, s := range results[1:] {
		siloSum += s.chips
		parts = append(parts, fmt.Sprintf("%s %d", base[i].Name, s.chips))
		reports = append(reports, s.rep)
	}
	if merged.chips > siloSum {
		return nil, fmt.Errorf("serve-consolidate: merged fleet needs %d chips but the silos need only %d — consolidation lost",
			merged.chips, siloSum)
	}
	summary := fmt.Sprintf("consolidation: merged fleet %d chips vs siloed %d (%s) at ≥%.2f attainment — %d chip(s) saved",
		merged.chips, siloSum, strings.Join(parts, " + "), attainFloor, siloSum-merged.chips)
	return &ServeResult{ID: "serve-consolidate", Reports: reports, Summary: summary}, nil
}

// ServePaged is the KV-backend comparison scenario: one autoregressive
// LLaMA-13B tenant serving MULTI-TURN SESSION traffic (every request
// re-submits its conversation so far plus a new turn, and all sessions
// open with one shared system prompt) on a fixed two-replica fleet with
// a deliberately tight KV partition, the identical trace reported three
// ways:
//
//   - paged/reserve: the full-reservation backend (the legacy default,
//     made explicit so the report's comparison fields populate) — every
//     admission reserves prompt+output up front, so ballooning session
//     contexts gate concurrency hard;
//   - paged/recompute: block-on-demand allocation with the radix-trie
//     prefix cache (a returning session's earlier turns and the shared
//     system prompt are served from resident blocks, shrinking both the
//     admission footprint and the prefill), evicting the youngest
//     sequence under block pressure and replaying it through a chunked
//     re-prefill;
//   - paged/swap: the same allocator, but victims ship their KV to host
//     memory over a modeled PCIe-class link and return without
//     recomputing a single token.
//
// Healthy output: both paged legs admit strictly more concurrent
// sequences (kv_peak_seqs) and deliver strictly higher goodput than
// full reservation on the identical session trace — the paged-KV claim
// this scenario exists to demonstrate, asserted below — with the
// recompute-vs-swap price itemized in the kv table (replayed tokens vs
// MB moved).
func (r *Runner) ServePaged() (*ServeResult, error) {
	trace := workload.LLMTrace{
		// Per-turn shape; session growth is what makes prompts large.
		PromptMin: 16, PromptMean: 32, PromptMax: 64,
		OutputMin: 4, OutputMean: 12, OutputMax: 32,
		Sessions: 10, SharedPrefixTokens: 96, MaxSessionTokens: 640,
	}
	mk := func(label, policy, evict string) serve.Config {
		return serve.Config{
			Scenario:    label,
			Core:        r.opts.Core,
			Cores:       2,
			Router:      serve.LeastLoaded,
			DurationSec: 8.0,
			Seed:        r.opts.ServeSeed,
			Obs:         r.opts.ServeObs,
			Tenants: []serve.TenantConfig{{
				// RatePerSec (not Load) so every backend sees the
				// byte-identical session trace; SLOMs explicit for the same
				// reason.
				Name: "assistant", Model: "LLaMA", RatePerSec: 14, EUs: 4,
				MaxBatch: 16, QueueCap: 64, SLOMs: 3000,
				InitialReplicas: 2, MaxReplicas: 2,
				LLM: &serve.LLMConfig{
					// A 1536-token partition per replica: a late-session
					// context is a third of it, so full reservation runs out
					// of admission room while on-demand blocks (plus the
					// cache-resident earlier turns) keep admitting.
					KVCapTokens: 1536,
					KVPolicy:    policy,
					KVEvict:     evict,
					Trace:       trace,
				},
			}},
		}
	}
	cfgs := []serve.Config{
		mk("paged/reserve", serve.KVReserve, ""),
		mk("paged/recompute", serve.KVPaged, serve.KVEvictRecompute),
		mk("paged/swap", serve.KVPaged, serve.KVEvictSwap),
	}
	reports, err := parMapPairs(r.workers(), cfgs,
		func(_ int, cfg serve.Config) (*serve.Report, error) {
			return serve.Run(cfg, r.serveCosts())
		})
	if err != nil {
		return nil, fmt.Errorf("serve-paged: %w", err)
	}
	resv := reports[0].Tenants[0]
	parts := make([]string, 0, 2)
	for _, rep := range reports[1:] {
		t := rep.Tenants[0]
		if t.LLM.PeakSeqs <= resv.LLM.PeakSeqs {
			return nil, fmt.Errorf("serve-paged: %s peak seqs %d not above reserve's %d — paging won nothing",
				rep.Scenario, t.LLM.PeakSeqs, resv.LLM.PeakSeqs)
		}
		if t.GoodputRPS <= resv.GoodputRPS {
			return nil, fmt.Errorf("serve-paged: %s goodput %.2f rps not above reserve's %.2f — paging won nothing",
				rep.Scenario, t.GoodputRPS, resv.GoodputRPS)
		}
		parts = append(parts, fmt.Sprintf("%s %d seqs / %.1f rps", rep.Scenario, t.LLM.PeakSeqs, t.GoodputRPS))
	}
	rec, swp := reports[1].Tenants[0].LLM, reports[2].Tenants[0].LLM
	summary := fmt.Sprintf(
		"paged KV: reserve %d seqs / %.1f rps vs %s; eviction price: %d recompute evicts replay %d tokens vs %d swap evicts move %.1f MB",
		resv.LLM.PeakSeqs, resv.GoodputRPS, strings.Join(parts, ", "),
		rec.EvictRecompute, rec.RecomputeTokens, swp.EvictSwap, swp.SwapOutMB+swp.SwapInMB)
	return &ServeResult{ID: "serve-paged", Reports: reports, Summary: summary}, nil
}

// ServeAttrib is the latency-attribution scenario: one LLaMA-13B tenant
// serving the SAME multi-turn session trace three ways — full KV
// reservation, paged KV with recompute eviction, and disaggregated
// prefill/decode — with exact attribution (Config.Obs.Attrib) forced on
// regardless of Options.ServeObs. Every request's lifetime decomposes
// into exclusive segments that sum cycle-exactly to its end-to-end
// latency, and every replica-cycle lands in exactly one fleet bucket;
// both conservation laws are asserted here (zero violations, zero open
// requests) on top of the in-sim checks.
//
// The attribution tables answer the question the aggregate serve tables
// cannot: WHERE the latency lives. Under full reservation a tight KV
// partition turns late-session contexts into admission blockers, so the
// tail cohort's blame is queue time; paged admission converts that same
// wall-clock into decode/decode-gap time (the requests are on chip,
// making progress) — asserted below as a strict queue-share drop.
// Disaggregation shifts blame again, into migration and chunk gaps the
// other legs cannot have.
func (r *Runner) ServeAttrib() (*ServeResult, error) {
	trace := workload.LLMTrace{
		// Per-turn shape; session growth is what makes prompts large.
		PromptMin: 16, PromptMean: 32, PromptMax: 64,
		OutputMin: 4, OutputMean: 12, OutputMax: 32,
		Sessions: 10, SharedPrefixTokens: 96, MaxSessionTokens: 640,
	}
	mk := func(label string) serve.Config {
		return serve.Config{
			Scenario:    label,
			Core:        r.opts.Core,
			Cores:       2,
			Router:      serve.LeastLoaded,
			DurationSec: 6.0,
			Seed:        r.opts.ServeSeed,
			Obs:         &serve.ObsConfig{Attrib: true},
			Tenants: []serve.TenantConfig{{
				// RatePerSec (not Load) so every leg sees the byte-identical
				// session trace; SLOMs explicit for the same reason.
				Name: "assistant", Model: "LLaMA", RatePerSec: 14, EUs: 4,
				MaxBatch: 16, QueueCap: 64, SLOMs: 3000,
				InitialReplicas: 2, MaxReplicas: 2,
				LLM: &serve.LLMConfig{
					// The same deliberately tight 1536-token partition as
					// serve-paged: late-session contexts are a third of it, so
					// the reserve leg queues hard and attribution has a
					// contrast to expose.
					KVCapTokens: 1536,
					Trace:       trace,
				},
			}},
		}
	}
	cfgs := []serve.Config{
		mk("attrib/reserve"),
		mk("attrib/paged"),
		mk("attrib/disagg"),
	}
	cfgs[0].Tenants[0].LLM.KVPolicy = serve.KVReserve
	cfgs[1].Tenants[0].LLM.KVPolicy = serve.KVPaged
	cfgs[1].Tenants[0].LLM.KVEvict = serve.KVEvictRecompute
	cfgs[2].Tenants[0].LLM.Disagg = &serve.DisaggConfig{
		PrefillReplicas: 1, DecodeReplicas: 1, ChunkTokens: 64,
	}
	reports, err := parMapPairs(r.workers(), cfgs,
		func(_ int, cfg serve.Config) (*serve.Report, error) {
			return serve.Run(cfg, r.serveCosts())
		})
	if err != nil {
		return nil, fmt.Errorf("serve-attrib: %w", err)
	}
	shares := make([]float64, len(reports))
	for i, rep := range reports {
		led := rep.Ledger
		if led == nil {
			return nil, fmt.Errorf("serve-attrib: %s carried no ledger", rep.Scenario)
		}
		if v, open := led.Violations(), led.Open(); v != 0 || open != 0 {
			return nil, fmt.Errorf("serve-attrib: %s conservation broken: %d violations, %d open requests",
				rep.Scenario, v, open)
		}
		tot := led.SegTotals("assistant")
		sum := 0.0
		for _, v := range tot {
			sum += v
		}
		if sum <= 0 {
			return nil, fmt.Errorf("serve-attrib: %s attributed no request time", rep.Scenario)
		}
		shares[i] = tot[obs.SegQueue] / sum
	}
	if shares[1] >= shares[0] {
		return nil, fmt.Errorf("serve-attrib: paged queue share %.1f%% not below reserve's %.1f%% — paging collapsed nothing",
			shares[1]*100, shares[0]*100)
	}
	summary := fmt.Sprintf(
		"attribution: queue share of attributed time — reserve %.1f%%, paged %.1f%%, disagg %.1f%%; paged admission converts reserve's queueing into on-chip decode time; conservation: 0 violations, 0 open across all legs",
		shares[0]*100, shares[1]*100, shares[2]*100)
	return &ServeResult{ID: "serve-attrib", Reports: reports, Summary: summary}, nil
}

// ServeMixShift runs two diurnal tenants in antiphase — as one's
// traffic wanes the other's peaks — so the autoscaler must migrate
// capacity between them on a fleet too small to hold both peaks at
// once.
func (r *Runner) ServeMixShift() (*ServeResult, error) {
	cfg := serve.Config{
		Scenario:    "mix-shift",
		Core:        r.opts.Core,
		Cores:       5,
		Router:      serve.JSQ,
		DurationSec: 4.0,
		Seed:        r.opts.ServeSeed,
		Obs:         r.opts.ServeObs,
		Autoscale:   true,
		Tenants: []serve.TenantConfig{
			{Name: "east", Model: "RtNt", Load: 0.55, EUs: 4, MaxBatch: 8,
				Arrival: serve.Diurnal, DiurnalDepth: 0.7,
				InitialReplicas: 2, MinReplicas: 1, MaxReplicas: 4},
			{Name: "west", Model: "BERT", Load: 0.55, EUs: 4, MaxBatch: 8,
				Arrival: serve.Diurnal, DiurnalDepth: 0.7, DiurnalPhase: 3.141592653589793,
				InitialReplicas: 2, MinReplicas: 1, MaxReplicas: 4},
		},
	}
	rep, err := serve.Run(cfg, r.serveCosts())
	if err != nil {
		return nil, fmt.Errorf("serve-mix: %w", err)
	}
	return &ServeResult{ID: "serve-mix", Reports: []*serve.Report{rep}}, nil
}
