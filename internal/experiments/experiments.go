// Package experiments regenerates every table and figure of the paper's
// evaluation (§II characterization and §V results) from the simulator.
// Each experiment is a pure function returning a typed result with a
// Table() renderer; cmd/neu10-bench and the repository benchmarks are
// thin wrappers around this package. The experiment index lives in
// DESIGN.md; paper-vs-measured numbers are recorded in EXPERIMENTS.md.
package experiments

import (
	"fmt"
	"sort"
	"strings"
	"sync"

	"neu10/internal/arch"
	"neu10/internal/sched"
	"neu10/internal/serve"
	"neu10/internal/workload"
)

// Options configures a run of the experiment suite.
type Options struct {
	Core arch.CoreConfig
	// Requests per tenant for steady-state runs (paper methodology).
	Requests int
	// SampleEvery controls timeline resolution in cycles.
	SampleEvery float64
	// Workers sizes the worker pool the sweeps fan out over:
	// 0 = GOMAXPROCS, 1 = fully sequential. Results are byte-identical
	// either way (see parallel.go).
	Workers int
	// ServeSeed drives the online-serving scenarios (serve-*): arrivals,
	// routing coin flips and therefore every number in their reports.
	ServeSeed uint64
	// ServeObs switches observability (lifecycle tracing, sampled
	// timelines — internal/obs) on for every serve-* scenario; nil runs
	// them with zero overhead and unchanged output. Reports are
	// byte-identical for any worker count either way.
	ServeObs *serve.ObsConfig
}

// DefaultOptions mirrors the paper's Table II setup.
func DefaultOptions() Options {
	return Options{Core: arch.TPUv4Like(), Requests: 8, SampleEvery: 100_000, ServeSeed: 1}
}

// Policies lists the four evaluated designs in paper order.
func Policies() []sched.Mode {
	return []sched.Mode{sched.PMT, sched.V10, sched.NeuNH, sched.Neu10}
}

// Result is the interface every experiment result implements.
type Result interface {
	// Name is the experiment id, e.g. "fig19".
	Name() string
	// Table renders the result as the paper's rows/series in plain text.
	Table() string
}

// Runner executes experiments by id. It is safe for concurrent use
// (RunMany regenerates several figures at once): the memo caches below
// are mutex-guarded and everything else is per-run state.
type Runner struct {
	opts Options
	comp *workload.Compiled

	// pairStudy caches the shared Fig. 19-22 / Table III sweep (pairMu
	// also single-flights its computation); compCache holds
	// per-core-config compilation caches for the sweeps.
	pairMu    sync.Mutex
	pairStudy *PairStudyResult
	compMu    sync.Mutex
	compCache map[string]*workload.Compiled

	// serveDB memoizes measured invocation costs for the online-serving
	// scenarios (serve.go); lazily built, shared across the worker pool.
	serveMu sync.Mutex
	serveDB *serve.CostDB
}

// workers returns the configured worker-pool size for parMap.
func (r *Runner) workers() int { return r.opts.Workers }

// NewRunner builds a runner.
func NewRunner(opts Options) (*Runner, error) {
	if opts.Requests < 1 {
		return nil, fmt.Errorf("experiments: requests %d", opts.Requests)
	}
	comp, err := workload.NewCompiled(opts.Core)
	if err != nil {
		return nil, err
	}
	return &Runner{opts: opts, comp: comp}, nil
}

// IDs returns all experiment identifiers: the paper's figures/tables in
// paper order, then the extension studies (ablations, SLO).
func IDs() []string {
	return []string{
		"fig2", "fig4", "fig5", "fig7", "fig12", "fig16",
		"fig19", "fig20", "fig21", "fig22", "fig23", "table3",
		"fig24", "fig25", "fig26", "fig27",
		"ablation-harvest", "ablation-preempt", "slo", "cluster",
		"serve-steady", "serve-flash", "serve-mix", "serve-priority", "serve-llm",
		"serve-disagg", "serve-chaos", "serve-chaos-traced", "serve-consolidate",
		"serve-paged", "serve-attrib",
	}
}

// Run executes one experiment by id.
func (r *Runner) Run(id string) (Result, error) {
	switch id {
	case "fig2":
		return r.Fig2Demand()
	case "fig4":
		return r.Fig4Intensity()
	case "fig5":
		return r.Fig5Utilization()
	case "fig7":
		return r.Fig7HBM()
	case "fig12":
		return r.Fig12Allocator()
	case "fig16":
		return r.Fig16NeuISAOverhead()
	case "fig19", "fig20", "fig21", "fig22", "table3":
		pr, err := r.PairStudy()
		if err != nil {
			return nil, err
		}
		return pr.view(id), nil
	case "fig23":
		return r.Fig23Breakdown()
	case "fig24":
		return r.Fig24Timeline()
	case "fig25":
		return r.Fig25Scaling()
	case "fig26":
		return r.Fig26Bandwidth()
	case "fig27":
		return r.Fig27LLM()
	case "ablation-harvest":
		return r.AblationHarvest()
	case "ablation-preempt":
		return r.AblationPreempt()
	case "slo":
		return r.SLOStudy()
	case "cluster":
		return r.ClusterStudy()
	case "serve-steady":
		return r.ServeSteady()
	case "serve-flash":
		return r.ServeFlashCrowd()
	case "serve-mix":
		return r.ServeMixShift()
	case "serve-priority":
		return r.ServePriority()
	case "serve-llm":
		return r.ServeLLM()
	case "serve-disagg":
		return r.ServeDisagg()
	case "serve-chaos":
		return r.ServeChaos()
	case "serve-chaos-traced":
		return r.ServeChaosTraced()
	case "serve-consolidate":
		return r.ServeConsolidate()
	case "serve-paged":
		return r.ServePaged()
	case "serve-attrib":
		return r.ServeAttrib()
	default:
		return nil, fmt.Errorf("experiments: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
	}
}

// RunMany executes several experiments, fanning them across the worker
// pool on top of each experiment's own internal parallelism. Results
// are returned in the order of ids; the fig19-22/table3 views share one
// pair-study sweep exactly as they do sequentially (the memo is
// single-flighted).
func (r *Runner) RunMany(ids []string) ([]Result, error) {
	return parMapPairs(r.workers(), ids, func(_ int, id string) (Result, error) {
		res, err := r.Run(strings.TrimSpace(id))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", strings.TrimSpace(id), err)
		}
		return res, nil
	})
}

// runPair runs one pair under one policy with evenly split vNPUs.
// Workloads are compiled for the exact core configuration: the number of
// µTOps per operator and the V10 complex width both depend on it.
func (r *Runner) runPair(p workload.Pair, policy sched.Mode, core arch.CoreConfig, sample bool) (*sched.Result, error) {
	comp, err := r.compiledFor(core)
	if err != nil {
		return nil, err
	}
	mes, ves := core.MEs/2, core.VEs/2
	if mes < 1 {
		mes = 1
	}
	if ves < 1 {
		ves = 1
	}
	specs, err := comp.Tenants(p, policy, mes, ves)
	if err != nil {
		return nil, err
	}
	cfg := sched.Config{Core: core, Policy: policy, Requests: r.opts.Requests}
	if sample {
		cfg.SampleEvery = r.opts.SampleEvery
	}
	return sched.Run(cfg, specs)
}

// compiledFor returns a compilation cache for an arbitrary core config,
// reusing the default one when it matches.
func (r *Runner) compiledFor(core arch.CoreConfig) (*workload.Compiled, error) {
	if core == r.opts.Core {
		return r.comp, nil
	}
	key := fmt.Sprintf("%d/%d/%.0f", core.MEs, core.VEs, core.HBMBwBytes)
	r.compMu.Lock()
	defer r.compMu.Unlock()
	if r.compCache == nil {
		r.compCache = map[string]*workload.Compiled{}
	}
	if c, ok := r.compCache[key]; ok {
		return c, nil
	}
	c, err := workload.NewCompiled(core)
	if err != nil {
		return nil, err
	}
	r.compCache[key] = c
	return c, nil
}

// ---- small text-table helper ----

type table struct {
	header []string
	rows   [][]string
}

func (t *table) add(cells ...string) { t.rows = append(t.rows, cells) }

func (t *table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, r := range t.rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var sb strings.Builder
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(t.header)
	for i, w := range widths {
		if i > 0 {
			sb.WriteString("  ")
		}
		sb.WriteString(strings.Repeat("-", w))
	}
	sb.WriteByte('\n')
	for _, r := range t.rows {
		line(r)
	}
	return sb.String()
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
func f3(v float64) string { return fmt.Sprintf("%.3f", v) }

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
