package experiments

import (
	"fmt"
	"strings"

	"neu10/internal/compiler"
	"neu10/internal/core"
	"neu10/internal/model"
)

// Fig. 12 — vNPU allocation: for each EU budget, the speedup of every
// (m, v) split and the allocator's selection, for BERT, ResNet,
// EfficientNet (batch 32) and ShapeMask (batch 8).

// AllocCurve is one model's sweep.
type AllocCurve struct {
	Model  string
	Batch  int
	M, V   float64 // profiled active fractions fed to the allocator
	Points []core.SweepPoint
}

// Fig12Result holds the four allocation sweeps.
type Fig12Result struct{ Curves []AllocCurve }

func (r *Fig12Result) Name() string { return "fig12" }

func (r *Fig12Result) Table() string {
	var sb strings.Builder
	sb.WriteString("Fig. 12 — vNPU allocation sweep (selected config per EU budget)\n")
	for _, c := range r.Curves {
		fmt.Fprintf(&sb, "\n%s (batch %d, m=%.3f v=%.3f):\n", c.Model, c.Batch, c.M, c.V)
		tab := &table{header: []string{"EUs", "selected (m,v)", "speedup", "best alternative"}}
		byTotal := map[int][]core.SweepPoint{}
		for _, p := range c.Points {
			byTotal[p.TotalEUs] = append(byTotal[p.TotalEUs], p)
		}
		for total := 2; total <= 16; total++ {
			pts := byTotal[total]
			if len(pts) == 0 {
				continue
			}
			var sel core.SweepPoint
			bestAlt := 0.0
			for _, p := range pts {
				if p.Selected {
					sel = p
				} else if p.Speedup > bestAlt {
					bestAlt = p.Speedup
				}
			}
			tab.add(fmt.Sprint(total), fmt.Sprintf("(%d,%d)", sel.MEs, sel.VEs),
				f3(sel.Speedup), f3(bestAlt))
		}
		sb.WriteString(tab.String())
	}
	return sb.String()
}

// Fig12Allocator sweeps the allocator for the paper's four models.
func (r *Runner) Fig12Allocator() (*Fig12Result, error) {
	alloc, err := core.NewAllocator(r.opts.Core)
	if err != nil {
		return nil, err
	}
	cm := compiler.NewCostModel(r.opts.Core)
	cases := []struct {
		name  string
		batch int
	}{
		{"BERT", 32}, {"RsNt", 32}, {"ENet", 32}, {"SMask", 8},
	}
	out := &Fig12Result{}
	for _, c := range cases {
		g, err := model.Build(c.name, c.batch)
		if err != nil {
			return nil, err
		}
		p := cm.ProfileGraph(g)
		out.Curves = append(out.Curves, AllocCurve{
			Model: c.name, Batch: c.batch, M: p.M, V: p.V,
			Points: alloc.Sweep(p.M, p.V, 16),
		})
	}
	return out, nil
}

// Fig. 16 — NeuISA performance overhead relative to the traditional
// VLIW ISA, per workload and batch size: solo full-core runs under both
// compilations. Positive = NeuISA slower (the reduction-split effect),
// shrinking with batch size.

// OverheadPoint is one (model, batch) measurement.
type OverheadPoint struct {
	Model    string
	Batch    int
	Overhead float64 // (tNeu - tVLIW) / tVLIW
}

// Fig16Result holds the overhead grid.
type Fig16Result struct {
	Batches []int
	Points  map[string]map[int]float64
}

func (r *Fig16Result) Name() string { return "fig16" }

func (r *Fig16Result) Table() string {
	tab := &table{header: []string{"model"}}
	for _, b := range r.Batches {
		tab.header = append(tab.header, fmt.Sprintf("b=%d", b))
	}
	for _, m := range sortedKeys(r.Points) {
		row := []string{m}
		for _, b := range r.Batches {
			if v, ok := r.Points[m][b]; ok {
				row = append(row, fmt.Sprintf("%+.2f%%", v*100))
			} else {
				row = append(row, "OOM")
			}
		}
		tab.add(row...)
	}
	return "Fig. 16 — NeuISA overhead vs VLIW (paper: <1% average, shrinking with batch)\n" + tab.String()
}

// Fig16NeuISAOverhead measures NeuISA-vs-VLIW solo latency for the
// Table I models across batch sizes.
func (r *Runner) Fig16NeuISAOverhead() (*Fig16Result, error) {
	out := &Fig16Result{Batches: []int{1, 8, 32, 128}, Points: map[string]map[int]float64{}}
	for _, name := range model.Names() {
		if name == "LLaMA" {
			continue
		}
		out.Points[name] = map[int]float64{}
		for _, b := range out.Batches {
			g, err := model.Build(name, b)
			if err != nil {
				return nil, err
			}
			if g.HBMFootprint > r.opts.Core.HBMBytes {
				continue
			}
			tNeu, err := r.soloLatency(name, b, compiler.ISANeu)
			if err != nil {
				return nil, err
			}
			tVLIW, err := r.soloLatency(name, b, compiler.ISAVLIW)
			if err != nil {
				return nil, err
			}
			out.Points[name][b] = (tNeu - tVLIW) / tVLIW
		}
	}
	return out, nil
}

func (r *Runner) soloLatency(name string, batch int, kind compiler.ISAKind) (float64, error) {
	cg, err := r.comp.Graph(name, batch, kind)
	if err != nil {
		return 0, err
	}
	policy := coreSoloPolicy(kind)
	res, err := runSolo(r, cg, policy)
	if err != nil {
		return 0, err
	}
	return res.Tenants[0].MeanLatency, nil
}
