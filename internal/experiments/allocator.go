package experiments

import (
	"fmt"
	"strings"

	"neu10/internal/compiler"
	"neu10/internal/core"
	"neu10/internal/model"
)

// Fig. 12 — vNPU allocation: for each EU budget, the speedup of every
// (m, v) split and the allocator's selection, for BERT, ResNet,
// EfficientNet (batch 32) and ShapeMask (batch 8).

// AllocCurve is one model's sweep.
type AllocCurve struct {
	Model  string
	Batch  int
	M, V   float64 // profiled active fractions fed to the allocator
	Points []core.SweepPoint
}

// Fig12Result holds the four allocation sweeps.
type Fig12Result struct{ Curves []AllocCurve }

func (r *Fig12Result) Name() string { return "fig12" }

func (r *Fig12Result) Table() string {
	var sb strings.Builder
	sb.WriteString("Fig. 12 — vNPU allocation sweep (selected config per EU budget)\n")
	for _, c := range r.Curves {
		fmt.Fprintf(&sb, "\n%s (batch %d, m=%.3f v=%.3f):\n", c.Model, c.Batch, c.M, c.V)
		tab := &table{header: []string{"EUs", "selected (m,v)", "speedup", "best alternative"}}
		byTotal := map[int][]core.SweepPoint{}
		for _, p := range c.Points {
			byTotal[p.TotalEUs] = append(byTotal[p.TotalEUs], p)
		}
		for total := 2; total <= 16; total++ {
			pts := byTotal[total]
			if len(pts) == 0 {
				continue
			}
			var sel core.SweepPoint
			bestAlt := 0.0
			for _, p := range pts {
				if p.Selected {
					sel = p
				} else if p.Speedup > bestAlt {
					bestAlt = p.Speedup
				}
			}
			tab.add(fmt.Sprint(total), fmt.Sprintf("(%d,%d)", sel.MEs, sel.VEs),
				f3(sel.Speedup), f3(bestAlt))
		}
		sb.WriteString(tab.String())
	}
	return sb.String()
}

// Fig12Allocator sweeps the allocator for the paper's four models, one
// worker-pool job per model (graph build + profile dominate the cost).
func (r *Runner) Fig12Allocator() (*Fig12Result, error) {
	alloc, err := core.NewAllocator(r.opts.Core)
	if err != nil {
		return nil, err
	}
	cm := compiler.NewCostModel(r.opts.Core)
	cases := []struct {
		name  string
		batch int
	}{
		{"BERT", 32}, {"RsNt", 32}, {"ENet", 32}, {"SMask", 8},
	}
	curves, err := parMapPairs(r.workers(), cases, func(_ int, c struct {
		name  string
		batch int
	}) (AllocCurve, error) {
		g, err := model.Build(c.name, c.batch)
		if err != nil {
			return AllocCurve{}, err
		}
		p := cm.ProfileGraph(g)
		return AllocCurve{
			Model: c.name, Batch: c.batch, M: p.M, V: p.V,
			Points: alloc.Sweep(p.M, p.V, 16),
		}, nil
	})
	if err != nil {
		return nil, err
	}
	return &Fig12Result{Curves: curves}, nil
}

// Fig. 16 — NeuISA performance overhead relative to the traditional
// VLIW ISA, per workload and batch size: solo full-core runs under both
// compilations. Positive = NeuISA slower (the reduction-split effect),
// shrinking with batch size.

// OverheadPoint is one (model, batch) measurement.
type OverheadPoint struct {
	Model    string
	Batch    int
	Overhead float64 // (tNeu - tVLIW) / tVLIW
}

// Fig16Result holds the overhead grid.
type Fig16Result struct {
	Batches []int
	Points  map[string]map[int]float64
}

func (r *Fig16Result) Name() string { return "fig16" }

func (r *Fig16Result) Table() string {
	tab := &table{header: []string{"model"}}
	for _, b := range r.Batches {
		tab.header = append(tab.header, fmt.Sprintf("b=%d", b))
	}
	for _, m := range sortedKeys(r.Points) {
		row := []string{m}
		for _, b := range r.Batches {
			if v, ok := r.Points[m][b]; ok {
				row = append(row, fmt.Sprintf("%+.2f%%", v*100))
			} else {
				row = append(row, "OOM")
			}
		}
		tab.add(row...)
	}
	return "Fig. 16 — NeuISA overhead vs VLIW (paper: <1% average, shrinking with batch)\n" + tab.String()
}

// Fig16NeuISAOverhead measures NeuISA-vs-VLIW solo latency for the
// Table I models across batch sizes, fanning the (model, batch) grid
// across the worker pool.
func (r *Runner) Fig16NeuISAOverhead() (*Fig16Result, error) {
	out := &Fig16Result{Batches: []int{1, 8, 32, 128}, Points: map[string]map[int]float64{}}
	type gridCell struct {
		name  string
		batch int
	}
	var cells []gridCell
	for _, name := range model.Names() {
		if name == "LLaMA" {
			continue
		}
		out.Points[name] = map[int]float64{}
		for _, b := range out.Batches {
			cells = append(cells, gridCell{name, b})
		}
	}
	type overhead struct {
		v  float64
		ok bool
	}
	points, err := parMapPairs(r.workers(), cells, func(_ int, c gridCell) (overhead, error) {
		g, err := model.Build(c.name, c.batch)
		if err != nil {
			return overhead{}, err
		}
		if g.HBMFootprint > r.opts.Core.HBMBytes {
			return overhead{}, nil // paper omits OOM configs
		}
		tNeu, err := r.soloLatency(c.name, c.batch, compiler.ISANeu)
		if err != nil {
			return overhead{}, err
		}
		tVLIW, err := r.soloLatency(c.name, c.batch, compiler.ISAVLIW)
		if err != nil {
			return overhead{}, err
		}
		return overhead{v: (tNeu - tVLIW) / tVLIW, ok: true}, nil
	})
	if err != nil {
		return nil, err
	}
	for i, c := range cells {
		if points[i].ok {
			out.Points[c.name][c.batch] = points[i].v
		}
	}
	return out, nil
}

func (r *Runner) soloLatency(name string, batch int, kind compiler.ISAKind) (float64, error) {
	cg, err := r.comp.Graph(name, batch, kind)
	if err != nil {
		return 0, err
	}
	policy := coreSoloPolicy(kind)
	res, err := runSolo(r, cg, policy)
	if err != nil {
		return 0, err
	}
	return res.Tenants[0].MeanLatency, nil
}
