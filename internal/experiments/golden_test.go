package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"neu10/internal/obs"
)

// TestGoldenServeReports pins the legacy output surface: with
// observability off (the default), the serving scenarios' tables and
// JSON reports must be byte-identical to the snapshots captured before
// the observability subsystem existed (testdata/golden_serve_*). A
// diff here means instrumentation perturbed the simulation or the
// report encoding — exactly what the zero-overhead contract forbids.
func TestGoldenServeReports(t *testing.T) {
	r, err := NewRunner(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	golden := func(name string) string {
		t.Helper()
		data, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		return string(data)
	}
	for _, id := range []string{"serve-steady", "serve-llm", "serve-disagg"} {
		res, err := r.Run(id)
		if err != nil {
			t.Fatal(err)
		}
		file := map[string]string{
			"serve-steady": "golden_serve_steady.txt",
			"serve-llm":    "golden_serve_llm.txt",
			"serve-disagg": "golden_serve_disagg.txt",
		}[id]
		if got, want := res.Table(), golden(file); got != want {
			t.Errorf("%s table diverged from %s:\n--- got ---\n%s\n--- want ---\n%s", id, file, got, want)
		}
		if id == "serve-disagg" {
			continue // no JSON golden for the sweep
		}
		sr := res.(*ServeResult)
		data, err := json.MarshalIndent(sr.Reports, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		jfile := map[string]string{
			"serve-steady": "golden_serve_steady.json",
			"serve-llm":    "golden_serve_llm.json",
		}[id]
		if got, want := string(data)+"\n", golden(jfile); got != want {
			t.Errorf("%s JSON diverged from %s", id, jfile)
		}
	}
}

// TestServeChaosTracedMatchesUntraced checks the traced chaos variant
// renders the exact same tables as the untraced one (observation never
// changes a number) while additionally carrying trace and timeline
// artifacts on every report.
func TestServeChaosTracedMatchesUntraced(t *testing.T) {
	r, err := NewRunner(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := r.Run("serve-chaos")
	if err != nil {
		t.Fatal(err)
	}
	traced, err := r.Run("serve-chaos-traced")
	if err != nil {
		t.Fatal(err)
	}
	if plain.Table() != traced.Table() {
		t.Errorf("traced chaos tables differ from untraced:\n--- untraced ---\n%s\n--- traced ---\n%s",
			plain.Table(), traced.Table())
	}
	for i, rep := range traced.(*ServeResult).Reports {
		if rep.Trace == nil || rep.Trace.Len() == 0 {
			t.Errorf("traced leg %d has no trace", i)
		}
		if rep.Timelines == nil || len(rep.Timelines.Series()) == 0 {
			t.Errorf("traced leg %d has no timelines", i)
		}
	}
	for i, rep := range plain.(*ServeResult).Reports {
		if rep.Trace != nil || rep.Timelines != nil {
			t.Errorf("untraced leg %d carries observability artifacts", i)
		}
	}
}

// TestTracedExportsWorkerInvariant is the traced determinism gate: the
// serve-chaos-traced scenario's merged Chrome trace and timeline CSV
// must be byte-identical between a sequential and an oversubscribed
// parallel runner. Each leg owns a private tracer filled by its own
// event loop, so worker interleaving must never reach the exports.
func TestTracedExportsWorkerInvariant(t *testing.T) {
	export := func(workers int) (string, string, string) {
		opts := DefaultOptions()
		opts.Workers = workers
		r, err := NewRunner(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run("serve-chaos-traced")
		if err != nil {
			t.Fatal(err)
		}
		sr := res.(*ServeResult)
		var tracers []*obs.Tracer
		var sets []*obs.TimelineSet
		for _, rep := range sr.Reports {
			tracers = append(tracers, rep.Trace)
			sets = append(sets, rep.Timelines)
		}
		var tr, tl bytes.Buffer
		if err := obs.WriteChromeAll(&tr, tracers); err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteCSVAll(&tl, sets); err != nil {
			t.Fatal(err)
		}
		return res.Table(), tr.String(), tl.String()
	}
	seqTab, seqTr, seqTl := export(1)
	parTab, parTr, parTl := export(4)
	if seqTab != parTab {
		t.Error("traced chaos table differs between worker counts")
	}
	if seqTr != parTr {
		t.Error("merged Chrome trace differs between worker counts")
	}
	if seqTl != parTl {
		t.Error("timeline CSV differs between worker counts")
	}
}
