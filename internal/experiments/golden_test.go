package experiments

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"neu10/internal/obs"
)

// goldenServe maps every serving scenario to its snapshot files. Table
// snapshots cover the whole scenario surface; JSON is additionally
// pinned for one single-leg and one multi-leg scenario (that locks the
// encoding, without duplicating every number a second time). Regenerate
// with NEU10_UPDATE_GOLDEN=1 go test ./internal/experiments/ -run Golden
// — but only when an output change is intended and reviewed.
var goldenServe = []struct {
	id    string
	table string
	json  string
}{
	{"serve-steady", "golden_serve_steady.txt", "golden_serve_steady.json"},
	{"serve-flash", "golden_serve_flash.txt", ""},
	{"serve-mix", "golden_serve_mix.txt", ""},
	{"serve-priority", "golden_serve_priority.txt", ""},
	{"serve-llm", "golden_serve_llm.txt", "golden_serve_llm.json"},
	{"serve-disagg", "golden_serve_disagg.txt", ""},
	{"serve-chaos", "golden_serve_chaos.txt", ""},
	{"serve-consolidate", "golden_serve_consolidate.txt", ""},
	// JSON pinned too: serve-paged is where the extended KVStats fields
	// (kv_policy, kv_peak_seqs, eviction and prefix-cache counters)
	// first marshal, so this snapshot locks their encoding.
	{"serve-paged", "golden_serve_paged.txt", "golden_serve_paged.json"},
	// JSON pinned too: serve-attrib is where the attribution fields
	// (attrib cohorts/worst drilldowns, cycle_ledger) first marshal, so
	// this snapshot locks their encoding.
	{"serve-attrib", "golden_serve_attrib.txt", "golden_serve_attrib.json"},
}

// TestGoldenServeReports pins the serving output surface end to end:
// with observability off (the default), every scenario's tables — and
// the pinned JSON reports — must be byte-identical to the committed
// snapshots (testdata/golden_serve_*). A diff means a refactor or an
// instrumentation change perturbed the simulation or the report
// encoding; these snapshots are the safety net behind-the-scenes
// restructuring (and the obs zero-overhead contract) is checked
// against.
func TestGoldenServeReports(t *testing.T) {
	update := os.Getenv("NEU10_UPDATE_GOLDEN") != ""
	r, err := NewRunner(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	check := func(name, got string) {
		t.Helper()
		path := filepath.Join("testdata", name)
		if update {
			if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
				t.Fatal(err)
			}
			return
		}
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if want := string(data); got != want {
			t.Errorf("%s diverged:\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
		}
	}
	for _, g := range goldenServe {
		res, err := r.Run(g.id)
		if err != nil {
			t.Fatal(err)
		}
		check(g.table, res.Table())
		if g.json == "" {
			continue
		}
		sr := res.(*ServeResult)
		data, err := json.MarshalIndent(sr.Reports, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		check(g.json, string(data)+"\n")
	}
}

// TestServeChaosTracedMatchesUntraced checks the traced chaos variant
// renders the exact same tables as the untraced one (observation never
// changes a number) while additionally carrying trace and timeline
// artifacts on every report.
func TestServeChaosTracedMatchesUntraced(t *testing.T) {
	r, err := NewRunner(DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	plain, err := r.Run("serve-chaos")
	if err != nil {
		t.Fatal(err)
	}
	traced, err := r.Run("serve-chaos-traced")
	if err != nil {
		t.Fatal(err)
	}
	if plain.Table() != traced.Table() {
		t.Errorf("traced chaos tables differ from untraced:\n--- untraced ---\n%s\n--- traced ---\n%s",
			plain.Table(), traced.Table())
	}
	for i, rep := range traced.(*ServeResult).Reports {
		if rep.Trace == nil || rep.Trace.Len() == 0 {
			t.Errorf("traced leg %d has no trace", i)
		}
		if rep.Timelines == nil || len(rep.Timelines.Series()) == 0 {
			t.Errorf("traced leg %d has no timelines", i)
		}
	}
	for i, rep := range plain.(*ServeResult).Reports {
		if rep.Trace != nil || rep.Timelines != nil {
			t.Errorf("untraced leg %d carries observability artifacts", i)
		}
	}
}

// TestTracedExportsWorkerInvariant is the traced determinism gate: the
// serve-chaos-traced scenario's merged Chrome trace and timeline CSV
// must be byte-identical between a sequential and an oversubscribed
// parallel runner. Each leg owns a private tracer filled by its own
// event loop, so worker interleaving must never reach the exports.
func TestTracedExportsWorkerInvariant(t *testing.T) {
	export := func(workers int) (string, string, string) {
		opts := DefaultOptions()
		opts.Workers = workers
		r, err := NewRunner(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run("serve-chaos-traced")
		if err != nil {
			t.Fatal(err)
		}
		sr := res.(*ServeResult)
		var tracers []*obs.Tracer
		var sets []*obs.TimelineSet
		for _, rep := range sr.Reports {
			tracers = append(tracers, rep.Trace)
			sets = append(sets, rep.Timelines)
		}
		var tr, tl bytes.Buffer
		if err := obs.WriteChromeAll(&tr, tracers); err != nil {
			t.Fatal(err)
		}
		if err := obs.WriteCSVAll(&tl, sets); err != nil {
			t.Fatal(err)
		}
		return res.Table(), tr.String(), tl.String()
	}
	seqTab, seqTr, seqTl := export(1)
	parTab, parTr, parTl := export(4)
	if seqTab != parTab {
		t.Error("traced chaos table differs between worker counts")
	}
	if seqTr != parTr {
		t.Error("merged Chrome trace differs between worker counts")
	}
	if seqTl != parTl {
		t.Error("timeline CSV differs between worker counts")
	}
}

// TestAttribExportsWorkerInvariant is the attribution determinism gate:
// serve-attrib's tables and merged ledger CSV must be byte-identical
// between a sequential and an oversubscribed parallel runner, and every
// leg's ledger must come back conservation-clean.
func TestAttribExportsWorkerInvariant(t *testing.T) {
	export := func(workers int) (string, string) {
		opts := DefaultOptions()
		opts.Workers = workers
		r, err := NewRunner(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run("serve-attrib")
		if err != nil {
			t.Fatal(err)
		}
		var ledgers []*obs.Ledger
		for _, rep := range res.(*ServeResult).Reports {
			if rep.Ledger == nil {
				t.Fatalf("%s carries no ledger", rep.Scenario)
			}
			if v, open := rep.Ledger.Violations(), rep.Ledger.Open(); v != 0 || open != 0 {
				t.Fatalf("%s: %d violations, %d open requests", rep.Scenario, v, open)
			}
			ledgers = append(ledgers, rep.Ledger)
		}
		var csv bytes.Buffer
		if err := obs.WriteLedgerCSVAll(&csv, ledgers); err != nil {
			t.Fatal(err)
		}
		return res.Table(), csv.String()
	}
	seqTab, seqCSV := export(1)
	parTab, parCSV := export(4)
	if seqTab != parTab {
		t.Error("serve-attrib table differs between worker counts")
	}
	if seqCSV != parCSV {
		t.Error("merged attribution CSV differs between worker counts")
	}
}
