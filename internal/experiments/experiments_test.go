package experiments

import (
	"math"
	"strings"
	"testing"

	"neu10/internal/sched"
)

// The experiment suite's tests assert the *shape* of the paper's results
// (who wins, in which direction), not absolute numbers — the substrate
// is a simulator, not the authors' testbed (see DESIGN.md §4).

func testRunner(t *testing.T) *Runner {
	t.Helper()
	opts := DefaultOptions()
	opts.Requests = 4
	r, err := NewRunner(opts)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestIDsAllRunnable(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in long mode only")
	}
	r := testRunner(t)
	for _, id := range IDs() {
		res, err := r.Run(id)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if res.Name() != id {
			t.Errorf("%s: result names itself %s", id, res.Name())
		}
		if tbl := res.Table(); len(tbl) < 40 || !strings.Contains(tbl, "\n") {
			t.Errorf("%s: implausible table output (%d bytes)", id, len(tbl))
		}
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	r := testRunner(t)
	if _, err := r.Run("fig99"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestFig2DemandVaries(t *testing.T) {
	r := testRunner(t)
	res, err := r.Fig2Demand()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []string{"BERT", "DLRM", "RsNt"} {
		pts := res.Series[m]
		if len(pts) < 5 {
			t.Fatalf("%s: only %d demand points", m, len(pts))
		}
		mes := map[int]bool{}
		for _, p := range pts {
			mes[p.MEs] = true
		}
		if len(mes) < 2 {
			t.Errorf("%s: ME demand constant over time; paper Fig. 2 shows variation", m)
		}
	}
	// DLRM must be time-dominated by zero-ME (vector) operators.
	pts := res.Series["DLRM"]
	var zeroDur, total float64
	for i := 0; i < len(pts)-1; i++ {
		d := pts[i+1].TimeUs - pts[i].TimeUs
		total += d
		if pts[i].MEs == 0 {
			zeroDur += d
		}
	}
	if total > 0 && zeroDur < 0.5*total {
		t.Errorf("DLRM spends %.0f%% of its timeline in vector ops; should dominate", zeroDur/total*100)
	}
}

func TestFig5SoloUtilizationShape(t *testing.T) {
	r := testRunner(t)
	res, err := r.Fig5Utilization()
	if err != nil {
		t.Fatal(err)
	}
	byModel := map[string]SoloStat{}
	for _, s := range res.Stats {
		byModel[s.Model] = s
	}
	// Solo runs underutilize at least one engine class (the paper's core
	// motivation): no model should saturate both.
	for m, s := range byModel {
		if s.MEUtil > 0.95 && s.VEUtil > 0.95 {
			t.Errorf("%s saturates both engines (%.2f/%.2f); contradicts §II-B", m, s.MEUtil, s.VEUtil)
		}
	}
	if byModel["DLRM"].MEUtil > 0.3 {
		t.Errorf("DLRM solo ME util %.2f; should be mostly idle", byModel["DLRM"].MEUtil)
	}
	if byModel["BERT"].MEUtil < byModel["BERT"].VEUtil {
		t.Error("BERT should be ME-heavier than VE")
	}
}

func TestFig7BandwidthWithinLimit(t *testing.T) {
	r := testRunner(t)
	res, err := r.Fig7HBM()
	if err != nil {
		t.Fatal(err)
	}
	limit := r.opts.Core.HBMBwBytes / 1e9
	for _, s := range res.Stats {
		if s.PeakBWGBs > limit*1.01 {
			t.Errorf("%s b=%d peak %.0f GB/s exceeds %.0f", s.Model, s.Batch, s.PeakBWGBs, limit)
		}
		if s.AvgBWGBs <= 0 {
			t.Errorf("%s b=%d zero average bandwidth", s.Model, s.Batch)
		}
		if s.AvgBWGBs > s.PeakBWGBs+1e-9 {
			t.Errorf("%s b=%d avg %.0f above peak %.0f", s.Model, s.Batch, s.AvgBWGBs, s.PeakBWGBs)
		}
	}
}

func TestFig12SelectedConfigsFollowIntensity(t *testing.T) {
	r := testRunner(t)
	res, err := r.Fig12Allocator()
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range res.Curves {
		sel := map[int][2]int{}
		for _, p := range c.Points {
			if p.Selected {
				sel[p.TotalEUs] = [2]int{p.MEs, p.VEs}
			}
		}
		for total := 2; total <= 16; total++ {
			cfg, ok := sel[total]
			if !ok {
				t.Fatalf("%s: no selection at %d EUs", c.Model, total)
			}
			switch c.Model {
			case "BERT", "RsNt", "SMask": // ME-intensive: nm ≥ nv (Fig. 12a/b/d)
				if cfg[0] < cfg[1] {
					t.Errorf("%s at %d EUs selected (%d,%d); expected ME-leaning", c.Model, total, cfg[0], cfg[1])
				}
			case "ENet": // balanced walk (Fig. 12c)
				if d := cfg[0] - cfg[1]; d < -2 || d > 2 {
					t.Errorf("ENet at %d EUs selected (%d,%d); expected near-balanced", total, cfg[0], cfg[1])
				}
			}
		}
	}
}

func TestFig16OverheadSmallAndShrinks(t *testing.T) {
	r := testRunner(t)
	res, err := r.Fig16NeuISAOverhead()
	if err != nil {
		t.Fatal(err)
	}
	var sum float64
	var n int
	var small, large float64
	var nSmall, nLarge int
	for _, byBatch := range res.Points {
		for b, v := range byBatch {
			sum += math.Abs(v)
			n++
			if b == 1 {
				small += v
				nSmall++
			}
			if b == 128 {
				large += v
				nLarge++
			}
		}
	}
	if n == 0 {
		t.Fatal("no overhead points")
	}
	if avg := sum / float64(n); avg > 0.10 {
		t.Errorf("mean |NeuISA overhead| %.1f%%; paper reports <1%% average (we allow 10%%)", avg*100)
	}
	if nSmall > 0 && nLarge > 0 && large/float64(nLarge) > small/float64(nSmall)+0.02 {
		t.Errorf("overhead grows with batch (b1 %.3f → b128 %.3f); paper shows the opposite",
			small/float64(nSmall), large/float64(nLarge))
	}
}

func TestPairStudyPaperClaims(t *testing.T) {
	r := testRunner(t)
	ps, err := r.PairStudy()
	if err != nil {
		t.Fatal(err)
	}
	_, by := ps.byPair()

	// Claim 1 (Fig. 19): Neu10 tail latency beats V10 — geometric mean
	// over all pairs and workloads, and by a solid factor.
	logSum, n := 0.0, 0
	for _, polMetrics := range by {
		for w := 0; w < 2; w++ {
			v10, n10 := polMetrics[sched.V10].P95[w], polMetrics[sched.Neu10].P95[w]
			if v10 > 0 && n10 > 0 {
				logSum += math.Log(v10 / n10)
				n++
			}
		}
	}
	geo := math.Exp(logSum / float64(n))
	if geo < 1.3 {
		t.Errorf("geomean V10/Neu10 tail ratio %.2f; paper reports 1.56x average", geo)
	}

	// Claim 2 (Fig. 19): Neu10's tail stays close to NH's (isolation is
	// preserved while harvesting) — within 35% on geomean.
	logSum, n = 0.0, 0
	for _, polMetrics := range by {
		for w := 0; w < 2; w++ {
			nh, n10 := polMetrics[sched.NeuNH].P95[w], polMetrics[sched.Neu10].P95[w]
			if nh > 0 && n10 > 0 {
				logSum += math.Log(n10 / nh)
				n++
			}
		}
	}
	if g := math.Exp(logSum / float64(n)); g > 1.35 {
		t.Errorf("Neu10 tail is %.2fx NH on geomean; harvesting should preserve isolation", g)
	}

	// Claim 3 (Fig. 21): harvesting buys throughput over static
	// partitioning — aggregate normalized throughput Neu10 ≥ NH on most
	// pairs and on geomean.
	logSum, n = 0.0, 0
	wins := 0
	for _, polMetrics := range by {
		aggNH, aggN10 := 0.0, 0.0
		for w := 0; w < 2; w++ {
			base := polMetrics[sched.PMT].Throughput[w]
			aggNH += polMetrics[sched.NeuNH].Throughput[w] / base
			aggN10 += polMetrics[sched.Neu10].Throughput[w] / base
		}
		if aggN10 >= aggNH*0.99 {
			wins++
		}
		logSum += math.Log(aggN10 / aggNH)
		n++
	}
	if wins < 6 {
		t.Errorf("Neu10 beats NH on only %d/9 pairs' aggregate throughput", wins)
	}
	if g := math.Exp(logSum / float64(n)); g < 1.0 {
		t.Errorf("Neu10/NH aggregate throughput geomean %.3f < 1", g)
	}

	// Claim 4 (Fig. 22): Neu10 improves ME utilization over NH and PMT
	// on average (paper: 1.26x over PMT).
	var meNH, meN10, mePMT float64
	for _, polMetrics := range by {
		meNH += polMetrics[sched.NeuNH].MEUtil
		meN10 += polMetrics[sched.Neu10].MEUtil
		mePMT += polMetrics[sched.PMT].MEUtil
	}
	if meN10 <= meNH {
		t.Errorf("Neu10 mean ME util %.3f not above NH %.3f", meN10/9, meNH/9)
	}
	if meN10 <= mePMT {
		t.Errorf("Neu10 mean ME util %.3f not above PMT %.3f", meN10/9, mePMT/9)
	}

	// Claim 5 (Table III): harvesting overhead is bounded (paper max
	// 10.63%); we allow 15%.
	for pair, polMetrics := range by {
		for w := 0; w < 2; w++ {
			if b := polMetrics[sched.Neu10].Blocked[w]; b > 0.15 {
				t.Errorf("%s workload %d blocked %.1f%% of runtime", pair, w, b*100)
			}
		}
	}
}

func TestFig23HarvestingSpeedsUpOperators(t *testing.T) {
	r := testRunner(t)
	res, err := r.Fig23Breakdown()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Curves) != 9 {
		t.Fatalf("%d curves, want 9", len(res.Curves))
	}
	// For the low-contention pairs, the compute-bound partner must see
	// real per-op speedups from harvesting (paper: most ops ≥ 1.5x).
	for _, c := range res.Curves[:3] {
		if c.MeanGain[1] < 1.1 {
			t.Errorf("%s: W2 mean op speedup %.2f; expected clear harvesting gain", c.Pair.Name(), c.MeanGain[1])
		}
	}
}

func TestFig24HarvestingVisibleInTimeline(t *testing.T) {
	r := testRunner(t)
	res, err := r.Fig24Timeline()
	if err != nil {
		t.Fatal(err)
	}
	sawHarvest := false
	for _, s := range res.Stats {
		if s.Points < 10 {
			t.Errorf("%s/%s: only %d samples", s.Pair, s.Tenant, s.Points)
		}
		if s.MaxMEs > 2 { // allocation is 2; >2 means harvested engines
			sawHarvest = true
		}
	}
	if !sawHarvest {
		t.Error("no tenant ever exceeded its 2-ME allocation; Fig. 24 shows harvesting")
	}
}

func TestFig25GainGrowsWithCoreSize(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in long mode only")
	}
	r := testRunner(t)
	res, err := r.Fig25Scaling()
	if err != nil {
		t.Fatal(err)
	}
	for pair, byCfg := range res.Points {
		// Neu10 must not lose to V10 at any core size.
		for cfg, v := range byCfg {
			if v[0] < v[1]*0.85 {
				t.Errorf("%s at %v: Neu10 %.2f below V10 %.2f", pair, cfg, v[0], v[1])
			}
		}
		// Neu10's normalized throughput must grow with core size (the
		// paper's scaling curves rise from 2ME-2VE to 8ME-8VE).
		small := byCfg[[2]int{2, 2}][0]
		large := byCfg[[2]int{8, 8}][0]
		if large < small {
			t.Errorf("%s: Neu10 throughput fell with core size (%.2f → %.2f)", pair, small, large)
		}
	}
}

func TestFig26MemoryPairsCovered(t *testing.T) {
	if testing.Short() {
		t.Skip("sweep in long mode only")
	}
	r := testRunner(t)
	res, err := r.Fig26Bandwidth()
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{"DLRM+NCF", "NCF+TFMR"} {
		byBW, ok := res.Points[p]
		if !ok {
			t.Fatalf("memory pair %s missing", p)
		}
		for bw, g := range byBW {
			if g < 0.85 {
				t.Errorf("%s @%.0fGB/s: Neu10 gain %.2f; paper says Neu10 still outperforms V10", p, bw/1e9, g)
			}
		}
	}
}

func TestFig27LLMCollocation(t *testing.T) {
	r := testRunner(t)
	res, err := r.Fig27LLM()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) != 3 {
		t.Fatalf("%d LLM collocations, want 3", len(res.Points))
	}
	for _, p := range res.Points {
		// LLaMA must not be hurt by moving from V10 to Neu10 (paper:
		// negligible overhead while using fewer engines).
		if p.Neu10Tput[0] < p.V10Tput[0]*0.9 {
			t.Errorf("%s: LLaMA throughput regressed %.2f → %.2f", p.Pair, p.V10Tput[0], p.Neu10Tput[0])
		}
		// The compute-bound partner must not collapse either.
		if p.Neu10Tput[1] < p.V10Tput[1]*0.85 {
			t.Errorf("%s: partner throughput collapsed %.2f → %.2f", p.Pair, p.V10Tput[1], p.Neu10Tput[1])
		}
	}
}
