package experiments

import "testing"

// TestParallelMatchesSequential is the determinism regression test for
// the parallel runner: for a fixed seed/config, every experiment table
// rendered by the worker-pool runner must be byte-identical to the
// fully sequential runner's output. The ids below cover each
// parallelization shape: the (pair, policy) grid (fig19/table3 via the
// shared pair study), per-pair couples (fig23), per-pair sweeps with
// private baselines (fig25), grid cells with shared compile caches
// (fig26), open-loop seeded arrivals (slo), and solo runs (fig5).
func TestParallelMatchesSequential(t *testing.T) {
	ids := []string{"fig5", "fig19", "fig21", "table3", "fig23", "fig25", "fig26", "slo"}

	mkRunner := func(workers int) *Runner {
		opts := DefaultOptions()
		opts.Requests = 2
		opts.Workers = workers
		r, err := NewRunner(opts)
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	seq := mkRunner(1)
	par := mkRunner(4) // oversubscribed on small machines: still must match

	seqRes, err := seq.RunMany(ids)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := par.RunMany(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		st, pt := seqRes[i].Table(), parRes[i].Table()
		if st != pt {
			t.Errorf("%s: parallel table differs from sequential:\n--- sequential ---\n%s\n--- parallel ---\n%s", id, st, pt)
		}
	}
}

// TestRunManyOrdersResults checks RunMany returns results positionally.
func TestRunManyOrdersResults(t *testing.T) {
	opts := DefaultOptions()
	opts.Requests = 2
	r, err := NewRunner(opts)
	if err != nil {
		t.Fatal(err)
	}
	ids := []string{"fig4", "fig2", "fig12"}
	res, err := r.RunMany(ids)
	if err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		if res[i].Name() != id {
			t.Fatalf("result %d is %q, want %q", i, res[i].Name(), id)
		}
	}
}
